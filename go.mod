module lppa

go 1.22
