// Benchmark harness: one benchmark per table/figure of the paper (see
// DESIGN.md §4 for the experiment index), plus microbenchmarks for the
// protocol primitives and ablation benchmarks for the design choices of
// DESIGN.md §5. Figure benchmarks report their headline quantity through
// b.ReportMetric so `go test -bench` output doubles as a results table.
//
// Reproduce everything with:
//
//	go test -bench=. -benchmem
package lppa_test

import (
	cryptorand "crypto/rand"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"lppa"
	"lppa/internal/attack"
	"lppa/internal/auction"
	"lppa/internal/bidder"
	"lppa/internal/conflict"
	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/epoch"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/paillier"
	"lppa/internal/prefix"
	"lppa/internal/privacy"
	"lppa/internal/radio"
	"lppa/internal/round"
	"lppa/internal/sim"
	"lppa/internal/theory"
	"lppa/internal/ttp"
)

// benchDataset is a shared, reduced-scale dataset (50×50 cells, 32
// channels) so the full benchmark suite completes in minutes. cmd/lppa-sim
// reproduces the figures at full paper scale.
var (
	benchOnce sync.Once
	benchDS   *dataset.Dataset
)

func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.Grid = geo.Grid{Rows: 50, Cols: 50, SideMeters: 75_000}
		cfg.Channels = 32
		ds, err := dataset.Generate(cfg, 42)
		if err != nil {
			panic(err)
		}
		benchDS = ds
	})
	return benchDS
}

func benchPopulation(b *testing.B, area *dataset.Area, n int) *bidder.Population {
	b.Helper()
	pop, err := bidder.NewPopulation(area, n, bidder.DefaultConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return pop
}

// --- Figure benchmarks -------------------------------------------------

// BenchmarkFig1bCoverage regenerates a coverage map (Fig. 1(b)) at the
// paper's full 100×100 resolution.
func BenchmarkFig1bCoverage(b *testing.B) {
	g := geo.DefaultGrid()
	model := radio.PathLoss{Exponent: 3.0, RefLossDB: 88, RefDistM: 1000, ShadowSigmaDB: 6, ShadowCorrM: 5000, Seed: 1}
	ch := radio.Channel{ID: 1, Towers: []radio.Tower{{X: 30_000, Y: 40_000, PowerDBm: 52}}}
	b.ResetTimer()
	var avail int
	for i := 0; i < b.N; i++ {
		cm := radio.ComputeCoverage(g, ch, model, radio.FCCThresholdDBm)
		avail = cm.Available.Count()
	}
	b.ReportMetric(float64(avail), "available-cells")
}

// BenchmarkFig4aPossibleCells runs the BCM attack of Fig. 4(a): possible-
// cell count per victim in the rural area.
func BenchmarkFig4aPossibleCells(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[3]
	pop := benchPopulation(b, area, 20)
	b.ResetTimer()
	var cells float64
	for i := 0; i < b.N; i++ {
		var reports []privacy.Report
		for v, su := range pop.SUs {
			p, err := attack.BCMFromBids(area, pop.Bids[v])
			if err != nil {
				b.Fatal(err)
			}
			reports = append(reports, privacy.Evaluate(p, su.Cell))
		}
		cells = privacy.Summarize(reports).PossibleCells
	}
	b.ReportMetric(cells, "BCM-cells")
}

// BenchmarkFig4bSuccessRate runs the BPM attack of Fig. 4(b): success rate
// with a 1/4 keep fraction.
func BenchmarkFig4bSuccessRate(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[3]
	pop := benchPopulation(b, area, 20)
	b.ResetTimer()
	var success float64
	for i := 0; i < b.N; i++ {
		var reports []privacy.Report
		for v, su := range pop.SUs {
			p, err := attack.BCMFromBids(area, pop.Bids[v])
			if err != nil {
				b.Fatal(err)
			}
			res, err := attack.BPM(area, p, pop.Bids[v], attack.BPMConfig{KeepFraction: 0.25, MaxCells: 250})
			if err != nil {
				reports = append(reports, privacy.Evaluate(p, su.Cell))
				continue
			}
			reports = append(reports, privacy.Evaluate(res.Selected, su.Cell))
		}
		success = privacy.Summarize(reports).SuccessRate
	}
	b.ReportMetric(100*success, "BPM-success-%")
}

// BenchmarkFig4cAreas runs the four-area comparison of Fig. 4(c).
func BenchmarkFig4cAreas(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var ruralCells, urbanCells float64
	for i := 0; i < b.N; i++ {
		points, err := sim.Fig4C(ds, 10, 32, 250, 7)
		if err != nil {
			b.Fatal(err)
		}
		urbanCells = points[0].BCM.PossibleCells
		ruralCells = points[3].BCM.PossibleCells
	}
	b.ReportMetric(urbanCells, "urban-BCM-cells")
	b.ReportMetric(ruralCells, "rural-BCM-cells")
}

// fig5Round runs one LPPA round in the suburban area and returns the
// transcript attack aggregate plus the round result.
func fig5Round(b *testing.B, zeroReplace, keep float64, seed int64) (privacy.Aggregate, *round.Result) {
	b.Helper()
	ds := benchDataset(b)
	area := ds.Areas[2]
	sc, err := sim.NewScenario(area, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	pop := benchPopulation(b, area, 30)
	ring, err := mask.DeriveKeyRing([]byte("bench-fig5"), sc.Params.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	res, err := round.Run(sc.Params, ring, round.Input{Points: sim.Points(pop), Bids: pop.Bids,
		Policy: core.DisguisePolicy{P0: 1 - zeroReplace, Decay: 0.95}, Rng: rand.New(rand.NewSource(seed))})
	if err != nil {
		b.Fatal(err)
	}
	observed, err := attack.TopFractionChannels(res.Auctioneer.Rankings(), pop.N(), keep)
	if err != nil {
		b.Fatal(err)
	}
	var reports []privacy.Report
	for i, su := range pop.SUs {
		p, err := attack.BCM(area, observed[i])
		if err != nil {
			b.Fatal(err)
		}
		reports = append(reports, privacy.Evaluate(p, su.Cell))
	}
	return privacy.Summarize(reports), res
}

// BenchmarkFig5aUncertainty measures attacker uncertainty under LPPA.
func BenchmarkFig5aUncertainty(b *testing.B) {
	var agg privacy.Aggregate
	for i := 0; i < b.N; i++ {
		agg, _ = fig5Round(b, 0.5, 0.5, int64(i))
	}
	b.ReportMetric(agg.Uncertainty, "bits")
}

// BenchmarkFig5bIncorrectness measures attacker incorrectness under LPPA.
func BenchmarkFig5bIncorrectness(b *testing.B) {
	var agg privacy.Aggregate
	for i := 0; i < b.N; i++ {
		agg, _ = fig5Round(b, 0.5, 0.5, int64(i))
	}
	b.ReportMetric(agg.Incorrectness/1000, "km")
}

// BenchmarkFig5cPossibleCells measures the possible-cell count under LPPA.
func BenchmarkFig5cPossibleCells(b *testing.B) {
	var agg privacy.Aggregate
	for i := 0; i < b.N; i++ {
		agg, _ = fig5Round(b, 0.5, 0.5, int64(i))
	}
	b.ReportMetric(agg.PossibleCells, "cells")
}

// BenchmarkFig5dFailureRate measures BCM failure rate under LPPA.
func BenchmarkFig5dFailureRate(b *testing.B) {
	var agg privacy.Aggregate
	for i := 0; i < b.N; i++ {
		agg, _ = fig5Round(b, 0.5, 0.5, int64(i))
	}
	b.ReportMetric(100*agg.FailureRate, "failure-%")
}

// BenchmarkFig5eRevenue measures the revenue cost of LPPA at 1−p0 = 0.5.
func BenchmarkFig5eRevenue(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[2]
	pop := benchPopulation(b, area, 30)
	sc, err := sim.NewScenario(area, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	base, err := round.RunPlainBaseline(sim.Points(pop), pop.Bids, sc.Params.Lambda, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, res := fig5Round(b, 0.5, 0.5, int64(i))
		ratio = float64(res.Outcome.Revenue) / float64(base.Revenue)
	}
	b.ReportMetric(ratio, "revenue-ratio")
}

// BenchmarkFig5fSatisfaction measures the satisfaction cost of LPPA.
func BenchmarkFig5fSatisfaction(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[2]
	pop := benchPopulation(b, area, 30)
	sc, err := sim.NewScenario(area, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	base, err := round.RunPlainBaseline(sim.Points(pop), pop.Bids, sc.Params.Lambda, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, res := fig5Round(b, 0.5, 0.5, int64(i))
		ratio = res.Outcome.Satisfaction() / base.Satisfaction()
	}
	b.ReportMetric(ratio, "satisfaction-ratio")
}

// --- Theorem benchmarks -------------------------------------------------

// BenchmarkTheorem1 evaluates the closed form against Monte Carlo.
func BenchmarkTheorem1(b *testing.B) {
	d := theory.UniformDist(100)
	rng := rand.New(rand.NewSource(1))
	var closed, mc float64
	for i := 0; i < b.N; i++ {
		var err error
		closed, err = theory.Theorem1(d, 80, 20)
		if err != nil {
			b.Fatal(err)
		}
		mc, err = theory.MonteCarloTheorem1(d, 80, 20, 10_000, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(closed, "closed-form")
	b.ReportMetric(mc, "monte-carlo")
}

// BenchmarkTheorem2 evaluates the t-largest no-leak probability.
func BenchmarkTheorem2(b *testing.B) {
	d := theory.UniformDist(100)
	rng := rand.New(rand.NewSource(2))
	var closed, mc float64
	for i := 0; i < b.N; i++ {
		var err error
		closed, err = theory.Theorem2(d, 80, 20, 3)
		if err != nil {
			b.Fatal(err)
		}
		mc, err = theory.MonteCarloTheorem2(d, 80, 20, 3, 10_000, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(closed, "closed-form")
	b.ReportMetric(mc, "monte-carlo")
}

// BenchmarkTheorem3 evaluates E[μ] under uniform disguising.
func BenchmarkTheorem3(b *testing.B) {
	bids := []int{10, 25, 50, 75}
	rng := rand.New(rand.NewSource(3))
	var closed, mc float64
	for i := 0; i < b.N; i++ {
		var err error
		closed, err = theory.Theorem3(100, bids, 15, 2)
		if err != nil {
			b.Fatal(err)
		}
		mc, err = theory.MonteCarloTheorem3(100, bids, 15, 2, 5_000, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(closed, "closed-form")
	b.ReportMetric(mc, "monte-carlo")
}

// BenchmarkTheorem4CommCost measures transcript bytes against the paper's
// h·k·N(3w−1)(w+1) prediction.
func BenchmarkTheorem4CommCost(b *testing.B) {
	p := core.Params{Channels: 16, Lambda: 2, MaxX: 49, MaxY: 49, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("thm4"), p.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	enc, err := core.NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		b.Fatal(err)
	}
	bids := make([]uint64, p.Channels)
	for r := range bids {
		bids[r] = uint64(rng.Intn(100))
	}
	w := p.BidWidth(ring)
	predicted, err := theory.Theorem4Bits(mask.DigestSize*8, w, p.Channels, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var measured int
	for i := 0; i < b.N; i++ {
		sub, err := enc.Encode(bids, rng)
		if err != nil {
			b.Fatal(err)
		}
		measured = core.SubmissionBytes(sub)
	}
	b.ReportMetric(float64(measured), "measured-bytes")
	b.ReportMetric(predicted/8, "predicted-digest-bytes")
}

// --- Microbenchmarks ----------------------------------------------------

func BenchmarkPrefixFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prefix.Family(uint64(i)&1023, 10)
	}
}

func BenchmarkPrefixCover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lo := uint64(i) & 511
		prefix.Cover(lo, 1023, 10)
	}
}

func BenchmarkMaskDigest(b *testing.B) {
	m, err := mask.NewMasker(make(mask.Key, 32))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mask(uint64(i))
	}
}

func BenchmarkMaskedCompareGE(b *testing.B) {
	p := core.Params{Channels: 1, Lambda: 1, MaxX: 9, MaxY: 9, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("cmp"), 1, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	enc, err := core.NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		b.Fatal(err)
	}
	a, err := enc.Encode([]uint64{70}, rng)
	if err != nil {
		b.Fatal(err)
	}
	c, err := enc.Encode([]uint64{30}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CompareGE(&a.Channels[0], &c.Channels[0])
	}
}

func BenchmarkLocationSubmission(b *testing.B) {
	p := core.Params{Channels: 1, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("loc"), 1, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewLocationSubmission(p, ring, geo.Point{X: uint64(i) % 100, Y: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBidEncodeAdvanced(b *testing.B) {
	p := core.Params{Channels: 32, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("enc"), p.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	sampler, err := core.NewDisguiseSampler(core.DefaultDisguise(), p.BMax)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := core.NewBidEncoder(p, ring, sampler, rng)
	if err != nil {
		b.Fatal(err)
	}
	bids := make([]uint64, p.Channels)
	for r := range bids {
		bids[r] = uint64(rng.Intn(101))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(bids, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrivateConflictGraph(b *testing.B) {
	p := core.Params{Channels: 1, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("graph"), 1, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 50
	subs := make([]*core.LocationSubmission, n)
	for i := range subs {
		var err error
		subs[i], err = core.NewLocationSubmission(p, ring,
			geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildConflictGraph(subs)
	}
}

func BenchmarkPrivateRound(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[2]
	pop := benchPopulation(b, area, 30)
	sc, err := sim.NewScenario(area, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	ring, err := mask.DeriveKeyRing([]byte("round"), sc.Params.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := round.Run(sc.Params, ring, round.Input{Points: sim.Points(pop), Bids: pop.Bids,
			Policy: core.DefaultDisguise(), Rng: rand.New(rand.NewSource(int64(i)))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlainRound(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[2]
	pop := benchPopulation(b, area, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := round.RunPlainBaseline(sim.Points(pop), pop.Bids, 2,
			rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks ------------------------------------------------

// BenchmarkAblationBasicVsAdvancedEncoding compares the basic scheme
// (shared key, no padding/blinding) against the advanced scheme, exposing
// the cost of the privacy fixes.
func BenchmarkAblationBasicVsAdvancedEncoding(b *testing.B) {
	p := core.Params{Channels: 16, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("abl"), p.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	bids := make([]uint64, p.Channels)
	for r := range bids {
		bids[r] = uint64((r * 13) % 101)
	}
	b.Run("basic", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		enc, err := core.NewBasicBidEncoder(p, ring, rng)
		if err != nil {
			b.Fatal(err)
		}
		var bytes int
		for i := 0; i < b.N; i++ {
			sub, err := enc.Encode(bids, rng)
			if err != nil {
				b.Fatal(err)
			}
			bytes = core.SubmissionBytes(sub)
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
	b.Run("advanced", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		enc, err := core.NewBidEncoder(p, ring, nil, rng)
		if err != nil {
			b.Fatal(err)
		}
		var bytes int
		for i := 0; i < b.N; i++ {
			sub, err := enc.Encode(bids, rng)
			if err != nil {
				b.Fatal(err)
			}
			bytes = core.SubmissionBytes(sub)
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
}

// BenchmarkAblationDisguiseDecay compares geometric-decay disguising (the
// paper's p_1 ≥ … ≥ p_bmax requirement) against uniform disguising
// (Theorem 3's best-privacy corner), reporting the revenue each leaves.
func BenchmarkAblationDisguiseDecay(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[2]
	pop := benchPopulation(b, area, 30)
	sc, err := sim.NewScenario(area, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	ring, err := mask.DeriveKeyRing([]byte("decay"), sc.Params.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		decay float64
	}{{"geometric-0.9", 0.9}, {"uniform", 1.0}} {
		b.Run(mode.name, func(b *testing.B) {
			var revenue uint64
			for i := 0; i < b.N; i++ {
				res, err := round.Run(sc.Params, ring, round.Input{Points: sim.Points(pop), Bids: pop.Bids,
					Policy: core.DisguisePolicy{P0: 0.5, Decay: mode.decay}, Rng: rand.New(rand.NewSource(int64(i)))})
				if err != nil {
					b.Fatal(err)
				}
				revenue = res.Outcome.Revenue
			}
			b.ReportMetric(float64(revenue), "revenue")
		})
	}
}

// BenchmarkAblationBatchVsInteractiveTTP compares the paper's batch
// charging against the interactive validity-check design.
func BenchmarkAblationBatchVsInteractiveTTP(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[2]
	pop := benchPopulation(b, area, 30)
	sc, err := sim.NewScenario(area, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	ring, err := mask.DeriveKeyRing([]byte("ttpmode"), sc.Params.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	policy := core.DisguisePolicy{P0: 0.5, Decay: 0.95}
	b.Run("batch", func(b *testing.B) {
		var voided int
		for i := 0; i < b.N; i++ {
			res, err := round.Run(sc.Params, ring, round.Input{Points: sim.Points(pop), Bids: pop.Bids,
				Policy: policy, Rng: rand.New(rand.NewSource(int64(i)))})
			if err != nil {
				b.Fatal(err)
			}
			voided = res.Voided
		}
		b.ReportMetric(float64(voided), "voided")
	})
	b.Run("interactive", func(b *testing.B) {
		var voided int
		for i := 0; i < b.N; i++ {
			res, err := round.Run(sc.Params, ring, round.Input{Points: sim.Points(pop), Bids: pop.Bids,
				Policy: policy, Rng: rand.New(rand.NewSource(int64(i)))}, round.WithInteractiveCharging())
			if err != nil {
				b.Fatal(err)
			}
			voided = res.Voided
		}
		b.ReportMetric(float64(voided), "voided")
	})
}

// BenchmarkAblationAllocationOrder compares the paper's randomized channel
// order against a fixed order.
func BenchmarkAblationAllocationOrder(b *testing.B) {
	// The engine always randomizes (faithful to Algorithm 3); fixed order
	// is emulated by reusing one seed, randomized by varying it. The
	// metric shows revenue sensitivity to the channel order.
	ds := benchDataset(b)
	area := ds.Areas[2]
	pop := benchPopulation(b, area, 30)
	pts := sim.Points(pop)
	b.Run("fixed-order", func(b *testing.B) {
		var revenue uint64
		for i := 0; i < b.N; i++ {
			out, err := round.RunPlainBaseline(pts, pop.Bids, 2, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			revenue = out.Revenue
		}
		b.ReportMetric(float64(revenue), "revenue")
	})
	b.Run("random-order", func(b *testing.B) {
		var total, runs uint64
		for i := 0; i < b.N; i++ {
			out, err := round.RunPlainBaseline(pts, pop.Bids, 2, rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			total += out.Revenue
			runs++
		}
		b.ReportMetric(float64(total)/float64(runs), "revenue")
	})
}

// BenchmarkNetworkedRound measures one full TCP round (all parties over
// loopback).
func BenchmarkNetworkedRound(b *testing.B) {
	// Networked rounds are exercised in internal/transport tests; here we
	// only measure the in-process protocol plus gob wire conversion cost.
	p := core.Params{Channels: 8, Lambda: 2, MaxX: 49, MaxY: 49, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("net"), p.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	points := make([]lppa.Point, 10)
	bids := make([][]uint64, 10)
	for i := range points {
		points[i] = lppa.Point{X: uint64(rng.Intn(50)), Y: uint64(rng.Intn(50))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(101))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := round.Run(p, ring, round.Input{Points: points, Bids: bids,
			Policy: core.DefaultDisguise(), Rng: rand.New(rand.NewSource(int64(i)))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiRoundLinkage runs the section V.C.3 experiment: linked vs
// mixed pseudonyms across five rounds, reporting both failure rates.
func BenchmarkMultiRoundLinkage(b *testing.B) {
	ds := benchDataset(b)
	cfg := sim.DefaultMultiRoundConfig()
	cfg.Bidders = 15
	cfg.Channels = 32
	cfg.Rounds = 5
	var linked, mixed float64
	for i := 0; i < b.N; i++ {
		points, err := sim.MultiRound(ds.Areas[2], cfg, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		linked = last.Linked.FailureRate
		mixed = last.Mixed.FailureRate
	}
	b.ReportMetric(100*linked, "linked-failure-%")
	b.ReportMetric(100*mixed, "mixed-failure-%")
}

// BenchmarkTTPBatcher measures the section V.C.2 batching scheduler: TTP
// windows used for 100 auction rounds at different batch bounds.
func BenchmarkTTPBatcher(b *testing.B) {
	p := core.Params{Channels: 4, Lambda: 2, MaxX: 49, MaxY: 49, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("batcher"), p.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	trusted, err := ttp.FromRing(p, ring, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	enc, err := core.NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		b.Fatal(err)
	}
	sub, err := enc.Encode([]uint64{10, 20, 30, 40}, rng)
	if err != nil {
		b.Fatal(err)
	}
	mkReqs := func() []core.ChargeRequest {
		var reqs []core.ChargeRequest
		for r := 0; r < p.Channels; r++ {
			reqs = append(reqs, core.ChargeRequest{
				Bidder: r, Channel: r,
				Sealed: sub.Channels[r].Sealed,
				Family: sub.Channels[r].Family.Digests(),
			})
		}
		return reqs
	}
	for _, bound := range []int{1, 10, 50} {
		b.Run(fmtBatch(bound), func(b *testing.B) {
			var windows int
			for i := 0; i < b.N; i++ {
				batcher, err := round.NewBatcher(1<<30, bound, trusted.ProcessBatch)
				if err != nil {
					b.Fatal(err)
				}
				for roundID := 0; roundID < 100; roundID++ {
					batcher.Add(roundID, mkReqs())
				}
				batcher.Flush()
				windows = batcher.Stats().Windows
			}
			b.ReportMetric(float64(windows), "ttp-windows")
		})
	}
}

func fmtBatch(bound int) string {
	if bound == 1 {
		return "per-round"
	}
	return fmt.Sprintf("batch-%d", bound)
}

// BenchmarkAblationAllocatorStrategy compares Algorithm 3 (the strongest
// greedy the masked transcript supports) against global greedy (needs the
// plaintext total order LPPA removes), quantifying the allocator freedom
// the privacy design costs.
func BenchmarkAblationAllocatorStrategy(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[2]
	pop := benchPopulation(b, area, 30)
	pts := sim.Points(pop)
	g := conflictGraph(pts)
	b.Run("algorithm3", func(b *testing.B) {
		var revenue uint64
		for i := 0; i < b.N; i++ {
			out, err := auction.RunPlain(pop.Bids, g, rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			revenue = out.Revenue
		}
		b.ReportMetric(float64(revenue), "revenue")
	})
	b.Run("global-greedy", func(b *testing.B) {
		var revenue uint64
		for i := 0; i < b.N; i++ {
			out, err := auction.RunGlobalGreedy(pop.Bids, g, rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			revenue = out.Revenue
		}
		b.ReportMetric(float64(revenue), "revenue")
	})
}

func conflictGraph(pts []lppa.Point) *conflict.Graph {
	return conflict.BuildPlain(pts, 2)
}

// BenchmarkBaselinePaillierVsPrefixMasking measures the comparison the
// paper makes against its reference [7] (Paillier-based secure auctions):
// the cost of submitting one 16-channel bid vector under each scheme, in
// time and bytes. The prefix scheme wins both by orders of magnitude —
// this is the paper's efficiency argument, measured.
func BenchmarkBaselinePaillierVsPrefixMasking(b *testing.B) {
	const channels = 16
	bids := make([]uint64, channels)
	for r := range bids {
		bids[r] = uint64((r * 13) % 101)
	}
	b.Run("lppa-prefix-masking", func(b *testing.B) {
		p := core.Params{Channels: channels, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
		ring, err := mask.DeriveKeyRing([]byte("baseline"), p.Channels, 5, 8)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		enc, err := core.NewBidEncoder(p, ring, nil, rng)
		if err != nil {
			b.Fatal(err)
		}
		var bytes int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sub, err := enc.Encode(bids, rng)
			if err != nil {
				b.Fatal(err)
			}
			bytes = core.SubmissionBytes(sub)
		}
		b.ReportMetric(float64(bytes), "submission-bytes")
	})
	b.Run("paillier-2048", func(b *testing.B) {
		key := paillierKey(b, 2048)
		var bytes int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sub, err := paillier.EncryptBids(&key.PublicKey, cryptorand.Reader, bids)
			if err != nil {
				b.Fatal(err)
			}
			bytes = sub.Bytes(&key.PublicKey)
		}
		b.ReportMetric(float64(bytes), "submission-bytes")
	})
}

var (
	paillierOnce sync.Once
	paillier2048 *paillier.PrivateKey
)

func paillierKey(b *testing.B, bits int) *paillier.PrivateKey {
	b.Helper()
	paillierOnce.Do(func() {
		k, err := paillier.GenerateKey(cryptorand.Reader, bits)
		if err != nil {
			panic(err)
		}
		paillier2048 = k
	})
	return paillier2048
}

// BenchmarkAblationPricingRule compares first-price (the paper's design)
// with second-price charging (the paper's future-work direction,
// implemented end to end through the private pipeline), reporting revenue.
func BenchmarkAblationPricingRule(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[2]
	pop := benchPopulation(b, area, 30)
	sc, err := sim.NewScenario(area, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	ring, err := mask.DeriveKeyRing([]byte("pricing"), sc.Params.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	policy := core.DisguisePolicy{P0: 1}
	b.Run("first-price", func(b *testing.B) {
		var revenue uint64
		for i := 0; i < b.N; i++ {
			res, err := round.Run(sc.Params, ring, round.Input{Points: sim.Points(pop), Bids: pop.Bids,
				Policy: policy, Rng: rand.New(rand.NewSource(int64(i)))})
			if err != nil {
				b.Fatal(err)
			}
			revenue = res.Outcome.Revenue
		}
		b.ReportMetric(float64(revenue), "revenue")
	})
	b.Run("second-price", func(b *testing.B) {
		var revenue uint64
		for i := 0; i < b.N; i++ {
			res, err := round.Run(sc.Params, ring, round.Input{Points: sim.Points(pop), Bids: pop.Bids,
				Policy: policy, Rng: rand.New(rand.NewSource(int64(i)))}, round.WithSecondPrice())
			if err != nil {
				b.Fatal(err)
			}
			revenue = res.Outcome.Revenue
		}
		b.ReportMetric(float64(revenue), "revenue")
	})
}

// --- Parallel-pipeline benchmarks ---------------------------------------

// BenchmarkZeroAllocMask pins the resettable-HMAC fast path: steady-state
// masking must not allocate (the -benchmem column is the acceptance
// criterion, 0 allocs/op).
func BenchmarkZeroAllocMask(b *testing.B) {
	m, err := mask.NewMasker(make(mask.Key, 32))
	if err != nil {
		b.Fatal(err)
	}
	m.Mask(0) // prime the lazy HMAC internals
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mask(uint64(i))
	}
}

// BenchmarkParallelMaskAll sweeps worker counts over a batch of prefix
// families (64 bidders × 16 values), the shape the submission encoders
// produce.
func BenchmarkParallelMaskAll(b *testing.B) {
	m, err := mask.NewMasker(make(mask.Key, 32))
	if err != nil {
		b.Fatal(err)
	}
	batches := make([][]uint64, 64)
	for i := range batches {
		batches[i] = make([]uint64, 16)
		for j := range batches[i] {
			batches[i][j] = uint64(i*16 + j)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.ParallelMaskAll(batches, workers)
			}
		})
	}
}

// BenchmarkParallelConflictGraph sweeps worker counts over the masked
// conflict-graph build at n = 200 submissions (the acceptance-criterion
// scale; on multi-core hosts workers-4 should be ≥ 2× workers-1).
func BenchmarkParallelConflictGraph(b *testing.B) {
	p := core.Params{Channels: 1, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("pgraph"), 1, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 200
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
	}
	subs, err := core.NewLocationSubmissions(p, ring, pts, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.BuildConflictGraphParallel(subs, workers)
			}
		})
	}
}

// BenchmarkParallelPrivateRound sweeps worker counts over the full
// deterministic parallel round (encoding + graph + allocation + charging).
func BenchmarkParallelPrivateRound(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[2]
	pop := benchPopulation(b, area, 30)
	sc, err := sim.NewScenario(area, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	ring, err := mask.DeriveKeyRing([]byte("pround"), sc.Params.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var opts []round.Option
			if workers > 1 {
				opts = append(opts, round.WithWorkers(workers))
			}
			for i := 0; i < b.N; i++ {
				if _, err := round.Run(sc.Params, ring, round.Input{Points: sim.Points(pop), Bids: pop.Bids,
					Policy: core.DefaultDisguise(), Rng: rand.New(rand.NewSource(int64(i)))}, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRankMemoAllocation isolates the allocation-lean comparator: the
// same Algorithm 3 run answered by the per-column rank memo versus direct
// masked set intersections on every comparison.
func BenchmarkRankMemoAllocation(b *testing.B) {
	p := core.Params{Channels: 8, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("memo"), p.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 60
	pts := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range pts {
		pts[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(101))
		}
	}
	locs, err := core.NewLocationSubmissions(p, ring, pts, 0)
	if err != nil {
		b.Fatal(err)
	}
	subs := make([]*core.BidSubmission, n)
	for i := range subs {
		enc, err := core.NewBidEncoder(p, ring, nil, rng)
		if err != nil {
			b.Fatal(err)
		}
		if subs[i], err = enc.Encode(bids[i], rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auc, err := core.NewAuctioneer(p, locs, subs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := auc.Allocate(rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPlacementDensity compares uniform against clustered
// bidder placement: clustered populations have dense conflict graphs, so
// spectrum reuse collapses and satisfaction falls — the stress case for
// Algorithm 3's neighbor-elimination logic.
func BenchmarkAblationPlacementDensity(b *testing.B) {
	ds := benchDataset(b)
	area := ds.Areas[2]
	cfg := bidder.DefaultConfig()
	const n, lambda = 40, 4
	mkBids := func(sus []bidder.SU, rng *rand.Rand) [][]uint64 {
		bids := make([][]uint64, len(sus))
		for i, su := range sus {
			bids[i] = bidder.BidVector(su, area, cfg, rng)
		}
		return bids
	}
	run := func(b *testing.B, place func(rng *rand.Rand) []bidder.SU) {
		var satisfaction float64
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(int64(i)))
			sus := place(rng)
			pts := make([]lppa.Point, len(sus))
			for j, su := range sus {
				pts[j] = su.Point()
			}
			out, err := round.RunPlainBaseline(pts, mkBids(sus, rng), lambda, rng)
			if err != nil {
				b.Fatal(err)
			}
			satisfaction = out.Satisfaction()
		}
		b.ReportMetric(100*satisfaction, "satisfaction-%")
	}
	b.Run("uniform", func(b *testing.B) {
		run(b, func(rng *rand.Rand) []bidder.SU { return bidder.Place(area.Grid, n, cfg, rng) })
	})
	b.Run("clustered", func(b *testing.B) {
		run(b, func(rng *rand.Rand) []bidder.SU {
			return bidder.PlaceClustered(area.Grid, n, 3, 1.5, cfg, rng)
		})
	})
}

// --- Interned-set benchmarks (PR 2) -------------------------------------

// BenchmarkInternedIntersect pins the interned fast path at the set shapes
// the protocol produces (family ≈ w+1 IDs vs padded cover = 2w−2 IDs) plus
// the skewed shape that triggers galloping. Acceptance criterion: the
// -benchmem column must read 0 allocs/op on every sub-benchmark (the CI
// alloc guard fails otherwise).
func BenchmarkInternedIntersect(b *testing.B) {
	m, err := mask.NewMasker(make(mask.Key, 32))
	if err != nil {
		b.Fatal(err)
	}
	mkSet := func(dict *mask.Dict, lo, n uint64) mask.IntSet {
		vs := make([]uint64, n)
		for i := range vs {
			vs[i] = lo + uint64(i)
		}
		return dict.InternSet(m.MaskSet(vs))
	}
	dict := mask.NewDict()
	family := mkSet(dict, 0, 11)       // w+1 at w=10
	coverHit := mkSet(dict, 5, 18)     // 2w−2, overlaps family
	coverMiss := mkSet(dict, 1000, 18) // disjoint: Bloom/merge reject
	large := mkSet(dict, 2000, 400)    // gallop fixture
	probe := mkSet(dict, 2399, 3)      // tiny, hits large's last ID
	cases := []struct {
		name string
		a, b mask.IntSet
	}{
		{"family-vs-cover-hit", family, coverHit},
		{"family-vs-cover-miss", family, coverMiss},
		{"gallop-skewed", probe, large},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tc.a.Intersects(tc.b)
			}
		})
	}
}

// conflictSubsN300 builds the N=300 masked population both conflict-graph
// representation benchmarks share.
func conflictSubsN300(b *testing.B) []*core.LocationSubmission {
	b.Helper()
	p := core.Params{Channels: 1, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("graph300"), 1, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 300
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
	}
	subs, err := core.NewLocationSubmissions(p, ring, pts, 0)
	if err != nil {
		b.Fatal(err)
	}
	return subs
}

// BenchmarkConflictGraphN300 is the acceptance-criterion conflict-graph
// build at N=300, single worker: the map-based predicate (PR 1's
// representation) against the interned build (dictionary + Bloom
// quick-reject + sorted-ID merges, including its ingest/interning cost).
func BenchmarkConflictGraphN300(b *testing.B) {
	subs := conflictSubsN300(b)
	b.Run("map-sets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conflict.BuildFromPredicate(len(subs), func(i, j int) bool {
				return core.Conflicts(subs[i], subs[j])
			})
		}
	})
	b.Run("interned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.BuildConflictGraph(subs)
		}
	})
}

// rankMemoRoundN300 builds the N=300, k=4 bid matrix the rank-memo
// representation benchmarks share.
func rankMemoRoundN300(b *testing.B) (core.Params, []*core.LocationSubmission, []*core.BidSubmission) {
	b.Helper()
	p := core.Params{Channels: 4, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("memo300"), p.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 300
	pts := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range pts {
		pts[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(101))
		}
	}
	locs, err := core.NewLocationSubmissions(p, ring, pts, 0)
	if err != nil {
		b.Fatal(err)
	}
	subs := make([]*core.BidSubmission, n)
	for i := range subs {
		enc, err := core.NewBidEncoder(p, ring, nil, rng)
		if err != nil {
			b.Fatal(err)
		}
		if subs[i], err = enc.Encode(bids[i], rng); err != nil {
			b.Fatal(err)
		}
	}
	return p, locs, subs
}

// BenchmarkRankMemoN300 is the acceptance-criterion rank-memo build at
// N=300: a fresh auctioneer per iteration sorts every column into the
// dense-rank memo (Rankings touches all k columns), with the O(n log n)
// masked comparisons answered by map-set walks versus interned merges.
func BenchmarkRankMemoN300(b *testing.B) {
	p, locs, subs := rankMemoRoundN300(b)
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			auc, err := core.NewAuctioneer(p, locs, subs)
			if err != nil {
				b.Fatal(err)
			}
			if disable {
				auc.DisableInterning()
			}
			auc.Rankings()
		}
	}
	b.Run("map-sets", func(b *testing.B) { run(b, true) })
	b.Run("interned", func(b *testing.B) { run(b, false) })
}

// --- Indexed candidate-generation benchmarks (PR 6) ----------------------

// BenchmarkConflictGraphIndexed is the acceptance-criterion build at
// N=3000 under the two density regimes of DESIGN.md §5f: the all-pairs
// oracle against the inverted-index candidate path. Sparse-rural (uniform
// over a 1000×1000 domain) is where the index wins — short posting lists
// collapse the candidate set far below n². Dense-urban (three tight
// hotspots on a 100×100 domain) is the skew-guard stress case: posting
// lists go hot, rows fall back to pairwise probing, and the criterion is
// only that the index costs ≤ 10 % over the oracle.
func BenchmarkConflictGraphIndexed(b *testing.B) {
	const n = 3000
	regimes := []struct {
		mix  dataset.DensityMix
		grid geo.Grid
	}{
		{dataset.UrbanMix(), geo.Grid{Rows: 100, Cols: 100, SideMeters: 75_000}},
		{dataset.RuralMix(), geo.Grid{Rows: 1000, Cols: 1000, SideMeters: 75_000}},
	}
	for _, re := range regimes {
		p := core.Params{Channels: 1, Lambda: re.mix.Lambda,
			MaxX: uint64(re.grid.Cols - 1), MaxY: uint64(re.grid.Rows - 1), BMax: 100}
		ring, err := mask.DeriveKeyRing([]byte("ixbench-"+re.mix.Name), 1, 5, 8)
		if err != nil {
			b.Fatal(err)
		}
		pts := re.mix.Points(re.grid, n, rand.New(rand.NewSource(3)))
		subs, err := core.NewLocationSubmissions(p, ring, pts, 0)
		if err != nil {
			b.Fatal(err)
		}
		var name string
		switch re.mix.Name {
		case "urban":
			name = "dense-urban"
		default:
			name = "sparse-rural"
		}
		b.Run(name+"/oracle", func(b *testing.B) {
			var edges int
			for i := 0; i < b.N; i++ {
				edges = core.BuildConflictGraph(subs).Edges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
		b.Run(name+"/indexed", func(b *testing.B) {
			var edges int
			for i := 0; i < b.N; i++ {
				edges = core.BuildConflictGraphIndexed(subs, 1).Edges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkIndexCursorRow pins the steady-state candidate scan: once the
// cursor's scratch buffers have grown to the hottest row, Row must not
// allocate (the -benchmem column is the acceptance criterion, 0 allocs/op;
// `make alloc-guard` enforces it).
func BenchmarkIndexCursorRow(b *testing.B) {
	m, err := mask.NewMasker(make(mask.Key, 32))
	if err != nil {
		b.Fatal(err)
	}
	dict := mask.NewDict()
	mkSet := func(lo, cnt uint64) mask.IntSet {
		vs := make([]uint64, cnt)
		for i := range vs {
			vs[i] = lo + uint64(i)
		}
		return dict.InternSet(m.MaskSet(vs))
	}
	const n = 256
	ix := mask.NewIndex(n)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		lo := uint64(rng.Intn(64))
		ix.Add(mkSet(lo, 11), mkSet(lo, 18))
	}
	cur := ix.Cursor()
	for i := 0; i < n; i++ {
		cur.Row(i) // grow the scratch buffers to steady state
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur.Row(i % n)
	}
}

// --- Tile-sharded round benchmarks (PR 7) --------------------------------

// shardedRoundFixture builds the (params, ring, points, bids) tuple for
// one density regime of DESIGN.md §5g at population n.
func shardedRoundFixture(b *testing.B, mix dataset.DensityMix, grid geo.Grid, n int) (core.Params, *mask.KeyRing, []geo.Point, [][]uint64) {
	b.Helper()
	p := core.Params{Channels: 2, Lambda: mix.Lambda,
		MaxX: uint64(grid.Cols - 1), MaxY: uint64(grid.Rows - 1), BMax: 15}
	ring, err := mask.DeriveKeyRing([]byte("shardbench-"+mix.Name), p.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pts := mix.Points(grid, n, rng)
	bids := make([][]uint64, n)
	for i := range bids {
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(int(p.BMax) + 1))
		}
	}
	return p, ring, pts, bids
}

// BenchmarkRoundSharded is the PR-7 acceptance benchmark: the full private
// round (encode + plan + conflict graph + rank memos + allocation +
// charging) end to end, unsharded (shards=0) against the tile-sharded
// planner at 1, 4, and 8 shards, under the density regimes of DESIGN.md
// §5f/§5g. Results are bit-identical across the row; only the cost moves.
// The acceptance criterion is shards=8 ≥ 4× over shards=0 at N=10000 on
// the mixed regime — the win is work reduction (Σ nᵢ² ≪ n², plus the
// rank-cursor allocator), not parallelism, so it holds on one core.
// Channels and the bid ledger are kept small (k=2, BMax=15 → 4-digit bid
// columns) so submission encoding does not swamp the quadratic phases the
// sharding targets.
func BenchmarkRoundSharded(b *testing.B) {
	regimes := []struct {
		mix  dataset.DensityMix
		grid geo.Grid
		pops []int
	}{
		// Urban stays at N=3000: every bidder conflicts with a hotspot-full
		// of others, so the edge set itself is quadratic and N=10000 would
		// measure edge handling, not candidate pruning.
		{dataset.UrbanMix(), geo.Grid{Rows: 100, Cols: 100, SideMeters: 75_000}, []int{3000}},
		{dataset.RuralMix(), geo.Grid{Rows: 1000, Cols: 1000, SideMeters: 75_000}, []int{3000, 10000}},
		{dataset.MixedMix(), geo.Grid{Rows: 300, Cols: 300, SideMeters: 75_000}, []int{3000, 10000}},
	}
	for _, re := range regimes {
		for _, n := range re.pops {
			p, ring, pts, bids := shardedRoundFixture(b, re.mix, re.grid, n)
			for _, shards := range []int{0, 1, 4, 8} {
				name := fmt.Sprintf("%s/N=%d/shards=%d", re.mix.Name, n, shards)
				b.Run(name, func(b *testing.B) {
					var opts []round.Option
					if shards > 0 {
						// The sharded planner composes the PR-6 candidate
						// index per tile (DESIGN.md §5g); the baseline is
						// the unsharded default path.
						opts = append(opts, round.WithShards(shards),
							round.WithIndexedCandidates())
					}
					var awards int
					for i := 0; i < b.N; i++ {
						res, err := round.Run(p, ring,
							round.Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1},
								Rng: rand.New(rand.NewSource(int64(i)))}, opts...)
						if err != nil {
							b.Fatal(err)
						}
						awards = len(res.Outcome.Assignments)
					}
					b.ReportMetric(float64(awards), "awards")
				})
			}
		}
	}
}

// BenchmarkRoundTraceOverhead prices the tracing subsystem against a full
// private round. "off" is the untraced baseline; "disabled" passes
// WithTrace(nil) — the production default, which must cost exactly what
// "off" costs (same ns/op ballpark, identical allocs/op; `make
// trace-guard` enforces the allocation half); "on" runs a live tracer
// plus flight recorder, the bound on what turning observability on buys
// you into.
func BenchmarkRoundTraceOverhead(b *testing.B) {
	p := core.Params{Channels: 8, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("trace-bench"), p.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	const n = 60
	pts := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range pts {
		pts[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(101))
		}
	}
	run := func(b *testing.B, opts []lppa.RunOption) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := lppa.RoundInput{Points: pts, Bids: bids,
				Policy: core.DefaultDisguise(), Rng: rand.New(rand.NewSource(int64(i)))}
			if _, err := lppa.Run(p, ring, in, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, nil)
	})
	b.Run("disabled", func(b *testing.B) {
		run(b, []lppa.RunOption{lppa.WithTrace(nil)})
	})
	b.Run("on", func(b *testing.B) {
		tracer := lppa.NewTracer("bench")
		fr := lppa.NewFlightRecorder(b.TempDir(), 4, 0)
		run(b, []lppa.RunOption{lppa.WithTrace(tracer), lppa.WithFlightRecorder(fr)})
		// Keep the buffer from growing bias into later iterations' numbers.
		b.StopTimer()
		tracer.Take()
	})
}

// BenchmarkEpochService prices the epochal service pipeline end to end:
// each iteration streams one full population through the admission gate
// (explicit clock, so the admit/reject split is deterministic), seals the
// epoch, and lets the runner allocate it while the next iteration's
// intake proceeds — the same overlap the long-lived service exhibits.
// The rate limit is sized to shed part of every population, so the
// admitted/rejected metrics exercise the gate rather than bypassing it,
// and both ledgers settle through the batched accountant. Headline
// metrics: epochs/s, admitted and rejected per epoch, and the accounting
// flush traffic (db calls + key writes per epoch).
func BenchmarkEpochService(b *testing.B) {
	p := core.Params{Channels: 8, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("epoch-bench"), p.Channels, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	const n = 200
	rng := rand.New(rand.NewSource(61))
	subs := make([]epoch.Submission, n)
	for i := range subs {
		subs[i] = epoch.Submission{
			Bidder: i,
			Point:  geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))},
			Bids:   make([]uint64, p.Channels),
		}
		for r := range subs[i].Bids {
			if rng.Intn(3) > 0 {
				subs[i].Bids[r] = uint64(rng.Intn(int(p.BMax))) + 1
			}
		}
	}
	variants := []struct {
		name string
		opts []round.Option
	}{
		{"serial", nil},
		{"sharded", []round.Option{round.WithWorkers(4), round.WithShards(4),
			round.WithIndexedCandidates()}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			billingStore, quotaStore := epoch.NewMemStore(), epoch.NewMemStore()
			billing, err := epoch.NewAccountant("billing", billingStore, p.BMax*4, nil)
			if err != nil {
				b.Fatal(err)
			}
			quota, err := epoch.NewAccountant("quota", quotaStore, 64, nil)
			if err != nil {
				b.Fatal(err)
			}
			svc, err := epoch.New(epoch.Config{
				Params: p, Ring: ring, Seed: 7,
				Policy: core.DisguisePolicy{P0: 1},
				// 100 tokens/s against 200 submissions/epoch: the gate sheds
				// part of every population instead of idling.
				Admission:    epoch.AdmissionConfig{Rate: 100, Burst: 150},
				Billing:      billing,
				Quota:        quota,
				RoundOptions: v.opts,
			})
			if err != nil {
				b.Fatal(err)
			}
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				for res := range svc.Results() {
					if res.Err != nil {
						b.Error(res.Err)
					}
				}
			}()
			var admitted, rejected int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One second of simulated wall clock per epoch refills the
				// bucket by Rate; the split is identical on every run.
				now := float64(i)
				for _, sub := range subs {
					switch err := svc.SubmitAt(sub, now); err.(type) {
					case nil:
						admitted++
					case *epoch.ErrRateLimited:
						rejected++
					default:
						b.Fatal(err)
					}
				}
				if err := svc.Seal(); err != nil {
					b.Fatal(err)
				}
			}
			// Close drains the queued epochs through the runner, so the
			// timed region covers allocation, not just intake.
			if err := svc.Close(); err != nil {
				b.Fatal(err)
			}
			<-drained
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "epochs/s")
			b.ReportMetric(float64(admitted)/float64(b.N), "admitted/epoch")
			b.ReportMetric(float64(rejected)/float64(b.N), "rejected/epoch")
			calls := billingStore.Calls() + quotaStore.Calls()
			writes := billingStore.Writes() + quotaStore.Writes()
			b.ReportMetric(float64(calls)/float64(b.N), "dbCalls/epoch")
			b.ReportMetric(float64(writes)/float64(b.N), "dbWrites/epoch")
		})
	}
}

// BenchmarkBatchedAccounting backs the PR-8 acceptance criterion with
// numbers: at N=10000 accounting ops, the thresholded accountant must
// issue at least 10× fewer simulated datastore calls than the
// per-submission baseline (threshold 1 — every delta is its own round
// trip) while persisting identical exact totals.
// TestBatchedAccountingWriteReduction asserts the same bound; this
// benchmark publishes the measured traffic into BENCH_PR8.json.
func BenchmarkBatchedAccounting(b *testing.B) {
	const nOps = 10_000
	const keys = 500 // distinct bidders the deltas spread across
	modes := []struct {
		name      string
		threshold uint64
	}{
		{"per-submission", 1},
		{"batched", 4000},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var calls, writes uint64
			for i := 0; i < b.N; i++ {
				store := epoch.NewMemStore()
				acct, err := epoch.NewAccountant("bench", store, m.threshold, nil)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(17))
				for op := 0; op < nOps; op++ {
					if err := acct.Add(rng.Intn(keys), uint64(rng.Intn(100))+1); err != nil {
						b.Fatal(err)
					}
				}
				if err := acct.Flush(); err != nil {
					b.Fatal(err)
				}
				calls, writes = store.Calls(), store.Writes()
			}
			b.ReportMetric(float64(calls), "dbCalls")
			b.ReportMetric(float64(writes), "dbWrites")
			b.ReportMetric(float64(nOps)/float64(calls), "ops/dbCall")
		})
	}
}
