package lppa_test

import (
	"math/rand"
	"testing"

	"lppa"
	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

// TestTraceDisabledAllocationFree is the observed-twin allocation guard
// (`make trace-guard`): running a round with WithTrace(nil) — the
// production default — must allocate exactly what the untraced baseline
// allocates. The variants are measured alternately until they agree:
// one-time runtime warmup can land a stray allocation in whichever
// measurement runs first, but a real per-round leak never converges.
func TestTraceDisabledAllocationFree(t *testing.T) {
	p := core.Params{Channels: 8, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("trace-guard"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	const n = 60
	pts := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range pts {
		pts[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(101))
		}
	}
	run := func(opts ...lppa.RunOption) func() {
		return func() {
			in := lppa.RoundInput{Points: pts, Bids: bids,
				Policy: core.DefaultDisguise(), Rng: rand.New(rand.NewSource(1))}
			if _, err := lppa.Run(p, ring, in, opts...); err != nil {
				t.Fatal(err)
			}
		}
	}
	offFn := run()
	disFn := run(lppa.WithTrace(nil))
	offFn() // warm both paths before measuring
	disFn()
	var off, disabled float64
	for i := 0; i < 5; i++ {
		off = testing.AllocsPerRun(10, offFn)
		disabled = testing.AllocsPerRun(10, disFn)
		if off == disabled {
			return
		}
	}
	t.Errorf("WithTrace(nil) round allocates %.0f allocs, untraced %.0f — disabled tracing must be free", disabled, off)
}

// TestTraceDisabledAllocationFreeSampler extends the guard to the ops
// plane's sampled tracing: rounds the sampler skips (the 1-in-K steady
// state) must cost exactly one atomic increment over the untraced
// baseline — zero extra allocations. The seed is chosen so the sampler's
// deterministic offset lands far beyond every round this test executes.
func TestTraceDisabledAllocationFreeSampler(t *testing.T) {
	p := core.Params{Channels: 8, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("trace-guard"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	const n = 60
	pts := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range pts {
		pts[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(101))
		}
	}

	// Find a seed whose 1-in-2^20 offset skips every round we will run.
	const k, horizon = 1 << 20, 4096
	var sampler *lppa.TraceSampler
	for seed := int64(0); seed < 64; seed++ {
		s := lppa.NewTraceSampler("guard", seed, k)
		clear := true
		for i := uint64(0); i < horizon; i++ {
			if s.WouldSample(i) {
				clear = false
				break
			}
		}
		if clear {
			sampler = s
			break
		}
	}
	if sampler == nil {
		t.Fatal("no seed in [0,64) keeps the first 4096 rounds unsampled at k=2^20")
	}

	run := func(opts ...lppa.RunOption) func() {
		return func() {
			in := lppa.RoundInput{Points: pts, Bids: bids,
				Policy: core.DefaultDisguise(), Rng: rand.New(rand.NewSource(1))}
			if _, err := lppa.Run(p, ring, in, opts...); err != nil {
				t.Fatal(err)
			}
		}
	}
	offFn := run()
	samFn := run(lppa.WithTraceSampler(sampler))
	offFn() // warm both paths before measuring
	samFn()
	var off, sampled float64
	for i := 0; i < 5; i++ {
		off = testing.AllocsPerRun(10, offFn)
		sampled = testing.AllocsPerRun(10, samFn)
		if off == sampled {
			return
		}
	}
	t.Errorf("unsampled round allocates %.0f allocs, untraced %.0f — the skipped path must be free", sampled, off)
}
