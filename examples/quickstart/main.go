// Quickstart: one complete private spectrum auction on a small grid.
//
// The program plays all three parties in-process: the TTP derives the
// round's keys, twenty secondary users mask their locations and bids, the
// untrusted auctioneer allocates channels over masked data only, and the
// TTP settles the charges. It then shows what the plain (non-private)
// auction would have produced on the same inputs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lppa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A compact dataset: 30×30 cells, 12 channels, the paper's four area
	// profiles. Seeded, so every run prints the same numbers.
	cfg := lppa.DefaultDatasetConfig()
	cfg.Grid = lppa.Grid{Rows: 30, Cols: 30, SideMeters: 75_000}
	cfg.Channels = 12
	ds, err := lppa.GenerateDataset(cfg, 7)
	if err != nil {
		return err
	}
	area := ds.Areas[2] // suburban

	// Twenty bidders with truthful valuations b = q·β + η.
	rng := rand.New(rand.NewSource(1))
	pop, err := lppa.NewPopulation(area, 20, lppa.DefaultBidConfig(), rng)
	if err != nil {
		return err
	}

	// Protocol parameters derive from the area geometry; the TTP chooses
	// the blinding parameters rd and cr and derives the key ring.
	sc, err := lppa.NewScenario(area, cfg.Channels, 2)
	if err != nil {
		return err
	}
	ring, err := lppa.DeriveKeyRing([]byte("quickstart-round-1"), sc.Params.Channels, 5, 8)
	if err != nil {
		return err
	}

	// The private round: bidders disguise 30 % of their zero bids.
	policy := lppa.DisguisePolicy{P0: 0.7, Decay: 0.95}
	res, err := lppa.Run(sc.Params, ring, lppa.RoundInput{Points: lppa.Points(pop), Bids: pop.Bids, Policy: policy, Rng: rng})
	if err != nil {
		return err
	}

	fmt.Println("=== LPPA private auction ===")
	fmt.Printf("bidders: %d, channels: %d, masked transcript: %.1f KiB\n",
		pop.N(), sc.Params.Channels, float64(res.SubmissionBytes)/1024)
	for i, a := range res.Outcome.Assignments {
		price := res.Outcome.Charges[i]
		if price == 0 {
			fmt.Printf("  channel %2d -> bidder %2d  (voided: a zero bid won)\n", a.Channel, a.Bidder)
			continue
		}
		fmt.Printf("  channel %2d -> bidder %2d  pays %3d\n", a.Channel, a.Bidder, price)
	}
	fmt.Printf("revenue: %d, satisfaction: %.0f%%, voided awards: %d\n\n",
		res.Outcome.Revenue, 100*res.Outcome.Satisfaction(), res.Voided)

	// The plain baseline on identical inputs, for comparison.
	base, err := lppa.RunPlainBaseline(lppa.Points(pop), pop.Bids, sc.Params.Lambda, rand.New(rand.NewSource(2)))
	if err != nil {
		return err
	}
	fmt.Println("=== plain (non-private) auction on the same inputs ===")
	fmt.Printf("revenue: %d, satisfaction: %.0f%%\n", base.Revenue, 100*base.Satisfaction())
	fmt.Printf("\nprivacy cost of this round: %.0f%% of baseline revenue\n",
		100*float64(res.Outcome.Revenue)/float64(base.Revenue))
	return nil
}
