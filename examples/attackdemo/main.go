// Attackdemo: geo-locating spectrum bidders from their bids alone.
//
// The program plays the curious auctioneer of the paper's section III: it
// receives plaintext bid vectors (as any conventional spectrum auction
// requires), then runs the Bid-Channels Mining attack (intersecting
// channel-availability complements) and the Bid-Price Mining attack
// (matching normalized bid prices against the per-cell quality database)
// to pin each bidder to a handful of 750 m cells. It then repeats the
// attack against an LPPA transcript to show what the defence changes.
//
//	go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lppa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := lppa.DefaultDatasetConfig()
	cfg.Grid = lppa.Grid{Rows: 40, Cols: 40, SideMeters: 75_000}
	cfg.Channels = 24
	ds, err := lppa.GenerateDataset(cfg, 13)
	if err != nil {
		return err
	}
	area := ds.Areas[3] // rural: attacks bite hardest here

	rng := rand.New(rand.NewSource(5))
	pop, err := lppa.NewPopulation(area, 8, lppa.DefaultBidConfig(), rng)
	if err != nil {
		return err
	}

	fmt.Printf("victims: %d bidders in %s (%d cells)\n\n", pop.N(), area.Name, area.Grid.NumCells())
	fmt.Println("=== attacking the conventional (plaintext) auction ===")
	var bcmReps, bpmReps []lppa.PrivacyReport
	for i, su := range pop.SUs {
		p, err := lppa.BCMFromBids(area, pop.Bids[i])
		if err != nil {
			return err
		}
		bcmReps = append(bcmReps, lppa.EvaluatePrivacy(p, su.Cell))
		res, err := lppa.BPM(area, p, pop.Bids[i], lppa.BPMConfig{KeepFraction: 0.25, MaxCells: 100})
		if err != nil {
			continue
		}
		rep := lppa.EvaluatePrivacy(res.Selected, su.Cell)
		bpmReps = append(bpmReps, rep)
		fmt.Printf("  SU %d at %v: BCM left %4d cells, BPM left %3d, point estimate %v (%.1f km off)\n",
			su.ID, su.Cell, p.Count(), res.Selected.Count(), res.Best,
			area.Grid.CellDistanceMeters(res.Best, su.Cell)/1000)
	}
	fmt.Printf("\n  BCM: %v\n  BPM: %v\n\n", lppa.SummarizePrivacy(bcmReps), lppa.SummarizePrivacy(bpmReps))

	// Now the same population participates through LPPA. The auctioneer
	// can still rank masked bids within each channel, so it marks each
	// channel "available" to the top half of its bidders and re-runs BCM.
	// Cross-channel comparison — and with it BPM — is gone (per-channel
	// HMAC keys).
	fmt.Println("=== attacking the LPPA transcript (best the auctioneer can do) ===")
	sc, err := lppa.NewScenario(area, cfg.Channels, 2)
	if err != nil {
		return err
	}
	ring, err := lppa.DeriveKeyRing([]byte("attackdemo"), sc.Params.Channels, 5, 8)
	if err != nil {
		return err
	}
	res, err := lppa.Run(sc.Params, ring, lppa.RoundInput{Points: lppa.Points(pop), Bids: pop.Bids,
		Policy: lppa.DisguisePolicy{P0: 0.5, Decay: 0.95}, Rng: rng})
	if err != nil {
		return err
	}
	observed, err := lppa.TopFractionChannels(res.Auctioneer.Rankings(), pop.N(), 0.5)
	if err != nil {
		return err
	}
	var lppaReps []lppa.PrivacyReport
	for i, su := range pop.SUs {
		p, err := lppa.BCM(area, observed[i])
		if err != nil {
			return err
		}
		rep := lppa.EvaluatePrivacy(p, su.Cell)
		lppaReps = append(lppaReps, rep)
		verdict := "still inside"
		if rep.Failed {
			verdict = "WRONG REGION — disguised zeros poisoned the intersection"
		}
		fmt.Printf("  SU %d: BCM on transcript left %4d cells, true cell %s\n", su.ID, p.Count(), verdict)
	}
	fmt.Printf("\n  BCM under LPPA: %v\n", lppa.SummarizePrivacy(lppaReps))
	fmt.Println("  BPM under LPPA: impossible (per-channel keys destroy cross-channel order)")
	return nil
}
