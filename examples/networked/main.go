// Networked: deploy the three LPPA parties over real TCP sockets.
//
// The TTP and the auctioneer each get their own listener; ten bidder
// clients connect concurrently, fetch the key ring from the TTP, submit
// masked locations and bids to the auctioneer, and wait for their results.
// The auctioneer never holds a key; the TTP never sees a location.
//
//	go run ./examples/networked
package main

import (
	"fmt"
	"log"
	"log/slog"
	"math/rand"
	"net"
	"os"
	"sync"

	"lppa"
	"lppa/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 10
	params := lppa.Params{Channels: 6, Lambda: 3, MaxX: 63, MaxY: 63, BMax: 100}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	// Party 1: the TTP (key escrow + charging).
	lnTTP, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ttpSrv, err := transport.NewTTPServer(params, []byte("networked-example"), 5, 8, lnTTP, logger)
	if err != nil {
		return err
	}
	defer ttpSrv.Close()

	// Party 2: the auctioneer (untrusted; sees only masked data).
	lnAuc, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	aucSrv, err := transport.NewAuctioneerServer(params, n, ttpSrv.Addr().String(), lnAuc, 99, logger)
	if err != nil {
		return err
	}
	defer aucSrv.Close()
	fmt.Printf("TTP %s | auctioneer %s\n\n", ttpSrv.Addr(), aucSrv.Addr())

	// Party 3..12: bidders, each in its own goroutine with its own
	// location, valuation, and privacy policy.
	rng := rand.New(rand.NewSource(17))
	var wg sync.WaitGroup
	results := make([]*lppa.Result, n)
	for i := 0; i < n; i++ {
		pt := lppa.Point{X: uint64(rng.Intn(64)), Y: uint64(rng.Intn(64))}
		bids := make([]uint64, params.Channels)
		for r := range bids {
			if rng.Intn(4) > 0 {
				bids[r] = uint64(rng.Intn(100)) + 1
			}
		}
		policy := lppa.DisguisePolicy{P0: 0.6 + 0.4*rng.Float64(), Decay: 0.95}
		wg.Add(1)
		go func(i int, pt lppa.Point, bids []uint64, policy lppa.DisguisePolicy) {
			defer wg.Done()
			client := &lppa.BidderClient{ID: i, Params: params, Policy: policy}
			res, err := client.Participate(ttpSrv.Addr().String(), aucSrv.Addr().String(),
				pt, bids, rand.New(rand.NewSource(int64(1000+i))))
			if err != nil {
				fmt.Printf("bidder %d failed: %v\n", i, err)
				return
			}
			results[i] = res
		}(i, pt, bids, policy)
	}
	wg.Wait()

	outcome := aucSrv.Wait()
	if outcome == nil {
		return fmt.Errorf("round failed")
	}
	for i, res := range results {
		switch {
		case res == nil:
			fmt.Printf("bidder %2d: error\n", i)
		case res.Won:
			fmt.Printf("bidder %2d: won channel %d for %d\n", i, res.Channel, res.Price)
		case res.Voided:
			fmt.Printf("bidder %2d: voided (a zero bid won — TTP caught it)\n", i)
		default:
			fmt.Printf("bidder %2d: no spectrum this round\n", i)
		}
	}
	fmt.Printf("\nauctioneer revenue: %d (%d voided awards)\n", outcome.Revenue, outcome.Voided)
	return nil
}
