// Multiround: why bidder IDs must be remixed between auctions
// (the paper's section V.C.3).
//
// A single LPPA round leaks almost nothing: disguised zeros poison the
// auctioneer's channel observations. But poisoning is random per round
// while true availability is stable — so an attacker who can *link* a
// bidder's pseudonym across rounds filters the noise away by majority
// voting and recovers the location after a handful of auctions. Remixing
// IDs each round (the paper's countermeasure) confines the attacker to
// single-round observations forever.
//
//	go run ./examples/multiround
package main

import (
	"fmt"
	"log"

	"lppa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := lppa.DefaultDatasetConfig()
	cfg.Grid = lppa.Grid{Rows: 40, Cols: 40, SideMeters: 75_000}
	cfg.Channels = 48
	ds, err := lppa.GenerateDataset(cfg, 31)
	if err != nil {
		return err
	}
	area := ds.Areas[2]

	mrCfg := lppa.DefaultMultiRoundConfig()
	mrCfg.Bidders = 25
	mrCfg.Channels = 48
	mrCfg.Rounds = 8

	fmt.Printf("%d bidders, %d channels, %d consecutive LPPA rounds (1-p0 = %.1f)\n\n",
		mrCfg.Bidders, mrCfg.Channels, mrCfg.Rounds, mrCfg.ZeroReplace)
	points, err := lppa.MultiRound(area, mrCfg, 11)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s  %-28s  %-28s\n", "", "LINKED pseudonyms", "MIXED IDs (defence)")
	fmt.Printf("%-7s  %-12s %-14s  %-12s %-14s\n",
		"rounds", "attack fail", "incorrect(km)", "attack fail", "incorrect(km)")
	for _, p := range points {
		fmt.Printf("%-7d  %-12s %-14.1f  %-12s %-14.1f\n",
			p.Rounds,
			fmt.Sprintf("%.0f%%", 100*p.Linked.FailureRate), p.Linked.Incorrectness/1000,
			fmt.Sprintf("%.0f%%", 100*p.Mixed.FailureRate), p.Mixed.Incorrectness/1000)
	}
	first, last := points[0], points[len(points)-1]
	fmt.Printf("\nlinked attacker: failure %.0f%% → %.0f%% across %d rounds (linkage defeats the disguise)\n",
		100*first.Linked.FailureRate, 100*last.Linked.FailureRate, last.Rounds)
	fmt.Printf("mixed IDs:       failure stays at %.0f%% (the paper's countermeasure holds)\n",
		100*last.Mixed.FailureRate)
	return nil
}
