// Tradeoff: sweep the zero-disguise probability and chart privacy gained
// against auction performance lost — the paper's central tension
// (Fig. 5).
//
// Each bidder chooses how aggressively to disguise its zero bids
// (1−p0 ∈ [0,1]). More disguising poisons the auctioneer's BCM
// intersection (higher attack failure rate) but lets fake bids win
// channels the TTP must then void (lower revenue and satisfaction).
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lppa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := lppa.DefaultDatasetConfig()
	cfg.Grid = lppa.Grid{Rows: 40, Cols: 40, SideMeters: 75_000}
	cfg.Channels = 24
	ds, err := lppa.GenerateDataset(cfg, 21)
	if err != nil {
		return err
	}
	area := ds.Areas[2]

	rng := rand.New(rand.NewSource(3))
	pop, err := lppa.NewPopulation(area, 40, lppa.DefaultBidConfig(), rng)
	if err != nil {
		return err
	}
	sc, err := lppa.NewScenario(area, cfg.Channels, 2)
	if err != nil {
		return err
	}
	base, err := lppa.RunPlainBaseline(lppa.Points(pop), pop.Bids, sc.Params.Lambda, rand.New(rand.NewSource(4)))
	if err != nil {
		return err
	}

	fmt.Printf("%-6s  %-14s  %-14s  %-12s  %-10s\n",
		"1-p0", "BCM failure", "possible cells", "revenue", "satisfaction")
	for _, zr := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		ring, err := lppa.DeriveKeyRing([]byte(fmt.Sprintf("tradeoff-%.1f", zr)), sc.Params.Channels, 5, 8)
		if err != nil {
			return err
		}
		res, err := lppa.Run(sc.Params, ring, lppa.RoundInput{Points: lppa.Points(pop), Bids: pop.Bids,
			Policy: lppa.DisguisePolicy{P0: 1 - zr, Decay: 0.95}, Rng: rand.New(rand.NewSource(int64(100*zr) + 5))})
		if err != nil {
			return err
		}
		// The attacker takes the top half of each channel's masked
		// ranking and intersects availability complements.
		observed, err := lppa.TopFractionChannels(res.Auctioneer.Rankings(), pop.N(), 0.5)
		if err != nil {
			return err
		}
		reports := make([]lppa.PrivacyReport, 0, pop.N())
		for i, su := range pop.SUs {
			p, err := lppa.BCM(area, observed[i])
			if err != nil {
				return err
			}
			reports = append(reports, lppa.EvaluatePrivacy(p, su.Cell))
		}
		agg := lppa.SummarizePrivacy(reports)
		fmt.Printf("%-6.1f  %-14s  %-14.1f  %-12s  %-10s\n",
			zr,
			fmt.Sprintf("%.0f%%", 100*agg.FailureRate),
			agg.PossibleCells,
			fmt.Sprintf("%d (%.0f%%)", res.Outcome.Revenue, 100*float64(res.Outcome.Revenue)/float64(base.Revenue)),
			fmt.Sprintf("%.0f%%", 100*res.Outcome.Satisfaction()/base.Satisfaction()),
		)
	}
	fmt.Printf("\nplain baseline: revenue %d, satisfaction %.0f%%\n", base.Revenue, 100*base.Satisfaction())
	fmt.Println("pick p0 per bidder to balance these columns — that is the paper's knob.")
	return nil
}
