package main

import (
	"path/filepath"
	"testing"
)

// The CLI is exercised end-to-end in tiny+quick mode: every experiment
// must run to completion on a CI-sized dataset.
func TestRunEveryExperimentTiny(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "ds.gob")
	for _, exp := range []string{"coverage", "fig4a", "fig4c", "fig5ad", "fig5ef", "multiround", "theorems"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			args := []string{
				"-experiment", exp, "-tiny", "-quick", "-cache", cache,
				"-victims", "6", "-n", "8", "-bidders", "8", "-channels", "8",
			}
			if err := run(args); err != nil {
				t.Fatalf("experiment %s: %v", exp, err)
			}
		})
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope", "-tiny"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-experiment"}); err == nil {
		t.Fatal("dangling flag accepted")
	}
	if err := run([]string{"-experiment", "fig5ef", "-tiny", "-bidders", "abc"}); err == nil {
		t.Fatal("unparseable population list accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("100, 200,300")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 100 || got[2] != 300 {
		t.Errorf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad int accepted")
	}
}
