// Command lppa-sim reproduces the paper's evaluation (section VI): it
// generates (or loads) the synthetic Los Angeles dataset and runs the
// experiment behind each figure, printing the corresponding table.
//
// Usage:
//
//	lppa-sim -experiment all
//	lppa-sim -experiment fig4a -victims 100
//	lppa-sim -experiment fig5ef -bidders 100,200,300
//	lppa-sim -experiment theorems
//	lppa-sim -experiment coverage
//
// Experiments: coverage, fig4a (covers 4b too), fig4c, fig5ad, fig5ef,
// multiround (§V.C.3), basicleak (§IV.C.1), pricing (second-price future
// work), theorems, round (one instrumented private round), all. The -cache
// flag persists the generated dataset so repeat runs start instantly;
// -format csv emits machine-readable tables; -tiny and -quick shrink
// everything for smoke runs. -metrics-out dumps the observability
// registry's JSON snapshot for the instrumented experiments; -trace-out
// records them as a Chrome trace_event file (view at ui.perfetto.dev);
// -audit-out writes the round experiment's privacy-leakage report;
// -flight-dir auto-dumps failed or degraded round traces; -pprof-addr
// serves net/http/pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"lppa/internal/cli"
	"lppa/internal/dataset"
	"lppa/internal/geo"
	"lppa/internal/obs"
	"lppa/internal/obs/audit"
	"lppa/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lppa-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lppa-sim", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "coverage|fig4a|fig4c|fig5ad|fig5ef|multiround|basicleak|pricing|theorems|round|all")
		seed       = fs.Int64("seed", 42, "experiment seed (dataset + auctions)")
		cache      = fs.String("cache", "", "dataset cache path (optional)")
		victims    = fs.Int("victims", 60, "victims per attack configuration")
		bidders    = fs.String("bidders", "100,200,300", "population sizes for fig5ef")
		channels   = fs.Int("channels", dataset.NumChannels, "channel count for fig5 experiments")
		n          = fs.Int("n", 100, "population size for fig5ad and theorem 4")
		quick      = fs.Bool("quick", false, "smaller sweeps for a fast smoke run")
		tiny       = fs.Bool("tiny", false, "20x20-cell, 12-channel dataset for CI smoke runs")
		trials     = fs.Int("trials", 3, "independent trials per fig5ef cell (mean ± 95% CI)")
		format     = fs.String("format", "text", "table output: text|csv")
		metricsOut = fs.String("metrics-out", "", "write a JSON metrics snapshot of the instrumented experiments (round, fig5ad, fig5ef) to this file; - for stdout")
		traceOut   = fs.String("trace-out", "", "write a Chrome trace_event JSON of the instrumented experiments (round, fig5ad, fig5ef) to this file; view at ui.perfetto.dev")
		auditOut   = fs.String("audit-out", "", "write the round experiment's privacy-leakage audit (per-bidder anonymity sets) as JSON to this file")
		flightDir  = fs.String("flight-dir", "", "flight-recorder directory: failed or degraded instrumented rounds auto-dump their traces here")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this address for live profiling")
	)
	// Round-shaping flags (-workers, -shards, -indexed, -quorum,
	// -straggler) come from the shared cli block lppa-net registers too.
	rf := cli.RoundFlags{Workers: runtime.GOMAXPROCS(0)}
	rf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Reject typo'd values (negative -workers/-shards, unknown -density)
	// before defaulting the legal zero shapes.
	if err := rf.Validate(); err != nil {
		return err
	}
	if rf.Workers < 1 {
		rf.Workers = runtime.GOMAXPROCS(0)
	}
	mix, err := rf.Mix()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "workers: %d (GOMAXPROCS %d)\n", rf.Workers, runtime.GOMAXPROCS(0))
	switch *format {
	case "text":
		render = func(t *sim.Table) error { return t.Render(os.Stdout) }
	case "csv":
		render = func(t *sim.Table) error { return t.RenderCSV(os.Stdout) }
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	needDataset := *experiment != "theorems"
	var ds *dataset.Dataset
	if needDataset {
		cfg := dataset.DefaultConfig()
		if *tiny {
			cfg.Grid = geo.Grid{Rows: 20, Cols: 20, SideMeters: 75_000}
			cfg.Channels = 12
		}
		fmt.Fprintf(os.Stderr, "generating dataset (%d channels x %d areas x %dx%d cells)...\n",
			cfg.Channels, len(cfg.Profiles), cfg.Grid.Rows, cfg.Grid.Cols)
		var err error
		ds, err = dataset.LoadOrGenerate(*cache, cfg, *seed)
		if err != nil {
			return err
		}
	}

	var reg *obs.Registry
	if *metricsOut != "" || *auditOut != "" {
		reg = obs.NewRegistry()
	}
	if err := cli.ServePprof(*pprofAddr); err != nil {
		return err
	}
	var tracer *obs.Tracer
	if *traceOut != "" || *flightDir != "" {
		tracer = obs.NewTracer("sim")
	}
	var flight *obs.FlightRecorder
	if *flightDir != "" {
		flight = obs.NewFlightRecorder(*flightDir, 8, 0)
	}
	sinks := obsSinks{reg: reg, tracer: tracer, flight: flight, auditOut: *auditOut}

	runOne := func(name string) error {
		switch name {
		case "coverage":
			return runCoverage(ds)
		case "fig4a", "fig4b", "fig4ab":
			return runFig4AB(ds, *victims, *seed, *quick)
		case "fig4c":
			return runFig4C(ds, *victims, *seed)
		case "fig5ad":
			return runFig5AD(ds, *n, *channels, *seed, *quick, rf, sinks)
		case "fig5ef":
			pops, err := parseInts(*bidders)
			if err != nil {
				return err
			}
			return runFig5EF(ds, pops, *channels, *seed, *trials, *quick, rf, sinks)
		case "round":
			return runRound(ds, *n, *channels, *seed, mix, rf, sinks)
		case "multiround":
			return runMultiRound(ds, *seed, *quick)
		case "basicleak":
			return runBasicLeak(ds, *seed, *quick)
		case "pricing":
			return runPricing(ds, *seed, *quick)
		case "theorems":
			return runTheorems(ds, *seed, *quick)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if *experiment == "all" {
		for _, name := range []string{"coverage", "fig4a", "fig4c", "fig5ad", "fig5ef", "multiround", "basicleak", "pricing", "theorems"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	} else if err := runOne(*experiment); err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := writeMetrics(reg, *metricsOut); err != nil {
			return err
		}
	}
	return writeTrace(tracer, *traceOut)
}

// obsSinks carries the optional observability outputs into the
// instrumented experiments.
type obsSinks struct {
	reg      *obs.Registry
	tracer   *obs.Tracer
	flight   *obs.FlightRecorder
	auditOut string
}

// writeTrace dumps everything the tracer buffered as one Chrome
// trace_event file, loadable in ui.perfetto.dev or chrome://tracing.
func writeTrace(tracer *obs.Tracer, path string) error {
	if tracer == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := obs.WriteChromeTrace(f, tracer.Snapshot()); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace written to %s (open in ui.perfetto.dev)\n", path)
	return nil
}

// writeMetrics dumps the registry snapshot collected by the instrumented
// experiments to path (stdout when "-"). No-op when metrics were disabled.
func writeMetrics(reg *obs.Registry, path string) error {
	if reg == nil {
		return nil
	}
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics snapshot: %w", err)
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "metrics snapshot written to %s\n", path)
	return nil
}

// runRound executes one instrumented private round (Area 3, population n)
// and prints its headline numbers; with -metrics-out the full per-phase and
// per-layer profile lands in the snapshot, -trace-out records the phase
// span tree, and -audit-out reports what the round's transcript leaked.
func runRound(ds *dataset.Dataset, n, channels int, seed int64, mix *dataset.DensityMix, rf cli.RoundFlags, sinks obsSinks) error {
	cfg := sim.DefaultFig5Config()
	cfg.Bidders = n
	cfg.Channels = channels
	cfg.Density = mix
	applyRoundFlags(&cfg, rf, sinks)
	placement := "uniform"
	if mix != nil {
		placement = mix.Name
		cfg.Lambda = mix.Lambda
	}
	res, err := sim.MetricsRound(ds.Areas[2], cfg, seed)
	if err != nil {
		return err
	}
	fmt.Printf("## Instrumented private round (Area 3, N=%d, k=%d, workers=%d, density=%s, indexed=%t, shards=%d)\n\n",
		n, min(channels, ds.Areas[2].NumChannels()), rf.Workers, placement, rf.Indexed, rf.Shards)
	fmt.Printf("awards: %d, revenue: %d, satisfaction: %.3f, voided: %d, submission bytes: %d\n",
		len(res.Outcome.Assignments), res.Outcome.Revenue, res.Outcome.Satisfaction(), res.Voided, res.SubmissionBytes)
	if sinks.auditOut == "" {
		return nil
	}
	rep, err := audit.Round(res, audit.Options{Area: ds.Areas[2], Metrics: sinks.reg})
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	if err := rep.WriteJSON(sinks.auditOut); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	fmt.Fprint(os.Stderr, rep.Summary())
	fmt.Fprintf(os.Stderr, "audit written to %s\n", sinks.auditOut)
	return nil
}

// applyRoundFlags folds the shared round-shaping flags and observability
// sinks into one experiment config.
func applyRoundFlags(cfg *sim.Fig5Config, rf cli.RoundFlags, sinks obsSinks) {
	cfg.Workers = rf.Workers
	cfg.Indexed = rf.Indexed
	cfg.Shards = rf.Shards
	cfg.Quorum = rf.Quorum
	cfg.Straggler = rf.Straggler
	cfg.Metrics = sinks.reg
	cfg.Trace = sinks.tracer
	cfg.Flight = sinks.flight
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// render writes experiment tables in the selected format.
var render = func(t *sim.Table) error { return t.Render(os.Stdout) }

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func runCoverage(ds *dataset.Dataset) error {
	sum, err := sim.Coverage(ds.Areas[0], 0, 50)
	if err != nil {
		return err
	}
	fmt.Printf("## Fig.1(b): coverage of channel %d in %s\n\n", sum.Channel, sum.Area)
	fmt.Printf("towers: %d, available fraction: %.1f%%\n\n%s\n",
		sum.Towers, 100*sum.AvailableFrac, sum.ASCIIMap)
	return nil
}

func runFig4AB(ds *dataset.Dataset, victims int, seed int64, quick bool) error {
	cfg := sim.DefaultFig4Config()
	cfg.Victims = victims
	if quick {
		cfg.Victims = 15
		cfg.ChannelCounts = []int{40, 129}
		cfg.KeepFractions = []float64{1, 0.5}
	}
	points, err := sim.Fig4AB(ds.Areas[3], cfg, seed)
	if err != nil {
		return err
	}
	return render(sim.Fig4ABTable(points))
}

func runFig4C(ds *dataset.Dataset, victims int, seed int64) error {
	points, err := sim.Fig4C(ds, victims, dataset.NumChannels, 250, seed)
	if err != nil {
		return err
	}
	return render(sim.Fig4CTable(points))
}

func runFig5AD(ds *dataset.Dataset, n, channels int, seed int64, quick bool, rf cli.RoundFlags, sinks obsSinks) error {
	cfg := sim.DefaultFig5Config()
	cfg.Bidders = n
	cfg.Channels = channels
	applyRoundFlags(&cfg, rf, sinks)
	if quick {
		cfg.Bidders = 25
		cfg.Channels = 30
		cfg.ZeroReplace = []float64{0.2, 0.6, 1.0}
		cfg.KeepFractions = []float64{0.25, 0.5}
	}
	points, baseline, err := sim.Fig5AD(ds.Areas[2], cfg, seed)
	if err != nil {
		return err
	}
	return render(sim.Fig5ADTable(points, baseline))
}

func runFig5EF(ds *dataset.Dataset, pops []int, channels int, seed int64, trials int, quick bool, rf cli.RoundFlags, sinks obsSinks) error {
	cfg := sim.DefaultFig5Config()
	cfg.Channels = channels
	cfg.Trials = trials
	applyRoundFlags(&cfg, rf, sinks)
	if quick {
		cfg.Trials = 1
		cfg.Channels = 30
		cfg.ZeroReplace = []float64{0.2, 0.6, 1.0}
		pops = []int{30}
	}
	points, err := sim.Fig5EF(ds.Areas[2], cfg, pops, seed)
	if err != nil {
		return err
	}
	return render(sim.Fig5EFTable(points))
}

func runMultiRound(ds *dataset.Dataset, seed int64, quick bool) error {
	cfg := sim.DefaultMultiRoundConfig()
	if quick {
		cfg.Bidders = 15
		cfg.Channels = 20
		cfg.Rounds = 5
	}
	points, err := sim.MultiRound(ds.Areas[2], cfg, seed)
	if err != nil {
		return err
	}
	return render(sim.MultiRoundTable(points))
}

func runBasicLeak(ds *dataset.Dataset, seed int64, quick bool) error {
	cfg := sim.DefaultBasicLeakConfig()
	if quick {
		cfg.Victims = 10
		cfg.Channels = 12
	}
	res, err := sim.BasicLeak(ds.Areas[3], cfg, seed)
	if err != nil {
		return err
	}
	return render(sim.BasicLeakTable(res))
}

func runPricing(ds *dataset.Dataset, seed int64, quick bool) error {
	cfg := sim.DefaultPricingConfig()
	if quick {
		cfg.Bidders = 12
		cfg.Channels = 10
		cfg.Trials = 1
	}
	points, err := sim.Pricing(ds.Areas[2], cfg, seed)
	if err != nil {
		return err
	}
	return render(sim.PricingTable(points))
}

func runTheorems(ds *dataset.Dataset, seed int64, quick bool) error {
	cfg := sim.DefaultTheoremConfig()
	if quick {
		cfg.Trials = 20_000
	}
	tbl, err := sim.TheoremsTable(cfg, seed)
	if err != nil {
		return err
	}
	if err := render(tbl); err != nil {
		return err
	}
	if ds != nil {
		t4, err := sim.Theorem4Table(ds.Areas[2], 20, 40, seed)
		if err != nil {
			return err
		}
		return render(t4)
	}
	return nil
}
