// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark results can be committed and
// diffed across PRs without parsing fragile text tables.
//
// Usage:
//
//	go test -bench='Parallel|ZeroAlloc' -benchmem -run=NONE . | go run ./cmd/benchjson > BENCH_PR1.json
//
// Each benchmark line becomes one record carrying the name, iteration
// count, ns/op, and any further `value unit` metric pairs (B/op,
// allocs/op, and b.ReportMetric extras). Context lines (goos, goarch,
// cpu, pkg) are captured once at the top level. The tool uses only the
// standard library.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Package string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in *os.File, out *os.File) error {
	var doc Document
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   1234   987.6 ns/op   16 B/op   2 allocs/op   3.5 extra-metric
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in `value unit` pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
		} else {
			r.Metrics[fields[i+1]] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}
