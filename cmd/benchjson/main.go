// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark results can be committed and
// diffed across PRs without parsing fragile text tables.
//
// Usage:
//
//	go test -bench='Parallel|ZeroAlloc' -benchmem -run=NONE . | go run ./cmd/benchjson > BENCH_PR2.json
//	go run ./cmd/benchjson -compare BENCH_PR1.json BENCH_PR2.json
//
// Each benchmark line becomes one record carrying the name, iteration
// count, ns/op, and any further `value unit` metric pairs (B/op,
// allocs/op, and b.ReportMetric extras). Context lines (goos, goarch,
// cpu, pkg) are captured once at the top level. With -compare, two
// previously emitted documents are diffed on ns/op and allocs/op for the
// benchmarks they share. The tool uses only the standard library.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Package string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var err error
	if len(os.Args) == 4 && os.Args[1] == "-compare" {
		err = compare(os.Args[2], os.Args[3], os.Stdout)
	} else {
		err = run(os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// compare prints a table diffing ns/op and allocs/op between two committed
// benchmark documents, keyed on benchmark name (GOMAXPROCS suffix and all).
// Benchmarks present in only one document are listed but not diffed.
func compare(oldPath, newPath string, out *os.File) error {
	load := func(path string) (map[string]Result, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var doc Document
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]Result, len(doc.Results))
		for _, r := range doc.Results {
			m[r.Name] = r
		}
		return m, nil
	}
	oldRes, err := load(oldPath)
	if err != nil {
		return err
	}
	newRes, err := load(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldRes)+len(newRes))
	for n := range oldRes {
		names = append(names, n)
	}
	for n := range newRes {
		if _, dup := oldRes[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%-55s %14s %14s %8s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	for _, n := range names {
		o, haveOld := oldRes[n]
		w, haveNew := newRes[n]
		switch {
		case !haveNew:
			fmt.Fprintf(out, "%-55s %14.1f %14s %8s %12s\n", n, o.NsPerOp, "-", "-", "-")
		case !haveOld:
			fmt.Fprintf(out, "%-55s %14s %14.1f %8s %12s\n", n, "-", w.NsPerOp, "new", allocsCell(o, w))
		default:
			delta := "n/a"
			if o.NsPerOp > 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(w.NsPerOp-o.NsPerOp)/o.NsPerOp)
			}
			fmt.Fprintf(out, "%-55s %14.1f %14.1f %8s %12s\n", n, o.NsPerOp, w.NsPerOp, delta, allocsCell(o, w))
		}
	}
	return nil
}

// allocsCell renders the allocs/op transition ("old→new", or the single
// value when unchanged or only one side reports it).
func allocsCell(o, w Result) string {
	ov, oOK := o.Metrics["allocs/op"]
	wv, wOK := w.Metrics["allocs/op"]
	switch {
	case oOK && wOK && ov != wv:
		return fmt.Sprintf("%.0f→%.0f", ov, wv)
	case wOK:
		return fmt.Sprintf("%.0f", wv)
	case oOK:
		return fmt.Sprintf("%.0f", ov)
	}
	return "-"
}

func run(in *os.File, out *os.File) error {
	var doc Document
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   1234   987.6 ns/op   16 B/op   2 allocs/op   3.5 extra-metric
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in `value unit` pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
		} else {
			r.Metrics[fields[i+1]] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}
