// Command lppa-load is the unified load harness: it drives the one-shot
// round variants and the epochal service through configurable workload
// runs — population sweeps, density mixes, Poisson/burst arrivals with
// churn, seeded chaos, admission rate limits — and emits a versioned
// LOAD_*.json report with throughput, per-phase latency percentiles, and
// an embedded SLO block the compare gate enforces in CI.
//
// Usage:
//
//	lppa-load run -n 10000 -density mixed -variants sharded,service -o LOAD_PR9.json
//	lppa-load compare LOAD_PR9.json candidate.json
//
// The run subcommand sweeps the cross product of -n populations and
// -variants; compare exits nonzero when the candidate misses any SLO the
// baseline records (and fails closed when the baseline is missing or has
// no SLO block).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"lppa/internal/cli"
	"lppa/internal/faults"
	"lppa/internal/load"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lppa-load:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "compare":
			return compareMain(args[1:], out)
		case "run":
			args = args[1:]
		}
	}
	return runMain(args, out)
}

func runMain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lppa-load run", flag.ContinueOnError)
	rf := cli.RoundFlags{Workers: runtime.GOMAXPROCS(0), Density: "mixed"}
	rf.Register(fs)
	rf.RegisterClient(fs)
	populations := fs.String("n", "10000", "comma-separated bidder populations to sweep")
	variants := fs.String("variants", "sharded,service",
		fmt.Sprintf("comma-separated execution variants to sweep (%s)", strings.Join(load.Variants(), "|")))
	rounds := fs.Int("rounds", 5, "rounds per run (for service: the epoch budget spanning the arrival horizon)")
	epochSeconds := fs.Float64("epoch-seconds", 1, "service seal cadence on the logical clock, in seconds")
	rateLimit := fs.Float64("rate-limit", 0, "service admission token rate (submissions per logical second); 0 admits everything")
	seed := fs.Int64("seed", 1, "root seed; same seed + same config = byte-identical award transcripts")
	outPath := fs.String("o", "", "write the report to this file (default stdout)")
	headroom := fs.Float64("slo-headroom", 4,
		"embedded SLO slack: throughput floor = measured/headroom, phase p99 ceiling = measured*headroom")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address while the sweep runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if err := rf.Validate(); err != nil {
		return err
	}
	if err := cli.ServePprof(*pprofAddr); err != nil {
		return err
	}
	if *rounds < 1 {
		return fmt.Errorf("-rounds %d, need at least 1", *rounds)
	}
	chaos, err := loadChaos(&rf)
	if err != nil {
		return err
	}
	ns, err := parseInts(*populations)
	if err != nil {
		return fmt.Errorf("-n: %w", err)
	}
	var names []string
	for _, v := range strings.Split(*variants, ",") {
		if v = strings.TrimSpace(v); v != "" {
			names = append(names, v)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("-variants is empty")
	}

	report := &load.Report{
		Schema: load.Schema,
		GOOS:   runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Seed: *seed,
	}
	for _, n := range ns {
		for _, variant := range names {
			cfg := load.Config{
				Bidders: n, Density: rf.Density, Variant: variant,
				Shards: rf.Shards, Workers: rf.Workers,
				Rounds: *rounds, Seed: *seed,
				EpochSeconds: *epochSeconds, RateLimit: *rateLimit,
				Chaos: chaos,
			}
			fmt.Fprintf(os.Stderr, "lppa-load: running %s...\n", cfg.Name())
			rep, err := load.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", cfg.Name(), err)
			}
			fmt.Fprintf(os.Stderr, "lppa-load: %s: %.2f rounds/sec, %d epochs, %d shed, digest %.12s\n",
				rep.Name, rep.RoundsPerSec, rep.Epochs, rep.Shed, rep.AwardDigest)
			report.Runs = append(report.Runs, *rep)
		}
	}
	slo, err := load.DeriveSLO(report, *headroom)
	if err != nil {
		return err
	}
	report.SLO = slo
	if err := report.Validate(); err != nil {
		return fmt.Errorf("emitting invalid report: %w", err)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return report.WriteJSON(out)
}

// loadChaos maps the shared -chaos flags onto the harness's in-process
// fault model: only the probabilistic frame classes (drop, dup) exist
// without a wire, so the connection-level classes are rejected rather
// than silently ignored.
func loadChaos(rf *cli.RoundFlags) (faults.Config, error) {
	cc, err := rf.ChaosConfig()
	if err != nil || cc == nil {
		return faults.Config{}, err
	}
	if cc.DropFrame == 0 && cc.DupFrame == 0 {
		return faults.Config{}, fmt.Errorf("-chaos %s has no in-process equivalent (use drop or dup)", rf.Chaos)
	}
	return faults.Config{DropFrame: cc.DropFrame, DupFrame: cc.DupFrame}, nil
}

func compareMain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lppa-load compare", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: lppa-load compare <baseline.json> <candidate.json>")
	}
	violations, err := load.CompareFiles(fs.Arg(0), fs.Arg(1))
	if err != nil {
		return err
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(out, "SLO VIOLATION:", v)
		}
		return fmt.Errorf("%d SLO violation(s) against %s", len(violations), fs.Arg(0))
	}
	fmt.Fprintf(out, "load SLO check passed against %s\n", fs.Arg(0))
	return nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no populations in %q", csv)
	}
	return out, nil
}
