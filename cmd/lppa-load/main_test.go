package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lppa/internal/load"
)

// runSnapshot runs the harness CLI end to end into a temp report file and
// returns the decoded report.
func runSnapshot(t *testing.T, path string, extra ...string) *load.Report {
	t.Helper()
	args := append([]string{"run", "-n", "40", "-rounds", "2", "-workers", "2",
		"-variants", "sharded,service", "-seed", "7", "-o", path}, extra...)
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := load.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunEmitsGatedReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "LOAD_test.json")
	rep := runSnapshot(t, path)
	if len(rep.Runs) != 2 {
		t.Fatalf("runs = %d, want sharded + service", len(rep.Runs))
	}
	if rep.Run("sharded8/mixed/n40") == nil || rep.Run("service/mixed/n40") == nil {
		t.Fatalf("run names: %q, %q", rep.Runs[0].Name, rep.Runs[1].Name)
	}
	if rep.SLO == nil || len(rep.SLO.MinRoundsPerSec) == 0 {
		t.Fatal("emitted report has no SLO block")
	}
	for _, run := range rep.Runs {
		if run.RoundsPerSec <= 0 || run.AwardDigest == "" {
			t.Errorf("%s: degenerate run %+v", run.Name, run)
		}
	}
	// The emitted snapshot gates itself clean.
	var buf bytes.Buffer
	if err := run([]string{"compare", path, path}, &buf); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "passed") {
		t.Errorf("compare output: %q", buf.String())
	}
}

func TestCompareFailsOnViolation(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	rep := runSnapshot(t, baseline)

	// Forge a candidate whose throughput collapsed below every floor.
	for i := range rep.Runs {
		rep.Runs[i].RoundsPerSec = rep.Runs[i].RoundsPerSec / 1e6
	}
	rep.SLO = nil
	candidate := filepath.Join(dir, "candidate.json")
	f, err := os.Create(candidate)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run([]string{"compare", baseline, candidate}, &buf); err == nil {
		t.Fatalf("regressed candidate passed the gate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "SLO VIOLATION") {
		t.Errorf("compare output: %q", buf.String())
	}

	// Missing baseline: error, never a pass (fail closed).
	if err := run([]string{"compare", filepath.Join(dir, "missing.json"), candidate}, &buf); err == nil {
		t.Error("missing baseline passed the gate")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"run", "-n", "0"},
		{"run", "-n", "ten"},
		{"run", "-rounds", "0"},
		{"run", "-workers", "-2"},
		{"run", "-density", "metropolis"},
		{"run", "-variants", "warp"},
		{"run", "-chaos", "slowloris"}, // no in-process equivalent
		{"run", "stray-arg"},
		{"compare", "only-one.json"},
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestRunChaosAndRateLimit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "LOAD_chaos.json")
	rep := runSnapshot(t, path, "-chaos", "drop", "-chaos-rate", "0.1", "-rate-limit", "10")
	for _, run := range rep.Runs {
		if run.Dropped == 0 {
			t.Errorf("%s: drop chaos at 10%% dropped nothing", run.Name)
		}
	}
	if svc := rep.Run("service/mixed/n40"); svc == nil || svc.Shed == 0 {
		t.Errorf("service run shed nothing under -rate-limit 10: %+v", svc)
	}
}
