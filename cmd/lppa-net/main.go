// Command lppa-net runs the LPPA parties over real TCP connections.
//
// Demo mode (default) spawns the TTP, the auctioneer, and N bidders inside
// one process, wired over loopback sockets, and prints the round outcome:
//
//	lppa-net -bidders 12 -channels 8
//
// Role mode runs a single party, for multi-process or multi-machine
// deployments:
//
//	lppa-net -role ttp        -listen :7001 -channels 8
//	lppa-net -role auctioneer -listen :7002 -ttp host:7001 -bidders 12 -channels 8
//	lppa-net -role bidder     -id 3 -ttp host:7001 -auctioneer host:7002 -channels 8 \
//	         -x 17 -y 40 -bids 10,0,30,5,0,0,80,2
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"lppa"
	"lppa/internal/cli"
	"lppa/internal/epoch"
	"lppa/internal/obs"
	"lppa/internal/obs/ops"
	"lppa/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lppa-net:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lppa-net", flag.ContinueOnError)
	var (
		role     = fs.String("role", "demo", "demo|ttp|auctioneer|bidder")
		listen   = fs.String("listen", "127.0.0.1:0", "listen address (ttp/auctioneer)")
		ttpAddr  = fs.String("ttp", "", "TTP address (auctioneer/bidder)")
		aucAddr  = fs.String("auctioneer", "", "auctioneer address (bidder)")
		bidders  = fs.Int("bidders", 8, "number of bidders in the round")
		channels = fs.Int("channels", 8, "auctioned channels k")
		bmax     = fs.Uint64("bmax", 100, "bid upper bound")
		lambda   = fs.Uint64("lambda", 2, "interference half-range (cells)")
		maxXY    = fs.Uint64("domain", 99, "coordinate domain upper bound")
		id       = fs.Int("id", 0, "bidder id (bidder role)")
		x        = fs.Uint64("x", 0, "bidder x coordinate")
		y        = fs.Uint64("y", 0, "bidder y coordinate")
		bidsCSV  = fs.String("bids", "", "bidder's comma-separated bids, one per channel")
		p0       = fs.Float64("p0", 0.7, "probability a zero bid stays undisguised")
		pricing  = fs.String("pricing", "first", "charging rule: first|second")
		seedStr  = fs.String("secret", "lppa-net-demo-secret", "TTP key-derivation secret")
		seed     = fs.Int64("seed", 42, "randomness seed")
		metrics  = fs.String("metrics-addr", "", "serve metrics over HTTP on this address (GET /metrics = Prometheus text, other paths = JSON); keeps serving after the round until killed")

		cliTO        = fs.Duration("client-timeout", 0, "bidder per-exchange deadline, 0 = none (bidder/demo)")
		chaosBidders = fs.Int("chaos-bidders", 1, "how many bidders the demo chaos soak injects faults into")

		traceOut   = fs.String("trace-out", "", "write this party's round as a Chrome trace_event JSON when it finishes (demo/auctioneer/bidder); view at ui.perfetto.dev")
		flightDir  = fs.String("flight-dir", "", "flight-recorder directory: failed, degraded, or SLO-breaching rounds auto-dump their traces (demo/auctioneer)")
		flightKeep = fs.Int("flight-keep", 8, "round traces the flight recorder ring-buffers for dump context")
		flightSLO  = fs.Duration("flight-slo", 0, "round-duration SLO: healthy rounds slower than this still dump, 0 disables")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this address for live profiling")
	)
	// Round-shaping, epoch, and ops flags come from the shared cli blocks,
	// so lppa-net, lppa-sim, and lppa-load agree on names, defaults, and
	// help strings.
	var rf cli.RoundFlags
	rf.Register(fs)
	rf.RegisterClient(fs)
	var ef cli.EpochFlags
	ef.Register(fs)
	var of cli.OpsFlags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rf.Validate(); err != nil {
		return err
	}
	if err := ef.Validate(fs); err != nil {
		return err
	}
	if err := of.Validate(); err != nil {
		return err
	}

	params := lppa.Params{Channels: *channels, Lambda: *lambda, MaxX: *maxXY, MaxY: *maxXY, BMax: *bmax}
	if err := params.Validate(); err != nil {
		return err
	}
	var secondPrice bool
	switch *pricing {
	case "first":
	case "second":
		secondPrice = true
	default:
		return fmt.Errorf("unknown pricing rule %q", *pricing)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	reg, mux, err := serveMetrics(*metrics, log)
	if err != nil {
		return err
	}
	if err := cli.ServePprof(*pprofAddr); err != nil {
		return err
	}

	chaosCfg, err := rf.ChaosConfig()
	if err != nil {
		return err
	}

	// One tracer per process; in demo mode all three parties share it
	// (TTP spans under a "ttp" process name), so the exported trace shows
	// the full cross-party round.
	proc := *role
	if proc == "demo" {
		proc = "auctioneer"
	}
	var tracer *lppa.Tracer
	if *traceOut != "" || *flightDir != "" {
		tracer = obs.NewTracer(proc)
	}
	var flight *lppa.FlightRecorder
	if *flightDir != "" {
		flight = obs.NewFlightRecorder(*flightDir, *flightKeep, *flightSLO)
	}

	// The ops plane rides the metrics mux: /healthz, /readyz, /statusz
	// next to /metrics. Epoch mode always gets one (cheap, and the smoke
	// test curls it); otherwise only when an ops flag asked for it.
	sampler := of.Sampler(proc, *seed)
	var plane *ops.Plane
	if (ef.Epochs > 0 && *role == "demo") || of.Enabled() {
		plane, err = of.Plane(reg, flight, sampler)
		if err != nil {
			return err
		}
		plane.Routes(mux)
	}

	switch *role {
	case "demo":
		cfg := demoConfig{
			bidders: *bidders, secret: *seedStr, p0: *p0, seed: *seed,
			secondPrice: secondPrice, flags: rf, clientTimeout: *cliTO,
			chaos: chaosCfg, chaosBidders: *chaosBidders,
			tracer: tracer, flight: flight, traceOut: *traceOut,
			plane: plane, sampler: sampler,
		}
		if ef.Epochs > 0 {
			return runEpochDemo(params, cfg, ef, reg)
		}
		return runDemo(params, cfg, log, reg)
	case "ttp":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		cfg, err := transport.New(transport.WithLogger(log), transport.WithMetrics(reg),
			transport.WithTrace(tracer))
		if err != nil {
			return err
		}
		srv, err := transport.NewTTPServerWithConfig(params, []byte(*seedStr), 5, 8, ln, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("TTP listening on %s\n", srv.Addr())
		select {} // serve until killed
	case "auctioneer":
		if *ttpAddr == "" {
			return fmt.Errorf("auctioneer needs -ttp")
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		cfg, err := auctioneerConfig(log, reg, secondPrice, rf, tracer, flight, ef.RateLimit, plane)
		if err != nil {
			return err
		}
		srv, err := transport.NewAuctioneerServerWithConfig(params, *bidders, *ttpAddr, ln, *seed, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("auctioneer listening on %s, waiting for %d bidders\n", srv.Addr(), *bidders)
		outcome, err := srv.Outcome()
		if err != nil {
			return fmt.Errorf("round failed: %w", err)
		}
		printOutcome(outcome)
		if err := srv.Close(); err != nil {
			return err
		}
		if err := writeTrace(tracer, *traceOut); err != nil {
			return err
		}
		lingerForScrape(reg)
		return nil
	case "bidder":
		if *ttpAddr == "" || *aucAddr == "" {
			return fmt.Errorf("bidder needs -ttp and -auctioneer")
		}
		bids, err := parseBids(*bidsCSV, *channels)
		if err != nil {
			return err
		}
		client := &lppa.BidderClient{ID: *id, Params: params, Policy: lppa.DisguisePolicy{P0: *p0, Decay: 0.95},
			Retry: rf.RetryPolicy(), Timeout: *cliTO, Tracer: tracer}
		res, err := client.Participate(*ttpAddr, *aucAddr, lppa.Point{X: *x, Y: *y}, bids,
			rand.New(rand.NewSource(*seed+int64(*id))))
		if err != nil {
			return err
		}
		printResult(*res)
		return writeTrace(tracer, *traceOut)
	default:
		return fmt.Errorf("unknown role %q", *role)
	}
}

// writeTrace dumps everything the tracer buffered as one Chrome
// trace_event file, loadable in ui.perfetto.dev or chrome://tracing.
func writeTrace(tracer *lppa.Tracer, path string) error {
	if tracer == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := obs.WriteChromeTrace(f, tracer.Snapshot()); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", path)
	return nil
}

// serveMetrics starts the optional HTTP metrics endpoint and returns the
// registry every party in this process records into plus the mux the ops
// plane mounts its probe routes on (both nil when disabled). The registry
// handler keeps the root so existing scrape configs and the JSON paths
// work unchanged; /healthz, /readyz, and /statusz are layered on by
// Plane.Routes.
func serveMetrics(addr string, log *slog.Logger) (*obs.Registry, *http.ServeMux, error) {
	if addr == "" {
		return nil, nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("metrics listener: %w", err)
	}
	reg := obs.NewRegistry()
	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Error("metrics server", "err", err)
		}
	}()
	return reg, mux, nil
}

// lingerForScrape keeps a finished process alive when metrics are enabled so
// the round's snapshot stays scrapeable; without -metrics-addr it returns
// immediately.
func lingerForScrape(reg *obs.Registry) {
	if reg == nil {
		return
	}
	fmt.Println("round done; serving metrics until killed")
	select {}
}

// demoConfig bundles runDemo's knobs (too many for positional arguments).
type demoConfig struct {
	bidders       int
	secret        string
	p0            float64
	seed          int64
	secondPrice   bool
	flags         cli.RoundFlags
	clientTimeout time.Duration
	chaos         *lppa.FaultConfig
	chaosBidders  int
	tracer        *lppa.Tracer
	flight        *lppa.FlightRecorder
	traceOut      string
	plane         *ops.Plane
	sampler       *obs.TraceSampler
}

// auctioneerConfig assembles the auctioneer's transport config through the
// options constructor, folding in the parsed flags. A positive rateLimit
// wires an epoch admission gate into the accept path, so over-rate
// connections are shed with a retry-after frame before any decode work;
// a non-nil plane additionally gets each shed connection as an
// admission_shed event.
func auctioneerConfig(log *slog.Logger, reg *obs.Registry, secondPrice bool, rf cli.RoundFlags,
	tracer *lppa.Tracer, flight *lppa.FlightRecorder, rateLimit float64, plane *ops.Plane) (transport.Config, error) {
	opts := []transport.Option{
		transport.WithLogger(log),
		transport.WithMetrics(reg),
		transport.WithTrace(tracer),
		transport.WithFlightRecorder(flight),
	}
	if secondPrice {
		opts = append(opts, transport.WithSecondPriceCharging())
	}
	if rf.Quorum > 0 {
		opts = append(opts, transport.WithQuorum(rf.Quorum))
	}
	if rf.Straggler > 0 {
		opts = append(opts, transport.WithStragglerTimeout(rf.Straggler))
	}
	if rateLimit > 0 {
		adm, err := epoch.NewAdmission((&cli.EpochFlags{RateLimit: rateLimit}).AdmissionConfig(), reg)
		if err != nil {
			return transport.Config{}, err
		}
		opts = append(opts, transport.WithAdmission(adm.AdmitConn))
		if plane != nil {
			opts = append(opts, transport.WithShedNotify(plane.NoteShed))
		}
	}
	return transport.New(opts...)
}

func runDemo(params lppa.Params, cfg demoConfig, log *slog.Logger, reg *obs.Registry) error {
	n := cfg.bidders
	lnTTP, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	var ttpTracer *lppa.Tracer
	if cfg.tracer != nil {
		ttpTracer = cfg.tracer.Named("ttp")
	}
	ttpCfg, err := transport.New(transport.WithLogger(log), transport.WithMetrics(reg),
		transport.WithTrace(ttpTracer))
	if err != nil {
		return err
	}
	ttpSrv, err := transport.NewTTPServerWithConfig(params, []byte(cfg.secret), 5, 8, lnTTP, ttpCfg)
	if err != nil {
		return err
	}
	defer ttpSrv.Close()

	lnAuc, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	aucCfg, err := auctioneerConfig(log, reg, cfg.secondPrice, cfg.flags, cfg.tracer, cfg.flight, 0, cfg.plane)
	if err != nil {
		return err
	}
	aucSrv, err := transport.NewAuctioneerServerWithConfig(params, n, ttpSrv.Addr().String(), lnAuc, cfg.seed, aucCfg)
	if err != nil {
		return err
	}
	defer aucSrv.Close()
	fmt.Printf("TTP on %s, auctioneer on %s, %d bidders joining...\n",
		ttpSrv.Addr(), aucSrv.Addr(), n)
	var injector *lppa.FaultInjector
	if cfg.chaos != nil {
		injector = lppa.NewFaultInjector(cfg.seed, *cfg.chaos)
		fmt.Printf("chaos soak: injecting faults into bidders [0, %d) at seed %d\n", cfg.chaosBidders, cfg.seed)
	}

	rng := rand.New(rand.NewSource(cfg.seed))
	var wg sync.WaitGroup
	results := make([]*lppa.Result, n)
	errs := make([]error, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		pt := lppa.Point{X: uint64(rng.Intn(int(params.MaxX + 1))), Y: uint64(rng.Intn(int(params.MaxY + 1)))}
		bids := make([]uint64, params.Channels)
		for r := range bids {
			if rng.Intn(3) > 0 {
				bids[r] = uint64(rng.Intn(int(params.BMax))) + 1
			}
		}
		wg.Add(1)
		go func(i int, pt lppa.Point, bids []uint64) {
			defer wg.Done()
			client := &lppa.BidderClient{ID: i, Params: params, Policy: lppa.DisguisePolicy{P0: cfg.p0, Decay: 0.95},
				Retry: cfg.flags.RetryPolicy(), Timeout: cfg.clientTimeout, Tracer: cfg.tracer}
			if injector != nil && i < cfg.chaosBidders {
				// Fault only the auctioneer leg: the key-ring fetch stays
				// clean so every class exercises the submission path. The
				// crash classes hit one connection only — crash once,
				// restart clean — so the retried submission must be rescued
				// by the server's nonce dedup rather than die forever.
				aucAddr := aucSrv.Addr().String()
				crashOnce := cfg.chaos.CloseAfterFrames > 0 || cfg.chaos.KillAfterFrames > 0
				dials := 0
				client.Dial = func(network, addr string) (net.Conn, error) {
					conn, err := net.Dial(network, addr)
					if err != nil || addr != aucAddr {
						return conn, err
					}
					dials++
					if crashOnce && dials > 1 {
						return conn, nil
					}
					return injector.Conn(conn), nil
				}
			}
			results[i], errs[i] = client.Participate(ttpSrv.Addr().String(), aucSrv.Addr().String(),
				pt, bids, rand.New(rand.NewSource(cfg.seed+int64(i)+1)))
		}(i, pt, bids)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			if cfg.chaos != nil && i < cfg.chaosBidders {
				fmt.Printf("bidder %2d: gave up under injected faults: %v\n", i, err)
				continue
			}
			return fmt.Errorf("bidder %d: %w", i, err)
		}
	}
	outcome, err := aucSrv.Outcome()
	if err != nil {
		return fmt.Errorf("round failed: %w", err)
	}
	fmt.Printf("round completed in %v\n\n", time.Since(start).Round(time.Millisecond))
	for _, res := range results {
		if res != nil {
			printResult(*res)
		}
	}
	printOutcome(outcome)
	if err := writeTrace(cfg.tracer, cfg.traceOut); err != nil {
		return err
	}
	lingerForScrape(reg)
	return nil
}

func printResult(r lppa.Result) {
	switch {
	case r.Won:
		fmt.Printf("bidder %2d: WON channel %d, pays %d\n", r.BidderID, r.Channel, r.Price)
	case r.Voided:
		fmt.Printf("bidder %2d: award voided (zero bid won)\n", r.BidderID)
	default:
		fmt.Printf("bidder %2d: no spectrum this round\n", r.BidderID)
	}
}

func printOutcome(o *transport.RoundOutcome) {
	fmt.Printf("\nauctioneer: %d results, revenue %d, %d voided awards\n",
		len(o.Results), o.Revenue, o.Voided)
	if len(o.Excluded) > 0 {
		fmt.Printf("excluded bidders (missed the straggler deadline): %v\n", o.Excluded)
	}
}

func parseBids(csv string, k int) ([]uint64, error) {
	if csv == "" {
		return nil, fmt.Errorf("bidder needs -bids")
	}
	parts := strings.Split(csv, ",")
	if len(parts) != k {
		return nil, fmt.Errorf("%d bids for %d channels", len(parts), k)
	}
	out := make([]uint64, k)
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parse bid %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}
