package main

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"lppa"
	"lppa/internal/cli"
	"lppa/internal/epoch"
	"lppa/internal/obs"
	"lppa/internal/round"
)

// runEpochDemo drives the epochal auction service in-process: -epochs
// populations stream through the admission gate, each sealed epoch
// allocates while the next one collects, and the batched ledgers settle
// billing and quota against a simulated datastore. It prints every epoch's
// outcome as it lands plus an accounting summary, so `-epochs 5
// -rate-limit 100` is a one-command tour of the service API.
func runEpochDemo(params lppa.Params, cfg demoConfig, ef cli.EpochFlags, reg *obs.Registry) error {
	ring, err := lppa.DeriveKeyRing([]byte(cfg.secret), params.Channels, 5, 8)
	if err != nil {
		return err
	}
	// One simulated datastore per ledger; the thresholds keep flushes
	// batched mid-epoch while the epoch-close barrier keeps totals exact.
	billingStore, quotaStore := epoch.NewMemStore(), epoch.NewMemStore()
	billing, err := epoch.NewAccountant("billing", billingStore, params.BMax*4, reg)
	if err != nil {
		return err
	}
	quota, err := epoch.NewAccountant("quota", quotaStore, 64, reg)
	if err != nil {
		return err
	}
	// The sampler rides the round options so one epoch in K carries full
	// spans; the ops plane drains those spans, watches the SLO windows,
	// and serves /healthz + /statusz off the metrics mux.
	roundOpts := cfg.flags.RoundOptions()
	if cfg.sampler != nil {
		roundOpts = append(roundOpts, round.WithTraceSampler(cfg.sampler))
	}
	svc, err := epoch.New(epoch.Config{
		Params:       params,
		Ring:         ring,
		Seed:         cfg.seed,
		Policy:       lppa.DisguisePolicy{P0: cfg.p0, Decay: 0.95},
		Admission:    ef.AdmissionConfig(),
		Billing:      billing,
		Quota:        quota,
		Interval:     ef.Interval,
		RoundOptions: roundOpts,
		Registry:     reg,
		Ops:          cfg.plane,
	})
	if err != nil {
		return err
	}

	// ran counts epochs that actually allocated: a population the gate
	// rejected wholesale leaves an empty intake, and sealing an empty
	// intake is a no-op rather than an empty epoch.
	ran := 0
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for res := range svc.Results() {
			ran++
			if res.Err != nil {
				fmt.Printf("epoch %d: FAILED: %v\n", res.Epoch, res.Err)
				continue
			}
			out := res.Result.Outcome
			fmt.Printf("epoch %d: %d bidders, %d satisfied, revenue %d, %d voided\n",
				res.Epoch, len(res.Bidders), out.SatisfiedBidders, out.Revenue, res.Result.Voided)
		}
	}()

	rng := rand.New(rand.NewSource(cfg.seed))
	admitted, shed := 0, 0
	start := time.Now()
	for e := 0; e < ef.Epochs; e++ {
		for i := 0; i < cfg.bidders; i++ {
			sub := epoch.Submission{
				Bidder: i,
				Point:  lppa.Point{X: uint64(rng.Intn(int(params.MaxX + 1))), Y: uint64(rng.Intn(int(params.MaxY + 1)))},
				Bids:   make([]uint64, params.Channels),
			}
			for r := range sub.Bids {
				if rng.Intn(3) > 0 {
					sub.Bids[r] = uint64(rng.Intn(int(params.BMax))) + 1
				}
			}
			err := svc.Submit(sub)
			var rl *epoch.ErrRateLimited
			switch {
			case errors.As(err, &rl):
				shed++
			case err != nil:
				return err
			default:
				admitted++
			}
		}
		if ef.Interval > 0 {
			time.Sleep(ef.Interval)
		} else if err := svc.Seal(); err != nil {
			return err
		}
	}
	if err := svc.Close(); err != nil {
		return err
	}
	<-drained

	elapsed := time.Since(start)
	fmt.Printf("\n%d epochs in %v: %d submissions admitted, %d rate-limited\n",
		ran, elapsed.Round(time.Millisecond), admitted, shed)
	fmt.Printf("billing ledger: %d collected over %d store calls / %d key writes\n",
		storeSum(billingStore), billingStore.Calls(), billingStore.Writes())
	fmt.Printf("quota ledger:   %d debits over %d store calls / %d key writes\n",
		storeSum(quotaStore), quotaStore.Calls(), quotaStore.Writes())
	lingerForScrape(reg)
	return nil
}

func storeSum(s *epoch.MemStore) uint64 {
	var sum uint64
	for _, v := range s.Totals() {
		sum += v
	}
	return sum
}
