package main

import "testing"

func TestDemoRound(t *testing.T) {
	args := []string{"-role", "demo", "-bidders", "5", "-channels", "4", "-domain", "30"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownRoleRejected(t *testing.T) {
	if err := run([]string{"-role", "wizard"}); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestRoleFlagValidation(t *testing.T) {
	if err := run([]string{"-role", "auctioneer", "-channels", "4"}); err == nil {
		t.Fatal("auctioneer without -ttp accepted")
	}
	if err := run([]string{"-role", "bidder", "-channels", "4"}); err == nil {
		t.Fatal("bidder without addresses accepted")
	}
	if err := run([]string{"-role", "demo", "-channels", "0"}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestParseBids(t *testing.T) {
	got, err := parseBids("1, 0,42", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 || got[2] != 42 {
		t.Errorf("parseBids = %v", got)
	}
	if _, err := parseBids("1,2", 3); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := parseBids("", 1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := parseBids("x", 1); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestDemoRoundSecondPrice(t *testing.T) {
	args := []string{"-role", "demo", "-bidders", "5", "-channels", "4", "-domain", "30", "-pricing", "second"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownPricingRejected(t *testing.T) {
	if err := run([]string{"-role", "demo", "-pricing", "third"}); err == nil {
		t.Fatal("unknown pricing accepted")
	}
}
