package main

import (
	"path/filepath"
	"testing"
)

func TestRunTinyAttack(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "ds.gob")
	for _, area := range []string{"1", "4"} {
		args := []string{"-tiny", "-area", area, "-victims", "4", "-channels", "12", "-cache", cache}
		if err := run(args); err != nil {
			t.Fatalf("area %s: %v", area, err)
		}
	}
}

func TestRunRejectsBadArea(t *testing.T) {
	if err := run([]string{"-tiny", "-area", "0"}); err == nil {
		t.Fatal("area 0 accepted")
	}
	if err := run([]string{"-tiny", "-area", "5"}); err == nil {
		t.Fatal("area 5 accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-victims"}); err == nil {
		t.Fatal("dangling flag accepted")
	}
}
