// Command lppa-attack demonstrates the paper's location-inference attacks:
// it generates the dataset, places secondary users, collects their
// (plaintext) bid vectors as a curious auctioneer would, and geo-locates
// each victim with BCM (Algorithm 1) and BPM (Algorithm 2).
//
// Usage:
//
//	lppa-attack -area 4 -victims 10 -keep 0.25
//	lppa-attack -area 1 -victims 5 -channels 60 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"lppa"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lppa-attack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lppa-attack", flag.ContinueOnError)
	var (
		areaIdx  = fs.Int("area", 4, "area number 1-4 (4 = rural, attacks strongest)")
		victims  = fs.Int("victims", 10, "number of victims to localize")
		channels = fs.Int("channels", 129, "channels the auction covers")
		keep     = fs.Float64("keep", 0.25, "BPM keep fraction of BCM candidates")
		maxCells = fs.Int("maxcells", 250, "BPM threshold cap (0 = none)")
		seed     = fs.Int64("seed", 42, "dataset and placement seed")
		cache    = fs.String("cache", "", "dataset cache path")
		tiny     = fs.Bool("tiny", false, "20x20-cell, 12-channel dataset for CI smoke runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *areaIdx < 1 || *areaIdx > 4 {
		return fmt.Errorf("area %d out of 1-4", *areaIdx)
	}

	fmt.Fprintln(os.Stderr, "generating dataset...")
	cfg := lppa.DefaultDatasetConfig()
	if *tiny {
		cfg.Grid = lppa.Grid{Rows: 20, Cols: 20, SideMeters: 75_000}
		cfg.Channels = 12
	}
	ds, err := loadOrGen(*cache, cfg, *seed)
	if err != nil {
		return err
	}
	area := ds.Areas[*areaIdx-1]
	if *channels > area.NumChannels() {
		*channels = area.NumChannels()
	}

	rng := rand.New(rand.NewSource(*seed))
	pop, err := lppa.NewPopulation(area, *victims, lppa.DefaultBidConfig(), rng)
	if err != nil {
		return err
	}

	fmt.Printf("Attacking %d victims in %s over %d channels (grid %dx%d = %d cells)\n\n",
		*victims, area.Name, *channels, area.Grid.Rows, area.Grid.Cols, area.Grid.NumCells())
	fmt.Printf("%-4s %-10s %-12s %-12s %-12s %-10s %-8s\n",
		"SU", "true cell", "BCM cells", "BPM cells", "BPM best", "dist(km)", "hit")

	var bcmReports, bpmReports []lppa.PrivacyReport
	for i, su := range pop.SUs {
		bids := pop.Bids[i][:*channels]
		p, err := lppa.BCMFromBids(area, bids)
		if err != nil {
			return err
		}
		bcmReports = append(bcmReports, lppa.EvaluatePrivacy(p, su.Cell))

		res, err := lppa.BPM(area, p, bids, lppa.BPMConfig{KeepFraction: *keep, MaxCells: *maxCells})
		if err != nil {
			fmt.Printf("%-4d %-10v BPM skipped: %v\n", su.ID, su.Cell, err)
			bpmReports = append(bpmReports, lppa.EvaluatePrivacy(p, su.Cell))
			continue
		}
		rep := lppa.EvaluatePrivacy(res.Selected, su.Cell)
		bpmReports = append(bpmReports, rep)
		distKM := area.Grid.CellDistanceMeters(res.Best, su.Cell) / 1000
		hit := "MISS"
		if !rep.Failed {
			hit = "hit"
		}
		fmt.Printf("%-4d %-10v %-12d %-12d %-12v %-10.1f %-8s\n",
			su.ID, su.Cell, p.Count(), res.Selected.Count(), res.Best, distKM, hit)
	}

	fmt.Printf("\nBCM aggregate: %v\n", lppa.SummarizePrivacy(bcmReports))
	fmt.Printf("BPM aggregate: %v\n", lppa.SummarizePrivacy(bpmReports))
	return nil
}

func loadOrGen(cache string, cfg lppa.DatasetConfig, seed int64) (*lppa.Dataset, error) {
	if cache == "" {
		return lppa.GenerateDataset(cfg, seed)
	}
	return lppa.LoadOrGenerateDataset(cache, cfg, seed)
}
