# Convenience targets; everything is plain `go` underneath.

GO ?= go
CACHE ?= /tmp/lppa-ds.gob

.PHONY: all build test race cover bench bench-json bench-compare alloc-guard trace-guard fuzz fuzz-short chaos epoch-soak experiments examples metrics-snapshot trace-snapshot audit-snapshot load-snapshot load-compare load-smoke ops-smoke clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable snapshot of the auctioneer-path benchmarks. Each PR
# writes its own file (BENCH_PR1.json parallel pipeline, BENCH_PR2.json
# interning, BENCH_PR3.json the unified Run API with a nil registry,
# BENCH_PR5.json the tracing subsystem, BENCH_PR6.json the indexed
# candidate generation under both density mixes, BENCH_PR7.json the
# tile-sharded round, BENCH_PR8.json the epochal service and batched
# accounting) so bench-compare can diff across PRs. See EXPERIMENTS.md
# for the narrative.
bench-json:
	$(GO) test -run=NONE -benchmem \
		-bench='ZeroAllocMask|ParallelMaskAll|ParallelConflictGraph|ParallelPrivateRound|RankMemoAllocation|MaskDigest|PrivateConflictGraph|InternedIntersect|ConflictGraphN300|RankMemoN300|RoundTraceOverhead|ConflictGraphIndexed|IndexCursorRow|RoundSharded|EpochService|BatchedAccounting' \
		. | $(GO) run ./cmd/benchjson > BENCH_PR8.json

# Diff ns/op and allocs/op between the two most recent committed snapshots.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_PR7.json BENCH_PR8.json

# Per-phase/per-layer cost profile of one instrumented N=300 private
# round, as the observability registry's JSON snapshot. CI uploads it next
# to the BENCH_*.json artifacts.
metrics-snapshot:
	$(GO) run ./cmd/lppa-sim -experiment round -n 300 -cache $(CACHE) \
		-metrics-out METRICS_ROUND.json

# Chrome trace_event snapshot of one instrumented N=300 private round
# (open TRACE_ROUND.json in ui.perfetto.dev). CI uploads it next to the
# BENCH_*.json artifacts.
trace-snapshot:
	$(GO) run ./cmd/lppa-sim -experiment round -n 300 -cache $(CACHE) \
		-trace-out TRACE_ROUND.json

# Privacy-leakage audit of the same round: per-bidder masked-digest
# counts, conflict degrees, robust-BCM anonymity-set sizes, and — with the
# round tile-sharded — the planner's per-tile anonymity sets.
audit-snapshot:
	$(GO) run ./cmd/lppa-sim -experiment round -n 300 -shards 4 -cache $(CACHE) \
		-audit-out AUDIT_ROUND.json

# Fail if running a round with WithTrace(nil) — the production default —
# costs a single allocation over the untraced baseline: disabled tracing
# must be free. (BenchmarkRoundTraceOverhead reports the ns/op side.)
trace-guard:
	$(GO) test -run TestTraceDisabledAllocationFree -count=1 -v .

# Fail if the zero-allocation benchmarks report any allocations: the masked
# comparison, interned intersection, and index candidate-scan hot paths must
# stay allocation-free.
alloc-guard:
	$(GO) test -run=NONE -benchtime=1x -benchmem \
		-bench='ZeroAllocMask|InternedIntersect|IndexCursorRow' . \
		| awk '/^Benchmark/ { a = $$(NF-1); if (a+0 != 0) { print "allocs/op regression: " $$0; bad = 1 } print } END { exit bad }'

# Workload snapshot of the composed system: N=10000 mixed-density runs of
# the tile-sharded one-shot round and the epochal service (open-loop
# Poisson arrivals with churn), with throughput, per-phase latency
# percentiles, and an embedded SLO block (floor = measured/4, p99 ceiling
# = measured*4). Versioned per PR like the BENCH_*.json snapshots; see
# EXPERIMENTS.md for the narrative.
load-snapshot:
	$(GO) run ./cmd/lppa-load run -n 10000 -density mixed -variants sharded,service \
		-rounds 5 -rate-limit 5000 -seed 1 -o LOAD_PR9.json

# Gate a fresh run against the committed snapshot's SLOs. Exits nonzero on
# any violation — and fails closed when the baseline is missing or carries
# no SLO block.
load-compare:
	$(GO) run ./cmd/lppa-load run -n 10000 -density mixed -variants sharded,service \
		-rounds 5 -rate-limit 5000 -seed 1 -o /tmp/lppa-load-candidate.json
	$(GO) run ./cmd/lppa-load compare LOAD_PR9.json /tmp/lppa-load-candidate.json

# CI smoke: the harness tests under -race (determinism regression, fuzz
# seeds, compare gate fail-closed), then a small-N sweep across every
# variant with chaos and a rate limit, self-gated through the comparator.
load-smoke:
	$(GO) test -race -count=1 ./internal/load/ ./cmd/lppa-load/
	$(GO) run ./cmd/lppa-load run -n 200 -density mixed \
		-variants plain,interned,indexed,sharded,service \
		-rounds 3 -rate-limit 100 -chaos drop -chaos-rate 0.05 \
		-seed 1 -o LOAD_SMOKE.json
	$(GO) run ./cmd/lppa-load compare LOAD_SMOKE.json LOAD_SMOKE.json

# CI smoke of the live ops plane: boots the epochal demo with an
# impossibly tight SLO and asserts the probe endpoints, burn-rate alarm,
# event log, sampled traces, and forced flight dump end to end.
ops-smoke:
	sh scripts/ops_smoke.sh

# Short fuzz pass over every fuzz target (CI smoke; extend -fuzztime locally).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzMemberMatchesComparison -fuzztime=10s ./internal/prefix/
	$(GO) test -run=NONE -fuzz=FuzzCoverTiles -fuzztime=10s ./internal/prefix/
	$(GO) test -run=NONE -fuzz=FuzzOpenValueRejectsGarbage -fuzztime=10s ./internal/mask/
	$(GO) test -run=NONE -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/transport/
	$(GO) test -run=NONE -fuzz=FuzzShardBoundaryEquivalence -fuzztime=10s ./internal/round/
	$(GO) test -run=NONE -fuzz=FuzzLoadReportDecode -fuzztime=10s ./internal/load/

# Quicker smoke of the attacker-facing decoders only (the wire frame parser
# fed by untrusted peers) — the CI test job runs this on every push.
fuzz-short:
	$(GO) test -run=NONE -fuzz=FuzzDecodeFrame -fuzztime=5s ./internal/transport/

# Chaos matrix under the race detector: full networked rounds with seeded
# fault injection (drop/dup/corrupt/truncate/slow-loris/crash). Failing
# seeds land in CHAOS_FAILURES.txt; replay one with
# LPPA_CHAOS_SEEDS=<seed> go test -race -run 'TestChaosMatrix/<class>' ./internal/transport/
chaos:
	LPPA_CHAOS_REPLAY_FILE=CHAOS_FAILURES.txt \
		$(GO) test -race -run 'TestChaos|TestAuctioneerQuorum' -count=1 ./internal/transport/ ./internal/faults/

# Short multi-epoch chaos run of the epochal service under the race
# detector: concurrent submitters racing the sealing ticker and explicit
# seals through the admission gate, ledger exactness asserted at the end.
# Failed or degraded epochs dump flight-recorder traces into
# FLIGHT_EPOCH_SOAK/ (CI uploads the directory when the job fails).
epoch-soak:
	LPPA_SOAK_FLIGHT_DIR=FLIGHT_EPOCH_SOAK \
		$(GO) test -race -run TestEpochServiceSoak -count=1 -v ./internal/epoch/

# Reproduce the paper's full evaluation (dataset cached at $(CACHE)).
experiments:
	$(GO) run ./cmd/lppa-sim -experiment all -cache $(CACHE)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/attackdemo
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/networked
	$(GO) run ./examples/multiround

clean:
	rm -f lppa-sim lppa-attack lppa-net *.test
