# Convenience targets; everything is plain `go` underneath.

GO ?= go
CACHE ?= /tmp/lppa-ds.gob

.PHONY: all build test race cover bench bench-json fuzz experiments examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable snapshot of the parallel-pipeline benchmarks (committed
# as BENCH_PR1.json; see EXPERIMENTS.md for the narrative numbers).
bench-json:
	$(GO) test -run=NONE -benchmem \
		-bench='ZeroAllocMask|ParallelMaskAll|ParallelConflictGraph|ParallelPrivateRound|RankMemoAllocation|MaskDigest|PrivateConflictGraph' \
		. | $(GO) run ./cmd/benchjson > BENCH_PR1.json

# Short fuzz pass over every fuzz target (CI smoke; extend -fuzztime locally).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzMemberMatchesComparison -fuzztime=10s ./internal/prefix/
	$(GO) test -run=NONE -fuzz=FuzzCoverTiles -fuzztime=10s ./internal/prefix/
	$(GO) test -run=NONE -fuzz=FuzzOpenValueRejectsGarbage -fuzztime=10s ./internal/mask/

# Reproduce the paper's full evaluation (dataset cached at $(CACHE)).
experiments:
	$(GO) run ./cmd/lppa-sim -experiment all -cache $(CACHE)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/attackdemo
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/networked
	$(GO) run ./examples/multiround

clean:
	rm -f lppa-sim lppa-attack lppa-net *.test
