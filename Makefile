# Convenience targets; everything is plain `go` underneath.

GO ?= go
CACHE ?= /tmp/lppa-ds.gob

.PHONY: all build test race cover bench fuzz experiments examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem

# Short fuzz pass over every fuzz target (CI smoke; extend -fuzztime locally).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzMemberMatchesComparison -fuzztime=10s ./internal/prefix/
	$(GO) test -run=NONE -fuzz=FuzzCoverTiles -fuzztime=10s ./internal/prefix/
	$(GO) test -run=NONE -fuzz=FuzzOpenValueRejectsGarbage -fuzztime=10s ./internal/mask/

# Reproduce the paper's full evaluation (dataset cached at $(CACHE)).
experiments:
	$(GO) run ./cmd/lppa-sim -experiment all -cache $(CACHE)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/attackdemo
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/networked
	$(GO) run ./examples/multiround

clean:
	rm -f lppa-sim lppa-attack lppa-net *.test
