package transport

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/obs"
)

// TestShutdownDrains covers the context-aware drain: an idle server shuts
// down immediately; a server with a stalled in-flight connection times the
// drain out on the context, and completes once the peer goes away.
func TestShutdownDrains(t *testing.T) {
	p := testParams()
	srv, err := NewTTPServerWithConfig(p, []byte("sd-1"), 3, 4, listen(t), Config{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}

	srv2, err := NewTTPServerWithConfig(p, []byte("sd-2"), 3, 4, listen(t), Config{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	// A connected-but-silent peer pins its handler in RecvEnvelope.
	conn, err := net.Dial("tcp", srv2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Give the accept loop time to hand the connection off.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("stalled shutdown err = %v, want context.DeadlineExceeded", err)
	}
	conn.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := srv2.Shutdown(ctx2); err == context.DeadlineExceeded {
		t.Fatal("shutdown did not drain after peer closed")
	}
}

// TestAuctioneerShutdown covers the same drain path on the auctioneer
// server.
func TestAuctioneerShutdown(t *testing.T) {
	p := testParams()
	srv, err := NewAuctioneerServerWithConfig(p, 3, "127.0.0.1:1", listen(t), 1, Config{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestIdleTimeoutConfigured pins the fix for the auctioneer ignoring its
// configured timeout at the accept site: with a short configured
// IdleTimeout, a silent bidder connection must be dropped (and counted)
// instead of pinning the round for DefaultIdleTimeout.
func TestIdleTimeoutConfigured(t *testing.T) {
	p := testParams()
	reg := obs.NewRegistry()
	srv, err := NewAuctioneerServerWithConfig(p, 1, "127.0.0.1:1", listen(t), 1,
		Config{Logger: quietLogger(), IdleTimeout: 50 * time.Millisecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter("lppa_transport_timeouts_total", obs.L("role", "auctioneer")).Value() > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("silent connection never timed out under configured IdleTimeout")
}

// TestNetworkedRoundMetrics runs a full instrumented round over TCP and
// checks the transport and phase metrics a production scrape would see.
func TestNetworkedRoundMetrics(t *testing.T) {
	p := testParams()
	const n = 4
	reg := obs.NewRegistry()
	log := quietLogger()

	ttpSrv, err := NewTTPServerWithConfig(p, []byte("metrics-round"), 3, 4, listen(t), Config{Logger: log, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()
	aucSrv, err := NewAuctioneerServerWithConfig(p, n, ttpSrv.Addr().String(), listen(t), 7, Config{Logger: log, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	points := []geo.Point{{X: 10, Y: 10}, {X: 11, Y: 10}, {X: 40, Y: 40}, {X: 5, Y: 45}}
	bids := [][]uint64{{10, 0, 3, 7}, {20, 5, 0, 9}, {50, 50, 50, 50}, {30, 0, 40, 2}}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := &BidderClient{ID: i, Params: p, Policy: core.DisguisePolicy{P0: 0.8, Decay: 0.9}}
			if _, err := b.Participate(ttpSrv.Addr().String(), aucSrv.Addr().String(),
				points[i], bids[i], rand.New(rand.NewSource(int64(100+i)))); err != nil {
				t.Errorf("bidder %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if aucSrv.Wait() == nil {
		t.Fatal("no outcome")
	}

	aucConns := reg.Counter("lppa_transport_conns_accepted_total", obs.L("role", "auctioneer")).Value()
	if aucConns != n {
		t.Errorf("auctioneer conns accepted = %d, want %d", aucConns, n)
	}
	if reg.Counter("lppa_transport_conns_accepted_total", obs.L("role", "ttp")).Value() == 0 {
		t.Error("ttp accepted no connections")
	}
	for _, role := range []string{"ttp", "auctioneer"} {
		if reg.Counter("lppa_transport_bytes_read_total", obs.L("role", role)).Value() == 0 {
			t.Errorf("%s read no wire bytes", role)
		}
		if reg.Counter("lppa_transport_bytes_written_total", obs.L("role", role)).Value() == 0 {
			t.Errorf("%s wrote no wire bytes", role)
		}
	}
	if got := reg.Histogram("lppa_transport_submission_seconds", nil, obs.L("role", "auctioneer")).Count(); got != n {
		t.Errorf("submission latency observations = %d, want %d", got, n)
	}
	for _, phase := range []string{"conflict_graph", "allocate", "charge"} {
		if got := reg.Histogram("lppa_round_phase_seconds", nil, obs.L("phase", phase)).Count(); got != 1 {
			t.Errorf("phase %q observed %d times, want 1", phase, got)
		}
	}
	if reg.Counter("lppa_auctioneer_comparisons_total").Value() == 0 {
		t.Error("no auctioneer comparisons counted on the networked path")
	}
}
