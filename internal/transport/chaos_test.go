package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/faults"
	"lppa/internal/geo"
	"lppa/internal/obs"
	"lppa/internal/round"
)

// chaosWatchdog bounds a whole chaos round: fault injection must never
// turn a failure into a hang. Generous because CI runs these under -race.
const chaosWatchdog = 60 * time.Second

// chaosSeeds returns the fixed CI seeds plus any extras from
// LPPA_CHAOS_SEEDS (comma-separated), the knob used to replay a failure
// seed uploaded from a CI artifact.
func chaosSeeds(t *testing.T) []int64 {
	seeds := []int64{1, 2}
	if env := os.Getenv("LPPA_CHAOS_SEEDS"); env != "" {
		for _, tok := range strings.Split(env, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
			if err != nil {
				t.Fatalf("LPPA_CHAOS_SEEDS entry %q: %v", tok, err)
			}
			seeds = append(seeds, s)
		}
	}
	return seeds
}

// recordChaosFailure appends a replay line to LPPA_CHAOS_REPLAY_FILE (CI
// uploads it as an artifact) so any red chaos run can be reproduced with
// LPPA_CHAOS_SEEDS=<seed> go test -run TestChaosMatrix/<class>.
func recordChaosFailure(t *testing.T, class string, seed int64) {
	path := os.Getenv("LPPA_CHAOS_REPLAY_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("chaos replay file: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "class=%s seed=%d test=%s\n", class, seed, t.Name())
}

// chaosOutcome is everything one chaos round produced.
type chaosOutcome struct {
	outcome    *RoundOutcome
	outcomeErr error
	results    []*Result
	errs       []error
}

// runChaosRound runs a full networked round of n bidders where faulty
// bidders' outbound connections go through the injector. It fails the
// test (instead of hanging) if the round outlives the watchdog.
func runChaosRound(t *testing.T, seed int64, n int, faulty map[int]faults.Config, firstConnOnly bool, srvCfg Config) chaosOutcome {
	t.Helper()
	p := testParams()
	log := quietLogger()
	ttpSrv, err := NewTTPServer(p, []byte("chaos"), 3, 4, listen(t), log)
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()
	srvCfg.Logger = log
	aucSrv, err := NewAuctioneerServerWithConfig(p, n, ttpSrv.Addr().String(), listen(t), seed, srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	rng := rand.New(rand.NewSource(seed))
	points := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(int(p.MaxX))), Y: uint64(rng.Intn(int(p.MaxY)))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(int(p.BMax))) + 1
		}
	}

	out := chaosOutcome{results: make([]*Result, n), errs: make([]error, n)}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := &BidderClient{
				ID: i, Params: p, Policy: core.DisguisePolicy{P0: 1},
				Timeout:      500 * time.Millisecond,
				AwaitTimeout: 30 * time.Second,
				Retry:        RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond},
			}
			if cfg, ok := faulty[i]; ok {
				// Per-bidder seed: the schedule replays for this bidder no
				// matter how goroutines interleave. firstConnOnly injects on
				// the first auctioneer connection alone — "crash once after
				// submitting, restart clean".
				aucAddr := aucSrv.Addr().String()
				var dials int
				var mu sync.Mutex
				b.Dial = func(network, addr string) (net.Conn, error) {
					conn, err := net.DialTimeout(network, addr, b.Timeout)
					if err != nil {
						return nil, err
					}
					if firstConnOnly && addr != aucAddr {
						return conn, nil
					}
					mu.Lock()
					dials++
					k := dials
					mu.Unlock()
					if firstConnOnly && k > 1 {
						return conn, nil
					}
					return faults.Wrap(conn, seed^int64(1000+i*7+k), cfg), nil
				}
			}
			out.results[i], out.errs[i] = b.Participate(
				ttpSrv.Addr().String(), aucSrv.Addr().String(),
				points[i], bids[i], rand.New(rand.NewSource(seed*100+int64(i))))
		}(i)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		out.outcome, out.outcomeErr = aucSrv.Outcome()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(chaosWatchdog):
		t.Fatalf("chaos round hung past %v (seed %d)", chaosWatchdog, seed)
	}
	return out
}

// TestChaosMatrix drives a full networked round under each fault class at
// fixed seeds. The invariant under every class: the round terminates —
// either completing (possibly degraded to quorum, with the stragglers
// reported) or failing with a typed error — and clean bidders always come
// out whole.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix skipped in -short")
	}
	const n = 4
	classes := []struct {
		name          string
		cfg           faults.Config
		firstConnOnly bool
		srvCfg        Config
	}{
		{name: "drop", cfg: faults.Config{DropFrame: 0.5}},
		{name: "dup", cfg: faults.Config{DupFrame: 0.5}},
		{name: "corrupt", cfg: faults.Config{CorruptFrame: 0.5}},
		{name: "truncate", cfg: faults.Config{TruncateFrame: 0.5}},
		{name: "delay", cfg: faults.Config{DelayProb: 0.8, MaxDelay: 150 * time.Millisecond}},
		{name: "slowloris",
			cfg:    faults.Config{SlowChunk: 256, SlowPause: 150 * time.Millisecond},
			srvCfg: Config{FrameTimeout: 300 * time.Millisecond}},
		{name: "crash", cfg: faults.Config{CloseAfterFrames: 1}, firstConnOnly: true},
	}
	for _, class := range classes {
		class := class
		t.Run(class.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range chaosSeeds(t) {
				srvCfg := class.srvCfg
				srvCfg.Quorum = 2
				srvCfg.StragglerTimeout = 5 * time.Second
				srvCfg.IdleTimeout = 3 * time.Second
				// Bidders 0 and 1 are faulty; 2 and 3 are clean.
				out := runChaosRound(t, seed, n,
					map[int]faults.Config{0: class.cfg, 1: class.cfg}, class.firstConnOnly, srvCfg)

				if out.outcomeErr != nil {
					// Clean bidders guarantee the quorum of 2; any failure is
					// a real bug, and its seed is worth keeping.
					t.Errorf("seed %d: round failed: %v", seed, out.outcomeErr)
				} else {
					excluded := map[int]bool{}
					for _, id := range out.outcome.Excluded {
						excluded[id] = true
					}
					for i := 2; i < n; i++ {
						if excluded[i] {
							t.Errorf("seed %d: clean bidder %d excluded", seed, i)
						}
						if out.errs[i] != nil {
							t.Errorf("seed %d: clean bidder %d failed: %v", seed, i, out.errs[i])
						}
						if out.results[i] == nil {
							t.Errorf("seed %d: clean bidder %d got no result", seed, i)
						}
					}
					for i := 0; i < 2; i++ {
						// A faulty bidder either made it into the round or was
						// excluded and saw an error — never silent limbo.
						if excluded[i] && out.errs[i] == nil && out.results[i] != nil {
							t.Errorf("seed %d: bidder %d excluded yet holds a result", seed, i)
						}
						if !excluded[i] && out.errs[i] == nil && out.results[i] == nil {
							t.Errorf("seed %d: bidder %d neither failed nor got a result", seed, i)
						}
					}
				}
				if t.Failed() {
					recordChaosFailure(t, class.name, seed)
					return
				}
			}
		})
	}
}

// TestChaosBidderCrashRestart pins the idempotent-resubmission path
// deterministically: a bidder whose connection dies right after the
// submission frame is delivered (crash after submit) retries with the same
// nonce, is recognized as a replay — not a duplicate — and still receives
// its result. Nobody is excluded.
func TestChaosBidderCrashRestart(t *testing.T) {
	const n = 3
	reg := obs.NewRegistry()
	out := runChaosRound(t, 11, n,
		map[int]faults.Config{0: {CloseAfterFrames: 1}}, true,
		Config{Metrics: reg, IdleTimeout: 3 * time.Second})
	if out.outcomeErr != nil {
		t.Fatalf("round failed: %v", out.outcomeErr)
	}
	if len(out.outcome.Excluded) != 0 {
		t.Fatalf("Excluded = %v, want none (replay must rescue the crashed bidder)", out.outcome.Excluded)
	}
	for i := 0; i < n; i++ {
		if out.errs[i] != nil {
			t.Errorf("bidder %d: %v", i, out.errs[i])
		}
		if out.results[i] == nil {
			t.Errorf("bidder %d got no result", i)
		}
	}
	if got := reg.Snapshot().Counters[`lppa_transport_replays_deduped_total{role="auctioneer"}`]; got < 1 {
		t.Errorf("replays counter = %d, want >= 1", got)
	}
}

// TestChaosKilledBidderDoesNotHangRound is the acceptance scenario
// verbatim: one bidder dies mid-round (its every frame truncates) and
// never comes back. Before the hardening the auctioneer waited forever;
// now the straggler timeout degrades the round to quorum and reports the
// body.
func TestChaosKilledBidderDoesNotHangRound(t *testing.T) {
	const n = 3
	reg := obs.NewRegistry()
	out := runChaosRound(t, 21, n,
		map[int]faults.Config{0: {TruncateFrame: 1}}, false,
		Config{Quorum: 2, StragglerTimeout: 2 * time.Second, IdleTimeout: 3 * time.Second, Metrics: reg})
	if out.outcomeErr != nil {
		t.Fatalf("round failed instead of degrading: %v", out.outcomeErr)
	}
	if len(out.outcome.Excluded) != 1 || out.outcome.Excluded[0] != 0 {
		t.Fatalf("Excluded = %v, want [0]", out.outcome.Excluded)
	}
	if out.errs[0] == nil {
		t.Error("killed bidder reported success")
	}
	for i := 1; i < n; i++ {
		if out.errs[i] != nil || out.results[i] == nil {
			t.Errorf("surviving bidder %d: err=%v result=%v", i, out.errs[i], out.results[i])
		}
	}
	if got := reg.Snapshot().Counters[`lppa_transport_bidders_excluded_total{role="auctioneer"}`]; got != 1 {
		t.Errorf("excluded counter = %d, want 1", got)
	}
}

// TestAuctioneerQuorumNotReached: when the straggler deadline fires with
// fewer than Quorum submissions the round fails with the shared typed
// sentinel instead of hanging.
func TestAuctioneerQuorumNotReached(t *testing.T) {
	p := testParams()
	ttpSrv, err := NewTTPServer(p, []byte("nq"), 3, 4, listen(t), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()
	aucSrv, err := NewAuctioneerServerWithConfig(p, 3, ttpSrv.Addr().String(), listen(t), 1,
		Config{Logger: quietLogger(), Quorum: 2, StragglerTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	// Only one bidder of three ever shows up.
	errCh := make(chan error, 1)
	go func() {
		b := &BidderClient{ID: 0, Params: p, Policy: core.DisguisePolicy{P0: 1},
			Timeout: time.Second, AwaitTimeout: 10 * time.Second}
		_, err := b.Participate(ttpSrv.Addr().String(), aucSrv.Addr().String(),
			geo.Point{X: 1, Y: 1}, []uint64{1, 2, 3, 4}, rand.New(rand.NewSource(1)))
		errCh <- err
	}()

	outcomeCh := make(chan error, 1)
	go func() {
		_, err := aucSrv.Outcome()
		outcomeCh <- err
	}()
	select {
	case err := <-outcomeCh:
		if !errors.Is(err, round.ErrQuorumNotReached) {
			t.Fatalf("outcome err = %v, want ErrQuorumNotReached", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("under-quorum round hung")
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("lone bidder reported success from a failed round")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("lone bidder hung after round failure")
	}
}
