package transport

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/obs"
)

func TestNewZeroOptionsIsZeroConfig(t *testing.T) {
	cfg, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.idleTimeout() != DefaultIdleTimeout || cfg.frameTimeout() != DefaultFrameTimeout {
		t.Errorf("zero-option config timeouts = %v/%v, want defaults", cfg.idleTimeout(), cfg.frameTimeout())
	}
	if cfg.SecondPrice || cfg.Quorum != 0 || cfg.Admit != nil || cfg.Metrics != nil {
		t.Errorf("zero-option config not zero: %+v", cfg)
	}
}

func TestNewAssemblesConfig(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer("opts-test")
	fr := obs.NewFlightRecorder(t.TempDir(), 2, 0)
	log := quietLogger()
	gate := func() (bool, time.Duration) { return true, 0 }
	cfg, err := New(
		WithIdleTimeout(3*time.Second),
		WithFrameTimeout(time.Second),
		WithLogger(log),
		WithMetrics(reg),
		WithSecondPriceCharging(),
		WithQuorum(2),
		WithStragglerTimeout(5*time.Second),
		WithTrace(tr),
		WithFlightRecorder(fr),
		WithAdmission(gate),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.IdleTimeout != 3*time.Second || cfg.FrameTimeout != time.Second {
		t.Errorf("timeouts = %v/%v", cfg.IdleTimeout, cfg.FrameTimeout)
	}
	if cfg.Logger != log || cfg.Metrics != reg || cfg.Tracer != tr || cfg.FlightRecorder != fr {
		t.Error("handles not threaded through")
	}
	if !cfg.SecondPrice || cfg.Quorum != 2 || cfg.StragglerTimeout != 5*time.Second {
		t.Errorf("round knobs = %v/%d/%v", cfg.SecondPrice, cfg.Quorum, cfg.StragglerTimeout)
	}
	if cfg.Admit == nil {
		t.Fatal("admission gate not set")
	}
	if ok, _ := cfg.Admit(); !ok {
		t.Error("admission gate not the one supplied")
	}
}

func TestNewRejectsInvalidOptions(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"idle zero", WithIdleTimeout(0)},
		{"idle negative", WithIdleTimeout(-time.Second)},
		{"frame zero", WithFrameTimeout(0)},
		{"quorum zero", WithQuorum(0)},
		{"straggler zero", WithStragglerTimeout(0)},
		{"admission nil", WithAdmission(nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.opt); err == nil {
				t.Fatalf("New(%s) accepted", tc.name)
			}
		})
	}
}

func TestNewFlightRecorderRequiresTrace(t *testing.T) {
	tr := obs.NewTracer("fr-test")
	fr := obs.NewFlightRecorder(t.TempDir(), 2, 0)
	if _, err := New(WithFlightRecorder(fr)); err == nil {
		t.Fatal("flight recorder accepted without a tracer")
	}
	// Order matters, like round.Run: trace first, then recorder.
	if _, err := New(WithTrace(tr), WithFlightRecorder(fr)); err != nil {
		t.Fatalf("trace-then-recorder rejected: %v", err)
	}
}

// TestAdmissionShedsConnPreDecode pins the accept-path contract directly:
// a gated server answers a fresh connection with one KindRetryAfter frame
// carrying the gate's hint — surfaced by Conn.Expect as *RetryAfterError —
// before reading anything the peer sent.
func TestAdmissionShedsConnPreDecode(t *testing.T) {
	p := testParams()
	log := quietLogger()
	ttpSrv, err := NewTTPServer(p, []byte("shed"), 3, 4, listen(t), log)
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()

	const hint = 123 * time.Millisecond
	cfg, err := New(
		WithLogger(log),
		WithAdmission(func() (bool, time.Duration) { return false, hint }),
	)
	if err != nil {
		t.Fatal(err)
	}
	aucSrv, err := NewAuctioneerServerWithConfig(p, 1, ttpSrv.Addr().String(), listen(t), 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	conn, err := net.Dial("tcp", aucSrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConnTimeout(conn, 5*time.Second)
	defer c.Close()
	var ack struct{}
	err = c.Expect(KindSubmissionAck, &ack)
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("Expect error = %v, want *RetryAfterError", err)
	}
	if ra.RetryAfter != hint {
		t.Errorf("retry-after hint = %v, want %v", ra.RetryAfter, hint)
	}
}

// TestAdmissionEndToEnd runs a real round through a rate-limiting gate: the
// first connection is shed with a retry-after hint, the bidder client backs
// off at least that long and the retry is admitted, so the round still
// completes. The shed is visible in lppa_transport_rate_limited_total.
func TestAdmissionEndToEnd(t *testing.T) {
	p := testParams()
	log := quietLogger()
	reg := obs.NewRegistry()

	ttpSrv, err := NewTTPServer(p, []byte("e2e-admission"), 3, 4, listen(t), log)
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()

	const hint = 60 * time.Millisecond
	var mu sync.Mutex
	rejected := 0
	gate := func() (bool, time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if rejected == 0 {
			rejected++
			return false, hint
		}
		return true, 0
	}
	cfg, err := New(WithLogger(log), WithMetrics(reg), WithAdmission(gate))
	if err != nil {
		t.Fatal(err)
	}
	aucSrv, err := NewAuctioneerServerWithConfig(p, 1, ttpSrv.Addr().String(), listen(t), 9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	b := &BidderClient{
		ID:     0,
		Params: p,
		Policy: core.DisguisePolicy{P0: 1},
		Retry:  RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	}
	start := time.Now()
	res, err := b.Participate(ttpSrv.Addr().String(), aucSrv.Addr().String(),
		geo.Point{X: 7, Y: 7}, []uint64{9, 0, 3, 1}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("participate through gate: %v", err)
	}
	if res == nil || !res.Won {
		t.Fatalf("sole bidder result = %+v, want a win", res)
	}
	// The server's hint is the backoff floor: the retry cannot have fired
	// before the gate's window elapsed.
	if elapsed := time.Since(start); elapsed < hint {
		t.Errorf("retried after %v, before the %v hint", elapsed, hint)
	}
	mu.Lock()
	if rejected != 1 {
		t.Errorf("gate rejected %d conns, want 1", rejected)
	}
	mu.Unlock()
	if got := reg.Counter("lppa_transport_rate_limited_total", obs.L("role", "auctioneer")).Value(); got != 1 {
		t.Errorf("lppa_transport_rate_limited_total = %d, want 1", got)
	}
	if out := aucSrv.Wait(); out == nil || len(out.Results) != 1 {
		t.Fatalf("outcome = %+v, want one result", out)
	}
}
