package transport

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

// goldenFrames returns one valid encoded frame per message kind,
// exercising every payload type a server might decode.
func goldenFrames(tb testing.TB) [][]byte {
	tb.Helper()
	p := testParams()
	ring, err := mask.DeriveKeyRing([]byte("fuzz"), p.Channels, 3, 4)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	loc, err := core.NewLocationSubmission(p, ring, geo.Point{X: 3, Y: 4})
	if err != nil {
		tb.Fatal(err)
	}
	enc, err := core.NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		tb.Fatal(err)
	}
	bid, err := enc.Encode([]uint64{1, 0, 50, 9}, rng)
	if err != nil {
		tb.Fatal(err)
	}
	sub := NewSubmission(2, loc, bid)
	sub.Nonce = 7

	payloads := []struct {
		kind MsgKind
		body any
	}{
		{KindKeyRingRequest, struct{}{}},
		{KindKeyRingReply, RingToWire(ring)},
		{KindSubmission, sub},
		{KindSubmissionAck, struct{}{}},
		{KindResult, Result{BidderID: 2, Won: true, Channel: 1, Price: 17}},
		{KindChargeBatch, ChargeBatch{Requests: []core.ChargeRequest{
			{Bidder: 0, Channel: 1, Sealed: bid.Channels[1].Sealed, Family: bid.Channels[1].Family.Digests()},
		}}},
		{KindChargeReply, ChargeReply{Results: []WireChargeResult{{Bidder: 0, Channel: 1, Valid: true, Price: 9}}}},
		{KindError, ErrorMsg{Reason: "nope", Retryable: true}},
		{KindRetryAfter, RetryAfterMsg{RetryAfter: 250 * time.Millisecond}},
	}
	frames := make([][]byte, 0, len(payloads))
	for _, pl := range payloads {
		f, err := EncodeFrame(pl.kind, pl.body)
		if err != nil {
			tb.Fatalf("encode kind %d: %v", pl.kind, err)
		}
		frames = append(frames, f)
	}
	return frames
}

// tracedGoldenFrames returns trace-bearing variants of a few golden
// payloads, so the fuzzer also mutates frames whose envelope carries a
// TraceContext (a different gob value shape than the zero-trace frames).
func tracedGoldenFrames(tb testing.TB) [][]byte {
	tb.Helper()
	tc := TraceContext{TraceID: 0x0102030405060708, SpanID: 0x1112131415161718}
	payloads := []struct {
		kind MsgKind
		body any
	}{
		{KindKeyRingRequest, struct{}{}},
		{KindSubmissionAck, struct{}{}},
		{KindError, ErrorMsg{Reason: "traced", Retryable: false}},
	}
	frames := make([][]byte, 0, len(payloads))
	for _, pl := range payloads {
		f, err := EncodeFrameTraced(pl.kind, pl.body, tc)
		if err != nil {
			tb.Fatalf("encode traced kind %d: %v", pl.kind, err)
		}
		frames = append(frames, f)
	}
	return frames
}

// FuzzDecodeFrame hammers the frame decoder — the exact bytes an attacker
// controls — with mutations of every golden frame. The decoder must never
// panic, and every accepted envelope must decode (or cleanly reject) as
// the payload type its kind dictates.
func FuzzDecodeFrame(f *testing.F) {
	for _, frame := range goldenFrames(f) {
		f.Add(frame)
	}
	for _, frame := range tracedGoldenFrames(f) {
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, dec, err := DecodeFrame(data)
		if err != nil {
			return
		}
		// Accepted envelope: drain the payload as the kind's real type; a
		// decode error is fine, a panic or hang is the bug.
		switch env.Kind {
		case KindKeyRingRequest, KindSubmissionAck:
			var v struct{}
			_ = dec.Decode(&v)
		case KindKeyRingReply:
			var v KeyRingReply
			_ = dec.Decode(&v)
		case KindSubmission:
			var v Submission
			if dec.Decode(&v) == nil {
				_ = v.Validate(testParams())
			}
		case KindResult:
			var v Result
			_ = dec.Decode(&v)
		case KindChargeBatch:
			var v ChargeBatch
			if dec.Decode(&v) == nil {
				_ = v.Validate()
			}
		case KindChargeReply:
			var v ChargeReply
			_ = dec.Decode(&v)
		case KindError:
			var v ErrorMsg
			_ = dec.Decode(&v)
		case KindRetryAfter:
			var v RetryAfterMsg
			_ = dec.Decode(&v)
		default:
			t.Fatalf("DecodeFrame accepted unknown kind %d", env.Kind)
		}
	})
}

// TestGoldenFramesRoundTrip keeps the fuzz corpus honest: every golden
// frame decodes back to its own kind.
func TestGoldenFramesRoundTrip(t *testing.T) {
	kinds := []MsgKind{KindKeyRingRequest, KindKeyRingReply, KindSubmission, KindSubmissionAck,
		KindResult, KindChargeBatch, KindChargeReply, KindError, KindRetryAfter}
	frames := goldenFrames(t)
	if len(frames) != len(kinds) {
		t.Fatalf("%d golden frames, %d kinds", len(frames), len(kinds))
	}
	for i, frame := range frames {
		env, dec, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.Kind != kinds[i] {
			t.Errorf("frame %d decoded kind %d, want %d", i, env.Kind, kinds[i])
		}
		if dec == nil {
			t.Fatalf("frame %d: nil payload decoder", i)
		}
	}
}

// TestTracedGoldenFramesRoundTrip keeps the traced corpus honest: every
// trace-bearing frame decodes with its trace context intact.
func TestTracedGoldenFramesRoundTrip(t *testing.T) {
	want := TraceContext{TraceID: 0x0102030405060708, SpanID: 0x1112131415161718}
	for i, frame := range tracedGoldenFrames(t) {
		env, dec, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("traced frame %d: %v", i, err)
		}
		if env.Trace != want {
			t.Errorf("traced frame %d: trace = %+v, want %+v", i, env.Trace, want)
		}
		if dec == nil {
			t.Fatalf("traced frame %d: nil payload decoder", i)
		}
	}
}

// TestDecodeFrameRejectsLengthMismatch pins the header validation: a
// length prefix that disagrees with the actual payload size is rejected.
func TestDecodeFrameRejectsLengthMismatch(t *testing.T) {
	frame := goldenFrames(t)[0]
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame))) // lie: off by the header
	if _, _, err := DecodeFrame(frame); err == nil {
		t.Fatal("length-mismatched frame accepted")
	}
	if _, _, err := DecodeFrame([]byte{1, 2}); err == nil {
		t.Fatal("sub-header frame accepted")
	}
}
