package transport

import (
	"bytes"
	"encoding/gob"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

func testParams() core.Params {
	return core.Params{Channels: 4, Lambda: 2, MaxX: 49, MaxY: 49, BMax: 50}
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, &slog.HandlerOptions{Level: slog.LevelError + 4}))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func TestWireSubmissionRoundTrip(t *testing.T) {
	p := testParams()
	ring, err := mask.DeriveKeyRing([]byte("wire"), p.Channels, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	loc, err := core.NewLocationSubmission(p, ring, geo.Point{X: 7, Y: 9})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := core.NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	bid, err := enc.Encode([]uint64{5, 0, 50, 17}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sub := NewSubmission(3, loc, bid)
	gotLoc, gotBid := sub.Parts()
	if gotLoc.XFamily.Len() != loc.XFamily.Len() || gotLoc.YRange.Len() != loc.YRange.Len() {
		t.Error("location sets corrupted in wire round trip")
	}
	if len(gotBid.Channels) != len(bid.Channels) {
		t.Fatal("channel count corrupted")
	}
	for r := range bid.Channels {
		if gotBid.Channels[r].Family.Len() != bid.Channels[r].Family.Len() {
			t.Errorf("channel %d family corrupted", r)
		}
		if !core.CompareGE(&gotBid.Channels[r], &bid.Channels[r]) ||
			!core.CompareGE(&bid.Channels[r], &gotBid.Channels[r]) {
			t.Errorf("channel %d comparability lost in round trip", r)
		}
	}
}

func TestKeyRingWireRoundTrip(t *testing.T) {
	ring, err := mask.DeriveKeyRing([]byte("ring"), 3, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := RingToWire(ring).ToRing()
	if string(got.G0) != string(ring.G0) || string(got.GC) != string(ring.GC) {
		t.Error("keys corrupted")
	}
	if got.RD != 5 || got.CR != 8 || got.Channels() != 3 {
		t.Error("parameters corrupted")
	}
}

func TestTTPServerServesKeyRing(t *testing.T) {
	p := testParams()
	srv, err := NewTTPServer(p, []byte("seed-a"), 3, 4, listen(t), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ring, err := FetchKeyRing(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if ring.Channels() != p.Channels || ring.RD != 3 || ring.CR != 4 {
		t.Errorf("fetched ring: channels=%d rd=%d cr=%d", ring.Channels(), ring.RD, ring.CR)
	}
	// Two fetches agree (same round, same ring).
	ring2, err := FetchKeyRing(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if string(ring.G0) != string(ring2.G0) {
		t.Error("ring differs between fetches")
	}
}

func TestTTPServerCharging(t *testing.T) {
	p := testParams()
	srv, err := NewTTPServer(p, []byte("seed-b"), 3, 4, listen(t), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ring, err := FetchKeyRing(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	enc, err := core.NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := enc.Encode([]uint64{42, 0, 1, 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []core.ChargeRequest{
		{Bidder: 0, Channel: 0, Sealed: sub.Channels[0].Sealed, Family: sub.Channels[0].Family.Digests()},
		{Bidder: 1, Channel: 1, Sealed: sub.Channels[1].Sealed, Family: sub.Channels[1].Family.Digests()},
	}
	results, err := SubmitCharges(srv.Addr().String(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if !results[0].Valid || results[0].Price != 42 {
		t.Errorf("result 0 = %+v, want valid price 42", results[0])
	}
	if results[1].Valid {
		t.Errorf("result 1 = %+v, want voided zero", results[1])
	}
}

func TestFullNetworkedRound(t *testing.T) {
	p := testParams()
	const n = 6
	log := quietLogger()

	ttpSrv, err := NewTTPServer(p, []byte("round-seed"), 3, 4, listen(t), log)
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()

	aucSrv, err := NewAuctioneerServer(p, n, ttpSrv.Addr().String(), listen(t), 7, log)
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	// Six bidders: three clustered (conflicting), three spread out.
	points := []geo.Point{{X: 10, Y: 10}, {X: 11, Y: 10}, {X: 10, Y: 11}, {X: 40, Y: 40}, {X: 5, Y: 45}, {X: 45, Y: 5}}
	bids := [][]uint64{
		{10, 0, 3, 7}, {20, 5, 0, 9}, {5, 8, 2, 0},
		{50, 50, 50, 50}, {0, 0, 0, 1}, {30, 0, 40, 2},
	}
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := &BidderClient{ID: i, Params: p, Policy: core.DisguisePolicy{P0: 0.8, Decay: 0.9}}
			results[i], errs[i] = b.Participate(
				ttpSrv.Addr().String(), aucSrv.Addr().String(),
				points[i], bids[i], rand.New(rand.NewSource(int64(100+i))))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("bidder %d: %v", i, err)
		}
	}
	outcome := aucSrv.Wait()
	if outcome == nil {
		t.Fatal("no outcome")
	}
	if len(outcome.Results) == 0 {
		t.Fatal("no results distributed")
	}
	var revenue uint64
	winners := 0
	for i, res := range results {
		if res == nil {
			t.Fatalf("bidder %d got no result", i)
		}
		if res.Won {
			winners++
			revenue += res.Price
			if bids[i][res.Channel] != res.Price {
				t.Errorf("bidder %d charged %d but bid %d on channel %d",
					i, res.Price, bids[i][res.Channel], res.Channel)
			}
		}
	}
	if winners == 0 {
		t.Error("nobody won anything")
	}
	if revenue != outcome.Revenue {
		t.Errorf("bidder-side revenue %d != auctioneer-side %d", revenue, outcome.Revenue)
	}
}

func TestAuctioneerRejectsBadBidderID(t *testing.T) {
	p := testParams()
	log := quietLogger()
	ttpSrv, err := NewTTPServer(p, []byte("x"), 3, 4, listen(t), log)
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()
	aucSrv, err := NewAuctioneerServer(p, 2, ttpSrv.Addr().String(), listen(t), 1, log)
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	b := &BidderClient{ID: 99, Params: p, Policy: core.DisguisePolicy{P0: 1}}
	_, err = b.Participate(ttpSrv.Addr().String(), aucSrv.Addr().String(),
		geo.Point{X: 1, Y: 1}, []uint64{1, 2, 3, 4}, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("out-of-range bidder id accepted")
	}
}

func TestConnExpectErrorSurfaced(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	go func() {
		_ = ca.Send(KindError, ErrorMsg{Reason: "boom"})
	}()
	var ack struct{}
	err := cb.Expect(KindSubmissionAck, &ack)
	if err == nil {
		t.Fatal("expected surfaced error")
	}
}

func TestNewAuctioneerServerValidation(t *testing.T) {
	if _, err := NewAuctioneerServer(core.Params{}, 1, "", listen(t), 1, quietLogger()); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := NewAuctioneerServer(testParams(), 0, "", listen(t), 1, quietLogger()); err == nil {
		t.Error("zero bidders accepted")
	}
}

func TestConnTimeoutOnStalledPeer(t *testing.T) {
	ln := listen(t)
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		c := NewConnTimeout(conn, 50*time.Millisecond)
		defer c.Close()
		_, err = c.RecvEnvelope() // peer never sends: must time out
		done <- err
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled peer did not time out")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler hung despite timeout")
	}
}

func TestConnTimeoutIgnoredWithoutDeadlineSupport(t *testing.T) {
	// net.Pipe has deadline support, so use a bare io pipe wrapper that
	// does not: the timeout must be silently skipped (no panic).
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := NewConnTimeout(struct{ io.ReadWriteCloser }{a}, time.Millisecond)
	go func() {
		peer := NewConn(b)
		_ = peer.Send(KindSubmissionAck, struct{}{})
	}()
	var ack struct{}
	if err := c.Expect(KindSubmissionAck, &ack); err != nil {
		t.Fatalf("wrapped pipe without deadlines failed: %v", err)
	}
}

func TestSecondPriceNetworkedRound(t *testing.T) {
	p := testParams()
	const n = 3
	log := quietLogger()
	ttpSrv, err := NewTTPServer(p, []byte("sp-round"), 3, 4, listen(t), log)
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()
	aucSrv, err := NewSecondPriceAuctioneerServer(p, n, ttpSrv.Addr().String(), listen(t), 5, log)
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	// Full conflict on one effective channel: classic Vickrey pricing.
	points := []geo.Point{{X: 10, Y: 10}, {X: 10, Y: 11}, {X: 11, Y: 10}}
	bids := [][]uint64{{30, 0, 0, 0}, {50, 0, 0, 0}, {45, 0, 0, 0}}
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := &BidderClient{ID: i, Params: p, Policy: core.DisguisePolicy{P0: 1}}
			results[i], _ = b.Participate(ttpSrv.Addr().String(), aucSrv.Addr().String(),
				points[i], bids[i], rand.New(rand.NewSource(int64(i))))
		}(i)
	}
	wg.Wait()
	outcome := aucSrv.Wait()
	if outcome == nil {
		t.Fatal("no outcome")
	}
	// Bidder 1 wins channel 0 paying the runner-up's 45.
	if results[1] == nil || !results[1].Won {
		t.Fatalf("bidder 1 result = %+v", results[1])
	}
	if results[1].Channel != 0 || results[1].Price != 45 {
		t.Errorf("winner pays %d on channel %d, want 45 on 0", results[1].Price, results[1].Channel)
	}
}

// TestSetToWireByteStable pins the transcript byte-stability fix: the same
// logical submission must serialize to identical gob bytes on every
// encoding (Go randomizes map iteration, so an unordered digest dump would
// flap between runs and break Theorem-4 byte accounting and golden
// transcripts).
func TestSetToWireByteStable(t *testing.T) {
	p := testParams()
	ring, err := mask.DeriveKeyRing([]byte("wire-stable"), p.Channels, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.NewLocationSubmission(p, ring, geo.Point{X: 11, Y: 23})
	if err != nil {
		t.Fatal(err)
	}
	first := SetToWire(loc.XRange)
	for trial := 0; trial < 50; trial++ {
		again := SetToWire(loc.XRange)
		if len(again) != len(first) {
			t.Fatalf("trial %d: wire set length changed", trial)
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("trial %d: digest order changed at position %d", trial, i)
			}
		}
	}

	// Full-submission check through gob, the actual wire encoder.
	encode := func() []byte {
		rng := rand.New(rand.NewSource(5))
		enc, err := core.NewBidEncoder(p, ring, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		bid, err := enc.Encode([]uint64{5, 0, 50, 17}, rng)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(NewSubmission(1, loc, bid)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := encode()
	for trial := 0; trial < 10; trial++ {
		if !bytes.Equal(encode(), want) {
			t.Fatalf("trial %d: identical submissions serialized to different bytes", trial)
		}
	}
}
