package transport

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/faults"
	"lppa/internal/geo"
	"lppa/internal/obs"
)

// TestChaosFaultSpanEvents pins the chaos-observability contract: every
// fault class the chaos matrix injects surfaces as a span event (via
// faults.Config.Observer) in at least one seeded run, so a flight-recorder
// dump of a chaotic round shows what the network did to it.
func TestChaosFaultSpanEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos span events skipped in -short")
	}
	classes := []struct {
		name          string
		cfg           faults.Config
		firstConnOnly bool
		srvCfg        Config
		wantKind      string
	}{
		{name: "drop", cfg: faults.Config{DropFrame: 0.5}, wantKind: "drop"},
		{name: "dup", cfg: faults.Config{DupFrame: 0.5}, wantKind: "dup"},
		{name: "corrupt", cfg: faults.Config{CorruptFrame: 0.5}, wantKind: "corrupt"},
		{name: "truncate", cfg: faults.Config{TruncateFrame: 0.5}, wantKind: "truncate"},
		{name: "delay", cfg: faults.Config{DelayProb: 0.8, MaxDelay: 150 * time.Millisecond}, wantKind: "delay"},
		{name: "slowloris",
			cfg:      faults.Config{SlowChunk: 256, SlowPause: 150 * time.Millisecond},
			srvCfg:   Config{FrameTimeout: 300 * time.Millisecond},
			wantKind: "slowloris"},
		{name: "crash", cfg: faults.Config{CloseAfterFrames: 1}, firstConnOnly: true, wantKind: "close"},
		// "kill" is absent: it fires on the write after KillAfterFrames, and
		// the client writes exactly one frame per connection, so the class
		// cannot manifest here; its observer is pinned by the faults unit
		// test instead.
	}
	for _, class := range classes {
		class := class
		t.Run(class.name, func(t *testing.T) {
			t.Parallel()
			tracer := obs.NewTracer("chaos")
			span := tracer.StartTrace("fault_injection", obs.L("class", class.name))
			var mu sync.Mutex
			kinds := map[string]int{}
			cfg := class.cfg
			cfg.Observer = func(kind string, frame int) {
				mu.Lock()
				kinds[kind]++
				mu.Unlock()
				span.Event("fault_"+kind, obs.L("frame", strconv.Itoa(frame)))
			}
			for _, seed := range chaosSeeds(t) {
				srvCfg := class.srvCfg
				srvCfg.Quorum = 2
				srvCfg.StragglerTimeout = 5 * time.Second
				srvCfg.IdleTimeout = 3 * time.Second
				runChaosRound(t, seed, 4,
					map[int]faults.Config{0: cfg, 1: cfg}, class.firstConnOnly, srvCfg)
				mu.Lock()
				hit := kinds[class.wantKind] > 0
				mu.Unlock()
				if hit {
					break
				}
			}
			span.End()
			// The event must be on the recorded span, not just counted: a
			// flight dump of this round has to show the injected fault.
			var names []string
			for _, ev := range tracer.Snapshot()[0].Events {
				names = append(names, ev.Name)
				if ev.Name == "fault_"+class.wantKind {
					return
				}
			}
			t.Fatalf("no fault_%s event recorded across seeds; saw %v", class.wantKind, names)
		})
	}
}

// TestTracedRoundEndToEnd runs a fault-free networked round with one
// shared tracer across all three parties and pins the cross-process span
// topology: the auctioneer's recv_submission spans parent onto the
// bidders' submit spans via the wire trace context, the TTP's
// serve_keyring spans parent onto fetch_keyring spans, and the
// auctioneer's phase spans hang off the round root.
func TestTracedRoundEndToEnd(t *testing.T) {
	const n = 3
	p := testParams()
	log := quietLogger()
	tracer := obs.NewTracer("auctioneer")

	ttpSrv, err := NewTTPServerWithConfig(p, []byte("traced"), 3, 4, listen(t),
		Config{Logger: log, Tracer: tracer.Named("ttp")})
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()
	aucSrv, err := NewAuctioneerServerWithConfig(p, n, ttpSrv.Addr().String(), listen(t), 42,
		Config{Logger: log, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := &BidderClient{
				ID: i, Params: p, Policy: core.DisguisePolicy{P0: 1},
				Timeout: time.Second, AwaitTimeout: 30 * time.Second,
				Tracer: tracer,
			}
			_, errs[i] = b.Participate(ttpSrv.Addr().String(), aucSrv.Addr().String(),
				geo.Point{X: uint64(i + 1), Y: uint64(i + 2)},
				[]uint64{1, 2, 3, 4}, rand.New(rand.NewSource(int64(i))))
		}(i)
	}
	wg.Wait()
	if _, err := aucSrv.Outcome(); err != nil {
		t.Fatalf("round failed: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("bidder %d: %v", i, err)
		}
	}

	spans := tracer.Snapshot()
	byName := map[string][]*obs.Span{}
	ctx := map[obs.SpanContext]*obs.Span{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
		ctx[s.Ctx] = s
	}

	roots := byName["round"]
	if len(roots) != 1 {
		t.Fatalf("round spans = %d, want 1", len(roots))
	}
	root := roots[0]
	for _, phase := range []string{"conflict_graph", "allocate", "charge"} {
		ps := byName[phase]
		if len(ps) != 1 {
			t.Fatalf("%s spans = %d, want 1", phase, len(ps))
		}
		if ps[0].Parent != root.Ctx {
			t.Errorf("%s span parent = %+v, want round root %+v", phase, ps[0].Parent, root.Ctx)
		}
	}

	recvs := byName["recv_submission"]
	if len(recvs) != n {
		t.Fatalf("recv_submission spans = %d, want %d", len(recvs), n)
	}
	for _, r := range recvs {
		parent, ok := ctx[r.Parent]
		if !ok {
			t.Fatalf("recv_submission parent %+v not in snapshot", r.Parent)
		}
		if parent.Name != "submit" || !strings.HasPrefix(parent.Proc, "bidder-") {
			t.Errorf("recv_submission parents onto %s/%s, want a bidder submit span", parent.Proc, parent.Name)
		}
		if r.Ctx.Trace != parent.Ctx.Trace {
			t.Errorf("recv_submission trace %x != bidder trace %x", r.Ctx.Trace, parent.Ctx.Trace)
		}
	}

	serves := byName["serve_keyring"]
	if len(serves) != n {
		t.Fatalf("serve_keyring spans = %d, want %d", len(serves), n)
	}
	for _, s := range serves {
		parent, ok := ctx[s.Parent]
		if !ok || parent.Name != "fetch_keyring" {
			t.Errorf("serve_keyring parent = %+v (%v), want a fetch_keyring span", s.Parent, ok)
		}
	}
	if len(byName["serve_charges"]) != 1 {
		t.Errorf("serve_charges spans = %d, want 1", len(byName["serve_charges"]))
	}
	if len(byName["participate"]) != n || len(byName["encode"]) != n {
		t.Errorf("participate/encode spans = %d/%d, want %d each",
			len(byName["participate"]), len(byName["encode"]), n)
	}
}

// TestFlightRecorderDumpsDegradedNetworkRound is the flight-recorder
// acceptance scenario: a bidder dies mid-round, the straggler timeout
// degrades the round to quorum, and the recorder auto-dumps a trace that
// contains the straggler_excluded event.
func TestFlightRecorderDumpsDegradedNetworkRound(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	tracer := obs.NewTracer("auctioneer")
	fr := obs.NewFlightRecorder(dir, 4, 0)
	out := runChaosRound(t, 21, n,
		map[int]faults.Config{0: {TruncateFrame: 1}}, false,
		Config{Quorum: 2, StragglerTimeout: 2 * time.Second, IdleTimeout: 3 * time.Second,
			Tracer: tracer, FlightRecorder: fr})
	if out.outcomeErr != nil {
		t.Fatalf("round failed instead of degrading: %v", out.outcomeErr)
	}
	if len(out.outcome.Excluded) != 1 || out.outcome.Excluded[0] != 0 {
		t.Fatalf("Excluded = %v, want [0]", out.outcome.Excluded)
	}

	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 {
		t.Fatalf("flight dumps = %v, want exactly one", dumps)
	}
	blob, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	body := string(blob)
	if !strings.Contains(body, "straggler_excluded") {
		t.Errorf("flight dump lacks straggler_excluded event:\n%s", body)
	}
	if !strings.Contains(body, `"round"`) {
		t.Errorf("flight dump lacks the round span:\n%s", body)
	}
}
