package transport

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/obs"
)

// TestRecvRejectsHugeLengthPrefix is the regression test for trusting
// peer-supplied lengths: a 2 GB length prefix must be rejected from the
// header alone — before any body allocation or read. The peer sends ONLY
// the 4 header bytes; a decoder that believed the length would block
// forever waiting for the 2 GB body, so a prompt typed error proves the
// cap fired first.
func TestRecvRejectsHugeLengthPrefix(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := NewConn(b).RecvEnvelope()
		errCh <- err
	}()

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 2<<30) // 2 GiB
	if _, err := a.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("2 GB length prefix accepted")
		}
		if !strings.Contains(err.Error(), "outside") {
			t.Fatalf("err = %v, want length-cap rejection", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver blocked on a 2 GB length prefix (allocated/waited for the body)")
	}
}

// TestRecvRejectsZeroLengthFrame: a zero-length frame is equally
// malformed (no envelope can fit in zero bytes).
func TestRecvRejectsZeroLengthFrame(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := NewConn(b).RecvEnvelope()
		errCh <- err
	}()
	if _, err := a.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("zero-length frame accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver hung on zero-length frame")
	}
}

// TestEncodeFrameRejectsOversizePayload: the cap is enforced on the send
// side too, so a misbehaving local caller cannot emit a frame no peer
// would accept.
func TestEncodeFrameRejectsOversizePayload(t *testing.T) {
	if _, err := EncodeFrame(KindError, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Fatal("oversize frame encoded")
	}
}

// TestSubmissionValidateCaps covers the strict malformed-submission
// rejection the auctioneer applies before touching a submission.
func TestSubmissionValidateCaps(t *testing.T) {
	p := testParams()
	ok := Submission{Channels: make([]WireChannelBid, p.Channels)}
	if err := ok.Validate(p); err != nil {
		t.Fatalf("minimal submission rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Submission)
	}{
		{"channel count", func(s *Submission) { s.Channels = s.Channels[:1] }},
		{"x family digests", func(s *Submission) { s.XFamily = make(DigestSet, MaxDigestsPerSet+1) }},
		{"y range digests", func(s *Submission) { s.YRange = make(DigestSet, MaxDigestsPerSet+1) }},
		{"channel family digests", func(s *Submission) { s.Channels[2].Family = make(DigestSet, MaxDigestsPerSet+1) }},
		{"sealed bytes", func(s *Submission) { s.Channels[0].Sealed = make([]byte, MaxSealedBytes+1) }},
	}
	for _, tc := range bad {
		s := Submission{Channels: make([]WireChannelBid, p.Channels)}
		tc.mut(&s)
		if err := s.Validate(p); err == nil {
			t.Errorf("%s over cap accepted", tc.name)
		}
	}
}

// TestChargeBatchValidateCaps mirrors the same hardening on the TTP side.
func TestChargeBatchValidateCaps(t *testing.T) {
	if err := (ChargeBatch{}).Validate(); err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}
	if err := (ChargeBatch{Requests: make([]core.ChargeRequest, MaxChargeRequests+1)}).Validate(); err == nil {
		t.Error("oversized batch accepted")
	}
	if err := (ChargeBatch{Requests: []core.ChargeRequest{
		{Sealed: make([]byte, MaxSealedBytes+1)},
	}}).Validate(); err == nil {
		t.Error("oversized sealed bid accepted")
	}
}

// TestAuctioneerSurvivesMalformedConn: a connection spraying garbage must
// be rejected (counted in the role-labelled rejects metric) without
// poisoning the round — the real bidder that follows completes normally.
func TestAuctioneerSurvivesMalformedConn(t *testing.T) {
	p := testParams()
	log := quietLogger()
	reg := obs.NewRegistry()
	ttpSrv, err := NewTTPServer(p, []byte("hard"), 3, 4, listen(t), log)
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()
	aucSrv, err := NewAuctioneerServerWithConfig(p, 1, ttpSrv.Addr().String(), listen(t), 1,
		Config{Logger: log, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	// Garbage first: a huge length prefix, then a plausible-length frame of
	// noise.
	for _, garbage := range [][]byte{
		{0x7f, 0xff, 0xff, 0xff},
		{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef},
	} {
		raw, err := net.Dial("tcp", aucSrv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := raw.Write(garbage); err != nil {
			t.Fatal(err)
		}
		raw.Close()
	}

	b := &BidderClient{ID: 0, Params: p, Policy: core.DisguisePolicy{P0: 1}}
	res, err := b.Participate(ttpSrv.Addr().String(), aucSrv.Addr().String(),
		geo.Point{X: 3, Y: 3}, []uint64{9, 1, 2, 3}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatalf("honest bidder failed after garbage conns: %v", err)
	}
	if !res.Won {
		t.Error("sole bidder lost its own auction")
	}
	if aucSrv.Wait() == nil {
		t.Fatal("round failed")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if reg.Snapshot().Counters[`lppa_transport_frames_rejected_total{role="auctioneer"}`] >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejects counter = %d, want >= 2",
				reg.Snapshot().Counters[`lppa_transport_frames_rejected_total{role="auctioneer"}`])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPeerErrorClassification pins the retry taxonomy: Retryable travels
// the wire and errors.As recovers it.
func TestPeerErrorClassification(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	go func() { _ = ca.Send(KindError, ErrorMsg{Reason: "round in progress", Retryable: true}) }()
	var ack struct{}
	err := cb.Expect(KindSubmissionAck, &ack)
	var pe *PeerError
	if !errors.As(err, &pe) || !pe.Retryable || pe.Reason != "round in progress" {
		t.Fatalf("err = %v, want retryable peer error", err)
	}
}
