package transport

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"lppa/internal/core"
	"lppa/internal/obs"
	"lppa/internal/round"
)

// DefaultIdleTimeout bounds the wait for each next frame on server-side
// connections: a stalled bidder cannot pin a round forever. Results are
// pushed on idle connections after the round completes, so the timeout
// must comfortably exceed one full round.
const DefaultIdleTimeout = 5 * time.Minute

// roundState tracks the auctioneer's single-round lifecycle.
type roundState int

const (
	// stateCollecting accepts and stores submissions.
	stateCollecting roundState = iota
	// stateRunning is the auction compute window; resubmissions are asked
	// to retry shortly.
	stateRunning
	// stateDone redelivers stored results to nonce-matching resubmissions
	// (a bidder that crashed after submitting and restarted).
	stateDone
	// stateFailed rejects everything with the failure reason.
	stateFailed
)

// AuctioneerServer collects masked submissions from a fixed population of
// bidders over a listener, runs the private auction, settles charges with
// the TTP, and pushes each bidder its result on the same connection.
//
// Run one instance per auction round. The server never holds key material.
//
// The server survives a hostile network: frames are length-capped and
// deadline-bounded, resubmissions are deduplicated by (bidder, nonce) so a
// retrying client is idempotent, and — when Config.StragglerTimeout is set
// — a crashed bidder degrades the round to the configured quorum instead
// of hanging it.
type AuctioneerServer struct {
	params  core.Params
	bidders int
	quorum  int
	ttpAddr string
	ln      net.Listener
	log     *slog.Logger
	rng     *rand.Rand
	// secondPrice switches charging to the clearing-price rule.
	secondPrice  bool
	idleTimeout  time.Duration
	frameTimeout time.Duration
	straggler    time.Duration
	admit        func() (bool, time.Duration)
	onShed       func(time.Duration)
	reg          *obs.Registry
	ob           *netObs
	tracer       *obs.Tracer
	flight       *obs.FlightRecorder
	// root is the round's root span (nil when untraced); recv_submission
	// spans and phase spans hang off it unless the sender supplied its
	// own wire trace context.
	root *obs.Span

	// wg tracks the acceptor, the coordinator, and every live handler;
	// Shutdown waits on it. Round completion is signaled by done instead,
	// because the acceptor keeps serving replays until the listener closes.
	wg sync.WaitGroup
	// arrived nudges the coordinator that a new submission landed.
	arrived chan struct{}
	// stop aborts the coordinator's collection wait on Shutdown.
	stop     chan struct{}
	stopOnce sync.Once

	mu         sync.Mutex
	closed     bool
	state      roundState
	failReason string
	subs       map[int]Submission
	conns      map[int]*Conn
	results    map[int]Result

	// done closes when the round reaches stateDone or stateFailed; outcome
	// and err are written before the close.
	done    chan struct{}
	outcome *RoundOutcome
	err     error
}

// RoundOutcome summarizes the finished round on the auctioneer side.
type RoundOutcome struct {
	Results []Result
	Revenue uint64
	Voided  int
	// Excluded lists bidder ids (ascending) whose submissions never
	// arrived before a quorum round proceeded without them.
	Excluded []int
}

// NewAuctioneerServer starts the auctioneer for one round of exactly
// bidders participants with first-price charging and default
// configuration.
func NewAuctioneerServer(params core.Params, bidders int, ttpAddr string, ln net.Listener, seed int64, log *slog.Logger) (*AuctioneerServer, error) {
	return NewAuctioneerServerWithConfig(params, bidders, ttpAddr, ln, seed, Config{Logger: log})
}

// NewSecondPriceAuctioneerServer is NewAuctioneerServer with clearing-price
// (second-price) charging: the TTP unblinds each award-time runner-up's
// sealed bid as the charge.
func NewSecondPriceAuctioneerServer(params core.Params, bidders int, ttpAddr string, ln net.Listener, seed int64, log *slog.Logger) (*AuctioneerServer, error) {
	return NewAuctioneerServerWithConfig(params, bidders, ttpAddr, ln, seed, Config{Logger: log, SecondPrice: true})
}

// NewAuctioneerServerWithConfig is NewAuctioneerServer with explicit
// operational configuration (timeouts, quorum, logger, metrics, charging
// rule).
func NewAuctioneerServerWithConfig(params core.Params, bidders int, ttpAddr string, ln net.Listener, seed int64, cfg Config) (*AuctioneerServer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if bidders < 1 {
		return nil, fmt.Errorf("transport: need at least one bidder")
	}
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = bidders
	}
	if quorum < 1 || quorum > bidders {
		return nil, fmt.Errorf("transport: quorum %d outside [1, %d]", cfg.Quorum, bidders)
	}
	s := &AuctioneerServer{
		params:       params,
		bidders:      bidders,
		quorum:       quorum,
		ttpAddr:      ttpAddr,
		ln:           ln,
		log:          cfg.logger(),
		rng:          rand.New(rand.NewSource(seed)),
		secondPrice:  cfg.SecondPrice,
		idleTimeout:  cfg.idleTimeout(),
		frameTimeout: cfg.frameTimeout(),
		straggler:    cfg.StragglerTimeout,
		admit:        cfg.Admit,
		onShed:       cfg.OnShed,
		reg:          cfg.Metrics,
		ob:           newNetObs(cfg.Metrics, "auctioneer"),
		tracer:       cfg.Tracer,
		flight:       cfg.FlightRecorder,
		arrived:      make(chan struct{}, 1),
		stop:         make(chan struct{}),
		subs:         make(map[int]Submission, bidders),
		conns:        make(map[int]*Conn, bidders),
		done:         make(chan struct{}),
	}
	if s.tracer != nil {
		s.root = s.tracer.StartTrace("round",
			obs.L("bidders", strconv.Itoa(bidders)),
			obs.L("channels", strconv.Itoa(params.Channels)))
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.coordinate()
	return s, nil
}

// Addr returns the listen address.
func (s *AuctioneerServer) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the listener and waits for handlers.
func (s *AuctioneerServer) Close() error {
	return s.Shutdown(context.Background())
}

// Shutdown stops accepting, closes the listener, and waits for in-flight
// handlers to drain, bounded by ctx. On ctx expiry the handlers keep
// draining in the background and ctx.Err() is returned.
func (s *AuctioneerServer) Shutdown(ctx context.Context) error {
	return shutdownServer(ctx, func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.stopOnce.Do(func() { close(s.stop) })
	}, s.ln, &s.wg)
}

// Wait blocks until the round completes and returns the outcome, nil if
// the round failed. Outcome additionally reports why.
func (s *AuctioneerServer) Wait() *RoundOutcome {
	o, _ := s.Outcome()
	return o
}

// Outcome blocks until the round completes and returns the outcome or the
// failure. A quorum shortfall is reported as round.ErrQuorumNotReached
// (wrapped).
func (s *AuctioneerServer) Outcome() (*RoundOutcome, error) {
	<-s.done
	return s.outcome, s.err
}

// acceptLoop admits connections until the listener closes. Unlike the
// pre-hardening server it never stops at the population size: a retrying
// bidder opens a fresh connection per attempt, and a restarted bidder may
// reconnect after the round completed to collect its result.
func (s *AuctioneerServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed && !errors.Is(err, net.ErrClosed) {
				s.log.Error("auctioneer accept", "err", err)
			}
			return
		}
		// Admission control sits here, before the handler spawns and long
		// before any frame is read: an over-rate peer costs the accept, one
		// small retry-after write, and nothing else — no decode work, no
		// handler goroutine parked on the idle timeout.
		if s.admit != nil {
			if ok, retry := s.admit(); !ok {
				s.ob.rateLimit()
				if s.onShed != nil {
					s.onShed(retry)
				}
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					c := NewConnTimeouts(s.ob.accept(conn), s.idleTimeout, s.frameTimeout)
					_ = c.Send(KindRetryAfter, RetryAfterMsg{RetryAfter: retry})
					c.Close()
				}()
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.receiveSubmission(NewConnTimeouts(s.ob.accept(conn), s.idleTimeout, s.frameTimeout))
		}()
	}
}

// coordinate waits for the population to assemble and starts the round:
// immediately when every bidder has submitted, or at the straggler
// deadline with at least quorum submissions. With no deadline configured
// it waits for full attendance forever (the pre-hardening contract).
func (s *AuctioneerServer) coordinate() {
	defer s.wg.Done()
	var deadline <-chan time.Time
	if s.straggler > 0 {
		deadline = time.After(s.straggler)
	}
	for {
		select {
		case <-s.arrived:
			if s.submissionCount() >= s.bidders {
				s.startRound()
				return
			}
		case <-deadline:
			got := s.submissionCount()
			if got >= s.quorum {
				s.startRound()
				return
			}
			s.fail(fmt.Errorf("%w: %d of %d submissions (quorum %d) within %v",
				round.ErrQuorumNotReached, got, s.bidders, s.quorum, s.straggler))
			return
		case <-s.stop:
			s.fail(errors.New("transport: auctioneer shut down before round completed"))
			return
		}
	}
}

func (s *AuctioneerServer) submissionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// startRound transitions to stateRunning, computes the auction over the
// collected submissions, and delivers results.
func (s *AuctioneerServer) startRound() {
	s.mu.Lock()
	s.state = stateRunning
	subs := make(map[int]Submission, len(s.subs))
	for id, sub := range s.subs {
		subs[id] = sub
	}
	s.mu.Unlock()

	outcome, results, err := s.runRound(subs)
	if err != nil {
		s.log.Error("auctioneer: run round", "err", err)
		s.fail(err)
		return
	}
	s.ob.exclude(len(outcome.Excluded))
	s.finishTrace("", len(outcome.Excluded) > 0)

	s.mu.Lock()
	s.state = stateDone
	s.results = results
	conns := make(map[int]*Conn, len(s.conns))
	for id, c := range s.conns {
		conns[id] = c
	}
	s.mu.Unlock()

	for id, c := range conns {
		if err := c.Send(KindResult, results[id]); err != nil {
			s.log.Error("auctioneer send result", "bidder", id, "err", err)
		}
		c.Close()
	}
	s.outcome = outcome
	close(s.done)
}

// fail abandons the round: every parked bidder connection is told why and
// closed, and Wait/Outcome unblock.
func (s *AuctioneerServer) fail(err error) {
	s.mu.Lock()
	if s.state == stateDone || s.state == stateFailed {
		s.mu.Unlock()
		return
	}
	s.state = stateFailed
	s.failReason = err.Error()
	conns := make([]*Conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.Send(KindError, ErrorMsg{Reason: err.Error()})
		c.Close()
	}
	s.finishTrace(err.Error(), false)
	s.err = err
	close(s.done)
}

// finishTrace ends the round's root span and, when a flight recorder is
// configured, records the round — which auto-dumps the trace to disk on
// failure, degradation, or an SLO miss.
func (s *AuctioneerServer) finishTrace(errStr string, degraded bool) {
	if s.tracer == nil {
		return
	}
	if errStr != "" {
		s.root.SetError(errStr)
	}
	s.root.End()
	if s.flight == nil {
		return
	}
	rt := &obs.RoundTrace{
		Label:    "round",
		Err:      errStr,
		Degraded: degraded,
		Duration: s.root.Duration,
		Spans:    s.tracer.Snapshot(),
	}
	path, err := s.flight.Record(rt)
	switch {
	case err != nil:
		s.log.Error("auctioneer: flight recorder dump", "err", err)
	case path != "":
		s.log.Info("auctioneer: flight recorder dumped round trace", "path", path)
	}
}

// rejectConn answers a connection with a protocol error and closes it.
// span, when non-nil, is marked failed with the same reason.
func (s *AuctioneerServer) rejectConn(c *Conn, span *obs.Span, reason string, retryable bool) {
	s.ob.reject()
	span.SetError(reason)
	_ = c.Send(KindError, ErrorMsg{Reason: reason, Retryable: retryable})
	c.Close()
}

// recvSpan opens the per-submission span, parented onto the sender's
// wire trace context when the frame carried one, else onto the round's
// root span. Returns nil (a no-op span) when tracing is off.
func (s *AuctioneerServer) recvSpan(c *Conn, bidder int) *obs.Span {
	if s.tracer == nil {
		return nil
	}
	parent := s.root.Context()
	if tc := c.LastTrace(); tc.Valid() {
		parent = tc.SpanContext()
	}
	return s.tracer.StartSpan("recv_submission", parent, obs.L("bidder", strconv.Itoa(bidder)))
}

func (s *AuctioneerServer) receiveSubmission(c *Conn) {
	var start time.Time
	if s.ob != nil {
		start = time.Now()
	}
	var sub Submission
	if err := c.Expect(KindSubmission, &sub); err != nil {
		s.ob.noteErr(err)
		s.ob.reject()
		if s.tracer != nil {
			s.root.Event("frame_rejected", obs.L("err", err.Error()))
		}
		s.log.Error("auctioneer recv submission", "err", err)
		c.Close()
		return
	}
	if s.ob != nil {
		s.ob.subLat.ObserveDuration(time.Since(start))
	}
	span := s.recvSpan(c, sub.BidderID)
	defer span.End()
	if err := sub.Validate(s.params); err != nil {
		s.log.Error("auctioneer: malformed submission", "bidder", sub.BidderID, "err", err)
		s.rejectConn(c, span, err.Error(), false)
		return
	}
	if sub.BidderID < 0 || sub.BidderID >= s.bidders {
		s.rejectConn(c, span, "bidder id out of range", false)
		return
	}

	s.mu.Lock()
	switch s.state {
	case stateCollecting:
		if prev, ok := s.subs[sub.BidderID]; ok {
			if prev.Nonce != sub.Nonce {
				s.mu.Unlock()
				s.rejectConn(c, span, "duplicate bidder id", false)
				return
			}
			// Idempotent replay: the bidder lost its connection and
			// resubmitted. Adopt the fresh connection for result delivery.
			old := s.conns[sub.BidderID]
			s.conns[sub.BidderID] = c
			s.mu.Unlock()
			if old != nil {
				old.Close()
			}
			s.ob.replay()
			span.Event("replay_deduped")
			_ = c.Send(KindSubmissionAck, struct{}{})
			return
		}
		s.subs[sub.BidderID] = sub
		s.conns[sub.BidderID] = c
		s.mu.Unlock()
		_ = c.Send(KindSubmissionAck, struct{}{})
		select {
		case s.arrived <- struct{}{}:
		default:
		}
	case stateRunning:
		s.mu.Unlock()
		s.rejectConn(c, span, "round in progress, retry shortly", true)
	case stateDone:
		prev, submitted := s.subs[sub.BidderID]
		res, haveResult := s.results[sub.BidderID]
		s.mu.Unlock()
		if submitted && haveResult && prev.Nonce == sub.Nonce {
			// A bidder that crashed after submitting and restarted:
			// replay its stored result.
			s.ob.replay()
			span.Event("replay_deduped")
			_ = c.Send(KindSubmissionAck, struct{}{})
			_ = c.Send(KindResult, res)
			c.Close()
			return
		}
		s.rejectConn(c, span, "round already closed", false)
	default: // stateFailed
		reason := s.failReason
		s.mu.Unlock()
		s.rejectConn(c, span, "round failed: "+reason, false)
	}
}

// runRound computes the auction over the collected submissions. With a
// partial population (quorum round) the auction runs over the compacted
// survivor slice; assignment indices are translated back to original
// bidder ids before anything leaves this function.
func (s *AuctioneerServer) runRound(subs map[int]Submission) (*RoundOutcome, map[int]Result, error) {
	ids := make([]int, 0, len(subs))
	for id := range subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	locs := make([]*core.LocationSubmission, len(ids))
	bids := make([]*core.BidSubmission, len(ids))
	for ci, id := range ids {
		sub := subs[id]
		locs[ci], bids[ci] = sub.Parts()
	}
	auc, err := core.NewAuctioneer(s.params, locs, bids)
	if err != nil {
		return nil, nil, err
	}
	auc.SetObserver(s.reg)
	timer := s.reg.PhaseTimer("lppa_round_phase_seconds", nil)
	defer timer.Stop()
	// cur mirrors the timer's current phase as a child span of the round
	// root; with tracing off every operation is a nil no-op.
	var cur *obs.Span
	phase := func(name string) {
		timer.Phase(name)
		cur.End()
		cur = s.tracer.StartSpan(name, s.root.Context())
	}
	defer func() { cur.End() }()
	phase("conflict_graph")
	auc.ConflictGraph()
	phase("allocate")
	var reqs []core.ChargeRequest
	if s.secondPrice {
		awards, err := auc.AllocateAwards(s.rng)
		if err != nil {
			return nil, nil, err
		}
		reqs = auc.ChargeRequestsSecondPrice(awards)
	} else {
		assignments, err := auc.Allocate(s.rng)
		if err != nil {
			return nil, nil, err
		}
		reqs = auc.ChargeRequests(assignments)
	}
	phase("charge")
	wireResults, err := submitChargesRetry(s.ttpAddr, reqs, 3, 100*time.Millisecond)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: settle with ttp: %w", err)
	}

	outcome := &RoundOutcome{}
	for id := 0; id < s.bidders; id++ {
		if _, ok := subs[id]; !ok {
			outcome.Excluded = append(outcome.Excluded, id)
			if s.tracer != nil {
				s.root.Event("straggler_excluded", obs.L("bidder", strconv.Itoa(id)))
			}
		}
	}
	results := make(map[int]Result, len(ids))
	for _, r := range wireResults {
		if r.Bidder < 0 || r.Bidder >= len(ids) {
			s.log.Error("auctioneer: ttp result for unknown bidder", "bidder", r.Bidder)
			continue
		}
		id := ids[r.Bidder]
		res := Result{BidderID: id, Channel: r.Channel}
		switch {
		case r.Err != "":
			res.Voided = true
			outcome.Voided++
		case !r.Valid:
			res.Voided = true
			outcome.Voided++
		default:
			res.Won = true
			res.Price = r.Price
			outcome.Revenue += r.Price
		}
		results[id] = res
	}
	for _, id := range ids {
		res, ok := results[id]
		if !ok {
			res = Result{BidderID: id}
			results[id] = res
		}
		outcome.Results = append(outcome.Results, res)
	}
	return outcome, results, nil
}
