package transport

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"lppa/internal/core"
	"lppa/internal/obs"
)

// DefaultIdleTimeout bounds each network read/write on server-side
// connections: a stalled bidder cannot pin a round forever. Results are
// pushed on idle connections after the round completes, so the timeout
// must comfortably exceed one full round.
const DefaultIdleTimeout = 5 * time.Minute

// AuctioneerServer collects masked submissions from a fixed number of
// bidders over a listener, runs the private auction, settles charges with
// the TTP, and pushes each bidder its result on the same connection.
//
// Run one instance per auction round. The server never holds key material.
type AuctioneerServer struct {
	params  core.Params
	bidders int
	ttpAddr string
	ln      net.Listener
	log     *slog.Logger
	rng     *rand.Rand
	// secondPrice switches charging to the clearing-price rule.
	secondPrice bool
	// idleTimeout bounds each read/write on accepted connections
	// (DefaultIdleTimeout when zero at construction).
	idleTimeout time.Duration
	reg         *obs.Registry
	ob          *netObs

	wg sync.WaitGroup

	mu     sync.Mutex
	closed bool
	subs   map[int]Submission
	conns  map[int]*Conn

	doneMu  sync.Mutex
	outcome *RoundOutcome
}

// RoundOutcome summarizes the finished round on the auctioneer side.
type RoundOutcome struct {
	Results []Result
	Revenue uint64
	Voided  int
}

// NewAuctioneerServer starts the auctioneer for one round of exactly
// bidders participants with first-price charging and default
// configuration.
func NewAuctioneerServer(params core.Params, bidders int, ttpAddr string, ln net.Listener, seed int64, log *slog.Logger) (*AuctioneerServer, error) {
	return NewAuctioneerServerWithConfig(params, bidders, ttpAddr, ln, seed, Config{Logger: log})
}

// NewSecondPriceAuctioneerServer is NewAuctioneerServer with clearing-price
// (second-price) charging: the TTP unblinds each award-time runner-up's
// sealed bid as the charge.
func NewSecondPriceAuctioneerServer(params core.Params, bidders int, ttpAddr string, ln net.Listener, seed int64, log *slog.Logger) (*AuctioneerServer, error) {
	return NewAuctioneerServerWithConfig(params, bidders, ttpAddr, ln, seed, Config{Logger: log, SecondPrice: true})
}

// NewAuctioneerServerWithConfig is NewAuctioneerServer with explicit
// operational configuration (idle timeout, logger, metrics, charging
// rule).
func NewAuctioneerServerWithConfig(params core.Params, bidders int, ttpAddr string, ln net.Listener, seed int64, cfg Config) (*AuctioneerServer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if bidders < 1 {
		return nil, fmt.Errorf("transport: need at least one bidder")
	}
	s := &AuctioneerServer{
		params:      params,
		bidders:     bidders,
		ttpAddr:     ttpAddr,
		ln:          ln,
		log:         cfg.logger(),
		rng:         rand.New(rand.NewSource(seed)),
		secondPrice: cfg.SecondPrice,
		idleTimeout: cfg.idleTimeout(),
		reg:         cfg.Metrics,
		ob:          newNetObs(cfg.Metrics, "auctioneer"),
		subs:        make(map[int]Submission, bidders),
		conns:       make(map[int]*Conn, bidders),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *AuctioneerServer) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the listener and waits for handlers.
func (s *AuctioneerServer) Close() error {
	return s.Shutdown(context.Background())
}

// Shutdown stops accepting, closes the listener, and waits for in-flight
// handlers to drain, bounded by ctx. On ctx expiry the handlers keep
// draining in the background and ctx.Err() is returned.
func (s *AuctioneerServer) Shutdown(ctx context.Context) error {
	return shutdownServer(ctx, func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
	}, s.ln, &s.wg)
}

// Wait blocks until the round completes and returns the outcome.
func (s *AuctioneerServer) Wait() *RoundOutcome {
	s.wg.Wait()
	s.doneMu.Lock()
	defer s.doneMu.Unlock()
	return s.outcome
}

func (s *AuctioneerServer) acceptLoop() {
	defer s.wg.Done()
	var handlers sync.WaitGroup
	for accepted := 0; accepted < s.bidders; accepted++ {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed && !errors.Is(err, net.ErrClosed) {
				s.log.Error("auctioneer accept", "err", err)
			}
			handlers.Wait()
			return
		}
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			s.receiveSubmission(NewConnTimeout(s.ob.accept(conn), s.idleTimeout))
		}()
	}
	// Wait for all submission handlers, then run the round and answer
	// every bidder.
	handlers.Wait()
	s.mu.Lock()
	complete := len(s.subs) == s.bidders
	s.mu.Unlock()
	if !complete {
		s.log.Error("auctioneer: round incomplete", "got", len(s.subs), "want", s.bidders)
		s.failAll("round incomplete")
		return
	}
	if err := s.runRound(); err != nil {
		s.log.Error("auctioneer: run round", "err", err)
		s.failAll(err.Error())
	}
}

func (s *AuctioneerServer) receiveSubmission(c *Conn) {
	var start time.Time
	if s.ob != nil {
		start = time.Now()
	}
	var sub Submission
	if err := c.Expect(KindSubmission, &sub); err != nil {
		s.ob.noteErr(err)
		s.log.Error("auctioneer recv submission", "err", err)
		c.Close()
		return
	}
	if s.ob != nil {
		s.ob.subLat.ObserveDuration(time.Since(start))
	}
	s.mu.Lock()
	reject := ""
	switch {
	case sub.BidderID < 0 || sub.BidderID >= s.bidders:
		reject = "bidder id out of range"
	default:
		if _, dup := s.subs[sub.BidderID]; dup {
			reject = "duplicate bidder id"
		} else {
			s.subs[sub.BidderID] = sub
			s.conns[sub.BidderID] = c
		}
	}
	s.mu.Unlock()
	if reject != "" {
		_ = c.Send(KindError, ErrorMsg{Reason: reject})
		c.Close()
		return
	}
	_ = c.Send(KindSubmissionAck, struct{}{})
}

func (s *AuctioneerServer) runRound() error {
	locs := make([]*core.LocationSubmission, s.bidders)
	bids := make([]*core.BidSubmission, s.bidders)
	for id, sub := range s.subs {
		locs[id], bids[id] = sub.Parts()
	}
	auc, err := core.NewAuctioneer(s.params, locs, bids)
	if err != nil {
		return err
	}
	auc.SetObserver(s.reg)
	timer := s.reg.PhaseTimer("lppa_round_phase_seconds", nil)
	defer timer.Stop()
	timer.Phase("conflict_graph")
	auc.ConflictGraph()
	timer.Phase("allocate")
	var reqs []core.ChargeRequest
	if s.secondPrice {
		awards, err := auc.AllocateAwards(s.rng)
		if err != nil {
			return err
		}
		reqs = auc.ChargeRequestsSecondPrice(awards)
	} else {
		assignments, err := auc.Allocate(s.rng)
		if err != nil {
			return err
		}
		reqs = auc.ChargeRequests(assignments)
	}
	timer.Phase("charge")
	wireResults, err := SubmitCharges(s.ttpAddr, reqs)
	if err != nil {
		return fmt.Errorf("transport: settle with ttp: %w", err)
	}

	outcome := &RoundOutcome{}
	results := make(map[int]Result, s.bidders)
	for _, r := range wireResults {
		res := Result{BidderID: r.Bidder, Channel: r.Channel}
		switch {
		case r.Err != "":
			res.Voided = true
			outcome.Voided++
		case !r.Valid:
			res.Voided = true
			outcome.Voided++
		default:
			res.Won = true
			res.Price = r.Price
			outcome.Revenue += r.Price
		}
		results[r.Bidder] = res
	}
	for id, c := range s.conns {
		res, ok := results[id]
		if !ok {
			res = Result{BidderID: id}
		}
		if err := c.Send(KindResult, res); err != nil {
			s.log.Error("auctioneer send result", "bidder", id, "err", err)
		}
		c.Close()
		outcome.Results = append(outcome.Results, res)
	}
	s.doneMu.Lock()
	s.outcome = outcome
	s.doneMu.Unlock()
	return nil
}

func (s *AuctioneerServer) failAll(reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		_ = c.Send(KindError, ErrorMsg{Reason: reason})
		c.Close()
	}
}
