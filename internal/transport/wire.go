// Package transport deploys the LPPA parties over real connections: a TTP
// server escrowing keys and adjudicating charges, an auctioneer server
// collecting masked submissions and running the private auction, and a
// bidder client. Messages are length-delimited gob; the same wire types
// work over TCP and over in-memory pipes (tests).
//
// Trust boundaries are explicit: the auctioneer only ever sees wire types
// containing masked digests and sealed ciphertexts; the key ring travels
// only on the bidder↔TTP connection.
package transport

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"lppa/internal/core"
	"lppa/internal/mask"
	"lppa/internal/ttp"
)

// Protocol version, checked in every hello.
const protocolVersion = 1

// MsgKind discriminates top-level messages.
type MsgKind int

// Message kinds. Start at 1 so the zero value is invalid (a decoding
// error, not an accidental valid message).
const (
	KindKeyRingRequest MsgKind = iota + 1
	KindKeyRingReply
	KindSubmission
	KindSubmissionAck
	KindResult
	KindChargeBatch
	KindChargeReply
	KindError
)

// Envelope frames every message with a version and kind.
type Envelope struct {
	Version int
	Kind    MsgKind
}

// KeyRingReply carries the secret material from the TTP to a bidder.
// It must never be sent to the auctioneer.
type KeyRingReply struct {
	G0 []byte
	GB [][]byte
	GC []byte
	RD uint64
	CR uint64
}

// RingToWire converts a key ring for transmission.
func RingToWire(r *mask.KeyRing) KeyRingReply {
	gb := make([][]byte, len(r.GB))
	for i, k := range r.GB {
		gb[i] = append([]byte(nil), k...)
	}
	return KeyRingReply{
		G0: append([]byte(nil), r.G0...),
		GB: gb,
		GC: append([]byte(nil), r.GC...),
		RD: r.RD,
		CR: r.CR,
	}
}

// ToRing converts the wire form back to a key ring.
func (k KeyRingReply) ToRing() *mask.KeyRing {
	gb := make([]mask.Key, len(k.GB))
	for i, b := range k.GB {
		gb[i] = mask.Key(b)
	}
	return &mask.KeyRing{G0: mask.Key(k.G0), GB: gb, GC: mask.Key(k.GC), RD: k.RD, CR: k.CR}
}

// DigestSet is the wire form of a mask.Set.
type DigestSet []mask.Digest

// SetToWire flattens a digest set in lexicographic byte order, so the
// serialized transcript is byte-stable across runs (Go randomizes map
// iteration per process; an unordered dump would make Theorem-4 byte
// accounting and golden transcripts flap). Sorting pseudorandom digests
// reveals nothing beyond membership, which the set already exposes.
func SetToWire(s mask.Set) DigestSet { return s.SortedDigests() }

// ToSet rebuilds the mask.Set.
func (d DigestSet) ToSet() mask.Set { return mask.NewSet(d) }

// WireChannelBid is the wire form of core.ChannelBid.
type WireChannelBid struct {
	Family DigestSet
	Range  DigestSet
	Sealed []byte
}

// Submission is a bidder's complete round submission.
type Submission struct {
	BidderID int
	XFamily  DigestSet
	YFamily  DigestSet
	XRange   DigestSet
	YRange   DigestSet
	Channels []WireChannelBid
}

// NewSubmission assembles the wire submission from protocol objects.
func NewSubmission(id int, loc *core.LocationSubmission, bid *core.BidSubmission) Submission {
	s := Submission{
		BidderID: id,
		XFamily:  SetToWire(loc.XFamily),
		YFamily:  SetToWire(loc.YFamily),
		XRange:   SetToWire(loc.XRange),
		YRange:   SetToWire(loc.YRange),
		Channels: make([]WireChannelBid, len(bid.Channels)),
	}
	for i := range bid.Channels {
		cb := &bid.Channels[i]
		s.Channels[i] = WireChannelBid{
			Family: SetToWire(cb.Family),
			Range:  SetToWire(cb.Range),
			Sealed: append([]byte(nil), cb.Sealed...),
		}
	}
	return s
}

// Parts reconstructs the protocol objects on the auctioneer side.
func (s Submission) Parts() (*core.LocationSubmission, *core.BidSubmission) {
	loc := &core.LocationSubmission{
		XFamily: s.XFamily.ToSet(),
		YFamily: s.YFamily.ToSet(),
		XRange:  s.XRange.ToSet(),
		YRange:  s.YRange.ToSet(),
	}
	bid := &core.BidSubmission{Channels: make([]core.ChannelBid, len(s.Channels))}
	for i, wc := range s.Channels {
		bid.Channels[i] = core.ChannelBid{
			Family: wc.Family.ToSet(),
			Range:  wc.Range.ToSet(),
			Sealed: append([]byte(nil), wc.Sealed...),
		}
	}
	return loc, bid
}

// Result tells a bidder how the round ended for it.
type Result struct {
	BidderID int
	Won      bool
	Channel  int
	Price    uint64
	// Voided reports that the bidder "won" with a zero (its disguise was
	// caught); it possesses no spectrum and pays nothing.
	Voided bool
}

// ChargeBatch is the auctioneer→TTP charging request.
type ChargeBatch struct {
	Requests []core.ChargeRequest
}

// WireChargeResult mirrors ttp.ChargeResult with the error flattened to a
// string (gob cannot carry interface values).
type WireChargeResult struct {
	Bidder  int
	Channel int
	Valid   bool
	Price   uint64
	Err     string
}

// ChargeReply is the TTP's adjudication.
type ChargeReply struct {
	Results []WireChargeResult
}

// ChargeResultsToWire flattens TTP results for transmission.
func ChargeResultsToWire(rs []ttp.ChargeResult) []WireChargeResult {
	out := make([]WireChargeResult, len(rs))
	for i, r := range rs {
		out[i] = WireChargeResult{Bidder: r.Bidder, Channel: r.Channel, Valid: r.Valid, Price: r.Price}
		if r.Err != nil {
			out[i].Err = r.Err.Error()
		}
	}
	return out
}

// ErrorMsg reports a protocol failure to the peer.
type ErrorMsg struct {
	Reason string
}

// deadliner is the optional deadline surface of net.Conn; the Conn
// wrapper arms it when a timeout is configured so a stalled peer cannot
// pin a handler goroutine forever.
type deadliner interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// Conn wraps a bidirectional stream with gob encoding of enveloped
// messages. It is not safe for concurrent use.
type Conn struct {
	rw      io.ReadWriteCloser
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration
}

// NewConn wraps a stream.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{rw: rw, enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}
}

// NewConnTimeout wraps a stream with a per-operation I/O deadline. The
// deadline applies to each Send/Recv individually (it is re-armed per
// call), so long rounds are fine as long as the peer keeps making
// progress. Streams without deadline support (e.g. in-memory pipes in
// tests) ignore the timeout.
func NewConnTimeout(rw io.ReadWriteCloser, timeout time.Duration) *Conn {
	c := NewConn(rw)
	c.timeout = timeout
	return c
}

func (c *Conn) armRead() {
	if c.timeout <= 0 {
		return
	}
	if d, ok := c.rw.(deadliner); ok {
		_ = d.SetReadDeadline(time.Now().Add(c.timeout))
	}
}

func (c *Conn) armWrite() {
	if c.timeout <= 0 {
		return
	}
	if d, ok := c.rw.(deadliner); ok {
		_ = d.SetWriteDeadline(time.Now().Add(c.timeout))
	}
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }

// Send writes an enveloped message.
func (c *Conn) Send(kind MsgKind, payload any) error {
	c.armWrite()
	if err := c.enc.Encode(Envelope{Version: protocolVersion, Kind: kind}); err != nil {
		return fmt.Errorf("transport: send envelope: %w", err)
	}
	if err := c.enc.Encode(payload); err != nil {
		return fmt.Errorf("transport: send payload: %w", err)
	}
	return nil
}

// RecvEnvelope reads the next envelope and validates the version.
func (c *Conn) RecvEnvelope() (Envelope, error) {
	c.armRead()
	var env Envelope
	if err := c.dec.Decode(&env); err != nil {
		return env, fmt.Errorf("transport: recv envelope: %w", err)
	}
	if env.Version != protocolVersion {
		return env, fmt.Errorf("transport: protocol version %d, want %d", env.Version, protocolVersion)
	}
	return env, nil
}

// RecvPayload decodes the message body into payload.
func (c *Conn) RecvPayload(payload any) error {
	c.armRead()
	if err := c.dec.Decode(payload); err != nil {
		return fmt.Errorf("transport: recv payload: %w", err)
	}
	return nil
}

// Expect reads an envelope and asserts its kind, then decodes the body.
// A KindError body is surfaced as an error.
func (c *Conn) Expect(kind MsgKind, payload any) error {
	env, err := c.RecvEnvelope()
	if err != nil {
		return err
	}
	if env.Kind == KindError {
		var em ErrorMsg
		if err := c.RecvPayload(&em); err != nil {
			return err
		}
		return fmt.Errorf("transport: peer error: %s", em.Reason)
	}
	if env.Kind != kind {
		return fmt.Errorf("transport: got message kind %d, want %d", env.Kind, kind)
	}
	return c.RecvPayload(payload)
}
