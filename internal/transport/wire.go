// Package transport deploys the LPPA parties over real connections: a TTP
// server escrowing keys and adjudicating charges, an auctioneer server
// collecting masked submissions and running the private auction, and a
// bidder client. Messages are length-delimited gob; the same wire types
// work over TCP and over in-memory pipes (tests).
//
// Trust boundaries are explicit: the auctioneer only ever sees wire types
// containing masked digests and sealed ciphertexts; the key ring travels
// only on the bidder↔TTP connection.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"lppa/internal/core"
	"lppa/internal/mask"
	"lppa/internal/obs"
	"lppa/internal/ttp"
)

// Protocol version, checked in every frame. Version 2 switched the wire
// format from a single long-lived gob stream to self-contained
// length-prefixed frames, so a receiver can cap and reject a frame before
// allocating for it and a retrying sender can resend a frame verbatim.
const protocolVersion = 2

// Wire hardening caps. A peer-supplied length or count beyond these is
// rejected before any allocation happens, so a hostile 2 GB length prefix
// costs the server nothing.
const (
	// MaxFrameBytes caps one frame's payload. The largest legitimate
	// frame is a submission (≲ a few hundred KB at production parameters);
	// 16 MiB leaves wide headroom without letting a peer balloon memory.
	MaxFrameBytes = 16 << 20
	// MaxDigestsPerSet caps any single digest set in a submission or
	// charge request. Prefix families and range covers are O(log domain)
	// — tens of digests — so 4096 is far beyond any honest submission.
	MaxDigestsPerSet = 4096
	// MaxSealedBytes caps a sealed-bid ciphertext (nonce + GCM tag +
	// value, well under 100 bytes when honest).
	MaxSealedBytes = 1024
	// MaxChargeRequests caps one charge batch.
	MaxChargeRequests = 1 << 16
)

// MsgKind discriminates top-level messages.
type MsgKind int

// Message kinds. Start at 1 so the zero value is invalid (a decoding
// error, not an accidental valid message).
const (
	KindKeyRingRequest MsgKind = iota + 1
	KindKeyRingReply
	KindSubmission
	KindSubmissionAck
	KindResult
	KindChargeBatch
	KindChargeReply
	KindError
	// KindRetryAfter is an admission-control rejection sent before any
	// payload decode work: the server is shedding load and the frame's
	// RetryAfterMsg tells the client when a token should be available.
	// Appended after KindError so every pre-existing kind keeps its wire
	// number.
	KindRetryAfter
)

// Envelope frames every message with a version and kind. Trace is the
// sender's span context; the zero TraceContext (untraced) is omitted
// from the gob encoding entirely, so untraced frames carry no trace
// bytes, and peers that predate the field skip it on decode (gob matches
// struct fields by name and ignores unknown ones). Both directions are
// pinned by compat tests.
type Envelope struct {
	Version int
	Kind    MsgKind
	Trace   TraceContext
}

// TraceContext carries a span identity across the wire so the receiver's
// spans can parent onto the sender's. Zero means "not traced".
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real span.
func (t TraceContext) Valid() bool { return t.TraceID != 0 && t.SpanID != 0 }

// SpanContext converts to the obs span identity.
func (t TraceContext) SpanContext() obs.SpanContext {
	return obs.SpanContext{Trace: obs.TraceID(t.TraceID), Span: obs.SpanID(t.SpanID)}
}

// ToTraceContext converts an obs span identity to its wire form.
func ToTraceContext(c obs.SpanContext) TraceContext {
	return TraceContext{TraceID: uint64(c.Trace), SpanID: uint64(c.Span)}
}

// KeyRingReply carries the secret material from the TTP to a bidder.
// It must never be sent to the auctioneer.
type KeyRingReply struct {
	G0 []byte
	GB [][]byte
	GC []byte
	RD uint64
	CR uint64
}

// RingToWire converts a key ring for transmission.
func RingToWire(r *mask.KeyRing) KeyRingReply {
	gb := make([][]byte, len(r.GB))
	for i, k := range r.GB {
		gb[i] = append([]byte(nil), k...)
	}
	return KeyRingReply{
		G0: append([]byte(nil), r.G0...),
		GB: gb,
		GC: append([]byte(nil), r.GC...),
		RD: r.RD,
		CR: r.CR,
	}
}

// ToRing converts the wire form back to a key ring.
func (k KeyRingReply) ToRing() *mask.KeyRing {
	gb := make([]mask.Key, len(k.GB))
	for i, b := range k.GB {
		gb[i] = mask.Key(b)
	}
	return &mask.KeyRing{G0: mask.Key(k.G0), GB: gb, GC: mask.Key(k.GC), RD: k.RD, CR: k.CR}
}

// DigestSet is the wire form of a mask.Set.
type DigestSet []mask.Digest

// SetToWire flattens a digest set in lexicographic byte order, so the
// serialized transcript is byte-stable across runs (Go randomizes map
// iteration per process; an unordered dump would make Theorem-4 byte
// accounting and golden transcripts flap). Sorting pseudorandom digests
// reveals nothing beyond membership, which the set already exposes.
func SetToWire(s mask.Set) DigestSet { return s.SortedDigests() }

// ToSet rebuilds the mask.Set.
func (d DigestSet) ToSet() mask.Set { return mask.NewSet(d) }

// WireChannelBid is the wire form of core.ChannelBid.
type WireChannelBid struct {
	Family DigestSet
	Range  DigestSet
	Sealed []byte
}

// Submission is a bidder's complete round submission.
type Submission struct {
	BidderID int
	// Nonce identifies this (bidder, round) submission across retries: a
	// client resending after a broken connection reuses the nonce, and the
	// auctioneer treats a matching (BidderID, Nonce) pair as an idempotent
	// replay rather than a duplicate.
	Nonce    uint64
	XFamily  DigestSet
	YFamily  DigestSet
	XRange   DigestSet
	YRange   DigestSet
	Channels []WireChannelBid
}

// Validate rejects malformed submissions before any further processing:
// wrong channel count for the round's parameters, digest sets beyond the
// hardening cap, or oversized sealed ciphertexts.
func (s Submission) Validate(params core.Params) error {
	if len(s.Channels) != params.Channels {
		return fmt.Errorf("transport: submission has %d channel bids, round has %d channels",
			len(s.Channels), params.Channels)
	}
	sets := []struct {
		name string
		n    int
	}{
		{"x family", len(s.XFamily)}, {"y family", len(s.YFamily)},
		{"x range", len(s.XRange)}, {"y range", len(s.YRange)},
	}
	for _, set := range sets {
		if set.n > MaxDigestsPerSet {
			return fmt.Errorf("transport: submission %s has %d digests, cap %d", set.name, set.n, MaxDigestsPerSet)
		}
	}
	for r, cb := range s.Channels {
		if len(cb.Family) > MaxDigestsPerSet || len(cb.Range) > MaxDigestsPerSet {
			return fmt.Errorf("transport: channel %d bid has %d+%d digests, cap %d",
				r, len(cb.Family), len(cb.Range), MaxDigestsPerSet)
		}
		if len(cb.Sealed) > MaxSealedBytes {
			return fmt.Errorf("transport: channel %d sealed bid is %d bytes, cap %d",
				r, len(cb.Sealed), MaxSealedBytes)
		}
	}
	return nil
}

// NewSubmission assembles the wire submission from protocol objects.
func NewSubmission(id int, loc *core.LocationSubmission, bid *core.BidSubmission) Submission {
	s := Submission{
		BidderID: id,
		XFamily:  SetToWire(loc.XFamily),
		YFamily:  SetToWire(loc.YFamily),
		XRange:   SetToWire(loc.XRange),
		YRange:   SetToWire(loc.YRange),
		Channels: make([]WireChannelBid, len(bid.Channels)),
	}
	for i := range bid.Channels {
		cb := &bid.Channels[i]
		s.Channels[i] = WireChannelBid{
			Family: SetToWire(cb.Family),
			Range:  SetToWire(cb.Range),
			Sealed: append([]byte(nil), cb.Sealed...),
		}
	}
	return s
}

// Parts reconstructs the protocol objects on the auctioneer side.
func (s Submission) Parts() (*core.LocationSubmission, *core.BidSubmission) {
	loc := &core.LocationSubmission{
		XFamily: s.XFamily.ToSet(),
		YFamily: s.YFamily.ToSet(),
		XRange:  s.XRange.ToSet(),
		YRange:  s.YRange.ToSet(),
	}
	bid := &core.BidSubmission{Channels: make([]core.ChannelBid, len(s.Channels))}
	for i, wc := range s.Channels {
		bid.Channels[i] = core.ChannelBid{
			Family: wc.Family.ToSet(),
			Range:  wc.Range.ToSet(),
			Sealed: append([]byte(nil), wc.Sealed...),
		}
	}
	return loc, bid
}

// Result tells a bidder how the round ended for it.
type Result struct {
	BidderID int
	Won      bool
	Channel  int
	Price    uint64
	// Voided reports that the bidder "won" with a zero (its disguise was
	// caught); it possesses no spectrum and pays nothing.
	Voided bool
}

// ChargeBatch is the auctioneer→TTP charging request.
type ChargeBatch struct {
	Requests []core.ChargeRequest
}

// Validate rejects malformed charge batches before processing: too many
// requests, oversized sealed ciphertexts, or digest families beyond the
// hardening cap.
func (b ChargeBatch) Validate() error {
	if len(b.Requests) > MaxChargeRequests {
		return fmt.Errorf("transport: charge batch has %d requests, cap %d", len(b.Requests), MaxChargeRequests)
	}
	for i, r := range b.Requests {
		if len(r.Sealed) > MaxSealedBytes || len(r.RunnerUpSealed) > MaxSealedBytes {
			return fmt.Errorf("transport: charge request %d sealed bid exceeds %d bytes", i, MaxSealedBytes)
		}
		if len(r.Family) > MaxDigestsPerSet {
			return fmt.Errorf("transport: charge request %d has %d family digests, cap %d", i, len(r.Family), MaxDigestsPerSet)
		}
	}
	return nil
}

// WireChargeResult mirrors ttp.ChargeResult with the error flattened to a
// string (gob cannot carry interface values).
type WireChargeResult struct {
	Bidder  int
	Channel int
	Valid   bool
	Price   uint64
	Err     string
}

// ChargeReply is the TTP's adjudication.
type ChargeReply struct {
	Results []WireChargeResult
}

// ChargeResultsToWire flattens TTP results for transmission.
func ChargeResultsToWire(rs []ttp.ChargeResult) []WireChargeResult {
	out := make([]WireChargeResult, len(rs))
	for i, r := range rs {
		out[i] = WireChargeResult{Bidder: r.Bidder, Channel: r.Channel, Valid: r.Valid, Price: r.Price}
		if r.Err != nil {
			out[i].Err = r.Err.Error()
		}
	}
	return out
}

// ErrorMsg reports a protocol failure to the peer. Retryable marks
// transient conditions (the round is mid-allocation and the result will be
// available shortly) that a client should retry after backoff, as opposed
// to permanent rejections (malformed submission, duplicate id).
type ErrorMsg struct {
	Reason    string
	Retryable bool
}

// PeerError is a protocol-level rejection received from the remote party
// (a KindError frame). Receivers use errors.As to distinguish a peer's
// verdict — permanent unless Retryable — from transient transport
// failures, which are always worth retrying.
type PeerError struct {
	Reason    string
	Retryable bool
}

func (e *PeerError) Error() string { return "transport: peer error: " + e.Reason }

// RetryAfterMsg is the KindRetryAfter payload: the admission gate's
// refill hint. Always retryable by construction — the server rejected
// load, not the submission.
type RetryAfterMsg struct {
	RetryAfter time.Duration
}

// RetryAfterError is a KindRetryAfter frame surfaced to the caller. The
// client's retry loop backs off at least RetryAfter before the next
// attempt instead of its own exponential schedule.
type RetryAfterError struct {
	RetryAfter time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("transport: rate limited, retry after %v", e.RetryAfter)
}

// deadliner is the optional deadline surface of net.Conn; the Conn
// wrapper arms it when a timeout is configured so a stalled peer cannot
// pin a handler goroutine forever.
type deadliner interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// EncodeFrame serializes one enveloped message to its complete wire form:
// a 4-byte big-endian payload length followed by a self-contained gob
// stream holding the envelope and the body. Self-contained frames cost a
// re-sent type description per message but make every frame independently
// decodable — a retrying client can resend one verbatim and a fuzzer can
// attack the decoder one frame at a time.
func EncodeFrame(kind MsgKind, payload any) ([]byte, error) {
	return EncodeFrameTraced(kind, payload, TraceContext{})
}

// EncodeFrameTraced is EncodeFrame with a span context stamped into the
// envelope. The zero TraceContext produces bytes identical to an
// untraced frame.
func EncodeFrameTraced(kind MsgKind, payload any, tc TraceContext) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeaderLen))
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(Envelope{Version: protocolVersion, Kind: kind, Trace: tc}); err != nil {
		return nil, fmt.Errorf("transport: encode envelope: %w", err)
	}
	if err := enc.Encode(payload); err != nil {
		return nil, fmt.Errorf("transport: encode payload: %w", err)
	}
	b := buf.Bytes()
	n := len(b) - frameHeaderLen
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("transport: frame payload %d bytes exceeds cap %d", n, MaxFrameBytes)
	}
	binary.BigEndian.PutUint32(b[:frameHeaderLen], uint32(n))
	return b, nil
}

// frameHeaderLen is the length-prefix size.
const frameHeaderLen = 4

// DecodeFrame parses one complete wire frame (as produced by EncodeFrame)
// and returns its envelope plus a decoder positioned at the payload. The
// length prefix is validated against the actual frame size and the
// MaxFrameBytes cap before anything is decoded.
func DecodeFrame(frame []byte) (Envelope, *gob.Decoder, error) {
	if len(frame) < frameHeaderLen {
		return Envelope{}, nil, fmt.Errorf("transport: frame shorter than header (%d bytes)", len(frame))
	}
	n := binary.BigEndian.Uint32(frame[:frameHeaderLen])
	if n > MaxFrameBytes {
		return Envelope{}, nil, fmt.Errorf("transport: frame length %d exceeds cap %d", n, MaxFrameBytes)
	}
	if int(n) != len(frame)-frameHeaderLen {
		return Envelope{}, nil, fmt.Errorf("transport: frame length %d, have %d payload bytes", n, len(frame)-frameHeaderLen)
	}
	return decodeFrameBody(frame[frameHeaderLen:])
}

// decodeFrameBody decodes and validates the envelope of one frame payload.
func decodeFrameBody(body []byte) (Envelope, *gob.Decoder, error) {
	dec := gob.NewDecoder(bytes.NewReader(body))
	var env Envelope
	if err := dec.Decode(&env); err != nil {
		return env, nil, fmt.Errorf("transport: recv envelope: %w", err)
	}
	if env.Version != protocolVersion {
		return env, nil, fmt.Errorf("transport: protocol version %d, want %d", env.Version, protocolVersion)
	}
	if env.Kind < KindKeyRingRequest || env.Kind > KindRetryAfter {
		return env, nil, fmt.Errorf("transport: unknown message kind %d", env.Kind)
	}
	return env, dec, nil
}

// Conn wraps a bidirectional stream with length-prefixed framed gob
// messages. It is not safe for concurrent use.
type Conn struct {
	rw io.ReadWriteCloser
	// idleTimeout bounds the wait for the next frame to start; frameTimeout
	// bounds reading the frame body once its header has arrived. The split
	// lets a server wait patiently between messages while still dropping a
	// slow-loris peer that trickles a frame byte by byte.
	idleTimeout  time.Duration
	frameTimeout time.Duration
	// pending is the current frame's payload decoder, set by RecvEnvelope
	// and consumed by RecvPayload.
	pending *gob.Decoder
	// lastTrace is the trace context of the most recently received
	// envelope, kept so Expect-style helpers that hide the envelope can
	// still surface the sender's span identity (LastTrace).
	lastTrace TraceContext
}

// NewConn wraps a stream with no I/O deadlines.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{rw: rw}
}

// NewConnTimeout wraps a stream with one per-operation I/O deadline used
// both between frames and within them. Streams without deadline support
// (e.g. in-memory pipes in tests) ignore the timeout.
func NewConnTimeout(rw io.ReadWriteCloser, timeout time.Duration) *Conn {
	return &Conn{rw: rw, idleTimeout: timeout, frameTimeout: timeout}
}

// NewConnTimeouts wraps a stream with separate deadlines: idle bounds the
// wait for a frame to start, frame bounds reading its body. Both are
// re-armed per frame, so long rounds are fine as long as the peer keeps
// making frame-level progress.
func NewConnTimeouts(rw io.ReadWriteCloser, idle, frame time.Duration) *Conn {
	return &Conn{rw: rw, idleTimeout: idle, frameTimeout: frame}
}

// SetIdleTimeout changes the between-frames deadline; a client uses this
// to wait longer for the round result than for a submission ack.
func (c *Conn) SetIdleTimeout(d time.Duration) { c.idleTimeout = d }

func (c *Conn) arm(d time.Duration, read bool) {
	dl, ok := c.rw.(deadliner)
	if !ok {
		return
	}
	// d <= 0 means "no deadline": clear any deadline armed for an earlier
	// exchange, otherwise a client that drops its per-exchange timeout for
	// an unbounded result wait would still trip the stale one.
	var t time.Time
	if d > 0 {
		t = time.Now().Add(d)
	}
	if read {
		_ = dl.SetReadDeadline(t)
	} else {
		_ = dl.SetWriteDeadline(t)
	}
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }

// Send writes an enveloped message as exactly one Write call on the
// underlying stream — one frame per Write, which is the contract the
// fault injector (internal/faults) builds on.
func (c *Conn) Send(kind MsgKind, payload any) error {
	return c.SendTraced(kind, payload, TraceContext{})
}

// SendTraced is Send with a span context stamped into the envelope.
func (c *Conn) SendTraced(kind MsgKind, payload any, tc TraceContext) error {
	frame, err := EncodeFrameTraced(kind, payload, tc)
	if err != nil {
		return err
	}
	c.arm(c.frameTimeout, false)
	if _, err := c.rw.Write(frame); err != nil {
		return fmt.Errorf("transport: send frame: %w", err)
	}
	return nil
}

// readFrame reads the next frame off the wire, rejecting oversize or
// malformed length prefixes before allocating the body.
func (c *Conn) readFrame() (Envelope, *gob.Decoder, error) {
	c.arm(c.idleTimeout, true)
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return Envelope{}, nil, fmt.Errorf("transport: recv frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return Envelope{}, nil, fmt.Errorf("transport: frame length %d outside (0, %d]", n, MaxFrameBytes)
	}
	body := make([]byte, n)
	c.arm(c.frameTimeout, true)
	if _, err := io.ReadFull(c.rw, body); err != nil {
		return Envelope{}, nil, fmt.Errorf("transport: recv frame body: %w", err)
	}
	return decodeFrameBody(body)
}

// RecvEnvelope reads the next frame and validates its envelope. The
// payload stays pending until RecvPayload.
func (c *Conn) RecvEnvelope() (Envelope, error) {
	env, dec, err := c.readFrame()
	if err != nil {
		return env, err
	}
	c.pending = dec
	c.lastTrace = env.Trace
	return env, nil
}

// LastTrace returns the trace context of the most recently received
// envelope (zero when the sender was untraced).
func (c *Conn) LastTrace() TraceContext { return c.lastTrace }

// RecvPayload decodes the pending frame's body into payload.
func (c *Conn) RecvPayload(payload any) error {
	if c.pending == nil {
		return fmt.Errorf("transport: no pending frame (RecvEnvelope first)")
	}
	dec := c.pending
	c.pending = nil
	if err := dec.Decode(payload); err != nil {
		return fmt.Errorf("transport: recv payload: %w", err)
	}
	return nil
}

// Expect reads an envelope and asserts its kind, then decodes the body.
// A KindError body is surfaced as a *PeerError, a KindRetryAfter body as
// a *RetryAfterError.
func (c *Conn) Expect(kind MsgKind, payload any) error {
	env, err := c.RecvEnvelope()
	if err != nil {
		return err
	}
	if env.Kind == KindError {
		var em ErrorMsg
		if err := c.RecvPayload(&em); err != nil {
			return err
		}
		return &PeerError{Reason: em.Reason, Retryable: em.Retryable}
	}
	if env.Kind == KindRetryAfter {
		var rm RetryAfterMsg
		if err := c.RecvPayload(&rm); err != nil {
			return err
		}
		return &RetryAfterError{RetryAfter: rm.RetryAfter}
	}
	if env.Kind != kind {
		return fmt.Errorf("transport: got message kind %d, want %d", env.Kind, kind)
	}
	return c.RecvPayload(payload)
}
