package transport

import (
	"fmt"
	"log/slog"
	"time"

	"lppa/internal/obs"
)

// Option tunes a server Config, mirroring round.Run's option style so
// the two configuration surfaces read the same way. Options compose;
// invalid values are rejected by New instead of surfacing later as a
// misbehaving server.
type Option func(*Config) error

// New assembles a validated Config from options — the preferred
// construction path. The zero-option call is the zero Config (working
// defaults). Literal Config construction remains supported as a
// deprecated shim for existing callers.
func New(opts ...Option) (Config, error) {
	var cfg Config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}

// WithIdleTimeout bounds the wait for each next frame on accepted
// connections.
func WithIdleTimeout(d time.Duration) Option {
	return func(c *Config) error {
		if d <= 0 {
			return fmt.Errorf("transport: idle timeout %v, need positive", d)
		}
		c.IdleTimeout = d
		return nil
	}
}

// WithFrameTimeout bounds reading one frame's body after its header
// arrives (the slow-loris budget).
func WithFrameTimeout(d time.Duration) Option {
	return func(c *Config) error {
		if d <= 0 {
			return fmt.Errorf("transport: frame timeout %v, need positive", d)
		}
		c.FrameTimeout = d
		return nil
	}
}

// WithLogger routes server-side errors to log.
func WithLogger(log *slog.Logger) Option {
	return func(c *Config) error {
		c.Logger = log
		return nil
	}
}

// WithMetrics records the server's transport and round metrics into reg.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *Config) error {
		c.Metrics = reg
		return nil
	}
}

// WithSecondPriceCharging switches the auctioneer to clearing-price
// charging.
func WithSecondPriceCharging() Option {
	return func(c *Config) error {
		c.SecondPrice = true
		return nil
	}
}

// WithQuorum lets a straggler-bounded round degrade to q submissions
// instead of failing (see Config.Quorum).
func WithQuorum(q int) Option {
	return func(c *Config) error {
		if q < 1 {
			return fmt.Errorf("transport: quorum %d, need at least 1", q)
		}
		c.Quorum = q
		return nil
	}
}

// WithStragglerTimeout bounds the auctioneer's collection phase.
func WithStragglerTimeout(d time.Duration) Option {
	return func(c *Config) error {
		if d <= 0 {
			return fmt.Errorf("transport: straggler timeout %v, need positive", d)
		}
		c.StragglerTimeout = d
		return nil
	}
}

// WithTrace records the server's spans into tracer.
func WithTrace(tracer *obs.Tracer) Option {
	return func(c *Config) error {
		c.Tracer = tracer
		return nil
	}
}

// WithFlightRecorder auto-dumps the round trace on failure, degradation,
// or SLO breach. Requires WithTrace, checked here like round.Run does.
func WithFlightRecorder(fr *obs.FlightRecorder) Option {
	return func(c *Config) error {
		if fr != nil && c.Tracer == nil {
			return fmt.Errorf("transport: WithFlightRecorder requires WithTrace first")
		}
		c.FlightRecorder = fr
		return nil
	}
}

// WithAdmission gates every accepted connection through admit before any
// frame is read: a false verdict answers with one KindRetryAfter frame
// carrying the hint and closes the connection. Pass an
// epoch.Admission's AdmitConn to shed over-rate traffic pre-decode.
func WithAdmission(admit func() (ok bool, retryAfter time.Duration)) Option {
	return func(c *Config) error {
		if admit == nil {
			return fmt.Errorf("transport: WithAdmission requires a non-nil gate")
		}
		c.Admit = admit
		return nil
	}
}

// WithShedNotify calls fn once per connection the admission gate turned
// away, with the retry-after hint the peer was sent. The ops plane wires
// its admission_shed event stream here; without WithAdmission the hook
// never fires.
func WithShedNotify(fn func(retryAfter time.Duration)) Option {
	return func(c *Config) error {
		if fn == nil {
			return fmt.Errorf("transport: WithShedNotify requires a non-nil hook")
		}
		c.OnShed = fn
		return nil
	}
}
