package transport

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"lppa/internal/obs"
)

// DefaultFrameTimeout bounds reading one frame's body once its length
// prefix has arrived. Tighter than the idle timeout so a slow-loris peer
// trickling a frame byte by byte is dropped within seconds instead of
// holding a handler for the whole idle budget.
const DefaultFrameTimeout = 30 * time.Second

// Config carries the operational knobs shared by TTPServer and
// AuctioneerServer. The zero value is a working default: DefaultIdleTimeout,
// DefaultFrameTimeout, slog.Default(), no metrics, first-price charging,
// full attendance required.
//
// Prefer assembling a Config through New(...Option), which validates as
// it goes and mirrors round.Run's option style; populating the struct
// literally remains supported as a deprecated shim for existing callers.
type Config struct {
	// IdleTimeout bounds the wait for each next frame on accepted
	// connections; zero means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// FrameTimeout bounds reading one frame's body after its header
	// arrives; zero means DefaultFrameTimeout.
	FrameTimeout time.Duration
	// Logger receives server-side errors; nil means slog.Default().
	Logger *slog.Logger
	// Metrics, when non-nil, records connections accepted, wire bytes
	// in/out, per-submission service latency, timeout drops, rejected
	// frames, deduplicated replays, excluded bidders, and — on the
	// auctioneer — round phase timings plus the core comparison counters.
	// Nil disables all instrumentation at zero cost.
	Metrics *obs.Registry
	// SecondPrice switches the auctioneer to clearing-price charging.
	// Ignored by the TTP server.
	SecondPrice bool
	// Quorum is the minimum number of distinct submissions the auctioneer
	// will run a degraded round with when StragglerTimeout fires; zero
	// means all bidders are required. Ignored by the TTP server.
	Quorum int
	// StragglerTimeout bounds the auctioneer's collection phase, measured
	// from server start. When it fires with at least Quorum submissions
	// collected the round proceeds without the stragglers (they are
	// reported in RoundOutcome.Excluded); with fewer, the round fails with
	// round.ErrQuorumNotReached instead of hanging. Zero waits forever,
	// the pre-hardening behavior. Ignored by the TTP server.
	StragglerTimeout time.Duration
	// Tracer, when non-nil, records the server's spans: one root round
	// span on the auctioneer (with conflict_graph/allocate/charge phase
	// children) plus a recv_submission span per accepted submission that
	// parents onto the sender's wire trace context. The auctioneer
	// assumes the tracer is dedicated to one round; reuse a tracer across
	// rounds only via Named views on the same buffer. Nil disables
	// tracing at zero cost.
	Tracer *obs.Tracer
	// FlightRecorder, when non-nil (auctioneer only, requires Tracer),
	// buffers the round's trace and auto-dumps it to disk when the round
	// fails, degrades below full attendance, or exceeds the recorder's
	// latency SLO.
	FlightRecorder *obs.FlightRecorder
	// Admit, when non-nil, gates every accepted connection BEFORE any
	// frame is read or decoded: returning false makes the server answer
	// with one KindRetryAfter frame carrying the returned hint and close
	// the connection, so over-rate peers cost one accept plus one small
	// write instead of a decode. epoch.Admission.AdmitConn is the intended
	// supplier (wired via WithAdmission). Ignored by the TTP server.
	Admit func() (ok bool, retryAfter time.Duration)
	// OnShed, when non-nil, is invoked once per connection Admit turned
	// away, with the retry-after hint sent to the peer — the ops plane's
	// event hook. Called on the accept goroutine; keep it fast. Ignored
	// by the TTP server and without Admit.
	OnShed func(retryAfter time.Duration)
}

func (c Config) idleTimeout() time.Duration {
	if c.IdleTimeout <= 0 {
		return DefaultIdleTimeout
	}
	return c.IdleTimeout
}

func (c Config) frameTimeout() time.Duration {
	if c.FrameTimeout <= 0 {
		return DefaultFrameTimeout
	}
	return c.FrameTimeout
}

func (c Config) logger() *slog.Logger {
	if c.Logger == nil {
		return slog.Default()
	}
	return c.Logger
}

// shutdownServer closes the listener and waits for the server's handlers,
// bounded by ctx. The listener close both stops new accepts and unblocks
// the accept loop; handlers in flight finish their current exchange. On
// ctx expiry the wait is abandoned (the goroutines drain in the
// background) and ctx.Err() is returned.
func shutdownServer(ctx context.Context, markClosed func(), ln net.Listener, wg *sync.WaitGroup) error {
	markClosed()
	err := ln.Close()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// netObs caches one server's transport metric handles, labelled by role
// (ttp or auctioneer). Nil — the unobserved default — makes every method
// a no-op and leaves connections unwrapped.
type netObs struct {
	conns       *obs.Counter
	bytesIn     *obs.Counter
	bytesOut    *obs.Counter
	subLat      *obs.Histogram
	timeouts    *obs.Counter
	rejects     *obs.Counter
	replays     *obs.Counter
	excluded    *obs.Counter
	rateLimited *obs.Counter
}

func newNetObs(reg *obs.Registry, role string) *netObs {
	if reg == nil {
		return nil
	}
	l := obs.L("role", role)
	return &netObs{
		conns:       reg.Counter("lppa_transport_conns_accepted_total", l),
		bytesIn:     reg.Counter("lppa_transport_bytes_read_total", l),
		bytesOut:    reg.Counter("lppa_transport_bytes_written_total", l),
		subLat:      reg.Histogram("lppa_transport_submission_seconds", nil, l),
		timeouts:    reg.Counter("lppa_transport_timeouts_total", l),
		rejects:     reg.Counter("lppa_transport_frames_rejected_total", l),
		replays:     reg.Counter("lppa_transport_replays_deduped_total", l),
		excluded:    reg.Counter("lppa_transport_bidders_excluded_total", l),
		rateLimited: reg.Counter("lppa_transport_rate_limited_total", l),
	}
}

// rateLimit tallies one connection shed by the admission gate.
func (o *netObs) rateLimit() {
	if o != nil {
		o.rateLimited.Inc()
	}
}

// reject tallies one rejected frame or submission (malformed, duplicate,
// out of protocol, or arriving outside the collection window).
func (o *netObs) reject() {
	if o != nil {
		o.rejects.Inc()
	}
}

// replay tallies one idempotent resubmission deduplicated by nonce.
func (o *netObs) replay() {
	if o != nil {
		o.replays.Inc()
	}
}

// exclude tallies bidders dropped from a degraded quorum round.
func (o *netObs) exclude(n int) {
	if o != nil && n > 0 {
		o.excluded.Add(uint64(n))
	}
}

// accept tallies one accepted connection and returns the stream to hand to
// the Conn wrapper — counted when observed, untouched otherwise.
func (o *netObs) accept(conn net.Conn) io.ReadWriteCloser {
	if o == nil {
		return conn
	}
	o.conns.Inc()
	return &countingStream{rw: conn, in: o.bytesIn, out: o.bytesOut}
}

// noteErr tallies a handler error that was a network timeout (an idle peer
// dropped by the per-operation deadline).
func (o *netObs) noteErr(err error) {
	if o == nil || err == nil {
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		o.timeouts.Inc()
	}
}

// countingStream tallies wire bytes through an accepted stream. It
// implements the deadliner surface by forwarding to the underlying stream
// when supported, so the Conn wrapper's per-operation timeouts keep
// working through the wrap.
type countingStream struct {
	rw      io.ReadWriteCloser
	in, out *obs.Counter
}

func (c *countingStream) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c *countingStream) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

func (c *countingStream) Close() error { return c.rw.Close() }

func (c *countingStream) SetReadDeadline(t time.Time) error {
	if d, ok := c.rw.(deadliner); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

func (c *countingStream) SetWriteDeadline(t time.Time) error {
	if d, ok := c.rw.(deadliner); ok {
		return d.SetWriteDeadline(t)
	}
	return nil
}
