package transport

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"lppa/internal/core"
	"lppa/internal/mask"
	"lppa/internal/obs"
	"lppa/internal/ttp"
)

// TTPServer serves the trusted third party over a listener: bidders fetch
// the round's key ring, the auctioneer submits charge batches. The server
// owns its accept goroutine; Close stops it and waits for in-flight
// connections.
type TTPServer struct {
	params core.Params
	ring   *mask.KeyRing
	ttp    *ttp.TTP
	ln     net.Listener
	log    *slog.Logger
	// idleTimeout bounds the wait for each next frame on accepted
	// connections; frameTimeout bounds reading one frame body
	// (DefaultIdleTimeout / DefaultFrameTimeout when zero at construction).
	idleTimeout  time.Duration
	frameTimeout time.Duration
	ob           *netObs
	tracer       *obs.Tracer

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// NewTTPServer creates the TTP party and starts serving on ln with default
// configuration. The key ring is derived from seed for reproducible
// experiments; production deployments pass a random seed.
func NewTTPServer(params core.Params, seed []byte, rd, cr uint64, ln net.Listener, log *slog.Logger) (*TTPServer, error) {
	return NewTTPServerWithConfig(params, seed, rd, cr, ln, Config{Logger: log})
}

// NewTTPServerWithConfig is NewTTPServer with explicit operational
// configuration (idle timeout, logger, metrics).
func NewTTPServerWithConfig(params core.Params, seed []byte, rd, cr uint64, ln net.Listener, cfg Config) (*TTPServer, error) {
	ring, err := mask.DeriveKeyRing(seed, params.Channels, rd, cr)
	if err != nil {
		return nil, fmt.Errorf("transport: ttp key ring: %w", err)
	}
	trusted, err := ttp.FromRing(params, ring, rand.New(rand.NewSource(int64(len(seed))+1)))
	if err != nil {
		return nil, err
	}
	s := &TTPServer{
		params:       params,
		ring:         ring,
		ttp:          trusted,
		ln:           ln,
		log:          cfg.logger(),
		idleTimeout:  cfg.idleTimeout(),
		frameTimeout: cfg.frameTimeout(),
		ob:           newNetObs(cfg.Metrics, "ttp"),
		tracer:       cfg.Tracer,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *TTPServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server and waits for connection handlers to finish.
func (s *TTPServer) Close() error {
	return s.Shutdown(context.Background())
}

// Shutdown stops accepting, closes the listener, and waits for in-flight
// connection handlers to drain, bounded by ctx. On ctx expiry the handlers
// keep draining in the background and ctx.Err() is returned.
func (s *TTPServer) Shutdown(ctx context.Context) error {
	return shutdownServer(ctx, func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
	}, s.ln, &s.wg)
}

func (s *TTPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed && !errors.Is(err, net.ErrClosed) {
				s.log.Error("ttp accept", "err", err)
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(NewConnTimeouts(s.ob.accept(conn), s.idleTimeout, s.frameTimeout))
		}()
	}
}

// serveSpan opens a span for one TTP exchange, parented onto the
// requester's wire trace context when the frame carried one. Returns nil
// (a no-op span) when tracing is off.
func (s *TTPServer) serveSpan(name string, c *Conn) *obs.Span {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.StartSpan(name, c.LastTrace().SpanContext())
}

func (s *TTPServer) handle(c *Conn) {
	defer c.Close()
	for {
		env, err := c.RecvEnvelope()
		if err != nil {
			s.ob.noteErr(err)
			return // peer closed, timed out, or broke protocol; nothing to answer
		}
		switch env.Kind {
		case KindKeyRingRequest:
			var req struct{}
			if err := c.RecvPayload(&req); err != nil {
				s.ob.reject()
				return
			}
			span := s.serveSpan("serve_keyring", c)
			err := c.Send(KindKeyRingReply, RingToWire(s.ring))
			span.End()
			if err != nil {
				s.log.Error("ttp send key ring", "err", err)
				return
			}
		case KindChargeBatch:
			var batch ChargeBatch
			if err := c.RecvPayload(&batch); err != nil {
				s.ob.reject()
				return
			}
			span := s.serveSpan("serve_charges", c)
			if err := batch.Validate(); err != nil {
				s.ob.reject()
				s.log.Error("ttp: malformed charge batch", "err", err)
				span.SetError(err.Error())
				span.End()
				_ = c.Send(KindError, ErrorMsg{Reason: err.Error()})
				return
			}
			results := s.ttp.ProcessBatch(batch.Requests)
			err := c.Send(KindChargeReply, ChargeReply{Results: ChargeResultsToWire(results)})
			span.End()
			if err != nil {
				s.log.Error("ttp send charges", "err", err)
				return
			}
		default:
			s.ob.reject()
			_ = c.Send(KindError, ErrorMsg{Reason: fmt.Sprintf("unexpected message kind %d", env.Kind)})
			return
		}
	}
}

// FetchKeyRing retrieves the round key ring from a TTP server (bidder
// side).
func FetchKeyRing(addr string) (*mask.KeyRing, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial ttp: %w", err)
	}
	c := NewConn(conn)
	defer c.Close()
	if err := c.Send(KindKeyRingRequest, struct{}{}); err != nil {
		return nil, err
	}
	var reply KeyRingReply
	if err := c.Expect(KindKeyRingReply, &reply); err != nil {
		return nil, err
	}
	return reply.ToRing(), nil
}

// submitChargesRetry is SubmitCharges with simple capped exponential
// backoff: the TTP is infrastructure the auctioneer operator controls, so
// a short blip (restart, connection reset) should not void a whole round
// of collected submissions. Permanent peer rejections are not retried.
func submitChargesRetry(addr string, reqs []core.ChargeRequest, attempts int, base time.Duration) ([]WireChargeResult, error) {
	if attempts < 1 {
		attempts = 1
	}
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(base << (attempt - 1))
		}
		res, err := SubmitCharges(addr, reqs)
		if err == nil {
			return res, nil
		}
		var pe *PeerError
		if errors.As(err, &pe) && !pe.Retryable {
			return nil, err
		}
		last = err
	}
	return nil, fmt.Errorf("transport: submit charges failed after %d attempts: %w", attempts, last)
}

// SubmitCharges sends a charge batch to the TTP (auctioneer side).
func SubmitCharges(addr string, reqs []core.ChargeRequest) ([]WireChargeResult, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial ttp: %w", err)
	}
	c := NewConn(conn)
	defer c.Close()
	if err := c.Send(KindChargeBatch, ChargeBatch{Requests: reqs}); err != nil {
		return nil, err
	}
	var reply ChargeReply
	if err := c.Expect(KindChargeReply, &reply); err != nil {
		return nil, err
	}
	return reply.Results, nil
}
