package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"net"
	"testing"

	"lppa/internal/obs"
)

// legacyEnvelope mirrors the pre-trace wire envelope: just version and
// kind, no Trace field. Gob matches struct fields by name and ignores the
// top-level type name, so decoding through this type is exactly what a
// peer built before the trace change does.
type legacyEnvelope struct {
	Version int
	Kind    MsgKind
}

// TestTracedFrameDecodesOnLegacyPeer pins the new→old direction: a frame
// encoded by a trace-aware sender — traced or not — must decode cleanly on
// a peer whose Envelope predates the Trace field, envelope and payload
// both.
func TestTracedFrameDecodesOnLegacyPeer(t *testing.T) {
	cases := []struct {
		name string
		tc   TraceContext
	}{
		{"untraced", TraceContext{}},
		{"traced", TraceContext{TraceID: 0xfeedface, SpanID: 0x1234}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			frame, err := EncodeFrameTraced(KindError, ErrorMsg{Reason: "busy", Retryable: true}, tt.tc)
			if err != nil {
				t.Fatal(err)
			}
			dec := gob.NewDecoder(bytes.NewReader(frame[frameHeaderLen:]))
			var env legacyEnvelope
			if err := dec.Decode(&env); err != nil {
				t.Fatalf("legacy peer rejected envelope: %v", err)
			}
			if env.Version != protocolVersion || env.Kind != KindError {
				t.Fatalf("legacy peer decoded envelope %+v", env)
			}
			var em ErrorMsg
			if err := dec.Decode(&em); err != nil {
				t.Fatalf("legacy peer rejected payload: %v", err)
			}
			if em.Reason != "busy" || !em.Retryable {
				t.Fatalf("legacy peer decoded payload %+v", em)
			}
		})
	}
}

// TestLegacyFrameDecodesOnNewPeer pins the old→new direction: a frame
// built by a sender that has never heard of TraceContext decodes on the
// current peer with a zero (invalid) trace and an intact payload.
func TestLegacyFrameDecodesOnNewPeer(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeaderLen))
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(legacyEnvelope{Version: protocolVersion, Kind: KindResult}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Result{BidderID: 5, Won: true, Channel: 2, Price: 42}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	binary.BigEndian.PutUint32(frame[:frameHeaderLen], uint32(len(frame)-frameHeaderLen))

	env, dec, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("new peer rejected legacy frame: %v", err)
	}
	if env.Kind != KindResult {
		t.Fatalf("kind = %d, want %d", env.Kind, KindResult)
	}
	if env.Trace.Valid() {
		t.Fatalf("legacy frame produced a valid trace context %+v", env.Trace)
	}
	var res Result
	if err := dec.Decode(&res); err != nil {
		t.Fatalf("payload: %v", err)
	}
	if res.BidderID != 5 || !res.Won || res.Channel != 2 || res.Price != 42 {
		t.Fatalf("payload = %+v", res)
	}
}

// TestUntracedFrameBytesStable pins the observed-twin property at the
// wire: EncodeFrame and EncodeFrameTraced with a zero context produce
// byte-identical frames (the zero Trace struct is omitted from the gob
// value), while a valid context actually changes the bytes — the field
// rides the wire only when tracing is on.
func TestUntracedFrameBytesStable(t *testing.T) {
	plain, err := EncodeFrame(KindSubmissionAck, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := EncodeFrameTraced(KindSubmissionAck, struct{}{}, TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, zero) {
		t.Fatal("zero-trace frame differs from untraced frame")
	}
	traced, err := EncodeFrameTraced(KindSubmissionAck, struct{}{}, TraceContext{TraceID: 1, SpanID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain, traced) {
		t.Fatal("traced frame is byte-identical to untraced frame; trace context never made the wire")
	}
}

// TestTraceContextRidesConn pins end-to-end propagation through the Conn
// layer: the receiver's LastTrace reflects the sender's span context for
// traced frames and resets to zero for untraced ones.
func TestTraceContextRidesConn(t *testing.T) {
	client, server := net.Pipe()
	sender, receiver := NewConn(client), NewConn(server)
	defer sender.Close()
	defer receiver.Close()

	want := ToTraceContext(obs.SpanContext{Trace: 77, Span: 99})
	go func() {
		_ = sender.SendTraced(KindSubmissionAck, struct{}{}, want)
		_ = sender.Send(KindSubmissionAck, struct{}{})
	}()

	if _, err := receiver.RecvEnvelope(); err != nil {
		t.Fatal(err)
	}
	if got := receiver.LastTrace(); got != want {
		t.Fatalf("LastTrace = %+v, want %+v", got, want)
	}
	var v struct{}
	if err := receiver.RecvPayload(&v); err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.RecvEnvelope(); err != nil {
		t.Fatal(err)
	}
	if got := receiver.LastTrace(); got.Valid() {
		t.Fatalf("LastTrace after untraced frame = %+v, want zero", got)
	}
}
