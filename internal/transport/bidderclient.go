package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"time"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
)

// RetryPolicy shapes the client's capped exponential backoff: attempt k
// (from 0) sleeps BaseDelay·2^k capped at MaxDelay, with equal jitter (half
// fixed, half uniform random) so a crowd of bidders recovering from the
// same fault doesn't reconnect in lockstep.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first attempt included); values < 1
	// mean one attempt, i.e. no retry.
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

// DefaultRetryPolicy is the client default: four attempts, 50 ms base,
// 2 s cap — a transient auctioneer hiccup is ridden out in well under the
// default straggler budget.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

// delay returns the backoff before retrying after failed attempt k
// (0-based), with equal jitter drawn from rng.
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = DefaultRetryPolicy.BaseDelay
	}
	max := p.MaxDelay
	if max <= 0 {
		max = DefaultRetryPolicy.MaxDelay
	}
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		if p == (RetryPolicy{}) {
			return DefaultRetryPolicy.MaxAttempts
		}
		return 1
	}
	return p.MaxAttempts
}

// BidderClient is one secondary user participating in a networked round.
//
// The client is hardened against a faulty network: every exchange retries
// with capped exponential backoff and jitter, and resubmission is
// idempotent — the submission carries a per-round nonce, so the auctioneer
// recognizes a replay from a reconnecting (or restarted) bidder and never
// double-counts it.
type BidderClient struct {
	ID     int
	Params core.Params
	// Policy is the bidder's personal zero-disguise policy.
	Policy core.DisguisePolicy
	// Retry tunes backoff; the zero value means DefaultRetryPolicy.
	Retry RetryPolicy
	// Timeout bounds dialing and each frame exchange before the round
	// runs; zero means no deadline (in-process tests over pipes).
	Timeout time.Duration
	// AwaitTimeout bounds the wait for the round result after the
	// submission is acked — it must cover the whole round, so it is
	// typically much larger than Timeout. Zero means wait forever.
	AwaitTimeout time.Duration
	// Dial overrides connection establishment; nil means net.Dial. Tests
	// use it to interpose the fault injector.
	Dial func(network, addr string) (net.Conn, error)
	// Tracer, when non-nil, records the bidder's spans (fetch_keyring,
	// encode, submit, with retry events) under a per-round participate
	// root, and stamps the submit span's context into outgoing frames so
	// auctioneer-side spans parent onto it. The client labels its spans
	// "bidder-<ID>" via a Named view, so one tracer can serve a whole
	// in-process fleet. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

func (b *BidderClient) dial(addr string) (net.Conn, error) {
	if b.Dial != nil {
		return b.Dial("tcp", addr)
	}
	if b.Timeout > 0 {
		return net.DialTimeout("tcp", addr, b.Timeout)
	}
	return net.Dial("tcp", addr)
}

// Participate runs the bidder's side of one round: fetch the key ring from
// the TTP, mask location and bids, submit to the auctioneer, and wait for
// the result. It blocks until the round completes, retrying transient
// failures per the client's RetryPolicy.
//
// The fault-free rng stream is identical to the pre-hardening client up
// through bid encoding; the submission nonce is drawn after encoding and
// the jitter rng is derived from it only when a retry actually happens.
func (b *BidderClient) Participate(ttpAddr, auctioneerAddr string, loc geo.Point, bids []uint64, rng *rand.Rand) (*Result, error) {
	var tr *obs.Tracer
	if b.Tracer != nil {
		tr = b.Tracer.Named("bidder-" + strconv.Itoa(b.ID))
	}
	root := tr.StartTrace("participate", obs.L("bidder", strconv.Itoa(b.ID)))
	res, err := b.participate(tr, root, ttpAddr, auctioneerAddr, loc, bids, rng)
	if err != nil {
		root.SetError(err.Error())
	}
	root.End()
	return res, err
}

func (b *BidderClient) participate(tr *obs.Tracer, root *obs.Span, ttpAddr, auctioneerAddr string, loc geo.Point, bids []uint64, rng *rand.Rand) (*Result, error) {
	fetch := tr.StartSpan("fetch_keyring", root.Context())
	ring, err := b.fetchKeyRing(ttpAddr, fetch)
	fetch.End()
	if err != nil {
		return nil, fmt.Errorf("transport: bidder %d: %w", b.ID, err)
	}

	encSpan := tr.StartSpan("encode", root.Context())
	locSub, err := core.NewLocationSubmission(b.Params, ring, loc)
	if err != nil {
		encSpan.End()
		return nil, fmt.Errorf("transport: bidder %d location: %w", b.ID, err)
	}
	var sampler *core.DisguiseSampler
	if b.Policy.P0 < 1 {
		sampler, err = core.NewDisguiseSampler(b.Policy, b.Params.BMax)
		if err != nil {
			encSpan.End()
			return nil, err
		}
	}
	enc, err := core.NewBidEncoder(b.Params, ring, sampler, rng)
	if err != nil {
		encSpan.End()
		return nil, err
	}
	bidSub, err := enc.Encode(bids, rng)
	if err != nil {
		encSpan.End()
		return nil, fmt.Errorf("transport: bidder %d bids: %w", b.ID, err)
	}
	encSpan.End()

	sub := NewSubmission(b.ID, locSub, bidSub)
	sub.Nonce = rng.Uint64()

	submit := tr.StartSpan("submit", root.Context())
	var res *Result
	err = b.withRetry(sub.Nonce, submit, func() error {
		r, err := b.submitOnce(auctioneerAddr, sub, submit.Context())
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		submit.SetError(err.Error())
		submit.End()
		return nil, fmt.Errorf("transport: bidder %d: %w", b.ID, err)
	}
	submit.End()
	return res, nil
}

// submitOnce performs one submission attempt over a fresh connection:
// submit, await ack, await result. The caller retries on failure; the
// nonce makes the resend idempotent on the auctioneer. sc, when valid,
// rides the submission frame so the auctioneer's span parents onto the
// bidder's.
func (b *BidderClient) submitOnce(addr string, sub Submission, sc obs.SpanContext) (*Result, error) {
	conn, err := b.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("dial auctioneer: %w", err)
	}
	c := NewConnTimeout(conn, b.Timeout)
	defer c.Close()
	if err := c.SendTraced(KindSubmission, sub, ToTraceContext(sc)); err != nil {
		return nil, err
	}
	var ack struct{}
	if err := c.Expect(KindSubmissionAck, &ack); err != nil {
		return nil, fmt.Errorf("submission rejected: %w", err)
	}
	c.SetIdleTimeout(b.AwaitTimeout)
	var res Result
	if err := c.Expect(KindResult, &res); err != nil {
		return nil, fmt.Errorf("await result: %w", err)
	}
	return &res, nil
}

// fetchKeyRing is FetchKeyRing under the client's retry policy and
// dialer. span, when non-nil, records retry events and its context rides
// the request frame.
func (b *BidderClient) fetchKeyRing(addr string, span *obs.Span) (*mask.KeyRing, error) {
	var ring *mask.KeyRing
	err := b.withRetry(uint64(b.ID)+1, span, func() error {
		conn, err := b.dial(addr)
		if err != nil {
			return fmt.Errorf("dial ttp: %w", err)
		}
		c := NewConnTimeout(conn, b.Timeout)
		defer c.Close()
		if err := c.SendTraced(KindKeyRingRequest, struct{}{}, ToTraceContext(span.Context())); err != nil {
			return err
		}
		var reply KeyRingReply
		if err := c.Expect(KindKeyRingReply, &reply); err != nil {
			return err
		}
		ring = reply.ToRing()
		return nil
	})
	return ring, err
}

// withRetry runs op up to the policy's attempt budget, backing off between
// tries. A *PeerError with Retryable=false is terminal — the peer has
// rejected us and retrying cannot change its mind. A *RetryAfterError
// (admission-control shedding) is always retryable, and the server's
// hint becomes the backoff floor for the next attempt: retrying sooner
// than the gate refills only burns another rejection. The jitter rng is
// seeded from jitterSeed and created only when a retry actually happens,
// so a fault-free run draws nothing extra. Each retry is recorded as an
// event on span (nil-safe).
func (b *BidderClient) withRetry(jitterSeed uint64, span *obs.Span, op func() error) error {
	attempts := b.Retry.attempts()
	var jitter *rand.Rand
	var last error
	var hint time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if span != nil {
				span.Event("retry",
					obs.L("attempt", strconv.Itoa(attempt)),
					obs.L("err", last.Error()))
			}
			if jitter == nil {
				jitter = rand.New(rand.NewSource(int64(jitterSeed)))
			}
			d := b.Retry.delay(attempt-1, jitter)
			if hint > d {
				d = hint
			}
			time.Sleep(d)
		}
		err := op()
		if err == nil {
			return nil
		}
		var pe *PeerError
		if errors.As(err, &pe) && !pe.Retryable {
			return err
		}
		hint = 0
		var ra *RetryAfterError
		if errors.As(err, &ra) {
			hint = ra.RetryAfter
		}
		last = err
	}
	return fmt.Errorf("after %d attempts: %w", attempts, last)
}
