package transport

import (
	"fmt"
	"math/rand"
	"net"

	"lppa/internal/core"
	"lppa/internal/geo"
)

// BidderClient is one secondary user participating in a networked round.
type BidderClient struct {
	ID     int
	Params core.Params
	// Policy is the bidder's personal zero-disguise policy.
	Policy core.DisguisePolicy
}

// Participate runs the bidder's side of one round: fetch the key ring from
// the TTP, mask location and bids, submit to the auctioneer, and wait for
// the result. It blocks until the round completes.
func (b *BidderClient) Participate(ttpAddr, auctioneerAddr string, loc geo.Point, bids []uint64, rng *rand.Rand) (*Result, error) {
	ring, err := FetchKeyRing(ttpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: bidder %d: %w", b.ID, err)
	}

	locSub, err := core.NewLocationSubmission(b.Params, ring, loc)
	if err != nil {
		return nil, fmt.Errorf("transport: bidder %d location: %w", b.ID, err)
	}
	var sampler *core.DisguiseSampler
	if b.Policy.P0 < 1 {
		sampler, err = core.NewDisguiseSampler(b.Policy, b.Params.BMax)
		if err != nil {
			return nil, err
		}
	}
	enc, err := core.NewBidEncoder(b.Params, ring, sampler, rng)
	if err != nil {
		return nil, err
	}
	bidSub, err := enc.Encode(bids, rng)
	if err != nil {
		return nil, fmt.Errorf("transport: bidder %d bids: %w", b.ID, err)
	}

	conn, err := net.Dial("tcp", auctioneerAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: bidder %d dial auctioneer: %w", b.ID, err)
	}
	c := NewConn(conn)
	defer c.Close()
	if err := c.Send(KindSubmission, NewSubmission(b.ID, locSub, bidSub)); err != nil {
		return nil, err
	}
	var ack struct{}
	if err := c.Expect(KindSubmissionAck, &ack); err != nil {
		return nil, fmt.Errorf("transport: bidder %d submission rejected: %w", b.ID, err)
	}
	var res Result
	if err := c.Expect(KindResult, &res); err != nil {
		return nil, fmt.Errorf("transport: bidder %d await result: %w", b.ID, err)
	}
	return &res, nil
}
