package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// TestShedNotifyHook pins the WithShedNotify contract the ops plane
// rides: the hook fires exactly once per shed connection, carrying the
// gate's retry-after hint, and never fires for admitted traffic.
func TestShedNotifyHook(t *testing.T) {
	p := testParams()
	log := quietLogger()
	ttpSrv, err := NewTTPServer(p, []byte("shed-notify"), 3, 4, listen(t), log)
	if err != nil {
		t.Fatal(err)
	}
	defer ttpSrv.Close()

	const hint = 77 * time.Millisecond
	var mu sync.Mutex
	var hints []time.Duration
	cfg, err := New(
		WithLogger(log),
		WithAdmission(func() (bool, time.Duration) { return false, hint }),
		WithShedNotify(func(retry time.Duration) {
			mu.Lock()
			hints = append(hints, retry)
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	aucSrv, err := NewAuctioneerServerWithConfig(p, 1, ttpSrv.Addr().String(), listen(t), 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer aucSrv.Close()

	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", aucSrv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := NewConnTimeout(conn, 5*time.Second)
		var ack struct{}
		err = c.Expect(KindSubmissionAck, &ack)
		c.Close()
		var ra *RetryAfterError
		if !errors.As(err, &ra) {
			t.Fatalf("conn %d: error = %v, want *RetryAfterError", i, err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(hints) != 3 {
		t.Fatalf("hook fired %d times for 3 shed connections", len(hints))
	}
	for i, h := range hints {
		if h != hint {
			t.Fatalf("hook call %d carried hint %v, want %v", i, h, hint)
		}
	}
}

// TestShedNotifyRequiresHook: the option rejects a nil hook at
// configuration time rather than panicking on the accept path.
func TestShedNotifyRequiresHook(t *testing.T) {
	if _, err := New(WithShedNotify(nil)); err == nil {
		t.Fatal("WithShedNotify(nil) accepted")
	}
}
