package geo

import (
	"fmt"
	"math/bits"
)

// CellSet is a dense bitset over the cells of a grid, used for coverage
// maps and for the possible-location sets the attacks manipulate. All
// binary operations require both operands to come from grids with the same
// cell count. The zero value is unusable; construct with NewCellSet.
type CellSet struct {
	grid  Grid
	words []uint64
}

// NewCellSet returns an empty set over g.
func NewCellSet(g Grid) *CellSet {
	return &CellSet{grid: g, words: make([]uint64, (g.NumCells()+63)/64)}
}

// FullCellSet returns the set containing every cell of g (the attack's
// initial hypothesis P = A).
func FullCellSet(g Grid) *CellSet {
	s := NewCellSet(g)
	n := g.NumCells()
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Clear the tail bits beyond NumCells.
	if rem := n % 64; rem != 0 {
		s.words[len(s.words)-1] = 1<<rem - 1
	}
	return s
}

// Grid returns the grid the set is defined over.
func (s *CellSet) Grid() Grid { return s.grid }

// Clone returns a deep copy.
func (s *CellSet) Clone() *CellSet {
	out := &CellSet{grid: s.grid, words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// Add inserts cell c.
func (s *CellSet) Add(c Cell) {
	i := s.grid.Index(c)
	s.words[i/64] |= 1 << (i % 64)
}

// Remove deletes cell c.
func (s *CellSet) Remove(c Cell) {
	i := s.grid.Index(c)
	s.words[i/64] &^= 1 << (i % 64)
}

// Contains reports membership of c.
func (s *CellSet) Contains(c Cell) bool {
	if !s.grid.InBounds(c) {
		return false
	}
	i := s.grid.Index(c)
	return s.words[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of cells in the set.
func (s *CellSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IntersectWith replaces s by s ∩ other.
func (s *CellSet) IntersectWith(other *CellSet) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// UnionWith replaces s by s ∪ other.
func (s *CellSet) UnionWith(other *CellSet) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// SubtractWith replaces s by s \ other.
func (s *CellSet) SubtractWith(other *CellSet) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// Complement returns the set of grid cells not in s.
func (s *CellSet) Complement() *CellSet {
	out := FullCellSet(s.grid)
	out.SubtractWith(s)
	return out
}

func (s *CellSet) mustMatch(other *CellSet) {
	if s.grid.NumCells() != other.grid.NumCells() {
		panic(fmt.Sprintf("geo: cell sets over different grids (%d vs %d cells)",
			s.grid.NumCells(), other.grid.NumCells()))
	}
}

// Cells returns the member cells in row-major order.
func (s *CellSet) Cells() []Cell {
	out := make([]Cell, 0, s.Count())
	s.ForEach(func(c Cell) { out = append(out, c) })
	return out
}

// ForEach calls fn for every member cell in row-major order.
func (s *CellSet) ForEach(fn func(Cell)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(s.grid.CellAt(wi*64 + b))
			w &= w - 1
		}
	}
}

// Equal reports whether two sets have identical membership.
func (s *CellSet) Equal(other *CellSet) bool {
	if s.grid.NumCells() != other.grid.NumCells() {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}
