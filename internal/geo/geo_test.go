package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 10000 {
		t.Errorf("NumCells = %d, want 10000", g.NumCells())
	}
	if g.CellWidthMeters() != 750 || g.CellHeightMeters() != 750 {
		t.Errorf("cell size = %.1f x %.1f, want 750 x 750",
			g.CellWidthMeters(), g.CellHeightMeters())
	}
}

func TestGridValidate(t *testing.T) {
	bad := []Grid{
		{Rows: 0, Cols: 10, SideMeters: 100},
		{Rows: 10, Cols: -1, SideMeters: 100},
		{Rows: 10, Cols: 10, SideMeters: 0},
	}
	for _, g := range bad {
		if g.Validate() == nil {
			t.Errorf("grid %+v validated", g)
		}
	}
}

func TestIndexCellAtRoundTrip(t *testing.T) {
	g := Grid{Rows: 7, Cols: 13, SideMeters: 1000}
	for idx := 0; idx < g.NumCells(); idx++ {
		c := g.CellAt(idx)
		if !g.InBounds(c) {
			t.Fatalf("CellAt(%d) = %v out of bounds", idx, c)
		}
		if g.Index(c) != idx {
			t.Fatalf("Index(CellAt(%d)) = %d", idx, g.Index(c))
		}
	}
	if g.InBounds(Cell{Row: 7, Col: 0}) || g.InBounds(Cell{Row: 0, Col: 13}) ||
		g.InBounds(Cell{Row: -1, Col: 0}) {
		t.Error("out-of-bounds cell reported in bounds")
	}
}

func TestCenterAndDistance(t *testing.T) {
	g := Grid{Rows: 10, Cols: 10, SideMeters: 1000}
	x, y := g.Center(Cell{Row: 0, Col: 0})
	if x != 50 || y != 50 {
		t.Errorf("center of (0,0) = (%f,%f), want (50,50)", x, y)
	}
	d := g.CellDistanceMeters(Cell{Row: 0, Col: 0}, Cell{Row: 0, Col: 3})
	if math.Abs(d-300) > 1e-9 {
		t.Errorf("distance = %f, want 300", d)
	}
	d = g.CellDistanceMeters(Cell{Row: 3, Col: 0}, Cell{Row: 0, Col: 4})
	if math.Abs(d-500) > 1e-9 {
		t.Errorf("distance = %f, want 500", d)
	}
}

func TestPointConversionRoundTrip(t *testing.T) {
	c := Cell{Row: 42, Col: 17}
	if got := CellOf(PointOf(c)); got != c {
		t.Errorf("round trip = %v, want %v", got, c)
	}
	p := PointOf(c)
	if p.X != 17 || p.Y != 42 {
		t.Errorf("PointOf = %+v, want X=17 Y=42", p)
	}
}

func TestConflictPredicate(t *testing.T) {
	const lambda = 2 // threshold 2λ = 4
	a := Point{X: 10, Y: 10}
	cases := []struct {
		b    Point
		want bool
	}{
		{Point{X: 10, Y: 10}, true},
		{Point{X: 13, Y: 13}, true},  // both diffs 3 < 4
		{Point{X: 14, Y: 10}, false}, // x diff 4, not < 4
		{Point{X: 10, Y: 14}, false},
		{Point{X: 13, Y: 14}, false}, // y diff too large
		{Point{X: 7, Y: 7}, true},
		{Point{X: 6, Y: 10}, false},
	}
	for _, c := range cases {
		if got := Conflict(a, c.b, lambda); got != c.want {
			t.Errorf("Conflict(%v,%v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestConflictSymmetric(t *testing.T) {
	prop := func(ax, ay, bx, by uint16, l uint8) bool {
		lambda := uint64(l%10) + 1
		a := Point{X: uint64(ax), Y: uint64(ay)}
		b := Point{X: uint64(bx), Y: uint64(by)}
		return Conflict(a, b, lambda) == Conflict(b, a, lambda)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClampRange(t *testing.T) {
	cases := []struct {
		v, delta, max, lo, hi uint64
	}{
		{50, 4, 99, 46, 54},
		{2, 4, 99, 0, 6},
		{97, 4, 99, 93, 99},
		{0, 4, 99, 0, 4},
		{99, 4, 99, 95, 99},
	}
	for _, c := range cases {
		lo, hi := ClampRange(c.v, c.delta, c.max)
		if lo != c.lo || hi != c.hi {
			t.Errorf("ClampRange(%d,%d,%d) = [%d,%d], want [%d,%d]",
				c.v, c.delta, c.max, lo, hi, c.lo, c.hi)
		}
	}
}

func TestCellSetBasics(t *testing.T) {
	g := Grid{Rows: 10, Cols: 13, SideMeters: 100}
	s := NewCellSet(g)
	if s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	c := Cell{Row: 3, Col: 7}
	s.Add(c)
	if !s.Contains(c) || s.Count() != 1 {
		t.Error("Add/Contains failed")
	}
	s.Add(c)
	if s.Count() != 1 {
		t.Error("double Add changed count")
	}
	s.Remove(c)
	if s.Contains(c) || s.Count() != 0 {
		t.Error("Remove failed")
	}
	if s.Contains(Cell{Row: -1, Col: 0}) {
		t.Error("out-of-bounds Contains should be false")
	}
}

func TestFullCellSetAndComplement(t *testing.T) {
	g := Grid{Rows: 9, Cols: 9, SideMeters: 100} // 81 cells: exercises tail masking
	full := FullCellSet(g)
	if full.Count() != 81 {
		t.Fatalf("full count = %d, want 81", full.Count())
	}
	empty := full.Complement()
	if empty.Count() != 0 {
		t.Errorf("complement of full has %d cells", empty.Count())
	}
	s := NewCellSet(g)
	s.Add(Cell{Row: 0, Col: 0})
	comp := s.Complement()
	if comp.Count() != 80 || comp.Contains(Cell{Row: 0, Col: 0}) {
		t.Errorf("complement wrong: count=%d", comp.Count())
	}
}

func TestCellSetOps(t *testing.T) {
	g := Grid{Rows: 5, Cols: 5, SideMeters: 100}
	a := NewCellSet(g)
	b := NewCellSet(g)
	a.Add(Cell{0, 0})
	a.Add(Cell{1, 1})
	b.Add(Cell{1, 1})
	b.Add(Cell{2, 2})

	inter := a.Clone()
	inter.IntersectWith(b)
	if inter.Count() != 1 || !inter.Contains(Cell{1, 1}) {
		t.Errorf("intersection wrong: %v", inter.Cells())
	}

	uni := a.Clone()
	uni.UnionWith(b)
	if uni.Count() != 3 {
		t.Errorf("union count = %d, want 3", uni.Count())
	}

	diff := a.Clone()
	diff.SubtractWith(b)
	if diff.Count() != 1 || !diff.Contains(Cell{0, 0}) {
		t.Errorf("difference wrong: %v", diff.Cells())
	}

	if !a.Equal(a.Clone()) {
		t.Error("clone not equal to original")
	}
	if a.Equal(b) {
		t.Error("distinct sets reported equal")
	}
}

func TestCellSetIterationOrder(t *testing.T) {
	g := Grid{Rows: 3, Cols: 3, SideMeters: 100}
	s := NewCellSet(g)
	cells := []Cell{{2, 2}, {0, 1}, {1, 0}}
	for _, c := range cells {
		s.Add(c)
	}
	got := s.Cells()
	want := []Cell{{0, 1}, {1, 0}, {2, 2}} // row-major
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("cells[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCellSetRandomizedAgainstMap(t *testing.T) {
	g := Grid{Rows: 31, Cols: 17, SideMeters: 100}
	rng := rand.New(rand.NewSource(5))
	s := NewCellSet(g)
	ref := map[Cell]bool{}
	for i := 0; i < 2000; i++ {
		c := Cell{Row: rng.Intn(g.Rows), Col: rng.Intn(g.Cols)}
		if rng.Intn(2) == 0 {
			s.Add(c)
			ref[c] = true
		} else {
			s.Remove(c)
			delete(ref, c)
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("count = %d, want %d", s.Count(), len(ref))
	}
	for c := range ref {
		if !s.Contains(c) {
			t.Fatalf("missing %v", c)
		}
	}
}

func TestCellSetMismatchedGridsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched grids")
		}
	}()
	a := NewCellSet(Grid{Rows: 2, Cols: 2, SideMeters: 1})
	b := NewCellSet(Grid{Rows: 3, Cols: 3, SideMeters: 1})
	a.IntersectWith(b)
}
