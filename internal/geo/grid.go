// Package geo provides the spatial substrate of the auction simulation:
// a rectangular grid of cells over a square region (the paper grids each
// 75 km × 75 km area into 100 × 100 cells), integer point coordinates for
// the privacy protocol, distances, and the interference predicate.
package geo

import (
	"fmt"
	"math"
)

// Grid describes a rows × cols partition of a square region whose side is
// SideMeters long. Cells are addressed row-major; rows index the y axis.
type Grid struct {
	Rows, Cols int
	SideMeters float64
}

// DefaultGrid is the paper's experiment geometry: a 75 km square split into
// 100 × 100 cells (750 m per cell).
func DefaultGrid() Grid {
	return Grid{Rows: 100, Cols: 100, SideMeters: 75_000}
}

// Validate checks that the grid has positive dimensions.
func (g Grid) Validate() error {
	if g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("geo: grid %dx%d has non-positive dimension", g.Rows, g.Cols)
	}
	if g.SideMeters <= 0 {
		return fmt.Errorf("geo: grid side %.1f m must be positive", g.SideMeters)
	}
	return nil
}

// NumCells reports rows × cols.
func (g Grid) NumCells() int { return g.Rows * g.Cols }

// CellWidthMeters is the east-west extent of one cell.
func (g Grid) CellWidthMeters() float64 { return g.SideMeters / float64(g.Cols) }

// CellHeightMeters is the north-south extent of one cell.
func (g Grid) CellHeightMeters() float64 { return g.SideMeters / float64(g.Rows) }

// Cell identifies one grid cell by row m and column n, following the
// paper's (m, n) convention.
type Cell struct {
	Row, Col int
}

// String renders the cell as "(m,n)".
func (c Cell) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Index flattens the cell to a row-major index.
func (g Grid) Index(c Cell) int { return c.Row*g.Cols + c.Col }

// CellAt inverts Index.
func (g Grid) CellAt(idx int) Cell { return Cell{Row: idx / g.Cols, Col: idx % g.Cols} }

// InBounds reports whether c lies on the grid.
func (g Grid) InBounds(c Cell) bool {
	return c.Row >= 0 && c.Row < g.Rows && c.Col >= 0 && c.Col < g.Cols
}

// Center returns the metric coordinates of the cell's centroid, with the
// origin at the grid's south-west corner (x east, y north).
func (g Grid) Center(c Cell) (x, y float64) {
	return (float64(c.Col) + 0.5) * g.CellWidthMeters(), (float64(c.Row) + 0.5) * g.CellHeightMeters()
}

// CellDistanceMeters is the Euclidean distance between two cell centroids.
func (g Grid) CellDistanceMeters(a, b Cell) float64 {
	ax, ay := g.Center(a)
	bx, by := g.Center(b)
	return math.Hypot(ax-bx, ay-by)
}

// Point is an integer coordinate pair as submitted to the privacy protocol.
// The paper assumes non-negative integer coordinates; we use cell-indexed
// coordinates (Col, Row), which bounds the prefix width at
// WidthFor(max(rows, cols)).
type Point struct {
	X, Y uint64
}

// PointOf converts a cell to protocol coordinates.
func PointOf(c Cell) Point { return Point{X: uint64(c.Col), Y: uint64(c.Row)} }

// CellOf converts protocol coordinates back to a cell.
func CellOf(p Point) Cell { return Cell{Row: int(p.Y), Col: int(p.X)} }

// Conflict reports whether two users at points a and b interfere: the paper
// models each user's interference range as a square of half-side 2λ, so a
// and b conflict iff |ax-bx| < 2λ AND |ay-by| < 2λ.
func Conflict(a, b Point, lambda uint64) bool {
	return absDiff(a.X, b.X) < 2*lambda && absDiff(a.Y, b.Y) < 2*lambda
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// ClampRange returns [v-delta, v+delta] clamped into [0, max]; used to form
// interference-range queries near region borders.
func ClampRange(v, delta, max uint64) (lo, hi uint64) {
	if v > delta {
		lo = v - delta
	}
	hi = v + delta
	if hi > max {
		hi = max
	}
	return lo, hi
}
