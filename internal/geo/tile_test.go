package geo

import (
	"math/rand"
	"testing"
)

// TestNewTileGridGeometry pins the two invariants the sharded round rests
// on: the tile width is a positive multiple of 2λ (so the conflict reach
// 2λ−1 never spans two boundaries), and the grid covers the domain.
func TestNewTileGridGeometry(t *testing.T) {
	for _, tc := range []struct {
		maxX, maxY, lambda uint64
		shards             int
	}{
		{99, 99, 2, 1}, {99, 99, 2, 4}, {99, 99, 2, 8}, {99, 99, 3, 16},
		{999, 999, 2, 8}, {999, 499, 5, 64}, {7, 7, 4, 9}, {1, 1, 1, 100},
	} {
		tg, err := NewTileGrid(tc.maxX, tc.maxY, tc.lambda, tc.shards)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if tg.Width == 0 || tg.Width%(2*tc.lambda) != 0 {
			t.Errorf("%+v: width %d not a positive multiple of 2λ=%d", tc, tg.Width, 2*tc.lambda)
		}
		if uint64(tg.TilesX)*tg.Width <= tc.maxX || uint64(tg.TilesY)*tg.Width <= tc.maxY {
			t.Errorf("%+v: %dx%d tiles of width %d do not cover the domain", tc, tg.TilesX, tg.TilesY, tg.Width)
		}
		if tg.Tiles() != tg.TilesX*tg.TilesY {
			t.Errorf("%+v: Tiles() = %d, want %d", tc, tg.Tiles(), tg.TilesX*tg.TilesY)
		}
	}
	if _, err := NewTileGrid(99, 99, 2, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewTileGrid(99, 99, 0, 4); err == nil {
		t.Error("zero lambda accepted")
	}
}

// TestTouchedProperties checks, over random geometries and points, that
// Touched lists the home tile first, stays within the four-tile bound for
// delta = 2λ−1, never repeats a tile, and — the coverage property the
// sharded graph build needs — contains the home tile of every conflicting
// partner point.
func TestTouchedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		lambda := uint64(rng.Intn(5) + 1)
		maxX := uint64(rng.Intn(400) + 4*int(lambda))
		maxY := uint64(rng.Intn(400) + 4*int(lambda))
		tg, err := NewTileGrid(maxX, maxY, lambda, rng.Intn(20)+1)
		if err != nil {
			t.Fatal(err)
		}
		delta := 2*lambda - 1
		p := Point{X: uint64(rng.Intn(int(maxX + 1))), Y: uint64(rng.Intn(int(maxY + 1)))}
		touched := tg.Touched(p, delta)

		hx, hy := tg.TileOf(p)
		if touched[0] != tg.ID(hx, hy) {
			t.Fatalf("trial %d: home tile not first: %v", trial, touched)
		}
		if len(touched) > 4 {
			t.Fatalf("trial %d: %d tiles touched with delta=%d < width=%d", trial, len(touched), delta, tg.Width)
		}
		seen := map[uint64]bool{}
		for _, id := range touched {
			if seen[id] {
				t.Fatalf("trial %d: duplicate tile %d in %v", trial, id, touched)
			}
			seen[id] = true
		}

		// Any conflicting partner's home tile must be touched.
		for probe := 0; probe < 50; probe++ {
			q := Point{
				X: jitter(rng, p.X, 2*lambda+2, maxX),
				Y: jitter(rng, p.Y, 2*lambda+2, maxY),
			}
			if !Conflict(p, q, lambda) {
				continue
			}
			qx, qy := tg.TileOf(q)
			if !seen[tg.ID(qx, qy)] {
				t.Fatalf("trial %d: conflict partner %v (tile %d,%d) not in touched set %v of %v",
					trial, q, qx, qy, touched, p)
			}
		}
	}
}

func jitter(rng *rand.Rand, v, spread, max uint64) uint64 {
	d := int64(rng.Intn(2*int(spread)+1)) - int64(spread)
	r := int64(v) + d
	if r < 0 {
		r = 0
	}
	if r > int64(max) {
		r = int64(max)
	}
	return uint64(r)
}
