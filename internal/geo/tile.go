package geo

import "fmt"

// TileGrid partitions the coordinate domain into square tiles whose side is
// a multiple of 2λ. Because the interference predicate is |Δx| < 2λ ∧
// |Δy| < 2λ, a point's interference square (half-side 2λ−1) overlaps at
// most one tile boundary per axis, so every conflict pair is contained in
// the union of a point's home tile and at most three adjacent tiles. That
// locality is what lets the sharded round build per-tile conflict graphs
// whose union is exactly the global graph (see internal/core shard.go).
type TileGrid struct {
	// Width is the tile side length in grid units, a positive multiple of
	// 2λ and strictly greater than 2λ−1 (the conflict reach).
	Width uint64
	// MaxX, MaxY bound the coordinate domain (inclusive), as in Params.
	MaxX, MaxY uint64
	// TilesX, TilesY count tiles per axis.
	TilesX, TilesY int
}

// NewTileGrid chooses a tile geometry for about `shards` shards over the
// domain [0,maxX]×[0,maxY]: tiles per axis is ⌈√shards⌉ and the width is
// the smallest multiple of 2λ covering the longer side in that many tiles
// (never below 2λ, so conflicts cross at most one boundary per axis).
func NewTileGrid(maxX, maxY, lambda uint64, shards int) (TileGrid, error) {
	if shards < 1 {
		return TileGrid{}, fmt.Errorf("geo: tile grid needs at least one shard, got %d", shards)
	}
	if lambda < 1 {
		return TileGrid{}, fmt.Errorf("geo: tile grid needs lambda ≥ 1, got %d", lambda)
	}
	side := maxX + 1
	if maxY+1 > side {
		side = maxY + 1
	}
	axis := uint64(1)
	for axis*axis < uint64(shards) {
		axis++
	}
	unit := 2 * lambda
	width := (side + axis - 1) / axis // ceil(side/axis)
	width = ((width + unit - 1) / unit) * unit
	if width < unit {
		width = unit
	}
	tg := TileGrid{Width: width, MaxX: maxX, MaxY: maxY}
	tg.TilesX = int(maxX/width) + 1
	tg.TilesY = int(maxY/width) + 1
	return tg, nil
}

// TileOf returns the tile coordinates containing p.
func (tg TileGrid) TileOf(p Point) (tx, ty uint64) {
	return p.X / tg.Width, p.Y / tg.Width
}

// ID packs tile coordinates into one uint64 (the value that gets masked
// into the routing digest).
func (tg TileGrid) ID(tx, ty uint64) uint64 { return tx<<32 | ty }

// Tiles reports the total tile count.
func (tg TileGrid) Tiles() int { return tg.TilesX * tg.TilesY }

// Touched returns the IDs of every tile the square [p.X±delta]×[p.Y±delta]
// (clamped to the domain) overlaps, home tile first. With delta < Width —
// the sharded round uses delta = 2λ−1 — the square spans at most two tiles
// per axis, so the result has at most four entries.
func (tg TileGrid) Touched(p Point, delta uint64) []uint64 {
	xlo, xhi := ClampRange(p.X, delta, tg.MaxX)
	ylo, yhi := ClampRange(p.Y, delta, tg.MaxY)
	hx, hy := tg.TileOf(p)
	out := make([]uint64, 0, 4)
	out = append(out, tg.ID(hx, hy))
	for tx := xlo / tg.Width; tx <= xhi/tg.Width; tx++ {
		for ty := ylo / tg.Width; ty <= yhi/tg.Width; ty++ {
			if tx == hx && ty == hy {
				continue
			}
			out = append(out, tg.ID(tx, ty))
		}
	}
	return out
}
