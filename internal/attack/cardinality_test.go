package attack

import (
	"math/rand"
	"testing"

	"lppa/internal/bidder"
	"lppa/internal/core"
	"lppa/internal/mask"
	"lppa/internal/prefix"
)

func basicParams(channels int) core.Params {
	return core.Params{Channels: channels, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
}

func TestCardinalityTableInvertsExactly(t *testing.T) {
	table, err := NewCardinalityTable(100)
	if err != nil {
		t.Fatal(err)
	}
	w := prefix.WidthFor(100)
	for b := uint64(0); b <= 100; b++ {
		size := len(prefix.Cover(b, 100, w))
		candidates := table.Candidates(size)
		found := false
		for _, c := range candidates {
			if c == b {
				found = true
			}
		}
		if !found {
			t.Fatalf("bid %d not among candidates for its own size %d: %v", b, size, candidates)
		}
	}
	if _, err := NewCardinalityTable(0); err == nil {
		t.Error("bmax=0 accepted")
	}
}

func TestCardinalityEstimateTracksTrueBid(t *testing.T) {
	// Estimates must be close to the truth on average (candidate groups
	// for one size are contiguous-ish value ranges).
	table, err := NewCardinalityTable(100)
	if err != nil {
		t.Fatal(err)
	}
	w := prefix.WidthFor(100)
	var totalErr float64
	for b := uint64(1); b <= 100; b++ {
		size := len(prefix.Cover(b, 100, w))
		est, ok := table.Estimate(size)
		if !ok {
			t.Fatalf("size %d uninvertible", size)
		}
		diff := float64(est) - float64(b)
		if diff < 0 {
			diff = -diff
		}
		totalErr += diff
	}
	if avg := totalErr / 100; avg > 25 {
		t.Errorf("average estimation error %.1f too large for the attack to work", avg)
	}
}

func TestBasicSchemeLeaksThroughCardinality(t *testing.T) {
	// End to end: a basic-scheme submission lets the attacker reconstruct
	// bids well enough to geo-locate, while the advanced scheme's padding
	// collapses the signal entirely.
	area := testArea(t)
	p := basicParams(area.NumChannels())
	ring, err := mask.DeriveKeyRing([]byte("cardinality"), p.Channels, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cfg := bidder.DefaultConfig()
	table, err := NewCardinalityTable(p.BMax)
	if err != nil {
		t.Fatal(err)
	}

	basicEnc, err := core.NewBasicBidEncoder(p, ring, rng)
	if err != nil {
		t.Fatal(err)
	}
	advEnc, err := core.NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		t.Fatal(err)
	}

	hits, victims := 0, 0
	for _, su := range bidder.Place(area.Grid, 12, cfg, rng) {
		bids := bidder.BidVector(su, area, cfg, rng)

		basicSub, err := basicEnc.Encode(bids, rng)
		if err != nil {
			t.Fatal(err)
		}
		// The signal exists: multiple distinct sizes observable.
		if SizesDistinct(basicSub) < 2 {
			continue
		}
		victims++
		res, err := CardinalityBPM(area, basicSub, table, BPMConfig{KeepFraction: 0.25, MaxCells: 100})
		if err != nil {
			continue
		}
		if res.Selected.Contains(su.Cell) {
			hits++
		}

		// The advanced scheme pads every range set to one size.
		advSub, err := advEnc.Encode(bids, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := SizesDistinct(advSub); got != 1 {
			t.Fatalf("advanced scheme leaked %d distinct range sizes", got)
		}
		// And those sizes are uninvertible with the basic table (the
		// padded cardinality 2w'−2 uses the *blinded* width w' > w).
		if _, ok := table.Estimate(advSub.Channels[0].Range.Len()); ok {
			t.Error("advanced padded size inverts in the basic table (coincidence would break this test; investigate)")
		}
	}
	if victims == 0 {
		t.Skip("no victims with usable signal")
	}
	if float64(hits)/float64(victims) < 0.5 {
		t.Errorf("cardinality attack located only %d/%d victims; the basic-scheme leak should be strong", hits, victims)
	}
}

func TestEstimateBidsZeroForUninvertible(t *testing.T) {
	table, err := NewCardinalityTable(100)
	if err != nil {
		t.Fatal(err)
	}
	sub := &core.BidSubmission{Channels: make([]core.ChannelBid, 1)}
	// Empty range set: size 0 is impossible for any bid.
	est := EstimateBidsFromBasic(sub, table)
	if est[0] != 0 {
		t.Errorf("uninvertible size estimated %d, want 0", est[0])
	}
}
