package attack

import (
	"fmt"

	"lppa/internal/dataset"
	"lppa/internal/geo"
)

// BCMRobust is the attacker's graceful-degradation variant of BCM for
// noisy observations (the LPPA transcript case): instead of intersecting
// availability regions — which turns empty as soon as one observation is
// false — it scores every cell by how many observed channels are available
// there and keeps the argmax set. With perfectly honest observations it
// coincides with BCM (all observed channels available at the true cell);
// with poisoned observations it returns the least-inconsistent region,
// which is the best a rational attacker can do.
//
// The returned satisfied count reports how many of the observations the
// selected cells satisfy; len(channels)−satisfied is the attacker's
// visible evidence of poisoning.
func BCMRobust(area *dataset.Area, channels []int) (*geo.CellSet, int, error) {
	if len(channels) == 0 {
		return geo.FullCellSet(area.Grid), 0, nil
	}
	counts := make([]int, area.Grid.NumCells())
	for _, r := range channels {
		if r < 0 || r >= area.NumChannels() {
			return nil, 0, fmt.Errorf("attack: channel %d out of range [0,%d)", r, area.NumChannels())
		}
		area.Coverage[r].Available.ForEach(func(c geo.Cell) {
			counts[area.Grid.Index(c)]++
		})
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	out := geo.NewCellSet(area.Grid)
	if best == 0 {
		// No observed channel is available anywhere: every cell is equally
		// (in)consistent.
		return geo.FullCellSet(area.Grid), 0, nil
	}
	for idx, c := range counts {
		if c == best {
			out.Add(area.Grid.CellAt(idx))
		}
	}
	return out, best, nil
}
