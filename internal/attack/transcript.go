package attack

import (
	"fmt"
	"math"
)

// Under LPPA the auctioneer no longer sees bid values, but the
// order-preserving masking still lets it rank all bids *within* one channel
// (that ability is what makes the private max-search work, and the paper's
// section VI.C attacker exploits exactly it). The attacker therefore keeps,
// per channel, the t largest masked bids and presumes the channel available
// to those bidders. Disguised zeros land in the top set and poison the BCM
// intersection — that poisoning is LPPA's defence.

// TopFractionChannels converts per-channel bid rankings into per-user
// observed channel sets. rankings[r] lists bidder indices in descending
// bid order for channel r (ties in any stable order). For each channel the
// attacker takes the ceil(frac·len) top bidders (at least one) and marks
// the channel observed for them.
//
// The returned slice maps bidder index to the channels the attacker
// believes available to that bidder.
func TopFractionChannels(rankings [][]int, n int, frac float64) ([][]int, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("attack: fraction %f out of (0,1]", frac)
	}
	out := make([][]int, n)
	for r, ranked := range rankings {
		if len(ranked) == 0 {
			continue
		}
		t := int(math.Ceil(frac * float64(len(ranked))))
		if t < 1 {
			t = 1
		}
		if t > len(ranked) {
			t = len(ranked)
		}
		for _, u := range ranked[:t] {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("attack: ranking for channel %d names bidder %d (n=%d)", r, u, n)
			}
			out[u] = append(out[u], r)
		}
	}
	return out, nil
}
