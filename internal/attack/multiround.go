package attack

// Multi-round linkage (section V.C.3): a user whose pseudonym stays fixed
// across auction rounds hands the attacker repeated observations. Single-
// round observations under LPPA are heavily poisoned by disguised zeros
// and ranking noise, but poisoning is random per round while genuine
// availability is stable — so majority filtering across rounds recovers
// the true available set and with it the user's location. The paper's
// countermeasure is remixing bidder IDs every round, which breaks the
// linkage; these helpers implement the attacker side so the defence can be
// evaluated.

// AccumulateObservations merges per-round observed channel sets for one
// linked user into per-channel counts. perRound[t] lists the channels the
// attacker attributed to the user in round t.
func AccumulateObservations(perRound [][]int, channels int) []int {
	counts := make([]int, channels)
	for _, obs := range perRound {
		for _, r := range obs {
			if r >= 0 && r < channels {
				counts[r]++
			}
		}
	}
	return counts
}

// ReliableChannels returns the channels observed in at least minRounds of
// the rounds — the attacker's denoised availability estimate.
func ReliableChannels(counts []int, minRounds int) []int {
	if minRounds < 1 {
		minRounds = 1
	}
	out := make([]int, 0, len(counts))
	for r, c := range counts {
		if c >= minRounds {
			out = append(out, r)
		}
	}
	return out
}
