// Package attack implements the two location-privacy attacks of the paper
// (section III): Bid-Channels Mining (BCM, Algorithm 1) and Bid-Price
// Mining (BPM, Algorithm 2), together with the attacker-side logic that
// extracts channel observations from an LPPA transcript (t-largest
// ciphertext selection, section VI.C).
//
// The attacker is the curious-but-honest auctioneer (or an eavesdropper):
// it holds the full coverage and quality maps of every channel and tries
// to geo-locate a bidder from its submission alone.
package attack

import (
	"fmt"
	"math"
	"sort"

	"lppa/internal/dataset"
	"lppa/internal/geo"
)

// BCM runs the Bid-Channels Mining attack: starting from the full region
// P = A, intersect the availability region C_r of every channel the victim
// apparently bid on. The victim must lie where all of its bid channels are
// simultaneously available.
//
// channels holds the channel indices the attacker believes the victim can
// use (in the plaintext auction: channels with positive bids; under LPPA:
// channels where the victim's masked bid ranked in the selected top set).
func BCM(area *dataset.Area, channels []int) (*geo.CellSet, error) {
	p := geo.FullCellSet(area.Grid)
	for _, r := range channels {
		if r < 0 || r >= area.NumChannels() {
			return nil, fmt.Errorf("attack: channel %d out of range [0,%d)", r, area.NumChannels())
		}
		p.IntersectWith(area.Coverage[r].Available)
	}
	return p, nil
}

// BCMFromBids derives the observed channel set from a plaintext bid vector
// (positive entries) and runs BCM — exactly Algorithm 1.
func BCMFromBids(area *dataset.Area, bids []uint64) (*geo.CellSet, error) {
	channels := make([]int, 0, len(bids))
	for r, b := range bids {
		if b > 0 {
			channels = append(channels, r)
		}
	}
	return BCM(area, channels)
}

// ScoredCell couples a candidate cell with its quality-distance dq.
type ScoredCell struct {
	Cell geo.Cell
	DQ   float64
}

// BPMConfig tunes Algorithm 2's output-set selection.
type BPMConfig struct {
	// KeepFraction is the share of BCM's candidate cells retained, ranked
	// by ascending dq (the paper sweeps 1, 1/2, 1/3, …). 1.0 keeps all.
	KeepFraction float64
	// MaxCells caps the retained set (the paper's threshold rule, e.g.
	// 250 cells for the 80-channel, 50 % setting). 0 disables the cap.
	MaxCells int
}

// Validate checks the configuration.
func (c BPMConfig) Validate() error {
	if c.KeepFraction <= 0 || c.KeepFraction > 1 {
		return fmt.Errorf("attack: keep fraction %f out of (0,1]", c.KeepFraction)
	}
	if c.MaxCells < 0 {
		return fmt.Errorf("attack: negative cell cap %d", c.MaxCells)
	}
	return nil
}

// BPMResult is the outcome of a Bid-Price Mining attack.
type BPMResult struct {
	// Ranked lists every BCM candidate in ascending dq order.
	Ranked []ScoredCell
	// Selected is the final possible-location set after fraction and cap.
	Selected *geo.CellSet
	// Best is the single minimum-dq cell (Algorithm 2's point estimate);
	// only meaningful when Ranked is non-empty.
	Best geo.Cell
}

// BPM runs the Bid-Price Mining attack (Algorithm 2): normalize the
// victim's bids by the maximum bid to estimate per-channel quality, then
// score every BCM candidate cell by the squared distance between estimated
// and ground-truth (max-normalized) quality, keeping the best cells.
//
// p is the candidate set (normally BCM output; pass the full grid to run
// BPM standalone, which the paper notes is possible but slower). bids is
// the plaintext bid vector. Cells where the victim's best channel is not
// actually available score +Inf (they contradict the observation).
func BPM(area *dataset.Area, p *geo.CellSet, bids []uint64, cfg BPMConfig) (*BPMResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Auctions may run over the first k ≤ NumChannels channels; the bid
	// vector then covers that prefix.
	if len(bids) > area.NumChannels() {
		return nil, fmt.Errorf("attack: %d bids for %d channels", len(bids), area.NumChannels())
	}
	// Available set and maximum bid (Algorithm 2 lines 4–9).
	var (
		as   []int
		rMax = -1
		bMax uint64
	)
	for r, b := range bids {
		if b > 0 {
			as = append(as, r)
			if b > bMax {
				bMax, rMax = b, r
			}
		}
	}
	if rMax < 0 {
		return nil, fmt.Errorf("attack: victim bid on no channels; BPM needs at least one positive bid")
	}
	// Estimated quality parameters q^i_r = b_r / b_max (lines 10–12).
	qEst := make(map[int]float64, len(as))
	for _, r := range as {
		qEst[r] = float64(bids[r]) / float64(bMax)
	}

	// Score candidates (lines 13–15).
	ranked := make([]ScoredCell, 0, p.Count())
	p.ForEach(func(cell geo.Cell) {
		qMaxStar := area.Coverage[rMax].QualityAt(cell)
		if qMaxStar <= 0 {
			ranked = append(ranked, ScoredCell{Cell: cell, DQ: math.Inf(1)})
			return
		}
		var dq float64
		for _, r := range as {
			d := qEst[r] - area.Coverage[r].QualityAt(cell)/qMaxStar
			dq += d * d
		}
		ranked = append(ranked, ScoredCell{Cell: cell, DQ: dq})
	})
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].DQ != ranked[j].DQ {
			return ranked[i].DQ < ranked[j].DQ
		}
		// Deterministic tie-break keeps runs reproducible.
		a, b := ranked[i].Cell, ranked[j].Cell
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})

	keep := int(math.Ceil(cfg.KeepFraction * float64(len(ranked))))
	if keep < 1 && len(ranked) > 0 {
		keep = 1
	}
	if cfg.MaxCells > 0 && keep > cfg.MaxCells {
		keep = cfg.MaxCells
	}
	sel := geo.NewCellSet(area.Grid)
	for _, sc := range ranked[:keep] {
		sel.Add(sc.Cell)
	}
	res := &BPMResult{Ranked: ranked, Selected: sel}
	if len(ranked) > 0 {
		res.Best = ranked[0].Cell
	}
	return res, nil
}
