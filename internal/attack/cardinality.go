package attack

import (
	"fmt"
	"sort"

	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/prefix"
)

// Section IV.C.1 of the paper lists three leaks of the *basic* bid
// submission scheme; the third is structural: "although the number of
// prefixes in [a] number['s] prefix family is identical, the range prefix
// has [a] different amount of elements … which could be used to
// distinguish the price." This file implements that attack: the range
// cover Q([b, bmax]) has a cardinality that depends only on b, so the
// auctioneer inverts set sizes back to candidate bid values and runs the
// BPM attack on the estimate. The advanced scheme defeats it by padding
// every range set to 2w−2 digests.

// CardinalityTable maps each observable range-set size to the bid values
// that produce it, for the basic scheme's encoding Q([b, bmax]) at width
// w = WidthFor(bmax).
type CardinalityTable struct {
	BMax       uint64
	Width      int
	candidates map[int][]uint64
}

// NewCardinalityTable precomputes the inversion for a public bmax.
func NewCardinalityTable(bmax uint64) (*CardinalityTable, error) {
	if bmax < 1 {
		return nil, fmt.Errorf("attack: bmax %d must be ≥ 1", bmax)
	}
	w := prefix.WidthFor(bmax)
	t := &CardinalityTable{BMax: bmax, Width: w, candidates: make(map[int][]uint64)}
	for b := uint64(0); b <= bmax; b++ {
		size := len(prefix.Cover(b, bmax, w))
		t.candidates[size] = append(t.candidates[size], b)
	}
	return t, nil
}

// Candidates returns the bid values consistent with an observed range-set
// size (empty when the size is impossible, which with honest encoders
// indicates padding — i.e. the advanced scheme).
func (t *CardinalityTable) Candidates(size int) []uint64 {
	return append([]uint64(nil), t.candidates[size]...)
}

// Estimate returns the median candidate for an observed size and whether
// the size was invertible at all.
func (t *CardinalityTable) Estimate(size int) (uint64, bool) {
	c := t.candidates[size]
	if len(c) == 0 {
		return 0, false
	}
	// Candidates for one size are generated in ascending order.
	return c[len(c)/2], true
}

// PositiveCertain reports whether an observed size implies a strictly
// positive bid (every candidate is positive). Only such channels are safe
// BCM constraints: a zero bid misclassified as available would poison the
// intersection.
func (t *CardinalityTable) PositiveCertain(size int) bool {
	c := t.candidates[size]
	if len(c) == 0 {
		return false
	}
	for _, v := range c {
		if v == 0 {
			return false
		}
	}
	return true
}

// EstimateBidsFromBasic reconstructs an approximate plaintext bid vector
// from a basic-scheme submission using only range-set cardinalities — no
// keys required. Only channels whose size certainly implies a positive bid
// get a (median-candidate) estimate; everything else stays zero, keeping
// the estimate sound for BCM.
func EstimateBidsFromBasic(sub *core.BidSubmission, table *CardinalityTable) []uint64 {
	out := make([]uint64, len(sub.Channels))
	for r := range sub.Channels {
		size := sub.Channels[r].Range.Len()
		if !table.PositiveCertain(size) {
			continue
		}
		if est, ok := table.Estimate(size); ok {
			out[r] = est
		}
	}
	return out
}

// CardinalityBPM runs the full section IV.C.1 attack pipeline against a
// basic-scheme submission: invert range-set sizes to estimated bids, take
// the certainly-positive estimates as the observed available set, and run
// BCM + BPM on the estimates.
func CardinalityBPM(area *dataset.Area, sub *core.BidSubmission, table *CardinalityTable, cfg BPMConfig) (*BPMResult, error) {
	est := EstimateBidsFromBasic(sub, table)
	p, err := BCMFromBids(area, est)
	if err != nil {
		return nil, err
	}
	return BPM(area, p, est, cfg)
}

// SizesDistinct reports how many distinct range-set sizes a submission
// exhibits — the attacker's signal strength. The advanced scheme pads all
// sets to one size, collapsing this to 1.
func SizesDistinct(sub *core.BidSubmission) int {
	seen := map[int]bool{}
	for r := range sub.Channels {
		seen[sub.Channels[r].Range.Len()] = true
	}
	sizes := make([]int, 0, len(seen))
	for s := range seen {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return len(sizes)
}
