package attack

import (
	"math"
	"math/rand"
	"testing"

	"lppa/internal/bidder"
	"lppa/internal/dataset"
	"lppa/internal/geo"
)

func testArea(t *testing.T) *dataset.Area {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Grid:     geo.Grid{Rows: 25, Cols: 25, SideMeters: 75_000},
		Channels: 16,
		Profiles: dataset.LAProfiles(),
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Areas[3] // rural: attacks are most effective here
}

func TestBCMNoChannelsIsWholeRegion(t *testing.T) {
	area := testArea(t)
	p, err := BCM(area, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != area.Grid.NumCells() {
		t.Errorf("P = %d cells, want full region %d", p.Count(), area.Grid.NumCells())
	}
}

func TestBCMContainsTruePosition(t *testing.T) {
	area := testArea(t)
	rng := rand.New(rand.NewSource(1))
	cfg := bidder.DefaultConfig()
	for _, su := range bidder.Place(area.Grid, 30, cfg, rng) {
		bids := bidder.BidVector(su, area, cfg, rng)
		p, err := BCMFromBids(area, bids)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Contains(su.Cell) {
			t.Fatalf("BCM on honest bids excluded the true cell %v", su.Cell)
		}
	}
}

func TestBCMShrinksWithMoreChannels(t *testing.T) {
	area := testArea(t)
	su := bidder.SU{ID: 0, Cell: geo.Cell{Row: 12, Col: 12}, Beta: 1}
	as := bidder.AvailableSet(su, area)
	if len(as) < 4 {
		t.Skip("cell has too few available channels for the monotonicity check")
	}
	prev := area.Grid.NumCells() + 1
	for take := 1; take <= len(as); take++ {
		p, err := BCM(area, as[:take])
		if err != nil {
			t.Fatal(err)
		}
		if p.Count() > prev {
			t.Fatalf("BCM grew when adding channels: %d -> %d", prev, p.Count())
		}
		prev = p.Count()
	}
	if prev >= area.Grid.NumCells() {
		t.Error("BCM with all channels did not narrow the region at all")
	}
}

func TestBCMRejectsBadChannel(t *testing.T) {
	area := testArea(t)
	if _, err := BCM(area, []int{-1}); err == nil {
		t.Error("negative channel accepted")
	}
	if _, err := BCM(area, []int{area.NumChannels()}); err == nil {
		t.Error("overflow channel accepted")
	}
}

func TestBPMConfigValidate(t *testing.T) {
	for _, c := range []BPMConfig{{KeepFraction: 0}, {KeepFraction: 1.5}, {KeepFraction: 0.5, MaxCells: -1}} {
		if c.Validate() == nil {
			t.Errorf("config %+v validated", c)
		}
	}
	if (BPMConfig{KeepFraction: 1}).Validate() != nil {
		t.Error("valid config rejected")
	}
}

func TestBPMNarrowsBCMAndRanksTrueCellWell(t *testing.T) {
	area := testArea(t)
	rng := rand.New(rand.NewSource(2))
	cfg := bidder.DefaultConfig()
	sus := bidder.Place(area.Grid, 20, cfg, rng)
	better := 0
	total := 0
	for _, su := range sus {
		bids := bidder.BidVector(su, area, cfg, rng)
		p, err := BCMFromBids(area, bids)
		if err != nil {
			t.Fatal(err)
		}
		if p.Count() < 4 {
			continue
		}
		res, err := BPM(area, p, bids, BPMConfig{KeepFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Selected.Count() > p.Count() {
			t.Fatalf("BPM grew the candidate set: %d > %d", res.Selected.Count(), p.Count())
		}
		total++
		if res.Selected.Contains(su.Cell) {
			better++
		}
	}
	if total == 0 {
		t.Skip("no usable victims")
	}
	// With 20% valuation noise the true cell should usually survive a
	// 50% cut (it has near-minimal dq).
	if float64(better)/float64(total) < 0.5 {
		t.Errorf("true cell survived 50%% BPM cut only %d/%d times", better, total)
	}
}

func TestBPMNoiselessFindsExactCell(t *testing.T) {
	area := testArea(t)
	cfg := bidder.Config{BMax: 1000, NoiseFrac: 0, BetaMin: 1, BetaMax: 1}
	rng := rand.New(rand.NewSource(3))
	hits, total := 0, 0
	for _, su := range bidder.Place(area.Grid, 15, cfg, rng) {
		bids := bidder.BidVector(su, area, cfg, rng)
		p, err := BCMFromBids(area, bids)
		if err != nil {
			t.Fatal(err)
		}
		if p.Count() < 2 {
			continue
		}
		res, err := BPM(area, p, bids, BPMConfig{KeepFraction: 0.01})
		if err != nil {
			continue // victims with no positive bid
		}
		total++
		// The true cell must have (near-)minimal dq without noise; allow
		// quantization slack by checking the top selection.
		if res.Selected.Contains(su.Cell) || res.Best == su.Cell {
			hits++
		}
	}
	if total == 0 {
		t.Skip("no usable victims")
	}
	if float64(hits)/float64(total) < 0.6 {
		t.Errorf("noiseless BPM located only %d/%d victims", hits, total)
	}
}

func TestBPMMaxCellsCap(t *testing.T) {
	area := testArea(t)
	rng := rand.New(rand.NewSource(4))
	cfg := bidder.DefaultConfig()
	su := bidder.Place(area.Grid, 1, cfg, rng)[0]
	bids := bidder.BidVector(su, area, cfg, rng)
	p, err := BCMFromBids(area, bids)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() < 6 {
		t.Skip("candidate set too small to exercise cap")
	}
	res, err := BPM(area, p, bids, BPMConfig{KeepFraction: 1, MaxCells: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected.Count() != 5 {
		t.Errorf("capped selection = %d cells, want 5", res.Selected.Count())
	}
}

func TestBPMRankedAscending(t *testing.T) {
	area := testArea(t)
	rng := rand.New(rand.NewSource(5))
	cfg := bidder.DefaultConfig()
	su := bidder.Place(area.Grid, 1, cfg, rng)[0]
	bids := bidder.BidVector(su, area, cfg, rng)
	p, err := BCMFromBids(area, bids)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BPM(area, p, bids, BPMConfig{KeepFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Ranked); i++ {
		a, b := res.Ranked[i-1].DQ, res.Ranked[i].DQ
		if a > b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
			t.Fatalf("ranking not ascending at %d: %f > %f", i, a, b)
		}
	}
	if len(res.Ranked) != p.Count() {
		t.Errorf("ranked %d cells, candidate set %d", len(res.Ranked), p.Count())
	}
}

func TestBPMAllZeroBidsRejected(t *testing.T) {
	area := testArea(t)
	bids := make([]uint64, area.NumChannels())
	if _, err := BPM(area, geo.FullCellSet(area.Grid), bids, BPMConfig{KeepFraction: 1}); err == nil {
		t.Error("all-zero bid vector accepted")
	}
}

func TestBPMWrongBidLengthRejected(t *testing.T) {
	area := testArea(t)
	over := make([]uint64, area.NumChannels()+1)
	over[0] = 1
	if _, err := BPM(area, geo.FullCellSet(area.Grid), over, BPMConfig{KeepFraction: 1}); err == nil {
		t.Error("over-length bid vector accepted")
	}
	// A shorter vector is a prefix auction and must be accepted.
	if _, err := BPM(area, geo.FullCellSet(area.Grid), []uint64{1}, BPMConfig{KeepFraction: 1}); err != nil {
		t.Errorf("prefix bid vector rejected: %v", err)
	}
}

func TestTopFractionChannels(t *testing.T) {
	rankings := [][]int{
		{2, 0, 1}, // channel 0: bidder 2 highest
		{1, 2, 0}, // channel 1
	}
	got, err := TopFractionChannels(rankings, 3, 0.34) // ceil(0.34*3)=2 top bidders
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0}, {1}, {0, 1}}
	for u := range want {
		if len(got[u]) != len(want[u]) {
			t.Fatalf("user %d channels = %v, want %v", u, got[u], want[u])
		}
		for i := range want[u] {
			if got[u][i] != want[u][i] {
				t.Fatalf("user %d channels = %v, want %v", u, got[u], want[u])
			}
		}
	}
}

func TestTopFractionChannelsEdges(t *testing.T) {
	if _, err := TopFractionChannels(nil, 1, 0); err == nil {
		t.Error("frac=0 accepted")
	}
	if _, err := TopFractionChannels([][]int{{5}}, 2, 0.5); err == nil {
		t.Error("out-of-range bidder accepted")
	}
	got, err := TopFractionChannels([][]int{{}, {0}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 1 || got[0][0] != 1 {
		t.Errorf("got = %v", got)
	}
	// At least one bidder per channel even for tiny fractions.
	got, err = TopFractionChannels([][]int{{0, 1, 2, 3}}, 4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 1 {
		t.Errorf("tiny fraction should still pick the top bidder: %v", got)
	}
}

func TestBCMRobustMatchesBCMOnHonestObservations(t *testing.T) {
	area := testArea(t)
	rng := rand.New(rand.NewSource(6))
	cfg := bidder.DefaultConfig()
	for _, su := range bidder.Place(area.Grid, 10, cfg, rng) {
		as := bidder.AvailableSet(su, area)
		if len(as) == 0 {
			continue
		}
		plain, err := BCM(area, as)
		if err != nil {
			t.Fatal(err)
		}
		robust, satisfied, err := BCMRobust(area, as)
		if err != nil {
			t.Fatal(err)
		}
		if satisfied != len(as) {
			t.Fatalf("honest observations: satisfied %d of %d", satisfied, len(as))
		}
		if !plain.Equal(robust) {
			t.Fatal("robust BCM differs from BCM on honest observations")
		}
	}
}

func TestBCMRobustSurvivesPoisonedObservations(t *testing.T) {
	area := testArea(t)
	su := bidder.SU{ID: 0, Cell: geo.Cell{Row: 12, Col: 12}, Beta: 1}
	as := bidder.AvailableSet(su, area)
	if len(as) < 3 {
		t.Skip("too few available channels")
	}
	// Poison: claim a channel NOT available at the true cell.
	var poison int = -1
	for r := 0; r < area.NumChannels(); r++ {
		if !area.Coverage[r].AvailableAt(su.Cell) {
			poison = r
			break
		}
	}
	if poison == -1 {
		t.Skip("every channel available at the cell")
	}
	observed := append(append([]int(nil), as...), poison)
	// Plain BCM must go empty or lose the true cell...
	plain, err := BCM(area, observed)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Contains(su.Cell) {
		t.Fatal("plain BCM kept the true cell despite the poisoned observation")
	}
	// ...while robust BCM stays nonempty.
	robust, satisfied, err := BCMRobust(area, observed)
	if err != nil {
		t.Fatal(err)
	}
	if robust.Count() == 0 {
		t.Fatal("robust BCM returned an empty set")
	}
	if satisfied > len(observed) {
		t.Fatalf("satisfied %d of %d", satisfied, len(observed))
	}
}

func TestBCMRobustEdgeCases(t *testing.T) {
	area := testArea(t)
	p, satisfied, err := BCMRobust(area, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != area.Grid.NumCells() || satisfied != 0 {
		t.Error("no observations should yield the full region")
	}
	if _, _, err := BCMRobust(area, []int{-1}); err == nil {
		t.Error("bad channel accepted")
	}
}
