package cli

import (
	"flag"
	"io"
	"testing"
	"time"

	"lppa/internal/epoch"
	"lppa/internal/transport"
)

func parse(t *testing.T, reg func(*flag.FlagSet), args ...string) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	reg(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
}

func TestRoundFlagsDefaultsAreFieldValues(t *testing.T) {
	f := RoundFlags{Workers: 8, Shards: 4}
	parse(t, f.Register)
	if f.Workers != 8 || f.Shards != 4 || f.Indexed || f.Quorum != 0 {
		t.Errorf("defaults not preserved: %+v", f)
	}
}

func TestRoundFlagsParseAndOptions(t *testing.T) {
	var f RoundFlags
	parse(t, f.Register,
		"-workers", "4", "-shards", "3", "-indexed",
		"-quorum", "2", "-straggler", "5s")
	if f.Workers != 4 || f.Shards != 3 || !f.Indexed || f.Quorum != 2 || f.Straggler != 5*time.Second {
		t.Fatalf("parsed flags: %+v", f)
	}
	// Every set knob contributes exactly one round option.
	if got := len(f.RoundOptions()); got != 5 {
		t.Errorf("RoundOptions() = %d options, want 5", got)
	}
	if got := len((&RoundFlags{}).RoundOptions()); got != 0 {
		t.Errorf("zero flags = %d options, want 0", got)
	}
}

func TestRoundFlagsRetryPolicy(t *testing.T) {
	var f RoundFlags
	parse(t, f.RegisterClient, "-retries", "7")
	if p := f.RetryPolicy(); p.MaxAttempts != 7 || p.BaseDelay != transport.DefaultRetryPolicy.BaseDelay {
		t.Errorf("retry policy = %+v", p)
	}
	// Unset retries keeps the transport default.
	var g RoundFlags
	parse(t, g.RegisterClient)
	if p := g.RetryPolicy(); p != transport.DefaultRetryPolicy {
		t.Errorf("default retry policy = %+v", p)
	}
}

func TestRoundFlagsChaosConfig(t *testing.T) {
	var f RoundFlags
	parse(t, f.RegisterClient, "-chaos", "drop", "-chaos-rate", "0.25")
	cfg, err := f.ChaosConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg == nil || cfg.DropFrame != 0.25 {
		t.Errorf("chaos config = %+v", cfg)
	}

	var quiet RoundFlags
	parse(t, quiet.RegisterClient)
	if cfg, err := quiet.ChaosConfig(); err != nil || cfg != nil {
		t.Errorf("no -chaos: cfg=%+v err=%v, want nil/nil", cfg, err)
	}

	bad := RoundFlags{Chaos: "meteor"}
	if _, err := bad.ChaosConfig(); err == nil {
		t.Error("unknown chaos class accepted")
	}

	for _, class := range []string{"drop", "dup", "corrupt", "truncate", "slowloris", "crash"} {
		f := RoundFlags{Chaos: class, ChaosRate: 0.5}
		if cfg, err := f.ChaosConfig(); err != nil || cfg == nil {
			t.Errorf("class %q: cfg=%v err=%v", class, cfg, err)
		}
	}
}

// TestRoundFlagsValidate pins that the values which used to slip through
// to a silent default — negative -workers/-shards, an unknown -density —
// now come back as errors from Validate.
func TestRoundFlagsValidate(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"defaults", nil, true},
		{"explicit-good", []string{"-workers", "4", "-shards", "8", "-density", "mixed"}, true},
		{"workers-zero-is-auto", []string{"-workers", "0"}, true},
		{"negative-workers", []string{"-workers", "-3"}, false},
		{"negative-shards", []string{"-shards", "-1"}, false},
		{"negative-quorum", []string{"-quorum", "-2"}, false},
		{"negative-straggler", []string{"-straggler", "-5s"}, false},
		{"bad-density", []string{"-density", "metropolis"}, false},
		{"density-urban", []string{"-density", "urban"}, true},
		{"density-rural", []string{"-density", "rural"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f RoundFlags
			parse(t, f.Register, tc.args...)
			err := f.Validate()
			if tc.ok && err != nil {
				t.Fatalf("args %v: unexpected error %v", tc.args, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("args %v: accepted, want error", tc.args)
			}
		})
	}
	// Client-side knobs validate through the same call.
	clientCases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"negative-retries", []string{"-retries", "-1"}, false},
		{"chaos-rate-over-one", []string{"-chaos-rate", "1.5"}, false},
		{"chaos-rate-negative", []string{"-chaos-rate", "-0.5"}, false},
		{"chaos-rate-good", []string{"-chaos-rate", "0.25"}, true},
	}
	for _, tc := range clientCases {
		t.Run(tc.name, func(t *testing.T) {
			var f RoundFlags
			parse(t, f.RegisterClient, tc.args...)
			err := f.Validate()
			if tc.ok && err != nil {
				t.Fatalf("args %v: unexpected error %v", tc.args, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("args %v: accepted, want error", tc.args)
			}
		})
	}
}

func TestRoundFlagsMix(t *testing.T) {
	var empty RoundFlags
	if m, err := empty.Mix(); err != nil || m != nil {
		t.Fatalf("empty density: mix=%v err=%v, want nil/nil", m, err)
	}
	f := RoundFlags{Density: "urban"}
	m, err := f.Mix()
	if err != nil || m == nil || m.Name != "urban" {
		t.Fatalf("urban density: mix=%v err=%v", m, err)
	}
}

// TestEpochFlagsValidate pins the -rate-limit contract: an explicit zero
// errors (it would silently admit everything), an implicit zero — the
// default — stays legal, negatives always error.
func TestEpochFlagsValidate(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"defaults", nil, true},
		{"good", []string{"-epochs", "3", "-rate-limit", "100"}, true},
		{"explicit-zero-rate-limit", []string{"-rate-limit", "0"}, false},
		{"negative-rate-limit", []string{"-rate-limit", "-5"}, false},
		{"negative-epochs", []string{"-epochs", "-1"}, false},
		{"negative-interval", []string{"-epoch-interval", "-10ms"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f EpochFlags
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			f.Register(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			err := f.Validate(fs)
			if tc.ok && err != nil {
				t.Fatalf("args %v: unexpected error %v", tc.args, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("args %v: accepted, want error", tc.args)
			}
		})
	}
	// A nil FlagSet still validates the always-illegal shapes.
	if err := (&EpochFlags{RateLimit: -1}).Validate(nil); err == nil {
		t.Error("negative rate-limit with nil FlagSet accepted")
	}
	if err := (&EpochFlags{}).Validate(nil); err != nil {
		t.Errorf("zero-value flags with nil FlagSet rejected: %v", err)
	}
}

func TestEpochFlags(t *testing.T) {
	var f EpochFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f.Register(fs)
	if err := fs.Parse([]string{"-epochs", "5", "-epoch-interval", "20ms", "-rate-limit", "200"}); err != nil {
		t.Fatal(err)
	}
	if f.Epochs != 5 || f.Interval != 20*time.Millisecond || f.RateLimit != 200 {
		t.Fatalf("parsed epoch flags: %+v", f)
	}
	ac := f.AdmissionConfig()
	if ac.Rate != 200 || ac.Burst != 200 {
		t.Errorf("admission config = %+v", ac)
	}
	// Tiny rates still get a usable burst; zero disables the gate.
	if ac := (&EpochFlags{RateLimit: 0.1}).AdmissionConfig(); ac.Burst != 1 {
		t.Errorf("tiny-rate burst = %v, want 1", ac.Burst)
	}
	if ac := (&EpochFlags{}).AdmissionConfig(); ac != (epoch.AdmissionConfig{}) {
		t.Errorf("zero rate-limit config = %+v", ac)
	}
}
