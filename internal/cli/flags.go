// Package cli holds the flag blocks shared by the lppa commands, so
// lppa-net and lppa-sim expose the round-shaping knobs under one set of
// names, defaults, and help strings instead of drifting copies.
package cli

import (
	"flag"
	"fmt"
	"time"

	"lppa/internal/dataset"
	"lppa/internal/epoch"
	"lppa/internal/faults"
	"lppa/internal/round"
	"lppa/internal/transport"
)

// RoundFlags binds the round-shaping flags both commands understand. The
// struct's field values at Register time are the flag defaults, so each
// command seeds its own defaults (lppa-sim registers Workers at
// GOMAXPROCS, lppa-net leaves it serial) before registering.
type RoundFlags struct {
	// Allocation shape: how one round computes, never what it computes.
	Workers int
	Shards  int
	Indexed bool
	// Density is the named bidder placement ("urban", "rural", "mixed");
	// empty keeps each command's own default population (uniform scatter).
	Density string
	// Degraded-round policy: quorum rounds proceed without stragglers.
	Quorum    int
	Straggler time.Duration
	// Client-side hardening knobs (RegisterClient).
	Retries   int
	Chaos     string
	ChaosRate float64
}

// Register binds the allocation and degraded-round flags (-workers,
// -shards, -indexed, -quorum, -straggler) onto fs, using the current
// field values as defaults.
func (f *RoundFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Workers, "workers", f.Workers,
		"goroutines for submission decode and conflict graphs; <2 = serial driver")
	fs.IntVar(&f.Shards, "shards", f.Shards,
		"tile-shard the private rounds into this many coarse tiles (0 = unsharded; bit-identical results, different cost profile)")
	fs.BoolVar(&f.Indexed, "indexed", f.Indexed,
		"build conflict graphs from inverted-index candidates (bit-identical results, different cost profile)")
	fs.IntVar(&f.Quorum, "quorum", f.Quorum,
		"minimum submissions for a degraded round when -straggler fires; 0 requires all bidders")
	fs.DurationVar(&f.Straggler, "straggler", f.Straggler,
		"collection deadline; stragglers past it are excluded down to -quorum, 0 waits forever")
	fs.StringVar(&f.Density, "density", f.Density,
		"bidder placement: urban|rural|mixed (empty = the command's default uniform scatter)")
}

// Validate rejects flag values that used to fall through to a silent
// default: a negative -workers or -shards is a typo, not a request for
// the serial pipeline, and an unknown -density must fail before a long
// run, not place bidders uniformly. Commands call it right after Parse.
func (f *RoundFlags) Validate() error {
	if f.Workers < 0 {
		return fmt.Errorf("cli: -workers %d is negative (0 picks one per CPU, 1 forces serial)", f.Workers)
	}
	if f.Shards < 0 {
		return fmt.Errorf("cli: -shards %d is negative (0 disables sharding)", f.Shards)
	}
	if f.Quorum < 0 {
		return fmt.Errorf("cli: -quorum %d is negative (0 requires all bidders)", f.Quorum)
	}
	if f.Straggler < 0 {
		return fmt.Errorf("cli: -straggler %v is negative (0 waits forever)", f.Straggler)
	}
	if f.Retries < 0 {
		return fmt.Errorf("cli: -retries %d is negative", f.Retries)
	}
	if f.ChaosRate < 0 || f.ChaosRate > 1 {
		return fmt.Errorf("cli: -chaos-rate %v outside [0,1]", f.ChaosRate)
	}
	if _, err := f.Mix(); err != nil {
		return err
	}
	return nil
}

// Mix resolves -density to a placement mix; nil with no error when the
// flag was left empty (the command's own default placement applies).
func (f *RoundFlags) Mix() (*dataset.DensityMix, error) {
	if f.Density == "" {
		return nil, nil
	}
	m, err := dataset.ParseDensity(f.Density)
	if err != nil {
		return nil, err
	}
	return &m, nil
}

// RegisterClient binds the client-side hardening flags (-retries, -chaos,
// -chaos-rate) onto fs. Separate from Register because the in-process
// simulator has no client leg to harden.
func (f *RoundFlags) RegisterClient(fs *flag.FlagSet) {
	if f.Retries == 0 {
		f.Retries = transport.DefaultRetryPolicy.MaxAttempts
	}
	if f.ChaosRate == 0 {
		f.ChaosRate = 0.5
	}
	fs.IntVar(&f.Retries, "retries", f.Retries,
		"bidder submission attempts before giving up")
	fs.StringVar(&f.Chaos, "chaos", f.Chaos,
		"chaos soak: inject this fault class (drop|dup|corrupt|truncate|slowloris|crash)")
	fs.Float64Var(&f.ChaosRate, "chaos-rate", f.ChaosRate,
		"per-frame fault probability for the probabilistic chaos classes")
}

// RoundOptions maps the parsed allocation and degraded-round flags onto
// round.Run options. Invalid combinations (straggler on the serial
// pipeline, quorum below 1) are left for round.Run to reject with its own
// message, so the CLI and library agree on what is legal.
func (f *RoundFlags) RoundOptions() []round.Option {
	var opts []round.Option
	if f.Workers > 1 {
		opts = append(opts, round.WithWorkers(f.Workers))
	}
	if f.Indexed {
		opts = append(opts, round.WithIndexedCandidates())
	}
	if f.Shards > 0 {
		opts = append(opts, round.WithShards(f.Shards))
	}
	if f.Quorum > 0 {
		opts = append(opts, round.WithQuorum(f.Quorum))
	}
	if f.Straggler > 0 {
		opts = append(opts, round.WithStragglerTimeout(f.Straggler))
	}
	return opts
}

// RetryPolicy is the default client retry policy with -retries applied.
func (f *RoundFlags) RetryPolicy() transport.RetryPolicy {
	p := transport.DefaultRetryPolicy
	if f.Retries > 0 {
		p.MaxAttempts = f.Retries
	}
	return p
}

// ChaosConfig maps the -chaos class onto a fault config at the -chaos-rate
// per-frame probability. Empty class disables injection (nil config).
func (f *RoundFlags) ChaosConfig() (*faults.Config, error) {
	switch f.Chaos {
	case "":
		return nil, nil
	case "drop":
		return &faults.Config{DropFrame: f.ChaosRate}, nil
	case "dup":
		return &faults.Config{DupFrame: f.ChaosRate}, nil
	case "corrupt":
		return &faults.Config{CorruptFrame: f.ChaosRate}, nil
	case "truncate":
		return &faults.Config{TruncateFrame: f.ChaosRate}, nil
	case "slowloris":
		return &faults.Config{SlowChunk: 256, SlowPause: 100 * time.Millisecond}, nil
	case "crash":
		return &faults.Config{CloseAfterFrames: 1}, nil
	default:
		return nil, fmt.Errorf("unknown chaos class %q", f.Chaos)
	}
}

// EpochFlags binds the epochal-service flags lppa-net exposes.
type EpochFlags struct {
	Epochs    int
	Interval  time.Duration
	RateLimit float64
}

// Register binds -epochs, -epoch-interval, and -rate-limit onto fs.
func (f *EpochFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Epochs, "epochs", f.Epochs,
		"run this many back-to-back auction epochs through the epochal service (0 = single classic round)")
	fs.DurationVar(&f.Interval, "epoch-interval", f.Interval,
		"auto-seal the collecting epoch on this cadence; 0 seals explicitly per epoch")
	fs.Float64Var(&f.RateLimit, "rate-limit", f.RateLimit,
		"admission-control token rate (submissions/sec, burst = one second of rate); 0 admits everything")
}

// Validate rejects epoch flag values that used to fall through silently.
// It needs the parsed FlagSet to tell an explicit `-rate-limit 0` — which
// would quietly admit everything, the opposite of what a zero budget
// reads as — from the flag simply being left at its default.
func (f *EpochFlags) Validate(fs *flag.FlagSet) error {
	if f.Epochs < 0 {
		return fmt.Errorf("cli: -epochs %d is negative (0 runs a single classic round)", f.Epochs)
	}
	if f.Interval < 0 {
		return fmt.Errorf("cli: -epoch-interval %v is negative (0 seals explicitly)", f.Interval)
	}
	if f.RateLimit < 0 {
		return fmt.Errorf("cli: -rate-limit %v is negative (omit the flag to admit everything)", f.RateLimit)
	}
	if f.RateLimit == 0 && fs != nil {
		explicit := false
		fs.Visit(func(fl *flag.Flag) {
			if fl.Name == "rate-limit" {
				explicit = true
			}
		})
		if explicit {
			return fmt.Errorf("cli: -rate-limit 0 would admit everything, not nothing; omit the flag to disable admission control")
		}
	}
	return nil
}

// AdmissionConfig maps -rate-limit onto the epoch gate: the rate is the
// sustained budget and the burst one second of it (at least one token so a
// tiny rate still admits something).
func (f *EpochFlags) AdmissionConfig() epoch.AdmissionConfig {
	if f.RateLimit <= 0 {
		return epoch.AdmissionConfig{}
	}
	burst := f.RateLimit
	if burst < 1 {
		burst = 1
	}
	return epoch.AdmissionConfig{Rate: f.RateLimit, Burst: burst}
}
