package cli

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for ServePprof
	"os"
	"strings"
	"time"

	"lppa/internal/load"
	"lppa/internal/obs"
	"lppa/internal/obs/ops"
)

// ServePprof exposes net/http/pprof's default-mux handlers when addr is
// non-empty — the one -pprof-addr implementation all three commands
// share, so profiling a soak is always `go tool pprof
// http://addr/debug/pprof/profile`.
func ServePprof(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", ln.Addr())
	go http.Serve(ln, nil)
	return nil
}

// OpsFlags binds the ops-plane flags: the structured event log, the SLO
// burn-rate monitor (inline spec or a LOAD_*.json baseline), the
// deterministic trace sampler, the anonymity floor, and breach-time
// profile capture. The zero value leaves every pillar off.
type OpsFlags struct {
	Events      string
	SLOSpec     string
	SLOFile     string
	SLORun      string
	FastWindow  int
	SlowWindow  int
	AnonFloor   int
	SampleEvery int
	ProfileDir  string
}

// Register binds the ops flags onto fs, using the current field values as
// defaults.
func (f *OpsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Events, "ops-events", f.Events,
		"append structured ops events as JSONL to this file (- for stderr); empty keeps the in-memory ring only")
	fs.StringVar(&f.SLOSpec, "slo", f.SLOSpec,
		"inline SLO spec: comma-separated phase=ceiling pairs, e.g. round=250ms,allocate=80ms")
	fs.StringVar(&f.SLOFile, "slo-file", f.SLOFile,
		"load the SLO phase ceilings from this LOAD_*.json report (requires -slo-run)")
	fs.StringVar(&f.SLORun, "slo-run", f.SLORun,
		"run name inside -slo-file whose max_phase_p99_ms block becomes the ceilings")
	fs.IntVar(&f.FastWindow, "slo-fast-window", f.FastWindow,
		"samples in the fast burn-rate window (0 = monitor default)")
	fs.IntVar(&f.SlowWindow, "slo-slow-window", f.SlowWindow,
		"samples in the slow burn-rate window (0 = monitor default)")
	fs.IntVar(&f.AnonFloor, "anon-floor", f.AnonFloor,
		"alarm when an epoch's smallest anonymity set (bidders per tile) drops below this; 0 disables")
	fs.IntVar(&f.SampleEvery, "trace-sample", f.SampleEvery,
		"deterministically trace one epoch in every K with full spans (seeded, replayable); 0 disables sampling")
	fs.StringVar(&f.ProfileDir, "ops-profile-dir", f.ProfileDir,
		"capture heap and goroutine pprof profiles into this directory on each alarm transition")
}

// Validate rejects inconsistent ops flags right after Parse, before any
// listener or service comes up.
func (f *OpsFlags) Validate() error {
	if f.SampleEvery < 0 {
		return fmt.Errorf("cli: -trace-sample %d is negative (0 disables sampling)", f.SampleEvery)
	}
	if f.AnonFloor < 0 {
		return fmt.Errorf("cli: -anon-floor %d is negative (0 disables the floor)", f.AnonFloor)
	}
	if f.FastWindow < 0 || f.SlowWindow < 0 {
		return fmt.Errorf("cli: burn-rate windows must be non-negative (0 picks the default)")
	}
	if f.SLOSpec != "" && f.SLOFile != "" {
		return fmt.Errorf("cli: -slo and -slo-file are mutually exclusive")
	}
	if (f.SLOFile == "") != (f.SLORun == "") {
		return fmt.Errorf("cli: -slo-file and -slo-run go together")
	}
	if _, err := f.phases(); err != nil {
		return err
	}
	return nil
}

// Enabled reports whether any ops pillar was asked for — commands use it
// to decide whether a plane is worth building outside epoch mode.
func (f *OpsFlags) Enabled() bool {
	return f.Events != "" || f.SLOSpec != "" || f.SLOFile != "" ||
		f.AnonFloor > 0 || f.SampleEvery > 0 || f.ProfileDir != ""
}

// Sampler builds the deterministic 1-in-K trace sampler (nil when
// sampling is off). proc names the tracer's process row; seed makes the
// sampled epoch set replayable.
func (f *OpsFlags) Sampler(proc string, seed int64) *obs.TraceSampler {
	if f.SampleEvery <= 0 {
		return nil
	}
	return obs.NewTraceSampler(proc, seed, f.SampleEvery)
}

// phases resolves the inline -slo spec into per-phase ceilings.
func (f *OpsFlags) phases() (map[string]time.Duration, error) {
	if f.SLOSpec == "" {
		return nil, nil
	}
	phases := make(map[string]time.Duration)
	for _, pair := range strings.Split(f.SLOSpec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("cli: -slo entry %q, want phase=duration", pair)
		}
		d, err := time.ParseDuration(strings.TrimSpace(val))
		if err != nil {
			return nil, fmt.Errorf("cli: -slo %s: %w", name, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("cli: -slo %s=%v, ceiling must be positive", name, d)
		}
		phases[strings.TrimSpace(name)] = d
	}
	return phases, nil
}

// SLOConfig assembles the burn-rate monitor's config from the inline spec
// or the LOAD_*.json baseline. An empty result (no Phases) disables the
// monitor.
func (f *OpsFlags) SLOConfig() (ops.SLOConfig, error) {
	cfg := ops.SLOConfig{FastWindow: f.FastWindow, SlowWindow: f.SlowWindow}
	if f.SLOSpec != "" {
		phases, err := f.phases()
		if err != nil {
			return ops.SLOConfig{}, err
		}
		cfg.Phases = phases
		return cfg, nil
	}
	if f.SLOFile == "" {
		return cfg, nil
	}
	rep, err := load.ReadReport(f.SLOFile)
	if err != nil {
		return ops.SLOConfig{}, err
	}
	if rep.SLO == nil {
		return ops.SLOConfig{}, fmt.Errorf("cli: -slo-file %s has no SLO block", f.SLOFile)
	}
	ceilings, ok := rep.SLO.MaxPhaseP99Ms[f.SLORun]
	if !ok {
		return ops.SLOConfig{}, fmt.Errorf("cli: -slo-file %s records no phase ceilings for run %q", f.SLOFile, f.SLORun)
	}
	cfg.Phases = make(map[string]time.Duration, len(ceilings))
	for phase, ms := range ceilings {
		cfg.Phases[phase] = time.Duration(ms * float64(time.Millisecond))
	}
	return cfg, nil
}

// Plane assembles the ops plane: the event sink from -ops-events, the
// monitor from the SLO flags, and the alarm-path hooks (flight ring,
// sampler, profile capture). reg, flight, and sampler may each be nil.
func (f *OpsFlags) Plane(reg *obs.Registry, flight *obs.FlightRecorder, sampler *obs.TraceSampler) (*ops.Plane, error) {
	slo, err := f.SLOConfig()
	if err != nil {
		return nil, err
	}
	var sink *os.File
	switch f.Events {
	case "":
	case "-":
		sink = os.Stderr
	default:
		sink, err = os.Create(f.Events)
		if err != nil {
			return nil, fmt.Errorf("cli: ops event log: %w", err)
		}
	}
	var events *ops.EventLog
	if sink != nil {
		events = ops.NewEventLog(sink)
	} else {
		events = ops.NewEventLog(nil) // ring-only: /statusz still shows recent events
	}
	return ops.New(ops.Config{
		Registry:       reg,
		Events:         events,
		SLO:            slo,
		AnonymityFloor: f.AnonFloor,
		Flight:         flight,
		Sampler:        sampler,
		ProfileDir:     f.ProfileDir,
	}), nil
}
