// Package paillier implements the additively homomorphic Paillier
// cryptosystem, the primitive behind the secure-auction baseline the paper
// compares against (Pan, Sun, Fang — "Purging the back-room dealing:
// secure spectrum auction leveraging Paillier cryptosystem", IEEE JSAC
// 2011, the paper's reference [7]).
//
// The paper's argument for prefix-based masking over Paillier is cost:
// each Paillier operation is a modular exponentiation over a ≥2048-bit
// modulus and ciphertexts are kilobyte-sized, whereas an HMAC digest costs
// a microsecond and 16 bytes. This package exists so the benchmark harness
// can measure that comparison concretely (BenchmarkBaselinePaillier*)
// rather than citing it; it is a correct, test-covered implementation, but
// it is not hardened against side channels.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// PublicKey is a Paillier public key (n, g) with g = n+1, the standard
// efficient choice.
type PublicKey struct {
	N  *big.Int // modulus n = p·q
	N2 *big.Int // n²
}

// PrivateKey holds the decryption exponents λ = lcm(p−1, q−1) and the
// precomputed μ = L(g^λ mod n²)^−1 mod n.
type PrivateKey struct {
	PublicKey
	lambda *big.Int
	mu     *big.Int
}

// Errors.
var (
	ErrMessageRange = errors.New("paillier: message outside [0, n)")
	ErrCiphertext   = errors.New("paillier: ciphertext outside [0, n²)")
)

// GenerateKey creates a key pair with a modulus of the given bit size
// (≥ 512; use ≥ 2048 for real security, smaller sizes only in benchmarks
// and tests).
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 512 {
		return nil, fmt.Errorf("paillier: modulus size %d below 512 bits", bits)
	}
	one := big.NewInt(1)
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generate p: %w", err)
		}
		q, err := rand.Prime(random, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generate q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)

		n2 := new(big.Int).Mul(n, n)
		key := &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2},
			lambda:    lambda,
		}
		// μ = L(g^λ mod n²)^{-1} mod n with g = n+1:
		// g^λ = (1+n)^λ ≡ 1 + λ·n (mod n²), so L(g^λ) = λ mod n.
		lmod := new(big.Int).Mod(lambda, n)
		mu := new(big.Int).ModInverse(lmod, n)
		if mu == nil {
			continue // gcd(λ, n) ≠ 1; re-draw primes
		}
		key.mu = mu
		return key, nil
	}
}

// Encrypt returns E(m) = g^m · r^n mod n² for a fresh random r.
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, ErrMessageRange
	}
	// g = n+1 ⇒ g^m mod n² = 1 + m·n (binomial theorem), saving an exp.
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)

	r, err := pk.randomUnit(random)
	if err != nil {
		return nil, err
	}
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	return c.Mod(c, pk.N2), nil
}

// randomUnit draws r ∈ [1, n) with gcd(r, n) = 1.
func (pk *PublicKey) randomUnit(random io.Reader) (*big.Int, error) {
	one := big.NewInt(1)
	for {
		r, err := rand.Int(random, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: draw r: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Decrypt recovers m = L(c^λ mod n²) · μ mod n.
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() < 0 || c.Cmp(sk.N2) >= 0 {
		return nil, ErrCiphertext
	}
	u := new(big.Int).Exp(c, sk.lambda, sk.N2)
	l := sk.l(u)
	m := l.Mul(l, sk.mu)
	return m.Mod(m, sk.N), nil
}

// l computes L(u) = (u − 1) / n.
func (sk *PrivateKey) l(u *big.Int) *big.Int {
	out := new(big.Int).Sub(u, big.NewInt(1))
	return out.Div(out, sk.N)
}

// Add returns E(m1 + m2) = c1 · c2 mod n² — the additive homomorphism.
func (pk *PublicKey) Add(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pk.N2)
}

// MulConst returns E(k·m) = c^k mod n².
func (pk *PublicKey) MulConst(c *big.Int, k *big.Int) *big.Int {
	return new(big.Int).Exp(c, k, pk.N2)
}

// CiphertextBytes is the wire size of one ciphertext for this key.
func (pk *PublicKey) CiphertextBytes() int { return (pk.N2.BitLen() + 7) / 8 }
