package paillier

import (
	"fmt"
	"io"
	"math/big"
)

// BaselineBidSubmission models the Paillier-based secure-auction baseline
// (the paper's reference [7]) at the granularity the comparison needs: a
// bidder encrypts every per-channel bid under the auction authority's
// public key. Comparisons and winner selection then require interactive
// protocols between the auctioneer shares — which is exactly the
// communication cost the paper's scheme avoids — so for the cost
// comparison it suffices to measure encryption work and ciphertext volume
// per submission.
type BaselineBidSubmission struct {
	Ciphertexts []*big.Int
}

// EncryptBids encrypts a full bid vector for the baseline scheme.
func EncryptBids(pk *PublicKey, random io.Reader, bids []uint64) (*BaselineBidSubmission, error) {
	out := &BaselineBidSubmission{Ciphertexts: make([]*big.Int, len(bids))}
	for i, b := range bids {
		c, err := pk.Encrypt(random, new(big.Int).SetUint64(b))
		if err != nil {
			return nil, fmt.Errorf("paillier: bid %d: %w", i, err)
		}
		out.Ciphertexts[i] = c
	}
	return out, nil
}

// Bytes returns the wire size of the submission.
func (s *BaselineBidSubmission) Bytes(pk *PublicKey) int {
	return len(s.Ciphertexts) * pk.CiphertextBytes()
}

// DecryptBids recovers the plaintext vector (the authority side).
func DecryptBids(sk *PrivateKey, sub *BaselineBidSubmission) ([]uint64, error) {
	out := make([]uint64, len(sub.Ciphertexts))
	for i, c := range sub.Ciphertexts {
		m, err := sk.Decrypt(c)
		if err != nil {
			return nil, fmt.Errorf("paillier: bid %d: %w", i, err)
		}
		if !m.IsUint64() {
			return nil, fmt.Errorf("paillier: bid %d out of range", i)
		}
		out[i] = m.Uint64()
	}
	return out, nil
}

// SumBids homomorphically aggregates every bidder's bid on one channel —
// the kind of oblivious aggregation the baseline supports natively (and
// LPPA does not need).
func SumBids(pk *PublicKey, ciphertexts []*big.Int) *big.Int {
	if len(ciphertexts) == 0 {
		one := big.NewInt(1) // E(0) with r=1: valid identity ciphertext
		return one
	}
	acc := new(big.Int).Set(ciphertexts[0])
	for _, c := range ciphertexts[1:] {
		acc = pk.Add(acc, c)
	}
	return acc
}
