package paillier

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testKey is generated once: keygen dominates test time.
var (
	keyOnce sync.Once
	key     *PrivateKey
)

func testKeyPair(t *testing.T) *PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		k, err := GenerateKey(rand.Reader, 512)
		if err != nil {
			panic(err)
		}
		key = k
	})
	return key
}

func TestGenerateKeyRejectsTinyModulus(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 128); err == nil {
		t.Fatal("128-bit modulus accepted")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKeyPair(t)
	for _, m := range []int64{0, 1, 42, 1 << 40} {
		c, err := sk.Encrypt(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d -> %d", m, got.Int64())
		}
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	sk := testKeyPair(t)
	m := big.NewInt(7)
	a, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) == 0 {
		t.Error("two encryptions of the same message are identical")
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	sk := testKeyPair(t)
	prop := func(av, bv uint32) bool {
		a, b := big.NewInt(int64(av)), big.NewInt(int64(bv))
		ca, err := sk.Encrypt(rand.Reader, a)
		if err != nil {
			return false
		}
		cb, err := sk.Encrypt(rand.Reader, b)
		if err != nil {
			return false
		}
		sum, err := sk.Decrypt(sk.Add(ca, cb))
		if err != nil {
			return false
		}
		return sum.Int64() == int64(av)+int64(bv)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMulConst(t *testing.T) {
	sk := testKeyPair(t)
	c, err := sk.Encrypt(rand.Reader, big.NewInt(11))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sk.MulConst(c, big.NewInt(9)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 99 {
		t.Errorf("E(11)^9 decrypts to %d, want 99", got.Int64())
	}
}

func TestRangeValidation(t *testing.T) {
	sk := testKeyPair(t)
	if _, err := sk.Encrypt(rand.Reader, new(big.Int).Neg(big.NewInt(1))); err == nil {
		t.Error("negative message accepted")
	}
	if _, err := sk.Encrypt(rand.Reader, new(big.Int).Set(sk.N)); err == nil {
		t.Error("message = n accepted")
	}
	if _, err := sk.Decrypt(new(big.Int).Set(sk.N2)); err == nil {
		t.Error("ciphertext = n² accepted")
	}
}

func TestBaselineBidVector(t *testing.T) {
	sk := testKeyPair(t)
	bids := []uint64{0, 7, 100, 55}
	sub, err := EncryptBids(&sk.PublicKey, rand.Reader, bids)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Bytes(&sk.PublicKey); got < len(bids)*sk.N.BitLen()/8 {
		t.Errorf("submission bytes = %d implausibly small", got)
	}
	dec, err := DecryptBids(sk, sub)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bids {
		if dec[i] != bids[i] {
			t.Errorf("bid %d: %d != %d", i, dec[i], bids[i])
		}
	}
}

func TestSumBids(t *testing.T) {
	sk := testKeyPair(t)
	bids := []uint64{3, 4, 5}
	sub, err := EncryptBids(&sk.PublicKey, rand.Reader, bids)
	if err != nil {
		t.Fatal(err)
	}
	total, err := sk.Decrypt(SumBids(&sk.PublicKey, sub.Ciphertexts))
	if err != nil {
		t.Fatal(err)
	}
	if total.Int64() != 12 {
		t.Errorf("homomorphic sum = %d, want 12", total.Int64())
	}
	// Empty aggregation is the identity.
	zero, err := sk.Decrypt(SumBids(&sk.PublicKey, nil))
	if err != nil {
		t.Fatal(err)
	}
	if zero.Sign() != 0 {
		t.Errorf("empty sum = %v, want 0", zero)
	}
}
