package dataset

import (
	"bytes"
	"path/filepath"
	"testing"

	"lppa/internal/geo"
)

// smallConfig keeps generation fast in unit tests.
func smallConfig() Config {
	return Config{
		Grid:     geo.Grid{Rows: 20, Cols: 20, SideMeters: 75_000},
		Channels: 12,
		Profiles: LAProfiles(),
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for ai := range a.Areas {
		for r := range a.Areas[ai].Coverage {
			qa := a.Areas[ai].Coverage[r].Quality
			qb := b.Areas[ai].Coverage[r].Quality
			for i := range qa {
				if qa[i] != qb[i] {
					t.Fatalf("area %d channel %d cell %d differs across runs", ai, r, i)
				}
			}
		}
	}
	c, err := Generate(smallConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
outer:
	for ai := range a.Areas {
		for r := range a.Areas[ai].Coverage {
			if a.Areas[ai].Coverage[r].Available.Count() != c.Areas[ai].Coverage[r].Available.Count() {
				same = false
				break outer
			}
		}
	}
	if same {
		t.Error("different seeds produced identical availability everywhere (suspicious)")
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(smallConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Areas) != 4 {
		t.Fatalf("areas = %d, want 4", len(ds.Areas))
	}
	for _, a := range ds.Areas {
		if a.NumChannels() != 12 {
			t.Errorf("%s: channels = %d, want 12", a.Name, a.NumChannels())
		}
		for r, cm := range a.Coverage {
			if cm.ChannelID != r {
				t.Errorf("%s channel %d: ID = %d", a.Name, r, cm.ChannelID)
			}
			if len(cm.Quality) != a.Grid.NumCells() {
				t.Errorf("%s channel %d: quality len %d", a.Name, r, len(cm.Quality))
			}
		}
	}
}

func TestAvailableSetAndQualityConsistent(t *testing.T) {
	ds, err := Generate(smallConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a := ds.Areas[3]
	for _, cell := range []geo.Cell{{Row: 0, Col: 0}, {Row: 10, Col: 7}, {Row: 19, Col: 19}} {
		as := a.AvailableSet(cell)
		q := a.Quality(cell)
		inAS := map[int]bool{}
		for _, r := range as {
			inAS[r] = true
		}
		for r := range q {
			if inAS[r] != (q[r] > 0) {
				t.Fatalf("%s cell %v channel %d: available=%v quality=%f",
					a.Name, cell, r, inAS[r], q[r])
			}
		}
	}
}

func TestUrbanVsRuralAvailability(t *testing.T) {
	// Rural areas must expose more available spectrum per cell on average
	// than the urban core (fringe coverage vs blanket coverage); this is
	// the terrain contrast Fig. 4(c) relies on.
	ds, err := Generate(smallConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	avgAvail := func(a *Area) float64 {
		total := 0
		for _, cm := range a.Coverage {
			total += cm.Available.Count()
		}
		return float64(total) / float64(len(a.Coverage)*a.Grid.NumCells())
	}
	urban := avgAvail(ds.Areas[0])
	rural := avgAvail(ds.Areas[3])
	if rural <= urban {
		t.Errorf("rural availability %.3f should exceed urban %.3f", rural, urban)
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 0
	if _, err := Generate(cfg, 1); err == nil {
		t.Error("channels=0 accepted")
	}
	cfg = smallConfig()
	cfg.Profiles = nil
	if _, err := Generate(cfg, 1); err == nil {
		t.Error("no profiles accepted")
	}
	cfg = smallConfig()
	cfg.Grid.Rows = 0
	if _, err := Generate(cfg, 1); err == nil {
		t.Error("bad grid accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, err := Generate(smallConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != ds.Seed || len(got.Areas) != len(ds.Areas) {
		t.Fatalf("header mismatch: seed=%d areas=%d", got.Seed, len(got.Areas))
	}
	for ai := range ds.Areas {
		want, have := ds.Areas[ai], got.Areas[ai]
		if want.Name != have.Name || want.Grid != have.Grid {
			t.Fatalf("area %d metadata mismatch", ai)
		}
		for r := range want.Coverage {
			if !want.Coverage[r].Available.Equal(have.Coverage[r].Available) {
				t.Fatalf("area %d channel %d availability mismatch", ai, r)
			}
			for i := range want.Coverage[r].Quality {
				if want.Coverage[r].Quality[i] != have.Coverage[r].Quality[i] {
					t.Fatalf("area %d channel %d quality mismatch at %d", ai, r, i)
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a dataset"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadOrGenerateCaches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.gob")
	cfg := smallConfig()
	first, err := LoadOrGenerate(path, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	second, err := LoadOrGenerate(path, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Areas[0].Coverage[0].Available.Equal(second.Areas[0].Coverage[0].Available) {
		t.Error("cached dataset differs from generated one")
	}
	// A different seed must ignore the stale cache.
	third, err := LoadOrGenerate(path, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if third.Seed != 10 {
		t.Errorf("seed = %d, want 10", third.Seed)
	}
}

func TestLAProfilesShape(t *testing.T) {
	ps := LAProfiles()
	if len(ps) != 4 {
		t.Fatalf("profiles = %d, want 4", len(ps))
	}
	for _, p := range ps {
		if p.TowerProb <= 0 || p.TowerProb > 1 {
			t.Errorf("%s: tower prob %f", p.Name, p.TowerProb)
		}
		if p.PowerMinDBm >= p.PowerMaxDBm {
			t.Errorf("%s: power range [%f,%f]", p.Name, p.PowerMinDBm, p.PowerMaxDBm)
		}
		if p.MaxTowers < 1 {
			t.Errorf("%s: max towers %d", p.Name, p.MaxTowers)
		}
	}
}
