package dataset

import (
	"math/rand"
	"testing"

	"lppa/internal/geo"
)

func TestParseDensity(t *testing.T) {
	for _, name := range []string{"urban", "rural", "mixed"} {
		m, err := ParseDensity(name)
		if err != nil {
			t.Fatalf("ParseDensity(%q): %v", name, err)
		}
		if m.Name != name {
			t.Fatalf("ParseDensity(%q).Name = %q", name, m.Name)
		}
	}
	if _, err := ParseDensity("suburban"); err == nil {
		t.Fatal("ParseDensity accepted an unknown mix")
	}
}

// TestDensityMixGeometry pins the regimes the mixes exist to produce: the
// urban mix concentrates the population onto far fewer distinct cells than
// the rural mix spreads it over, every cell stays on-grid, and placement is
// deterministic under a fixed seed.
func TestDensityMixGeometry(t *testing.T) {
	g := geo.Grid{Rows: 100, Cols: 100, SideMeters: 75_000}
	const n = 500
	distinct := map[string]int{}
	for _, m := range []DensityMix{UrbanMix(), RuralMix(), MixedMix()} {
		cells := m.Cells(g, n, rand.New(rand.NewSource(1)))
		if len(cells) != n {
			t.Fatalf("%s: %d cells, want %d", m.Name, len(cells), n)
		}
		seen := map[geo.Cell]bool{}
		for _, c := range cells {
			if c.Row < 0 || c.Row >= g.Rows || c.Col < 0 || c.Col >= g.Cols {
				t.Fatalf("%s: cell %+v off grid", m.Name, c)
			}
			seen[c] = true
		}
		distinct[m.Name] = len(seen)

		again := m.Cells(g, n, rand.New(rand.NewSource(1)))
		for i := range cells {
			if cells[i] != again[i] {
				t.Fatalf("%s: placement not deterministic at index %d", m.Name, i)
			}
		}
	}
	if distinct["urban"]*2 >= distinct["rural"] {
		t.Fatalf("urban occupies %d distinct cells vs rural %d — expected heavy clustering",
			distinct["urban"], distinct["rural"])
	}
	if distinct["mixed"] <= distinct["urban"] || distinct["mixed"] >= distinct["rural"] {
		t.Fatalf("mixed occupies %d distinct cells, want between urban %d and rural %d",
			distinct["mixed"], distinct["urban"], distinct["rural"])
	}
}

// TestDensityPoints pins the Cells→Points mapping against geo.PointOf.
func TestDensityPoints(t *testing.T) {
	g := geo.Grid{Rows: 30, Cols: 30, SideMeters: 75_000}
	m := MixedMix()
	cells := m.Cells(g, 40, rand.New(rand.NewSource(9)))
	pts := m.Points(g, 40, rand.New(rand.NewSource(9)))
	for i, c := range cells {
		if pts[i] != geo.PointOf(c) {
			t.Fatalf("point %d = %+v, want %+v", i, pts[i], geo.PointOf(c))
		}
	}
}
