// Package dataset synthesizes the evaluation dataset of the paper: four
// 75 km × 75 km areas around a metropolis, each gridded 100 × 100, with the
// availability and quality of 129 TV channels per cell.
//
// The paper extracted these maps from FCC data published on TVFool for Los
// Angeles. The raw data is no longer obtainable in a reproducible way, so
// this package regenerates statistically equivalent maps from a seeded RF
// simulation (see DESIGN.md §2): per-channel primary transmitters are
// placed with area-specific density and power, propagation follows a
// log-distance model with terrain-specific exponent and shadowing, and
// availability thresholds at −81 dBm exactly as in the paper. What the
// attacks and protocols consume — boolean availability per (cell, channel)
// and scalar quality per (cell, channel) — has the same structure as the
// original maps: urban areas see many strong overlapping signals (large
// leftover position sets), rural areas see fragmented fringe coverage
// (tight intersections), which is the contrast Fig. 4(c) reports.
package dataset

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"lppa/internal/geo"
	"lppa/internal/radio"
)

// NumChannels is the paper's Los Angeles channel count.
const NumChannels = 129

// AreaProfile parameterizes the RF character of one area.
type AreaProfile struct {
	// Name identifies the area in reports ("Area 1" … "Area 4").
	Name string
	// Exponent and ShadowSigmaDB feed the path-loss model.
	Exponent      float64
	ShadowSigmaDB float64
	// ShadowCorrM is the shadowing correlation length: shorter in rugged
	// rural terrain (fragmented coverage fringes), longer over flat urban
	// sprawl (smooth contours).
	ShadowCorrM float64
	// TowerProb is the probability that a given channel has at least one
	// tower serving this area; towerless channels are available
	// everywhere and carry no location information.
	TowerProb float64
	// MaxTowers bounds the transmitters per channel (uniform 1..MaxTowers
	// when the channel has any).
	MaxTowers int
	// PowerMinDBm and PowerMaxDBm bound tower ERP. Higher power means a
	// larger protected contour and less available area.
	PowerMinDBm, PowerMaxDBm float64
	// Sites is the number of shared transmitter sites. Real broadcast
	// towers cluster on a few mountains/masts (most LA stations share
	// Mt Wilson), which makes per-channel coverage maps heavily
	// correlated — the property that keeps BCM intersections from
	// collapsing to a point.
	Sites int
	// SiteProb is the probability a tower sits on a shared site (with
	// ~2 km jitter) rather than at an independent location.
	SiteProb float64
}

// LAProfiles returns the four area profiles used throughout the
// experiments. The ordering matches the paper's numbering; Areas 1–2 are
// urban (dense, strong, smooth coverage → attacks less effective), Area 3
// is suburban (the LPPA-evaluation area), Area 4 is rural (fringe coverage,
// attacks most effective).
func LAProfiles() []AreaProfile {
	return []AreaProfile{
		{Name: "Area 1 (urban core)", Exponent: 3.8, ShadowSigmaDB: 3.5, ShadowCorrM: 9000, TowerProb: 0.92, MaxTowers: 3, PowerMinDBm: 60, PowerMaxDBm: 68, Sites: 3, SiteProb: 0.97},
		{Name: "Area 2 (urban sprawl)", Exponent: 3.5, ShadowSigmaDB: 3.0, ShadowCorrM: 10_000, TowerProb: 0.96, MaxTowers: 3, PowerMinDBm: 58, PowerMaxDBm: 66, Sites: 4, SiteProb: 0.97},
		{Name: "Area 3 (suburban)", Exponent: 3.0, ShadowSigmaDB: 6.0, ShadowCorrM: 6000, TowerProb: 0.85, MaxTowers: 2, PowerMinDBm: 50, PowerMaxDBm: 58, Sites: 4, SiteProb: 0.94},
		{Name: "Area 4 (rural)", Exponent: 2.6, ShadowSigmaDB: 8.0, ShadowCorrM: 4000, TowerProb: 0.75, MaxTowers: 1, PowerMinDBm: 40, PowerMaxDBm: 48, Sites: 5, SiteProb: 0.90},
	}
}

// Area is one evaluation region: a grid plus per-channel coverage maps.
type Area struct {
	Name     string
	Grid     geo.Grid
	Profile  AreaProfile
	Channels []radio.Channel
	// Coverage is indexed by channel (0-based); Coverage[r] describes
	// channel r over the area's grid.
	Coverage []*radio.CoverageMap
}

// NumChannels reports how many channels the area carries.
func (a *Area) NumChannels() int { return len(a.Coverage) }

// AvailableSet returns the indices of channels available to an SU in cell
// c (the paper's AS(i)).
func (a *Area) AvailableSet(c geo.Cell) []int {
	out := make([]int, 0, len(a.Coverage))
	for r, cm := range a.Coverage {
		if cm.AvailableAt(c) {
			out = append(out, r)
		}
	}
	return out
}

// Quality returns the ground-truth quality vector q*_r(c) for all channels
// in cell c; the BPM attacker is assumed to hold exactly this table.
func (a *Area) Quality(c geo.Cell) []float64 {
	out := make([]float64, len(a.Coverage))
	for r, cm := range a.Coverage {
		out[r] = cm.QualityAt(c)
	}
	return out
}

// Dataset bundles the four areas.
type Dataset struct {
	Areas []*Area
	// Seed reproduces the dataset via Generate.
	Seed int64
}

// Config controls dataset generation.
type Config struct {
	Grid     geo.Grid
	Channels int
	Profiles []AreaProfile
	// ThresholdDBm is the availability threshold (defaults to the paper's
	// −81 dBm when zero; a zero threshold is not meaningful for RSSI).
	ThresholdDBm float64
}

// DefaultConfig is the paper's setup: 100×100 cells over 75 km, 129
// channels, four LA-like areas, −81 dBm.
func DefaultConfig() Config {
	return Config{
		Grid:         geo.DefaultGrid(),
		Channels:     NumChannels,
		Profiles:     LAProfiles(),
		ThresholdDBm: radio.FCCThresholdDBm,
	}
}

// Generate builds the dataset deterministically from seed.
func Generate(cfg Config, seed int64) (*Dataset, error) {
	if err := cfg.Grid.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("dataset: need at least one channel, got %d", cfg.Channels)
	}
	if len(cfg.Profiles) == 0 {
		return nil, fmt.Errorf("dataset: need at least one area profile")
	}
	if cfg.ThresholdDBm == 0 {
		cfg.ThresholdDBm = radio.FCCThresholdDBm
	}
	ds := &Dataset{Seed: seed, Areas: make([]*Area, 0, len(cfg.Profiles))}
	for ai, prof := range cfg.Profiles {
		rng := rand.New(rand.NewSource(seed + int64(ai)*1_000_003))
		area, err := generateArea(cfg, prof, ai, rng)
		if err != nil {
			return nil, fmt.Errorf("dataset: area %d: %w", ai, err)
		}
		ds.Areas = append(ds.Areas, area)
	}
	return ds, nil
}

// GenerateLA is shorthand for Generate(DefaultConfig(), seed).
func GenerateLA(seed int64) (*Dataset, error) {
	return Generate(DefaultConfig(), seed)
}

func generateArea(cfg Config, prof AreaProfile, areaIdx int, rng *rand.Rand) (*Area, error) {
	model := radio.PathLoss{
		Exponent:      prof.Exponent,
		RefLossDB:     88,
		RefDistM:      1000,
		ShadowSigmaDB: prof.ShadowSigmaDB,
		ShadowCorrM:   prof.ShadowCorrM,
		Seed:          uint64(areaIdx + 1),
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	area := &Area{
		Name:     prof.Name,
		Grid:     cfg.Grid,
		Profile:  prof,
		Channels: make([]radio.Channel, 0, cfg.Channels),
		Coverage: make([]*radio.CoverageMap, 0, cfg.Channels),
	}
	side := cfg.Grid.SideMeters
	// Shared transmitter sites (broadcast masts); towers mostly cluster
	// on them, mirroring the co-location of real TV transmitters.
	nSites := prof.Sites
	if nSites < 1 {
		nSites = 1
	}
	type site struct{ x, y float64 }
	sites := make([]site, nSites)
	for i := range sites {
		sites[i] = site{
			x: (rng.Float64()*1.2 - 0.1) * side,
			y: (rng.Float64()*1.2 - 0.1) * side,
		}
	}
	// Tower placement consumes the area's RNG sequentially (determinism);
	// the expensive per-cell coverage evaluation is pure and parallelizes
	// across channels.
	const siteJitterM = 2000
	for r := 0; r < cfg.Channels; r++ {
		ch := radio.Channel{ID: r}
		if rng.Float64() < prof.TowerProb {
			n := 1 + rng.Intn(prof.MaxTowers)
			for t := 0; t < n; t++ {
				var x, y float64
				if rng.Float64() < prof.SiteProb {
					st := sites[rng.Intn(len(sites))]
					x = st.x + (rng.Float64()*2-1)*siteJitterM
					y = st.y + (rng.Float64()*2-1)*siteJitterM
				} else {
					// Independent tower anywhere in a margin-extended box,
					// so contours can also enter from outside the area.
					x = (rng.Float64()*1.4 - 0.2) * side
					y = (rng.Float64()*1.4 - 0.2) * side
				}
				ch.Towers = append(ch.Towers, radio.Tower{
					X:        x,
					Y:        y,
					PowerDBm: prof.PowerMinDBm + rng.Float64()*(prof.PowerMaxDBm-prof.PowerMinDBm),
				})
			}
		}
		area.Channels = append(area.Channels, ch)
	}

	area.Coverage = make([]*radio.CoverageMap, cfg.Channels)
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Channels {
		workers = cfg.Channels
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				area.Coverage[r] = radio.ComputeCoverage(cfg.Grid, area.Channels[r], model, cfg.ThresholdDBm)
			}
		}()
	}
	for r := 0; r < cfg.Channels; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	return area, nil
}
