package dataset

import (
	"fmt"
	"math/rand"

	"lppa/internal/geo"
)

// Density mixes (DESIGN.md §5f): reusable bidder placements spanning the
// two regimes the indexed conflict-candidate generation must be measured
// under. Dense urban — most bidders piled into a few hotspots — drives
// heavy posting-list skew and a candidate set approaching all pairs (the
// skew guard's territory); sparse rural — uniform placement — keeps
// posting lists short so the candidate set collapses far below n². The
// mixes feed lppa-sim -density, the PR-6 benchmarks, and any harness that
// wants a named, reproducible geometry instead of ad-hoc scatter.

// DensityMix describes how a population is laid out on a grid: an urban
// fraction placed around clustered hotspots, the remainder uniform.
type DensityMix struct {
	// Name identifies the mix in flags and reports.
	Name string
	// UrbanFrac is the fraction of bidders placed around cluster centers
	// (0 = fully uniform, 1 = fully clustered).
	UrbanFrac float64
	// Clusters is the hotspot count for the urban share.
	Clusters int
	// SpreadCells is the per-cluster scatter (standard deviation, in
	// cells) around each hotspot.
	SpreadCells float64
	// Lambda is the interference half-range (in cells) the mix is
	// calibrated for — urban geometries pair with a larger λ so conflict
	// neighborhoods saturate, rural with a smaller one. Consumers that
	// already fix λ elsewhere may ignore it.
	Lambda uint64
}

// UrbanMix is the dense regime: everyone in a handful of tight hotspots,
// posting lists pathologically hot, candidate set ≈ all pairs.
func UrbanMix() DensityMix {
	return DensityMix{Name: "urban", UrbanFrac: 1, Clusters: 3, SpreadCells: 2, Lambda: 3}
}

// RuralMix is the sparse regime: uniform placement, short posting lists,
// candidate set ≪ n².
func RuralMix() DensityMix {
	return DensityMix{Name: "rural", UrbanFrac: 0, Lambda: 2}
}

// MixedMix blends both: half the population in suburbs-sized clusters over
// a uniform backdrop.
func MixedMix() DensityMix {
	return DensityMix{Name: "mixed", UrbanFrac: 0.5, Clusters: 4, SpreadCells: 3, Lambda: 2}
}

// ParseDensity resolves a mix by flag name ("urban", "rural", "mixed").
func ParseDensity(name string) (DensityMix, error) {
	switch name {
	case "urban":
		return UrbanMix(), nil
	case "rural":
		return RuralMix(), nil
	case "mixed":
		return MixedMix(), nil
	}
	return DensityMix{}, fmt.Errorf("dataset: unknown density mix %q (want urban, rural, or mixed)", name)
}

// Cells places n bidders on g under the mix: the first ⌊n·UrbanFrac⌉
// bidders scatter normally around uniformly drawn cluster centers (clamped
// to the grid), the rest land uniformly. Same rng, same grid, same n —
// same placement.
func (m DensityMix) Cells(g geo.Grid, n int, rng *rand.Rand) []geo.Cell {
	clusters := m.Clusters
	if clusters < 1 {
		clusters = 1
	}
	type center struct{ row, col float64 }
	centers := make([]center, clusters)
	for i := range centers {
		centers[i] = center{row: float64(rng.Intn(g.Rows)), col: float64(rng.Intn(g.Cols))}
	}
	clamp := func(v float64, hi int) int {
		i := int(v + 0.5)
		if i < 0 {
			return 0
		}
		if i >= hi {
			return hi - 1
		}
		return i
	}
	urban := int(float64(n)*m.UrbanFrac + 0.5)
	cells := make([]geo.Cell, n)
	for i := range cells {
		if i < urban {
			c := centers[rng.Intn(clusters)]
			cells[i] = geo.Cell{
				Row: clamp(c.row+rng.NormFloat64()*m.SpreadCells, g.Rows),
				Col: clamp(c.col+rng.NormFloat64()*m.SpreadCells, g.Cols),
			}
		} else {
			cells[i] = geo.Cell{Row: rng.Intn(g.Rows), Col: rng.Intn(g.Cols)}
		}
	}
	return cells
}

// Points is Cells mapped into coordinate space (the location-submission
// domain).
func (m DensityMix) Points(g geo.Grid, n int, rng *rand.Rand) []geo.Point {
	cells := m.Cells(g, n, rng)
	pts := make([]geo.Point, n)
	for i, c := range cells {
		pts[i] = geo.PointOf(c)
	}
	return pts
}
