package dataset

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"lppa/internal/geo"
	"lppa/internal/radio"
)

// The on-disk format stores, per channel, only the quality array: quality
// is zero exactly when the channel is unavailable, so availability bitsets
// are reconstructed on load. A version tag guards against stale caches.

const fileVersion = 1

type fileHeader struct {
	Version int
	Seed    int64
}

type fileArea struct {
	Name      string
	Profile   AreaProfile
	Grid      geo.Grid
	Channels  []radio.Channel
	Qualities [][]float64
}

// Save writes the dataset to w in a self-describing binary format.
// Generating the full LA dataset takes a few seconds; experiments cache it
// on disk between runs.
func Save(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(fileHeader{Version: fileVersion, Seed: ds.Seed}); err != nil {
		return fmt.Errorf("dataset: encode header: %w", err)
	}
	if err := enc.Encode(len(ds.Areas)); err != nil {
		return fmt.Errorf("dataset: encode area count: %w", err)
	}
	for _, a := range ds.Areas {
		fa := fileArea{
			Name:      a.Name,
			Profile:   a.Profile,
			Grid:      a.Grid,
			Channels:  a.Channels,
			Qualities: make([][]float64, len(a.Coverage)),
		}
		for r, cm := range a.Coverage {
			fa.Qualities[r] = cm.Quality
		}
		if err := enc.Encode(fa); err != nil {
			return fmt.Errorf("dataset: encode area %q: %w", a.Name, err)
		}
	}
	return bw.Flush()
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var hdr fileHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("dataset: decode header: %w", err)
	}
	if hdr.Version != fileVersion {
		return nil, fmt.Errorf("dataset: unsupported file version %d (want %d)", hdr.Version, fileVersion)
	}
	var nAreas int
	if err := dec.Decode(&nAreas); err != nil {
		return nil, fmt.Errorf("dataset: decode area count: %w", err)
	}
	if nAreas < 0 || nAreas > 1024 {
		return nil, fmt.Errorf("dataset: implausible area count %d", nAreas)
	}
	ds := &Dataset{Seed: hdr.Seed, Areas: make([]*Area, 0, nAreas)}
	for i := 0; i < nAreas; i++ {
		var fa fileArea
		if err := dec.Decode(&fa); err != nil {
			return nil, fmt.Errorf("dataset: decode area %d: %w", i, err)
		}
		if err := fa.Grid.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: area %d: %w", i, err)
		}
		a := &Area{
			Name:     fa.Name,
			Profile:  fa.Profile,
			Grid:     fa.Grid,
			Channels: fa.Channels,
			Coverage: make([]*radio.CoverageMap, 0, len(fa.Qualities)),
		}
		for r, q := range fa.Qualities {
			if len(q) != fa.Grid.NumCells() {
				return nil, fmt.Errorf("dataset: area %d channel %d: %d quality cells, want %d",
					i, r, len(q), fa.Grid.NumCells())
			}
			cm := &radio.CoverageMap{
				ChannelID: r,
				Grid:      fa.Grid,
				Available: geo.NewCellSet(fa.Grid),
				Quality:   q,
			}
			for idx, qv := range q {
				if qv > 0 {
					cm.Available.Add(fa.Grid.CellAt(idx))
				}
			}
			a.Coverage = append(a.Coverage, cm)
		}
		ds.Areas = append(ds.Areas, a)
	}
	return ds, nil
}

// LoadOrGenerate returns the dataset cached at path, generating and caching
// it when absent or unreadable. It is the entry point the experiment
// drivers use.
func LoadOrGenerate(path string, cfg Config, seed int64) (*Dataset, error) {
	if f, err := os.Open(path); err == nil {
		defer f.Close()
		if ds, err := Load(f); err == nil && ds.Seed == seed {
			return ds, nil
		}
		// Fall through: stale or corrupt cache is regenerated.
	}
	ds, err := Generate(cfg, seed)
	if err != nil {
		return nil, err
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return ds, nil // cache failure is not fatal
		}
		defer f.Close()
		if err := Save(f, ds); err != nil {
			os.Remove(path)
		}
	}
	return ds, nil
}
