package auction

import (
	"fmt"
	"math/rand"
	"sort"

	"lppa/internal/conflict"
)

// AllocateGlobalGreedy is an alternative allocation strategy used as an
// ablation against the paper's Algorithm 3: instead of visiting channels
// in random order and awarding each column's maximum, it considers every
// (bidder, channel) bid in globally descending order and awards a bid when
// the bidder is still unserved and no conflicting neighbor already holds
// that channel.
//
// Global greedy extracts more revenue (it never lets a weak column pick
// consume a strong bidder) but requires a *total order over all bids of
// all channels* — which LPPA's per-channel keys deliberately destroy. The
// ablation therefore quantifies what the paper's privacy design costs in
// allocator freedom: Algorithm 3 is the strongest greedy the masked
// transcript still supports.
//
// bids[i][r] is the plaintext bid table; zero bids never win. Ties break
// by a deterministic shuffle seeded from rng so repeated runs agree.
func AllocateGlobalGreedy(bids [][]uint64, g *conflict.Graph, rng *rand.Rand) ([]Assignment, error) {
	n := len(bids)
	if n == 0 {
		return nil, fmt.Errorf("auction: no bidders")
	}
	if g.N() != n {
		return nil, fmt.Errorf("auction: conflict graph has %d nodes, want %d", g.N(), n)
	}
	k := len(bids[0])
	type cell struct {
		bidder, channel int
		bid             uint64
		tie             int64
	}
	cells := make([]cell, 0, n*k)
	for i := range bids {
		if len(bids[i]) != k {
			return nil, fmt.Errorf("auction: bidder %d has %d bids, want %d", i, len(bids[i]), k)
		}
		for r, b := range bids[i] {
			if b > 0 {
				cells = append(cells, cell{bidder: i, channel: r, bid: b, tie: rng.Int63()})
			}
		}
	}
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].bid != cells[b].bid {
			return cells[a].bid > cells[b].bid
		}
		return cells[a].tie < cells[b].tie
	})

	served := make([]bool, n)
	holders := make([][]int, k) // winners per channel so far
	var out []Assignment
	for _, c := range cells {
		if served[c.bidder] {
			continue
		}
		blocked := false
		for _, h := range holders[c.channel] {
			if g.HasEdge(c.bidder, h) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		served[c.bidder] = true
		holders[c.channel] = append(holders[c.channel], c.bidder)
		out = append(out, Assignment{Bidder: c.bidder, Channel: c.channel})
	}
	return out, nil
}

// RunGlobalGreedy wraps AllocateGlobalGreedy with first-price charging,
// mirroring RunPlain.
func RunGlobalGreedy(bids [][]uint64, g *conflict.Graph, rng *rand.Rand) (*Outcome, error) {
	assignments, err := AllocateGlobalGreedy(bids, g, rng)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Assignments: assignments, Charges: make([]uint64, len(assignments)), Bidders: len(bids)}
	for ai, a := range assignments {
		price := bids[a.Bidder][a.Channel]
		out.Charges[ai] = price
		out.Revenue += price
		out.SatisfiedBidders++
	}
	return out, nil
}
