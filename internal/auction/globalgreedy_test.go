package auction

import (
	"math/rand"
	"testing"

	"lppa/internal/conflict"
	"lppa/internal/geo"
)

func TestGlobalGreedyAwardsHighestBidFirst(t *testing.T) {
	bids := [][]uint64{{10, 0}, {90, 5}, {40, 80}}
	g := conflict.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2) // clique: one winner per channel
	out, err := RunGlobalGreedy(bids, g, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// 90 (bidder 1, ch 0) then 80 (bidder 2, ch 1) then bidder 0 blocked.
	if len(out.Assignments) != 2 {
		t.Fatalf("assignments = %v", out.Assignments)
	}
	if out.Assignments[0].Bidder != 1 || out.Assignments[0].Channel != 0 {
		t.Errorf("first award = %+v, want bidder 1 channel 0", out.Assignments[0])
	}
	if out.Revenue != 170 {
		t.Errorf("revenue = %d, want 170", out.Revenue)
	}
}

func TestGlobalGreedyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, k, lambda = 40, 8, 4
	points := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(50)), Y: uint64(rng.Intn(50))}
		bids[i] = make([]uint64, k)
		for r := range bids[i] {
			if rng.Intn(3) > 0 {
				bids[i][r] = uint64(rng.Intn(100)) + 1
			}
		}
	}
	g := conflict.BuildPlain(points, lambda)
	as, err := AllocateGlobalGreedy(bids, g, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyInterferenceFree(as, g); err != nil {
		t.Error(err)
	}
	if err := VerifyOneChannelPerBidder(as); err != nil {
		t.Error(err)
	}
	for _, a := range as {
		if bids[a.Bidder][a.Channel] == 0 {
			t.Errorf("zero bid awarded: %+v", a)
		}
	}
}

func TestGlobalGreedyBeatsOrMatchesAlgorithm3Revenue(t *testing.T) {
	// The ablation's point: with full plaintext order, global greedy
	// should extract at least as much revenue on average as Algorithm 3.
	rng := rand.New(rand.NewSource(3))
	var globalSum, alg3Sum float64
	for trial := 0; trial < 10; trial++ {
		const n, k = 30, 6
		points := make([]geo.Point, n)
		bids := make([][]uint64, n)
		for i := range points {
			points[i] = geo.Point{X: uint64(rng.Intn(40)), Y: uint64(rng.Intn(40))}
			bids[i] = make([]uint64, k)
			for r := range bids[i] {
				if rng.Intn(2) == 0 {
					bids[i][r] = uint64(rng.Intn(100)) + 1
				}
			}
		}
		g := conflict.BuildPlain(points, 5)
		global, err := RunGlobalGreedy(bids, g, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatal(err)
		}
		alg3, err := RunPlain(bids, g, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatal(err)
		}
		globalSum += float64(global.Revenue)
		alg3Sum += float64(alg3.Revenue)
	}
	if globalSum < alg3Sum {
		t.Errorf("global greedy revenue %.0f below Algorithm 3's %.0f", globalSum, alg3Sum)
	}
}

func TestGlobalGreedyValidation(t *testing.T) {
	if _, err := AllocateGlobalGreedy(nil, conflict.NewGraph(0), rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := AllocateGlobalGreedy([][]uint64{{1}}, conflict.NewGraph(2), rand.New(rand.NewSource(1))); err == nil {
		t.Error("graph size mismatch accepted")
	}
	if _, err := AllocateGlobalGreedy([][]uint64{{1, 2}, {3}}, conflict.NewGraph(2), rand.New(rand.NewSource(1))); err == nil {
		t.Error("ragged bids accepted")
	}
}

func TestGlobalGreedyReuse(t *testing.T) {
	// Non-conflicting bidders share the single channel.
	bids := [][]uint64{{10}, {20}}
	g := conflict.NewGraph(2)
	as, err := AllocateGlobalGreedy(bids, g, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Errorf("reuse failed: %v", as)
	}
}
