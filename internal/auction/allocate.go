// Package auction implements the spectrum allocation and charging machinery
// shared by the plaintext baseline and LPPA's private auction.
//
// The allocator is the paper's Algorithm 3: repeatedly pick a channel
// uniformly at random, award it to the highest remaining bidder in that
// column, delete the winner's row (each buyer pursues one channel) and the
// winner's conflict neighbors' bids on that channel (so a well-separated
// bidder can win the same channel later — spectrum reuse). The only
// operation it needs on bids is a greater-or-equal comparison within one
// column, which the private auction supplies via masked prefix
// intersection; the engine is therefore written against a comparator.
package auction

import (
	"fmt"
	"math/rand"

	"lppa/internal/conflict"
)

// GE compares two bids in a column: it reports whether bidder i's bid on
// channel r is at least bidder j's. Implementations must induce a total
// preorder per column (the plaintext comparator and the masked
// order-preserving comparator both do).
type GE func(r, i, j int) bool

// Assignment records one awarded channel.
type Assignment struct {
	Bidder  int
	Channel int
}

// Validity adjudicates an award during allocation: it reports whether
// bidder i's winning bid on channel r is genuine. The private auction
// wires this to the TTP's zero test (a disguised or true zero that wins is
// void). A nil oracle treats every award as valid.
//
// Semantics of a void award: the channel is withdrawn for the round (its
// whole column is deleted) — the fake assignment was published, so the
// lease term for that channel is wasted — but the bidder keeps its other
// bids. This interactive-TTP design reproduces the paper's Fig. 5(e)(f)
// performance curve (≈95 % at 1−p0 = 0.1 falling to ≈73 %); the verbatim
// batch-charging reading, in which a void consumes the winner's whole row,
// degrades performance far more steeply and is measured alongside it (see
// DESIGN.md §5 and EXPERIMENTS.md).
type Validity func(i, r int) bool

// Award couples an assignment with the runner-up bidder at award time
// (−1 when the winner was alone in the column). The runner-up determines
// the clearing price under second-price charging, the paper's stated
// future-work direction (section V.C.1).
type Award struct {
	Assignment
	RunnerUp int
}

// Allocate runs Algorithm 3 over n bidders and k channels. present[i][r]
// states whether bidder i has a live bid on channel r at the start (the
// plaintext auction seeds it with bid > 0; the private auction seeds it
// all-true because the auctioneer cannot distinguish zeros). The slice is
// consumed. Ties at the column maximum are broken uniformly at random, as
// the paper's Theorem 1 analysis assumes.
func Allocate(n, k int, present [][]bool, g *conflict.Graph, ge GE, rng *rand.Rand) ([]Assignment, error) {
	assignments, _, err := AllocateWithValidity(n, k, present, g, ge, nil, rng)
	return assignments, err
}

// AllocateWithValidity is Allocate with a validity oracle; it additionally
// returns the voided awards.
func AllocateWithValidity(n, k int, present [][]bool, g *conflict.Graph, ge GE, valid Validity, rng *rand.Rand) ([]Assignment, []Assignment, error) {
	awards, voided, err := AllocateAwards(n, k, present, g, ge, valid, rng)
	if err != nil {
		return nil, nil, err
	}
	assignments := make([]Assignment, len(awards))
	for i, a := range awards {
		assignments[i] = a.Assignment
	}
	return assignments, voided, nil
}

// AllocateAwards is the full-featured engine: Algorithm 3 with an optional
// validity oracle, returning awards with their award-time runner-ups.
func AllocateAwards(n, k int, present [][]bool, g *conflict.Graph, ge GE, valid Validity, rng *rand.Rand) ([]Award, []Assignment, error) {
	if g.N() != n {
		return nil, nil, fmt.Errorf("auction: conflict graph has %d nodes, want %d", g.N(), n)
	}
	if len(present) != n {
		return nil, nil, fmt.Errorf("auction: present has %d rows, want %d", len(present), n)
	}
	for i := range present {
		if len(present[i]) != k {
			return nil, nil, fmt.Errorf("auction: present row %d has %d columns, want %d", i, len(present[i]), k)
		}
	}

	remaining := 0
	colCount := make([]int, k) // live cells per column
	for i := range present {
		for r, p := range present[i] {
			if p {
				remaining++
				colCount[r]++
			}
		}
	}

	awards := make([]Award, 0, k)
	var voided []Assignment
	pool := newChannelPool(k, rng)
	var ties []int
	for remaining > 0 {
		r := pool.pick()
		if colCount[r] == 0 {
			continue
		}
		// Find the column maximum under the comparator, then collect ties.
		best := -1
		for i := 0; i < n; i++ {
			if !present[i][r] {
				continue
			}
			if best == -1 || ge(r, i, best) {
				best = i
			}
		}
		ties = ties[:0]
		for i := 0; i < n; i++ {
			if present[i][r] && ge(r, i, best) && ge(r, best, i) {
				ties = append(ties, i)
			}
		}
		bx := ties[rng.Intn(len(ties))]

		drop := func(i, c int) {
			if present[i][c] {
				present[i][c] = false
				colCount[c]--
				remaining--
			}
		}

		if valid != nil && !valid(bx, r) {
			// Void award: the channel is withdrawn for this round; bx
			// keeps its other bids.
			voided = append(voided, Assignment{Bidder: bx, Channel: r})
			for i := 0; i < n; i++ {
				drop(i, r)
			}
			continue
		}

		// Runner-up: the column maximum excluding the winner, at award
		// time (defines the second-price clearing charge).
		runnerUp := -1
		for i := 0; i < n; i++ {
			if i == bx || !present[i][r] {
				continue
			}
			if runnerUp == -1 || ge(r, i, runnerUp) {
				runnerUp = i
			}
		}

		awards = append(awards, Award{Assignment: Assignment{Bidder: bx, Channel: r}, RunnerUp: runnerUp})
		// Delete the winner's row.
		for c := 0; c < k; c++ {
			drop(bx, c)
		}
		// Delete conflicting neighbors' bids on this channel.
		g.ForEachNeighbor(bx, func(o int) { drop(o, r) })
	}
	return awards, voided, nil
}

// channelPool cycles through channels: each epoch visits every channel once
// in random order; when exhausted it reshuffles, matching the paper's
// "reset R = {1..k}" rule.
type channelPool struct {
	order []int
	pos   int
	rng   *rand.Rand
}

func newChannelPool(k int, rng *rand.Rand) *channelPool {
	p := &channelPool{order: make([]int, k), rng: rng}
	for i := range p.order {
		p.order[i] = i
	}
	p.shuffle()
	return p
}

func (p *channelPool) shuffle() {
	p.rng.Shuffle(len(p.order), func(i, j int) { p.order[i], p.order[j] = p.order[j], p.order[i] })
	p.pos = 0
}

func (p *channelPool) pick() int {
	if p.pos == len(p.order) {
		p.shuffle()
	}
	r := p.order[p.pos]
	p.pos++
	return r
}
