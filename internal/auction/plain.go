package auction

import (
	"fmt"
	"math/rand"

	"lppa/internal/conflict"
)

// Outcome summarizes one auction round for the performance metrics of
// section VI.D.
type Outcome struct {
	// Assignments lists every awarded (bidder, channel) pair, including —
	// in the private auction — awards later voided by the TTP.
	Assignments []Assignment
	// Charges maps assignment index to the first-price charge actually
	// collected; voided awards carry zero.
	Charges []uint64
	// Revenue is the sum of winning bids (the paper's "sum of winning
	// bids" metric).
	Revenue uint64
	// SatisfiedBidders counts bidders who ended up possessing spectrum.
	SatisfiedBidders int
	// Bidders is the population size N.
	Bidders int
}

// Satisfaction returns the fraction of bidders possessing spectrum.
func (o *Outcome) Satisfaction() float64 {
	if o.Bidders == 0 {
		return 0
	}
	return float64(o.SatisfiedBidders) / float64(o.Bidders)
}

// RunPlain executes the baseline (non-private) auction: the auctioneer
// sees plaintext bids, considers only positive ones (zero means "channel
// unavailable here"), allocates greedily per Algorithm 3, and charges
// first-price. This is the reference LPPA's performance is measured
// against in Fig. 5(e)(f).
func RunPlain(bids [][]uint64, g *conflict.Graph, rng *rand.Rand) (*Outcome, error) {
	n := len(bids)
	if n == 0 {
		return nil, fmt.Errorf("auction: no bidders")
	}
	k := len(bids[0])
	present := make([][]bool, n)
	for i := range bids {
		if len(bids[i]) != k {
			return nil, fmt.Errorf("auction: bidder %d has %d bids, want %d", i, len(bids[i]), k)
		}
		present[i] = make([]bool, k)
		for r, b := range bids[i] {
			present[i][r] = b > 0
		}
	}
	ge := func(r, i, j int) bool { return bids[i][r] >= bids[j][r] }
	assignments, err := Allocate(n, k, present, g, ge, rng)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Assignments: assignments, Charges: make([]uint64, len(assignments)), Bidders: n}
	for ai, a := range assignments {
		price := bids[a.Bidder][a.Channel]
		out.Charges[ai] = price
		out.Revenue += price
		out.SatisfiedBidders++
	}
	return out, nil
}

// VerifyInterferenceFree checks the fundamental allocation invariant: no
// two conflicting bidders hold the same channel. It returns an error
// naming the first violation.
func VerifyInterferenceFree(assignments []Assignment, g *conflict.Graph) error {
	byChannel := map[int][]int{}
	for _, a := range assignments {
		byChannel[a.Channel] = append(byChannel[a.Channel], a.Bidder)
	}
	for ch, holders := range byChannel {
		for i := 0; i < len(holders); i++ {
			for j := i + 1; j < len(holders); j++ {
				if g.HasEdge(holders[i], holders[j]) {
					return fmt.Errorf("auction: channel %d awarded to conflicting bidders %d and %d",
						ch, holders[i], holders[j])
				}
			}
		}
	}
	return nil
}

// VerifyOneChannelPerBidder checks that no bidder won twice.
func VerifyOneChannelPerBidder(assignments []Assignment) error {
	seen := map[int]int{}
	for _, a := range assignments {
		if prev, dup := seen[a.Bidder]; dup {
			return fmt.Errorf("auction: bidder %d awarded channels %d and %d", a.Bidder, prev, a.Channel)
		}
		seen[a.Bidder] = a.Channel
	}
	return nil
}
