package auction

import (
	"math/rand"
	"testing"

	"lppa/internal/conflict"
	"lppa/internal/geo"
)

// secondPriceInstance builds a random auction instance.
func secondPriceInstance(rng *rand.Rand, n, k int) ([][]uint64, *conflict.Graph) {
	points := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range bids {
		points[i] = geo.Point{X: uint64(rng.Intn(30)), Y: uint64(rng.Intn(30))}
		bids[i] = make([]uint64, k)
		for r := range bids[i] {
			if rng.Intn(3) > 0 {
				bids[i][r] = uint64(rng.Intn(100)) + 1
			}
		}
	}
	return bids, conflict.BuildPlain(points, 5)
}

func TestSecondPriceIndividualRationality(t *testing.T) {
	// A truthful winner never pays more than its own bid.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		bids, g := secondPriceInstance(rng, 25, 6)
		out, err := RunSecondPrice(bids, g, rng)
		if err != nil {
			t.Fatal(err)
		}
		for ai, a := range out.Assignments {
			if out.Charges[ai] > bids[a.Bidder][a.Channel] {
				t.Fatalf("winner %d pays %d above its bid %d",
					a.Bidder, out.Charges[ai], bids[a.Bidder][a.Channel])
			}
		}
	}
}

func TestSecondPriceClassicVickreyColumn(t *testing.T) {
	// Single channel, full conflict: the winner pays the second bid.
	bids := [][]uint64{{60}, {90}, {75}}
	g := conflict.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	out, err := RunSecondPrice(bids, g, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Assignments) != 1 || out.Assignments[0].Bidder != 1 {
		t.Fatalf("assignments = %v", out.Assignments)
	}
	if out.Charges[0] != 75 {
		t.Errorf("Vickrey price = %d, want 75", out.Charges[0])
	}
}

func TestSecondPriceAloneWinsFree(t *testing.T) {
	bids := [][]uint64{{40}}
	out, err := RunSecondPrice(bids, conflict.NewGraph(1), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Assignments) != 1 || out.Charges[0] != 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestSecondPriceRevenueAtMostFirstPrice(t *testing.T) {
	// With identical randomness the allocation coincides and each charge
	// (runner-up bid) is bounded by the winner's own bid.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		bids, g := secondPriceInstance(rng, 20, 5)
		seed := int64(100 + trial)
		first, err := RunPlain(bids, g, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		second, err := RunSecondPrice(bids, g, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if second.Revenue > first.Revenue {
			t.Fatalf("second-price revenue %d exceeds first-price %d", second.Revenue, first.Revenue)
		}
	}
}

// TestSecondPriceReducesShadingIncentive is the empirical truthfulness
// check: under first-price charging a winner always profits from shading
// its bid toward the runner-up, while under second-price charging shading
// cannot lower the price (it can only lose the channel). We verify the
// mechanism on the classic column: shading the top bid changes nothing
// until it crosses the runner-up, at which point the shader loses.
func TestSecondPriceReducesShadingIncentive(t *testing.T) {
	g := conflict.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	value := uint64(90) // bidder 1's true valuation
	truthCharge := uint64(0)
	{
		out, err := RunSecondPrice([][]uint64{{60}, {value}, {75}}, g, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		truthCharge = out.Charges[0]
	}
	truthUtility := int64(value) - int64(truthCharge)
	for _, shaded := range []uint64{89, 80, 76, 74, 60} {
		out, err := RunSecondPrice([][]uint64{{60}, {shaded}, {75}}, g, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		var utility int64
		if len(out.Assignments) > 0 && out.Assignments[0].Bidder == 1 {
			utility = int64(value) - int64(out.Charges[0])
		}
		if utility > truthUtility {
			t.Fatalf("shading to %d raised utility %d above truthful %d", shaded, utility, truthUtility)
		}
	}
}

func TestSecondPriceValidation(t *testing.T) {
	if _, err := RunSecondPrice(nil, conflict.NewGraph(0), rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := RunSecondPrice([][]uint64{{1, 2}, {3}}, conflict.NewGraph(2), rand.New(rand.NewSource(1))); err == nil {
		t.Error("ragged bids accepted")
	}
}
