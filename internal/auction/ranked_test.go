package auction

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"lppa/internal/conflict"
)

// rankedFixture builds a random instance: bid matrix, conflict graph, the
// pairwise comparator, and the rank memos the ordered engine consumes
// (built exactly as core.columnRank builds them: stable sort + dense
// ranks).
func rankedFixture(t *testing.T, n, k int, seed int64) (bids [][]uint64, g *conflict.Graph, ge GE, column Column) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bids = make([][]uint64, n)
	for i := range bids {
		bids[i] = make([]uint64, k)
		for r := range bids[i] {
			// Small value range: plenty of exact ties to break.
			bids[i][r] = uint64(rng.Intn(6))
		}
	}
	g = conflict.BuildFromPredicate(n, func(i, j int) bool { return rng.Intn(4) == 0 })
	ge = func(r, i, j int) bool { return bids[i][r] >= bids[j][r] }

	orders := make([][]int, k)
	ranks := make([][]int, k)
	column = func(r int) ([]int, []int) {
		if orders[r] == nil {
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(x, y int) bool {
				i, j := order[x], order[y]
				return ge(r, i, j) && !ge(r, j, i)
			})
			rank := make([]int, n)
			rk := 0
			for x, i := range order {
				if x > 0 {
					prev := order[x-1]
					if !(ge(r, i, prev) && ge(r, prev, i)) {
						rk = x
					}
				}
				rank[i] = rk
			}
			orders[r], ranks[r] = order, rank
		}
		return orders[r], ranks[r]
	}
	return bids, g, ge, column
}

func clonePresent(p [][]bool) [][]bool {
	out := make([][]bool, len(p))
	for i := range p {
		out[i] = append([]bool(nil), p[i]...)
	}
	return out
}

// TestAllocateAwardsOrderedMatchesLegacy pins the rank-cursor engine
// bit-identical to Algorithm 3 — awards, runner-ups, voids, and rng
// consumption — across sizes, channel counts, presence shapes, and
// validity oracles.
func TestAllocateAwardsOrderedMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		k := rng.Intn(5) + 1
		_, g, ge, column := rankedFixture(t, n, k, seed*31+7)

		present := make([][]bool, n)
		for i := range present {
			present[i] = make([]bool, k)
			for r := range present[i] {
				present[i][r] = rng.Intn(5) > 0
			}
		}

		var valid Validity
		if seed%3 == 1 {
			// Deterministic pseudo-random oracle shared by both engines.
			valid = func(i, r int) bool { return (i*31+r*17+int(seed))%4 != 0 }
		}

		legacyRng := rand.New(rand.NewSource(seed * 101))
		wantAwards, wantVoided, err := AllocateAwards(n, k, clonePresent(present), g, ge, valid, legacyRng)
		if err != nil {
			t.Fatal(err)
		}
		orderedRng := rand.New(rand.NewSource(seed * 101))
		gotAwards, gotVoided, err := AllocateAwardsOrdered(n, k, clonePresent(present), g, column, valid, nil, orderedRng)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(gotAwards, wantAwards) {
			t.Fatalf("seed=%d n=%d k=%d: awards differ\n got %v\nwant %v", seed, n, k, gotAwards, wantAwards)
		}
		if !reflect.DeepEqual(gotVoided, wantVoided) {
			t.Fatalf("seed=%d n=%d k=%d: voids differ\n got %v\nwant %v", seed, n, k, gotVoided, wantVoided)
		}
		// Same rng consumption: both streams must agree on the next draw.
		if a, b := legacyRng.Int63(), orderedRng.Int63(); a != b {
			t.Fatalf("seed=%d: rng streams diverged (%d vs %d)", seed, a, b)
		}
	}
}

// TestAllocateAwardsOrderedServed pins the telemetry hook contract: served
// is called only for bidders in the column memo, and a nil hook is safe.
func TestAllocateAwardsOrderedServed(t *testing.T) {
	const n, k = 12, 3
	_, g, _, column := rankedFixture(t, n, k, 5)
	present := make([][]bool, n)
	for i := range present {
		present[i] = make([]bool, k)
		for r := range present[i] {
			present[i][r] = true
		}
	}
	servedCount := 0
	_, _, err := AllocateAwardsOrdered(n, k, clonePresent(present), g, column, nil,
		func(bidder int) {
			if bidder < 0 || bidder >= n {
				t.Fatalf("served out-of-range bidder %d", bidder)
			}
			servedCount++
		}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if servedCount == 0 {
		t.Error("served hook never invoked")
	}
}

// TestAllocateAwardsOrderedValidation covers the error paths.
func TestAllocateAwardsOrderedValidation(t *testing.T) {
	_, g, _, column := rankedFixture(t, 4, 2, 1)
	rng := rand.New(rand.NewSource(1))
	if _, _, err := AllocateAwardsOrdered(5, 2, make([][]bool, 5), g, column, nil, nil, rng); err == nil {
		t.Error("graph size mismatch accepted")
	}
	if _, _, err := AllocateAwardsOrdered(4, 2, make([][]bool, 3), g, column, nil, nil, rng); err == nil {
		t.Error("short present accepted")
	}
	bad := Column(func(r int) ([]int, []int) { return []int{0}, []int{0} })
	present := make([][]bool, 4)
	for i := range present {
		present[i] = []bool{true, true}
	}
	if _, _, err := AllocateAwardsOrdered(4, 2, present, g, bad, nil, nil, rng); err == nil {
		t.Error("short column memo accepted")
	}
}
