package auction

import (
	"fmt"
	"math/rand"

	"lppa/internal/conflict"
)

// Second-price (clearing-price) charging — the paper's stated future work
// on truthfulness (section V.C.1: "we leave the truthfulness of the
// auction to future work"). Each winner pays the award-time runner-up's
// bid on its channel instead of its own. Within one column pick this is
// the classic Vickrey price; across the whole greedy allocation it is not
// fully strategyproof (the channel order randomization couples columns),
// but it removes the first-order incentive to shade bids — the
// truthfulness tests quantify the residual manipulability empirically.

// RunSecondPrice executes the baseline auction with second-price charging:
// plaintext bids, zero bids excluded, winner pays the runner-up's bid
// (zero when it was alone in the column — individual rationality holds
// unconditionally: payment ≤ own bid by the order of selection).
func RunSecondPrice(bids [][]uint64, g *conflict.Graph, rng *rand.Rand) (*Outcome, error) {
	n := len(bids)
	if n == 0 {
		return nil, fmt.Errorf("auction: no bidders")
	}
	k := len(bids[0])
	present := make([][]bool, n)
	for i := range bids {
		if len(bids[i]) != k {
			return nil, fmt.Errorf("auction: bidder %d has %d bids, want %d", i, len(bids[i]), k)
		}
		present[i] = make([]bool, k)
		for r, b := range bids[i] {
			present[i][r] = b > 0
		}
	}
	ge := func(r, i, j int) bool { return bids[i][r] >= bids[j][r] }
	awards, _, err := AllocateAwards(n, k, present, g, ge, nil, rng)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Assignments: make([]Assignment, len(awards)), Charges: make([]uint64, len(awards)), Bidders: n}
	for ai, a := range awards {
		out.Assignments[ai] = a.Assignment
		var price uint64
		if a.RunnerUp >= 0 {
			price = bids[a.RunnerUp][a.Channel]
		}
		out.Charges[ai] = price
		out.Revenue += price
		out.SatisfiedBidders++
	}
	return out, nil
}
