package auction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lppa/internal/conflict"
	"lppa/internal/geo"
)

func allTrue(n, k int) [][]bool {
	p := make([][]bool, n)
	for i := range p {
		p[i] = make([]bool, k)
		for r := range p[i] {
			p[i][r] = true
		}
	}
	return p
}

func plainGE(bids [][]uint64) GE {
	return func(r, i, j int) bool { return bids[i][r] >= bids[j][r] }
}

func TestAllocateSingleChannelPicksMax(t *testing.T) {
	bids := [][]uint64{{6}, {10}, {0}, {5}}
	g := conflict.NewGraph(4)
	// Fully conflicting population: only one winner possible.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	as, err := Allocate(4, 1, allTrue(4, 1), g, plainGE(bids), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || as[0].Bidder != 1 || as[0].Channel != 0 {
		t.Fatalf("assignments = %v, want bidder 1 channel 0", as)
	}
}

func TestAllocateSpatialReuse(t *testing.T) {
	// Two non-conflicting bidders can both win the single channel.
	bids := [][]uint64{{7}, {9}}
	g := conflict.NewGraph(2)
	as, err := Allocate(2, 1, allTrue(2, 1), g, plainGE(bids), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("expected both bidders to win via reuse, got %v", as)
	}
}

func TestAllocateOneChannelPerBidder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bids := make([][]uint64, 20)
	for i := range bids {
		bids[i] = make([]uint64, 5)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(50))
		}
	}
	g := conflict.NewGraph(20)
	as, err := Allocate(20, 5, allTrue(20, 5), g, plainGE(bids), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOneChannelPerBidder(as); err != nil {
		t.Error(err)
	}
}

func TestAllocateInterferenceFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, k, lambda = 50, 8, 4
	points := make([]geo.Point, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(60)), Y: uint64(rng.Intn(60))}
	}
	g := conflict.BuildPlain(points, lambda)
	bids := make([][]uint64, n)
	for i := range bids {
		bids[i] = make([]uint64, k)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(100))
		}
	}
	for trial := 0; trial < 20; trial++ {
		as, err := Allocate(n, k, allTrue(n, k), g, plainGE(bids), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyInterferenceFree(as, g); err != nil {
			t.Fatal(err)
		}
		if err := VerifyOneChannelPerBidder(as); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllocateEveryRowConsumed(t *testing.T) {
	// With no conflicts and more channels than bidders, everyone wins.
	const n, k = 6, 10
	bids := make([][]uint64, n)
	for i := range bids {
		bids[i] = make([]uint64, k)
		for r := range bids[i] {
			bids[i][r] = uint64(i + r + 1)
		}
	}
	g := conflict.NewGraph(n)
	as, err := Allocate(n, k, allTrue(n, k), g, plainGE(bids), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != n {
		t.Fatalf("winners = %d, want %d", len(as), n)
	}
}

func TestAllocateValidation(t *testing.T) {
	g := conflict.NewGraph(3)
	if _, err := Allocate(2, 1, allTrue(2, 1), g, plainGE(nil), rand.New(rand.NewSource(1))); err == nil {
		t.Error("graph size mismatch accepted")
	}
	g2 := conflict.NewGraph(2)
	if _, err := Allocate(2, 1, allTrue(3, 1), g2, plainGE(nil), rand.New(rand.NewSource(1))); err == nil {
		t.Error("present row mismatch accepted")
	}
	bad := allTrue(2, 2)
	bad[1] = bad[1][:1]
	if _, err := Allocate(2, 2, bad, g2, plainGE(nil), rand.New(rand.NewSource(1))); err == nil {
		t.Error("ragged present accepted")
	}
}

func TestAllocateTieBreakUniform(t *testing.T) {
	// Two equal top bids in a full-conflict pair: each should win roughly
	// half the time.
	bids := [][]uint64{{5}, {5}}
	g := conflict.NewGraph(2)
	g.AddEdge(0, 1)
	wins := [2]int{}
	for seed := int64(0); seed < 400; seed++ {
		as, err := Allocate(2, 1, allTrue(2, 1), g, plainGE(bids), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != 1 {
			t.Fatalf("assignments = %v", as)
		}
		wins[as[0].Bidder]++
	}
	if wins[0] < 120 || wins[1] < 120 {
		t.Errorf("tie break skewed: %v", wins)
	}
}

func TestRunPlainSkipsZeroBids(t *testing.T) {
	// Bidder 1 bids zero everywhere: must never win.
	bids := [][]uint64{{4, 2}, {0, 0}, {3, 9}}
	g := conflict.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	out, err := RunPlain(bids, g, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out.Assignments {
		if a.Bidder == 1 {
			t.Error("zero bidder won a channel")
		}
	}
	if out.Revenue == 0 {
		t.Error("revenue should be positive")
	}
	if out.Satisfaction() <= 0 || out.Satisfaction() > 1 {
		t.Errorf("satisfaction = %f", out.Satisfaction())
	}
}

func TestRunPlainRevenueMatchesCharges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, k = 30, 6
	bids := make([][]uint64, n)
	for i := range bids {
		bids[i] = make([]uint64, k)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(40))
		}
	}
	g := conflict.NewGraph(n)
	out, err := RunPlain(bids, g, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for ai, a := range out.Assignments {
		if out.Charges[ai] != bids[a.Bidder][a.Channel] {
			t.Fatalf("charge %d != first price %d", out.Charges[ai], bids[a.Bidder][a.Channel])
		}
		sum += out.Charges[ai]
	}
	if sum != out.Revenue {
		t.Errorf("revenue %d != charge sum %d", out.Revenue, sum)
	}
	if out.SatisfiedBidders != len(out.Assignments) {
		t.Errorf("satisfied %d != assignments %d", out.SatisfiedBidders, len(out.Assignments))
	}
}

func TestRunPlainValidation(t *testing.T) {
	if _, err := RunPlain(nil, conflict.NewGraph(0), rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty population accepted")
	}
	ragged := [][]uint64{{1, 2}, {3}}
	if _, err := RunPlain(ragged, conflict.NewGraph(2), rand.New(rand.NewSource(1))); err == nil {
		t.Error("ragged bids accepted")
	}
}

func TestVerifyHelpersDetectViolations(t *testing.T) {
	g := conflict.NewGraph(3)
	g.AddEdge(0, 1)
	bad := []Assignment{{Bidder: 0, Channel: 2}, {Bidder: 1, Channel: 2}}
	if VerifyInterferenceFree(bad, g) == nil {
		t.Error("conflicting co-channel award not detected")
	}
	dup := []Assignment{{Bidder: 0, Channel: 1}, {Bidder: 0, Channel: 2}}
	if VerifyOneChannelPerBidder(dup) == nil {
		t.Error("double award not detected")
	}
}

// Property: allocation never awards a channel to a bidder whose bid entry
// was not present initially.
func TestAllocateRespectsPresence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, k = 12, 4
		bids := make([][]uint64, n)
		present := make([][]bool, n)
		was := make([][]bool, n)
		for i := range bids {
			bids[i] = make([]uint64, k)
			present[i] = make([]bool, k)
			was[i] = make([]bool, k)
			for r := range bids[i] {
				bids[i][r] = uint64(rng.Intn(20))
				present[i][r] = rng.Intn(3) > 0
				was[i][r] = present[i][r]
			}
		}
		g := conflict.NewGraph(n)
		as, err := Allocate(n, k, present, g, plainGE(bids), rng)
		if err != nil {
			return false
		}
		for _, a := range as {
			if !was[a.Bidder][a.Channel] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
