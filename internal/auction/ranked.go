package auction

import (
	"fmt"
	"math/rand"

	"lppa/internal/conflict"
)

// Column supplies a channel's precomputed rank memo: order is all bidders
// sorted by descending bid with ties in ascending index order (exactly the
// stable sort the per-column memo builds), rank the dense rank of each
// bidder in that order. Fetched lazily, once per column the allocator
// actually visits.
type Column func(r int) (order, rank []int)

// AllocateAwardsOrdered is AllocateAwards driven by per-column rank memos
// instead of a pairwise comparator. Each pick reads the column's head rank
// group through a monotone cursor — O(group + dead entries retired) per
// award instead of two O(n) comparator sweeps — which is what keeps the
// sharded round's allocation phase sub-quadratic. It is bit-identical to
// AllocateAwards for the same inputs and rng, because the legacy sweeps
// resolve to positions in the same memo order:
//
//   - the legacy best scan (ascending i, update on GE(i, best)) lands on
//     the max-index member of the best present rank group, and the tie
//     collection lists that group's present members in ascending index
//     order — exactly the group's order inside the memo;
//   - the runner-up scan lands on the max-index member of the best present
//     rank group once the winner is excluded;
//   - both paths draw the same rng values (one Intn per award over an
//     identical tie list; the channel pool is shared code).
//
// served, when non-nil, is called once per memo entry the allocator
// examines (the per-shard memo-hit telemetry hook); nil skips all
// accounting. See AllocateAwards for the void-award semantics.
func AllocateAwardsOrdered(n, k int, present [][]bool, g *conflict.Graph, column Column, valid Validity, served func(bidder int), rng *rand.Rand) ([]Award, []Assignment, error) {
	if g.N() != n {
		return nil, nil, fmt.Errorf("auction: conflict graph has %d nodes, want %d", g.N(), n)
	}
	if len(present) != n {
		return nil, nil, fmt.Errorf("auction: present has %d rows, want %d", len(present), n)
	}
	for i := range present {
		if len(present[i]) != k {
			return nil, nil, fmt.Errorf("auction: present row %d has %d columns, want %d", i, len(present[i]), k)
		}
	}

	remaining := 0
	colCount := make([]int, k)
	for i := range present {
		for r, p := range present[i] {
			if p {
				remaining++
				colCount[r]++
			}
		}
	}

	// Per-column memo state, fetched on first use. cursor[r] is monotone:
	// it only ever moves past entries that are no longer present, and bids
	// are never revived, so retired entries stay retired.
	orders := make([][]int, k)
	ranks := make([][]int, k)
	cursor := make([]int, k)

	awards := make([]Award, 0, k)
	var voided []Assignment
	pool := newChannelPool(k, rng)
	var ties []int
	for remaining > 0 {
		r := pool.pick()
		if colCount[r] == 0 {
			continue
		}
		if orders[r] == nil {
			o, rk := column(r)
			if len(o) != n || len(rk) != n {
				return nil, nil, fmt.Errorf("auction: column %d memo has %d/%d entries, want %d", r, len(o), len(rk), n)
			}
			orders[r] = o
			ranks[r] = rk
		}
		o, rk := orders[r], ranks[r]
		c := cursor[r]
		for !present[o[c]][r] {
			c++ // colCount[r] > 0 guarantees a live entry ahead
		}
		cursor[r] = c

		// Head group: contiguous memo entries sharing the best live rank;
		// its present members, in memo (= ascending index) order, are the
		// legacy tie list.
		headRank := rk[o[c]]
		ties = ties[:0]
		e := c
		for ; e < n && rk[o[e]] == headRank; e++ {
			if served != nil {
				served(o[e])
			}
			if present[o[e]][r] {
				ties = append(ties, o[e])
			}
		}
		bx := ties[rng.Intn(len(ties))]

		drop := func(i, c int) {
			if present[i][c] {
				present[i][c] = false
				colCount[c]--
				remaining--
			}
		}

		if valid != nil && !valid(bx, r) {
			voided = append(voided, Assignment{Bidder: bx, Channel: r})
			for i := 0; i < n; i++ {
				drop(i, r)
			}
			continue
		}

		// Runner-up: max-index member of the best rank group present once
		// bx is excluded — the rest of the head group if any of it is
		// live, otherwise the next group with a live member.
		runnerUp := -1
		if len(ties) > 1 {
			runnerUp = ties[len(ties)-1]
			if runnerUp == bx {
				runnerUp = ties[len(ties)-2]
			}
		} else {
			f := e
			for f < n && !present[o[f]][r] {
				f++
			}
			if f < n {
				r2 := rk[o[f]]
				for ; f < n && rk[o[f]] == r2; f++ {
					if served != nil {
						served(o[f])
					}
					if present[o[f]][r] {
						runnerUp = o[f]
					}
				}
			}
		}

		awards = append(awards, Award{Assignment: Assignment{Bidder: bx, Channel: r}, RunnerUp: runnerUp})
		for c := 0; c < k; c++ {
			drop(bx, c)
		}
		g.ForEachNeighbor(bx, func(o int) { drop(o, r) })
	}
	return awards, voided, nil
}
