package faults

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// memConn is a net.Conn stub recording every Write call, so tests can
// assert both the bytes that reached the "wire" and the write boundaries
// (chunking).
type memConn struct {
	writes [][]byte
	closed bool
}

func (m *memConn) Write(p []byte) (int, error) {
	m.writes = append(m.writes, append([]byte(nil), p...))
	return len(p), nil
}
func (m *memConn) Read(p []byte) (int, error)         { return 0, nil }
func (m *memConn) Close() error                       { m.closed = true; return nil }
func (m *memConn) LocalAddr() net.Addr                { return nil }
func (m *memConn) RemoteAddr() net.Addr               { return nil }
func (m *memConn) SetDeadline(t time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(t time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(t time.Time) error { return nil }

func (m *memConn) bytes() []byte {
	var all []byte
	for _, w := range m.writes {
		all = append(all, w...)
	}
	return all
}

func frames(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		f := make([]byte, size)
		for j := range f {
			f[j] = byte(i*31 + j)
		}
		out[i] = f
	}
	return out
}

// TestScheduleDeterministic pins the replay contract: the same seed and
// the same frame sequence produce byte-identical wire output and write
// boundaries, run after run.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{DropFrame: 0.3, DupFrame: 0.3, CorruptFrame: 0.3, TruncateFrame: 0.05}
	run := func() *memConn {
		m := &memConn{}
		c := Wrap(m, 42, cfg)
		for _, f := range frames(50, 64) {
			_, _ = c.Write(f)
		}
		return m
	}
	a, b := run(), run()
	if len(a.writes) != len(b.writes) {
		t.Fatalf("write counts differ: %d vs %d", len(a.writes), len(b.writes))
	}
	for i := range a.writes {
		if !bytes.Equal(a.writes[i], b.writes[i]) {
			t.Fatalf("write %d differs between identically seeded runs", i)
		}
	}
	if bytes.Equal(a.bytes(), bytesOf(t, 42, Config{}, 50, 64)) {
		t.Fatal("fault config had no observable effect (schedule too timid for this seed)")
	}
}

func bytesOf(t *testing.T, seed int64, cfg Config, n, size int) []byte {
	t.Helper()
	m := &memConn{}
	c := Wrap(m, seed, cfg)
	for _, f := range frames(n, size) {
		if _, err := c.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	return m.bytes()
}

// TestZeroConfigPassthrough: the zero config is a transparent pipe.
func TestZeroConfigPassthrough(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, 1, Config{})
	in := frames(5, 33)
	for _, f := range in {
		n, err := c.Write(f)
		if err != nil || n != len(f) {
			t.Fatalf("write = (%d, %v)", n, err)
		}
	}
	if len(m.writes) != 5 {
		t.Fatalf("%d writes reached the wire, want 5", len(m.writes))
	}
	for i := range in {
		if !bytes.Equal(m.writes[i], in[i]) {
			t.Errorf("frame %d modified by zero config", i)
		}
	}
}

func TestDropSwallowsFrame(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, 7, Config{DropFrame: 1})
	n, err := c.Write([]byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("dropped write must report success, got (%d, %v)", n, err)
	}
	if len(m.writes) != 0 {
		t.Fatal("dropped frame reached the wire")
	}
}

func TestDupWritesTwice(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, 7, Config{DupFrame: 1})
	f := []byte("frame-x")
	if _, err := c.Write(f); err != nil {
		t.Fatal(err)
	}
	if len(m.writes) != 2 || !bytes.Equal(m.writes[0], f) || !bytes.Equal(m.writes[1], f) {
		t.Fatalf("duplicate: %d writes on wire", len(m.writes))
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, 7, Config{CorruptFrame: 1})
	f := frames(1, 40)[0]
	if _, err := c.Write(f); err != nil {
		t.Fatal(err)
	}
	if len(m.writes) != 1 || len(m.writes[0]) != len(f) {
		t.Fatalf("corrupt changed frame count/length")
	}
	diff := 0
	for i := range f {
		if m.writes[0][i] != f[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bytes, want exactly 1", diff)
	}
	// The caller's buffer must be untouched (data was copied).
	if !bytes.Equal(f, frames(1, 40)[0]) {
		t.Fatal("corrupt mutated the caller's buffer")
	}
}

func TestTruncateWritesStrictPrefixAndKills(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, 7, Config{TruncateFrame: 1})
	f := frames(1, 32)[0]
	n, err := c.Write(f)
	if err != nil || n != len(f) {
		t.Fatalf("truncated write must report success, got (%d, %v)", n, err)
	}
	if len(m.writes) != 1 {
		t.Fatalf("%d writes, want 1", len(m.writes))
	}
	got := m.writes[0]
	if len(got) == 0 || len(got) >= len(f) || !bytes.Equal(got, f[:len(got)]) {
		t.Fatalf("wire holds %d bytes, want strict non-empty prefix of %d", len(got), len(f))
	}
	if !m.closed {
		t.Fatal("truncate must kill the connection")
	}
	if _, err := c.Write(f); !errors.Is(err, ErrInjectedKill) {
		t.Fatalf("write after truncate = %v, want ErrInjectedKill", err)
	}
}

func TestKillAfterFrames(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, 7, Config{KillAfterFrames: 2})
	f := []byte("abc")
	for i := 0; i < 2; i++ {
		if _, err := c.Write(f); err != nil {
			t.Fatalf("frame %d: %v", i+1, err)
		}
	}
	if _, err := c.Write(f); !errors.Is(err, ErrInjectedKill) {
		t.Fatalf("frame 3 = %v, want ErrInjectedKill", err)
	}
	if !m.closed {
		t.Fatal("kill must close the underlying conn")
	}
	if len(m.writes) != 2 {
		t.Fatalf("%d frames on wire, want 2", len(m.writes))
	}
}

func TestCloseAfterFramesDeliversThenDies(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, 7, Config{CloseAfterFrames: 1})
	f := []byte("submission")
	if _, err := c.Write(f); err != nil {
		t.Fatalf("frame 1 must be delivered: %v", err)
	}
	if len(m.writes) != 1 || !bytes.Equal(m.writes[0], f) {
		t.Fatal("frame 1 not fully on the wire")
	}
	if !m.closed {
		t.Fatal("conn must close right after the delivered frame")
	}
	if _, err := c.Write(f); !errors.Is(err, ErrInjectedKill) {
		t.Fatalf("frame 2 = %v, want ErrInjectedKill", err)
	}
}

func TestSlowChunking(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, 7, Config{SlowChunk: 3})
	f := frames(1, 10)[0]
	if _, err := c.Write(f); err != nil {
		t.Fatal(err)
	}
	if len(m.writes) != 4 { // 3+3+3+1
		t.Fatalf("%d chunks, want 4", len(m.writes))
	}
	if !bytes.Equal(m.bytes(), f) {
		t.Fatal("chunked bytes differ from frame")
	}
}

// TestInjectorSeedsDiffer: distinct connections from one injector draw
// distinct schedules, and the whole family replays from the base seed.
func TestInjectorSeedsDiffer(t *testing.T) {
	run := func() [][]byte {
		in := NewInjector(99, Config{DropFrame: 0.5})
		var outs [][]byte
		for k := 0; k < 4; k++ {
			m := &memConn{}
			c := in.Conn(m)
			for _, f := range frames(30, 16) {
				_, _ = c.Write(f)
			}
			outs = append(outs, m.bytes())
		}
		return outs
	}
	a, b := run(), run()
	for k := range a {
		if !bytes.Equal(a[k], b[k]) {
			t.Fatalf("conn %d not reproducible from injector seed", k)
		}
	}
	if bytes.Equal(a[0], a[1]) && bytes.Equal(a[1], a[2]) && bytes.Equal(a[2], a[3]) {
		t.Fatal("all injector connections drew identical schedules")
	}
}

// TestListenerWrapsAccepts: connections accepted through the injector's
// listener come back fault-wrapped.
func TestListenerWrapsAccepts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := NewInjector(5, Config{DropFrame: 1}).Listener(ln)
	defer wrapped.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			c.Close()
		}
	}()
	conn, err := wrapped.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, ok := conn.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want *faults.Conn", conn)
	}
}

// TestObserverReportsAppliedFaults pins the Observer hook: each applied
// fault class is reported exactly when it fires, with its frame index.
func TestObserverReportsAppliedFaults(t *testing.T) {
	type event struct {
		kind  string
		frame int
	}
	run := func(cfg Config, n int) []event {
		var got []event
		cfg.Observer = func(kind string, frame int) { got = append(got, event{kind, frame}) }
		m := &memConn{}
		c := Wrap(m, 7, cfg)
		for _, f := range frames(n, 16) {
			_, _ = c.Write(f)
		}
		return got
	}

	if got := run(Config{DropFrame: 1}, 2); len(got) != 2 || got[0] != (event{"drop", 1}) || got[1] != (event{"drop", 2}) {
		t.Fatalf("drop events = %+v", got)
	}
	if got := run(Config{DupFrame: 1}, 1); len(got) != 1 || got[0] != (event{"dup", 1}) {
		t.Fatalf("dup events = %+v", got)
	}
	if got := run(Config{CorruptFrame: 1}, 1); len(got) != 1 || got[0].kind != "corrupt" {
		t.Fatalf("corrupt events = %+v", got)
	}
	if got := run(Config{TruncateFrame: 1}, 3); len(got) != 1 || got[0] != (event{"truncate", 1}) {
		t.Fatalf("truncate events = %+v (connection dies after the first)", got)
	}
	if got := run(Config{DelayProb: 1, MaxDelay: time.Microsecond}, 1); len(got) != 1 || got[0].kind != "delay" {
		t.Fatalf("delay events = %+v", got)
	}
	if got := run(Config{SlowChunk: 4}, 1); len(got) != 1 || got[0] != (event{"slowloris", 1}) {
		t.Fatalf("slowloris events = %+v", got)
	}
	// kill fires once on the first fatal frame, then stays silent.
	if got := run(Config{KillAfterFrames: 1}, 4); len(got) != 1 || got[0] != (event{"kill", 2}) {
		t.Fatalf("kill events = %+v", got)
	}
	if got := run(Config{CloseAfterFrames: 1}, 3); len(got) != 1 || got[0] != (event{"close", 1}) {
		t.Fatalf("close events = %+v", got)
	}
	// The zero config reports nothing.
	if got := run(Config{}, 5); len(got) != 0 {
		t.Fatalf("zero config events = %+v", got)
	}
}
