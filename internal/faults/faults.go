// Package faults provides deterministic, seeded fault injection for the
// transport layer. A wrapped connection can drop, delay, duplicate,
// corrupt, truncate, and slow-write frames, or kill the connection after a
// set number of frames — every decision drawn from a PRNG seeded by the
// caller, so any chaos-test failure replays exactly from its seed.
//
// The injector treats every Write call as one wire frame. The transport's
// Conn writes exactly one length-prefixed frame per Write, so per-Write
// faults are per-frame faults: a dropped Write is a frame the peer never
// sees, a duplicated Write is a replayed frame, a truncated Write is a
// peer that died mid-frame.
package faults

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"
)

// ErrInjectedKill is returned by Write after the injector has killed the
// connection (KillAfterFrames exceeded or a truncated frame closed it).
var ErrInjectedKill = errors.New("faults: connection killed by injector")

// Config selects which faults an injected connection exhibits and at what
// rates. Probabilities are per written frame; the zero value injects
// nothing and passes every byte through untouched.
type Config struct {
	// DropFrame is the probability a written frame is silently swallowed:
	// the writer is told it succeeded, the peer never sees it.
	DropFrame float64
	// DupFrame is the probability a frame is written twice back to back.
	DupFrame float64
	// CorruptFrame is the probability one byte of the frame is flipped.
	CorruptFrame float64
	// TruncateFrame is the probability only a strict prefix of the frame
	// is written before the connection is closed (a peer dying mid-frame).
	// The writer is told the full frame went out.
	TruncateFrame float64
	// DelayProb and MaxDelay inject a random pause before a frame is
	// written, uniform in [0, MaxDelay).
	DelayProb float64
	MaxDelay  time.Duration
	// SlowChunk, when positive, writes frames in chunks of this many bytes
	// with SlowPause between chunks (a slow-loris peer).
	SlowChunk int
	SlowPause time.Duration
	// KillAfterFrames, when positive, abruptly closes the connection when
	// frame KillAfterFrames+1 is attempted; that write and all later ones
	// fail with ErrInjectedKill.
	KillAfterFrames int
	// CloseAfterFrames, when positive, closes the connection right after
	// frame CloseAfterFrames is fully written — the frame is delivered,
	// then the peer is gone (a bidder crashing after submitting).
	CloseAfterFrames int
	// Observer, when non-nil, is called once per fault actually applied,
	// with the fault class ("drop", "dup", "corrupt", "truncate", "delay",
	// "slowloris", "kill", "close") and the 1-based frame index it hit.
	// Calls happen outside the connection's schedule lock but on the
	// writing goroutine; observers that record into spans or counters must
	// be safe for concurrent use across connections.
	Observer func(kind string, frame int)
}

// Conn wraps a net.Conn with the fault schedule drawn from one seeded
// PRNG. Reads pass through untouched; all faults act on writes, which the
// transport issues one frame at a time.
type Conn struct {
	net.Conn
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	frames int
	killed bool
}

// Wrap attaches a fault schedule to c. The schedule is fully determined
// by seed and the sequence of frames written, independent of wall-clock
// time or goroutine interleaving on other connections.
func Wrap(c net.Conn, seed int64, cfg Config) *Conn {
	return &Conn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// frameSchedule is the full set of decisions for one frame, drawn up
// front in a fixed order so the rng stream — and therefore every later
// frame's schedule — depends only on the seed and the frame index, never
// on which faults happen to be enabled or on the frame's length.
type frameSchedule struct {
	drop, dup, corrupt, trunc bool
	delay                     time.Duration
	cut                       float64 // fraction of the frame kept on truncate
	flip                      float64 // fraction into the frame of the corrupted byte
}

// draw returns the schedule for the next frame along with its 1-based
// index (0 when the connection was already dead) and whether the
// connection is still alive.
func (c *Conn) draw() (frameSchedule, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return frameSchedule{}, 0, false
	}
	c.frames++
	if c.cfg.KillAfterFrames > 0 && c.frames > c.cfg.KillAfterFrames {
		c.killed = true
		return frameSchedule{}, c.frames, false
	}
	var s frameSchedule
	s.drop = c.rng.Float64() < c.cfg.DropFrame
	s.dup = c.rng.Float64() < c.cfg.DupFrame
	s.corrupt = c.rng.Float64() < c.cfg.CorruptFrame
	s.trunc = c.rng.Float64() < c.cfg.TruncateFrame
	delayP, delayFrac := c.rng.Float64(), c.rng.Float64()
	if delayP < c.cfg.DelayProb && c.cfg.MaxDelay > 0 {
		s.delay = time.Duration(delayFrac * float64(c.cfg.MaxDelay))
	}
	s.cut = c.rng.Float64()
	s.flip = c.rng.Float64()
	return s, c.frames, true
}

func (c *Conn) kill() {
	c.mu.Lock()
	c.killed = true
	c.mu.Unlock()
	_ = c.Conn.Close()
}

func (c *Conn) Write(p []byte) (int, error) {
	s, frame, alive := c.draw()
	observe := func(kind string) {
		if c.cfg.Observer != nil {
			c.cfg.Observer(kind, frame)
		}
	}
	if !alive {
		if frame > 0 {
			observe("kill") // first fatal frame; later writes stay silent
		}
		_ = c.Conn.Close()
		return 0, ErrInjectedKill
	}
	if s.delay > 0 {
		observe("delay")
		time.Sleep(s.delay)
	}
	if s.drop {
		observe("drop")
		return len(p), nil
	}
	data := p
	if s.corrupt && len(p) > 0 {
		observe("corrupt")
		data = append([]byte(nil), p...)
		data[int(s.flip*float64(len(data)))%len(data)] ^= 0xff
	}
	if s.trunc && len(p) > 1 {
		observe("truncate")
		cut := 1 + int(s.cut*float64(len(p)-1))%(len(p)-1)
		_, _ = c.writeOut(data[:cut])
		c.kill()
		return len(p), nil // the writer believes the frame went out
	}
	if c.cfg.SlowChunk > 0 && c.cfg.SlowChunk < len(data) {
		observe("slowloris")
	}
	if _, err := c.writeOut(data); err != nil {
		return 0, err
	}
	if s.dup {
		observe("dup")
		if _, err := c.writeOut(data); err != nil {
			return 0, err
		}
	}
	c.mu.Lock()
	closeNow := c.cfg.CloseAfterFrames > 0 && c.frames >= c.cfg.CloseAfterFrames && !c.killed
	c.mu.Unlock()
	if closeNow {
		observe("close")
		c.kill()
	}
	return len(p), nil
}

// writeOut pushes bytes to the underlying conn, chunked with pauses when
// slow-writing is configured.
func (c *Conn) writeOut(p []byte) (int, error) {
	if c.cfg.SlowChunk <= 0 || c.cfg.SlowChunk >= len(p) {
		return c.Conn.Write(p)
	}
	written := 0
	for written < len(p) {
		end := written + c.cfg.SlowChunk
		if end > len(p) {
			end = len(p)
		}
		n, err := c.Conn.Write(p[written:end])
		written += n
		if err != nil {
			return written, err
		}
		if c.cfg.SlowPause > 0 {
			time.Sleep(c.cfg.SlowPause)
		}
	}
	return written, nil
}

// Injector hands out deterministically seeded fault connections. Each
// wrapped connection draws an independent schedule from (seed, index), so
// wrapping k connections yields k reproducible streams.
//
// Connection indices follow wrap order. When connections are wrapped from
// concurrent goroutines (a listener accepting parallel dials), the
// index→peer assignment follows the accept order; for schedules pinned to
// a specific peer regardless of interleaving, wrap that peer's conn
// directly with Wrap and a per-peer seed.
type Injector struct {
	seed int64
	cfg  Config
	next atomic.Int64
}

// NewInjector creates an injector whose connections derive their seeds
// from seed.
func NewInjector(seed int64, cfg Config) *Injector {
	return &Injector{seed: seed, cfg: cfg}
}

// Conn wraps one connection with the next derived schedule.
func (in *Injector) Conn(c net.Conn) *Conn {
	i := in.next.Add(1)
	// splitmix-style odd multiplier decorrelates consecutive seeds.
	return Wrap(c, in.seed+i*int64(0x9E3779B97F4A7C15&^(1<<63)), in.cfg)
}

// Listener wraps ln so every accepted connection is fault-injected.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}
