package prefix

import "testing"

// FuzzMemberMatchesComparison fuzzes the central equivalence of the
// scheme: prefix membership must decide interval membership exactly.
func FuzzMemberMatchesComparison(f *testing.F) {
	f.Add(uint16(7), uint16(6), uint16(14))
	f.Add(uint16(0), uint16(0), uint16(0))
	f.Add(uint16(65535), uint16(0), uint16(65535))
	f.Add(uint16(1), uint16(2), uint16(1)) // inverted bounds
	f.Fuzz(func(t *testing.T, xv, av, bv uint16) {
		const w = 16
		x, lo, hi := uint64(xv), uint64(av), uint64(bv)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Member(x, lo, hi, w)
		want := lo <= x && x <= hi
		if got != want {
			t.Fatalf("Member(%d,[%d,%d]) = %v, want %v", x, lo, hi, got, want)
		}
	})
}

// FuzzCoverTiles fuzzes the range-cover invariants: disjoint, ordered,
// exactly tiling, within the 2w−2 bound.
func FuzzCoverTiles(f *testing.F) {
	f.Add(uint16(6), uint16(14))
	f.Add(uint16(0), uint16(65535))
	f.Add(uint16(1), uint16(65534)) // worst case 2w−2
	f.Fuzz(func(t *testing.T, av, bv uint16) {
		const w = 16
		lo, hi := uint64(av), uint64(bv)
		if lo > hi {
			lo, hi = hi, lo
		}
		cover := Cover(lo, hi, w)
		if len(cover) > MaxCoverSize(w) {
			t.Fatalf("cover size %d exceeds %d", len(cover), MaxCoverSize(w))
		}
		next := lo
		for _, p := range cover {
			if p.Lo() != next {
				t.Fatalf("gap/overlap at %d", next)
			}
			next = p.Hi() + 1
		}
		if next != hi+1 {
			t.Fatalf("cover stops at %d, want %d", next-1, hi)
		}
	})
}

// FuzzFamilyNumericalization fuzzes that every family member contains the
// value and numericalizations are unique within the family.
func FuzzFamilyNumericalization(f *testing.F) {
	f.Add(uint32(7))
	f.Add(uint32(0))
	f.Fuzz(func(t *testing.T, xv uint32) {
		const w = 32
		x := uint64(xv)
		fam := Family(x, w)
		if len(fam) != w+1 {
			t.Fatalf("family size %d", len(fam))
		}
		seen := map[uint64]bool{}
		for _, p := range fam {
			if !p.Contains(x) {
				t.Fatalf("family member %v excludes %d", p, x)
			}
			n := p.Numericalize()
			if seen[n] {
				t.Fatalf("duplicate numericalization %b", n)
			}
			seen[n] = true
		}
	})
}
