package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFamilyOfSevenWidthFour(t *testing.T) {
	// The paper's running example: G(7) for w=4 is
	// {0111, 011*, 01**, 0***, ****}.
	fam := Family(7, 4)
	want := []string{"0111", "011*", "01**", "0***", "****"}
	if len(fam) != len(want) {
		t.Fatalf("family size = %d, want %d", len(fam), len(want))
	}
	for i, p := range fam {
		if p.String() != want[i] {
			t.Errorf("family[%d] = %q, want %q", i, p, want[i])
		}
	}
}

func TestCoverOfPaperExample(t *testing.T) {
	// Q([6,14]) = {011*, 10**, 110*, 1110} for w=4.
	got := Cover(6, 14, 4)
	want := []string{"011*", "10**", "110*", "1110"}
	if len(got) != len(want) {
		t.Fatalf("cover = %v, want %v", got, want)
	}
	for i, p := range got {
		if p.String() != want[i] {
			t.Errorf("cover[%d] = %q, want %q", i, p, want[i])
		}
	}
}

func TestNumericalizeExamples(t *testing.T) {
	// O(110*) = 11010 = 26; the paper's example.
	p := New(0b1100, 3, 4)
	if p.String() != "110*" {
		t.Fatalf("prefix = %q, want 110*", p)
	}
	if got := p.Numericalize(); got != 0b11010 {
		t.Errorf("O(110*) = %b, want 11010", got)
	}
	// O(G(7)) and O(Q([6,14])) share exactly 01110 per the paper.
	famNums := map[uint64]struct{}{}
	for _, fp := range Family(7, 4) {
		famNums[fp.Numericalize()] = struct{}{}
	}
	var common []uint64
	for _, cp := range Cover(6, 14, 4) {
		if _, ok := famNums[cp.Numericalize()]; ok {
			common = append(common, cp.Numericalize())
		}
	}
	if len(common) != 1 || common[0] != 0b01110 {
		t.Errorf("common numericalizations = %b, want exactly [01110]", common)
	}
}

func TestMemberPaperExamples(t *testing.T) {
	if !Member(7, 6, 14, 4) {
		t.Error("Member(7, [6,14]) = false, want true")
	}
	if Member(5, 6, 14, 4) {
		t.Error("Member(5, [6,14]) = true, want false")
	}
	if Member(15, 6, 14, 4) {
		t.Error("Member(15, [6,14]) = true, want false")
	}
}

func TestFamilyIntervalsContainValue(t *testing.T) {
	const w = 10
	for x := uint64(0); x < 1<<w; x += 7 {
		for _, p := range Family(x, w) {
			if !p.Contains(x) {
				t.Fatalf("prefix %v of G(%d) does not contain %d", p, x, x)
			}
			if p.Lo() > x || p.Hi() < x {
				t.Fatalf("interval [%d,%d] of %v excludes %d", p.Lo(), p.Hi(), p, x)
			}
		}
	}
}

func TestCoverTilesIntervalExactly(t *testing.T) {
	const w = 8
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		lo := uint64(rng.Intn(1 << w))
		hi := lo + uint64(rng.Intn(int(1<<w-lo)))
		cover := Cover(lo, hi, w)
		if len(cover) > MaxCoverSize(w) {
			t.Fatalf("cover of [%d,%d] has %d prefixes, max %d", lo, hi, len(cover), MaxCoverSize(w))
		}
		// Disjoint, ordered, and tiling.
		next := lo
		for _, p := range cover {
			if p.Lo() != next {
				t.Fatalf("cover of [%d,%d]: gap or overlap at %d (prefix %v)", lo, hi, next, p)
			}
			next = p.Hi() + 1
		}
		if next != hi+1 {
			t.Fatalf("cover of [%d,%d] stops at %d", lo, hi, next-1)
		}
	}
}

func TestCoverFullDomain(t *testing.T) {
	for w := 1; w <= 16; w++ {
		cover := Cover(0, 1<<w-1, w)
		if len(cover) != 1 || cover[0].DefinedBits() != 0 {
			t.Errorf("w=%d: cover of full domain = %v, want single full wildcard", w, cover)
		}
	}
}

func TestCoverSinglePoint(t *testing.T) {
	cover := Cover(9, 9, 4)
	if len(cover) != 1 || cover[0].String() != "1001" {
		t.Errorf("cover of [9,9] = %v, want [1001]", cover)
	}
}

func TestMemberMatchesDirectComparison(t *testing.T) {
	const w = 9
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		x := uint64(rng.Intn(1 << w))
		lo := uint64(rng.Intn(1 << w))
		hi := lo + uint64(rng.Intn(int(1<<w-lo)))
		got := Member(x, lo, hi, w)
		want := lo <= x && x <= hi
		if got != want {
			t.Fatalf("Member(%d, [%d,%d]) = %v, want %v", x, lo, hi, got, want)
		}
	}
}

func TestMemberPropertyQuick(t *testing.T) {
	const w = 16
	prop := func(xv, av, bv uint16) bool {
		x, a, b := uint64(xv), uint64(av), uint64(bv)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return Member(x, lo, hi, w) == (lo <= x && x <= hi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNumericalizationInjective(t *testing.T) {
	// Across all prefixes of width 6, numericalizations must be distinct.
	const w = 6
	seen := map[uint64]string{}
	for s := 0; s <= w; s++ {
		for v := uint64(0); v < 1<<s; v++ {
			p := Prefix{value: v, s: uint8(s), w: uint8(w)}
			n := p.Numericalize()
			if prev, dup := seen[n]; dup {
				t.Fatalf("O(%v) = O(%s) = %b", p, prev, n)
			}
			seen[n] = p.String()
		}
	}
}

func TestFamilySizeAndMaxCoverSize(t *testing.T) {
	if FamilySize(16) != 17 {
		t.Errorf("FamilySize(16) = %d, want 17", FamilySize(16))
	}
	if MaxCoverSize(1) != 1 {
		t.Errorf("MaxCoverSize(1) = %d, want 1", MaxCoverSize(1))
	}
	if MaxCoverSize(16) != 30 {
		t.Errorf("MaxCoverSize(16) = %d, want 30", MaxCoverSize(16))
	}
	// The worst case 2w-2 is achieved, e.g. [1, 2^w-2].
	w := 8
	if got := len(Cover(1, 1<<w-2, w)); got != MaxCoverSize(w) {
		t.Errorf("worst-case cover size = %d, want %d", got, MaxCoverSize(w))
	}
}

func TestWidthFor(t *testing.T) {
	cases := []struct {
		max  uint64
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := WidthFor(c.max); got != c.want {
			t.Errorf("WidthFor(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestPrefixStringAndBounds(t *testing.T) {
	p := New(0b0110, 3, 4) // prefix 011*
	if p.String() != "011*" {
		t.Errorf("String = %q, want 011*", p)
	}
	if p.Lo() != 6 || p.Hi() != 7 {
		t.Errorf("bounds = [%d,%d], want [6,7]", p.Lo(), p.Hi())
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("width 0", func() { New(0, 0, 0) })
	mustPanic("width too large", func() { New(0, 0, 64) })
	mustPanic("s > w", func() { New(0, 5, 4) })
	mustPanic("value overflow", func() { New(16, 2, 4) })
	mustPanic("empty interval", func() { Cover(5, 4, 4) })
	mustPanic("lo overflow", func() { Cover(16, 17, 4) })
}

func TestFamilyWidthOne(t *testing.T) {
	fam := Family(1, 1)
	if len(fam) != 2 || fam[0].String() != "1" || fam[1].String() != "*" {
		t.Errorf("G(1) width 1 = %v", fam)
	}
}

func TestCoverAtDomainTop(t *testing.T) {
	// Interval touching 2^w-1 must terminate (no wraparound loop).
	const w = 5
	cover := Cover(30, 31, w)
	if len(cover) != 1 || cover[0].Lo() != 30 || cover[0].Hi() != 31 {
		t.Errorf("cover [30,31] = %v", cover)
	}
	cover = Cover(31, 31, w)
	if len(cover) != 1 || cover[0].Lo() != 31 {
		t.Errorf("cover [31,31] = %v", cover)
	}
}

func TestNumericalizedSlice(t *testing.T) {
	ps := Family(3, 2) // 11, 1*, **
	ns := Numericalized(ps)
	want := []uint64{0b111, 0b110, 0b100}
	if len(ns) != len(want) {
		t.Fatalf("len = %d, want %d", len(ns), len(want))
	}
	for i := range ns {
		if ns[i] != want[i] {
			t.Errorf("ns[%d] = %b, want %b", i, ns[i], want[i])
		}
	}
}
