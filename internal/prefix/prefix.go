// Package prefix implements the prefix membership verification scheme that
// underpins LPPA's privacy-preserving range queries (SafeQ-style, Chen &
// Liu, INFOCOM'11).
//
// The scheme converts the question "is x inside [lo, hi]?" into set
// intersection over short bit strings:
//
//   - the prefix family G(x) of a w-bit number x is the set of w+1 prefixes
//     obtained by successively wildcarding the trailing bits of x;
//   - the range cover Q([lo, hi]) is the minimal set of prefixes whose
//     denoted intervals exactly tile [lo, hi] (at most 2w-2 prefixes);
//   - the numericalization O(p) maps a prefix p = t1..ts*..* to the unique
//     (w+1)-bit number t1..ts 1 0..0.
//
// Then x ∈ [lo, hi]  ⇔  O(G(x)) ∩ O(Q([lo, hi])) ≠ ∅. Because the check is
// pure equality of opaque tokens, both sides can be pushed through a keyed
// hash (see package mask) and evaluated by an untrusted party.
package prefix

import (
	"fmt"
	"strings"
)

// MaxWidth is the largest supported prefix width in bits. Values are carried
// in uint64, and numericalization needs one extra bit, so widths up to 63 are
// representable.
const MaxWidth = 63

// Prefix denotes the set of w-bit numbers that share the s leading bits of
// value. The remaining w-s bits are wildcards. The zero Prefix is the full
// wildcard of width 0 and is generally not meaningful; construct prefixes
// through New, Family, or Cover.
type Prefix struct {
	value uint64 // the s defined leading bits, right-aligned (value < 1<<s)
	s     uint8  // number of defined bits
	w     uint8  // total width in bits
}

// New returns the prefix of width w whose s leading bits equal the top s bits
// of the w-bit number x. It panics if the arguments are out of range; callers
// validate widths once at protocol setup, not per prefix.
func New(x uint64, s, w int) Prefix {
	checkWidth(w)
	if s < 0 || s > w {
		panic(fmt.Sprintf("prefix: defined bits s=%d out of range [0,%d]", s, w))
	}
	checkValue(x, w)
	return Prefix{value: x >> (w - s), s: uint8(s), w: uint8(w)}
}

func checkWidth(w int) {
	if w <= 0 || w > MaxWidth {
		panic(fmt.Sprintf("prefix: width %d out of range [1,%d]", w, MaxWidth))
	}
}

func checkValue(x uint64, w int) {
	if w < 64 && x >= 1<<w {
		panic(fmt.Sprintf("prefix: value %d does not fit in %d bits", x, w))
	}
}

// Width reports the total width w of the prefix in bits.
func (p Prefix) Width() int { return int(p.w) }

// DefinedBits reports the number s of non-wildcard leading bits.
func (p Prefix) DefinedBits() int { return int(p.s) }

// Lo returns the smallest w-bit number matched by the prefix.
func (p Prefix) Lo() uint64 { return p.value << (p.w - p.s) }

// Hi returns the largest w-bit number matched by the prefix.
func (p Prefix) Hi() uint64 {
	wild := uint(p.w - p.s)
	return p.value<<wild | (1<<wild - 1)
}

// Contains reports whether the w-bit number x is matched by the prefix.
func (p Prefix) Contains(x uint64) bool {
	return x>>(p.w-p.s) == p.value
}

// Numericalize converts the prefix t1..ts*..* into the unique (w+1)-bit
// number t1..ts 1 0..0. Distinct prefixes of the same width map to distinct
// numbers, which is what makes hashed-set intersection sound.
func (p Prefix) Numericalize() uint64 {
	return (p.value<<1 | 1) << (p.w - p.s)
}

// String renders the prefix in the paper's notation, e.g. "110*" for the
// 4-bit prefix with defined bits 110.
func (p Prefix) String() string {
	var b strings.Builder
	b.Grow(int(p.w))
	for i := int(p.s) - 1; i >= 0; i-- {
		if p.value>>uint(i)&1 == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	for i := 0; i < int(p.w-p.s); i++ {
		b.WriteByte('*')
	}
	return b.String()
}

// Family returns the prefix family G(x): the w+1 prefixes of the w-bit
// number x, from the fully defined prefix down to the full wildcard. Each
// element denotes an interval containing x.
func Family(x uint64, w int) []Prefix {
	checkWidth(w)
	checkValue(x, w)
	fam := make([]Prefix, 0, w+1)
	for s := w; s >= 0; s-- {
		fam = append(fam, Prefix{value: x >> (w - s), s: uint8(s), w: uint8(w)})
	}
	return fam
}

// FamilySize returns |G(x)| for width w, i.e. w+1.
func FamilySize(w int) int { return w + 1 }

// MaxCoverSize returns the worst-case |Q([lo,hi])| for width w. A minimal
// prefix cover of an interval of w-bit numbers has at most 2w-2 elements
// (Gupta & McKeown, IEEE Network 2001); for w = 1 a single prefix always
// suffices.
func MaxCoverSize(w int) int {
	if w <= 1 {
		return 1
	}
	return 2*w - 2
}

// Cover returns the minimal prefix cover Q([lo, hi]) of the interval of
// w-bit numbers [lo, hi]: the unique smallest set of prefixes whose denoted
// intervals are disjoint and tile [lo, hi] exactly. Prefixes are emitted in
// ascending interval order. It panics if lo > hi or either bound does not
// fit in w bits.
func Cover(lo, hi uint64, w int) []Prefix {
	checkWidth(w)
	checkValue(lo, w)
	checkValue(hi, w)
	if lo > hi {
		panic(fmt.Sprintf("prefix: empty interval [%d,%d]", lo, hi))
	}
	// Greedy aligned-block decomposition (the CIDR split): repeatedly take
	// the largest prefix-aligned block that starts at lo and does not
	// overshoot hi.
	cover := make([]Prefix, 0, MaxCoverSize(w))
	for {
		wild := trailingZeros(lo, w) // widest block permitted by alignment
		// Shrink until the block fits inside [lo, hi].
		for wild > 0 && lo+(1<<wild)-1 > hi {
			wild--
		}
		cover = append(cover, Prefix{value: lo >> wild, s: uint8(uint(w) - wild), w: uint8(w)})
		next := lo + 1<<wild // may wrap only when the cover reached 2^w-1
		if next > hi || next == 0 {
			return cover
		}
		lo = next
	}
}

// trailingZeros returns the number of trailing zero bits of x, capped at w.
// By convention the alignment of 0 is w (it begins every block size).
func trailingZeros(x uint64, w int) uint {
	if x == 0 {
		return uint(w)
	}
	var n uint
	for x&1 == 0 && n < uint(w) {
		n++
		x >>= 1
	}
	return n
}

// Member reports whether x ∈ [lo, hi] using the prefix membership predicate
// O(G(x)) ∩ O(Q([lo,hi])) ≠ ∅. It is the plaintext reference for the masked
// protocol and is property-tested against direct comparison.
func Member(x, lo, hi uint64, w int) bool {
	cover := Cover(lo, hi, w)
	covered := make(map[uint64]struct{}, len(cover))
	for _, p := range cover {
		covered[p.Numericalize()] = struct{}{}
	}
	for _, p := range Family(x, w) {
		if _, ok := covered[p.Numericalize()]; ok {
			return true
		}
	}
	return false
}

// Numericalized applies Numericalize to every prefix in ps.
func Numericalized(ps []Prefix) []uint64 {
	out := make([]uint64, len(ps))
	for i, p := range ps {
		out[i] = p.Numericalize()
	}
	return out
}

// WidthFor returns the smallest width w such that max fits in w bits, i.e.
// the bit length of max (minimum 1).
func WidthFor(max uint64) int {
	w := 1
	for max >= 1<<w && w < MaxWidth {
		w++
	}
	return w
}
