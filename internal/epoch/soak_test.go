package epoch_test

import (
	"errors"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/epoch"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
	"lppa/internal/round"
)

// TestEpochServiceSoak is the `make epoch-soak` target: a short
// multi-epoch chaos run meant for -race. Concurrent submitters hammer the
// admission gate while the sealing ticker and explicit Seal calls race
// each other, with a live tracer and flight recorder attached so any
// failed or degraded epoch leaves a dump behind (CI uploads the dump
// directory when the job fails). The exactness assertions at the end are
// the point: however the races interleave, the quota ledger must equal
// the admitted-submission count and the billing ledger must equal the sum
// of every charge the epochs reported.
func TestEpochServiceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run; skipped under -short")
	}
	p := core.Params{Channels: 8, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("epoch-soak"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	flightDir := os.Getenv("LPPA_SOAK_FLIGHT_DIR")
	if flightDir == "" {
		flightDir = t.TempDir()
	}
	tracer := obs.NewTracer("epoch-soak")
	flight := obs.NewFlightRecorder(flightDir, 8, 0)
	reg := obs.NewRegistry()

	billingStore, quotaStore := epoch.NewMemStore(), epoch.NewMemStore()
	billing, err := epoch.NewAccountant("billing", billingStore, p.BMax*4, reg)
	if err != nil {
		t.Fatal(err)
	}
	quota, err := epoch.NewAccountant("quota", quotaStore, 64, reg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := epoch.New(epoch.Config{
		Params: p,
		Ring:   ring,
		Seed:   99,
		Policy: core.DisguisePolicy{P0: 1},
		// Tight enough that the gate sheds under the submitter burst, loose
		// enough that every epoch still gets a population.
		Admission: epoch.AdmissionConfig{Rate: 800, Burst: 200},
		Billing:   billing,
		Quota:     quota,
		Interval:  2 * time.Millisecond,
		RoundOptions: []round.Option{
			round.WithWorkers(4),
			round.WithTrace(tracer),
			round.WithFlightRecorder(flight),
		},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drain concurrently: tally epochs and the charges each one billed so
	// the billing ledger has an independent ground truth to match.
	var epochs int
	var billed uint64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for res := range svc.Results() {
			if res.Err != nil {
				t.Errorf("epoch %d failed: %v", res.Epoch, res.Err)
				continue
			}
			epochs++
			for _, c := range res.Result.Outcome.Charges {
				billed += uint64(c)
			}
		}
	}()

	const submitters = 8
	const perSubmitter = 150
	var admitted, rejected atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < perSubmitter; i++ {
				sub := epoch.Submission{
					// Overlapping bidder ranges across goroutines force
					// latest-wins resubmission races.
					Bidder: rng.Intn(120),
					Point:  geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))},
					Bids:   make([]uint64, p.Channels),
				}
				for r := range sub.Bids {
					sub.Bids[r] = uint64(rng.Intn(int(p.BMax) + 1))
				}
				err := svc.Submit(sub)
				var rl *epoch.ErrRateLimited
				switch {
				case err == nil:
					admitted.Add(1)
				case errors.As(err, &rl):
					rejected.Add(1)
				default:
					t.Errorf("submitter %d: %v", g, err)
				}
				if i%20 == 19 {
					// Explicit seals racing the ticker are the chaos.
					if err := svc.Seal(); err != nil {
						t.Errorf("submitter %d seal: %v", g, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	<-drained

	// A quota debit can land just after the ticker sealed its epoch; the
	// operator's shutdown barrier is one last Flush over both ledgers.
	if err := (&epoch.Accounting{Billing: billing, Quota: quota}).Flush(); err != nil {
		t.Fatal(err)
	}

	if epochs == 0 {
		t.Fatal("soak ran zero epochs")
	}
	if got, want := admitted.Load()+rejected.Load(), uint64(submitters*perSubmitter); got != want {
		t.Fatalf("lost submissions: admitted+rejected = %d, want %d", got, want)
	}
	sum := func(s *epoch.MemStore) uint64 {
		var n uint64
		for _, v := range s.Totals() {
			n += v
		}
		return n
	}
	if got := sum(quotaStore); got != admitted.Load() {
		t.Errorf("quota ledger inexact: persisted %d, admitted %d", got, admitted.Load())
	}
	if got := sum(billingStore); got != billed {
		t.Errorf("billing ledger inexact: persisted %d, epochs billed %d", got, billed)
	}
	t.Logf("soak: %d epochs, %d admitted, %d rate-limited, %d billed over %d store calls",
		epochs, admitted.Load(), rejected.Load(), billed, billingStore.Calls()+quotaStore.Calls())
}
