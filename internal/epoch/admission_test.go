package epoch

import (
	"math/rand"
	"testing"
	"time"

	"lppa/internal/obs"
)

// arrival is one scripted ingest event: a bidder asking at a clock time.
type arrival struct {
	bidder int
	at     float64
}

// seededArrivals scripts a bursty Poisson-ish arrival process from a
// seed: exponential inter-arrival gaps, bidder ids skewed so a few are
// hot (the per-bidder buckets must bite on them first).
func seededArrivals(seed int64, n, bidders int, ratePerSec float64) []arrival {
	rng := rand.New(rand.NewSource(seed))
	out := make([]arrival, n)
	clock := 0.0
	for i := range out {
		clock += rng.ExpFloat64() / ratePerSec
		b := rng.Intn(bidders)
		if rng.Intn(3) == 0 {
			b = 0 // hot bidder: one third of all traffic
		}
		out[i] = arrival{bidder: b, at: clock}
	}
	return out
}

// admitSequence replays one arrival script through a fresh gate and
// records the admit/reject outcome per event.
func admitSequence(t *testing.T, cfg AdmissionConfig, arr []arrival) []bool {
	t.Helper()
	adm, err := NewAdmission(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, len(arr))
	for i, a := range arr {
		out[i], _ = adm.AdmitBidderAt(a.bidder, a.at)
	}
	return out
}

// TestAdmissionDeterministic pins the satellite contract: a seeded
// arrival process yields an identical admit/reject sequence on every
// replay, for several seeds and both gate shapes.
func TestAdmissionDeterministic(t *testing.T) {
	cfgs := map[string]AdmissionConfig{
		"global":     {Rate: 40, Burst: 10},
		"per-bidder": {Rate: 200, Burst: 50, PerBidderRate: 5, PerBidderBurst: 2},
		"both-tight": {Rate: 30, Burst: 5, PerBidderRate: 4, PerBidderBurst: 1},
	}
	for name, cfg := range cfgs {
		for _, seed := range []int64{1, 7, 42} {
			arr := seededArrivals(seed, 400, 20, 120)
			first := admitSequence(t, cfg, arr)
			admitted, rejected := 0, 0
			for _, ok := range first {
				if ok {
					admitted++
				} else {
					rejected++
				}
			}
			if admitted == 0 || rejected == 0 {
				t.Fatalf("%s seed=%d: degenerate sequence (admitted=%d rejected=%d), tune the script",
					name, seed, admitted, rejected)
			}
			for rep := 0; rep < 3; rep++ {
				got := admitSequence(t, cfg, arr)
				for i := range got {
					if got[i] != first[i] {
						t.Fatalf("%s seed=%d replay %d: event %d admit=%v, first run said %v",
							name, seed, rep, i, got[i], first[i])
					}
				}
			}
		}
	}
}

// TestBucketRefillAndRetryHint checks the bucket's arithmetic directly:
// burst spends, the empty-bucket hint predicts exactly when the next
// token lands, and a backwards clock is clamped rather than refunding.
func TestBucketRefillAndRetryHint(t *testing.T) {
	b, err := NewBucket(2, 3) // 2 tokens/s, burst 3
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if ok, _ := b.Take(0); !ok {
			t.Fatalf("burst take %d rejected", i)
		}
	}
	ok, retry := b.Take(0)
	if ok {
		t.Fatal("fourth take at t=0 admitted past burst")
	}
	if want := 500 * time.Millisecond; retry != want {
		t.Fatalf("retry hint %v, want %v (deficit 1 token at 2/s)", retry, want)
	}
	// The hint is honest: retrying exactly then succeeds.
	if ok, _ = b.Take(retry.Seconds()); !ok {
		t.Fatal("take at the hinted time rejected")
	}
	// Clock going backwards neither refills nor panics.
	if ok, _ = b.Take(-10); ok {
		t.Fatal("backwards clock minted a token")
	}
}

// TestPerBidderFairness pins why the second bucket layer exists: a hot
// bidder hammering the gate is rejected while a quiet bidder arriving at
// the same instants stays admitted.
func TestPerBidderFairness(t *testing.T) {
	reg := obs.NewRegistry()
	adm, err := NewAdmission(AdmissionConfig{
		Rate: 1000, Burst: 1000, // global never binds here
		PerBidderRate: 1, PerBidderBurst: 2,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	hotRejected := 0
	for i := 0; i < 10; i++ {
		now := float64(i) * 0.01 // 100/s, far above 1/s per bidder
		if ok, _ := adm.AdmitBidderAt(0, now); !ok {
			hotRejected++
		}
		if ok, _ := adm.AdmitBidderAt(1000+i, now); !ok {
			t.Fatalf("distinct quiet bidder %d rejected at %v", 1000+i, now)
		}
	}
	if hotRejected != 8 { // burst 2 admits, the other 8 bounce
		t.Fatalf("hot bidder rejected %d of 10, want 8", hotRejected)
	}
	if got := adm.rejected.Value(); got != 8 {
		t.Fatalf("lppa_admission_rejected_total = %d, want 8", got)
	}
	if got := adm.admitted.Value(); got != 12 {
		t.Fatalf("lppa_admission_admitted_total = %d, want 12", got)
	}
}

// TestAdmissionConfigValidation rejects malformed bucket shapes at
// construction, not first use.
func TestAdmissionConfigValidation(t *testing.T) {
	if _, err := NewAdmission(AdmissionConfig{Rate: 5}, nil); err == nil {
		t.Fatal("rate without burst accepted")
	}
	if _, err := NewAdmission(AdmissionConfig{PerBidderRate: 5}, nil); err == nil {
		t.Fatal("per-bidder rate without burst accepted")
	}
	adm, err := NewAdmission(AdmissionConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := adm.AdmitBidderAt(3, 0); !ok {
		t.Fatal("zero-value gate rejected")
	}
	if ok, _ := adm.AdmitConnAt(0); !ok {
		t.Fatal("zero-value conn gate rejected")
	}
}
