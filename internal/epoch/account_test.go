package epoch

import (
	"math/rand"
	"sync"
	"testing"

	"lppa/internal/obs"
)

// TestAccountantExactUnderConcurrentFlush is the satellite exactness
// test: many goroutines add deltas while another hammers Flush, and the
// persisted totals still equal the exact per-key sums.
func TestAccountantExactUnderConcurrentFlush(t *testing.T) {
	store := NewMemStore()
	acct, err := NewAccountant("billing", store, 64, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	const workers, opsPer, keys = 8, 2000, 37
	want := make([]uint64, keys)
	var wantMu sync.Mutex

	var wg sync.WaitGroup
	stopFlush := make(chan struct{})
	flushDone := make(chan struct{})
	go func() { // concurrent flusher racing every Add
		defer close(flushDone)
		for {
			select {
			case <-stopFlush:
				return
			default:
				if err := acct.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			local := make([]uint64, keys)
			for i := 0; i < opsPer; i++ {
				k := rng.Intn(keys)
				d := uint64(rng.Intn(9)) // zero deltas allowed: must be no-ops
				if err := acct.Add(k, d); err != nil {
					t.Error(err)
					return
				}
				local[k] += d
			}
			wantMu.Lock()
			for k, v := range local {
				want[k] += v
			}
			wantMu.Unlock()
		}(w)
	}
	wg.Wait()
	close(stopFlush)
	<-flushDone
	if err := acct.Flush(); err != nil {
		t.Fatal(err)
	}
	if p := acct.Pending(); p != 0 {
		t.Fatalf("%d keys still pending after final Flush", p)
	}
	for k := 0; k < keys; k++ {
		if got := store.Total(k); got != want[k] {
			t.Fatalf("key %d: persisted %d, exact sum %d", k, got, want[k])
		}
	}
}

// TestBatchedAccountingWriteReduction is the acceptance-criteria
// assertion: at N=10000 accounting ops the thresholded accountant issues
// at least 10× fewer simulated datastore writes (and calls) than the
// per-op baseline, with bit-exact totals. BenchmarkAccounting reports
// the same ratio into BENCH_PR8.json.
func TestBatchedAccountingWriteReduction(t *testing.T) {
	const ops, bidders = 10000, 400
	rng := rand.New(rand.NewSource(9))

	perOp := NewMemStore()
	batched := NewMemStore()
	acct, err := NewAccountant("billing", batched, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ops; i++ {
		k := rng.Intn(bidders)
		d := uint64(rng.Intn(5)) + 1
		if err := perOp.ApplyBatch(map[int]uint64{k: d}); err != nil {
			t.Fatal(err)
		}
		if err := acct.Add(k, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := acct.Flush(); err != nil { // epoch close
		t.Fatal(err)
	}

	if perOp.Writes() != ops || perOp.Calls() != ops {
		t.Fatalf("baseline accounting: %d writes %d calls, want %d each", perOp.Writes(), perOp.Calls(), ops)
	}
	if w := batched.Writes(); w*10 > perOp.Writes() {
		t.Fatalf("batched writes %d, need ≥10× under baseline %d", w, perOp.Writes())
	}
	if c := batched.Calls(); c*10 > perOp.Calls() {
		t.Fatalf("batched calls %d, need ≥10× under baseline %d", c, perOp.Calls())
	}
	bt, pt := batched.Totals(), perOp.Totals()
	if len(bt) != len(pt) {
		t.Fatalf("batched persisted %d keys, baseline %d", len(bt), len(pt))
	}
	for k, v := range pt {
		if bt[k] != v {
			t.Fatalf("key %d: batched total %d, baseline %d", k, bt[k], v)
		}
	}
}

// TestAccountantThresholdZero pins the pure epoch-close shape: no write
// reaches the store until Flush.
func TestAccountantThresholdZero(t *testing.T) {
	store := NewMemStore()
	acct, err := NewAccountant("quota", store, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := acct.Add(i%17, 3); err != nil {
			t.Fatal(err)
		}
	}
	if store.Calls() != 0 {
		t.Fatalf("threshold 0 flushed mid-epoch: %d calls", store.Calls())
	}
	if err := acct.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.Calls() == 0 || store.Total(0) == 0 {
		t.Fatal("epoch-close flush did not persist")
	}
	sum := uint64(0)
	for _, v := range store.Totals() {
		sum += v
	}
	if sum != 1500 {
		t.Fatalf("persisted sum %d, want 1500", sum)
	}
}

// TestAccountantNilStore rejects construction without a backend.
func TestAccountantNilStore(t *testing.T) {
	if _, err := NewAccountant("billing", nil, 10, nil); err == nil {
		t.Fatal("nil store accepted")
	}
}
