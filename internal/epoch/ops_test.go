package epoch

import (
	"fmt"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/obs"
	"lppa/internal/obs/ops"
	"lppa/internal/round"
)

// TestServiceObservedTwin is the service-level observed-twin pin: a
// service wearing the full ops plane — sampled tracing, event log, SLO
// monitor, anonymity series — must produce bit-identical epoch results
// and award digests to a bare service over the same seed and
// populations, while the plane itself fills with the expected telemetry.
func TestServiceObservedTwin(t *testing.T) {
	p, ring := epochFixture(t)
	const seed, epochs = 41, 4
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	pops := make([][]Submission, epochs)
	for e := range pops {
		pops[e] = population(p, 20+5*e, int64(300+e))
	}

	runService := func(plane *ops.Plane, sampler *obs.TraceSampler) []*EpochResult {
		cfg := Config{Params: p, Ring: ring, Seed: seed, Policy: pol, Ops: plane}
		if sampler != nil {
			cfg.RoundOptions = append(cfg.RoundOptions, round.WithTraceSampler(sampler))
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for e, pop := range pops {
			submitAll(t, s, pop, int64(200+e))
			if err := s.Seal(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return drain(t, s)
	}

	bare := runService(nil, nil)

	sampler := obs.NewTraceSampler("epoch-twin", seed, 2)
	fr := obs.NewFlightRecorder(t.TempDir(), 8, 0)
	plane := ops.New(ops.Config{
		Events:  ops.NewEventLog(nil),
		Sampler: sampler,
		Flight:  fr,
		SLO: ops.SLOConfig{ // generous ceilings: telemetry on, alarms off
			Phases: map[string]time.Duration{"allocate": time.Hour, "charge": time.Hour},
		},
		AnonymityFloor: 1,
	})
	observed := runService(plane, sampler)

	if len(bare) != epochs || len(observed) != epochs {
		t.Fatalf("epochs: bare %d observed %d, want %d", len(bare), len(observed), epochs)
	}
	for e := range bare {
		tag := fmt.Sprintf("epoch%d", e)
		sameOutcome(t, tag, observed[e].Result, bare[e].Result)
		bd := awardDigest(bare[e].Epoch, bare[e].Bidders, bare[e].Result)
		od := awardDigest(observed[e].Epoch, observed[e].Bidders, observed[e].Result)
		if bd != od {
			t.Errorf("%s: award digests diverge under the ops plane", tag)
		}
	}

	// The plane saw every epoch: seal + close events in order, the
	// sampler's 1-in-2 schedule on the closed events' trace ids, and a
	// status document carrying the last epoch's digest.
	var sealed, closed, traced int
	for _, ev := range plane.Events().Recent() {
		switch ev.Type {
		case ops.EventEpochSealed:
			sealed++
		case ops.EventEpochClosed:
			closed++
			if ev.Trace != "" {
				traced++
			}
		}
	}
	if sealed != epochs || closed != epochs {
		t.Fatalf("plane saw %d seals / %d closes, want %d each", sealed, closed, epochs)
	}
	if traced != epochs/2 {
		t.Fatalf("%d of %d epochs carried a trace id with k=2", traced, epochs)
	}
	if fr.Buffered() != epochs/2 {
		t.Fatalf("flight ring buffered %d traces, want %d", fr.Buffered(), epochs/2)
	}
	st := plane.Status()
	if st.EpochsObserved != epochs || st.LastEpoch != epochs-1 {
		t.Fatalf("plane status: %+v", st)
	}
	wantDigest := awardDigest(bare[epochs-1].Epoch, bare[epochs-1].Bidders, bare[epochs-1].Result)
	if st.LastAwardHash != wantDigest {
		t.Fatalf("status digest %q != recomputed %q", st.LastAwardHash, wantDigest)
	}
	if len(st.Anonymity) != epochs || st.Anonymity[0].Min < 1 {
		t.Fatalf("anonymity series: %+v", st.Anonymity)
	}
	if ok, reasons := plane.Healthy(); !ok {
		t.Fatalf("quiet run unhealthy: %v", reasons)
	}
}

// TestServiceProbeAndDrainEvents pins the readiness lifecycle through the
// service: New installs the status probe (ready, correct intake depth),
// Close flips the plane through draining to closed.
func TestServiceProbeAndDrainEvents(t *testing.T) {
	p, ring := epochFixture(t)
	plane := ops.New(ops.Config{Events: ops.NewEventLog(nil)})
	s, err := New(Config{Params: p, Ring: ring, Seed: 7,
		Policy: core.DisguisePolicy{P0: 1}, Ops: plane})
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := plane.Ready(); !ok {
		t.Fatalf("running service not ready: %s", reason)
	}
	for _, sub := range population(p, 6, 55) {
		if err := s.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	if st := plane.Status(); st.Service == nil || st.Service.IntakeDepth != 6 {
		t.Fatalf("probe intake depth: %+v", st.Service)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	if ok, reason := plane.Ready(); ok || reason != "closed" {
		t.Fatalf("closed service still ready: %v %q", ok, reason)
	}
	var types []string
	for _, ev := range plane.Events().Recent() {
		if ev.Type == ops.EventDraining || ev.Type == ops.EventClosed {
			types = append(types, ev.Type)
		}
	}
	if len(types) != 2 || types[0] != ops.EventDraining || types[1] != ops.EventClosed {
		t.Fatalf("lifecycle events = %v", types)
	}
}

// TestServiceShedTelemetry pins the admission → plane path: rejected
// submissions land in the plane's exact shed counter and the throttled
// admission_shed event stream.
func TestServiceShedTelemetry(t *testing.T) {
	p, ring := epochFixture(t)
	plane := ops.New(ops.Config{Events: ops.NewEventLog(nil)})
	now := 0.0
	s, err := New(Config{
		Params: p, Ring: ring, Seed: 3, Policy: core.DisguisePolicy{P0: 1},
		Admission: AdmissionConfig{Rate: 1, Burst: 3},
		Clock:     func() float64 { return now },
		Ops:       plane,
	})
	if err != nil {
		t.Fatal(err)
	}
	shed := 0
	for _, sub := range population(p, 10, 77) { // all at t=0: burst of 3 admits
		if err := s.Submit(sub); err != nil {
			shed++
		}
	}
	if shed != 7 {
		t.Fatalf("shed %d of 10 at burst 3, want 7", shed)
	}
	if got := plane.Status().Sheds; got != 7 {
		t.Fatalf("plane shed counter = %d, want 7", got)
	}
	events := 0
	for _, ev := range plane.Events().Recent() {
		if ev.Type == ops.EventAdmissionShed {
			events++
		}
	}
	if events < 1 || events > 7 {
		t.Fatalf("%d shed events, want throttled ≥1", events)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
}
