package epoch

import (
	"fmt"
	"sync"

	"lppa/internal/obs"
)

// Store is the accounting backend: one ApplyBatch call models one
// datastore round trip persisting len(deltas) per-key writes. The
// Accountant's whole job is to make these calls rare without ever
// making the persisted totals inexact.
type Store interface {
	ApplyBatch(deltas map[int]uint64) error
}

// MemStore is the in-memory simulated datastore used by tests, the soak
// harness, and the CLI demo. It tallies calls and writes so the batched
// accountant's write amplification is a measurable, assertable number.
type MemStore struct {
	mu     sync.Mutex
	totals map[int]uint64
	calls  uint64
	writes uint64
}

// NewMemStore returns an empty simulated datastore.
func NewMemStore() *MemStore { return &MemStore{totals: make(map[int]uint64)} }

// ApplyBatch folds one flush into the totals: one call, one write per key.
func (s *MemStore) ApplyBatch(deltas map[int]uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	for k, v := range deltas {
		s.totals[k] += v
		s.writes++
	}
	return nil
}

// Total returns the persisted total for one key.
func (s *MemStore) Total(key int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals[key]
}

// Totals returns a copy of every persisted total.
func (s *MemStore) Totals() map[int]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]uint64, len(s.totals))
	for k, v := range s.totals {
		out[k] = v
	}
	return out
}

// Calls reports datastore round trips; Writes reports per-key writes.
func (s *MemStore) Calls() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.calls }

// Writes reports per-key writes issued across all calls.
func (s *MemStore) Writes() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.writes }

// acctStripes spreads the pending map over independently locked stripes
// so concurrent submitters on different bidders rarely contend.
const acctStripes = 16

type acctStripe struct {
	mu      sync.Mutex
	pending map[int]uint64
	sum     uint64
}

// Accountant is the VSA-style thresholded accumulator between per-op
// accounting (billing charges, quota debits) and the datastore: exact
// uint64 deltas accumulate in striped memory and flush as one batch when
// a stripe's pending sum crosses the threshold, or when the service
// closes an epoch (Flush). Totals are exact at every flush boundary —
// batching trades write frequency, never accuracy.
//
// Accountant is safe for concurrent use.
type Accountant struct {
	name      string
	threshold uint64
	store     Store
	stripes   [acctStripes]acctStripe

	ops     *obs.Counter
	flushes *obs.Counter
	calls   *obs.Counter
	writes  *obs.Counter
}

// NewAccountant builds an accountant flushing to store whenever one
// stripe's pending sum reaches threshold (0 means flush only on Flush —
// pure epoch-close batching). name labels the obs series ("billing",
// "quota"); reg may be nil.
func NewAccountant(name string, store Store, threshold uint64, reg *obs.Registry) (*Accountant, error) {
	if store == nil {
		return nil, fmt.Errorf("epoch: accountant %q needs a store", name)
	}
	a := &Accountant{name: name, threshold: threshold, store: store}
	for i := range a.stripes {
		a.stripes[i].pending = make(map[int]uint64)
	}
	if reg != nil {
		l := obs.L("ledger", name)
		a.ops = reg.Counter("lppa_acct_ops_total", l)
		a.flushes = reg.Counter("lppa_acct_flushes_total", l)
		a.calls = reg.Counter("lppa_acct_store_calls_total", l)
		a.writes = reg.Counter("lppa_acct_store_writes_total", l)
	}
	return a, nil
}

// Add accumulates delta for key, flushing the key's stripe when its
// pending sum reaches the threshold. The flush happens under the stripe
// lock, so a concurrent Flush can neither drop nor double-count the
// delta — exactness under concurrent flush is pinned by test.
func (a *Accountant) Add(key int, delta uint64) error {
	if a.ops != nil {
		a.ops.Inc()
	}
	if delta == 0 {
		return nil
	}
	st := &a.stripes[uint(key)%acctStripes]
	st.mu.Lock()
	st.pending[key] += delta
	st.sum += delta
	var err error
	if a.threshold > 0 && st.sum >= a.threshold {
		err = a.flushStripe(st)
	}
	st.mu.Unlock()
	return err
}

// flushStripe persists and clears one stripe; callers hold its lock.
func (a *Accountant) flushStripe(st *acctStripe) error {
	if len(st.pending) == 0 {
		return nil
	}
	batch := st.pending
	st.pending = make(map[int]uint64, len(batch))
	st.sum = 0
	if a.flushes != nil {
		a.flushes.Inc()
		a.calls.Inc()
		a.writes.Add(uint64(len(batch)))
	}
	return a.store.ApplyBatch(batch)
}

// Flush persists every pending delta — the epoch-close barrier. After
// Flush returns (with every concurrent Add that happened-before it
// observed), store totals equal the exact sum of all added deltas.
func (a *Accountant) Flush() error {
	var first error
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		err := a.flushStripe(st)
		st.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Pending reports how many keys currently hold unflushed deltas.
func (a *Accountant) Pending() int {
	n := 0
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		n += len(st.pending)
		st.mu.Unlock()
	}
	return n
}

// Accounting bundles the service's two ledgers: billing (winner charges,
// in bid units) and quota (one debit per admitted submission). Either
// may be nil; Flush flushes whichever exist.
type Accounting struct {
	Billing *Accountant
	Quota   *Accountant
}

// Flush flushes both ledgers, returning the first error.
func (x *Accounting) Flush() error {
	if x == nil {
		return nil
	}
	var first error
	if x.Billing != nil {
		if err := x.Billing.Flush(); err != nil {
			first = err
		}
	}
	if x.Quota != nil {
		if err := x.Quota.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
