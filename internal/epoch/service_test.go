package epoch

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
	"lppa/internal/round"
)

func epochFixture(t *testing.T) (core.Params, *mask.KeyRing) {
	t.Helper()
	p := core.Params{Channels: 6, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("epoch-service"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	return p, ring
}

// population builds n submissions with distinct external bidder ids
// (ascending with i, so the service's sorted batch order is i order).
func population(p core.Params, n int, seed int64) []Submission {
	rng := rand.New(rand.NewSource(seed))
	subs := make([]Submission, n)
	for i := range subs {
		bids := make([]uint64, p.Channels)
		for r := range bids {
			if rng.Intn(4) > 0 {
				bids[r] = uint64(rng.Intn(int(p.BMax))) + 1
			}
		}
		subs[i] = Submission{
			Bidder: 500 + 3*i,
			Point:  geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))},
			Bids:   bids,
		}
	}
	return subs
}

// submitAll offers a population in shuffled order — the sealed batch
// must come out in sorted-bidder order regardless.
func submitAll(t *testing.T, s *Service, subs []Submission, shuffleSeed int64) {
	t.Helper()
	order := rand.New(rand.NewSource(shuffleSeed)).Perm(len(subs))
	for _, i := range order {
		if err := s.Submit(subs[i]); err != nil {
			t.Fatalf("submit bidder %d: %v", subs[i].Bidder, err)
		}
	}
}

// drain collects every result until the channel closes.
func drain(t *testing.T, s *Service) []*EpochResult {
	t.Helper()
	var out []*EpochResult
	for r := range s.Results() {
		if r.Err != nil {
			t.Fatalf("epoch %d failed: %v", r.Epoch, r.Err)
		}
		out = append(out, r)
	}
	return out
}

// sameOutcome compares everything a round Result exposes except the
// Auctioneer pointer (reused by the service, fresh in the one-shot).
func sameOutcome(t *testing.T, tag string, got, want *round.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Outcome, want.Outcome) {
		t.Errorf("%s: outcomes differ\n service=%+v\n one-shot=%+v", tag, got.Outcome, want.Outcome)
	}
	if got.Voided != want.Voided || got.Violations != want.Violations ||
		got.SubmissionBytes != want.SubmissionBytes || !reflect.DeepEqual(got.Excluded, want.Excluded) {
		t.Errorf("%s: voided/violations/bytes/excluded differ", tag)
	}
}

// TestEpochEquivalence is the tentpole contract: every epoch the service
// runs is bit-identical to a one-shot round.Run over the same admitted
// set with the epoch's derived seed — across the shards × workers ×
// indexed grid, with back-to-back epochs of different populations so the
// auctioneer-reuse path (core Reset, shard-planner memo) is what's under
// test, not a fresh construction.
func TestEpochEquivalence(t *testing.T) {
	p, ring := epochFixture(t)
	const seed = 77
	grid := []struct {
		tag  string
		opts []round.Option
	}{
		{"serial", nil},
		{"workers4", []round.Option{round.WithWorkers(4)}},
		{"shards4", []round.Option{round.WithWorkers(2), round.WithShards(4)}},
		{"indexed", []round.Option{round.WithWorkers(4), round.WithIndexedCandidates()}},
		{"shards4-indexed", []round.Option{round.WithShards(4), round.WithIndexedCandidates()}},
		{"second-price", []round.Option{round.WithSecondPrice()}},
	}
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	for _, tc := range grid {
		s, err := New(Config{
			Params: p, Ring: ring, Seed: seed, Policy: pol,
			RoundOptions: tc.opts, Registry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		pops := [][]Submission{
			population(p, 30, 11),
			population(p, 45, 12), // different size: Reset must rescale
			population(p, 30, 13),
		}
		for e, pop := range pops {
			submitAll(t, s, pop, int64(100+e))
			if err := s.Seal(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		results := drain(t, s)
		if len(results) != len(pops) {
			t.Fatalf("%s: %d results for %d sealed epochs", tc.tag, len(results), len(pops))
		}
		for e, res := range results {
			if res.Epoch != e {
				t.Fatalf("%s: result %d labelled epoch %d", tc.tag, e, res.Epoch)
			}
			pop := pops[e]
			wantIDs := make([]int, len(pop))
			pts := make([]geo.Point, len(pop))
			bids := make([][]uint64, len(pop))
			for i, sub := range pop {
				wantIDs[i], pts[i], bids[i] = sub.Bidder, sub.Point, sub.Bids
			}
			if !reflect.DeepEqual(res.Bidders, wantIDs) {
				t.Fatalf("%s epoch %d: bidder order %v, want sorted %v", tc.tag, e, res.Bidders, wantIDs)
			}
			oneShot, err := round.Run(p, ring, round.Input{
				Points: pts, Bids: bids, Policy: pol,
				Rng: rand.New(rand.NewSource(EpochSeed(seed, e))),
			}, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			sameOutcome(t, tc.tag+"/epoch"+string(rune('0'+e)), res.Result, oneShot)
		}
	}
}

// TestEpochEquivalenceChurn extends the equivalence contract to the churn
// edges: a bidder that departs after intake but before the seal must be
// absent from that epoch, and a bidder that resubmits across the seal
// boundary must land its old bids in the sealed epoch and its new bids in
// the next — each epoch still bit-identical to a one-shot round.Run over
// exactly the set it admitted.
func TestEpochEquivalenceChurn(t *testing.T) {
	p, ring := epochFixture(t)
	const seed = 91
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	s, err := New(Config{Params: p, Ring: ring, Seed: seed, Policy: pol,
		RoundOptions: []round.Option{round.WithWorkers(2), round.WithShards(4)}})
	if err != nil {
		t.Fatal(err)
	}
	pop := population(p, 24, 81)
	leaver, straddler := pop[3], pop[10]
	submitAll(t, s, pop, 1)

	// Churn edge 1: departs after intake, before the seal.
	if ok, err := s.Withdraw(leaver.Bidder); err != nil || !ok {
		t.Fatalf("withdraw pending bidder: ok=%v err=%v", ok, err)
	}
	// Withdrawing a bidder that never joined is a quiet no-op.
	if ok, err := s.Withdraw(999_999); err != nil || ok {
		t.Fatalf("withdraw unknown bidder: ok=%v err=%v", ok, err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	// Churn edge 2: resubmission after the seal opens the next epoch with
	// the revised bids; the sealed epoch keeps the originals. A departure
	// arriving after the seal is too late to touch epoch 0.
	revised := straddler
	revised.Bids = append([]uint64(nil), revised.Bids...)
	revised.Bids[0] = p.BMax
	if err := s.Submit(revised); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Withdraw(leaver.Bidder); err != nil || ok {
		t.Fatalf("post-seal withdraw of sealed bidder: ok=%v err=%v (epoch 0 already owns it)", ok, err)
	}
	results, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2 (sealed epoch + Finish's residual seal)", len(results))
	}

	// Epoch 0: everyone but the leaver, original bids.
	want0 := make([]Submission, 0, len(pop)-1)
	for _, sub := range pop {
		if sub.Bidder != leaver.Bidder {
			want0 = append(want0, sub)
		}
	}
	checkEpochOneShot(t, p, ring, pol, seed, results[0], want0,
		[]round.Option{round.WithWorkers(2), round.WithShards(4)})
	// Epoch 1: just the straddler, revised bids.
	checkEpochOneShot(t, p, ring, pol, seed, results[1], []Submission{revised},
		[]round.Option{round.WithWorkers(2), round.WithShards(4)})
}

// checkEpochOneShot asserts one EpochResult is bit-identical to a
// one-shot round.Run over want (already in ascending-bidder order).
func checkEpochOneShot(t *testing.T, p core.Params, ring *mask.KeyRing, pol core.DisguisePolicy,
	seed int64, res *EpochResult, want []Submission, opts []round.Option) {
	t.Helper()
	if res.Err != nil {
		t.Fatalf("epoch %d failed: %v", res.Epoch, res.Err)
	}
	ids := make([]int, len(want))
	pts := make([]geo.Point, len(want))
	bids := make([][]uint64, len(want))
	for i, sub := range want {
		ids[i], pts[i], bids[i] = sub.Bidder, sub.Point, sub.Bids
	}
	if !reflect.DeepEqual(res.Bidders, ids) {
		t.Fatalf("epoch %d admitted %v, want %v", res.Epoch, res.Bidders, ids)
	}
	oneShot, err := round.Run(p, ring, round.Input{
		Points: pts, Bids: bids, Policy: pol,
		Rng: rand.New(rand.NewSource(EpochSeed(seed, res.Epoch))),
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "churn-epoch", res.Result, oneShot)
}

// TestServiceInjectedClock pins Config.Clock: with a logical clock wired
// in, plain Submit calls replay the same admit/shed sequence as SubmitAt,
// independent of wall time.
func TestServiceInjectedClock(t *testing.T) {
	p, ring := epochFixture(t)
	now := 0.0
	s, err := New(Config{
		Params: p, Ring: ring, Seed: 13, Policy: core.DisguisePolicy{P0: 1},
		Admission: AdmissionConfig{Rate: 1, Burst: 5},
		Clock:     func() float64 { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	pop := population(p, 8, 91)
	admitted := 0
	for _, sub := range pop { // all at logical t=0: exactly the burst admits
		if err := s.Submit(sub); err == nil {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d at t=0, want burst of 5", admitted)
	}
	now = 100 // refill
	if err := s.Submit(pop[7]); err != nil {
		t.Fatalf("submit after logical refill: %v", err)
	}
	results, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Bidders) != 6 {
		t.Fatalf("results %+v, want one epoch of 6 bidders", results)
	}
}

// TestServicePipelinedIntake pins the intake/allocate overlap shape:
// epoch N+1's submissions are accepted while epoch N sits sealed in the
// queue, before any result has been consumed.
func TestServicePipelinedIntake(t *testing.T) {
	p, ring := epochFixture(t)
	s, err := New(Config{Params: p, Ring: ring, Seed: 5, Policy: core.DisguisePolicy{P0: 1}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := population(p, 25, 21), population(p, 18, 22)
	submitAll(t, s, a, 1)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// No result consumed yet — the next epoch's intake must still flow.
	submitAll(t, s, b, 2)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	results := drain(t, s)
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	if len(results[0].Bidders) != len(a) || len(results[1].Bidders) != len(b) {
		t.Fatalf("epoch sizes %d/%d, want %d/%d",
			len(results[0].Bidders), len(results[1].Bidders), len(a), len(b))
	}
}

// TestServiceLatestSubmissionWins pins resubmission semantics: a bidder
// resubmitting before the seal replaces its earlier entry, matching the
// transport's idempotent-resubmission contract.
func TestServiceLatestSubmissionWins(t *testing.T) {
	p, ring := epochFixture(t)
	pol := core.DisguisePolicy{P0: 1}
	s, err := New(Config{Params: p, Ring: ring, Seed: 3, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	pop := population(p, 20, 31)
	submitAll(t, s, pop, 1)
	// Bidder 0 changes its mind before the seal.
	revised := pop[0]
	revised.Bids = append([]uint64(nil), revised.Bids...)
	revised.Bids[0] = p.BMax
	if err := s.Submit(revised); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	results := drain(t, s)
	if len(results) != 1 || len(results[0].Bidders) != len(pop) {
		t.Fatalf("resubmission changed the population: %+v", results)
	}
	pts := make([]geo.Point, len(pop))
	bids := make([][]uint64, len(pop))
	for i, sub := range pop {
		pts[i], bids[i] = sub.Point, sub.Bids
	}
	bids[0] = revised.Bids
	oneShot, err := round.Run(p, ring, round.Input{
		Points: pts, Bids: bids, Policy: pol,
		Rng: rand.New(rand.NewSource(EpochSeed(3, 0))),
	})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "latest-wins", results[0].Result, oneShot)
}

// TestServiceAdmission pins the service-level gate: over-rate
// submissions come back as ErrRateLimited with a positive retry hint,
// and the epoch runs over exactly the admitted set.
func TestServiceAdmission(t *testing.T) {
	p, ring := epochFixture(t)
	s, err := New(Config{
		Params: p, Ring: ring, Seed: 9, Policy: core.DisguisePolicy{P0: 1},
		Admission: AdmissionConfig{Rate: 1, Burst: 10},
		Registry:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pop := population(p, 25, 41)
	admitted := 0
	for i, sub := range pop {
		err := s.SubmitAt(sub, float64(i)*0.001) // far above 1/s
		var rl *ErrRateLimited
		switch {
		case err == nil:
			admitted++
		case errors.As(err, &rl):
			if rl.RetryAfter <= 0 {
				t.Fatalf("rate-limited with non-positive hint %v", rl.RetryAfter)
			}
		default:
			t.Fatal(err)
		}
	}
	if admitted != 10 { // burst admits exactly 10 at ~t=0
		t.Fatalf("admitted %d, want 10", admitted)
	}
	if err := s.Close(); err != nil { // Close seals the residual intake
		t.Fatal(err)
	}
	results := drain(t, s)
	if len(results) != 1 || len(results[0].Bidders) != admitted {
		t.Fatalf("epoch ran over %d bidders, admitted %d", len(results[0].Bidders), admitted)
	}
	if got := s.Admission().rejected.Value(); got != uint64(len(pop)-admitted) {
		t.Fatalf("rejected counter %d, want %d", got, len(pop)-admitted)
	}
}

// TestServiceAccounting pins the ledgers end to end: quota totals count
// one debit per admitted submission, billing totals equal the epoch
// charges mapped to external bidder ids, and both persist by epoch close
// without per-op datastore traffic.
func TestServiceAccounting(t *testing.T) {
	p, ring := epochFixture(t)
	billStore, quotaStore := NewMemStore(), NewMemStore()
	bill, err := NewAccountant("billing", billStore, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	quota, err := NewAccountant("quota", quotaStore, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Params: p, Ring: ring, Seed: 17, Policy: core.DisguisePolicy{P0: 1},
		Billing: bill, Quota: quota,
	})
	if err != nil {
		t.Fatal(err)
	}
	pop := population(p, 30, 51)
	submitAll(t, s, pop, 1)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	results := drain(t, s)
	if len(results) != 1 {
		t.Fatalf("%d results, want 1", len(results))
	}
	res := results[0]

	wantBilling := map[int]uint64{}
	var wantRevenue uint64
	for i, as := range res.Result.Outcome.Assignments {
		if c := res.Result.Outcome.Charges[i]; c > 0 {
			wantBilling[res.Bidders[as.Bidder]] += c
			wantRevenue += c
		}
	}
	if wantRevenue == 0 {
		t.Fatal("fixture produced no revenue; billing path untested")
	}
	if got := billStore.Totals(); !reflect.DeepEqual(got, wantBilling) {
		t.Fatalf("billing totals %v, want %v", got, wantBilling)
	}
	for _, sub := range pop {
		if got := quotaStore.Total(sub.Bidder); got != 1 {
			t.Fatalf("quota for bidder %d = %d, want 1", sub.Bidder, got)
		}
	}
	if billStore.Writes() > uint64(len(wantBilling)) || quotaStore.Writes() > uint64(len(pop)) {
		t.Fatalf("epoch-close accounting wrote per-op: billing %d writes, quota %d writes",
			billStore.Writes(), quotaStore.Writes())
	}
}

// TestServiceIntervalSeal exercises the wall-clock cadence: a positive
// Interval seals the collecting epoch without an explicit Seal call.
func TestServiceIntervalSeal(t *testing.T) {
	p, ring := epochFixture(t)
	s, err := New(Config{
		Params: p, Ring: ring, Seed: 23, Policy: core.DisguisePolicy{P0: 1},
		Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, s, population(p, 12, 61), 1)
	select {
	case res := <-s.Results():
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if len(res.Bidders) != 12 {
			t.Fatalf("interval epoch over %d bidders, want 12", len(res.Bidders))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("interval sealing never produced an epoch")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
}

// TestServiceRejectsAfterClose pins the shutdown contract.
func TestServiceRejectsAfterClose(t *testing.T) {
	p, ring := epochFixture(t)
	s, err := New(Config{Params: p, Ring: ring, Seed: 1, Policy: core.DisguisePolicy{P0: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	if err := s.Submit(population(p, 1, 71)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if err := s.Seal(); !errors.Is(err, ErrClosed) {
		t.Fatalf("seal after close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestEpochSeedDerivation pins that the per-epoch streams are
// deterministic and decorrelated.
func TestEpochSeedDerivation(t *testing.T) {
	seen := map[int64]int{}
	for e := 0; e < 100; e++ {
		s := EpochSeed(42, e)
		if s2 := EpochSeed(42, e); s2 != s {
			t.Fatalf("EpochSeed(42,%d) unstable: %d vs %d", e, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("epochs %d and %d collide at seed %d", prev, e, s)
		}
		seen[s] = e
	}
	if EpochSeed(1, 0) == EpochSeed(2, 0) {
		t.Fatal("service seed does not reach the epoch stream")
	}
}
