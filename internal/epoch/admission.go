package epoch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lppa/internal/obs"
)

// Bucket is a token bucket over a caller-supplied clock. Tokens refill
// continuously at Rate per second up to Burst; each Take spends one.
// Running on an explicit clock keeps admission a pure function of the
// arrival process — a seeded arrival sequence yields an identical
// admit/reject sequence on every run, which the determinism tests pin.
//
// A Bucket is not safe for concurrent use; Admission adds the locking.
type Bucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   float64 // clock of the previous Take, in seconds
}

// NewBucket returns a full bucket refilling at rate tokens/second up to
// burst. rate and burst must be positive.
func NewBucket(rate, burst float64) (*Bucket, error) {
	if rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("epoch: token bucket rate %v burst %v, need both positive", rate, burst)
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}, nil
}

// Take spends one token at clock time now (seconds, monotonic). When the
// bucket is empty it reports false plus how long after now a token will
// next be available — the retry-after hint the transport frames carry.
// A clock that goes backwards is clamped, never refunds.
func (b *Bucket) Take(now float64) (ok bool, retryAfter time.Duration) {
	if now > b.last {
		b.tokens += (now - b.last) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// AdmissionConfig sizes the service's two-level token-bucket gate.
type AdmissionConfig struct {
	// Rate and Burst shape the global bucket every submission (and, wired
	// through transport.WithAdmission, every accepted connection) spends
	// from. Rate ≤ 0 disables the global gate.
	Rate, Burst float64
	// PerBidderRate and PerBidderBurst shape the per-bidder buckets, so
	// one hot bidder cannot starve the rest of the global budget.
	// PerBidderRate ≤ 0 disables the per-bidder gate.
	PerBidderRate, PerBidderBurst float64
}

// Admission is the service's ingest gate: a global token bucket for
// aggregate backpressure plus one bucket per bidder for fairness. The
// zero-value config admits everything.
//
// Admission is safe for concurrent use. Deterministic callers (tests,
// replay) drive it through the *At methods with a logical clock; the
// plain methods use wall time.
type Admission struct {
	cfg AdmissionConfig

	mu        sync.Mutex
	global    *Bucket
	perBidder map[int]*Bucket
	start     time.Time

	admitted *obs.Counter
	rejected *obs.Counter

	// Always-on atomic tallies backing Stats, independent of whether a
	// registry was wired — the ops plane's status probe reads them.
	admittedN atomic.Uint64
	rejectedN atomic.Uint64
}

// NewAdmission builds the gate. reg, when non-nil, receives
// lppa_admission_admitted_total / lppa_admission_rejected_total.
func NewAdmission(cfg AdmissionConfig, reg *obs.Registry) (*Admission, error) {
	a := &Admission{cfg: cfg, perBidder: make(map[int]*Bucket), start: time.Now()}
	if cfg.Rate > 0 {
		g, err := NewBucket(cfg.Rate, cfg.Burst)
		if err != nil {
			return nil, err
		}
		a.global = g
	}
	if cfg.PerBidderRate > 0 {
		// Validate eagerly so a bad per-bidder shape fails at construction,
		// not on the first submission.
		if _, err := NewBucket(cfg.PerBidderRate, cfg.PerBidderBurst); err != nil {
			return nil, err
		}
	}
	if reg != nil {
		a.admitted = reg.Counter("lppa_admission_admitted_total")
		a.rejected = reg.Counter("lppa_admission_rejected_total")
	}
	return a, nil
}

// now is the wall clock as seconds since the gate was built.
func (a *Admission) now() float64 { return time.Since(a.start).Seconds() }

// AdmitConn spends one global token for a transport-level connection at
// wall time; it never touches per-bidder state (the bidder id is not
// known before decode — that is the point of gating here). Wire it into
// the accept path with transport.WithAdmission.
func (a *Admission) AdmitConn() (bool, time.Duration) {
	return a.AdmitConnAt(a.now())
}

// AdmitConnAt is AdmitConn on an explicit clock (seconds).
func (a *Admission) AdmitConnAt(now float64) (bool, time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.global == nil {
		a.note(true)
		return true, 0
	}
	ok, retry := a.global.Take(now)
	a.note(ok)
	return ok, retry
}

// AdmitBidder spends one global and one per-bidder token at wall time.
// Both must have budget; a rejection reports the longer of the two
// retry-after hints and refunds nothing (the spent global token is the
// cost of asking, matching what a datastore-side limiter would burn).
func (a *Admission) AdmitBidder(id int) (bool, time.Duration) {
	return a.AdmitBidderAt(id, a.now())
}

// AdmitBidderAt is AdmitBidder on an explicit clock (seconds).
func (a *Admission) AdmitBidderAt(id int, now float64) (bool, time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ok := true
	var retry time.Duration
	if a.global != nil {
		gok, gr := a.global.Take(now)
		if !gok {
			ok, retry = false, gr
		}
	}
	if a.cfg.PerBidderRate > 0 {
		b := a.perBidder[id]
		if b == nil {
			b, _ = NewBucket(a.cfg.PerBidderRate, a.cfg.PerBidderBurst)
			a.perBidder[id] = b
		}
		bok, br := b.Take(now)
		if !bok {
			ok = false
			if br > retry {
				retry = br
			}
		}
	}
	a.note(ok)
	return ok, retry
}

func (a *Admission) note(ok bool) {
	if ok {
		a.admittedN.Add(1)
		if a.admitted != nil {
			a.admitted.Inc()
		}
		return
	}
	a.rejectedN.Add(1)
	if a.rejected != nil {
		a.rejected.Inc()
	}
}

// Stats reports the lifetime admitted/rejected tallies.
func (a *Admission) Stats() (admitted, rejected uint64) {
	return a.admittedN.Load(), a.rejectedN.Load()
}

// ErrRateLimited reports a submission the admission gate turned away,
// with the bucket's refill hint. The transport maps it onto the typed
// retry-after frame; in-process callers back off RetryAfter themselves.
type ErrRateLimited struct {
	RetryAfter time.Duration
}

func (e *ErrRateLimited) Error() string {
	return fmt.Sprintf("epoch: rate limited, retry after %v", e.RetryAfter)
}
