package epoch

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
	"lppa/internal/obs/ops"
	"lppa/internal/round"
)

// ErrClosed reports a Submit or Seal against a closed service.
var ErrClosed = errors.New("epoch: service closed")

// EpochSeed derives the rng seed of one epoch from the service seed:
// splitmix64 over the epoch counter, so consecutive epochs get
// decorrelated streams while any epoch's full round stays reproducible
// from (seed, epoch) alone. Exported because the equivalence contract
// depends on it — a one-shot round.Run with rand.NewSource(EpochSeed(s,
// e)) over epoch e's admitted set must reproduce the service bit-exactly.
func EpochSeed(seed int64, epoch int) int64 {
	x := uint64(seed) + (uint64(epoch)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// Submission is one bidder's entry for the epoch currently collecting.
// Resubmitting before the epoch seals replaces the previous entry —
// latest wins, matching the transport's nonce-idempotent resubmission.
type Submission struct {
	// Bidder is the stable external bidder identity (non-negative).
	Bidder int
	// Point is the bidder's true location; Bids its per-channel bids.
	Point geo.Point
	Bids  []uint64
}

// Config assembles a Service.
type Config struct {
	// Params and Ring are the fixed protocol agreement every epoch runs
	// under; Seed roots the per-epoch rng derivation (EpochSeed).
	Params core.Params
	Ring   *mask.KeyRing
	Seed   int64
	// Policy is every bidder's disguise policy (per-bidder policies can be
	// injected through RoundOptions' WithPolicies if a caller needs them).
	Policy core.DisguisePolicy
	// Admission shapes the ingest gate; the zero value admits everything.
	Admission AdmissionConfig
	// Billing and Quota are the optional batched ledgers: Quota is debited
	// one unit per admitted submission, Billing the charged price per
	// winner at epoch close. Both flush on epoch close.
	Billing *Accountant
	Quota   *Accountant
	// Interval, when positive, seals the collecting epoch on a wall-clock
	// cadence. Zero leaves sealing to explicit Seal calls (tests, CLI).
	Interval time.Duration
	// Clock, when non-nil, is the admission clock Submit reads (seconds,
	// monotone). The load harness injects a logical clock here so plain
	// Submit calls replay deterministically; nil keeps wall time.
	// SubmitAt bypasses the clock either way.
	Clock func() float64
	// RoundOptions compose into every epoch's round.Run — WithWorkers,
	// WithShards, WithIndexedCandidates, WithTrace, WithObserver, and the
	// rest all apply per epoch exactly as in a one-shot round.
	RoundOptions []round.Option
	// Registry, when non-nil, receives the service counters
	// (lppa_epochs_total, lppa_epoch_bidders_total, admission and
	// accounting series).
	Registry *obs.Registry
	// Ops, when non-nil, is the live telemetry plane: the service
	// installs its status probe, streams seal/shed/drain events and
	// per-epoch observations (wall time, award digest, anonymity sets)
	// into it, and feeds the SLO burn-rate monitor through the round's
	// phase observer. nil is free — the observed-twin pin tests hold the
	// service to bit-identical results either way.
	Ops *ops.Plane
}

// batch is one sealed epoch's population, in sorted-bidder order.
type batch struct {
	epoch   int
	bidders []int
	pts     []geo.Point
	bids    [][]uint64
}

// EpochResult reports one finished epoch. Assignment bidder indices in
// Result are compact (0..n−1, the round's view); Bidders maps them back
// to external bidder identities: external = Bidders[compact].
type EpochResult struct {
	Epoch   int
	Bidders []int
	Result  *round.Result
	Err     error
}

// Service is the long-lived epochal auctioneer: submissions stream into
// the collecting epoch through the admission gate while the previous
// sealed epoch allocates on the runner goroutine — Seal hands a
// population across a one-deep queue, so intake for epoch N+1 overlaps
// allocation of epoch N and sealing N+2 blocks (backpressure) until the
// runner frees up. Allocation reuses one auctioneer and shard planner
// across epochs (round.WithEpochState); the determinism contract is in
// the package comment and pinned by TestEpochEquivalence.
type Service struct {
	cfg   Config
	adm   *Admission
	state *round.EpochState

	mu     sync.Mutex
	intake map[int]Submission
	epoch  int // number the collecting epoch will seal as
	closed bool

	sealMu    sync.Mutex // serializes Seal's queue sends in epoch order
	closeOnce sync.Once
	queue     chan batch
	results   chan *EpochResult
	done      chan struct{}

	tickStop chan struct{}
	tickDone chan struct{}

	epochs  *obs.Counter
	bidders *obs.Counter
}

// New validates the config and starts the runner (and, with a positive
// Interval, the sealing ticker). Callers must drain Results and Close the
// service when done.
func New(cfg Config) (*Service, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ring == nil {
		return nil, fmt.Errorf("epoch: nil key ring")
	}
	adm, err := NewAdmission(cfg.Admission, cfg.Registry)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:     cfg,
		adm:     adm,
		state:   round.NewEpochState(),
		intake:  make(map[int]Submission),
		queue:   make(chan batch, 1),
		results: make(chan *EpochResult, 16),
		done:    make(chan struct{}),
	}
	if cfg.Registry != nil {
		s.epochs = cfg.Registry.Counter("lppa_epochs_total")
		s.bidders = cfg.Registry.Counter("lppa_epoch_bidders_total")
	}
	cfg.Ops.SetProbe(s.Status)
	go s.run()
	if cfg.Interval > 0 {
		s.tickStop = make(chan struct{})
		s.tickDone = make(chan struct{})
		go s.tick(cfg.Interval)
	}
	return s, nil
}

// Admission exposes the ingest gate (for wiring transport.WithAdmission
// and for reading the admitted/rejected counters).
func (s *Service) Admission() *Admission { return s.adm }

// Status is the live state probe behind the ops plane's /statusz: the
// epoch currently collecting, its intake depth, whether the service has
// closed, and the admission gate's lifetime tallies. Safe to call from
// any goroutine.
func (s *Service) Status() ops.ServiceStatus {
	s.mu.Lock()
	st := ops.ServiceStatus{
		Epoch:       s.epoch,
		IntakeDepth: len(s.intake),
		Closed:      s.closed,
	}
	s.mu.Unlock()
	st.Admitted, st.Rejected = s.adm.Stats()
	return st
}

// Results delivers finished epochs in seal order. The channel closes
// after Close has drained the runner; slow consumers eventually block
// the runner (the channel is buffered, not unbounded).
func (s *Service) Results() <-chan *EpochResult { return s.results }

// Submit offers one submission to the collecting epoch at the service
// clock — Config.Clock when injected, wall time otherwise.
func (s *Service) Submit(sub Submission) error {
	if s.cfg.Clock != nil {
		return s.SubmitAt(sub, s.cfg.Clock())
	}
	return s.SubmitAt(sub, s.adm.now())
}

// Withdraw removes the bidder's pending submission from the collecting
// epoch — churn departing mid-epoch. It reports whether an entry was
// pending: a depart after the seal finds nothing (the sealed epoch keeps
// the bidder, exactly like a network peer that vanishes after its frame
// was acked). Spent admission tokens and quota debits are not refunded;
// asking was the cost.
func (s *Service) Withdraw(bidder int) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	_, ok := s.intake[bidder]
	delete(s.intake, bidder)
	return ok, nil
}

// SubmitAt is Submit on an explicit admission clock (seconds) — the
// deterministic path: a seeded arrival process replayed through SubmitAt
// yields an identical admit/reject sequence and identical epochs.
func (s *Service) SubmitAt(sub Submission, now float64) error {
	if sub.Bidder < 0 {
		return fmt.Errorf("epoch: negative bidder id %d", sub.Bidder)
	}
	if len(sub.Bids) != s.cfg.Params.Channels {
		// Reject malformed entries here, where they cost one bidder a
		// retry, instead of poisoning the sealed epoch's round.Run.
		return fmt.Errorf("epoch: bidder %d submitted %d channel bids, want %d",
			sub.Bidder, len(sub.Bids), s.cfg.Params.Channels)
	}
	if ok, retry := s.adm.AdmitBidderAt(sub.Bidder, now); !ok {
		s.cfg.Ops.NoteShed(retry)
		return &ErrRateLimited{RetryAfter: retry}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.intake[sub.Bidder] = sub
	s.mu.Unlock()
	if s.cfg.Quota != nil {
		return s.cfg.Quota.Add(sub.Bidder, 1)
	}
	return nil
}

// Seal closes the collecting epoch and queues it for allocation,
// blocking while both the runner and the one-deep queue are busy — that
// blocking is the pipeline's backpressure. An empty intake is a no-op
// (the epoch number is not consumed). Safe to call concurrently with
// Submit; concurrent Seals are serialized.
func (s *Service) Seal() error {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	b, ok := s.takeIntake()
	s.mu.Unlock()
	if !ok {
		return nil
	}
	s.cfg.Ops.NoteSeal(b.epoch, len(b.bidders))
	s.queue <- b
	return nil
}

// takeIntake drains the collecting epoch into a sorted batch; callers
// hold s.mu. Sorting by external bidder id fixes the compact index order,
// which keeps the epoch a pure function of the admitted set.
func (s *Service) takeIntake() (batch, bool) {
	if len(s.intake) == 0 {
		return batch{}, false
	}
	ids := make([]int, 0, len(s.intake))
	for id := range s.intake {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b := batch{epoch: s.epoch, bidders: ids,
		pts:  make([]geo.Point, len(ids)),
		bids: make([][]uint64, len(ids))}
	for i, id := range ids {
		sub := s.intake[id]
		b.pts[i] = sub.Point
		b.bids[i] = sub.Bids
	}
	s.intake = make(map[int]Submission)
	s.epoch++
	return b, true
}

// tick seals on the configured cadence until Close.
func (s *Service) tick(every time.Duration) {
	defer close(s.tickDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Seal(); errors.Is(err, ErrClosed) {
				return
			}
		case <-s.tickStop:
			return
		}
	}
}

// run is the allocation goroutine: one sealed epoch at a time, results
// in seal order.
func (s *Service) run() {
	defer close(s.done)
	defer close(s.results)
	for b := range s.queue {
		s.results <- s.runEpoch(b)
	}
}

// runEpoch executes one sealed epoch: derived rng, the caller's round
// options plus the reuse state, winner billing, and the epoch-close
// accounting flush.
func (s *Service) runEpoch(b batch) *EpochResult {
	rng := rand.New(rand.NewSource(EpochSeed(s.cfg.Seed, b.epoch)))
	opts := make([]round.Option, 0, len(s.cfg.RoundOptions)+3)
	opts = append(opts, s.cfg.RoundOptions...)
	opts = append(opts, round.WithEpochState(s.state), round.WithEpochNumber(b.epoch))
	var start time.Time
	if s.cfg.Ops != nil {
		epoch := b.epoch
		opts = append(opts, round.WithPhaseObserver(func(phase string, d time.Duration) {
			s.cfg.Ops.ObservePhase(epoch, phase, d)
		}))
		start = time.Now()
	}
	res, err := round.Run(s.cfg.Params, s.cfg.Ring, round.Input{
		Points: b.pts,
		Bids:   b.bids,
		Policy: s.cfg.Policy,
		Rng:    rng,
	}, opts...)
	er := &EpochResult{Epoch: b.epoch, Bidders: b.bidders, Result: res, Err: err}
	if s.epochs != nil {
		s.epochs.Inc()
		s.bidders.Add(uint64(len(b.bidders)))
	}
	if err == nil && s.cfg.Billing != nil {
		for i, as := range res.Outcome.Assignments {
			// Charges[i] parallels Assignments[i]; a voided award carries a
			// zero charge and bills nothing. The assignment's bidder index is
			// compact — map it back to the external identity for the ledger.
			if c := res.Outcome.Charges[i]; c > 0 {
				if berr := s.cfg.Billing.Add(b.bidders[as.Bidder], c); berr != nil && er.Err == nil {
					er.Err = berr
				}
			}
		}
	}
	// Epoch close is an accounting barrier: whatever the thresholds left
	// pending persists now, so ledger totals are exact at every epoch edge.
	if ferr := (&Accounting{Billing: s.cfg.Billing, Quota: s.cfg.Quota}).Flush(); ferr != nil && er.Err == nil {
		er.Err = ferr
	}
	if s.cfg.Ops != nil {
		s.observeEpoch(b, er, time.Since(start))
	}
	return er
}

// observeEpoch reports one finished epoch to the ops plane: wall time,
// the award-transcript digest (the same bytes the load harness hashes,
// so live service and offline replay compare digest to digest), and the
// epoch's anonymity-set summary — per-tile sizes when the round ran
// sharded, the whole admitted population otherwise.
func (s *Service) observeEpoch(b batch, er *EpochResult, wall time.Duration) {
	eo := ops.EpochObs{Epoch: b.epoch, Bidders: len(b.bidders), Wall: wall}
	if er.Err != nil {
		eo.Err = er.Err.Error()
	}
	if res := er.Result; res != nil {
		eo.Trace = res.Trace
		eo.Excluded = len(res.Excluded)
		eo.AwardDigest = awardDigest(b.epoch, b.bidders, res)
		admitted := len(b.bidders) - len(res.Excluded)
		eo.AnonMin, eo.AnonMean = admitted, float64(admitted)
		if res.Auctioneer != nil {
			if sizes := res.Auctioneer.ShardSizes(); len(sizes) > 0 {
				sum := 0
				eo.AnonMin = sizes[0]
				for _, sz := range sizes {
					sum += sz
					if sz < eo.AnonMin {
						eo.AnonMin = sz
					}
				}
				eo.AnonMean = float64(sum) / float64(len(sizes))
			}
		}
	}
	s.cfg.Ops.ObserveEpoch(eo)
}

// awardDigest hashes the epoch's award transcript in the load harness's
// writeAward line format: the bidder set, every assignment with its
// charge, and the outcome totals.
func awardDigest(epoch int, bidders []int, res *round.Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "epoch %d bidders %d [", epoch, len(bidders))
	for _, id := range bidders {
		fmt.Fprintf(h, " %d", id)
	}
	fmt.Fprint(h, " ]\n")
	for i, as := range res.Outcome.Assignments {
		fmt.Fprintf(h, "award bidder %d channel %d charge %d\n",
			bidders[as.Bidder], as.Channel, res.Outcome.Charges[i])
	}
	fmt.Fprintf(h, "revenue %d satisfied %d voided %d excluded %v\n",
		res.Outcome.Revenue, res.Outcome.SatisfiedBidders, res.Voided, res.Excluded)
	return hex.EncodeToString(h.Sum(nil))
}

// Close seals any residual intake, stops the ticker and runner, and
// closes Results after the final epoch is delivered. Idempotent; callers
// must keep draining Results until it closes, or Close blocks behind the
// runner's buffered sends.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		// Readiness flips off the moment draining starts: probes stop
		// routing new submissions here while the final epoch still runs.
		s.cfg.Ops.NoteDraining()
		if s.tickStop != nil {
			close(s.tickStop)
			<-s.tickDone
		}
		// Final seal before flipping closed, so in-flight submissions either
		// land in this last epoch or see ErrClosed — never silently vanish.
		s.sealMu.Lock()
		s.mu.Lock()
		s.closed = true
		b, ok := s.takeIntake()
		s.mu.Unlock()
		if ok {
			s.cfg.Ops.NoteSeal(b.epoch, len(b.bidders))
			s.queue <- b
		}
		close(s.queue)
		s.sealMu.Unlock()
	})
	<-s.done
	s.cfg.Ops.NoteClosed()
	return nil
}

// Finish runs the service to completion: it drains Results on a helper
// goroutine (so the runner's buffered sends can never wedge the
// shutdown), Closes — sealing any residual intake as the final epoch —
// and returns every remaining result in seal order. The run-to-completion
// hook for drivers that submit and seal from one goroutine; must not race
// other Results readers or in-flight Seal calls.
func (s *Service) Finish() ([]*EpochResult, error) {
	var out []*EpochResult
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for r := range s.results {
			out = append(out, r)
		}
	}()
	err := s.Close()
	<-drained
	return out, err
}
