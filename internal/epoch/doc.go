// Package epoch promotes the one-shot private auction round into a
// long-lived service: back-to-back epochs whose submission intake for
// epoch N+1 streams in while epoch N allocates, per-bidder token-bucket
// admission control at the ingest path, and VSA-style thresholded/batched
// accounting counters so billing and quota state do not become a
// datastore write per submission at scale.
//
// The contract that makes the service trustworthy is determinism: each
// epoch's allocation is bit-identical to an equivalent one-shot
// round.Run over the same admitted submissions with the epoch's derived
// seed (EpochSeed). Admission, pipelining, and accounting change who is
// in an epoch and what the service costs to run — never what an epoch's
// population is awarded. DESIGN.md §5h covers the architecture.
package epoch
