// Package bidder models the secondary users (SUs) of the auction: their
// placement, channel valuations, and truthful bid vectors.
//
// Following the paper's experiment setup, an SU in cell c bids on channel j
//
//	b_j = q_j·β + η,  |η| ≤ 20%·q_j·β
//
// where q_j is the channel quality in c (from the coverage maps), β is the
// user's transmission-emergency value, and η is valuation noise. Bids on
// unavailable channels are zero — which is exactly the signal the BCM
// attack exploits.
package bidder

import (
	"fmt"
	"math"
	"math/rand"

	"lppa/internal/dataset"
	"lppa/internal/geo"
)

// SU is one secondary user.
type SU struct {
	// ID indexes the user within an auction round. The paper notes IDs
	// must be remixed between rounds; within one round they are stable.
	ID int
	// Cell is the user's true location (what the attacker wants).
	Cell geo.Cell
	// Beta is the transmission-emergency value β.
	Beta float64
}

// Point returns the protocol coordinates of the SU's location.
func (s SU) Point() geo.Point { return geo.PointOf(s.Cell) }

// Config controls valuation and bid quantization.
type Config struct {
	// BMax is the public upper bound bmax on any bid (protocol parameter;
	// prefix width derives from it).
	BMax uint64
	// NoiseFrac bounds |η| as a fraction of q·β (the paper uses 0.20).
	NoiseFrac float64
	// SensingNoiseFrac bounds the spectrum-sensing measurement
	// discrepancy: the SU's *perceived* channel quality deviates from the
	// database ground truth the attacker holds (section III.B notes this
	// discrepancy is why BPM keeps multiple candidate cells). Drawn
	// uniformly in ±SensingNoiseFrac per (SU, channel).
	SensingNoiseFrac float64
	// BetaMin and BetaMax bound the emergency value β.
	BetaMin, BetaMax float64
}

// DefaultConfig mirrors the paper: 20 % valuation noise, β spread covering
// casual to urgent traffic, bids quantized into [0, 100].
func DefaultConfig() Config {
	return Config{BMax: 100, NoiseFrac: 0.20, SensingNoiseFrac: 0.25, BetaMin: 0.5, BetaMax: 1.0}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.BMax < 1 {
		return fmt.Errorf("bidder: bmax %d must be ≥ 1", c.BMax)
	}
	if c.NoiseFrac < 0 || c.NoiseFrac >= 1 {
		return fmt.Errorf("bidder: noise fraction %f out of [0,1)", c.NoiseFrac)
	}
	if c.SensingNoiseFrac < 0 || c.SensingNoiseFrac >= 1 {
		return fmt.Errorf("bidder: sensing noise fraction %f out of [0,1)", c.SensingNoiseFrac)
	}
	if c.BetaMin <= 0 || c.BetaMax < c.BetaMin {
		return fmt.Errorf("bidder: beta range [%f,%f] invalid", c.BetaMin, c.BetaMax)
	}
	return nil
}

// Place distributes n SUs uniformly at random over the grid (the paper
// distributes SUs randomly within each area) with β drawn uniformly from
// the configured range.
func Place(g geo.Grid, n int, cfg Config, rng *rand.Rand) []SU {
	sus := make([]SU, n)
	for i := range sus {
		sus[i] = SU{
			ID:   i,
			Cell: geo.Cell{Row: rng.Intn(g.Rows), Col: rng.Intn(g.Cols)},
			Beta: cfg.BetaMin + rng.Float64()*(cfg.BetaMax-cfg.BetaMin),
		}
	}
	return sus
}

// PlaceClustered distributes n SUs around a few hotspots (business
// districts, campuses): cluster centers land uniformly, members scatter
// around them with the given standard deviation in cells. Clustered
// populations have far denser conflict graphs than uniform ones, which
// stresses the allocator's spectrum-reuse logic — the ablation benchmarks
// compare both.
func PlaceClustered(g geo.Grid, n, clusters int, spreadCells float64, cfg Config, rng *rand.Rand) []SU {
	if clusters < 1 {
		clusters = 1
	}
	type center struct{ row, col float64 }
	centers := make([]center, clusters)
	for i := range centers {
		centers[i] = center{row: float64(rng.Intn(g.Rows)), col: float64(rng.Intn(g.Cols))}
	}
	clamp := func(v float64, hi int) int {
		i := int(v + 0.5)
		if i < 0 {
			return 0
		}
		if i >= hi {
			return hi - 1
		}
		return i
	}
	sus := make([]SU, n)
	for i := range sus {
		c := centers[rng.Intn(clusters)]
		sus[i] = SU{
			ID: i,
			Cell: geo.Cell{
				Row: clamp(c.row+rng.NormFloat64()*spreadCells, g.Rows),
				Col: clamp(c.col+rng.NormFloat64()*spreadCells, g.Cols),
			},
			Beta: cfg.BetaMin + rng.Float64()*(cfg.BetaMax-cfg.BetaMin),
		}
	}
	return sus
}

// BidVector computes the SU's truthful bid on every channel of the area.
// Unavailable channels bid zero; available channels bid at least 1 so a
// zero bid unambiguously means "not available" in the plaintext baseline.
func BidVector(su SU, area *dataset.Area, cfg Config, rng *rand.Rand) []uint64 {
	bids := make([]uint64, area.NumChannels())
	scale := float64(cfg.BMax) / cfg.BetaMax // q∈(0,1], β≤βmax ⇒ b ≤ bmax pre-noise
	for r, cm := range area.Coverage {
		q := cm.QualityAt(su.Cell)
		if q <= 0 {
			continue
		}
		// The SU senses quality imperfectly; the attacker's database holds
		// the unperturbed q.
		q *= 1 + (2*rng.Float64()-1)*cfg.SensingNoiseFrac
		v := q * su.Beta
		eta := (2*rng.Float64() - 1) * cfg.NoiseFrac * v
		b := math.Round((v + eta) * scale)
		if b < 1 {
			b = 1
		}
		if b > float64(cfg.BMax) {
			b = float64(cfg.BMax)
		}
		bids[r] = uint64(b)
	}
	return bids
}

// AvailableSet returns the channel indices the SU can use (the paper's
// AS(i)); equivalent to the nonzero support of BidVector.
func AvailableSet(su SU, area *dataset.Area) []int {
	return area.AvailableSet(su.Cell)
}

// Population couples SUs with their bid vectors for one auction round.
type Population struct {
	SUs  []SU
	Bids [][]uint64 // Bids[i][r] = bid of SU i on channel r
}

// NewPopulation places n users and computes their bids in one call.
func NewPopulation(area *dataset.Area, n int, cfg Config, rng *rand.Rand) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("bidder: population size %d must be ≥ 1", n)
	}
	p := &Population{SUs: Place(area.Grid, n, cfg, rng)}
	p.Bids = make([][]uint64, n)
	for i, su := range p.SUs {
		p.Bids[i] = BidVector(su, area, cfg, rng)
	}
	return p, nil
}

// N reports the population size.
func (p *Population) N() int { return len(p.SUs) }

// PlaceCells builds SUs at caller-chosen cells (e.g. a dataset.DensityMix
// placement), drawing β from cfg exactly like Place.
func PlaceCells(cells []geo.Cell, cfg Config, rng *rand.Rand) []SU {
	sus := make([]SU, len(cells))
	for i, c := range cells {
		sus[i] = SU{
			ID:   i,
			Cell: c,
			Beta: cfg.BetaMin + rng.Float64()*(cfg.BetaMax-cfg.BetaMin),
		}
	}
	return sus
}

// NewPopulationAt is NewPopulation over an explicit placement, letting
// density-mix experiments choose the geometry while bids still come from
// the area's coverage maps.
func NewPopulationAt(area *dataset.Area, cells []geo.Cell, cfg Config, rng *rand.Rand) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cells) < 1 {
		return nil, fmt.Errorf("bidder: population size %d must be ≥ 1", len(cells))
	}
	p := &Population{SUs: PlaceCells(cells, cfg, rng)}
	p.Bids = make([][]uint64, len(cells))
	for i, su := range p.SUs {
		p.Bids[i] = BidVector(su, area, cfg, rng)
	}
	return p, nil
}
