package bidder

import (
	"math/rand"
	"testing"

	"lppa/internal/dataset"
	"lppa/internal/geo"
)

func testArea(t *testing.T) *dataset.Area {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Grid:     geo.Grid{Rows: 20, Cols: 20, SideMeters: 75_000},
		Channels: 10,
		Profiles: dataset.LAProfiles(),
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Areas[3]
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{BMax: 0, NoiseFrac: 0.1, BetaMin: 1, BetaMax: 2},
		{BMax: 10, NoiseFrac: -0.1, BetaMin: 1, BetaMax: 2},
		{BMax: 10, NoiseFrac: 1.0, BetaMin: 1, BetaMax: 2},
		{BMax: 10, NoiseFrac: 0.1, BetaMin: 0, BetaMax: 2},
		{BMax: 10, NoiseFrac: 0.1, BetaMin: 3, BetaMax: 2},
		{BMax: 10, NoiseFrac: 0.1, SensingNoiseFrac: -1, BetaMin: 1, BetaMax: 2},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
}

func TestPlaceWithinGridAndBetaRange(t *testing.T) {
	g := geo.Grid{Rows: 30, Cols: 40, SideMeters: 1000}
	cfg := DefaultConfig()
	sus := Place(g, 200, cfg, rand.New(rand.NewSource(1)))
	if len(sus) != 200 {
		t.Fatalf("placed %d SUs", len(sus))
	}
	for _, su := range sus {
		if !g.InBounds(su.Cell) {
			t.Fatalf("SU %d out of bounds at %v", su.ID, su.Cell)
		}
		if su.Beta < cfg.BetaMin || su.Beta > cfg.BetaMax {
			t.Fatalf("SU %d beta %f out of range", su.ID, su.Beta)
		}
	}
	ids := map[int]bool{}
	for _, su := range sus {
		if ids[su.ID] {
			t.Fatalf("duplicate ID %d", su.ID)
		}
		ids[su.ID] = true
	}
}

func TestBidVectorZeroIffUnavailable(t *testing.T) {
	area := testArea(t)
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	sus := Place(area.Grid, 50, cfg, rng)
	for _, su := range sus {
		bids := BidVector(su, area, cfg, rng)
		for r, cm := range area.Coverage {
			avail := cm.AvailableAt(su.Cell)
			if avail != (bids[r] > 0) {
				t.Fatalf("SU %d channel %d: available=%v bid=%d", su.ID, r, avail, bids[r])
			}
			if bids[r] > cfg.BMax {
				t.Fatalf("SU %d channel %d: bid %d exceeds bmax %d", su.ID, r, bids[r], cfg.BMax)
			}
		}
	}
}

func TestBidVectorTracksQuality(t *testing.T) {
	// With zero noise and fixed β, bids must be monotone in quality.
	area := testArea(t)
	cfg := Config{BMax: 100, NoiseFrac: 0, BetaMin: 1, BetaMax: 1}
	rng := rand.New(rand.NewSource(3))
	// Find a cell with at least two available channels of distinct quality.
	for idx := 0; idx < area.Grid.NumCells(); idx++ {
		cell := area.Grid.CellAt(idx)
		su := SU{ID: 0, Cell: cell, Beta: 1}
		q := area.Quality(cell)
		bids := BidVector(su, area, cfg, rng)
		for a := range q {
			for b := range q {
				if q[a] > q[b] && bids[a] < bids[b] {
					t.Fatalf("cell %v: q%d=%f > q%d=%f but bid %d < %d",
						cell, a, q[a], b, q[b], bids[a], bids[b])
				}
			}
		}
	}
}

func TestBidNoiseBounded(t *testing.T) {
	area := testArea(t)
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(4))
	su := Place(area.Grid, 1, cfg, rng)[0]
	scale := float64(cfg.BMax) / cfg.BetaMax
	for trial := 0; trial < 100; trial++ {
		bids := BidVector(su, area, cfg, rng)
		for r, cm := range area.Coverage {
			q := cm.QualityAt(su.Cell)
			if q <= 0 {
				continue
			}
			v := q * su.Beta * scale
			spread := (1 + cfg.NoiseFrac) * (1 + cfg.SensingNoiseFrac)
			shrink := (1 - cfg.NoiseFrac) * (1 - cfg.SensingNoiseFrac)
			lo, hi := v*shrink-1, v*spread+1
			if lo < 1 {
				lo = 1
			}
			if hi > float64(cfg.BMax) {
				hi = float64(cfg.BMax)
			}
			got := float64(bids[r])
			if got < lo || got > hi {
				t.Fatalf("bid %f outside noise envelope [%f,%f] (v=%f)", got, lo, hi, v)
			}
		}
	}
}

func TestAvailableSetMatchesArea(t *testing.T) {
	area := testArea(t)
	su := SU{ID: 0, Cell: geo.Cell{Row: 5, Col: 5}, Beta: 1}
	got := AvailableSet(su, area)
	want := area.AvailableSet(su.Cell)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("got[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestNewPopulation(t *testing.T) {
	area := testArea(t)
	pop, err := NewPopulation(area, 30, DefaultConfig(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if pop.N() != 30 || len(pop.Bids) != 30 {
		t.Fatalf("population size %d / %d bids", pop.N(), len(pop.Bids))
	}
	for i := range pop.Bids {
		if len(pop.Bids[i]) != area.NumChannels() {
			t.Fatalf("SU %d bid vector len %d", i, len(pop.Bids[i]))
		}
	}
	if _, err := NewPopulation(area, 0, DefaultConfig(), rand.New(rand.NewSource(6))); err == nil {
		t.Error("n=0 accepted")
	}
	badCfg := DefaultConfig()
	badCfg.BMax = 0
	if _, err := NewPopulation(area, 5, badCfg, rand.New(rand.NewSource(7))); err == nil {
		t.Error("bad config accepted")
	}
}

func TestPointConversion(t *testing.T) {
	su := SU{ID: 1, Cell: geo.Cell{Row: 9, Col: 4}}
	p := su.Point()
	if p.X != 4 || p.Y != 9 {
		t.Errorf("point = %+v", p)
	}
}

func TestPlaceClusteredWithinGrid(t *testing.T) {
	g := geo.Grid{Rows: 50, Cols: 50, SideMeters: 1000}
	cfg := DefaultConfig()
	sus := PlaceClustered(g, 100, 3, 2.5, cfg, rand.New(rand.NewSource(1)))
	if len(sus) != 100 {
		t.Fatalf("placed %d", len(sus))
	}
	for _, su := range sus {
		if !g.InBounds(su.Cell) {
			t.Fatalf("SU %d out of bounds at %v", su.ID, su.Cell)
		}
	}
	// Degenerate cluster count is clamped.
	sus = PlaceClustered(g, 5, 0, 1, cfg, rand.New(rand.NewSource(2)))
	if len(sus) != 5 {
		t.Fatalf("placed %d with clamped clusters", len(sus))
	}
}

func TestPlaceClusteredDenserThanUniform(t *testing.T) {
	g := geo.Grid{Rows: 60, Cols: 60, SideMeters: 1000}
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	const n, lambda = 80, 3
	pairsWithin := func(sus []SU) int {
		count := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if geo.Conflict(sus[i].Point(), sus[j].Point(), lambda) {
					count++
				}
			}
		}
		return count
	}
	uniform := pairsWithin(Place(g, n, cfg, rng))
	clustered := pairsWithin(PlaceClustered(g, n, 3, 2.0, cfg, rng))
	if clustered <= uniform {
		t.Errorf("clustered conflicts %d not above uniform %d", clustered, uniform)
	}
}
