package privacy

import (
	"math"
	"strings"
	"testing"

	"lppa/internal/geo"
)

func grid() geo.Grid { return geo.Grid{Rows: 10, Cols: 10, SideMeters: 10_000} }

func TestEvaluateSingletonHit(t *testing.T) {
	g := grid()
	p := geo.NewCellSet(g)
	truth := geo.Cell{Row: 3, Col: 3}
	p.Add(truth)
	rep := Evaluate(p, truth)
	if rep.PossibleCells != 1 || rep.Failed {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.Uncertainty != 0 {
		t.Errorf("uncertainty = %f, want 0 (singleton)", rep.Uncertainty)
	}
	if rep.Incorrectness != 0 {
		t.Errorf("incorrectness = %f, want 0", rep.Incorrectness)
	}
}

func TestEvaluateMiss(t *testing.T) {
	g := grid()
	p := geo.NewCellSet(g)
	p.Add(geo.Cell{Row: 0, Col: 0})
	rep := Evaluate(p, geo.Cell{Row: 9, Col: 9})
	if !rep.Failed {
		t.Error("miss not flagged as failure")
	}
	if rep.Incorrectness <= 0 {
		t.Error("incorrectness should be positive for a miss")
	}
}

func TestEvaluateEmptySet(t *testing.T) {
	rep := Evaluate(geo.NewCellSet(grid()), geo.Cell{Row: 1, Col: 1})
	if !rep.Failed || rep.PossibleCells != 0 || rep.Uncertainty != 0 || rep.Incorrectness != 0 {
		t.Errorf("empty-set report = %+v", rep)
	}
}

func TestEvaluateUniformEntropy(t *testing.T) {
	g := grid()
	p := geo.NewCellSet(g)
	for i := 0; i < 8; i++ {
		p.Add(g.CellAt(i))
	}
	rep := Evaluate(p, g.CellAt(0))
	if math.Abs(rep.Uncertainty-3) > 1e-12 {
		t.Errorf("uncertainty = %f, want 3 bits for 8 cells", rep.Uncertainty)
	}
}

func TestEvaluateIncorrectnessMeanDistance(t *testing.T) {
	g := grid() // 1000 m cells
	p := geo.NewCellSet(g)
	truth := geo.Cell{Row: 0, Col: 0}
	p.Add(truth)                    // distance 0
	p.Add(geo.Cell{Row: 0, Col: 4}) // 4000 m
	rep := Evaluate(p, truth)
	if math.Abs(rep.Incorrectness-2000) > 1e-9 {
		t.Errorf("incorrectness = %f, want 2000", rep.Incorrectness)
	}
}

func TestSummarize(t *testing.T) {
	reports := []Report{
		{PossibleCells: 10, Uncertainty: 2, Incorrectness: 100, Failed: false},
		{PossibleCells: 20, Uncertainty: 4, Incorrectness: 300, Failed: true},
	}
	agg := Summarize(reports)
	if agg.Victims != 2 {
		t.Fatalf("victims = %d", agg.Victims)
	}
	if agg.PossibleCells != 15 || agg.Uncertainty != 3 || agg.Incorrectness != 200 {
		t.Errorf("agg = %+v", agg)
	}
	if agg.FailureRate != 0.5 || agg.SuccessRate != 0.5 {
		t.Errorf("failure = %f success = %f", agg.FailureRate, agg.SuccessRate)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	agg := Summarize(nil)
	if agg.Victims != 0 || agg.FailureRate != 0 {
		t.Errorf("agg = %+v", agg)
	}
}

func TestAggregateString(t *testing.T) {
	s := Summarize([]Report{{PossibleCells: 5, Uncertainty: 2.32, Incorrectness: 1500}}).String()
	for _, want := range []string{"victims=1", "cells=5.0", "failure=0.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
