// Package privacy quantifies location-privacy leakage with the four
// metrics of the paper's section VI.A: uncertainty, incorrectness, failure
// rate, and the number of possible location cells. Larger values of every
// metric mean better-preserved privacy.
package privacy

import (
	"fmt"
	"math"

	"lppa/internal/geo"
)

// Report holds the per-victim metrics for one attack outcome.
type Report struct {
	// PossibleCells is |P|, the cardinality of the attacker's final
	// possible-location set.
	PossibleCells int
	// Uncertainty is the entropy −Σ Pr_x·log2 Pr_x of the attacker's
	// posterior. With the uniform posterior over P the paper uses, this
	// is log2|P| bits; an empty P scores zero.
	Uncertainty float64
	// Incorrectness is Σ Pr_x·‖l_x − l0‖: the expected distance (in
	// meters) between the attacker's hypothesis and the true location.
	Incorrectness float64
	// Failed reports attack failure: the true cell is outside P.
	Failed bool
}

// Evaluate computes the metrics for an attack that output the possible set
// p against a victim truly located at truth. The posterior is uniform over
// p, following the paper.
func Evaluate(p *geo.CellSet, truth geo.Cell) Report {
	n := p.Count()
	rep := Report{PossibleCells: n, Failed: !p.Contains(truth)}
	if n == 0 {
		return rep
	}
	rep.Uncertainty = math.Log2(float64(n))
	g := p.Grid()
	var sum float64
	p.ForEach(func(c geo.Cell) {
		sum += g.CellDistanceMeters(c, truth)
	})
	rep.Incorrectness = sum / float64(n)
	return rep
}

// Aggregate averages reports across victims; failure becomes a rate.
type Aggregate struct {
	Victims       int
	PossibleCells float64
	Uncertainty   float64
	Incorrectness float64
	FailureRate   float64
	// SuccessRate is the complement of FailureRate (Fig. 4(b) reports
	// success).
	SuccessRate float64
}

// Summarize aggregates per-victim reports. It returns a zero Aggregate for
// an empty input.
func Summarize(reports []Report) Aggregate {
	agg := Aggregate{Victims: len(reports)}
	if len(reports) == 0 {
		return agg
	}
	failures := 0
	for _, r := range reports {
		agg.PossibleCells += float64(r.PossibleCells)
		agg.Uncertainty += r.Uncertainty
		agg.Incorrectness += r.Incorrectness
		if r.Failed {
			failures++
		}
	}
	n := float64(len(reports))
	agg.PossibleCells /= n
	agg.Uncertainty /= n
	agg.Incorrectness /= n
	agg.FailureRate = float64(failures) / n
	agg.SuccessRate = 1 - agg.FailureRate
	return agg
}

// String renders the aggregate as one report row.
func (a Aggregate) String() string {
	return fmt.Sprintf("victims=%d cells=%.1f uncertainty=%.2fbits incorrectness=%.0fm failure=%.1f%%",
		a.Victims, a.PossibleCells, a.Uncertainty, a.Incorrectness, 100*a.FailureRate)
}
