package round

import (
	"math/rand"
	"reflect"
	"testing"

	"lppa/internal/core"
	"lppa/internal/obs"
)

// sameResult compares everything a Result exposes except the Auctioneer
// pointer (always distinct instances).
func sameResult(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Outcome, b.Outcome) {
		t.Errorf("%s: outcomes differ\n a=%+v\n b=%+v", tag, a.Outcome, b.Outcome)
	}
	if a.Voided != b.Voided || a.Violations != b.Violations || a.SubmissionBytes != b.SubmissionBytes {
		t.Errorf("%s: voided/violations/bytes differ: %d/%d/%d vs %d/%d/%d",
			tag, a.Voided, a.Violations, a.SubmissionBytes, b.Voided, b.Violations, b.SubmissionBytes)
	}
}

// TestRunMatchesDeprecatedWrappers pins that every deprecated entry point
// and its Run spelling agree exactly, per seed.
func TestRunMatchesDeprecatedWrappers(t *testing.T) {
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	for _, seed := range []int64{2, 13} {
		p, ring, pts, bids := parallelFixture(t, 20, 2, seed)
		in := func() Input {
			return Input{Points: pts, Bids: bids, Policy: pol, Rng: rand.New(rand.NewSource(seed * 5))}
		}
		rng := func() *rand.Rand { return rand.New(rand.NewSource(seed * 5)) }

		cases := []struct {
			tag     string
			legacy  func() (*Result, error)
			unified func() (*Result, error)
		}{
			{"RunPrivate",
				func() (*Result, error) { return RunPrivate(p, ring, pts, bids, pol, rng()) },
				func() (*Result, error) { return Run(p, ring, in()) }},
			{"RunPrivateInteractive",
				func() (*Result, error) { return RunPrivateInteractive(p, ring, pts, bids, pol, rng()) },
				func() (*Result, error) { return Run(p, ring, in(), WithInteractiveCharging()) }},
			{"RunPrivateSecondPrice",
				func() (*Result, error) { return RunPrivateSecondPrice(p, ring, pts, bids, pol, rng()) },
				func() (*Result, error) { return Run(p, ring, in(), WithSecondPrice()) }},
			{"RunPrivateOpts",
				func() (*Result, error) {
					return RunPrivateOpts(p, ring, pts, bids, pol, rng(), Options{Workers: 4})
				},
				func() (*Result, error) { return Run(p, ring, in(), WithWorkers(4)) }},
		}
		pols := make([]core.DisguisePolicy, len(pts))
		for i := range pols {
			pols[i] = core.DisguisePolicy{P0: 0.5 + float64(i%5)*0.1, Decay: 0.9}
		}
		cases = append(cases, struct {
			tag     string
			legacy  func() (*Result, error)
			unified func() (*Result, error)
		}{"RunPrivateWithPolicies",
			func() (*Result, error) { return RunPrivateWithPolicies(p, ring, pts, bids, pols, rng()) },
			func() (*Result, error) {
				return Run(p, ring, Input{Points: pts, Bids: bids, Rng: rng()}, WithPolicies(pols))
			}})

		for _, tc := range cases {
			a, errA := tc.legacy()
			b, errB := tc.unified()
			if errA != nil || errB != nil {
				t.Fatalf("%s seed=%d: errs %v / %v", tc.tag, seed, errA, errB)
			}
			sameResult(t, tc.tag, a, b)
		}
	}
}

// TestRunObserverDoesNotChangeResults pins the observability contract at
// the round level: attaching a registry never changes any byte of the
// result, across seeds, worker counts, and charging modes.
func TestRunObserverDoesNotChangeResults(t *testing.T) {
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	shapes := []struct {
		tag  string
		opts []Option
	}{
		{"serial", nil},
		{"workers1", []Option{WithWorkers(1)}},
		{"workers4", []Option{WithWorkers(4)}},
		{"interactive", []Option{WithInteractiveCharging()}},
		{"secondprice", []Option{WithSecondPrice()}},
		{"nointern", []Option{WithWorkers(2), WithoutInterning()}},
	}
	for _, seed := range []int64{4, 21} {
		p, ring, pts, bids := parallelFixture(t, 20, 2, seed)
		for _, sh := range shapes {
			run := func(reg *obs.Registry) *Result {
				opts := append(append([]Option(nil), sh.opts...), WithObserver(reg))
				res, err := Run(p, ring, Input{Points: pts, Bids: bids, Policy: pol,
					Rng: rand.New(rand.NewSource(seed * 9))}, opts...)
				if err != nil {
					t.Fatalf("%s seed=%d: %v", sh.tag, seed, err)
				}
				return res
			}
			plain := run(nil)
			reg := obs.NewRegistry()
			watched := run(reg)
			sameResult(t, sh.tag, plain, watched)
			if reg.Counter("lppa_rounds_total").Value() != 1 {
				t.Errorf("%s seed=%d: rounds_total = %d, want 1", sh.tag, seed, reg.Counter("lppa_rounds_total").Value())
			}
			snap := reg.Snapshot()
			for _, phase := range []string{"encode", "conflict_graph", "allocate", "charge"} {
				h := snap.Histograms[`lppa_round_phase_seconds{phase="`+phase+`"}`]
				if h.Count != 1 {
					t.Errorf("%s seed=%d: phase %q observed %d times, want 1", sh.tag, seed, phase, h.Count)
				}
			}
			if snap.Counters["lppa_round_submission_bytes_total"] != uint64(plain.SubmissionBytes) {
				t.Errorf("%s seed=%d: submission bytes metric %d, result %d",
					sh.tag, seed, snap.Counters["lppa_round_submission_bytes_total"], plain.SubmissionBytes)
			}
			if snap.Counters["lppa_mask_digests_total"] == 0 {
				t.Errorf("%s seed=%d: no masked digests counted", sh.tag, seed)
			}
		}
	}
}

// TestRunOptionValidation covers the config error paths.
func TestRunOptionValidation(t *testing.T) {
	p, ring, pts, bids := parallelFixture(t, 4, 2, 1)
	in := Input{Points: pts, Bids: bids, Policy: core.DefaultDisguise(), Rng: rand.New(rand.NewSource(1))}
	if _, err := Run(p, ring, in, WithInteractiveCharging(), WithSecondPrice()); err == nil {
		t.Error("conflicting charging modes accepted")
	}
	if _, err := Run(p, ring, in, WithWorkers(-1)); err == nil {
		t.Error("negative worker count accepted")
	}
	if _, err := Run(p, ring, Input{Points: pts, Bids: bids, Policy: in.Policy}); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Run(p, ring, in, WithPolicies(make([]core.DisguisePolicy, 2))); err == nil {
		t.Error("short policy slice accepted")
	}
	if _, err := Run(p, ring, Input{Rng: in.Rng}); err == nil {
		t.Error("empty round accepted")
	}
}
