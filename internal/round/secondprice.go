package round

import (
	"math/rand"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

// RunPrivateSecondPrice executes a full LPPA round with second-price
// (clearing-price) charging — the paper's future-work direction made
// concrete: the auctioneer additionally forwards each award-time
// runner-up's sealed bid, and the TTP charges the winner that value. The
// auctioneer learns nothing extra (it already knew the masked ranking);
// the winner's charge no longer reveals its own bid, a small privacy
// bonus over first price.
//
// Deprecated: use Run with WithSecondPrice.
func RunPrivateSecondPrice(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand) (*Result, error) {
	return Run(params, ring, Input{Points: points, Bids: bids, Policy: policy, Rng: rng}, WithSecondPrice())
}
