package round

import (
	"fmt"
	"math/rand"

	"lppa/internal/auction"
	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/ttp"
)

// RunPrivateSecondPrice executes a full LPPA round with second-price
// (clearing-price) charging — the paper's future-work direction made
// concrete: the auctioneer additionally forwards each award-time
// runner-up's sealed bid, and the TTP charges the winner that value. The
// auctioneer learns nothing extra (it already knew the masked ranking);
// the winner's charge no longer reveals its own bid, a small privacy
// bonus over first price.
func RunPrivateSecondPrice(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("round: no bidders")
	}
	if len(bids) != n {
		return nil, fmt.Errorf("round: %d points, %d bid vectors", n, len(bids))
	}
	trusted, err := ttp.FromRing(params, ring, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}
	var sampler *core.DisguiseSampler
	if policy.P0 < 1 {
		if sampler, err = core.NewDisguiseSampler(policy, params.BMax); err != nil {
			return nil, err
		}
	}
	locs := make([]*core.LocationSubmission, n)
	subs := make([]*core.BidSubmission, n)
	bytesTotal := 0
	for i := 0; i < n; i++ {
		if locs[i], err = core.NewLocationSubmission(params, ring, points[i]); err != nil {
			return nil, fmt.Errorf("round: bidder %d location: %w", i, err)
		}
		enc, err := core.NewBidEncoder(params, ring, sampler, rng)
		if err != nil {
			return nil, err
		}
		if subs[i], err = enc.Encode(bids[i], rng); err != nil {
			return nil, fmt.Errorf("round: bidder %d bids: %w", i, err)
		}
		bytesTotal += core.SubmissionBytes(subs[i]) + core.LocationBytes(locs[i])
	}
	auc, err := core.NewAuctioneer(params, locs, subs)
	if err != nil {
		return nil, err
	}
	awards, err := auc.AllocateAwards(rng)
	if err != nil {
		return nil, err
	}
	results := trusted.ProcessBatch(auc.ChargeRequestsSecondPrice(awards))

	out := &auction.Outcome{
		Assignments: make([]auction.Assignment, len(awards)),
		Charges:     make([]uint64, len(awards)),
		Bidders:     n,
	}
	for i, aw := range awards {
		out.Assignments[i] = aw.Assignment
	}
	res := &Result{Outcome: out, Auctioneer: auc, SubmissionBytes: bytesTotal}
	for i, r := range results {
		switch {
		case r.Err != nil:
			res.Violations++
		case !r.Valid:
			res.Voided++
		default:
			out.Charges[i] = r.Price
			out.Revenue += r.Price
			out.SatisfiedBidders++
		}
	}
	return res, nil
}
