package round

import (
	"fmt"
	"strconv"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
)

// WithShards routes the round through the tile-sharded planner/executor
// (DESIGN.md §5g): bidders are grouped into geographic tiles by a masked
// coarse-tile digest (keyed off the ring like every other submission
// digest, so the auctioneer learns nothing finer than the tile), per-tile
// conflict graphs and rank memos are built independently — in parallel
// under WithWorkers — and merged bit-identically, and allocation runs the
// rank-cursor engine over the merged memos. k sizes the tile grid at about
// k tiles (⌈√k⌉ per axis); the planner only materializes tiles somebody
// lives in, so the effective shard count is min(k, occupied tiles).
//
// Results are bit-identical to the same call without the option for every
// k ≥ 1 — sharding changes how much work finds the answer, never the
// answer — which the equivalence grid pins, with k = 1 the degenerate
// single-tile case. Composes with every other option.
func WithShards(k int) Option {
	return func(c *runConfig) error {
		if k < 1 {
			return fmt.Errorf("round: shard count %d, need at least 1", k)
		}
		c.shards = k
		return nil
	}
}

// planShards assigns each bidder a home tile by masked coarse-tile digest
// and registers it as a border-band visitor of every other tile its
// interference square (half-side 2λ−1, clamped like the location range
// queries) overlaps — at most three, since the tile side is a multiple of
// 2λ. The auctioneer-side plan is keyed purely by digest equality: the
// planner never stores tile coordinates next to bidders, and tiles nobody
// lives in are never materialized (a visitor digest matching no resident
// digest carries no conflict partner, so it is dropped).
func planShards(params core.Params, ring *mask.KeyRing, pts []geo.Point, shards int) (*core.ShardPlan, error) {
	return planShardsWith(nil, params, ring, pts, shards)
}

// planShardsWith is planShards with the grid and masker drawn from an
// EpochState memo when one is supplied (nil state builds them fresh) —
// the plan itself is always rebuilt, since it depends on the population.
func planShardsWith(st *EpochState, params core.Params, ring *mask.KeyRing, pts []geo.Point, shards int) (*core.ShardPlan, error) {
	tg, masker, err := st.planner(params, ring, shards)
	if err != nil {
		return nil, err
	}
	delta := 2*params.Lambda - 1

	plan := &core.ShardPlan{Home: make([]int, len(pts))}
	slot := make(map[mask.Digest]int)
	for i, p := range pts {
		tx, ty := tg.TileOf(p)
		d := masker.Mask(tg.ID(tx, ty))
		s, ok := slot[d]
		if !ok {
			s = len(plan.Tiles)
			slot[d] = s
			plan.Tiles = append(plan.Tiles, core.ShardTile{})
		}
		plan.Tiles[s].Residents = append(plan.Tiles[s].Residents, i)
		plan.Home[i] = s
	}
	for i, p := range pts {
		for _, id := range tg.Touched(p, delta)[1:] {
			if s, ok := slot[masker.Mask(id)]; ok {
				plan.Tiles[s].Visitors = append(plan.Tiles[s].Visitors, i)
			}
		}
	}
	return plan, nil
}

// shardSpans hangs a per-shard tracer span off the current phase for every
// tile build. The hook runs on executor goroutines; StartSpan and Span
// methods are safe for that.
func shardSpans(ph *phaser) func(shard, residents, visitors int) func(edges int) {
	return func(shard, residents, visitors int) func(edges int) {
		sp := ph.tracer.StartSpan("shard_build", ph.cur.Context(),
			obs.L("shard", strconv.Itoa(shard)),
			obs.L("residents", strconv.Itoa(residents)),
			obs.L("visitors", strconv.Itoa(visitors)))
		return func(edges int) {
			sp.Annotate("edges", strconv.Itoa(edges))
			sp.End()
		}
	}
}
