package round

import (
	"math/rand"
	"testing"

	"lppa/internal/core"
)

// TestEpochStateReuseBitIdentical pins WithEpochState's contract at the
// round layer: a sequence of Runs sharing one state — different
// populations, different option shapes per call — produces exactly what
// the same calls produce with fresh auctioneers. Reuse (core Reset +
// shard-planner memo) may only save construction work.
func TestEpochStateReuseBitIdentical(t *testing.T) {
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	st := NewEpochState()
	calls := []struct {
		n    int
		seed int64
		opts []Option
	}{
		{24, 3, nil},
		{36, 4, []Option{WithWorkers(4), WithShards(4)}},           // grow + shard
		{24, 5, []Option{WithWorkers(2), WithIndexedCandidates()}}, // shrink + index
		{30, 6, []Option{WithShards(4), WithIndexedCandidates()}},  // planner memo hit
		{30, 7, []Option{WithWorkers(1), WithoutInterning()}},      // knob must not leak from prior epochs
		{30, 8, []Option{WithSecondPrice()}},
	}
	for i, c := range calls {
		p, ring, pts, bids := parallelFixture(t, c.n, 2, c.seed)
		in := func() Input {
			return Input{Points: pts, Bids: bids, Policy: pol, Rng: rand.New(rand.NewSource(c.seed * 9))}
		}
		reused, err := Run(p, ring, in(), append(append([]Option{}, c.opts...), WithEpochState(st))...)
		if err != nil {
			t.Fatalf("call %d reused: %v", i, err)
		}
		fresh, err := Run(p, ring, in(), c.opts...)
		if err != nil {
			t.Fatalf("call %d fresh: %v", i, err)
		}
		sameResult(t, "epoch-state call "+string(rune('0'+i)), reused, fresh)
	}
	if st.auc == nil || !st.haveGrid {
		t.Fatal("state never captured the reusable pieces")
	}
}

// TestWithEpochStateNil rejects a nil state instead of silently running
// one-shot.
func TestWithEpochStateNil(t *testing.T) {
	p, ring, pts, bids := parallelFixture(t, 8, 2, 1)
	_, err := Run(p, ring, Input{Points: pts, Bids: bids, Rng: rand.New(rand.NewSource(1))}, WithEpochState(nil))
	if err == nil {
		t.Fatal("nil epoch state accepted")
	}
}
