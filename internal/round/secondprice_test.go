package round

import (
	"math/rand"
	"testing"

	"lppa/internal/core"
	"lppa/internal/geo"
)

func TestRunPrivateSecondPriceChargesRunnerUp(t *testing.T) {
	// Single channel, full conflict: winner pays the second bid, verified
	// end to end through masking, allocation, and TTP unblinding.
	p := core.Params{Channels: 1, Lambda: 5, MaxX: 9, MaxY: 9, BMax: 100}
	ring := ring(t, p)
	points := []geo.Point{{X: 1, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 1}}
	bids := [][]uint64{{60}, {90}, {75}}
	res, err := RunPrivateSecondPrice(p, ring, points, bids, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("violations = %d", res.Violations)
	}
	if len(res.Outcome.Assignments) != 1 {
		t.Fatalf("assignments = %v", res.Outcome.Assignments)
	}
	if res.Outcome.Assignments[0].Bidder != 1 {
		t.Fatalf("winner = %d, want 1", res.Outcome.Assignments[0].Bidder)
	}
	if res.Outcome.Charges[0] != 75 {
		t.Errorf("charge = %d, want runner-up bid 75", res.Outcome.Charges[0])
	}
}

func TestRunPrivateSecondPricePaymentsBounded(t *testing.T) {
	// Individual rationality through the full private pipeline: no winner
	// pays above its own bid.
	p := params()
	points, bids := population(p, 25, 20)
	res, err := RunPrivateSecondPrice(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 0.8, Decay: 0.9}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("violations = %d", res.Violations)
	}
	for i, a := range res.Outcome.Assignments {
		if c := res.Outcome.Charges[i]; c > bids[a.Bidder][a.Channel] && bids[a.Bidder][a.Channel] > 0 {
			t.Fatalf("winner %d pays %d above its bid %d", a.Bidder, c, bids[a.Bidder][a.Channel])
		}
	}
}

func TestRunPrivateSecondPriceRevenueAtMostFirstPrice(t *testing.T) {
	p := params()
	var first, second float64
	for seed := int64(0); seed < 4; seed++ {
		points, bids := population(p, 30, 800+seed)
		fp, err := RunPrivate(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(900+seed)))
		if err != nil {
			t.Fatal(err)
		}
		sp, err := RunPrivateSecondPrice(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(900+seed)))
		if err != nil {
			t.Fatal(err)
		}
		first += float64(fp.Outcome.Revenue)
		second += float64(sp.Outcome.Revenue)
	}
	if second > first {
		t.Errorf("aggregate second-price revenue %.0f exceeds first-price %.0f", second, first)
	}
	if second == 0 {
		t.Error("second-price revenue zero across all rounds")
	}
}

func TestRunPrivateSecondPriceValidation(t *testing.T) {
	p := params()
	if _, err := RunPrivateSecondPrice(p, ring(t, p), nil, nil, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty round accepted")
	}
}
