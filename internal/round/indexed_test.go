package round

import (
	"math/rand"
	"reflect"
	"testing"

	"lppa/internal/core"
	"lppa/internal/obs"
)

// TestWithIndexedCandidatesIdenticalResults pins the option's contract:
// indexed candidate generation changes how the conflict graph is found,
// never what it is — outcomes are byte-identical to the all-pairs oracle
// run at the same seed, across pipeline shapes and the interning ablation.
func TestWithIndexedCandidatesIdenticalResults(t *testing.T) {
	p, ring, pts, bids := parallelFixture(t, 40, 3, 21)
	shapes := []struct {
		name  string
		extra []Option
	}{
		{"serial", nil},
		{"seeded", []Option{WithWorkers(3)}},
		{"noIntern", []Option{WithoutInterning()}},
	}
	for _, sh := range shapes {
		in := func() Input {
			return Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(77))}
		}
		base, err := Run(p, ring, in(), sh.extra...)
		if err != nil {
			t.Fatalf("%s oracle: %v", sh.name, err)
		}
		indexed, err := Run(p, ring, in(), append([]Option{WithIndexedCandidates()}, sh.extra...)...)
		if err != nil {
			t.Fatalf("%s indexed: %v", sh.name, err)
		}
		if !indexed.Auctioneer.ConflictGraph().Equal(base.Auctioneer.ConflictGraph()) {
			t.Fatalf("%s: indexed conflict graph differs", sh.name)
		}
		if !reflect.DeepEqual(indexed.Outcome, base.Outcome) {
			t.Fatalf("%s: indexed outcome differs:\n%+v\nvs\n%+v", sh.name, indexed.Outcome, base.Outcome)
		}
		if indexed.Voided != base.Voided || indexed.Violations != base.Violations {
			t.Fatalf("%s: indexed charge tallies differ", sh.name)
		}
	}
}

// TestIndexedCandidateGenerationSpan pins the trace shape: an indexed
// traced round records candidate_generation as a child of the
// conflict_graph phase span.
func TestIndexedCandidateGenerationSpan(t *testing.T) {
	p, ring, pts, bids := parallelFixture(t, 12, 2, 5)
	tracer := obs.NewTracer("auctioneer")
	if _, err := Run(p, ring,
		Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(5))},
		WithWorkers(2), WithTrace(tracer), WithIndexedCandidates()); err != nil {
		t.Fatal(err)
	}
	byName := map[string]*obs.Span{}
	for _, s := range tracer.Snapshot() {
		byName[s.Name] = s
	}
	cg := byName["conflict_graph"]
	gen := byName["candidate_generation"]
	if cg == nil || gen == nil {
		t.Fatalf("missing spans: conflict_graph=%v candidate_generation=%v", cg != nil, gen != nil)
	}
	if gen.Parent != cg.Ctx {
		t.Fatalf("candidate_generation parent = %+v, want conflict_graph ctx %+v", gen.Parent, cg.Ctx)
	}
	// An untraced indexed round must not panic on the nil span path.
	if _, err := Run(p, ring,
		Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(5))},
		WithIndexedCandidates()); err != nil {
		t.Fatal(err)
	}
}
