package round

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/obs"
)

// TestWithTraceSamplerBitIdentical pins the observed-twin contract for
// sampled tracing over a sequence of rounds: every round — sampled or not
// — produces exactly the unsampled baseline's result, the sampled subset
// is the sampler's deterministic schedule (reported via Result.Trace),
// and two runs at the same (seed, K) produce identical sampled trace
// sets.
func TestWithTraceSamplerBitIdentical(t *testing.T) {
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	const n, epochs = 14, 12
	p, ring, pts, bids := parallelFixture(t, n, 2, 11)
	in := func(e int) Input {
		return Input{Points: pts, Bids: bids, Policy: pol, Rng: rand.New(rand.NewSource(int64(100 + e)))}
	}

	baseline := make([]*Result, epochs)
	for e := range baseline {
		res, err := Run(p, ring, in(e))
		if err != nil {
			t.Fatalf("baseline epoch %d: %v", e, err)
		}
		baseline[e] = res
	}

	type sweep struct {
		sampled []int
		spans   int
	}
	runSweep := func() sweep {
		s := obs.NewTraceSampler("svc", 5, 3)
		var sw sweep
		for e := 0; e < epochs; e++ {
			res, err := Run(p, ring, in(e), WithTraceSampler(s), WithEpochNumber(e))
			if err != nil {
				t.Fatalf("sampled epoch %d: %v", e, err)
			}
			sameResult(t, "epoch "+strconv.Itoa(e), baseline[e], res)
			if res.Trace != 0 {
				sw.sampled = append(sw.sampled, e)
				if !s.WouldSample(uint64(e)) {
					t.Fatalf("epoch %d traced off-schedule", e)
				}
			}
		}
		sw.spans = len(s.Tracer().Take())
		return sw
	}

	a, b := runSweep(), runSweep()
	if len(a.sampled) != epochs/3 {
		t.Fatalf("sampled %d of %d epochs with k=3: %v", len(a.sampled), epochs, a.sampled)
	}
	if len(a.sampled) != len(b.sampled) {
		t.Fatalf("sweeps sampled %v vs %v", a.sampled, b.sampled)
	}
	for i := range a.sampled {
		if a.sampled[i] != b.sampled[i] {
			t.Fatalf("sweeps sampled %v vs %v", a.sampled, b.sampled)
		}
	}
	if a.spans == 0 || a.spans != b.spans {
		t.Fatalf("span counts differ: %d vs %d", a.spans, b.spans)
	}
}

// TestWithTraceSamplerEpochAnnotation pins the sampled root span's
// metadata: the epoch number and the sampler's round index ride the span
// so a dumped trace is attributable without the event log.
func TestWithTraceSamplerEpochAnnotation(t *testing.T) {
	p, ring, pts, bids := parallelFixture(t, 10, 2, 7)
	s := obs.NewTraceSampler("svc", 3, 1) // k=1: every round sampled
	res, err := Run(p, ring,
		Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(7))},
		WithTraceSampler(s), WithEpochNumber(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == 0 {
		t.Fatal("k=1 sampled round has no trace id")
	}
	var root *obs.Span
	for _, sp := range s.Tracer().Snapshot() {
		if sp.Name == "round" {
			root = sp
		}
	}
	if root == nil {
		t.Fatal("no round root span")
	}
	if root.Ctx.Trace != res.Trace {
		t.Fatalf("Result.Trace %x != root trace %x", res.Trace, root.Ctx.Trace)
	}
	attrs := map[string]string{}
	for _, a := range root.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["epoch"] != "42" || attrs["sample_index"] != "0" {
		t.Fatalf("root attrs = %v", attrs)
	}
}

// TestWithTraceSamplerOptionRules pins the option algebra: WithTrace and
// WithTraceSampler are mutually exclusive, a sampler satisfies
// WithFlightRecorder's tracing requirement, and the nil sampler is the
// same as omitting the option.
func TestWithTraceSamplerOptionRules(t *testing.T) {
	p, ring, pts, bids := parallelFixture(t, 8, 2, 3)
	in := func() Input {
		return Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(3))}
	}
	s := obs.NewTraceSampler("svc", 1, 2)
	if _, err := Run(p, ring, in(), WithTrace(obs.NewTracer("x")), WithTraceSampler(s)); err == nil {
		t.Fatal("WithTrace + WithTraceSampler accepted")
	}
	fr := obs.NewFlightRecorder(t.TempDir(), 2, 0)
	if _, err := Run(p, ring, in(), WithTraceSampler(s), WithFlightRecorder(fr)); err != nil {
		t.Fatalf("sampler + flight recorder rejected: %v", err)
	}
	if _, err := Run(p, ring, in(), WithFlightRecorder(fr)); err == nil {
		t.Fatal("flight recorder without tracer or sampler accepted")
	}
	want, err := Run(p, ring, in())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(p, ring, in(), WithTraceSampler(nil))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "nil sampler", want, got)
	if got.Trace != 0 {
		t.Fatal("nil sampler produced a trace id")
	}
}

// TestWithPhaseObserver pins the streaming phase signal behind the ops
// SLO monitor: every executed phase reports exactly once, in execution
// order, with a non-negative duration — and the observer changes nothing
// about the result.
func TestWithPhaseObserver(t *testing.T) {
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	p, ring, pts, bids := parallelFixture(t, 12, 2, 9)
	in := func() Input {
		return Input{Points: pts, Bids: bids, Policy: pol, Rng: rand.New(rand.NewSource(9))}
	}
	want, err := Run(p, ring, in())
	if err != nil {
		t.Fatal(err)
	}
	type obsPhase struct {
		name string
		d    time.Duration
	}
	var seen []obsPhase
	got, err := Run(p, ring, in(), WithPhaseObserver(func(phase string, d time.Duration) {
		seen = append(seen, obsPhase{phase, d})
	}))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "observed", want, got)
	var names []string
	for _, ph := range seen {
		if ph.d < 0 {
			t.Fatalf("phase %q has negative duration %v", ph.name, ph.d)
		}
		names = append(names, ph.name)
	}
	wantNames := []string{"encode", "conflict_graph", "allocate", "charge"}
	if len(names) != len(wantNames) {
		t.Fatalf("observed phases %v, want %v", names, wantNames)
	}
	for i := range names {
		if names[i] != wantNames[i] {
			t.Fatalf("observed phases %v, want %v", names, wantNames)
		}
	}
}
