package round

import (
	"math/rand"
	"reflect"
	"testing"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

func parallelFixture(t *testing.T, n int, lambda uint64, seed int64) (core.Params, *mask.KeyRing, []geo.Point, [][]uint64) {
	t.Helper()
	p := core.Params{Channels: 6, Lambda: lambda, MaxX: 99, MaxY: 99, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("round-parallel"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	points := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			if rng.Intn(4) > 0 {
				bids[i][r] = uint64(rng.Intn(int(p.BMax))) + 1
			}
		}
	}
	return p, ring, points, bids
}

// TestRunPrivateOptsWorkerInvariance is the tentpole determinism test: for
// fixed seeds, every worker count must produce identical allocator output
// (assignments, charges, voids), identical transcript rankings, an
// identical conflict graph, and identical submission byte counts — across
// several populations, λ, and seeds.
func TestRunPrivateOptsWorkerInvariance(t *testing.T) {
	for _, tc := range []struct {
		n      int
		lambda uint64
	}{{8, 1}, {25, 2}, {40, 4}} {
		for _, seed := range []int64{1, 7, 42} {
			policy := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
			base, err := RunPrivateOpts(parallelArgs(t, tc.n, tc.lambda, seed, policy, 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				got, err := RunPrivateOpts(parallelArgs(t, tc.n, tc.lambda, seed, policy, workers))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Outcome.Assignments, base.Outcome.Assignments) {
					t.Errorf("n=%d λ=%d seed=%d workers=%d: assignments differ from serial", tc.n, tc.lambda, seed, workers)
				}
				if !reflect.DeepEqual(got.Outcome.Charges, base.Outcome.Charges) {
					t.Errorf("n=%d λ=%d seed=%d workers=%d: charges differ", tc.n, tc.lambda, seed, workers)
				}
				if got.Outcome.Revenue != base.Outcome.Revenue || got.Voided != base.Voided || got.Violations != base.Violations {
					t.Errorf("n=%d λ=%d seed=%d workers=%d: revenue/voids/violations differ", tc.n, tc.lambda, seed, workers)
				}
				if got.SubmissionBytes != base.SubmissionBytes {
					t.Errorf("n=%d λ=%d seed=%d workers=%d: submission bytes %d vs %d", tc.n, tc.lambda, seed, workers, got.SubmissionBytes, base.SubmissionBytes)
				}
				if !got.Auctioneer.ConflictGraph().Equal(base.Auctioneer.ConflictGraph()) {
					t.Errorf("n=%d λ=%d seed=%d workers=%d: conflict graphs differ", tc.n, tc.lambda, seed, workers)
				}
				if !reflect.DeepEqual(got.Auctioneer.Rankings(), base.Auctioneer.Rankings()) {
					t.Errorf("n=%d λ=%d seed=%d workers=%d: rankings differ", tc.n, tc.lambda, seed, workers)
				}
			}
		}
	}
}

// parallelArgs rebuilds identical inputs plus a fresh rng per invocation so
// runs cannot contaminate each other through shared rng state.
func parallelArgs(t *testing.T, n int, lambda uint64, seed int64, policy core.DisguisePolicy, workers int) (core.Params, *mask.KeyRing, []geo.Point, [][]uint64, core.DisguisePolicy, *rand.Rand, Options) {
	p, ring, points, bids := parallelFixture(t, n, lambda, seed)
	return p, ring, points, bids, policy, rand.New(rand.NewSource(seed * 1001)), Options{Workers: workers}
}

// TestEncodeSubmissionsWorkerInvariance checks the encoded submissions
// themselves (not just downstream results) are byte-identical across
// worker counts: sealed ciphertexts equal, digest sets equal.
func TestEncodeSubmissionsWorkerInvariance(t *testing.T) {
	p, ring, points, bids := parallelFixture(t, 20, 2, 5)
	sampler, err := core.NewDisguiseSampler(core.DisguisePolicy{P0: 0.5, Decay: 0.9}, p.BMax)
	if err != nil {
		t.Fatal(err)
	}
	samplers := make([]*core.DisguiseSampler, len(points))
	for i := range samplers {
		samplers[i] = sampler
	}
	encode := func(workers int) ([]*core.LocationSubmission, []*core.BidSubmission, int) {
		locs, subs, bytes, err := encodeSubmissions(p, ring, points, bids, samplers, rand.New(rand.NewSource(99)), workers)
		if err != nil {
			t.Fatal(err)
		}
		return locs, subs, bytes
	}
	wantLocs, wantSubs, wantBytes := encode(1)
	for _, workers := range []int{2, 5, 16} {
		locs, subs, bytes := encode(workers)
		if bytes != wantBytes {
			t.Errorf("workers=%d: %d submission bytes, want %d", workers, bytes, wantBytes)
		}
		for i := range wantSubs {
			if !core.Conflicts(locs[i], wantLocs[i]) {
				// A submission always conflicts with itself (families
				// intersect own ranges); failure means the masked sets differ.
				t.Errorf("workers=%d: location submission %d differs", workers, i)
			}
			for r := range wantSubs[i].Channels {
				a, b := &subs[i].Channels[r], &wantSubs[i].Channels[r]
				if string(a.Sealed) != string(b.Sealed) {
					t.Errorf("workers=%d bidder %d channel %d: sealed ciphertexts differ", workers, i, r)
				}
				if a.Family.Len() != b.Family.Len() || a.Range.Len() != b.Range.Len() {
					t.Errorf("workers=%d bidder %d channel %d: set sizes differ", workers, i, r)
				}
				for _, d := range b.Family.Digests() {
					if !a.Family.Contains(d) {
						t.Errorf("workers=%d bidder %d channel %d: family digest missing", workers, i, r)
						break
					}
				}
				for _, d := range b.Range.Digests() {
					if !a.Range.Contains(d) {
						t.Errorf("workers=%d bidder %d channel %d: range digest missing", workers, i, r)
						break
					}
				}
			}
		}
	}
}

// TestRunPrivateOptsValidations mirrors RunPrivate's input checks.
func TestRunPrivateOptsValidations(t *testing.T) {
	p, ring, points, bids := parallelFixture(t, 4, 2, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := RunPrivateOpts(p, ring, nil, nil, core.DefaultDisguise(), rng, Options{}); err == nil {
		t.Error("empty round accepted")
	}
	if _, err := RunPrivateOpts(p, ring, points, bids[:2], core.DefaultDisguise(), rng, Options{}); err == nil {
		t.Error("mismatched points/bids accepted")
	}
}

// TestRunPrivateOptsOutcomeSanity checks the parallel round produces a
// structurally valid auction: assignments within range, conflict-free, and
// revenue consistent with charges.
func TestRunPrivateOptsOutcomeSanity(t *testing.T) {
	p, ring, points, bids := parallelFixture(t, 30, 2, 9)
	res, err := RunPrivateOpts(p, ring, points, bids, core.DisguisePolicy{P0: 0.7, Decay: 0.95},
		rand.New(rand.NewSource(10)), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range res.Outcome.Charges {
		sum += c
	}
	if sum != res.Outcome.Revenue {
		t.Errorf("revenue %d does not match charge sum %d", res.Outcome.Revenue, sum)
	}
	g := res.Auctioneer.ConflictGraph()
	for _, a := range res.Outcome.Assignments {
		if a.Bidder < 0 || a.Bidder >= len(points) || a.Channel < 0 || a.Channel >= p.Channels {
			t.Fatalf("assignment out of range: %+v", a)
		}
		for _, b := range res.Outcome.Assignments {
			if a != b && a.Channel == b.Channel && g.HasEdge(a.Bidder, b.Bidder) {
				t.Errorf("conflicting co-channel assignment: %+v vs %+v", a, b)
			}
		}
	}
}
