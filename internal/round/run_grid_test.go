package round

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"lppa/internal/core"
	"lppa/internal/geo"
)

// TestRunQuorumGridFaultFreeIdentical pins WithQuorum's no-op contract
// across the option grid: on fault-free inputs, adding a quorum (any
// threshold) must leave the round bit-identical to the same combination
// without it — for every charging rule, interning mode, and pipeline
// shape, across seeds.
func TestRunQuorumGridFaultFreeIdentical(t *testing.T) {
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	const n = 16

	pipelines := []struct {
		tag  string
		opts []Option
	}{
		{"serial", nil},
		{"workers1", []Option{WithWorkers(1)}},
		{"workers4", []Option{WithWorkers(4)}},
	}
	charging := []struct {
		tag  string
		opts []Option
	}{
		{"firstprice", nil},
		{"secondprice", []Option{WithSecondPrice()}},
	}
	interning := []struct {
		tag  string
		opts []Option
	}{
		{"intern", nil},
		{"nointern", []Option{WithoutInterning()}},
	}
	quorums := []struct {
		tag  string
		opts []Option
	}{
		{"quorum-full", []Option{WithQuorum(n)}},
		{"quorum-half", []Option{WithQuorum(n / 2)}},
		{"quorum-one", []Option{WithQuorum(1)}},
	}

	for _, seed := range []int64{3, 17} {
		p, ring, pts, bids := parallelFixture(t, n, 2, seed)
		for _, pl := range pipelines {
			for _, ch := range charging {
				for _, it := range interning {
					base := append(append(append([]Option(nil), pl.opts...), ch.opts...), it.opts...)
					run := func(extra ...Option) *Result {
						t.Helper()
						res, err := Run(p, ring, Input{Points: pts, Bids: bids, Policy: pol,
							Rng: rand.New(rand.NewSource(seed * 7))}, append(append([]Option(nil), base...), extra...)...)
						if err != nil {
							t.Fatalf("%s/%s/%s seed=%d: %v", pl.tag, ch.tag, it.tag, seed, err)
						}
						return res
					}
					want := run()
					for _, q := range quorums {
						tag := pl.tag + "/" + ch.tag + "/" + it.tag + "/" + q.tag
						got := run(q.opts...)
						sameResult(t, tag, want, got)
						if len(got.Excluded) != 0 {
							t.Errorf("%s seed=%d: fault-free round excluded %v", tag, seed, got.Excluded)
						}
					}
					// Straggler timeout on the seeded pipeline is likewise a
					// fault-free no-op (generous deadline, nobody straggles).
					if pl.tag != "serial" {
						got := run(WithStragglerTimeout(time.Minute))
						sameResult(t, pl.tag+"/"+ch.tag+"/"+it.tag+"/straggler", want, got)
					}
				}
			}
		}
	}
}

// TestRunQuorumExcludesFailedBidder drives the degradation path: one
// bidder whose submission cannot be encoded (point outside the domain) is
// excluded under WithQuorum, the auction runs over the survivors, and the
// assignment indices still refer to the original population.
func TestRunQuorumExcludesFailedBidder(t *testing.T) {
	const n, bad = 12, 5
	p, ring, pts, bids := parallelFixture(t, n, 2, 9)
	pts[bad] = geo.Point{X: p.MaxX + 1, Y: 0} // unencodable
	pol := core.DisguisePolicy{P0: 1}

	for _, tc := range []struct {
		tag  string
		opts []Option
	}{
		{"serial", []Option{WithQuorum(n - 1)}},
		{"seeded", []Option{WithQuorum(n - 1), WithWorkers(3)}},
		{"secondprice", []Option{WithQuorum(n - 1), WithSecondPrice()}},
	} {
		res, err := Run(p, ring, Input{Points: pts, Bids: bids, Policy: pol,
			Rng: rand.New(rand.NewSource(11))}, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.tag, err)
		}
		if !reflect.DeepEqual(res.Excluded, []int{bad}) {
			t.Fatalf("%s: Excluded = %v, want [%d]", tc.tag, res.Excluded, bad)
		}
		if res.Outcome.Bidders != n {
			t.Errorf("%s: Outcome.Bidders = %d, want original population %d", tc.tag, res.Outcome.Bidders, n)
		}
		for _, as := range res.Outcome.Assignments {
			if as.Bidder == bad {
				t.Errorf("%s: excluded bidder %d won channel %d", tc.tag, bad, as.Channel)
			}
			if as.Bidder < 0 || as.Bidder >= n {
				t.Errorf("%s: assignment bidder %d outside original population", tc.tag, as.Bidder)
			}
		}
	}
}

// TestRunQuorumNotReached pins the typed failure: demanding more usable
// submissions than exist yields ErrQuorumNotReached, detectable with
// errors.Is.
func TestRunQuorumNotReached(t *testing.T) {
	const n = 6
	p, ring, pts, bids := parallelFixture(t, n, 2, 4)
	pts[0] = geo.Point{X: p.MaxX + 1, Y: 0}
	in := func() Input {
		return Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1},
			Rng: rand.New(rand.NewSource(2))}
	}

	if _, err := Run(p, ring, in(), WithQuorum(n)); !errors.Is(err, ErrQuorumNotReached) {
		t.Errorf("full quorum with one failed bidder: err = %v, want ErrQuorumNotReached", err)
	}
	// Without quorum mode the same input aborts with the encode error, not
	// the quorum sentinel: the legacy strict contract is untouched.
	if _, err := Run(p, ring, in()); err == nil || errors.Is(err, ErrQuorumNotReached) {
		t.Errorf("strict round: err = %v, want plain encode failure", err)
	}
}

// TestRunStragglerOptionValidation covers the new options' error paths.
func TestRunStragglerOptionValidation(t *testing.T) {
	p, ring, pts, bids := parallelFixture(t, 4, 2, 1)
	in := Input{Points: pts, Bids: bids, Policy: core.DefaultDisguise(), Rng: rand.New(rand.NewSource(1))}
	if _, err := Run(p, ring, in, WithQuorum(0)); err == nil {
		t.Error("zero quorum accepted")
	}
	if _, err := Run(p, ring, in, WithQuorum(99)); err == nil {
		t.Error("quorum beyond population accepted")
	}
	if _, err := Run(p, ring, in, WithStragglerTimeout(0)); err == nil {
		t.Error("zero straggler timeout accepted")
	}
	if _, err := Run(p, ring, in, WithStragglerTimeout(time.Second)); err == nil {
		t.Error("straggler timeout without WithWorkers accepted")
	}
}
