package round

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/obs"
)

// TestWithTraceBitIdentical pins the observed-twin contract for tracing:
// a traced round produces exactly the result of the same untraced call,
// for every pipeline and charging shape — tracing reads clocks and buffers
// spans but never touches the rng or the protocol.
func TestWithTraceBitIdentical(t *testing.T) {
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	const n = 16
	for _, seed := range []int64{3, 17} {
		p, ring, pts, bids := parallelFixture(t, n, 2, seed)
		for _, tc := range []struct {
			tag  string
			opts []Option
		}{
			{"serial", nil},
			{"workers4", []Option{WithWorkers(4)}},
			{"secondprice", []Option{WithSecondPrice()}},
			{"interactive", []Option{WithInteractiveCharging()}},
			{"quorum", []Option{WithWorkers(2), WithQuorum(n / 2)}},
		} {
			in := func() Input {
				return Input{Points: pts, Bids: bids, Policy: pol, Rng: rand.New(rand.NewSource(seed * 7))}
			}
			want, err := Run(p, ring, in(), tc.opts...)
			if err != nil {
				t.Fatalf("%s: untraced: %v", tc.tag, err)
			}
			tracer := obs.NewTracer("auctioneer")
			got, err := Run(p, ring, in(), append([]Option{WithTrace(tracer)}, tc.opts...)...)
			if err != nil {
				t.Fatalf("%s: traced: %v", tc.tag, err)
			}
			sameResult(t, tc.tag, want, got)
			if len(tracer.Snapshot()) == 0 {
				t.Errorf("%s: traced round recorded no spans", tc.tag)
			}
			// And a nil tracer is the documented same as omitting the option.
			got, err = Run(p, ring, in(), append([]Option{WithTrace(nil)}, tc.opts...)...)
			if err != nil {
				t.Fatalf("%s: nil tracer: %v", tc.tag, err)
			}
			sameResult(t, tc.tag+"/nil-tracer", want, got)
		}
	}
}

// TestWithTraceSpanTopology pins the trace shape of one round: a single
// round root carrying the population attributes, with the four phase spans
// as its direct children in phase order.
func TestWithTraceSpanTopology(t *testing.T) {
	p, ring, pts, bids := parallelFixture(t, 12, 2, 5)
	tracer := obs.NewTracer("auctioneer")
	if _, err := Run(p, ring,
		Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(5))},
		WithWorkers(2), WithTrace(tracer)); err != nil {
		t.Fatal(err)
	}
	spans := tracer.Snapshot()
	byName := map[string]*obs.Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root := byName["round"]
	if root == nil {
		t.Fatalf("no round root span; got %d spans", len(spans))
	}
	attrs := map[string]string{}
	for _, a := range root.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["bidders"] != "12" || attrs["channels"] != "6" {
		t.Errorf("root attrs = %v, want bidders=12 channels=6", attrs)
	}
	var order []string
	for _, s := range spans {
		if s.Parent == root.Ctx {
			order = append(order, s.Name)
		}
	}
	want := []string{"encode", "conflict_graph", "allocate", "charge"}
	if len(order) != len(want) {
		t.Fatalf("phase spans under root = %v, want %v", order, want)
	}
	for i, name := range want {
		if order[i] != name {
			t.Fatalf("phase order = %v, want %v", order, want)
		}
	}
}

// TestWithFlightRecorderRequiresTrace pins the option dependency.
func TestWithFlightRecorderRequiresTrace(t *testing.T) {
	p, ring, pts, bids := parallelFixture(t, 4, 2, 1)
	in := Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(1))}
	fr := obs.NewFlightRecorder(t.TempDir(), 2, 0)
	if _, err := Run(p, ring, in, WithFlightRecorder(fr)); err == nil {
		t.Fatal("WithFlightRecorder without WithTrace accepted")
	}
}

// TestFlightRecorderDumpsDegradedRound drives the flight-recorder trigger
// through Run: a quorum round that excludes an unencodable bidder is
// degraded, so the recorder dumps a trace whose round span carries the
// straggler_excluded event; a fault-free round dumps nothing.
func TestFlightRecorderDumpsDegradedRound(t *testing.T) {
	const n, bad = 12, 5
	p, ring, pts, bids := parallelFixture(t, n, 2, 9)
	dir := t.TempDir()
	tracer := obs.NewTracer("auctioneer")
	fr := obs.NewFlightRecorder(dir, 4, 0)

	// Clean round first: recorder ring buffers it, no dump.
	if _, err := Run(p, ring,
		Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(11))},
		WithWorkers(3), WithQuorum(n-1), WithTrace(tracer), WithFlightRecorder(fr)); err != nil {
		t.Fatal(err)
	}
	if dumps, _ := filepath.Glob(filepath.Join(dir, "flight-*.trace.json")); len(dumps) != 0 {
		t.Fatalf("clean round dumped %v", dumps)
	}

	// Degraded round: bidder bad cannot encode, quorum keeps the round
	// alive, the recorder must dump.
	pts[bad] = geo.Point{X: p.MaxX + 1, Y: 0}
	res, err := Run(p, ring,
		Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1}, Rng: rand.New(rand.NewSource(11))},
		WithWorkers(3), WithQuorum(n-1), WithTrace(tracer), WithFlightRecorder(fr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Excluded) != 1 || res.Excluded[0] != bad {
		t.Fatalf("Excluded = %v, want [%d]", res.Excluded, bad)
	}
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*.trace.json"))
	if err != nil || len(dumps) != 1 {
		t.Fatalf("flight dumps = %v (%v), want exactly one", dumps, err)
	}
	blob, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "straggler_excluded") {
		t.Errorf("flight dump lacks straggler_excluded event:\n%s", blob)
	}
	// The ring dump includes the buffered clean round too: both round
	// spans appear, giving before/after context.
	if got := strings.Count(string(blob), `"name":"round"`); got != 2 {
		t.Errorf("dump contains %d round spans, want 2 (clean + degraded)", got)
	}
}
