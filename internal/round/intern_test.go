package round

import (
	"math/rand"
	"reflect"
	"testing"

	"lppa/internal/core"
)

// TestRunPrivateOptsRepresentationInvariance pins the end-to-end soundness
// of auctioneer-side interning: for several seeds and every combination of
// worker count and set representation, the full private round — outcome,
// charges, voids, conflict graph, rankings, transcript bytes — is
// identical. The interned fast path may change nothing observable.
func TestRunPrivateOptsRepresentationInvariance(t *testing.T) {
	policy := core.DisguisePolicy{P0: 0.6, Decay: 0.9}
	for _, seed := range []int64{2, 13, 37} {
		p, ring, points, bids := parallelFixture(t, 25, 2, seed)
		base, err := RunPrivateOpts(p, ring, points, bids, policy,
			rand.New(rand.NewSource(seed*101)), Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			for _, disable := range []bool{false, true} {
				got, err := RunPrivateOpts(p, ring, points, bids, policy,
					rand.New(rand.NewSource(seed*101)),
					Options{Workers: workers, DisableInterning: disable})
				if err != nil {
					t.Fatal(err)
				}
				tag := "interned"
				if disable {
					tag = "map-based"
				}
				if !reflect.DeepEqual(got.Outcome, base.Outcome) {
					t.Errorf("seed=%d workers=%d %s: outcome differs", seed, workers, tag)
				}
				if got.Voided != base.Voided || got.Violations != base.Violations ||
					got.SubmissionBytes != base.SubmissionBytes {
					t.Errorf("seed=%d workers=%d %s: voids/violations/bytes differ", seed, workers, tag)
				}
				if !got.Auctioneer.ConflictGraph().Equal(base.Auctioneer.ConflictGraph()) {
					t.Errorf("seed=%d workers=%d %s: conflict graphs differ", seed, workers, tag)
				}
				if !reflect.DeepEqual(got.Auctioneer.Rankings(), base.Auctioneer.Rankings()) {
					t.Errorf("seed=%d workers=%d %s: rankings differ", seed, workers, tag)
				}
			}
		}
	}
}
