package round

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"lppa/internal/auction"
	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
	"lppa/internal/ttp"
)

// ErrQuorumNotReached reports that a quorum round had fewer usable
// submissions than WithQuorum demanded. The networked auctioneer
// (internal/transport) wraps the same sentinel when stragglers leave it
// short, so callers on either path detect the condition with errors.Is.
var ErrQuorumNotReached = errors.New("round: quorum not reached")

// Input bundles one round's bidder-side inputs: where the bidders are,
// what they bid, how they disguise, and the randomness driving the round.
type Input struct {
	// Points and Bids are indexed by bidder.
	Points []geo.Point
	Bids   [][]uint64
	// Policy is the disguise policy applied to every bidder. WithPolicies
	// overrides it per bidder.
	Policy core.DisguisePolicy
	// Rng drives every random choice of the round: the TTP's key material
	// seed, bid encoding, and the allocator's channel shuffles and tie
	// breaks. Fixing the seed fixes the round (see WithWorkers for how
	// parallel encoding keeps that true).
	Rng *rand.Rand
}

// Option tunes how Run executes. Options compose; conflicting charging
// modes are rejected by Run.
type Option func(*runConfig) error

type runConfig struct {
	workers     int
	seeded      bool
	policies    []core.DisguisePolicy
	interactive bool
	secondPrice bool
	noIntern    bool
	indexed     bool
	shards      int
	quorum      int
	straggler   time.Duration
	reg         *obs.Registry
	tracer      *obs.Tracer
	flight      *obs.FlightRecorder
	state       *EpochState
	sampler     *obs.TraceSampler
	epoch       int
	hasEpoch    bool
	onPhase     func(phase string, d time.Duration)
}

// WithWorkers bounds the goroutines used for submission encoding and
// conflict-graph construction. n == 0 means one worker per available CPU;
// n == 1 pins the seeded pipeline to the calling goroutine.
//
// Passing this option — with any n — switches Run onto the seeded
// encoding pipeline: the round rng is consumed serially up front (one TTP
// draw, then one encoding seed per bidder in index order), so results are
// identical for every n but differ from the optionless serial path at the
// same seed, which threads one rng through all bidders sequentially. Pick
// one shape per experiment.
func WithWorkers(n int) Option {
	return func(c *runConfig) error {
		if n < 0 {
			return fmt.Errorf("round: negative worker count %d", n)
		}
		c.workers = n
		c.seeded = true
		return nil
	}
}

// WithPolicies gives each bidder its own disguise policy (the paper lets
// every user pick its own privacy/performance tradeoff), overriding
// Input.Policy. The slice must have one entry per bidder.
func WithPolicies(policies []core.DisguisePolicy) Option {
	return func(c *runConfig) error {
		c.policies = policies
		return nil
	}
}

// WithInteractiveCharging switches the TTP to the interactive design:
// every prospective award is validity-checked before it stands, so a
// (possibly disguised) zero that tops a column wastes only that channel in
// the winner's neighborhood instead of the bidder's whole participation.
// Trades much more TTP online time for auction performance.
func WithInteractiveCharging() Option {
	return func(c *runConfig) error {
		c.interactive = true
		return nil
	}
}

// WithSecondPrice switches charging to second price: the auctioneer
// additionally forwards each award-time runner-up's sealed bid and the TTP
// charges the winner that value.
func WithSecondPrice() Option {
	return func(c *runConfig) error {
		c.secondPrice = true
		return nil
	}
}

// WithObserver records the round into reg: per-phase wall time under
// lppa_round_phase_seconds, round totals (winners, revenue, voided,
// violations, submission bytes, masked digests), and the auctioneer's
// comparison/interning counters (core.Auctioneer.SetObserver). A nil
// registry is the same as omitting the option; results are bit-identical
// either way.
func WithObserver(reg *obs.Registry) Option {
	return func(c *runConfig) error {
		c.reg = reg
		return nil
	}
}

// WithQuorum lets the round degrade gracefully instead of aborting: a
// bidder whose submission cannot be produced (malformed input, or a
// straggler past WithStragglerTimeout) is excluded and the auction runs
// over the remaining population, as long as at least q usable submissions
// remain — otherwise Run returns ErrQuorumNotReached. Excluded bidders
// are reported in Result.Excluded and count as unsatisfied. On fault-free
// inputs the option is a no-op: results are bit-identical to the same
// call without it.
func WithQuorum(q int) Option {
	return func(c *runConfig) error {
		if q < 1 {
			return fmt.Errorf("round: quorum %d, need at least 1", q)
		}
		c.quorum = q
		return nil
	}
}

// WithStragglerTimeout bounds how long the round waits for any bidder's
// submission to materialize; bidders still unfinished when it fires are
// excluded under the WithQuorum rules (the option implies a quorum of the
// full population when WithQuorum is not also given, so a fired timeout
// with no usable exclusions fails the round rather than silently shrinking
// it). Requires the seeded pipeline (WithWorkers): per-bidder seeding is
// what makes abandoning a straggler safe. Exclusion by deadline depends on
// scheduling and is therefore not deterministic — it exists so a wedged
// submission source cannot hang the round, which the chaos harness
// exercises over the networked transport.
func WithStragglerTimeout(d time.Duration) Option {
	return func(c *runConfig) error {
		if d <= 0 {
			return fmt.Errorf("round: straggler timeout %v, need positive", d)
		}
		c.straggler = d
		return nil
	}
}

// WithTrace records the round into tracer as one root "round" span with a
// child span per phase (encode, conflict_graph, allocate, charge) —
// mirroring the WithObserver phase timings — plus a straggler_excluded
// event per bidder a degraded quorum round dropped. A nil tracer is the
// same as omitting the option; results are bit-identical either way.
func WithTrace(tracer *obs.Tracer) Option {
	return func(c *runConfig) error {
		c.tracer = tracer
		return nil
	}
}

// WithFlightRecorder auto-dumps the round's trace through fr when the
// round fails, degrades below full attendance, or exceeds fr's latency
// SLO. Requires WithTrace or WithTraceSampler: the recorder dumps the
// spans the tracer collected. A nil recorder is the same as omitting the
// option.
func WithFlightRecorder(fr *obs.FlightRecorder) Option {
	return func(c *runConfig) error {
		c.flight = fr
		return nil
	}
}

// WithTraceSampler traces this round only when the sampler's
// deterministic 1-in-K schedule picks it (the sampler consumes one round
// index per Run). A sampled round behaves exactly like WithTrace with
// the sampler's tracer; an unsampled round runs the untraced path —
// bit-identical awards either way, and the unsampled path costs one
// atomic add over no option at all. Mutually exclusive with WithTrace; a
// nil sampler is the same as omitting the option.
func WithTraceSampler(s *obs.TraceSampler) Option {
	return func(c *runConfig) error {
		c.sampler = s
		return nil
	}
}

// WithEpochNumber tags the round with the epochal service's epoch
// number: the root trace span gets an epoch attribute and flight dumps
// triggered by the round carry the epoch in their filename. Pure
// metadata — results are bit-identical with or without it.
func WithEpochNumber(n int) Option {
	return func(c *runConfig) error {
		c.epoch = n
		c.hasEpoch = true
		return nil
	}
}

// WithPhaseObserver streams each phase's wall time to fn as the round
// executes — the always-on cheap signal behind the ops plane's SLO
// burn-rate monitor, available whether or not the round is traced. fn is
// called on the round goroutine; keep it fast. A nil fn is the same as
// omitting the option; results are bit-identical either way.
func WithPhaseObserver(fn func(phase string, d time.Duration)) Option {
	return func(c *runConfig) error {
		c.onPhase = fn
		return nil
	}
}

// WithoutInterning makes the auctioneer evaluate masked set operations on
// the map-based mask.Set representation instead of interned ID slices
// (DESIGN.md §5b). Ablation/testing knob: results are identical either
// way.
func WithoutInterning() Option {
	return func(c *runConfig) error {
		c.noIntern = true
		return nil
	}
}

// WithIndexedCandidates switches conflict-candidate generation onto the
// inverted index over interned masked digests (DESIGN.md §5f): candidate
// pairs come from posting-list self-joins instead of the all-pairs sweep,
// and only candidates are confirmed with the exact masked intersection.
// The graph — and therefore the auction result — is bit-identical to the
// default all-pairs oracle, which stays the verification path; this option
// only changes how much work finds it. Default off. Combined with
// WithoutInterning the index is skipped (it requires interned IDs) and the
// oracle runs unchanged.
func WithIndexedCandidates() Option {
	return func(c *runConfig) error {
		c.indexed = true
		return nil
	}
}

// phaser pairs the metrics PhaseTimer with tracing spans so both views of
// the round agree on phase boundaries. With a nil tracer every span field
// stays nil and the span calls are no-ops, so an untraced round runs the
// pre-tracing code path bit-identically.
type phaser struct {
	timer    *obs.PhaseTimer
	tracer   *obs.Tracer
	root     *obs.Span
	cur      *obs.Span
	onPhase  func(phase string, d time.Duration)
	curName  string
	curStart time.Time
	epoch    int
	hasEpoch bool
}

// phase closes the current phase (timer and span) and opens the named one
// as a child of the round root.
func (p *phaser) phase(name string) {
	p.timer.Phase(name)
	if p.onPhase != nil {
		now := time.Now()
		if p.curName != "" {
			p.onPhase(p.curName, now.Sub(p.curStart))
		}
		p.curName, p.curStart = name, now
	}
	p.cur.End()
	p.cur = nil
	if p.tracer != nil {
		p.cur = p.tracer.StartSpan(name, p.root.Context())
	}
}

// stop closes the current phase without opening another (round over or
// aborting).
func (p *phaser) stop() {
	p.timer.Stop()
	if p.onPhase != nil && p.curName != "" {
		p.onPhase(p.curName, time.Since(p.curStart))
		p.curName = ""
	}
	p.cur.End()
	p.cur = nil
}

// finish closes the round root span — recording the failure and any
// quorum exclusions — and hands the trace to the flight recorder.
func (p *phaser) finish(res *Result, err error, flight *obs.FlightRecorder) {
	p.cur.End()
	p.cur = nil
	if p.root == nil {
		return
	}
	if err != nil {
		p.root.SetError(err.Error())
	}
	degraded := res != nil && len(res.Excluded) > 0
	if degraded {
		for _, id := range res.Excluded {
			p.root.Event("straggler_excluded", obs.L("bidder", strconv.Itoa(id)))
		}
	}
	p.root.End()
	if flight == nil {
		return
	}
	rt := &obs.RoundTrace{
		Label:    "round",
		Degraded: degraded,
		Epoch:    p.epoch,
		HasEpoch: p.hasEpoch,
		Duration: p.root.Duration,
		Spans:    p.tracer.TakeTrace(p.root.Ctx.Trace),
	}
	if err != nil {
		rt.Err = err.Error()
	}
	_, _ = flight.Record(rt)
}

// roundObs caches the round-level metric handles for one Run.
type roundObs struct {
	rounds, winners, revenue, voided, violations *obs.Counter
	bytes, digests                               *obs.Counter
	workers                                      *obs.Gauge
}

func newRoundObs(reg *obs.Registry) *roundObs {
	if reg == nil {
		return nil
	}
	return &roundObs{
		rounds:     reg.Counter("lppa_rounds_total"),
		winners:    reg.Counter("lppa_round_winners_total"),
		revenue:    reg.Counter("lppa_round_revenue_total"),
		voided:     reg.Counter("lppa_round_voided_total"),
		violations: reg.Counter("lppa_round_violations_total"),
		bytes:      reg.Counter("lppa_round_submission_bytes_total"),
		digests:    reg.Counter("lppa_mask_digests_total"),
		workers:    reg.Gauge("lppa_round_workers"),
	}
}

// note folds one finished round into the registry.
func (o *roundObs) note(res *Result, workers, bytesTotal, digests int) {
	if o == nil {
		return
	}
	o.rounds.Inc()
	o.winners.Add(uint64(res.Outcome.SatisfiedBidders))
	o.revenue.Add(res.Outcome.Revenue)
	o.voided.Add(uint64(res.Voided))
	o.violations.Add(uint64(res.Violations))
	o.bytes.Add(uint64(bytesTotal))
	o.digests.Add(uint64(digests))
	o.workers.Set(int64(workers))
}

// countDigests tallies how many masked digests one population submitted
// (location families and covers plus per-channel bid families and covers).
// Observed rounds only; O(n·k) map-len reads.
func countDigests(locs []*core.LocationSubmission, subs []*core.BidSubmission) int {
	total := 0
	for _, l := range locs {
		total += l.XFamily.Len() + l.YFamily.Len() + l.XRange.Len() + l.YRange.Len()
	}
	for _, s := range subs {
		for r := range s.Channels {
			cb := &s.Channels[r]
			total += cb.Family.Len() + cb.Range.Len()
		}
	}
	return total
}

// buildSamplers returns one disguise sampler per bidder. Bidders with the
// same policy share a sampler (Sample only reads the precomputed CDF);
// policies with P0 ≥ 1 never disguise and get nil.
func buildSamplers(policies []core.DisguisePolicy, bmax uint64) ([]*core.DisguiseSampler, error) {
	out := make([]*core.DisguiseSampler, len(policies))
	cache := map[core.DisguisePolicy]*core.DisguiseSampler{}
	for i, p := range policies {
		if p.P0 >= 1 {
			continue
		}
		s, ok := cache[p]
		if !ok {
			var err error
			if s, err = core.NewDisguiseSampler(p, bmax); err != nil {
				return nil, fmt.Errorf("round: bidder %d disguise: %w", i, err)
			}
			cache[p] = s
		}
		out[i] = s
	}
	return out, nil
}

// encodeSerial produces every bidder's submissions on the calling
// goroutine, threading the round rng through bidders in index order — the
// legacy RunPrivate randomness shape, kept bit-exact for the deprecated
// wrappers.
func encodeSerial(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	samplers []*core.DisguiseSampler, rng *rand.Rand) ([]*core.LocationSubmission, []*core.BidSubmission, int, error) {
	n := len(points)
	locs := make([]*core.LocationSubmission, n)
	subs := make([]*core.BidSubmission, n)
	bytesTotal := 0
	// Location masking draws no randomness and runs under the ring's shared
	// key, so equal points yield byte-identical immutable submissions —
	// co-located bidders share one. The bid encoders below still consume
	// the rng stream bidder by bidder, so the transcript is unchanged.
	locMemo := make(map[geo.Point]*core.LocationSubmission, n)
	for i := 0; i < n; i++ {
		loc := locMemo[points[i]]
		if loc == nil {
			var err error
			loc, err = core.NewLocationSubmission(params, ring, points[i])
			if err != nil {
				return nil, nil, 0, fmt.Errorf("round: bidder %d location: %w", i, err)
			}
			locMemo[points[i]] = loc
		}
		locs[i] = loc
		enc, err := core.NewBidEncoder(params, ring, samplers[i], rng)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("round: bidder %d encoder: %w", i, err)
		}
		sub, err := enc.Encode(bids[i], rng)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("round: bidder %d bids: %w", i, err)
		}
		subs[i] = sub
		bytesTotal += core.SubmissionBytes(sub) + core.LocationBytes(loc)
	}
	return locs, subs, bytesTotal, nil
}

// tallyCharges folds the TTP's batch verdicts into the outcome: valid
// awards are charged and satisfied, invalid ones voided, errors counted as
// protocol violations.
func tallyCharges(res *Result, results []ttp.ChargeResult) {
	out := res.Outcome
	for i, r := range results {
		switch {
		case r.Err != nil:
			res.Violations++
		case !r.Valid:
			res.Voided++
		default:
			out.Charges[i] = r.Price
			out.Revenue += r.Price
			out.SatisfiedBidders++
		}
	}
}

// Run executes one complete private LPPA round:
//
//  1. The TTP derives its key material from the caller's ring.
//  2. Every bidder builds a masked location submission and an advanced
//     masked bid submission under its disguise policy.
//  3. The auctioneer builds the conflict graph and allocates channels over
//     masked data (Algorithm 3).
//  4. The TTP adjudicates the winners' charges; voided awards are dropped.
//
// Options select the execution and charging shape: WithWorkers for the
// deterministic parallel pipeline, WithPolicies for per-bidder disguise,
// WithInteractiveCharging or WithSecondPrice (mutually exclusive) for the
// charging design, WithObserver for metrics, WithoutInterning for the
// representation ablation. With no options Run is exactly the legacy
// serial round (bit-identical to the deprecated RunPrivate for the same
// seed).
func Run(params core.Params, ring *mask.KeyRing, in Input, opts ...Option) (*Result, error) {
	var cfg runConfig
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.interactive && cfg.secondPrice {
		return nil, fmt.Errorf("round: interactive charging and second-price charging are mutually exclusive")
	}
	if cfg.straggler > 0 && !cfg.seeded {
		// The serial pipeline threads one rng through all bidders, so a
		// deadline could leave a background encoder racing the allocator
		// for it; per-bidder seeding makes abandonment safe.
		return nil, fmt.Errorf("round: WithStragglerTimeout requires the seeded pipeline (add WithWorkers)")
	}
	if cfg.sampler != nil && cfg.tracer != nil {
		return nil, fmt.Errorf("round: WithTrace and WithTraceSampler are mutually exclusive")
	}
	if cfg.flight != nil && cfg.tracer == nil && cfg.sampler == nil {
		return nil, fmt.Errorf("round: WithFlightRecorder requires WithTrace or WithTraceSampler")
	}
	var sampleIdx uint64
	if cfg.sampler != nil {
		// The sampler consumes one round index whether or not it samples;
		// an unsampled round proceeds on the untraced (nil-tracer) path.
		if tr, idx, ok := cfg.sampler.Next(); ok {
			cfg.tracer, sampleIdx = tr, idx
		}
	}
	ph := &phaser{
		timer: cfg.reg.PhaseTimer("lppa_round_phase_seconds", nil), tracer: cfg.tracer,
		onPhase: cfg.onPhase, epoch: cfg.epoch, hasEpoch: cfg.hasEpoch,
	}
	if cfg.tracer != nil {
		ph.root = cfg.tracer.StartTrace("round",
			obs.L("bidders", strconv.Itoa(len(in.Points))),
			obs.L("channels", strconv.Itoa(params.Channels)))
		if cfg.hasEpoch {
			ph.root.Annotate("epoch", strconv.Itoa(cfg.epoch))
		}
		if cfg.sampler != nil {
			ph.root.Annotate("sample_index", strconv.FormatUint(sampleIdx, 10))
		}
	}
	res, err := run(params, ring, in, &cfg, ph)
	if res != nil && ph.root != nil {
		res.Trace = ph.root.Ctx.Trace
	}
	ph.finish(res, err, cfg.flight)
	return res, err
}

// run is the Run body: everything between option validation and trace
// finalization, with phase boundaries reported through ph.
func run(params core.Params, ring *mask.KeyRing, in Input, cfg *runConfig, ph *phaser) (*Result, error) {
	n := len(in.Points)
	if n == 0 {
		return nil, fmt.Errorf("round: no bidders")
	}
	if len(in.Bids) != n {
		return nil, fmt.Errorf("round: %d points, %d bid vectors", n, len(in.Bids))
	}
	if in.Rng == nil {
		return nil, fmt.Errorf("round: nil rng")
	}
	policies := cfg.policies
	if policies == nil {
		policies = make([]core.DisguisePolicy, n)
		for i := range policies {
			policies[i] = in.Policy
		}
	} else if len(policies) != n {
		return nil, fmt.Errorf("round: %d points, %d policies", n, len(policies))
	}

	ro := newRoundObs(cfg.reg)
	rng := in.Rng

	trusted, err := ttp.FromRing(params, ring, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}
	samplers, err := buildSamplers(policies, params.BMax)
	if err != nil {
		return nil, err
	}

	ph.phase("encode")
	var (
		locs       []*core.LocationSubmission
		subs       []*core.BidSubmission
		bytesTotal int
		excluded   []int
		keep       []int
	)
	workers := 1
	tolerant := cfg.quorum > 0 || cfg.straggler > 0
	switch {
	case tolerant:
		// Quorum mode: per-bidder failures and stragglers are excluded
		// instead of aborting the round, down to the quorum floor.
		effQuorum := cfg.quorum
		if effQuorum == 0 {
			effQuorum = n
		}
		if effQuorum > n {
			ph.stop()
			return nil, fmt.Errorf("round: quorum %d exceeds population %d", effQuorum, n)
		}
		var (
			bytesPer []int
			errs     []error
		)
		if cfg.seeded {
			workers = mask.Workers(cfg.workers, n)
		}
		locs, subs, bytesPer, errs = encodeTolerant(params, ring, in.Points, in.Bids,
			samplers, rng, workers, cfg.seeded, cfg.straggler)
		for i := 0; i < n; i++ {
			if errs[i] == nil && locs[i] != nil && subs[i] != nil {
				keep = append(keep, i)
				bytesTotal += bytesPer[i]
			} else {
				excluded = append(excluded, i)
			}
		}
		if len(keep) < effQuorum {
			ph.stop()
			return nil, fmt.Errorf("%w: %d of %d usable submissions, need %d",
				ErrQuorumNotReached, len(keep), n, effQuorum)
		}
		if len(excluded) > 0 {
			clocs := make([]*core.LocationSubmission, len(keep))
			csubs := make([]*core.BidSubmission, len(keep))
			for ci, i := range keep {
				clocs[ci], csubs[ci] = locs[i], subs[i]
			}
			locs, subs = clocs, csubs
		}
	case cfg.seeded:
		workers = mask.Workers(cfg.workers, n)
		locs, subs, bytesTotal, err = encodeSubmissions(params, ring, in.Points, in.Bids, samplers, rng, workers)
	default:
		locs, subs, bytesTotal, err = encodeSerial(params, ring, in.Points, in.Bids, samplers, rng)
	}
	if err != nil {
		ph.stop()
		return nil, err
	}

	auc, err := cfg.state.auctioneer(params, locs, subs)
	if err != nil {
		ph.stop()
		return nil, err
	}
	auc.SetWorkers(workers)
	if cfg.noIntern {
		auc.DisableInterning()
	}
	if cfg.indexed {
		auc.EnableIndexedCandidates()
	}
	auc.SetObserver(cfg.reg)

	if cfg.shards > 0 {
		// Tile-sharded execution (shard.go): the planner groups the
		// population — the kept population, under a compacted quorum round —
		// by masked coarse-tile digest; the auctioneer then builds graphs
		// and memos per tile. The plan is rng-free and bit-identity is
		// pinned by the shard equivalence grid.
		ph.phase("plan")
		pts := in.Points
		if len(excluded) > 0 {
			pts = make([]geo.Point, len(keep))
			for ci, i := range keep {
				pts[ci] = in.Points[i]
			}
		}
		plan, err := planShardsWith(cfg.state, params, ring, pts, cfg.shards)
		if err != nil {
			ph.stop()
			return nil, err
		}
		if cfg.tracer != nil {
			plan.OnShard = shardSpans(ph)
		}
		if err := auc.SetShardPlan(plan); err != nil {
			ph.stop()
			return nil, err
		}
	}

	// The graph build is rng-free, so forcing it here (instead of letting
	// the allocator build it lazily) changes nothing except giving the
	// phase its own wall-time series.
	ph.phase("conflict_graph")
	if cfg.indexed {
		// Candidate-generation setup (interning + inverted-index posting)
		// gets its own child span under conflict_graph, so traces separate
		// index cost from oracle-confirm cost. Metrics-wise it stays inside
		// the conflict_graph phase either way.
		var sp *obs.Span
		if ph.tracer != nil {
			sp = ph.tracer.StartSpan("candidate_generation", ph.cur.Context())
		}
		auc.PrepareCandidates()
		sp.End()
	}
	auc.ConflictGraph()

	ph.phase("allocate")
	res := &Result{Auctioneer: auc, SubmissionBytes: bytesTotal}
	switch {
	case cfg.secondPrice:
		awards, err := auc.AllocateAwards(rng)
		if err != nil {
			ph.stop()
			return nil, err
		}
		out := &auction.Outcome{
			Assignments: make([]auction.Assignment, len(awards)),
			Charges:     make([]uint64, len(awards)),
			Bidders:     n,
		}
		for i, aw := range awards {
			out.Assignments[i] = aw.Assignment
		}
		res.Outcome = out
		ph.phase("charge")
		tallyCharges(res, trusted.ProcessBatch(auc.ChargeRequestsSecondPrice(awards)))
	case cfg.interactive:
		// The validity oracle interleaves TTP round trips with the
		// allocation sweep, so their cost lands in the allocate phase —
		// that is the interactive design's point.
		validity := func(i, r int) bool { return trusted.ValidateAward(auc.SealedBid(i, r)) }
		assignments, voided, err := auc.AllocateWithValidity(validity, rng)
		if err != nil {
			ph.stop()
			return nil, err
		}
		res.Outcome = &auction.Outcome{
			Assignments: assignments,
			Charges:     make([]uint64, len(assignments)),
			Bidders:     n,
		}
		res.Voided = len(voided)
		ph.phase("charge")
		tallyCharges(res, trusted.ProcessBatch(auc.ChargeRequests(assignments)))
	default:
		// Batch charging (the paper's section V.C.2): the allocation
		// completes blindly, then the TTP adjudicates all winners at once.
		// A zero that won is voided after the fact — the award already
		// consumed the bidder's row and the channel slot, which is exactly
		// the performance cost Fig. 5(e)(f) charts.
		assignments, err := auc.Allocate(rng)
		if err != nil {
			ph.stop()
			return nil, err
		}
		res.Outcome = &auction.Outcome{
			Assignments: assignments,
			Charges:     make([]uint64, len(assignments)),
			Bidders:     n,
		}
		ph.phase("charge")
		tallyCharges(res, trusted.ProcessBatch(auc.ChargeRequests(assignments)))
	}
	// A compacted quorum round allocated over the surviving population;
	// translate assignment indices back to original bidder ids so callers
	// see one stable numbering. Outcome.Bidders already counts the full
	// population, so excluded bidders depress satisfaction as they should.
	if len(excluded) > 0 {
		for i := range res.Outcome.Assignments {
			res.Outcome.Assignments[i].Bidder = keep[res.Outcome.Assignments[i].Bidder]
		}
		res.Excluded = excluded
	}
	ph.stop()
	if ro != nil {
		ro.note(res, workers, bytesTotal, countDigests(locs, subs))
	}
	return res, nil
}
