package round

import (
	"testing"

	"lppa/internal/core"
	"lppa/internal/ttp"
)

// fakeSettle adjudicates every request as valid with price = bidder id,
// and counts invocations (TTP windows).
type fakeSettle struct {
	calls int
}

func (f *fakeSettle) settle(reqs []core.ChargeRequest) []ttp.ChargeResult {
	f.calls++
	out := make([]ttp.ChargeResult, len(reqs))
	for i, r := range reqs {
		out[i] = ttp.ChargeResult{Bidder: r.Bidder, Channel: r.Channel, Valid: true, Price: uint64(r.Bidder)}
	}
	return out
}

func req(bidder int) core.ChargeRequest { return core.ChargeRequest{Bidder: bidder} }

func TestNewBatcherValidation(t *testing.T) {
	f := &fakeSettle{}
	if _, err := NewBatcher(0, 1, f.settle); err == nil {
		t.Error("maxRequests=0 accepted")
	}
	if _, err := NewBatcher(1, 0, f.settle); err == nil {
		t.Error("maxRounds=0 accepted")
	}
	if _, err := NewBatcher(1, 1, nil); err == nil {
		t.Error("nil settle accepted")
	}
}

func TestBatcherSettlesOnRoundBound(t *testing.T) {
	f := &fakeSettle{}
	b, err := NewBatcher(1000, 3, f.settle)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Add(1, []core.ChargeRequest{req(1)}); got != nil {
		t.Fatal("settled too early")
	}
	if got := b.Add(2, []core.ChargeRequest{req(2)}); got != nil {
		t.Fatal("settled too early")
	}
	settled := b.Add(3, []core.ChargeRequest{req(3), req(4)})
	if len(settled) != 3 {
		t.Fatalf("settlements = %d, want 3 rounds", len(settled))
	}
	if f.calls != 1 {
		t.Errorf("TTP windows = %d, want 1", f.calls)
	}
	if settled[0].RoundID != 1 || len(settled[0].Results) != 1 {
		t.Errorf("settlement 0 = %+v", settled[0])
	}
	if settled[2].RoundID != 3 || len(settled[2].Results) != 2 {
		t.Errorf("settlement 2 = %+v", settled[2])
	}
	if b.Pending() != 0 {
		t.Errorf("pending = %d after flush", b.Pending())
	}
}

func TestBatcherSettlesOnRequestBound(t *testing.T) {
	f := &fakeSettle{}
	b, err := NewBatcher(5, 100, f.settle)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Add(1, []core.ChargeRequest{req(1), req(2)}); got != nil {
		t.Fatal("settled too early")
	}
	settled := b.Add(2, []core.ChargeRequest{req(3), req(4), req(5)})
	if len(settled) != 2 {
		t.Fatalf("settlements = %d", len(settled))
	}
	stats := b.Stats()
	if stats.Windows != 1 || stats.Requests != 5 || stats.Rounds != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestBatcherResultsRoutedToRightRound(t *testing.T) {
	f := &fakeSettle{}
	b, err := NewBatcher(1000, 2, f.settle)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(10, []core.ChargeRequest{req(7)})
	settled := b.Add(11, []core.ChargeRequest{req(8), req(9)})
	if settled[0].Results[0].Bidder != 7 {
		t.Errorf("round 10 got bidder %d's result", settled[0].Results[0].Bidder)
	}
	if settled[1].Results[1].Bidder != 9 {
		t.Errorf("round 11 got bidder %d's result", settled[1].Results[1].Bidder)
	}
}

func TestBatcherFlushEmptyUsesNoWindow(t *testing.T) {
	f := &fakeSettle{}
	b, err := NewBatcher(10, 10, f.settle)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Flush(); got != nil {
		t.Error("empty flush returned settlements")
	}
	if f.calls != 0 {
		t.Error("empty flush used a TTP window")
	}
}

func TestBatcherReducesWindows(t *testing.T) {
	// The paper's point: batching R rounds into one window divides TTP
	// online time by R.
	perRound := &fakeSettle{}
	batched := &fakeSettle{}
	immediate, err := NewBatcher(1, 1, perRound.settle) // settles every round
	if err != nil {
		t.Fatal(err)
	}
	fiveAtATime, err := NewBatcher(1000, 5, batched.settle)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		immediate.Add(round, []core.ChargeRequest{req(round)})
		fiveAtATime.Add(round, []core.ChargeRequest{req(round)})
	}
	fiveAtATime.Flush()
	if perRound.calls != 20 {
		t.Errorf("immediate windows = %d, want 20", perRound.calls)
	}
	if batched.calls != 4 {
		t.Errorf("batched windows = %d, want 4", batched.calls)
	}
	if got := fiveAtATime.Stats().MaxQueuedRounds; got != 5 {
		t.Errorf("max queued rounds = %d, want 5", got)
	}
}

func TestBatcherStatsAccumulate(t *testing.T) {
	f := &fakeSettle{}
	b, err := NewBatcher(2, 100, f.settle)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(1, []core.ChargeRequest{req(1), req(2)}) // settles (bound 2)
	b.Add(2, []core.ChargeRequest{req(3), req(4)}) // settles
	stats := b.Stats()
	if stats.Windows != 2 || stats.Requests != 4 || stats.Rounds != 2 {
		t.Errorf("stats = %+v", stats)
	}
}
