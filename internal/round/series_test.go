package round

import (
	"math/rand"
	"testing"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

func seriesFixture(t *testing.T) (core.Params, *mask.KeyRing, []geo.Point, [][]uint64) {
	t.Helper()
	p := core.Params{Channels: 4, Lambda: 2, MaxX: 49, MaxY: 49, BMax: 100}
	ring, err := mask.DeriveKeyRing([]byte("series"), p.Channels, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 8
	points := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(50)), Y: uint64(rng.Intn(50))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			if rng.Intn(3) > 0 {
				bids[i][r] = uint64(rng.Intn(100)) + 1
			}
		}
	}
	return p, ring, points, bids
}

func TestSeriesBatchedSettlement(t *testing.T) {
	p, ring, points, bids := seriesFixture(t)
	s, err := NewSeries(p, ring, 1<<20, 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	policy := core.DisguisePolicy{P0: 0.8, Decay: 0.9}

	// Rounds 0 and 1 queue; round 2 triggers the window and settles all.
	for i := 0; i < 2; i++ {
		settled, err := s.Run(ring, points, bids, policy, rng)
		if err != nil {
			t.Fatal(err)
		}
		if settled != nil {
			t.Fatalf("round %d settled early", i)
		}
	}
	settled, err := s.Run(ring, points, bids, policy, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(settled) != 3 {
		t.Fatalf("settled %d rounds, want 3", len(settled))
	}
	ids := map[int]bool{}
	for _, sr := range settled {
		ids[sr.RoundID] = true
		if sr.Outcome.Revenue == 0 && sr.Voided == 0 {
			t.Errorf("round %d: nothing adjudicated", sr.RoundID)
		}
	}
	if !ids[0] || !ids[1] || !ids[2] {
		t.Errorf("settled ids = %v", ids)
	}
	if s.Stats().Windows != 1 {
		t.Errorf("TTP windows = %d, want 1", s.Stats().Windows)
	}
}

func TestSeriesFlushSettlesRemainder(t *testing.T) {
	p, ring, points, bids := seriesFixture(t)
	s, err := NewSeries(p, ring, 1<<20, 100, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4; i++ {
		if settled, err := s.Run(ring, points, bids, core.DisguisePolicy{P0: 1}, rng); err != nil {
			t.Fatal(err)
		} else if settled != nil {
			t.Fatal("settled before flush")
		}
	}
	settled := s.Flush()
	if len(settled) != 4 {
		t.Fatalf("flush settled %d rounds", len(settled))
	}
	if s.Stats().Windows != 1 || s.Stats().Rounds != 4 {
		t.Errorf("stats = %+v", s.Stats())
	}
	// First-price charges: valid charges equal the original bids.
	for _, sr := range settled {
		for i, a := range sr.Outcome.Assignments {
			if c := sr.Outcome.Charges[i]; c != 0 && c != bids[a.Bidder][a.Channel] {
				t.Errorf("round %d: charge %d != bid %d", sr.RoundID, c, bids[a.Bidder][a.Channel])
			}
		}
	}
}

func TestSeriesValidation(t *testing.T) {
	p, ring, _, _ := seriesFixture(t)
	if _, err := NewSeries(p, ring, 0, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad batch bounds accepted")
	}
	s, err := NewSeries(p, ring, 10, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ring, nil, nil, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty round accepted")
	}
}
