package round

import (
	"math/rand"
	"testing"

	"lppa/internal/auction"
	"lppa/internal/conflict"
	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

func params() core.Params {
	return core.Params{Channels: 6, Lambda: 3, MaxX: 99, MaxY: 99, BMax: 100}
}

func ring(t *testing.T, p core.Params) *mask.KeyRing {
	t.Helper()
	r, err := mask.DeriveKeyRing([]byte("round-test"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// population builds n bidders with ~2/3 positive bids per channel.
func population(p core.Params, n int, seed int64) ([]geo.Point, [][]uint64) {
	rng := rand.New(rand.NewSource(seed))
	points := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(int(p.MaxX + 1))), Y: uint64(rng.Intn(int(p.MaxY + 1)))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			if rng.Intn(3) > 0 {
				bids[i][r] = uint64(rng.Intn(int(p.BMax))) + 1
			}
		}
	}
	return points, bids
}

func TestRunPrivateHonestRound(t *testing.T) {
	p := params()
	points, bids := population(p, 30, 1)
	res, err := RunPrivate(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d, want 0 for honest bidders", res.Violations)
	}
	if res.Outcome.Revenue == 0 {
		t.Error("zero revenue for a populated round")
	}
	if res.SubmissionBytes <= 0 {
		t.Error("transcript bytes not measured")
	}
	// Awards must respect the plaintext interference relation.
	plain := conflict.BuildPlain(points, p.Lambda)
	if err := auction.VerifyInterferenceFree(res.Outcome.Assignments, plain); err != nil {
		t.Error(err)
	}
	if err := auction.VerifyOneChannelPerBidder(res.Outcome.Assignments); err != nil {
		t.Error(err)
	}
}

func TestRunPrivateChargesAreTrueBids(t *testing.T) {
	p := params()
	points, bids := population(p, 20, 3)
	res, err := RunPrivate(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	charged := 0
	for i, a := range res.Outcome.Assignments {
		c := res.Outcome.Charges[i]
		if c == 0 {
			continue // voided (true zero won an all-zero column)
		}
		charged++
		if c != bids[a.Bidder][a.Channel] {
			t.Fatalf("assignment %d: charge %d != first price %d", i, c, bids[a.Bidder][a.Channel])
		}
	}
	if charged == 0 {
		t.Error("no valid charges at all")
	}
}

func TestRunPrivateRevenueComparableToPlainBaseline(t *testing.T) {
	// With no disguising the private auction should earn revenue in the
	// same ballpark as the plaintext baseline (both run Algorithm 3; RNG
	// draws differ, and all-zero columns waste a row in the private run).
	p := params()
	var priv, plain float64
	for seed := int64(0); seed < 5; seed++ {
		points, bids := population(p, 40, 100+seed)
		res, err := RunPrivate(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(200+seed)))
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunPlainBaseline(points, bids, p.Lambda, rand.New(rand.NewSource(300+seed)))
		if err != nil {
			t.Fatal(err)
		}
		priv += float64(res.Outcome.Revenue)
		plain += float64(out.Revenue)
	}
	ratio := priv / plain
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("undisguised private/plain revenue ratio = %.3f, want ≈1", ratio)
	}
}

func TestRunPrivateDisguiseDegradesPerformance(t *testing.T) {
	// Full disguising (p0 = 0) must void awards and cost revenue relative
	// to no disguising — the Fig. 5(e)(f) effect. The loss mechanism is a
	// void award deleting the winner's conflict neighbors' bids on that
	// channel, so the population must be dense enough to have conflicts.
	p := core.Params{Channels: 6, Lambda: 5, MaxX: 29, MaxY: 29, BMax: 100}
	var revHonest, revFull float64
	var voidedFull int
	for seed := int64(0); seed < 5; seed++ {
		points, bids := population(p, 40, 500+seed)
		honest, err := RunPrivate(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(600+seed)))
		if err != nil {
			t.Fatal(err)
		}
		full, err := RunPrivate(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 0, Decay: 1}, rand.New(rand.NewSource(700+seed)))
		if err != nil {
			t.Fatal(err)
		}
		revHonest += float64(honest.Outcome.Revenue)
		revFull += float64(full.Outcome.Revenue)
		voidedFull += full.Voided
	}
	if voidedFull == 0 {
		t.Error("full disguising voided no awards across 5 rounds")
	}
	if revFull >= revHonest {
		t.Errorf("full-disguise revenue %.0f not below honest revenue %.0f", revFull, revHonest)
	}
}

func TestRunPrivateWithPoliciesPerBidder(t *testing.T) {
	p := params()
	points, bids := population(p, 10, 7)
	policies := make([]core.DisguisePolicy, 10)
	for i := range policies {
		if i%2 == 0 {
			policies[i] = core.DisguisePolicy{P0: 1}
		} else {
			policies[i] = core.DisguisePolicy{P0: 0.2, Decay: 0.9}
		}
	}
	res, err := RunPrivateWithPolicies(p, ring(t, p), points, bids, policies, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
}

func TestRunPrivateValidation(t *testing.T) {
	p := params()
	if _, err := RunPrivate(p, ring(t, p), nil, nil, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty round accepted")
	}
	points, bids := population(p, 3, 9)
	if _, err := RunPrivate(p, ring(t, p), points, bids[:2], core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("mismatched bids accepted")
	}
	if _, err := RunPrivateWithPolicies(p, ring(t, p), points, bids, make([]core.DisguisePolicy, 2), rand.New(rand.NewSource(1))); err == nil {
		t.Error("mismatched policies accepted")
	}
}

func TestRunPlainBaseline(t *testing.T) {
	p := params()
	points, bids := population(p, 25, 10)
	out, err := RunPlainBaseline(points, bids, p.Lambda, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Revenue == 0 || out.Satisfaction() <= 0 {
		t.Errorf("outcome = revenue %d satisfaction %f", out.Revenue, out.Satisfaction())
	}
	g := conflict.BuildPlain(points, p.Lambda)
	if err := auction.VerifyInterferenceFree(out.Assignments, g); err != nil {
		t.Error(err)
	}
}

func TestTranscriptFeedsAttacker(t *testing.T) {
	// The auctioneer's per-channel rankings must be permutations usable by
	// the t-largest attacker.
	p := params()
	points, bids := population(p, 15, 12)
	res, err := RunPrivate(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 0.5, Decay: 0.9}, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	ranks := res.Auctioneer.Rankings()
	if len(ranks) != p.Channels {
		t.Fatalf("rankings for %d channels", len(ranks))
	}
	for r, order := range ranks {
		if len(order) != 15 {
			t.Fatalf("channel %d ranking has %d entries", r, len(order))
		}
	}
}

func TestRunPrivateInteractiveValidation(t *testing.T) {
	p := params()
	if _, err := RunPrivateInteractive(p, ring(t, p), nil, nil, core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty round accepted")
	}
	points, bids := population(p, 3, 30)
	if _, err := RunPrivateInteractive(p, ring(t, p), points, bids[:2], core.DisguisePolicy{P0: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("mismatched bids accepted")
	}
	if _, err := RunPrivateInteractive(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 0.5, Decay: -1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestRunPrivateInteractiveVoidsWithoutExpelling(t *testing.T) {
	// Under the interactive design, a fully-disguising population still
	// ends with every bidder served or exhausted; disguised zeros only
	// burn channels.
	p := core.Params{Channels: 8, Lambda: 2, MaxX: 29, MaxY: 29, BMax: 100}
	points, bids := population(p, 15, 31)
	res, err := RunPrivateInteractive(p, ring(t, p), points, bids, core.DisguisePolicy{P0: 0, Decay: 1}, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
	if res.Voided == 0 {
		t.Error("full disguising voided nothing under interactive TTP")
	}
	// All surviving charges are genuine first prices.
	for i, a := range res.Outcome.Assignments {
		if c := res.Outcome.Charges[i]; c != 0 && c != bids[a.Bidder][a.Channel] {
			t.Errorf("charge %d != bid %d", c, bids[a.Bidder][a.Channel])
		}
	}
}

func TestRunPrivateBadPolicyRejected(t *testing.T) {
	p := params()
	points, bids := population(p, 3, 33)
	if _, err := RunPrivate(p, ring(t, p), points, bids, core.DisguisePolicy{P0: -2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid policy accepted")
	}
}
