package round

import (
	"fmt"
	"math/rand"

	"lppa/internal/auction"
	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/ttp"
)

// Series runs several consecutive private auctions against one TTP with
// batched charging (section V.C.2 end to end): each round allocates
// immediately, but winners' charges settle only when the batcher opens a
// TTP window — so results finalize in batches, trading settlement latency
// for TTP online time.
type Series struct {
	params  core.Params
	trusted *ttp.TTP
	batcher *Batcher

	pending map[int]*pendingRound
	nextID  int
	results []SeriesRound
}

type pendingRound struct {
	assignments []auction.Assignment
	bidders     int
}

// SeriesRound is one settled auction.
type SeriesRound struct {
	RoundID int
	Outcome *auction.Outcome
	Voided  int
}

// NewSeries builds a multi-auction runner. maxRequests/maxRounds bound the
// TTP batching window (see Batcher).
func NewSeries(params core.Params, ring *mask.KeyRing, maxRequests, maxRounds int, rng *rand.Rand) (*Series, error) {
	trusted, err := ttp.FromRing(params, ring, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}
	s := &Series{
		params:  params,
		trusted: trusted,
		pending: make(map[int]*pendingRound),
	}
	s.batcher, err = NewBatcher(maxRequests, maxRounds, trusted.ProcessBatch)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Run executes one auction round: allocation completes immediately, the
// charge requests join the batch queue, and any rounds whose settlement
// the queue released are returned (possibly none, possibly several,
// possibly including this round).
func (s *Series) Run(ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand) ([]SeriesRound, error) {
	n := len(points)
	if n == 0 || len(bids) != n {
		return nil, fmt.Errorf("round: series round needs matching points and bids")
	}
	var sampler *core.DisguiseSampler
	var err error
	if policy.P0 < 1 {
		if sampler, err = core.NewDisguiseSampler(policy, s.params.BMax); err != nil {
			return nil, err
		}
	}
	locs := make([]*core.LocationSubmission, n)
	subs := make([]*core.BidSubmission, n)
	for i := 0; i < n; i++ {
		if locs[i], err = core.NewLocationSubmission(s.params, ring, points[i]); err != nil {
			return nil, err
		}
		enc, err := core.NewBidEncoder(s.params, ring, sampler, rng)
		if err != nil {
			return nil, err
		}
		if subs[i], err = enc.Encode(bids[i], rng); err != nil {
			return nil, err
		}
	}
	auc, err := core.NewAuctioneer(s.params, locs, subs)
	if err != nil {
		return nil, err
	}
	assignments, err := auc.Allocate(rng)
	if err != nil {
		return nil, err
	}
	id := s.nextID
	s.nextID++
	s.pending[id] = &pendingRound{assignments: assignments, bidders: n}
	return s.settle(s.batcher.Add(id, auc.ChargeRequests(assignments))), nil
}

// Flush settles every queued round in one final TTP window.
func (s *Series) Flush() []SeriesRound {
	return s.settle(s.batcher.Flush())
}

// Stats exposes the batching counters.
func (s *Series) Stats() BatchStats { return s.batcher.Stats() }

func (s *Series) settle(settlements []Settlement) []SeriesRound {
	var out []SeriesRound
	for _, st := range settlements {
		p, ok := s.pending[st.RoundID]
		if !ok {
			continue
		}
		delete(s.pending, st.RoundID)
		outcome := &auction.Outcome{
			Assignments: p.assignments,
			Charges:     make([]uint64, len(p.assignments)),
			Bidders:     p.bidders,
		}
		sr := SeriesRound{RoundID: st.RoundID, Outcome: outcome}
		for i, r := range st.Results {
			if i >= len(outcome.Charges) {
				break
			}
			if r.Err != nil || !r.Valid {
				sr.Voided++
				continue
			}
			outcome.Charges[i] = r.Price
			outcome.Revenue += r.Price
			outcome.SatisfiedBidders++
		}
		out = append(out, sr)
		s.results = append(s.results, sr)
	}
	return out
}
