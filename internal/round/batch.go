package round

import (
	"fmt"

	"lppa/internal/core"
	"lppa/internal/ttp"
)

// Batcher implements section V.C.2's TTP workload reduction: instead of
// contacting the periodically-available TTP after every auction, the
// auctioneer queues the charge requests of several auctions and settles
// them in one TTP online window. The window opens when either the queued
// request count or the queued round count reaches its bound — the paper's
// "determined by both the real-time requirement of the system and the
// longest online time of TTP".
type Batcher struct {
	// MaxRequests bounds one window's workload (the TTP's online
	// capacity).
	MaxRequests int
	// MaxRounds bounds settlement latency (the system's real-time
	// requirement).
	MaxRounds int

	settle  func([]core.ChargeRequest) []ttp.ChargeResult
	pending []queuedRound
	stats   BatchStats
}

type queuedRound struct {
	id   int
	reqs []core.ChargeRequest
}

// BatchStats reports the scheduler's behaviour.
type BatchStats struct {
	// Windows counts TTP online windows used.
	Windows int
	// Rounds and Requests count the settled workload.
	Rounds   int
	Requests int
	// MaxQueuedRounds is the worst settlement latency in rounds.
	MaxQueuedRounds int
}

// NewBatcher builds a scheduler around the TTP's settlement function
// (ProcessBatch, possibly remoted via transport.SubmitCharges).
func NewBatcher(maxRequests, maxRounds int, settle func([]core.ChargeRequest) []ttp.ChargeResult) (*Batcher, error) {
	if maxRequests < 1 || maxRounds < 1 {
		return nil, fmt.Errorf("round: batcher bounds must be ≥ 1 (got %d, %d)", maxRequests, maxRounds)
	}
	if settle == nil {
		return nil, fmt.Errorf("round: batcher needs a settlement function")
	}
	return &Batcher{MaxRequests: maxRequests, MaxRounds: maxRounds, settle: settle}, nil
}

// Settlement couples a round id with its adjudicated charges.
type Settlement struct {
	RoundID int
	Results []ttp.ChargeResult
}

// Add queues one auction's charge requests. When a bound is reached the
// queue settles immediately and the settlements are returned; otherwise it
// returns nil (charges remain pending until a later Add or Flush).
func (b *Batcher) Add(roundID int, reqs []core.ChargeRequest) []Settlement {
	b.pending = append(b.pending, queuedRound{id: roundID, reqs: reqs})
	if len(b.pending) > b.stats.MaxQueuedRounds {
		b.stats.MaxQueuedRounds = len(b.pending)
	}
	if b.pendingRequests() >= b.MaxRequests || len(b.pending) >= b.MaxRounds {
		return b.Flush()
	}
	return nil
}

func (b *Batcher) pendingRequests() int {
	total := 0
	for _, q := range b.pending {
		total += len(q.reqs)
	}
	return total
}

// Pending reports the queued round count.
func (b *Batcher) Pending() int { return len(b.pending) }

// Flush settles everything queued in one TTP window. Flushing an empty
// queue uses no window.
func (b *Batcher) Flush() []Settlement {
	if len(b.pending) == 0 {
		return nil
	}
	var all []core.ChargeRequest
	for _, q := range b.pending {
		all = append(all, q.reqs...)
	}
	results := b.settle(all)
	b.stats.Windows++
	b.stats.Requests += len(all)
	b.stats.Rounds += len(b.pending)

	out := make([]Settlement, 0, len(b.pending))
	off := 0
	for _, q := range b.pending {
		n := len(q.reqs)
		if off+n > len(results) {
			n = len(results) - off // defensive: malformed settle output
			if n < 0 {
				n = 0
			}
		}
		out = append(out, Settlement{RoundID: q.id, Results: results[off : off+n]})
		off += n
	}
	b.pending = nil
	return out
}

// Stats returns the scheduler counters.
func (b *Batcher) Stats() BatchStats { return b.stats }
