package round

import (
	"fmt"
	"math/rand"
	"sync"

	"lppa/internal/auction"
	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/ttp"
)

// Options tunes how a private round executes without touching protocol
// semantics.
type Options struct {
	// Workers bounds the goroutines used for submission encoding and
	// conflict-graph construction. 0 means one worker per available CPU
	// (runtime.GOMAXPROCS); 1 pins everything to the calling goroutine.
	// For a fixed rng seed the round result is identical for every value:
	// see the determinism note on RunPrivateOpts.
	Workers int
	// DisableInterning makes the auctioneer evaluate masked set operations
	// on the map-based mask.Set representation instead of interned ID
	// slices (DESIGN.md §5b). Ablation/testing knob: for a fixed seed the
	// round result is identical either way.
	DisableInterning bool
}

// RunPrivateOpts executes the full LPPA protocol like RunPrivate, but with
// deterministic parallel submission encoding and conflict-graph
// construction.
//
// Determinism: the round rng is consumed serially up front — one draw for
// the TTP, then one encoding seed per bidder in index order. Each bidder's
// location and bid submissions are produced from its own seed, so the
// worker pool can encode bidders in any schedule without perturbing any
// byte of any submission; the conflict-graph build is bit-identical in
// parallel by construction; and the seeded allocation order (Algorithm 3's
// channel shuffles and tie breaks) runs strictly serially on the round rng
// afterwards, whose state at that point depends only on n. Consequence:
// results are identical for every Workers value, but differ from
// RunPrivate for the same seed, because RunPrivate threads one rng through
// all bidders sequentially. Pick one entry point per experiment.
func RunPrivateOpts(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand, opts Options) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("round: no bidders")
	}
	if len(bids) != n {
		return nil, fmt.Errorf("round: %d points, %d bid vectors", n, len(bids))
	}

	trusted, err := ttp.FromRing(params, ring, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}
	var sampler *core.DisguiseSampler
	if policy.P0 < 1 {
		if sampler, err = core.NewDisguiseSampler(policy, params.BMax); err != nil {
			return nil, err
		}
	}

	workers := mask.Workers(opts.Workers, n)
	locs, subs, bytesTotal, err := encodeSubmissions(params, ring, points, bids, sampler, rng, workers)
	if err != nil {
		return nil, err
	}

	auc, err := core.NewAuctioneer(params, locs, subs)
	if err != nil {
		return nil, err
	}
	auc.SetWorkers(workers)
	if opts.DisableInterning {
		auc.DisableInterning()
	}
	assignments, err := auc.Allocate(rng)
	if err != nil {
		return nil, err
	}
	results := trusted.ProcessBatch(auc.ChargeRequests(assignments))

	out := &auction.Outcome{
		Assignments: assignments,
		Charges:     make([]uint64, len(assignments)),
		Bidders:     n,
	}
	res := &Result{Outcome: out, Auctioneer: auc, SubmissionBytes: bytesTotal}
	for i, r := range results {
		switch {
		case r.Err != nil:
			res.Violations++
		case !r.Valid:
			res.Voided++
		default:
			out.Charges[i] = r.Price
			out.Revenue += r.Price
			out.SatisfiedBidders++
		}
	}
	return res, nil
}

// encodeSubmissions produces every bidder's location and bid submission.
// Encoding seeds are drawn from rng serially in bidder order before any
// goroutine starts; bidder i's submissions then depend only on seeds[i],
// so the striped worker pool yields byte-identical results for every
// worker count. The shared sampler is safe: DisguiseSampler.Sample only
// reads the precomputed CDF.
func encodeSubmissions(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	sampler *core.DisguiseSampler, rng *rand.Rand, workers int) ([]*core.LocationSubmission, []*core.BidSubmission, int, error) {
	n := len(points)
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	// Location masking draws no randomness; the parallel batch builder is
	// output-identical to per-bidder calls.
	locs, err := core.NewLocationSubmissions(params, ring, points, workers)
	if err != nil {
		return nil, nil, 0, err
	}

	subs := make([]*core.BidSubmission, n)
	bytesPer := make([]int, n)
	errs := make([]error, n)
	encodeOne := func(i int, rngI *rand.Rand) {
		enc, err := core.NewBidEncoder(params, ring, sampler, rngI)
		if err != nil {
			errs[i] = fmt.Errorf("round: bidder %d encoder: %w", i, err)
			return
		}
		sub, err := enc.Encode(bids[i], rngI)
		if err != nil {
			errs[i] = fmt.Errorf("round: bidder %d bids: %w", i, err)
			return
		}
		subs[i] = sub
		bytesPer[i] = core.SubmissionBytes(sub) + core.LocationBytes(locs[i])
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			encodeOne(i, rand.New(rand.NewSource(seeds[i])))
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					encodeOne(i, rand.New(rand.NewSource(seeds[i])))
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, 0, err
		}
	}
	bytesTotal := 0
	for _, b := range bytesPer {
		bytesTotal += b
	}
	return locs, subs, bytesTotal, nil
}
