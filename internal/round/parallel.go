package round

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

// Options tunes how a private round executes without touching protocol
// semantics.
//
// Deprecated: Options only parameterizes the deprecated RunPrivateOpts;
// use Run with WithWorkers / WithoutInterning.
type Options struct {
	// Workers bounds the goroutines used for submission encoding and
	// conflict-graph construction. 0 means one worker per available CPU
	// (runtime.GOMAXPROCS); 1 pins everything to the calling goroutine.
	Workers int
	// DisableInterning makes the auctioneer evaluate masked set operations
	// on the map-based mask.Set representation instead of interned ID
	// slices (DESIGN.md §5b).
	DisableInterning bool
}

// RunPrivateOpts executes the full LPPA protocol like RunPrivate, but with
// deterministic parallel submission encoding and conflict-graph
// construction. See WithWorkers for the determinism contract (identical
// results for every worker count; different stream than the serial path).
//
// Deprecated: use Run with WithWorkers (and WithoutInterning for the
// ablation).
func RunPrivateOpts(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand, opts Options) (*Result, error) {
	o := []Option{WithWorkers(opts.Workers)}
	if opts.DisableInterning {
		o = append(o, WithoutInterning())
	}
	return Run(params, ring, Input{Points: points, Bids: bids, Policy: policy, Rng: rng}, o...)
}

// encodeSubmissions produces every bidder's location and bid submission.
// Encoding seeds are drawn from rng serially in bidder order before any
// goroutine starts; bidder i's submissions then depend only on seeds[i],
// so the striped worker pool yields byte-identical results for every
// worker count. Shared samplers (bidders with equal policies) are safe:
// DisguiseSampler.Sample only reads the precomputed CDF.
func encodeSubmissions(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	samplers []*core.DisguiseSampler, rng *rand.Rand, workers int) ([]*core.LocationSubmission, []*core.BidSubmission, int, error) {
	n := len(points)
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	// Location masking draws no randomness; the parallel batch builder is
	// output-identical to per-bidder calls.
	locs, err := core.NewLocationSubmissions(params, ring, points, workers)
	if err != nil {
		return nil, nil, 0, err
	}

	subs := make([]*core.BidSubmission, n)
	bytesPer := make([]int, n)
	errs := make([]error, n)
	encodeOne := func(i int, rngI *rand.Rand) {
		enc, err := core.NewBidEncoder(params, ring, samplers[i], rngI)
		if err != nil {
			errs[i] = fmt.Errorf("round: bidder %d encoder: %w", i, err)
			return
		}
		sub, err := enc.Encode(bids[i], rngI)
		if err != nil {
			errs[i] = fmt.Errorf("round: bidder %d bids: %w", i, err)
			return
		}
		subs[i] = sub
		bytesPer[i] = core.SubmissionBytes(sub) + core.LocationBytes(locs[i])
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			encodeOne(i, rand.New(rand.NewSource(seeds[i])))
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					encodeOne(i, rand.New(rand.NewSource(seeds[i])))
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, 0, err
		}
	}
	bytesTotal := 0
	for _, b := range bytesPer {
		bytesTotal += b
	}
	return locs, subs, bytesTotal, nil
}

// encodeTolerant is the quorum-mode encoder: per-bidder failures are
// recorded instead of aborting, and — on the seeded pipeline — bidders
// that miss the straggler deadline are abandoned (their goroutines finish
// into a discarded collector slot). Fault-free output is bit-identical to
// encodeSerial (seeded=false) or encodeSubmissions (seeded=true): the rng
// is consumed in exactly the same order, and the per-bidder location
// builder produces the same bytes as the batch builder (location masking
// draws no randomness).
func encodeTolerant(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	samplers []*core.DisguiseSampler, rng *rand.Rand, workers int, seeded bool, deadline time.Duration,
) ([]*core.LocationSubmission, []*core.BidSubmission, []int, []error) {
	n := len(points)
	locs := make([]*core.LocationSubmission, n)
	subs := make([]*core.BidSubmission, n)
	bytesPer := make([]int, n)
	errs := make([]error, n)

	encodeOne := func(i int, rngI *rand.Rand) (*core.LocationSubmission, *core.BidSubmission, int, error) {
		loc, err := core.NewLocationSubmission(params, ring, points[i])
		if err != nil {
			return nil, nil, 0, fmt.Errorf("round: bidder %d location: %w", i, err)
		}
		enc, err := core.NewBidEncoder(params, ring, samplers[i], rngI)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("round: bidder %d encoder: %w", i, err)
		}
		sub, err := enc.Encode(bids[i], rngI)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("round: bidder %d bids: %w", i, err)
		}
		return loc, sub, core.SubmissionBytes(sub) + core.LocationBytes(loc), nil
	}

	if !seeded {
		// Serial shape: one rng threaded through bidders in index order,
		// exactly like encodeSerial, but a failed bidder is skipped
		// instead of aborting the population. No deadline here — Run
		// rejects WithStragglerTimeout on the serial pipeline.
		for i := 0; i < n; i++ {
			locs[i], subs[i], bytesPer[i], errs[i] = encodeOne(i, rng)
		}
		return locs, subs, bytesPer, errs
	}

	// Seeded shape: the round rng is consumed serially up front (one seed
	// per bidder), after which every bidder encodes independently. Results
	// land in the collector under its lock so a deadline snapshot never
	// races a straggling worker.
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	var (
		mu       sync.Mutex
		done     = make([]bool, n)
		arrivals = make(chan struct{}, n)
	)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := w; i < n; i += workers {
				loc, sub, b, err := encodeOne(i, rand.New(rand.NewSource(seeds[i])))
				mu.Lock()
				locs[i], subs[i], bytesPer[i], errs[i] = loc, sub, b, err
				done[i] = true
				mu.Unlock()
				arrivals <- struct{}{}
			}
		}(w)
	}
	var timeout <-chan time.Time
	if deadline > 0 {
		timeout = time.After(deadline)
	}
	landed := 0
collect:
	for landed < n {
		select {
		case <-arrivals:
			landed++
		case <-timeout:
			break collect
		}
	}
	// Snapshot under the lock: stragglers keep encoding into the shared
	// slices afterwards, but this round only ever reads the copies.
	mu.Lock()
	defer mu.Unlock()
	clocs := make([]*core.LocationSubmission, n)
	csubs := make([]*core.BidSubmission, n)
	cbytes := make([]int, n)
	cerrs := make([]error, n)
	for i := 0; i < n; i++ {
		if !done[i] {
			cerrs[i] = fmt.Errorf("round: bidder %d missed straggler deadline %v", i, deadline)
			continue
		}
		clocs[i], csubs[i], cbytes[i], cerrs[i] = locs[i], subs[i], bytesPer[i], errs[i]
	}
	return clocs, csubs, cbytes, cerrs
}
