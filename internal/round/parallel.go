package round

import (
	"fmt"
	"math/rand"
	"sync"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

// Options tunes how a private round executes without touching protocol
// semantics.
//
// Deprecated: Options only parameterizes the deprecated RunPrivateOpts;
// use Run with WithWorkers / WithoutInterning.
type Options struct {
	// Workers bounds the goroutines used for submission encoding and
	// conflict-graph construction. 0 means one worker per available CPU
	// (runtime.GOMAXPROCS); 1 pins everything to the calling goroutine.
	Workers int
	// DisableInterning makes the auctioneer evaluate masked set operations
	// on the map-based mask.Set representation instead of interned ID
	// slices (DESIGN.md §5b).
	DisableInterning bool
}

// RunPrivateOpts executes the full LPPA protocol like RunPrivate, but with
// deterministic parallel submission encoding and conflict-graph
// construction. See WithWorkers for the determinism contract (identical
// results for every worker count; different stream than the serial path).
//
// Deprecated: use Run with WithWorkers (and WithoutInterning for the
// ablation).
func RunPrivateOpts(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand, opts Options) (*Result, error) {
	o := []Option{WithWorkers(opts.Workers)}
	if opts.DisableInterning {
		o = append(o, WithoutInterning())
	}
	return Run(params, ring, Input{Points: points, Bids: bids, Policy: policy, Rng: rng}, o...)
}

// encodeSubmissions produces every bidder's location and bid submission.
// Encoding seeds are drawn from rng serially in bidder order before any
// goroutine starts; bidder i's submissions then depend only on seeds[i],
// so the striped worker pool yields byte-identical results for every
// worker count. Shared samplers (bidders with equal policies) are safe:
// DisguiseSampler.Sample only reads the precomputed CDF.
func encodeSubmissions(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	samplers []*core.DisguiseSampler, rng *rand.Rand, workers int) ([]*core.LocationSubmission, []*core.BidSubmission, int, error) {
	n := len(points)
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	// Location masking draws no randomness; the parallel batch builder is
	// output-identical to per-bidder calls.
	locs, err := core.NewLocationSubmissions(params, ring, points, workers)
	if err != nil {
		return nil, nil, 0, err
	}

	subs := make([]*core.BidSubmission, n)
	bytesPer := make([]int, n)
	errs := make([]error, n)
	encodeOne := func(i int, rngI *rand.Rand) {
		enc, err := core.NewBidEncoder(params, ring, samplers[i], rngI)
		if err != nil {
			errs[i] = fmt.Errorf("round: bidder %d encoder: %w", i, err)
			return
		}
		sub, err := enc.Encode(bids[i], rngI)
		if err != nil {
			errs[i] = fmt.Errorf("round: bidder %d bids: %w", i, err)
			return
		}
		subs[i] = sub
		bytesPer[i] = core.SubmissionBytes(sub) + core.LocationBytes(locs[i])
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			encodeOne(i, rand.New(rand.NewSource(seeds[i])))
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					encodeOne(i, rand.New(rand.NewSource(seeds[i])))
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, 0, err
		}
	}
	bytesTotal := 0
	for _, b := range bytesPer {
		bytesTotal += b
	}
	return locs, subs, bytesTotal, nil
}
