package round

import (
	"math/rand"
	"reflect"
	"testing"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

// runShardPair runs the same round unsharded and sharded and pins every
// observable equal: the result surface (sameResult), the transcript
// rankings, and the conflict graph itself.
func runShardPair(t *testing.T, tag string, p core.Params, pts []geo.Point, bids [][]uint64,
	pol core.DisguisePolicy, seed int64, base []Option, shards int) {
	t.Helper()
	ring, err := mask.DeriveKeyRing([]byte("round-shard"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	run := func(extra ...Option) *Result {
		t.Helper()
		res, err := Run(p, ring, Input{Points: pts, Bids: bids, Policy: pol,
			Rng: rand.New(rand.NewSource(seed))}, append(append([]Option(nil), base...), extra...)...)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		return res
	}
	want := run()
	got := run(WithShards(shards))
	sameResult(t, tag, want, got)
	if !reflect.DeepEqual(want.Auctioneer.Rankings(), got.Auctioneer.Rankings()) {
		t.Errorf("%s: rankings differ between unsharded and %d shards", tag, shards)
	}
	if !want.Auctioneer.ConflictGraph().Equal(got.Auctioneer.ConflictGraph()) {
		t.Errorf("%s: conflict graphs differ between unsharded and %d shards", tag, shards)
	}
}

// TestRunShardGridEquivalence is the tentpole equivalence grid: for every
// pipeline shape × interning mode × candidate strategy × charging rule ×
// density shape, WithShards(k) must be bit-identical to the unsharded
// round — including k = 1, the degenerate single-tile case.
func TestRunShardGridEquivalence(t *testing.T) {
	pol := core.DisguisePolicy{P0: 0.6, Decay: 0.95}
	const n = 40

	pipelines := []struct {
		tag  string
		opts []Option
	}{
		{"serial", nil},
		{"workers4", []Option{WithWorkers(4)}},
	}
	interning := []struct {
		tag  string
		opts []Option
	}{
		{"intern", nil},
		{"nointern", []Option{WithoutInterning()}},
	}
	candidates := []struct {
		tag  string
		opts []Option
	}{
		{"oracle", nil},
		{"indexed", []Option{WithIndexedCandidates()}},
	}
	charging := []struct {
		tag  string
		opts []Option
	}{
		{"firstprice", nil},
		{"secondprice", []Option{WithSecondPrice()}},
		{"interactive", []Option{WithInteractiveCharging()}},
	}
	densities := []struct {
		tag string
		pts func(rng *rand.Rand) []geo.Point
	}{
		{"uniform", func(rng *rand.Rand) []geo.Point {
			pts := make([]geo.Point, n)
			for i := range pts {
				pts[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
			}
			return pts
		}},
		{"clustered", func(rng *rand.Rand) []geo.Point {
			// Everyone within a couple of tiles: exercises near-degenerate
			// plans where one tile holds most of the population.
			pts := make([]geo.Point, n)
			for i := range pts {
				pts[i] = geo.Point{X: uint64(40 + rng.Intn(20)), Y: uint64(40 + rng.Intn(20))}
			}
			return pts
		}},
	}

	p := core.Params{Channels: 4, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 100}
	for _, seed := range []int64{3, 17} {
		rng := rand.New(rand.NewSource(seed))
		bids := make([][]uint64, n)
		for i := range bids {
			bids[i] = make([]uint64, p.Channels)
			for r := range bids[i] {
				if rng.Intn(4) > 0 {
					bids[i][r] = uint64(rng.Intn(int(p.BMax))) + 1
				}
			}
		}
		for _, de := range densities {
			pts := de.pts(rng)
			for _, pl := range pipelines {
				for _, it := range interning {
					for _, ca := range candidates {
						for _, ch := range charging {
							base := append(append(append([]Option(nil), pl.opts...), it.opts...), ca.opts...)
							base = append(base, ch.opts...)
							for _, shards := range []int{1, 2, 4, 8} {
								tag := de.tag + "/" + pl.tag + "/" + it.tag + "/" + ca.tag + "/" + ch.tag
								runShardPair(t, tag, p, pts, bids, pol, seed*7, base, shards)
							}
						}
					}
				}
			}
		}
	}
}

// TestRunShardBoundaryBidders seeds bidders exactly on tile boundaries
// (coordinates at multiples of the tile width, and one unit either side)
// where the border-band bookkeeping has the least slack, and pins shard
// equivalence there.
func TestRunShardBoundaryBidders(t *testing.T) {
	p := core.Params{Channels: 3, Lambda: 3, MaxX: 99, MaxY: 99, BMax: 50}
	tg, err := geo.NewTileGrid(p.MaxX, p.MaxY, p.Lambda, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := tg.Width
	var pts []geo.Point
	for _, x := range []uint64{0, w - 1, w, w + 1, 2*w - 1, 2 * w, p.MaxX} {
		for _, y := range []uint64{0, w - 1, w, w + 1, 2*w - 1, 2 * w, p.MaxY} {
			if x <= p.MaxX && y <= p.MaxY {
				pts = append(pts, geo.Point{X: x, Y: y})
			}
		}
	}
	rng := rand.New(rand.NewSource(5))
	bids := make([][]uint64, len(pts))
	for i := range bids {
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			bids[i][r] = uint64(rng.Intn(int(p.BMax) + 1))
		}
	}
	pol := core.DisguisePolicy{P0: 1}
	for _, shards := range []int{1, 4, 8, 16} {
		runShardPair(t, "boundary", p, pts, bids, pol, 23, nil, shards)
		runShardPair(t, "boundary-indexed", p, pts, bids, pol, 23,
			[]Option{WithIndexedCandidates(), WithWorkers(4)}, shards)
	}
}

// TestRunShardQuorumCompaction pins that a sharded quorum round plans over
// the surviving population: one unencodable bidder is excluded and the rest
// allocate exactly as the unsharded degraded round does.
func TestRunShardQuorumCompaction(t *testing.T) {
	const n, bad = 14, 4
	p, ring, pts, bids := parallelFixture(t, n, 2, 9)
	pts[bad] = geo.Point{X: p.MaxX + 1, Y: 0}
	in := func() Input {
		return Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1},
			Rng: rand.New(rand.NewSource(11))}
	}
	want, err := Run(p, ring, in(), WithQuorum(n-1), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(p, ring, in(), WithQuorum(n-1), WithWorkers(2), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "quorum-sharded", want, got)
	if !reflect.DeepEqual(got.Excluded, []int{bad}) {
		t.Fatalf("Excluded = %v, want [%d]", got.Excluded, bad)
	}
}

// TestWithShardsValidation covers the option's error path.
func TestWithShardsValidation(t *testing.T) {
	p, ring, pts, bids := parallelFixture(t, 4, 2, 1)
	in := Input{Points: pts, Bids: bids, Policy: core.DefaultDisguise(), Rng: rand.New(rand.NewSource(1))}
	if _, err := Run(p, ring, in, WithShards(0)); err == nil {
		t.Error("zero shard count accepted")
	}
	if _, err := Run(p, ring, in, WithShards(-3)); err == nil {
		t.Error("negative shard count accepted")
	}
}
