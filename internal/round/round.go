// Package round orchestrates complete auction rounds: it wires bidders,
// the LPPA auctioneer, and the TTP together for the private protocol, and
// runs the plaintext baseline for comparison. The experiment drivers and
// examples build on this package.
//
// Run is the single entry point; functional options select the execution
// pipeline (WithWorkers), disguise shape (WithPolicies), charging design
// (WithInteractiveCharging, WithSecondPrice), and observability
// (WithObserver). The RunPrivate* functions are deprecated wrappers kept
// for compatibility; each is bit-identical to the Run call it documents.
package round

import (
	"math/rand"

	"lppa/internal/auction"
	"lppa/internal/conflict"
	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
)

// Result is the outcome of one private round.
type Result struct {
	// Outcome carries assignments, charges, revenue, and satisfaction.
	// Voided awards contribute zero charge and no satisfaction.
	Outcome *auction.Outcome
	// Voided counts awards the TTP invalidated (disguised or true zeros
	// that won); each voided award wastes its channel slot this round.
	Voided int
	// Violations counts protocol violations the TTP detected (should be
	// zero with honest bidders).
	Violations int
	// Auctioneer exposes the transcript (rankings, conflict graph) for
	// attack evaluation.
	Auctioneer *core.Auctioneer
	// SubmissionBytes is the total masked-bid transcript size, for the
	// Theorem 4 communication-cost experiment.
	SubmissionBytes int
	// Excluded lists bidders (original indices, ascending) left out of a
	// degraded quorum round — their submissions failed to encode or missed
	// the straggler deadline. Empty on full-attendance rounds. Assignment
	// bidder indices in Outcome always refer to the original population,
	// but Auctioneer's transcript indexes the compacted one.
	Excluded []int
	// Trace is the round's trace ID when the round was traced (WithTrace,
	// or a WithTraceSampler round the sampler picked); zero otherwise.
	// The ops plane uses it to correlate events with sampled spans.
	Trace obs.TraceID
}

// RunPrivate executes the full LPPA protocol in-process with one disguise
// policy for all bidders.
//
// Deprecated: use Run. RunPrivate(p, ring, pts, bids, policy, rng) is
// exactly Run(p, ring, Input{pts, bids, policy, rng}).
func RunPrivate(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand) (*Result, error) {
	return Run(params, ring, Input{Points: points, Bids: bids, Policy: policy, Rng: rng})
}

// RunPrivateWithPolicies is RunPrivate with a per-bidder disguise policy.
//
// Deprecated: use Run with WithPolicies.
func RunPrivateWithPolicies(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policies []core.DisguisePolicy, rng *rand.Rand) (*Result, error) {
	return Run(params, ring, Input{Points: points, Bids: bids, Rng: rng}, WithPolicies(policies))
}

// RunPrivateInteractive is RunPrivate with an interactive TTP: every
// prospective award is validity-checked before it stands.
//
// Deprecated: use Run with WithInteractiveCharging.
func RunPrivateInteractive(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand) (*Result, error) {
	return Run(params, ring, Input{Points: points, Bids: bids, Policy: policy, Rng: rng}, WithInteractiveCharging())
}

// RunPlainBaseline runs the non-private reference auction on the same
// inputs: plaintext conflict graph, plaintext bids, zero bids excluded.
func RunPlainBaseline(points []geo.Point, bids [][]uint64, lambda uint64, rng *rand.Rand) (*auction.Outcome, error) {
	g := conflict.BuildPlain(points, lambda)
	return auction.RunPlain(bids, g, rng)
}
