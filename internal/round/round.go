// Package round orchestrates complete auction rounds: it wires bidders,
// the LPPA auctioneer, and the TTP together for the private protocol, and
// runs the plaintext baseline for comparison. The experiment drivers and
// examples build on this package.
package round

import (
	"fmt"
	"math/rand"

	"lppa/internal/auction"
	"lppa/internal/conflict"
	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/ttp"
)

// Result is the outcome of one private round.
type Result struct {
	// Outcome carries assignments, charges, revenue, and satisfaction.
	// Voided awards contribute zero charge and no satisfaction.
	Outcome *auction.Outcome
	// Voided counts awards the TTP invalidated (disguised or true zeros
	// that won); each voided award wastes its channel slot this round.
	Voided int
	// Violations counts protocol violations the TTP detected (should be
	// zero with honest bidders).
	Violations int
	// Auctioneer exposes the transcript (rankings, conflict graph) for
	// attack evaluation.
	Auctioneer *core.Auctioneer
	// SubmissionBytes is the total masked-bid transcript size, for the
	// Theorem 4 communication-cost experiment.
	SubmissionBytes int
}

// RunPrivate executes the full LPPA protocol in-process:
//
//  1. The TTP generates the key ring (from seed material via the caller's
//     ring) and distributes it to bidders.
//  2. Every bidder builds a masked location submission and an advanced
//     masked bid submission under its disguise policy.
//  3. The auctioneer builds the conflict graph and allocates channels over
//     masked data (Algorithm 3).
//  4. The TTP adjudicates the winners' charges; voided awards are dropped.
//
// points and bids are indexed by bidder; policy applies to all bidders
// (per-bidder policies are supported through RunPrivateWithPolicies).
func RunPrivate(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand) (*Result, error) {
	policies := make([]core.DisguisePolicy, len(points))
	for i := range policies {
		policies[i] = policy
	}
	return RunPrivateWithPolicies(params, ring, points, bids, policies, rng)
}

// RunPrivateWithPolicies is RunPrivate with a per-bidder disguise policy
// (the paper lets each user pick its own privacy/performance tradeoff).
func RunPrivateWithPolicies(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policies []core.DisguisePolicy, rng *rand.Rand) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("round: no bidders")
	}
	if len(bids) != n || len(policies) != n {
		return nil, fmt.Errorf("round: %d points, %d bid vectors, %d policies", n, len(bids), len(policies))
	}

	trusted, err := ttp.FromRing(params, ring, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}

	locs := make([]*core.LocationSubmission, n)
	subs := make([]*core.BidSubmission, n)
	bytesTotal := 0
	for i := 0; i < n; i++ {
		loc, err := core.NewLocationSubmission(params, ring, points[i])
		if err != nil {
			return nil, fmt.Errorf("round: bidder %d location: %w", i, err)
		}
		locs[i] = loc

		var sampler *core.DisguiseSampler
		if policies[i].P0 < 1 {
			sampler, err = core.NewDisguiseSampler(policies[i], params.BMax)
			if err != nil {
				return nil, fmt.Errorf("round: bidder %d disguise: %w", i, err)
			}
		}
		enc, err := core.NewBidEncoder(params, ring, sampler, rng)
		if err != nil {
			return nil, fmt.Errorf("round: bidder %d encoder: %w", i, err)
		}
		sub, err := enc.Encode(bids[i], rng)
		if err != nil {
			return nil, fmt.Errorf("round: bidder %d bids: %w", i, err)
		}
		subs[i] = sub
		bytesTotal += core.SubmissionBytes(sub) + core.LocationBytes(loc)
	}

	auc, err := core.NewAuctioneer(params, locs, subs)
	if err != nil {
		return nil, err
	}
	// Batch charging (the paper's section V.C.2): the allocation completes
	// blindly, then the TTP adjudicates all winners at once. A zero that
	// won is voided after the fact — the award already consumed the
	// bidder's row and the channel slot, which is exactly the performance
	// cost Fig. 5(e)(f) charts. (RunPrivateInteractive implements the
	// alternative per-award TTP check as an ablation.)
	assignments, err := auc.Allocate(rng)
	if err != nil {
		return nil, err
	}
	results := trusted.ProcessBatch(auc.ChargeRequests(assignments))

	out := &auction.Outcome{
		Assignments: assignments,
		Charges:     make([]uint64, len(assignments)),
		Bidders:     n,
	}
	res := &Result{Outcome: out, Auctioneer: auc, SubmissionBytes: bytesTotal}
	for i, r := range results {
		switch {
		case r.Err != nil:
			res.Violations++
		case !r.Valid:
			res.Voided++
		default:
			out.Charges[i] = r.Price
			out.Revenue += r.Price
			out.SatisfiedBidders++
		}
	}
	return res, nil
}

// RunPrivateInteractive is RunPrivate with an interactive TTP: every
// prospective award is validity-checked before it stands, so a (possibly
// disguised) zero that tops a column wastes only that channel in the
// winner's neighborhood instead of the bidder's whole participation. This
// trades much more TTP online time (one round trip per award attempt) for
// auction performance; the ablation benchmarks compare the two designs.
func RunPrivateInteractive(params core.Params, ring *mask.KeyRing, points []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("round: no bidders")
	}
	if len(bids) != n {
		return nil, fmt.Errorf("round: %d points, %d bid vectors", n, len(bids))
	}
	trusted, err := ttp.FromRing(params, ring, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}
	locs := make([]*core.LocationSubmission, n)
	subs := make([]*core.BidSubmission, n)
	bytesTotal := 0
	var sampler *core.DisguiseSampler
	if policy.P0 < 1 {
		sampler, err = core.NewDisguiseSampler(policy, params.BMax)
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		if locs[i], err = core.NewLocationSubmission(params, ring, points[i]); err != nil {
			return nil, fmt.Errorf("round: bidder %d location: %w", i, err)
		}
		enc, err := core.NewBidEncoder(params, ring, sampler, rng)
		if err != nil {
			return nil, err
		}
		if subs[i], err = enc.Encode(bids[i], rng); err != nil {
			return nil, fmt.Errorf("round: bidder %d bids: %w", i, err)
		}
		bytesTotal += core.SubmissionBytes(subs[i]) + core.LocationBytes(locs[i])
	}
	auc, err := core.NewAuctioneer(params, locs, subs)
	if err != nil {
		return nil, err
	}
	validity := func(i, r int) bool { return trusted.ValidateAward(auc.SealedBid(i, r)) }
	assignments, voided, err := auc.AllocateWithValidity(validity, rng)
	if err != nil {
		return nil, err
	}
	results := trusted.ProcessBatch(auc.ChargeRequests(assignments))
	out := &auction.Outcome{
		Assignments: assignments,
		Charges:     make([]uint64, len(assignments)),
		Bidders:     n,
	}
	res := &Result{Outcome: out, Auctioneer: auc, SubmissionBytes: bytesTotal, Voided: len(voided)}
	for i, r := range results {
		switch {
		case r.Err != nil:
			res.Violations++
		case !r.Valid:
			res.Voided++
		default:
			out.Charges[i] = r.Price
			out.Revenue += r.Price
			out.SatisfiedBidders++
		}
	}
	return res, nil
}

// RunPlainBaseline runs the non-private reference auction on the same
// inputs: plaintext conflict graph, plaintext bids, zero bids excluded.
func RunPlainBaseline(points []geo.Point, bids [][]uint64, lambda uint64, rng *rand.Rand) (*auction.Outcome, error) {
	g := conflict.BuildPlain(points, lambda)
	return auction.RunPlain(bids, g, rng)
}
