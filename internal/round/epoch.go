package round

import (
	"fmt"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

// EpochState carries the pieces of a round that are population-independent
// across back-to-back epochs of the same auction: the auctioneer (reused
// via core.Auctioneer.Reset instead of reconstructed per round) and the
// shard planner's tile grid and tile masker, which depend only on params,
// ring, and shard count. One EpochState serves one sequence of rounds on
// one goroutine — it is not safe for concurrent Runs, and the Auctioneer
// in a Result produced under an EpochState is only valid until the next
// Run with the same state resets it.
type EpochState struct {
	auc    *core.Auctioneer
	params core.Params

	grid     geo.TileGrid
	masker   *mask.Masker
	gridRing *mask.KeyRing
	gridFor  core.Params
	gridK    int
	haveGrid bool
}

// NewEpochState returns an empty state; the first Run with it populates
// the reusable pieces.
func NewEpochState() *EpochState { return &EpochState{} }

// WithEpochState makes Run reuse st's auctioneer and shard planner
// across calls instead of rebuilding them per round. Results are
// bit-identical to the same call without the option — reuse skips
// construction work, never changes what a population is awarded (the
// epoch equivalence grid pins this). Composes with every other option.
func WithEpochState(st *EpochState) Option {
	return func(c *runConfig) error {
		if st == nil {
			return fmt.Errorf("round: WithEpochState requires a non-nil state")
		}
		c.state = st
		return nil
	}
}

// auctioneer returns a ready auctioneer over the submissions: the
// state's reset one when params match, a fresh one otherwise (adopted
// into the state for the next epoch). A nil state is the one-shot path.
func (st *EpochState) auctioneer(params core.Params, locs []*core.LocationSubmission, bids []*core.BidSubmission) (*core.Auctioneer, error) {
	if st != nil && st.auc != nil && st.params == params {
		if err := st.auc.Reset(locs, bids); err != nil {
			return nil, err
		}
		return st.auc, nil
	}
	auc, err := core.NewAuctioneer(params, locs, bids)
	if err != nil {
		return nil, err
	}
	if st != nil {
		st.auc, st.params = auc, params
	}
	return auc, nil
}

// planner returns the tile grid and masker for one shard plan, memoized
// in the state when params, ring, and shard count repeat — the common
// epochal case, where rebuilding them per round is pure waste (the grid
// is arithmetic, but the masker re-derives an HMAC key).
func (st *EpochState) planner(params core.Params, ring *mask.KeyRing, shards int) (geo.TileGrid, *mask.Masker, error) {
	if st != nil && st.haveGrid && st.gridFor == params && st.gridRing == ring && st.gridK == shards {
		return st.grid, st.masker, nil
	}
	tg, err := geo.NewTileGrid(params.MaxX, params.MaxY, params.Lambda, shards)
	if err != nil {
		return geo.TileGrid{}, nil, err
	}
	masker, err := mask.NewMasker(ring.TileKey())
	if err != nil {
		return geo.TileGrid{}, nil, err
	}
	if st != nil {
		st.grid, st.masker = tg, masker
		st.gridRing, st.gridFor, st.gridK = ring, params, shards
		st.haveGrid = true
	}
	return tg, masker, nil
}
