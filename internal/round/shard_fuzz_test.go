package round

import (
	"math/rand"
	"reflect"
	"testing"

	"lppa/internal/core"
	"lppa/internal/geo"
	"lppa/internal/mask"
)

// FuzzShardBoundaryEquivalence replays arbitrary (seed, population, shard
// count, pipeline, knobs) tuples with every bidder snapped onto or next to
// a tile boundary — the coordinates where the border-band bookkeeping has
// zero slack — and pins the sharded round bit-identical to the unsharded
// one. All inputs derive from the fuzz arguments, so failures replay
// deterministically from the corpus file.
func FuzzShardBoundaryEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(4), uint8(1), false, false)
	f.Add(int64(2), uint8(25), uint8(8), uint8(3), true, false)
	f.Add(int64(3), uint8(7), uint8(2), uint8(2), false, true)
	f.Add(int64(0), uint8(0), uint8(0), uint8(0), false, false)

	f.Fuzz(func(t *testing.T, seed int64, nRaw, shardsRaw, workersRaw uint8, indexed, noIntern bool) {
		n := int(nRaw%32) + 1
		shards := int(shardsRaw%15) + 1
		workers := int(workersRaw % 5) // 0 = serial pipeline
		p := core.Params{Channels: 3, Lambda: 2, MaxX: 99, MaxY: 99, BMax: 40}
		ring, err := mask.DeriveKeyRing([]byte("shard-fuzz"), p.Channels, 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		tg, err := geo.NewTileGrid(p.MaxX, p.MaxY, p.Lambda, shards)
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(seed))
		snap := func() uint64 {
			// A boundary multiple, then up to λ units of jitter either side
			// — points straddle the border band in every configuration.
			v := int64(tg.Width)*int64(rng.Intn(3)) + int64(rng.Intn(2*int(p.Lambda)+1)) - int64(p.Lambda)
			if v < 0 {
				v = 0
			}
			if v > int64(p.MaxX) {
				v = int64(p.MaxX)
			}
			return uint64(v)
		}
		pts := make([]geo.Point, n)
		bids := make([][]uint64, n)
		for i := range pts {
			pts[i] = geo.Point{X: snap(), Y: snap()}
			bids[i] = make([]uint64, p.Channels)
			for r := range bids[i] {
				bids[i][r] = uint64(rng.Intn(int(p.BMax) + 1))
			}
		}

		var base []Option
		if workers > 0 {
			base = append(base, WithWorkers(workers))
		}
		if indexed {
			base = append(base, WithIndexedCandidates())
		}
		if noIntern {
			base = append(base, WithoutInterning())
		}
		run := func(extra ...Option) *Result {
			res, err := Run(p, ring, Input{Points: pts, Bids: bids, Policy: core.DisguisePolicy{P0: 1},
				Rng: rand.New(rand.NewSource(seed * 13))}, append(append([]Option(nil), base...), extra...)...)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		want := run()
		got := run(WithShards(shards))
		if !reflect.DeepEqual(want.Outcome, got.Outcome) {
			t.Fatalf("seed=%d n=%d shards=%d workers=%d indexed=%v noIntern=%v: outcomes differ",
				seed, n, shards, workers, indexed, noIntern)
		}
		if !want.Auctioneer.ConflictGraph().Equal(got.Auctioneer.ConflictGraph()) {
			t.Fatalf("seed=%d n=%d shards=%d: conflict graphs differ", seed, n, shards)
		}
		if !reflect.DeepEqual(want.Auctioneer.Rankings(), got.Auctioneer.Rankings()) {
			t.Fatalf("seed=%d n=%d shards=%d: rankings differ", seed, n, shards)
		}
	})
}
