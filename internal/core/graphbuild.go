package core

import (
	"sync/atomic"
	"time"

	"lppa/internal/conflict"
	"lppa/internal/mask"
)

// The one conflict-graph construction path behind Auctioneer.ConflictGraph
// (DESIGN.md §5f). Representation (interned / map-based), candidate
// strategy (all-pairs oracle / inverted index), worker count, and
// observation all meet in buildGraph, so a new strategy is wired in exactly
// once — previously the serial/parallel predicate plumbing was duplicated
// between ConflictGraph's switch and its observed twin in observe.go.

// EnableIndexedCandidates switches conflict-candidate generation to the
// inverted index over interned masked digests (mask.Index): candidate pairs
// come from posting-list self-joins on the X axis and only candidates are
// confirmed with the exact intersection predicate. Default off — the
// all-pairs scan remains the verification oracle, and the equivalence suite
// pins the indexed graph bit-identical to it. Ignored under
// DisableInterning (the index requires interned IDs); call before the first
// ConflictGraph/Allocate use.
func (a *Auctioneer) EnableIndexedCandidates() { a.indexed = true }

// PrepareCandidates eagerly runs the candidate-generation setup the
// conflict graph needs: interning the population and, in indexed mode,
// posting the inverted index during the same ingest pass. ConflictGraph
// does the same work lazily; round tracing calls this first so the setup
// lands in its own candidate_generation span. Reports whether an index is
// in play (indexed mode with interning enabled).
func (a *Auctioneer) PrepareCandidates() bool {
	if a.noIntern || !a.indexed {
		return false
	}
	a.internedView()
	return true
}

// IndexStats seals and describes the candidate index, or a zero value when
// no index is in play (not indexed, or interning disabled). Diagnostic
// surface for benchmarks and tests; building the view on demand mirrors
// ConflictGraph's laziness.
func (a *Auctioneer) IndexStats() mask.IndexStats {
	if a.noIntern || !a.indexed || a.plan != nil {
		// Sharded indexed builds use tile-local indexes — see
		// ShardIndexStats (shard.go) — and never build the global one.
		return mask.IndexStats{}
	}
	_, ix := a.internedView()
	return ix.Stats()
}

// internedView interns the population once — posting the inverted candidate
// index incrementally during the same ingest pass when indexed mode is on —
// and caches both on the auctioneer. Observed auctioneers fold the intern
// tallies in here and time the indexed ingest into lppa_index_build_seconds.
func (a *Auctioneer) internedView() ([]internedLocation, *mask.Index) {
	if a.iloc != nil {
		return a.iloc, a.locIndex
	}
	var start time.Time
	if a.ob != nil {
		start = time.Now()
	}
	var ix *mask.Index
	if a.indexed && a.plan == nil {
		// Sharded builds post tile-local indexes per shard instead
		// (buildGraphSharded); a global index would go unread.
		ix = mask.NewIndex(len(a.locs))
	}
	iloc, total, distinct := internLocations(a.locs, ix)
	a.iloc, a.locIndex = iloc, ix
	if a.ob != nil {
		a.ob.noteIntern(total, distinct)
		if ix != nil {
			a.ob.indexBuild.Observe(time.Since(start).Seconds())
		}
	}
	return a.iloc, a.locIndex
}

// BuildConflictGraphIndexed is BuildConflictGraph with candidates generated
// from the inverted digest index instead of the all-pairs sweep: the ingest
// pass posts each bidder's X family and X range cover into a mask.Index,
// posting-list self-joins propose candidate pairs, and only candidates are
// confirmed with the exact interned intersection. Bit-identical to
// BuildConflictGraph(Parallel) for every workload and worker count (≤ 1
// runs serially) — the all-pairs build stays the verification oracle.
func BuildConflictGraphIndexed(subs []*LocationSubmission, workers int) *conflict.Graph {
	ix := mask.NewIndex(len(subs))
	iloc, _, _ := internLocations(subs, ix)
	w := 1
	if workers > 1 {
		w = mask.Workers(workers, len(subs))
	}
	return conflict.BuildFromCandidatesParallel(len(subs), func() conflict.CandidateCursor {
		return ix.Cursor()
	}, func(i, j int) bool {
		return iloc[i].conflicts(&iloc[j])
	}, w)
}

// buildPairs runs the all-pairs oracle, serially or sharded. workers is
// already normalized (≤ 1 means serial).
func buildPairs(n int, pred func(i, j int) bool, workers int) *conflict.Graph {
	if workers > 1 {
		return conflict.BuildFromPredicateParallel(n, pred, workers)
	}
	return conflict.BuildFromPredicate(n, pred)
}

// buildGraph constructs the conflict graph for the current knob settings.
// Every combination yields the bit-identical graph: counted predicates
// delegate to the uncounted intersections, the parallel builds fix each
// adjacency bit's position by (i, j) alone, and the indexed candidates are
// a sound superset confirmed by the same predicate the oracle runs.
func (a *Auctioneer) buildGraph() *conflict.Graph {
	if a.plan != nil {
		return a.buildGraphSharded()
	}
	n := len(a.locs)
	workers := 1
	if a.workers > 1 {
		workers = mask.Workers(a.workers, n)
	}

	if a.noIntern {
		// Map-based ablation: indexed mode needs interned IDs, so the
		// all-pairs oracle runs on mask.Set directly.
		if a.ob == nil {
			return buildPairs(n, func(i, j int) bool {
				return Conflicts(a.locs[i], a.locs[j])
			}, workers)
		}
		var calls atomic.Uint64
		g := buildPairs(n, func(i, j int) bool {
			c := uint64(1)
			ok := a.locs[i].XFamily.Intersects(a.locs[j].XRange)
			if ok {
				c++
				ok = a.locs[i].YFamily.Intersects(a.locs[j].YRange)
			}
			calls.Add(c)
			return ok
		}, workers)
		a.ob.comparisons.Add(calls.Load())
		return g
	}

	iloc, ix := a.internedView()

	var calls, rejects atomic.Uint64
	pred := func(i, j int) bool { return iloc[i].conflicts(&iloc[j]) }
	if a.ob != nil {
		// Counted twin: tallies accumulate in atomics (the parallel sweep
		// shares the predicate across workers) and land in the registry
		// once, after the build.
		pred = func(i, j int) bool {
			var st mask.IntersectStats
			ok := iloc[i].conflictsCounted(&iloc[j], &st)
			calls.Add(st.Calls)
			rejects.Add(st.BloomRejects)
			return ok
		}
	}

	var g *conflict.Graph
	var cursors []*mask.IndexCursor
	if ix != nil {
		g = conflict.BuildFromCandidatesParallel(n, func() conflict.CandidateCursor {
			c := ix.Cursor()
			cursors = append(cursors, c) // called serially, one per worker
			return c
		}, pred, workers)
	} else {
		g = buildPairs(n, pred, workers)
	}

	if a.ob != nil {
		a.ob.comparisons.Add(calls.Load())
		a.ob.bloomRejects.Add(rejects.Load())
		if ix != nil {
			var scanned, emitted uint64
			for _, c := range cursors {
				s, e := c.Stats()
				scanned += s
				emitted += e
			}
			a.ob.indexPostings.Add(scanned)
			a.ob.indexCandidates.Add(emitted)
			a.ob.indexConfirms.Add(uint64(g.Edges()))
		}
	}
	return g
}
