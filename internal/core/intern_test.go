package core

import (
	"math/rand"
	"reflect"
	"testing"

	"lppa/internal/conflict"
)

// TestConflictGraphRepresentationEquivalence pins the tentpole soundness
// claim: the interned conflict graph (Bloom quick reject + sorted-ID
// merges) is bit-identical to evaluating the map-based Conflicts predicate
// directly, across populations, λ, and worker counts.
func TestConflictGraphRepresentationEquivalence(t *testing.T) {
	for _, lambda := range []uint64{1, 2, 4} {
		p := Params{Channels: 1, Lambda: lambda, MaxX: 99, MaxY: 99, BMax: 100}
		ring := testRing(t, p, 5, 8)
		for _, n := range []int{2, 30, 90} {
			pts := randomPoints(p, n, int64(lambda)*53+int64(n))
			subs, err := NewLocationSubmissions(p, ring, pts, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := conflict.BuildFromPredicate(n, func(i, j int) bool {
				return Conflicts(subs[i], subs[j])
			})
			if got := BuildConflictGraph(subs); !got.Equal(want) {
				t.Errorf("lambda=%d n=%d: interned serial graph differs from map-based", lambda, n)
			}
			for _, workers := range []int{2, 4} {
				if got := BuildConflictGraphParallel(subs, workers); !got.Equal(want) {
					t.Errorf("lambda=%d n=%d workers=%d: interned parallel graph differs from map-based", lambda, n, workers)
				}
			}
		}
	}
}

// TestAuctioneerRepresentationEquivalence runs the same round through an
// interned and a map-based auctioneer (several seeds) and demands
// identical transcripts and identical full allocations: the interned
// representation may never change an auction outcome.
func TestAuctioneerRepresentationEquivalence(t *testing.T) {
	p := testParams()
	for _, seed := range []int64{3, 11, 29} {
		interned, _, _ := randomRound(t, p, 25, seed)
		mapped, _, _ := randomRound(t, p, 25, seed)
		mapped.DisableInterning()

		if !interned.ConflictGraph().Equal(mapped.ConflictGraph()) {
			t.Errorf("seed=%d: conflict graphs differ between representations", seed)
		}
		for r := 0; r < p.Channels; r++ {
			for i := 0; i < interned.N(); i++ {
				for j := 0; j < interned.N(); j++ {
					if interned.GE(r, i, j) != mapped.GE(r, i, j) {
						t.Fatalf("seed=%d r=%d: GE(%d,%d) differs between representations", seed, r, i, j)
					}
				}
			}
		}
		if !reflect.DeepEqual(interned.Rankings(), mapped.Rankings()) {
			t.Errorf("seed=%d: rankings differ between representations", seed)
		}
		a1, err := interned.Allocate(rand.New(rand.NewSource(seed * 7)))
		if err != nil {
			t.Fatal(err)
		}
		a2, err := mapped.Allocate(rand.New(rand.NewSource(seed * 7)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Errorf("seed=%d: allocations differ between representations", seed)
		}
	}
}

// TestGEMemoMatchesRawUnderInterning extends the memo-correctness anchor
// to the interned build: every memoized GE answer must equal the direct
// map-based masked intersection rawGE evaluates.
func TestGEMemoMatchesRawUnderInterning(t *testing.T) {
	p := testParams()
	auc, _, _ := randomRound(t, p, 20, 47)
	for r := 0; r < p.Channels; r++ {
		for i := 0; i < auc.N(); i++ {
			for j := 0; j < auc.N(); j++ {
				if got, want := auc.GE(r, i, j), auc.rawGE(r, i, j); got != want {
					t.Fatalf("r=%d: interned memo GE(%d,%d)=%v, raw=%v", r, i, j, got, want)
				}
			}
		}
	}
}
