package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"lppa/internal/prefix"
)

func newAdvancedEncoder(t *testing.T, p Params, seed int64) (*BidEncoder, *rand.Rand) {
	t.Helper()
	ring := testRing(t, p, 5, 8)
	rng := rand.New(rand.NewSource(seed))
	enc, err := NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	return enc, rng
}

func TestAdvancedOrderPreservation(t *testing.T) {
	// For true bids a > b on the same channel, the masked comparison must
	// report a ≥ b and not b ≥ a (blinding separates distinct values into
	// disjoint slots).
	p := testParams()
	enc, rng := newAdvancedEncoder(t, p, 1)
	for trial := 0; trial < 100; trial++ {
		a := uint64(rng.Intn(int(p.BMax))) + 1
		b := uint64(rng.Intn(int(a)))
		if b == 0 {
			b = 1
		}
		if a == b {
			a++
		}
		bidsA := make([]uint64, p.Channels)
		bidsB := make([]uint64, p.Channels)
		bidsA[0], bidsB[0] = a, b
		subA, err := enc.Encode(bidsA, rng)
		if err != nil {
			t.Fatal(err)
		}
		subB, err := enc.Encode(bidsB, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !CompareGE(&subA.Channels[0], &subB.Channels[0]) {
			t.Fatalf("GE(%d,%d) = false", a, b)
		}
		if CompareGE(&subB.Channels[0], &subA.Channels[0]) {
			t.Fatalf("GE(%d,%d) = true (should be strictly less)", b, a)
		}
	}
}

func TestAdvancedSelfComparison(t *testing.T) {
	// A bid always satisfies GE against itself (its family's head lies in
	// its own range cover).
	p := testParams()
	enc, rng := newAdvancedEncoder(t, p, 2)
	bids := []uint64{42, 0, 7, 100}
	sub, err := enc.Encode(bids, rng)
	if err != nil {
		t.Fatal(err)
	}
	for r := range sub.Channels {
		if !CompareGE(&sub.Channels[r], &sub.Channels[r]) {
			t.Errorf("channel %d: bid not GE itself", r)
		}
	}
}

func TestAdvancedZeroAlwaysLosesWithoutDisguise(t *testing.T) {
	// An undisguised zero must rank strictly below every positive bid.
	p := testParams()
	enc, rng := newAdvancedEncoder(t, p, 3)
	for trial := 0; trial < 50; trial++ {
		pos := uint64(rng.Intn(int(p.BMax))) + 1
		bidsZ := make([]uint64, p.Channels)
		bidsP := make([]uint64, p.Channels)
		bidsP[0] = pos
		subZ, err := enc.Encode(bidsZ, rng)
		if err != nil {
			t.Fatal(err)
		}
		subP, err := enc.Encode(bidsP, rng)
		if err != nil {
			t.Fatal(err)
		}
		if CompareGE(&subZ.Channels[0], &subP.Channels[0]) {
			t.Fatalf("undisguised zero ranked ≥ positive bid %d", pos)
		}
		if !CompareGE(&subP.Channels[0], &subZ.Channels[0]) {
			t.Fatalf("positive bid %d not ≥ zero", pos)
		}
	}
}

func TestAdvancedDisguisedZeroCanWin(t *testing.T) {
	// With P0 = 0 every zero is disguised as t ≥ 1 and must rank at least
	// even with a bid of 1.
	p := testParams()
	ring := testRing(t, p, 5, 8)
	rng := rand.New(rand.NewSource(4))
	sampler, err := NewDisguiseSampler(DisguisePolicy{P0: 0, Decay: 1}, p.BMax)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewBidEncoder(p, ring, sampler, rng)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]uint64, p.Channels)
	one[0] = 1
	subOne, err := enc.Encode(one, rng)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for trial := 0; trial < 60; trial++ {
		subZ, err := enc.Encode(make([]uint64, p.Channels), rng)
		if err != nil {
			t.Fatal(err)
		}
		if CompareGE(&subZ.Channels[0], &subOne.Channels[0]) {
			wins++
		}
	}
	if wins == 0 {
		t.Error("fully-disguised zeros never outranked a bid of 1")
	}
}

func TestAdvancedRangePadding(t *testing.T) {
	// Every advanced range set must have exactly 2w−2 digests, regardless
	// of bid value — otherwise set cardinality leaks magnitude.
	p := testParams()
	ring := testRing(t, p, 5, 8)
	enc, rng := newAdvancedEncoder(t, p, 5)
	want := p.RangePadSize(ring)
	for _, b := range []uint64{0, 1, 37, p.BMax} {
		bids := make([]uint64, p.Channels)
		bids[0] = b
		sub, err := enc.Encode(bids, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := sub.Channels[0].Range.Len(); got != want {
			t.Errorf("bid %d: range set size %d, want %d", b, got, want)
		}
	}
}

func TestAdvancedEqualBidsEncodeDifferently(t *testing.T) {
	// cr-blinding: equal plaintext bids must not produce identical family
	// sets (otherwise a decrypted winner price transfers to everyone with
	// the same ciphertext).
	p := testParams()
	enc, rng := newAdvancedEncoder(t, p, 6)
	bids := make([]uint64, p.Channels)
	bids[0] = 50
	a, err := enc.Encode(bids, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.Encode(bids, rng)
	if err != nil {
		t.Fatal(err)
	}
	aDigests := a.Channels[0].Family.Digests()
	identical := true
	for _, d := range aDigests {
		if !b.Channels[0].Family.Contains(d) {
			identical = false
			break
		}
	}
	if identical {
		t.Error("equal bids produced identical family sets (cr blinding broken)")
	}
}

func TestAdvancedCrossChannelIncomparable(t *testing.T) {
	// Per-channel keys: a channel-0 family must not intersect a channel-1
	// range, even for identical values.
	p := testParams()
	enc, rng := newAdvancedEncoder(t, p, 7)
	bids := make([]uint64, p.Channels)
	bids[0], bids[1] = 80, 10
	sub, err := enc.Encode(bids, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Channels[0].Family.Intersects(sub.Channels[1].Range) {
		t.Error("cross-channel digest collision: per-channel keys ineffective")
	}
}

func TestBasicEncoderExactOrderAndEqualityLeak(t *testing.T) {
	// The basic scheme is order-preserving AND deterministic: equal bids
	// yield identical digests — the leak the advanced scheme fixes.
	p := testParams()
	ring := testRing(t, p, 1, 1)
	rng := rand.New(rand.NewSource(8))
	enc, err := NewBasicBidEncoder(p, ring, rng)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(b uint64) *BidSubmission {
		bids := make([]uint64, p.Channels)
		bids[0] = b
		s, err := enc.Encode(bids, rng)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	b6, b10, b0, b5 := mk(6), mk(10), mk(0), mk(5)
	// The paper's Fig. 3 example: 10 is the max.
	for _, other := range []*BidSubmission{b6, b0, b5} {
		if !CompareGE(&b10.Channels[0], &other.Channels[0]) {
			t.Error("10 not ≥ a smaller bid")
		}
		if CompareGE(&other.Channels[0], &b10.Channels[0]) {
			t.Error("smaller bid ranked ≥ 10")
		}
	}
	if !CompareGE(&b6.Channels[0], &b5.Channels[0]) {
		t.Error("6 not ≥ 5")
	}
	// Equality leak: two encodings of the same value share all digests.
	b5b := mk(5)
	for _, d := range b5.Channels[0].Family.Digests() {
		if !b5b.Channels[0].Family.Contains(d) {
			t.Fatal("basic scheme should be deterministic per value")
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	p := testParams()
	enc, rng := newAdvancedEncoder(t, p, 9)
	if _, err := enc.Encode([]uint64{1}, rng); err == nil {
		t.Error("wrong-length bid vector accepted")
	}
	over := make([]uint64, p.Channels)
	over[0] = p.BMax + 1
	if _, err := enc.Encode(over, rng); err == nil {
		t.Error("bid above bmax accepted")
	}
}

func TestNewBidEncoderValidation(t *testing.T) {
	p := testParams()
	shortRing := testRing(t, Params{Channels: 1, Lambda: 1, MaxX: 9, MaxY: 9, BMax: 9}, 1, 1)
	if _, err := NewBidEncoder(p, shortRing, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("ring with too few channel keys accepted")
	}
	bad := p
	bad.Channels = 0
	ring := testRing(t, p, 1, 1)
	if _, err := NewBidEncoder(bad, ring, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad params accepted")
	}
}

func TestSubmissionBytesMatchesSetSizes(t *testing.T) {
	p := testParams()
	ring := testRing(t, p, 5, 8)
	enc, rng := newAdvancedEncoder(t, p, 10)
	sub, err := enc.Encode(make([]uint64, p.Channels), rng)
	if err != nil {
		t.Fatal(err)
	}
	w := p.BidWidth(ring)
	perChannelDigests := (w + 1) + prefix.MaxCoverSize(w)
	want := p.Channels * (perChannelDigests*16 + len(sub.Channels[0].Sealed))
	if got := SubmissionBytes(sub); got != want {
		t.Errorf("submission bytes = %d, want %d", got, want)
	}
}

func TestBasicSchemeZeroFrequencyLeak(t *testing.T) {
	// Section IV.C.1's second leak: the basic scheme encodes equal values
	// identically, and zeros dominate the bid table — so the most frequent
	// ciphertext across users IS the zero. The advanced scheme's rd-offset
	// plus cr-blinding destroys the frequency signal.
	p := testParams()
	ring := testRing(t, p, 5, 8)
	rng := rand.New(rand.NewSource(77))
	enc, err := NewBasicBidEncoder(p, ring, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 30 users: 60% bid zero on channel 0, the rest bid random positives.
	type fingerprint string
	counts := map[fingerprint]int{}
	zeroPrint := fingerprint("")
	for u := 0; u < 30; u++ {
		bids := make([]uint64, p.Channels)
		if u%5 >= 2 { // 60% zeros
			bids[0] = 0
		} else {
			bids[0] = uint64(rng.Intn(int(p.BMax))) + 1
		}
		sub, err := enc.Encode(bids, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Fingerprint = sorted family digests (what the auctioneer sees).
		ds := sub.Channels[0].Family.Digests()
		strs := make([]string, len(ds))
		for i, d := range ds {
			strs[i] = d.String()
		}
		sort.Strings(strs)
		fp := fingerprint(strings.Join(strs, "|"))
		counts[fp]++
		if bids[0] == 0 {
			zeroPrint = fp
		}
	}
	// The most frequent fingerprint must be the zero's.
	var best fingerprint
	for fp, c := range counts {
		if c > counts[best] {
			best = fp
		}
	}
	if best != zeroPrint {
		t.Fatal("frequency analysis failed to isolate zero under the basic scheme (leak should exist)")
	}
	if counts[best] != 18 {
		t.Fatalf("zero fingerprint seen %d times, want 18", counts[best])
	}

	// Advanced scheme: every user's zero encodes uniquely.
	advEnc, err := NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	advCounts := map[fingerprint]int{}
	for u := 0; u < 30; u++ {
		sub, err := advEnc.Encode(make([]uint64, p.Channels), rng)
		if err != nil {
			t.Fatal(err)
		}
		ds := sub.Channels[0].Family.Digests()
		strs := make([]string, len(ds))
		for i, d := range ds {
			strs[i] = d.String()
		}
		sort.Strings(strs)
		advCounts[fingerprint(strings.Join(strs, "|"))]++
	}
	// A zero's scaled value is drawn from rd·cr ≈ 48 slots, so occasional
	// birthday collisions among 30 zeros are expected — but no fingerprint
	// may dominate the histogram the way the basic scheme's zero does.
	// (Deployments size rd·cr to the expected population for exactly this
	// reason.)
	for fp, c := range advCounts {
		if c > 5 {
			t.Fatalf("advanced scheme fingerprint repeated %d times (%s...): frequency leak", c, string(fp)[:16])
		}
	}
}
