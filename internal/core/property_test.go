package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAdvancedOrderPreservationProperty is the masked-comparison soundness
// property over the full bid domain, including zeros: for undisguised
// encodings of a and b on the same channel,
//
//	a > b  ⇒  GE(a,b) ∧ ¬GE(b,a)
//	a = b  ⇒  GE is consistent in at least one direction
//	a < b  ⇒  GE(b,a) ∧ ¬GE(a,b)
func TestAdvancedOrderPreservationProperty(t *testing.T) {
	p := testParams()
	ring := testRing(t, p, 5, 8)
	rng := rand.New(rand.NewSource(99))
	enc, err := NewBidEncoder(p, ring, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	encode := func(b uint64) *ChannelBid {
		bids := make([]uint64, p.Channels)
		bids[0] = b
		sub, err := enc.Encode(bids, rng)
		if err != nil {
			t.Fatal(err)
		}
		return &sub.Channels[0]
	}
	prop := func(av, bv uint8) bool {
		a := uint64(av) % (p.BMax + 1)
		b := uint64(bv) % (p.BMax + 1)
		ca, cb := encode(a), encode(b)
		switch {
		case a > b:
			return CompareGE(ca, cb) && !CompareGE(cb, ca)
		case a < b:
			return CompareGE(cb, ca) && !CompareGE(ca, cb)
		default:
			// Equal plaintexts land in the same blinding slot; exactly one
			// strict direction (or a tie at identical scaled values).
			return CompareGE(ca, cb) || CompareGE(cb, ca)
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDisguisedEncodingStillComparableProperty: even disguised encodings
// must remain internally consistent — for any pair, at least one direction
// of GE holds (the comparator never "loses" a bid).
func TestDisguisedEncodingStillComparableProperty(t *testing.T) {
	p := testParams()
	ring := testRing(t, p, 5, 8)
	rng := rand.New(rand.NewSource(100))
	sampler, err := NewDisguiseSampler(DisguisePolicy{P0: 0.3, Decay: 0.9}, p.BMax)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewBidEncoder(p, ring, sampler, rng)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(av, bv uint8) bool {
		bidsA := make([]uint64, p.Channels)
		bidsB := make([]uint64, p.Channels)
		bidsA[0] = uint64(av) % (p.BMax + 1)
		bidsB[0] = uint64(bv) % (p.BMax + 1)
		sa, err := enc.Encode(bidsA, rng)
		if err != nil {
			return false
		}
		sb, err := enc.Encode(bidsB, rng)
		if err != nil {
			return false
		}
		return CompareGE(&sa.Channels[0], &sb.Channels[0]) || CompareGE(&sb.Channels[0], &sa.Channels[0])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMaskedMaxMatchesPlaintextMaxProperty: the auctioneer's max-search
// over a random masked column must return a bidder holding the plaintext
// maximum.
func TestMaskedMaxMatchesPlaintextMaxProperty(t *testing.T) {
	p := testParams()
	ring := testRing(t, p, 5, 8)
	rng := rand.New(rand.NewSource(101))
	prop := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 3 + local.Intn(8)
		bids := make([]uint64, n)
		encs := make([]*BidSubmission, n)
		var maxBid uint64
		for i := 0; i < n; i++ {
			bids[i] = uint64(local.Intn(int(p.BMax + 1)))
			if bids[i] > maxBid {
				maxBid = bids[i]
			}
			enc, err := NewBidEncoder(p, ring, nil, rng)
			if err != nil {
				return false
			}
			vec := make([]uint64, p.Channels)
			vec[0] = bids[i]
			encs[i], err = enc.Encode(vec, rng)
			if err != nil {
				return false
			}
		}
		// Linear max-scan with the masked comparator, as the allocator does.
		best := 0
		for i := 1; i < n; i++ {
			if CompareGE(&encs[i].Channels[0], &encs[best].Channels[0]) {
				best = i
			}
		}
		return bids[best] == maxBid
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
