package core

import (
	"errors"
	"fmt"
	"math/rand"

	"lppa/internal/mask"
	"lppa/internal/prefix"
)

// Params are the public protocol parameters every party agrees on before
// an auction round. Secret material (keys, rd, cr) lives in mask.KeyRing.
type Params struct {
	// Channels is the number k of auctioned channels.
	Channels int
	// Lambda is the interference half-range λ: users conflict when both
	// coordinate differences are strictly below 2λ (in grid units).
	Lambda uint64
	// MaxX and MaxY bound the coordinate domain (inclusive).
	MaxX, MaxY uint64
	// BMax is the public bid upper bound bmax.
	BMax uint64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Channels < 1 {
		return fmt.Errorf("core: channels %d must be ≥ 1", p.Channels)
	}
	if p.Lambda < 1 {
		return fmt.Errorf("core: lambda %d must be ≥ 1", p.Lambda)
	}
	if p.MaxX < 1 || p.MaxY < 1 {
		return fmt.Errorf("core: coordinate bounds (%d,%d) must be ≥ 1", p.MaxX, p.MaxY)
	}
	if p.BMax < 1 {
		return fmt.Errorf("core: bmax %d must be ≥ 1", p.BMax)
	}
	return nil
}

// CoordWidthX returns the prefix width for x coordinates.
func (p Params) CoordWidthX() int { return prefix.WidthFor(p.MaxX) }

// CoordWidthY returns the prefix width for y coordinates.
func (p Params) CoordWidthY() int { return prefix.WidthFor(p.MaxY) }

// ScaledMax returns the largest value in the blinded bid domain under a
// given key ring: cr·(bmax + rd + 1) − 1 (true bid bmax, offset rd,
// blinding slot cr−1).
func (p Params) ScaledMax(ring *mask.KeyRing) uint64 {
	return ring.CR*(p.BMax+ring.RD+1) - 1
}

// BidWidth returns the prefix width w of blinded bids.
func (p Params) BidWidth(ring *mask.KeyRing) int {
	return prefix.WidthFor(p.ScaledMax(ring))
}

// RangePadSize returns the padded cardinality 2w−2 of every bid range-
// prefix set, hiding the true cover size.
func (p Params) RangePadSize(ring *mask.KeyRing) int {
	return prefix.MaxCoverSize(p.BidWidth(ring))
}

// DisguisePolicy is a bidder's personal zero-disguise distribution
// (section IV.C.3): a zero bid stays zero with probability P0 and is
// disguised as value t ∈ [1, bmax] with probability p_t, where the p_t
// decay geometrically (p_1 ≥ p_2 ≥ … as the paper requires, so cheap
// disguises are likelier than auction-winning ones).
type DisguisePolicy struct {
	// P0 is the probability a zero bid remains zero. 1−P0 is the paper's
	// "zero-replace probability", the x axis of every Fig. 5 plot.
	P0 float64
	// Decay is the geometric ratio of successive p_t. Decay = 1 spreads
	// the disguise mass uniformly over [1, bmax] (the assumption of
	// Theorem 3); smaller values concentrate on low prices.
	Decay float64
}

// DefaultDisguise keeps zeros zero 70% of the time and decays disguise
// values gently.
func DefaultDisguise() DisguisePolicy { return DisguisePolicy{P0: 0.7, Decay: 0.97} }

// Validate checks the policy.
func (d DisguisePolicy) Validate() error {
	if d.P0 < 0 || d.P0 > 1 {
		return fmt.Errorf("core: p0 %f out of [0,1]", d.P0)
	}
	if d.P0 < 1 && (d.Decay <= 0 || d.Decay > 1) {
		return fmt.Errorf("core: decay %f out of (0,1]", d.Decay)
	}
	return nil
}

// ErrNoDisguise is returned by Sampler construction when the policy never
// disguises (P0 = 1); callers treat it as "disguise disabled".
var ErrNoDisguise = errors.New("core: policy never disguises")

// DisguiseSampler draws disguise values from a fixed policy. Construct
// once per (policy, bmax) pair; sampling is O(log bmax).
type DisguiseSampler struct {
	p0  float64
	cum []float64 // cumulative weights of t = 1..bmax, normalized to 1
}

// NewDisguiseSampler precomputes the truncated geometric CDF.
func NewDisguiseSampler(d DisguisePolicy, bmax uint64) (*DisguiseSampler, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if bmax < 1 {
		return nil, fmt.Errorf("core: bmax %d must be ≥ 1", bmax)
	}
	s := &DisguiseSampler{p0: d.P0}
	if d.P0 >= 1 {
		return s, nil
	}
	s.cum = make([]float64, bmax)
	w := 1.0
	total := 0.0
	for t := range s.cum {
		total += w
		s.cum[t] = total
		w *= d.Decay
	}
	for t := range s.cum {
		s.cum[t] /= total
	}
	return s, nil
}

// Sample returns (t, true) when the zero bid should be disguised as value
// t ∈ [1, bmax], or (0, false) when it stays zero.
func (s *DisguiseSampler) Sample(rng *rand.Rand) (uint64, bool) {
	if rng.Float64() < s.p0 || s.cum == nil {
		return 0, false
	}
	u := rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo + 1), true
}
