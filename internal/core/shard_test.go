package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"lppa/internal/geo"
	"lppa/internal/obs"
)

// testPlan builds a shard plan the way the round planner does — home tile
// by position, border-band visitors from the clamped interference square —
// but without the masking layer (plans are equivalent up to tile
// numbering, and the auctioneer only sees membership lists either way).
func testPlan(t *testing.T, p Params, pts []geo.Point, shards int) *ShardPlan {
	t.Helper()
	tg, err := geo.NewTileGrid(p.MaxX, p.MaxY, p.Lambda, shards)
	if err != nil {
		t.Fatal(err)
	}
	plan := &ShardPlan{Home: make([]int, len(pts))}
	slot := map[uint64]int{}
	for i, pt := range pts {
		tx, ty := tg.TileOf(pt)
		id := tg.ID(tx, ty)
		s, ok := slot[id]
		if !ok {
			s = len(plan.Tiles)
			slot[id] = s
			plan.Tiles = append(plan.Tiles, ShardTile{})
		}
		plan.Tiles[s].Residents = append(plan.Tiles[s].Residents, i)
		plan.Home[i] = s
	}
	for i, pt := range pts {
		for _, id := range tg.Touched(pt, 2*p.Lambda-1)[1:] {
			if s, ok := slot[id]; ok {
				plan.Tiles[s].Visitors = append(plan.Tiles[s].Visitors, i)
			}
		}
	}
	return plan
}

// TestShardedAuctioneerIdentity pins the core contract: for every density
// shape, candidate strategy, representation, and worker count, the sharded
// auctioneer's conflict graph, rankings, and allocation are bit-identical
// to the unsharded one.
func TestShardedAuctioneerIdentity(t *testing.T) {
	p := testParams()
	const n = 60
	for _, shape := range densityShapes {
		pts := shapePoints(p, shape, n, 42)
		rng := rand.New(rand.NewSource(7))
		bids := make([][]uint64, n)
		for i := range bids {
			bids[i] = make([]uint64, p.Channels)
			for r := range bids[i] {
				bids[i][r] = uint64(rng.Intn(int(p.BMax) + 1))
			}
		}
		oracle := buildRound(t, p, pts, bids, 99)
		wantGraph := oracle.ConflictGraph()
		wantRanks := oracle.Rankings()
		wantAwards, err := oracle.AllocateAwards(rand.New(rand.NewSource(55)))
		if err != nil {
			t.Fatal(err)
		}

		for _, shards := range []int{1, 4, 9} {
			for _, workers := range []int{1, 4} {
				for _, mode := range []string{"plain", "indexed", "nointern"} {
					tag := fmt.Sprintf("%s/shards=%d/workers=%d/%s", shape, shards, workers, mode)
					auc := buildRound(t, p, pts, bids, 99)
					auc.SetWorkers(workers)
					switch mode {
					case "indexed":
						auc.EnableIndexedCandidates()
					case "nointern":
						auc.DisableInterning()
					}
					if err := auc.SetShardPlan(testPlan(t, p, pts, shards)); err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					if !auc.ConflictGraph().Equal(wantGraph) {
						t.Errorf("%s: sharded graph differs from oracle", tag)
					}
					if !reflect.DeepEqual(auc.Rankings(), wantRanks) {
						t.Errorf("%s: sharded rankings differ from oracle", tag)
					}
					awards, err := auc.AllocateAwards(rand.New(rand.NewSource(55)))
					if err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					if !reflect.DeepEqual(awards, wantAwards) {
						t.Errorf("%s: sharded awards differ from oracle\n got %v\nwant %v", tag, awards, wantAwards)
					}
				}
			}
		}
	}
}

// TestSetShardPlanValidation covers the plan's integrity checks.
func TestSetShardPlanValidation(t *testing.T) {
	p := testParams()
	auc, pts, _ := randomRound(t, p, 8, 3)
	n := 8
	good := func() *ShardPlan { return testPlan(t, p, pts, 4) }

	if err := auc.SetShardPlan(&ShardPlan{Home: make([]int, n-1)}); err == nil {
		t.Error("short Home accepted")
	}
	bad := good()
	bad.Tiles[0].Residents = append(bad.Tiles[0].Residents, bad.Tiles[0].Residents[0])
	if err := auc.SetShardPlan(bad); err == nil {
		t.Error("duplicate resident accepted")
	}
	bad = good()
	bad.Home[bad.Tiles[0].Residents[0]]++
	if err := auc.SetShardPlan(bad); err == nil {
		t.Error("home/resident mismatch accepted")
	}
	bad = good()
	bad.Tiles[0].Visitors = append(bad.Tiles[0].Visitors, bad.Tiles[0].Residents[0])
	if err := auc.SetShardPlan(bad); err == nil {
		t.Error("visitor of own tile accepted")
	}
	bad = good()
	bad.Tiles[0].Residents = bad.Tiles[0].Residents[1:]
	if err := auc.SetShardPlan(bad); err == nil {
		t.Error("unplaced bidder accepted")
	}
	if err := auc.SetShardPlan(good()); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	auc.ConflictGraph()
	if err := auc.SetShardPlan(good()); err == nil {
		t.Error("re-sharding after graph build accepted")
	}

	if got := auc.ShardSizes(); len(got) == 0 {
		t.Error("ShardSizes empty on sharded auctioneer")
	} else {
		total := 0
		for _, s := range got {
			total += s
		}
		if total != n {
			t.Errorf("ShardSizes sum = %d, want %d", total, n)
		}
	}
}

// TestShardSkewGuardPerTile pins the satellite fix: the indexed skew guard
// is calibrated to each tile's population, not the global n. 70 distinct
// bidders sharing one x column inside one tile post that column's family
// digests 70 times, exceeding the tile's auto threshold max(64, G/8), and
// are flagged hot there — while the global index over all 1000 bidders
// (threshold n/8 = 125) sees no hot digest at all. The points are distinct
// on purpose: co-located bidders collapse into one distinct-location group
// in the sharded build, so a same-point stack can never skew a tile index.
func TestShardSkewGuardPerTile(t *testing.T) {
	p := Params{Channels: 1, Lambda: 2, MaxX: 999, MaxY: 999, BMax: 10}
	const stacked, spread = 70, 930
	rng := rand.New(rand.NewSource(8))
	pts := make([]geo.Point, 0, stacked+spread)
	for i := 0; i < stacked; i++ {
		pts = append(pts, geo.Point{X: 5, Y: uint64(i)})
	}
	for i := 0; i < spread; i++ {
		pts = append(pts, geo.Point{X: uint64(300 + rng.Intn(700)), Y: uint64(300 + rng.Intn(700))})
	}
	bids := make([][]uint64, len(pts))
	for i := range bids {
		bids[i] = []uint64{uint64(rng.Intn(int(p.BMax) + 1))}
	}

	global := buildRound(t, p, pts, bids, 12)
	global.EnableIndexedCandidates()
	if st := global.IndexStats(); st.HotDigests != 0 {
		t.Fatalf("global index HotDigests = %d, want 0 (threshold n/8 = %d > stack of %d)",
			st.HotDigests, len(pts)/8, stacked)
	}

	sharded := buildRound(t, p, pts, bids, 12)
	sharded.EnableIndexedCandidates()
	if err := sharded.SetShardPlan(testPlan(t, p, pts, 64)); err != nil {
		t.Fatal(err)
	}
	stats := sharded.ShardIndexStats()
	if stats == nil {
		t.Fatal("ShardIndexStats nil on sharded indexed auctioneer")
	}
	hotTiles, hotRows := 0, 0
	for _, st := range stats {
		if st.HotDigests > 0 {
			hotTiles++
			hotRows += st.HotRows
		}
	}
	if hotTiles == 0 {
		t.Fatalf("no tile tripped the per-tile skew guard; stats = %+v", stats)
	}
	if hotRows < stacked {
		t.Errorf("hot rows = %d, want at least the %d stacked bidders", hotRows, stacked)
	}

	// And the guard difference never changes the graph.
	if !sharded.ConflictGraph().Equal(global.ConflictGraph()) {
		t.Error("sharded graph differs from global indexed graph")
	}
}

// TestShardObserverCounters pins the per-shard telemetry satellite: an
// observed sharded round exports lppa_shard_rank_builds_total and
// lppa_shard_rank_memo_hits_total per shard, the builds summing to
// tiles × columns built, while results stay identical to unobserved.
func TestShardObserverCounters(t *testing.T) {
	p := testParams()
	auc, pts, bids := randomRound(t, p, 40, 21)
	reg := obs.NewRegistry()
	auc.SetObserver(reg)
	if err := auc.SetShardPlan(testPlan(t, p, pts, 4)); err != nil {
		t.Fatal(err)
	}
	awards, err := auc.AllocateAwards(rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}

	plain := buildRound(t, p, pts, bids, 21+1000)
	if err := plain.SetShardPlan(testPlan(t, p, pts, 4)); err != nil {
		t.Fatal(err)
	}
	plainAwards, err := plain.AllocateAwards(rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(awards, plainAwards) {
		t.Fatal("observed sharded awards differ from unobserved")
	}

	tiles := len(auc.ShardSizes())
	snap := reg.Snapshot()
	var builds, hits uint64
	for s := 0; s < tiles; s++ {
		builds += snap.Counters[fmt.Sprintf(`lppa_shard_rank_builds_total{shard="%d"}`, s)]
		hits += snap.Counters[fmt.Sprintf(`lppa_shard_rank_memo_hits_total{shard="%d"}`, s)]
	}
	if want := uint64(tiles * p.Channels); builds != want {
		t.Errorf("shard rank builds = %d, want %d (tiles × channels)", builds, want)
	}
	if hits == 0 {
		t.Error("no per-shard memo hits recorded during allocation")
	}
	if hits != snap.Counters["lppa_auctioneer_rank_memo_hits_total"] {
		t.Errorf("per-shard hits %d != total memo hits %d",
			hits, snap.Counters["lppa_auctioneer_rank_memo_hits_total"])
	}
}
