package core

import (
	"math/rand"
	"sort"
	"testing"

	"lppa/internal/auction"
	"lppa/internal/conflict"
	"lppa/internal/geo"
)

// buildRound creates n bidders with given plaintext bids and positions and
// returns the assembled auctioneer plus ground truth.
func buildRound(t *testing.T, p Params, points []geo.Point, bids [][]uint64, seed int64) *Auctioneer {
	t.Helper()
	ring := testRing(t, p, 5, 8)
	rng := rand.New(rand.NewSource(seed))
	locs := make([]*LocationSubmission, len(points))
	subs := make([]*BidSubmission, len(points))
	for i := range points {
		var err error
		locs[i], err = NewLocationSubmission(p, ring, points[i])
		if err != nil {
			t.Fatal(err)
		}
		enc, err := NewBidEncoder(p, ring, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		subs[i], err = enc.Encode(bids[i], rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	auc, err := NewAuctioneer(p, locs, subs)
	if err != nil {
		t.Fatal(err)
	}
	return auc
}

func randomRound(t *testing.T, p Params, n int, seed int64) (*Auctioneer, []geo.Point, [][]uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	points := make([]geo.Point, n)
	bids := make([][]uint64, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(int(p.MaxX + 1))), Y: uint64(rng.Intn(int(p.MaxY + 1)))}
		bids[i] = make([]uint64, p.Channels)
		for r := range bids[i] {
			if rng.Intn(3) > 0 {
				bids[i][r] = uint64(rng.Intn(int(p.BMax))) + 1
			}
		}
	}
	return buildRound(t, p, points, bids, seed+1000), points, bids
}

func TestNewAuctioneerValidation(t *testing.T) {
	p := testParams()
	if _, err := NewAuctioneer(p, nil, nil); err == nil {
		t.Error("empty round accepted")
	}
	if _, err := NewAuctioneer(p, make([]*LocationSubmission, 2), make([]*BidSubmission, 1)); err == nil {
		t.Error("mismatched submission counts accepted")
	}
	badSub := &BidSubmission{Channels: make([]ChannelBid, 1)}
	if _, err := NewAuctioneer(p, make([]*LocationSubmission, 1), []*BidSubmission{badSub}); err == nil {
		t.Error("wrong channel count accepted")
	}
}

func TestRankChannelMatchesPlaintextOrder(t *testing.T) {
	p := testParams()
	auc, _, bids := randomRound(t, p, 25, 1)
	for r := 0; r < p.Channels; r++ {
		ranked := auc.RankChannel(r)
		if len(ranked) != 25 {
			t.Fatalf("channel %d ranking has %d entries", r, len(ranked))
		}
		// Plaintext bids must be non-increasing along the masked ranking.
		for x := 1; x < len(ranked); x++ {
			if bids[ranked[x-1]][r] < bids[ranked[x]][r] {
				t.Fatalf("channel %d: masked ranking out of order: bid[%d]=%d before bid[%d]=%d",
					r, ranked[x-1], bids[ranked[x-1]][r], ranked[x], bids[ranked[x]][r])
			}
		}
	}
}

func TestRankingsShape(t *testing.T) {
	p := testParams()
	auc, _, _ := randomRound(t, p, 10, 2)
	ranks := auc.Rankings()
	if len(ranks) != p.Channels {
		t.Fatalf("rankings = %d channels", len(ranks))
	}
	for r, order := range ranks {
		seen := make([]int, len(order))
		copy(seen, order)
		sort.Ints(seen)
		for i, v := range seen {
			if v != i {
				t.Fatalf("channel %d ranking is not a permutation: %v", r, order)
			}
		}
	}
}

func TestRankChannelPanicsOutOfRange(t *testing.T) {
	p := testParams()
	auc, _, _ := randomRound(t, p, 5, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	auc.RankChannel(p.Channels)
}

func TestPrivateAllocationInvariants(t *testing.T) {
	p := testParams()
	auc, points, _ := randomRound(t, p, 30, 4)
	rng := rand.New(rand.NewSource(5))
	as, err := auc.Allocate(rng)
	if err != nil {
		t.Fatal(err)
	}
	plainGraph := conflict.BuildPlain(points, p.Lambda)
	if err := auction.VerifyInterferenceFree(as, plainGraph); err != nil {
		t.Error(err)
	}
	if err := auction.VerifyOneChannelPerBidder(as); err != nil {
		t.Error(err)
	}
	if len(as) == 0 {
		t.Error("no assignments at all")
	}
}

func TestPrivateAllocationAwardsTopBidderInFullConflict(t *testing.T) {
	// All bidders stacked in one cell: a single channel goes to the
	// highest bid.
	p := Params{Channels: 1, Lambda: 3, MaxX: 99, MaxY: 99, BMax: 100}
	points := []geo.Point{{X: 5, Y: 5}, {X: 5, Y: 5}, {X: 5, Y: 5}}
	bids := [][]uint64{{10}, {90}, {40}}
	auc := buildRound(t, p, points, bids, 6)
	as, err := auc.Allocate(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || as[0].Bidder != 1 {
		t.Fatalf("assignments = %v, want single award to bidder 1", as)
	}
}

func TestChargeRequestsShape(t *testing.T) {
	p := testParams()
	auc, _, _ := randomRound(t, p, 8, 8)
	as, err := auc.Allocate(rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	reqs := auc.ChargeRequests(as)
	if len(reqs) != len(as) {
		t.Fatalf("%d requests for %d assignments", len(reqs), len(as))
	}
	ring := testRing(t, p, 5, 8)
	wantFam := p.BidWidth(ring) + 1
	for i, req := range reqs {
		if req.Bidder != as[i].Bidder || req.Channel != as[i].Channel {
			t.Errorf("request %d misattributed", i)
		}
		if len(req.Sealed) == 0 {
			t.Errorf("request %d has empty ciphertext", i)
		}
		if len(req.Family) != wantFam {
			t.Errorf("request %d family size %d, want %d", i, len(req.Family), wantFam)
		}
	}
}
