package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lppa/internal/conflict"
	"lppa/internal/mask"
)

// Tile-sharded auctioneer execution (DESIGN.md §5g). The conflict relation
// reaches at most 2λ−1 in each coordinate, so once bidders are grouped
// into tiles whose side is a multiple of 2λ (geo.TileGrid), every conflict
// pair is co-located in at least one tile — as a resident plus a resident
// or border-band visitor — and the union of per-tile conflict graphs is
// exactly the global graph. The same locality shards the rank-memo sort:
// per-tile stable sorts merged under the column's total order reproduce
// the global stable sort bit for bit. Allocation itself stays one global
// sweep (its rng consumption is inherently sequential) but switches to the
// rank-cursor allocator (auction.AllocateAwardsOrdered), which the memos
// feed directly. Everything here is bit-identical to the unsharded round;
// only the work to compute it changes: O(n²) → O(Σᵢ nᵢ² + border).

// ShardTile lists one tile's bidders. Residents live in the tile (each
// bidder is a resident of exactly one tile); Visitors live elsewhere but
// their interference square overlaps this tile (the border band), so
// resident–visitor pairs cover every cross-tile conflict. Both slices are
// ascending by bidder index.
type ShardTile struct {
	Residents []int
	Visitors  []int
}

// ShardPlan is the planner's output: the tile membership lists and each
// bidder's home tile. OnShard, when non-nil, is invoked at the start of
// each tile's conflict-graph build (possibly from a worker goroutine) and
// the returned func with the tile's confirmed edge count when it finishes
// — the round layer hangs per-shard tracer spans on it.
type ShardPlan struct {
	Tiles   []ShardTile
	Home    []int
	OnShard func(shard, residents, visitors int) func(edges int)
}

// SetShardPlan switches the auctioneer onto tile-sharded execution: the
// conflict graph is built per tile and merged, rank memos are built by
// per-tile sort plus ordered merge, and allocation runs the rank-cursor
// engine. Results are bit-identical to the unsharded auctioneer. Call
// before the first ConflictGraph/GE/Allocate use (like the other knobs,
// the lazily built caches cannot be re-sharded); nil reverts to unsharded.
func (a *Auctioneer) SetShardPlan(p *ShardPlan) error {
	if a.graph != nil || a.rank != nil || a.iloc != nil {
		return fmt.Errorf("core: SetShardPlan after caches were built")
	}
	if p == nil {
		a.plan = nil
		return nil
	}
	n := a.N()
	if len(p.Home) != n {
		return fmt.Errorf("core: shard plan homes %d bidders, want %d", len(p.Home), n)
	}
	seen := make([]bool, n)
	placed := 0
	for s := range p.Tiles {
		t := &p.Tiles[s]
		for _, i := range t.Residents {
			if i < 0 || i >= n {
				return fmt.Errorf("core: shard %d resident %d out of range", s, i)
			}
			if p.Home[i] != s {
				return fmt.Errorf("core: bidder %d resident of shard %d but homed to %d", i, s, p.Home[i])
			}
			if seen[i] {
				return fmt.Errorf("core: bidder %d resident of two shards", i)
			}
			seen[i] = true
			placed++
		}
		for _, i := range t.Visitors {
			if i < 0 || i >= n {
				return fmt.Errorf("core: shard %d visitor %d out of range", s, i)
			}
			if p.Home[i] == s {
				return fmt.Errorf("core: bidder %d visits its own shard %d", i, s)
			}
		}
	}
	if placed != n {
		return fmt.Errorf("core: shard plan places %d of %d bidders", placed, n)
	}
	a.plan = p
	if a.ob != nil {
		a.ob.ensureShardCounters(len(p.Tiles))
	}
	return nil
}

// ShardSizes reports the resident count of every tile — each bidder's tile
// anonymity set from the auctioneer's perspective, the privacy knob the
// audit layer surfaces. Nil when unsharded.
func (a *Auctioneer) ShardSizes() []int {
	if a.plan == nil {
		return nil
	}
	out := make([]int, len(a.plan.Tiles))
	for s := range a.plan.Tiles {
		out[s] = len(a.plan.Tiles[s].Residents)
	}
	return out
}

// ShardIndexStats describes each tile's candidate index after a sharded
// indexed conflict-graph build (forcing the build if needed): the skew
// guard inside each tile is calibrated to that tile's population, not the
// global n. Nil when unsharded, not indexed, or interning is disabled.
func (a *Auctioneer) ShardIndexStats() []mask.IndexStats {
	if a.plan == nil || a.noIntern || !a.indexed {
		return nil
	}
	a.ConflictGraph()
	return append([]mask.IndexStats(nil), a.shardIx...)
}

// shardWorkers normalizes the goroutine count for a sweep over the tiles.
func (a *Auctioneer) shardWorkers() int {
	if a.workers > 1 {
		return mask.Workers(a.workers, len(a.plan.Tiles))
	}
	return 1
}

// forEachTile runs fn(t) for every tile, striped across the worker count.
func (a *Auctioneer) forEachTile(fn func(t int)) {
	tiles := len(a.plan.Tiles)
	workers := a.shardWorkers()
	if workers <= 1 {
		for t := 0; t < tiles; t++ {
			fn(t)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for t := w; t < tiles; t += workers {
				fn(t)
			}
		}(w)
	}
	wg.Wait()
}

// mergeAscending merges two ascending disjoint index slices.
func mergeAscending(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// buildGraphSharded is buildGraph's tile-sharded twin: each tile evaluates
// the exact conflict predicate over its own members (residents plus border
// visitors) — through a tile-local candidate index in indexed mode — and
// the per-tile edge lists are merged into one graph. Coverage: if i and j
// conflict, each lies inside the other's interference square, so j is a
// member (resident or visitor) of i's home tile and vice versa; every true
// edge is therefore proposed by at least one tile, and AddEdge dedupes the
// border pairs both sides propose. The merged graph is bit-identical to
// the unsharded build.
func (a *Auctioneer) buildGraphSharded() *conflict.Graph {
	n := len(a.locs)
	plan := a.plan
	tiles := plan.Tiles

	var calls, rejects atomic.Uint64
	var pred func(i, j int) bool
	var iloc []internedLocation
	var keys []string
	useIndex := false
	if a.noIntern {
		pred = func(i, j int) bool { return Conflicts(a.locs[i], a.locs[j]) }
		if a.ob != nil {
			pred = func(i, j int) bool {
				c := uint64(1)
				ok := a.locs[i].XFamily.Intersects(a.locs[j].XRange)
				if ok {
					c++
					ok = a.locs[i].YFamily.Intersects(a.locs[j].YRange)
				}
				calls.Add(c)
				return ok
			}
		}
	} else {
		iloc, _ = a.internedView()
		useIndex = a.indexed
		pred = func(i, j int) bool { return iloc[i].conflicts(&iloc[j]) }
		if a.ob != nil {
			pred = func(i, j int) bool {
				var st mask.IntersectStats
				ok := iloc[i].conflictsCounted(&iloc[j], &st)
				calls.Add(st.Calls)
				rejects.Add(st.BloomRejects)
				return ok
			}
		}
		keys = locationKeys(iloc)
	}

	// Per-tile edge lists (packed i<<32|j with i < j), merged serially
	// below: workers never touch the shared graph's bitset words.
	edges := make([][]uint64, len(tiles))
	var ixStats []mask.IndexStats
	if useIndex {
		ixStats = make([]mask.IndexStats, len(tiles))
	}
	var scanned, emitted atomic.Uint64

	a.forEachTile(func(t int) {
		tile := &tiles[t]
		var done func(int)
		if plan.OnShard != nil {
			done = plan.OnShard(t, len(tile.Residents), len(tile.Visitors))
		}
		members := mergeAscending(tile.Residents, tile.Visitors)
		var out []uint64
		if keys != nil {
			// Distinct-location grouping: co-located bidders have identical
			// masked families (location masking is deterministic under the
			// shared key), so the predicate is evaluated once per distinct
			// location pair and its verdict fanned out to every member
			// cross-pair. Same-location pairs are unconditional edges — the
			// exact predicate is Chebyshev distance < 2λ, and distance 0
			// always qualifies. In dense tiles this collapses the quadratic
			// sweep from members² to distinct-locations².
			groupOf := make(map[string]int, len(members))
			groups := make([][]int, 0, len(members))
			for _, m := range members {
				k := keys[m]
				if g, ok := groupOf[k]; ok {
					groups[g] = append(groups[g], m)
				} else {
					groupOf[k] = len(groups)
					groups = append(groups, []int{m})
				}
			}
			emit := func(A, B []int) {
				for _, i := range A {
					for _, j := range B {
						if i < j {
							out = append(out, uint64(i)<<32|uint64(j))
						} else {
							out = append(out, uint64(j)<<32|uint64(i))
						}
					}
				}
			}
			intra := func(A []int) {
				for x := range A {
					for y := x + 1; y < len(A); y++ {
						out = append(out, uint64(A[x])<<32|uint64(A[y]))
					}
				}
			}
			if useIndex {
				// Tile-local inverted index over one representative per
				// distinct location: groups are numbered 0..G-1 in first-
				// appearance order, and the skew guard's auto threshold
				// max(64, G/8) is calibrated to the tile's distinct
				// population G.
				ix := mask.NewIndex(len(groups))
				for _, A := range groups {
					ix.Add(iloc[A[0]].xFamily, iloc[A[0]].xRange)
				}
				cur := ix.Cursor()
				for ga, A := range groups {
					intra(A)
					for _, gb := range cur.Row(ga) {
						if B := groups[gb]; pred(A[0], B[0]) {
							emit(A, B)
						}
					}
				}
				s, e := cur.Stats()
				scanned.Add(s)
				emitted.Add(e)
				ixStats[t] = ix.Stats()
			} else {
				for ga, A := range groups {
					intra(A)
					for _, B := range groups[ga+1:] {
						if pred(A[0], B[0]) {
							emit(A, B)
						}
					}
				}
			}
		} else {
			// noIntern: no canonical IDs to group on — plain member sweep.
			for li, gi := range members {
				for _, gj := range members[li+1:] {
					if pred(gi, gj) {
						out = append(out, uint64(gi)<<32|uint64(gj))
					}
				}
			}
		}
		edges[t] = out
		if done != nil {
			done(len(out))
		}
	})

	g := conflict.NewGraph(n)
	for _, out := range edges {
		for _, e := range out {
			g.AddEdge(int(e>>32), int(uint32(e)))
		}
	}
	a.shardIx = ixStats

	if a.ob != nil {
		a.ob.comparisons.Add(calls.Load())
		a.ob.bloomRejects.Add(rejects.Load())
		if useIndex {
			a.ob.indexPostings.Add(scanned.Load())
			a.ob.indexCandidates.Add(emitted.Load())
			a.ob.indexConfirms.Add(uint64(g.Edges()))
		}
	}
	return g
}

// locationKeys derives one grouping key per bidder from the interned IDs
// of its coordinate families. The masked family determines the coordinate
// (the full-width prefix differs between any two values) and interned IDs
// are canonical within the auctioneer's dictionary, so keys[i] == keys[j]
// exactly when i and j submitted the same location. The X-run length is
// prefixed so (xFamily, yFamily) boundaries cannot alias across bidders.
func locationKeys(iloc []internedLocation) []string {
	keys := make([]string, len(iloc))
	var ids []uint32
	var buf []byte
	for i := range iloc {
		ids = iloc[i].xFamily.AppendIDs(ids[:0])
		nx := len(ids)
		ids = iloc[i].yFamily.AppendIDs(ids)
		buf = buf[:0]
		buf = append(buf, byte(nx), byte(nx>>8))
		for _, id := range ids {
			buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		keys[i] = string(buf)
	}
	return keys
}

// shardedOrder builds column r's rank order by stable-sorting each tile's
// residents independently (in parallel when workers allow) and merging the
// runs under the column's total order. Identity argument: the global
// stable sort emits bidders sorted by (bid descending, index ascending);
// each tile's residents are an index-ascending subsequence, so their
// stable sort is sorted under the same key; merging with the tie rule
// "equal bids → smaller index first" is therefore exactly the global
// order. GE calls land in st (per-tile instances are folded in before the
// merge's own calls).
//
// With an interned column in hand the masked comparisons collapse to
// integers first: bidders with identical digest sets (same interned IDs)
// are one bid class, the class representatives are sorted once under the
// masked order with ge-equal classes folded into one value rank, and the
// per-tile sorts and merges then compare precomputed ranks. The rank
// respects exactly the column's total preorder, so the result is the same
// stable sort; only the number of masked intersections changes (O(C log C)
// for C classes instead of O(n log n) — disguise-heavy columns degrade
// gracefully to C ≈ n).
func (a *Auctioneer) shardedOrder(r int, mk geFactory, col []internedChannelBid, st *mask.IntersectStats) []int {
	tiles := a.plan.Tiles
	runs := make([][]int, len(tiles))
	stats := make([]mask.IntersectStats, len(tiles))

	var precedeTile func(ge func(r, i, j int) bool) func(i, j int) bool
	if col != nil {
		valueRank := bidValueRanks(r, col, mk(st))
		precedeTile = func(func(r, i, j int) bool) func(i, j int) bool {
			return func(i, j int) bool {
				if valueRank[i] != valueRank[j] {
					return valueRank[i] < valueRank[j]
				}
				return i < j // tie: ascending index, the stable-sort rule
			}
		}
	} else {
		precedeTile = func(ge func(r, i, j int) bool) func(i, j int) bool {
			return func(i, j int) bool {
				if !ge(r, i, j) {
					return false // j strictly above i
				}
				if !ge(r, j, i) {
					return true // i strictly above j
				}
				return i < j // tie: ascending index, the stable-sort rule
			}
		}
	}

	a.forEachTile(func(t int) {
		precede := precedeTile(mk(&stats[t]))
		order := append([]int(nil), tiles[t].Residents...)
		sort.SliceStable(order, func(x, y int) bool {
			return precede(order[x], order[y])
		})
		runs[t] = order
	})
	for t := range stats {
		st.Calls += stats[t].Calls
		st.BloomRejects += stats[t].BloomRejects
	}
	if a.ob != nil {
		for t := range tiles {
			a.ob.shardRankBuilds[t].Inc()
		}
	}

	precede := precedeTile(mk(st))
	for len(runs) > 1 {
		next := make([][]int, 0, (len(runs)+1)/2)
		for x := 0; x+1 < len(runs); x += 2 {
			next = append(next, mergeRuns(runs[x], runs[x+1], precede))
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}
		runs = next
	}
	if len(runs) == 0 {
		return []int{}
	}
	return runs[0]
}

// bidValueRanks maps every bidder to a dense value rank (0 = highest bid)
// consistent with column r's masked total preorder. Bidders sharing one
// family digest set form a class: the full-width prefix makes the family
// injective in the blinded value, so class members carry the same value
// and the same non-padding range cover — identical ge outcomes on both
// sides under the no-digest-collision assumption CompareGE itself rests
// on (cover padding is random 16-byte noise that never equals a real
// family digest). Class representatives are stable-sorted under ge and
// adjacent ge-equal classes (distinct blinding slots, equal displayed
// value) fold into one rank, so valueRank[i] < valueRank[j] ⟺ i is
// strictly above j and equality means a masked tie. Masked-intersection
// cost is O(C log C) for C classes — C is the count of distinct blinded
// values, far below n for narrow bid ledgers, and degrades gracefully to
// n when every blinded value is unique.
func bidValueRanks(r int, col []internedChannelBid, ge func(r, i, j int) bool) []int32 {
	classOf := make([]int32, len(col))
	byKey := make(map[string]int32, len(col))
	var reps []int
	var ids []uint32
	var buf []byte
	for i := range col {
		ids = col[i].family.AppendIDs(ids[:0])
		buf = buf[:0]
		for _, id := range ids {
			buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		c, ok := byKey[string(buf)]
		if !ok {
			c = int32(len(reps))
			byKey[string(buf)] = c
			reps = append(reps, i)
		}
		classOf[i] = c
	}

	repOrder := make([]int, len(reps))
	for x := range repOrder {
		repOrder[x] = x
	}
	sort.SliceStable(repOrder, func(x, y int) bool {
		i, j := reps[repOrder[x]], reps[repOrder[y]]
		return ge(r, i, j) && !ge(r, j, i)
	})
	rankOf := make([]int32, len(reps))
	rk := int32(0)
	for x, c := range repOrder {
		if x > 0 {
			i, prev := reps[c], reps[repOrder[x-1]]
			if !(ge(r, i, prev) && ge(r, prev, i)) {
				rk++ // strictly below the previous class: new value rank
			}
		}
		rankOf[c] = rk
	}

	out := make([]int32, len(col))
	for i, c := range classOf {
		out[i] = rankOf[c]
	}
	return out
}

// mergeRuns merges two runs already sorted under precede.
func mergeRuns(a, b []int, precede func(i, j int) bool) []int {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if precede(a[i], b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
