package core

import "lppa/internal/mask"

// SubmissionBytes measures the wire size of a masked bid submission: every
// digest plus the sealed ciphertexts. Theorem 4 predicts the digest part as
// h·k·(3w−1)(w+1) bits per bidder; the benchmark harness compares this
// measurement against the formula.
func SubmissionBytes(s *BidSubmission) int {
	total := 0
	for i := range s.Channels {
		cb := &s.Channels[i]
		total += (cb.Family.Len()+cb.Range.Len())*mask.DigestSize + len(cb.Sealed)
	}
	return total
}

// LocationBytes measures the wire size of a masked location submission.
func LocationBytes(l *LocationSubmission) int {
	return (l.XFamily.Len() + l.YFamily.Len() + l.XRange.Len() + l.YRange.Len()) * mask.DigestSize
}
