// Package core implements LPPA, the Location Privacy Preserving Dynamic
// Spectrum Auction of Liu et al. (ICDCS 2013) — the paper's primary
// contribution. It has two halves:
//
// PPBS (Privacy Preserving Bid Submission, section IV):
//
//   - Private Location Submission: each bidder masks the prefix family of
//     its coordinates and the prefix cover of its interference range under
//     the shared HMAC key g0. The auctioneer intersects masked sets to
//     learn *only* the pairwise conflict relation, never a coordinate.
//   - Private Bid Submission: each bid is blinded (offset rd, multiplier
//     cr), optionally disguised (a zero bid masquerades as value t with
//     probability p_t), encoded as a masked prefix family plus a masked,
//     padded range cover under the per-channel key gb_r, and sealed for
//     the TTP under gc. The auctioneer can compare any two bids on the
//     same channel (order-preserving) but cannot compare across channels,
//     recover values, or spot zeros.
//
// PSD (Private Spectrum Distribution, section V):
//
//   - Allocation: the paper's greedy Algorithm 3 runs unchanged over
//     masked bids, using prefix intersection as the max-search primitive.
//   - Charging: winners' sealed bids go to the TTP (package ttp), which
//     unblinds, rejects disguised zeros (voiding those awards), verifies
//     prefix consistency, and returns first-price charges.
//
// The package is written bidder-side / auctioneer-side: BidderAgent holds
// secrets and produces submissions; Auctioneer consumes only submissions
// and exposes exactly the operations the protocol grants it. Everything an
// attacker could exploit is available through Auctioneer's transcript
// methods, which the attack package consumes in the Fig. 5 experiments.
package core
