package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"lppa/internal/conflict"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
)

// Density shapes for the indexed-candidate equivalence suite: the index
// must agree with the all-pairs oracle from the sparse regime (few posting
// collisions) through pathological stacking (every posting list hot).

func shapePoints(p Params, shape string, n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	clamp := func(v int64, max uint64) uint64 {
		if v < 0 {
			return 0
		}
		if uint64(v) > max {
			return max
		}
		return uint64(v)
	}
	switch shape {
	case "uniform":
		for i := range pts {
			pts[i] = geo.Point{X: uint64(rng.Intn(int(p.MaxX + 1))), Y: uint64(rng.Intn(int(p.MaxY + 1)))}
		}
	case "clustered":
		centers := make([]geo.Point, 3)
		for c := range centers {
			centers[c] = geo.Point{X: uint64(rng.Intn(int(p.MaxX + 1))), Y: uint64(rng.Intn(int(p.MaxY + 1)))}
		}
		for i := range pts {
			c := centers[rng.Intn(len(centers))]
			pts[i] = geo.Point{
				X: clamp(int64(c.X)+int64(rng.NormFloat64()*3), p.MaxX),
				Y: clamp(int64(c.Y)+int64(rng.NormFloat64()*3), p.MaxY),
			}
		}
	case "line":
		// One shared row: X postings collide massively, Y decides conflicts.
		for i := range pts {
			pts[i] = geo.Point{X: uint64(rng.Intn(int(p.MaxX + 1))), Y: p.MaxY / 2}
		}
	case "stacked":
		// Few distinct positions, heavily duplicated — every posting list of
		// the occupied digests is maximally hot.
		for i := range pts {
			pts[i] = geo.Point{X: uint64(5 * rng.Intn(3)), Y: uint64(5 * rng.Intn(3))}
		}
	default:
		panic("unknown shape " + shape)
	}
	return pts
}

var densityShapes = []string{"uniform", "clustered", "line", "stacked"}

func locSubs(t testing.TB, p Params, pts []geo.Point) []*LocationSubmission {
	t.Helper()
	ring, err := mask.DeriveKeyRing([]byte("index-equivalence"), p.Channels, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := NewLocationSubmissions(p, ring, pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	return subs
}

// TestIndexedGraphMatchesOracle is the equivalence grid: every density
// shape × worker count must yield a graph bit-identical to the all-pairs
// oracle (itself pinned against the map-based predicate).
func TestIndexedGraphMatchesOracle(t *testing.T) {
	p := testParams()
	for _, shape := range densityShapes {
		for _, n := range []int{1, 2, 37, 120} {
			subs := locSubs(t, p, shapePoints(p, shape, n, 0xC0FFEE))
			oracle := BuildConflictGraph(subs)
			raw := conflict.BuildFromPredicate(n, func(i, j int) bool {
				return Conflicts(subs[i], subs[j])
			})
			if !oracle.Equal(raw) {
				t.Fatalf("%s/n=%d: interned oracle differs from map-based predicate", shape, n)
			}
			for _, workers := range []int{1, 2, 5, 16} {
				if got := BuildConflictGraphIndexed(subs, workers); !got.Equal(oracle) {
					t.Fatalf("%s/n=%d/workers=%d: indexed graph differs from oracle", shape, n, workers)
				}
			}
		}
	}
}

// TestAuctioneerIndexedKnob pins the option plumbing: EnableIndexedCandidates
// changes no answer (graph, allocation inputs), PrepareCandidates reports
// whether an index is in play, and DisableInterning wins over indexed mode.
func TestAuctioneerIndexedKnob(t *testing.T) {
	p := testParams()
	for _, workers := range []int{1, 4} {
		oracleAuc, pts, bids := randomRound(t, p, 60, 99)
		oracleAuc.SetWorkers(workers)
		oracle := oracleAuc.ConflictGraph()

		indexed := buildRound(t, p, pts, bids, 1099)
		indexed.SetWorkers(workers)
		indexed.EnableIndexedCandidates()
		if !indexed.PrepareCandidates() {
			t.Fatal("PrepareCandidates reported no index in indexed mode")
		}
		if st := indexed.IndexStats(); st.Bidders != 60 || st.Postings == 0 {
			t.Fatalf("IndexStats = %+v, want 60 bidders with postings", st)
		}
		if !indexed.ConflictGraph().Equal(oracle) {
			t.Fatalf("workers=%d: indexed auctioneer graph differs from oracle", workers)
		}

		// Interning disabled: the indexed knob must be ignored, not break.
		ablated := buildRound(t, p, pts, bids, 2099)
		ablated.SetWorkers(workers)
		ablated.DisableInterning()
		ablated.EnableIndexedCandidates()
		if ablated.PrepareCandidates() {
			t.Fatal("PrepareCandidates built an index under DisableInterning")
		}
		if st := ablated.IndexStats(); st != (mask.IndexStats{}) {
			t.Fatalf("IndexStats under DisableInterning = %+v, want zero", st)
		}
		if !ablated.ConflictGraph().Equal(oracle) {
			t.Fatalf("workers=%d: DisableInterning+indexed graph differs from oracle", workers)
		}
	}
}

// FuzzIndexedEquivalence replays arbitrary (seed, population, shape,
// workers, interning) tuples: the indexed graph must stay bit-identical to
// the all-pairs oracle on every one. All inputs derive from the fuzz
// arguments, so any failure replays deterministically from its corpus file
// (the FuzzDecodeFrame convention).
func FuzzIndexedEquivalence(f *testing.F) {
	for shape := uint8(0); shape < 4; shape++ {
		f.Add(int64(1), uint8(20), shape, uint8(1), false)
		f.Add(int64(2), uint8(45), shape, uint8(3), false)
	}
	f.Add(int64(3), uint8(10), uint8(0), uint8(2), true)
	f.Add(int64(0), uint8(0), uint8(0), uint8(0), false)

	p := testParams()
	f.Fuzz(func(t *testing.T, seed int64, nRaw, shapeRaw, workersRaw uint8, noIntern bool) {
		n := int(nRaw%48) + 1
		shape := densityShapes[int(shapeRaw)%len(densityShapes)]
		workers := int(workersRaw%5) + 1
		subs := locSubs(t, p, shapePoints(p, shape, n, seed))

		oracle := conflict.BuildFromPredicate(n, func(i, j int) bool {
			return Conflicts(subs[i], subs[j])
		})
		if got := BuildConflictGraphIndexed(subs, workers); !got.Equal(oracle) {
			t.Fatalf("seed=%d shape=%s n=%d workers=%d: indexed graph differs from oracle", seed, shape, n, workers)
		}
		if noIntern {
			// The ablated representation must agree too (the indexed knob
			// falls back to this oracle under DisableInterning).
			if got := BuildConflictGraph(subs); !got.Equal(oracle) {
				t.Fatalf("seed=%d shape=%s n=%d: interned oracle differs from map-based", seed, shape, n)
			}
		}
	})
}

// TestIndexObserverCounters pins the instrumentation contract: an observed
// indexed build reports candidates exactly equal to the X-axis match count
// (no hot rows at this size), confirms exactly equal to the edge count, a
// plausible postings-scanned tally, and one index-build timing — while the
// graph stays bit-identical to the unobserved build.
func TestIndexObserverCounters(t *testing.T) {
	p := testParams()
	auc, pts, bids := randomRound(t, p, 50, 7)
	auc.EnableIndexedCandidates()
	reg := obs.NewRegistry()
	auc.SetObserver(reg)
	g := auc.ConflictGraph()

	plain := buildRound(t, p, pts, bids, 1007)
	plain.EnableIndexedCandidates()
	if !g.Equal(plain.ConflictGraph()) {
		t.Fatal("observed indexed graph differs from unobserved")
	}

	subs := locSubs(t, p, pts)
	wantCandidates := uint64(0)
	for i := range subs {
		for j := i + 1; j < len(subs); j++ {
			if subs[i].XFamily.Intersects(subs[j].XRange) {
				wantCandidates++
			}
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["lppa_index_candidates_total"]; got != wantCandidates {
		t.Errorf("candidates = %d, want %d", got, wantCandidates)
	}
	if got := snap.Counters["lppa_index_oracle_confirms_total"]; got != uint64(g.Edges()) {
		t.Errorf("confirms = %d, want %d edges", got, g.Edges())
	}
	scanned := snap.Counters["lppa_index_postings_scanned_total"]
	if scanned < wantCandidates {
		t.Errorf("postings scanned = %d < candidates = %d (no hot rows expected)", scanned, wantCandidates)
	}
	hist, ok := snap.Histograms["lppa_index_build_seconds"]
	if !ok || hist.Count != 1 {
		t.Errorf("index build histogram = %+v, want one observation", hist)
	}
}

// TestIndexCountersExported is the exporter golden: the index series render
// in both the Prometheus text format and the JSON snapshot with the exact
// values the registry holds.
func TestIndexCountersExported(t *testing.T) {
	p := testParams()
	auc, _, _ := randomRound(t, p, 40, 13)
	auc.EnableIndexedCandidates()
	reg := obs.NewRegistry()
	auc.SetObserver(reg)
	auc.ConflictGraph()

	snap := reg.Snapshot()
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"lppa_index_postings_scanned_total",
		"lppa_index_candidates_total",
		"lppa_index_oracle_confirms_total",
	} {
		v, ok := snap.Counters[name]
		if !ok {
			t.Fatalf("JSON snapshot missing %s", name)
		}
		if v == 0 {
			t.Errorf("%s = 0, want activity on a conflicting population", name)
		}
		for _, line := range []string{
			fmt.Sprintf("# TYPE %s counter\n", name),
			fmt.Sprintf("%s %d\n", name, v),
		} {
			if !bytes.Contains(prom.Bytes(), []byte(line)) {
				t.Errorf("Prometheus output missing %q", line)
			}
		}
	}
	if !bytes.Contains(prom.Bytes(), []byte("# TYPE lppa_index_build_seconds histogram\n")) ||
		!bytes.Contains(prom.Bytes(), []byte("lppa_index_build_seconds_count 1\n")) {
		t.Error("Prometheus output missing lppa_index_build_seconds histogram series")
	}
}
