package core

import (
	"math/rand"
	"testing"

	"lppa/internal/mask"
)

func testParams() Params {
	return Params{Channels: 4, Lambda: 3, MaxX: 99, MaxY: 99, BMax: 100}
}

func testRing(t *testing.T, p Params, rd, cr uint64) *mask.KeyRing {
	t.Helper()
	ring, err := mask.DeriveKeyRing([]byte("core-test-seed"), p.Channels, rd, cr)
	if err != nil {
		t.Fatal(err)
	}
	return ring
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Channels: 0, Lambda: 1, MaxX: 9, MaxY: 9, BMax: 1},
		{Channels: 1, Lambda: 0, MaxX: 9, MaxY: 9, BMax: 1},
		{Channels: 1, Lambda: 1, MaxX: 0, MaxY: 9, BMax: 1},
		{Channels: 1, Lambda: 1, MaxX: 9, MaxY: 0, BMax: 1},
		{Channels: 1, Lambda: 1, MaxX: 9, MaxY: 9, BMax: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestParamsDerivedWidths(t *testing.T) {
	p := testParams() // MaxX=99 → 7 bits
	if p.CoordWidthX() != 7 || p.CoordWidthY() != 7 {
		t.Errorf("coord widths = %d,%d, want 7,7", p.CoordWidthX(), p.CoordWidthY())
	}
	ring := testRing(t, p, 5, 8)
	// ScaledMax = 8·(100+5+1)−1 = 847 → 10 bits.
	if got := p.ScaledMax(ring); got != 847 {
		t.Errorf("scaled max = %d, want 847", got)
	}
	if got := p.BidWidth(ring); got != 10 {
		t.Errorf("bid width = %d, want 10", got)
	}
	if got := p.RangePadSize(ring); got != 18 {
		t.Errorf("pad size = %d, want 18", got)
	}
}

func TestDisguisePolicyValidate(t *testing.T) {
	if err := DefaultDisguise().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DisguisePolicy{
		{P0: -0.1, Decay: 0.5},
		{P0: 1.1, Decay: 0.5},
		{P0: 0.5, Decay: 0},
		{P0: 0.5, Decay: 1.5},
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
	// P0=1 tolerates any decay (never used).
	if (DisguisePolicy{P0: 1, Decay: 0}).Validate() != nil {
		t.Error("p0=1 with zero decay should validate")
	}
}

func TestDisguiseSamplerNeverWithP0One(t *testing.T) {
	s, err := NewDisguiseSampler(DisguisePolicy{P0: 1, Decay: 0.9}, 50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if _, ok := s.Sample(rng); ok {
			t.Fatal("p0=1 sampler disguised")
		}
	}
}

func TestDisguiseSamplerAlwaysWithP0Zero(t *testing.T) {
	s, err := NewDisguiseSampler(DisguisePolicy{P0: 0, Decay: 0.9}, 50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v, ok := s.Sample(rng)
		if !ok {
			t.Fatal("p0=0 sampler declined to disguise")
		}
		if v < 1 || v > 50 {
			t.Fatalf("disguise value %d out of [1,50]", v)
		}
	}
}

func TestDisguiseSamplerRate(t *testing.T) {
	s, err := NewDisguiseSampler(DisguisePolicy{P0: 0.7, Decay: 1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	disguised := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if _, ok := s.Sample(rng); ok {
			disguised++
		}
	}
	rate := float64(disguised) / n
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("disguise rate = %f, want ≈0.30", rate)
	}
}

func TestDisguiseSamplerMonotoneWeights(t *testing.T) {
	// With geometric decay, p_1 ≥ p_2 ≥ … as the paper requires.
	s, err := NewDisguiseSampler(DisguisePolicy{P0: 0, Decay: 0.8}, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 31)
	for i := 0; i < 60000; i++ {
		v, ok := s.Sample(rng)
		if !ok {
			t.Fatal("unexpected non-disguise")
		}
		counts[v]++
	}
	// Empirical counts should trend downward; compare first and later
	// deciles rather than every adjacent pair (noise).
	if counts[1] <= counts[10] {
		t.Errorf("p_1 (%d draws) should exceed p_10 (%d draws)", counts[1], counts[10])
	}
	if counts[5] <= counts[25] {
		t.Errorf("p_5 (%d draws) should exceed p_25 (%d draws)", counts[5], counts[25])
	}
}

func TestDisguiseSamplerUniformDecayOne(t *testing.T) {
	s, err := NewDisguiseSampler(DisguisePolicy{P0: 0, Decay: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 11)
	const n = 50000
	for i := 0; i < n; i++ {
		v, _ := s.Sample(rng)
		counts[v]++
	}
	for v := 1; v <= 10; v++ {
		frac := float64(counts[v]) / n
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("uniform disguise: p_%d = %f, want ≈0.10", v, frac)
		}
	}
}

func TestDisguiseSamplerValidation(t *testing.T) {
	if _, err := NewDisguiseSampler(DisguisePolicy{P0: 2, Decay: 1}, 10); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := NewDisguiseSampler(DisguisePolicy{P0: 0.5, Decay: 1}, 0); err == nil {
		t.Error("bmax=0 accepted")
	}
}
