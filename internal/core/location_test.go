package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lppa/internal/conflict"
	"lppa/internal/geo"
)

// TestPrivateConflictMatchesPlaintext is the soundness theorem of the
// Private Location Submission protocol: the masked predicate must equal
// the plaintext interference predicate for every pair of positions.
func TestPrivateConflictMatchesPlaintext(t *testing.T) {
	p := testParams()
	ring := testRing(t, p, 2, 4)
	prop := func(ax, ay, bx, by uint8) bool {
		a := geo.Point{X: uint64(ax) % (p.MaxX + 1), Y: uint64(ay) % (p.MaxY + 1)}
		b := geo.Point{X: uint64(bx) % (p.MaxX + 1), Y: uint64(by) % (p.MaxY + 1)}
		sa, err := NewLocationSubmission(p, ring, a)
		if err != nil {
			return false
		}
		sb, err := NewLocationSubmission(p, ring, b)
		if err != nil {
			return false
		}
		want := geo.Conflict(a, b, p.Lambda)
		return Conflicts(sa, sb) == want && Conflicts(sb, sa) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestConflictBoundaryExact(t *testing.T) {
	// |Δx| = 2λ−1 conflicts (strict < 2λ); |Δx| = 2λ does not.
	p := testParams() // λ=3 → threshold 6
	ring := testRing(t, p, 2, 4)
	base := geo.Point{X: 50, Y: 50}
	sb, err := NewLocationSubmission(p, ring, base)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pt   geo.Point
		want bool
	}{
		{geo.Point{X: 55, Y: 50}, true},  // Δx=5 < 6
		{geo.Point{X: 56, Y: 50}, false}, // Δx=6
		{geo.Point{X: 50, Y: 44}, false}, // Δy=6
		{geo.Point{X: 50, Y: 45}, true},  // Δy=5
		{geo.Point{X: 55, Y: 55}, true},
		{geo.Point{X: 56, Y: 55}, false},
	}
	for _, c := range cases {
		so, err := NewLocationSubmission(p, ring, c.pt)
		if err != nil {
			t.Fatal(err)
		}
		if got := Conflicts(sb, so); got != c.want {
			t.Errorf("Conflicts(%v,%v) = %v, want %v", base, c.pt, got, c.want)
		}
	}
}

func TestLocationSubmissionBorderClamping(t *testing.T) {
	// Corners must not panic or produce out-of-domain ranges.
	p := testParams()
	ring := testRing(t, p, 2, 4)
	corners := []geo.Point{
		{X: 0, Y: 0}, {X: p.MaxX, Y: 0}, {X: 0, Y: p.MaxY}, {X: p.MaxX, Y: p.MaxY},
	}
	for _, c := range corners {
		sub, err := NewLocationSubmission(p, ring, c)
		if err != nil {
			t.Fatalf("corner %v: %v", c, err)
		}
		// A user conflicts with itself (distance 0 < 2λ).
		if !Conflicts(sub, sub) {
			t.Errorf("corner %v: self-conflict must hold", c)
		}
	}
}

func TestLocationSubmissionRejectsOutOfDomain(t *testing.T) {
	p := testParams()
	ring := testRing(t, p, 2, 4)
	if _, err := NewLocationSubmission(p, ring, geo.Point{X: p.MaxX + 1, Y: 0}); err == nil {
		t.Error("x out of domain accepted")
	}
	if _, err := NewLocationSubmission(p, ring, geo.Point{X: 0, Y: p.MaxY + 1}); err == nil {
		t.Error("y out of domain accepted")
	}
}

func TestBuildConflictGraphEqualsPlaintextGraph(t *testing.T) {
	p := testParams()
	ring := testRing(t, p, 2, 4)
	rng := rand.New(rand.NewSource(9))
	const n = 40
	points := make([]geo.Point, n)
	subs := make([]*LocationSubmission, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(int(p.MaxX + 1))), Y: uint64(rng.Intn(int(p.MaxY + 1)))}
		sub, err := NewLocationSubmission(p, ring, points[i])
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	private := BuildConflictGraph(subs)
	plain := conflict.BuildPlain(points, p.Lambda)
	if !private.Equal(plain) {
		t.Fatal("masked conflict graph differs from plaintext graph")
	}
}

func TestLocationSubmissionLeaksNothingObvious(t *testing.T) {
	// Submissions for two different locations under the same key share no
	// family digests unless coordinates share prefixes — in particular the
	// full digest sets must differ.
	p := testParams()
	ring := testRing(t, p, 2, 4)
	a, err := NewLocationSubmission(p, ring, geo.Point{X: 10, Y: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLocationSubmission(p, ring, geo.Point{X: 70, Y: 90})
	if err != nil {
		t.Fatal(err)
	}
	if a.XFamily.Len() != p.CoordWidthX()+1 {
		t.Errorf("x family size = %d, want %d", a.XFamily.Len(), p.CoordWidthX()+1)
	}
	sameX := 0
	for _, d := range a.XFamily.Digests() {
		if b.XFamily.Contains(d) {
			sameX++
		}
	}
	// Only the shared trailing wildcard prefixes may coincide; the fully
	// defined prefix must differ.
	if sameX == a.XFamily.Len() {
		t.Error("distinct x coordinates produced identical family sets")
	}
}

func TestLocationBytesPositive(t *testing.T) {
	p := testParams()
	ring := testRing(t, p, 2, 4)
	sub, err := NewLocationSubmission(p, ring, geo.Point{X: 5, Y: 5})
	if err != nil {
		t.Fatal(err)
	}
	if LocationBytes(sub) <= 0 {
		t.Error("location bytes should be positive")
	}
}
