package core

import (
	"fmt"
	"math/rand"

	"lppa/internal/mask"
	"lppa/internal/prefix"
)

// ChannelBid is one bidder's masked bid on one channel.
type ChannelBid struct {
	// Family is H_gb_r(G(scaled)), the masked prefix family of the
	// blinded bid value — for a disguised zero, of the disguise value.
	Family mask.Set
	// Range is H_gb_r(Q([scaled, scaledMax])), padded to 2w−2 digests.
	Range mask.Set
	// Sealed is the gc-encryption of the *true* blinded value (the paper
	// keeps the TTP ciphertext unaltered when disguising), relayed
	// opaquely to the TTP at charging time.
	Sealed []byte
}

// BidSubmission is a bidder's full masked bid vector.
type BidSubmission struct {
	Channels []ChannelBid
}

// encodeOptions selects between the basic scheme (section IV.B: shared
// key, no blinding, no disguise, no padding) and the advanced scheme
// (section IV.C). The basic scheme exists for tests, the ablation
// benchmarks, and as documentation of why the advanced scheme is needed.
type encodeOptions struct {
	advanced bool
	disguise *DisguiseSampler // nil disables disguising even in advanced mode
}

// BidEncoder turns plaintext bid vectors into submissions. One encoder
// serves one bidder for one round.
type BidEncoder struct {
	params  Params
	ring    *mask.KeyRing
	sealer  *mask.Sealer
	maskers []*mask.Masker // per channel (advanced) or a single shared entry (basic)
	opts    encodeOptions
}

// NewBidEncoder returns an advanced-scheme encoder. disguise may be nil to
// submit honest zeros (the paper's p0 = 1 corner).
func NewBidEncoder(params Params, ring *mask.KeyRing, disguise *DisguiseSampler, rng *rand.Rand) (*BidEncoder, error) {
	return newBidEncoder(params, ring, encodeOptions{advanced: true, disguise: disguise}, rng)
}

// NewBasicBidEncoder returns a basic-scheme encoder: every channel shares
// gb_0, bids are neither blinded nor disguised, and range sets are not
// padded. Its leaks are demonstrated in the package tests and ablation
// benchmarks.
func NewBasicBidEncoder(params Params, ring *mask.KeyRing, rng *rand.Rand) (*BidEncoder, error) {
	return newBidEncoder(params, ring, encodeOptions{}, rng)
}

func newBidEncoder(params Params, ring *mask.KeyRing, opts encodeOptions, rng *rand.Rand) (*BidEncoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if ring.Channels() < params.Channels {
		return nil, fmt.Errorf("core: key ring has %d channel keys, need %d", ring.Channels(), params.Channels)
	}
	sealer, err := mask.NewSealer(ring.GC, rng)
	if err != nil {
		return nil, fmt.Errorf("core: sealer: %w", err)
	}
	enc := &BidEncoder{params: params, ring: ring, sealer: sealer, opts: opts}
	if opts.advanced {
		enc.maskers = make([]*mask.Masker, params.Channels)
		for r := range enc.maskers {
			m, err := mask.NewMasker(ring.GB[r])
			if err != nil {
				return nil, fmt.Errorf("core: masker for channel %d: %w", r, err)
			}
			enc.maskers[r] = m
		}
	} else {
		m, err := mask.NewMasker(ring.GB[0])
		if err != nil {
			return nil, fmt.Errorf("core: shared masker: %w", err)
		}
		enc.maskers = []*mask.Masker{m}
	}
	return enc, nil
}

func (e *BidEncoder) maskerFor(r int) *mask.Masker {
	if e.opts.advanced {
		return e.maskers[r]
	}
	return e.maskers[0]
}

// scaledDomainMax returns the top of the encoded-value domain.
func (e *BidEncoder) scaledDomainMax() uint64 {
	if e.opts.advanced {
		return e.params.ScaledMax(e.ring)
	}
	return e.params.BMax
}

// blind maps a displayed value into its blinded slot:
// cr·v + uniform[0, cr−1].
func (e *BidEncoder) blind(v uint64, rng *rand.Rand) uint64 {
	if e.ring.CR == 1 {
		return v
	}
	return e.ring.CR*v + uint64(rng.Int63n(int64(e.ring.CR)))
}

// Encode converts a plaintext bid vector (one entry per channel, zeros for
// unavailable channels) into a masked submission.
func (e *BidEncoder) Encode(bids []uint64, rng *rand.Rand) (*BidSubmission, error) {
	if len(bids) != e.params.Channels {
		return nil, fmt.Errorf("core: %d bids for %d channels", len(bids), e.params.Channels)
	}
	sub := &BidSubmission{Channels: make([]ChannelBid, len(bids))}
	for r, b := range bids {
		if b > e.params.BMax {
			return nil, fmt.Errorf("core: bid %d on channel %d exceeds bmax %d", b, r, e.params.BMax)
		}
		cb, err := e.encodeOne(r, b, rng)
		if err != nil {
			return nil, err
		}
		sub.Channels[r] = cb
	}
	return sub, nil
}

func (e *BidEncoder) encodeOne(r int, b uint64, rng *rand.Rand) (ChannelBid, error) {
	w := prefix.WidthFor(e.scaledDomainMax())
	domainMax := e.scaledDomainMax()
	masker := e.maskerFor(r)

	if !e.opts.advanced {
		// Basic scheme: encode the raw value directly.
		fam := masker.MaskSet(prefix.Numericalized(prefix.Family(b, w)))
		rng2 := masker.MaskSet(prefix.Numericalized(prefix.Cover(b, domainMax, w)))
		return ChannelBid{Family: fam, Range: rng2, Sealed: e.sealer.SealValue(b)}, nil
	}

	// Advanced scheme (section IV.C steps i–iii).
	rd := e.ring.RD
	var displayed, trueVal uint64
	switch {
	case b > 0:
		displayed = b + rd
		trueVal = displayed
	default:
		// True value: zero maps uniformly into [0, rd].
		trueVal = uint64(rng.Int63n(int64(rd + 1)))
		displayed = trueVal
		if e.opts.disguise != nil {
			if t, ok := e.opts.disguise.Sample(rng); ok {
				displayed = t + rd // rank like a genuine bid of t
			}
		}
	}

	scaledTrue := e.blind(trueVal, rng)
	scaledShown := scaledTrue
	if displayed != trueVal {
		scaledShown = e.blind(displayed, rng)
	}

	fam := masker.MaskSet(prefix.Numericalized(prefix.Family(scaledShown, w)))
	rset := masker.MaskSet(prefix.Numericalized(prefix.Cover(scaledShown, domainMax, w)))
	rset.PadTo(prefix.MaxCoverSize(w), rng)
	return ChannelBid{Family: fam, Range: rset, Sealed: e.sealer.SealValue(scaledTrue)}, nil
}

// CompareGE is the auctioneer's only primitive on masked bids: it reports
// whether bid a is at least bid b on the same channel, via
// H(G(a)) ∩ H(Q([b, max])) ≠ ∅. Both bids must come from the same channel
// (and hence the same key); cross-channel comparisons are meaningless by
// construction and return garbage — that is the point of per-channel keys.
func CompareGE(a, b *ChannelBid) bool {
	return a.Family.Intersects(b.Range)
}
