package core

import (
	"fmt"
	"math/rand"
	"sort"

	"lppa/internal/auction"
	"lppa/internal/conflict"
	"lppa/internal/mask"
)

// Auctioneer is the untrusted party running PSD. It holds only masked
// submissions; every method corresponds to an operation the protocol
// legitimately grants it (and which a curious auctioneer may also abuse —
// the transcript methods are what the attack experiments consume).
//
// An Auctioneer is not safe for concurrent use: the conflict graph and the
// per-column comparison memo are built lazily on first use. Submissions
// are immutable once handed to NewAuctioneer, so neither cache is ever
// invalidated.
type Auctioneer struct {
	params  Params
	locs    []*LocationSubmission
	bids    []*BidSubmission
	graph   *conflict.Graph
	workers int

	// noIntern forces every masked set operation back onto the map-based
	// mask.Set representation (ablation and equivalence tests; results are
	// identical either way by construction).
	noIntern bool

	// indexed switches conflict-candidate generation onto the inverted
	// digest index (EnableIndexedCandidates, graphbuild.go). iloc and
	// locIndex cache the interned location view and the index, built once by
	// internedView — submissions are immutable, so neither is invalidated.
	indexed  bool
	iloc     []internedLocation
	locIndex *mask.Index

	// plan, when non-nil, switches execution to tile-sharded form
	// (shard.go): per-tile conflict graphs and rank-memo sorts, merged
	// bit-identically, plus the rank-cursor allocator. shardIx keeps the
	// per-tile candidate-index stats of the last sharded indexed build.
	plan    *ShardPlan
	shardIx []mask.IndexStats

	// Per-column comparison memo, built lazily by columnRank: rankOrder[r]
	// is all bidders sorted by descending masked bid (ties in index
	// order), rank[r][i] the dense rank of bidder i (equal masked bids
	// share a rank). One O(n log n) pass of masked set intersections per
	// column replaces the O(n) re-intersections of every later scan. The
	// sort itself runs on interned sets (intern.go) unless noIntern is
	// set; the memo it leaves behind is representation-independent.
	rank      [][]int
	rankOrder [][]int
	// colCalls[r] is the masked-intersection count spent building column
	// r's rank memo. Filled only on observed auctioneers (SetObserver):
	// the unobserved hot path stays uncounted and byte-identical.
	colCalls []uint64

	// ob, when non-nil, routes lazy cache builds and memo lookups through
	// their counted twins (observe.go). Nil — the default — keeps every
	// hot path on the exact unobserved code.
	ob *aucObs
}

// NewAuctioneer collects one location and one bid submission per bidder.
func NewAuctioneer(params Params, locs []*LocationSubmission, bids []*BidSubmission) (*Auctioneer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(locs) != len(bids) {
		return nil, fmt.Errorf("core: %d location submissions vs %d bid submissions", len(locs), len(bids))
	}
	if len(locs) == 0 {
		return nil, fmt.Errorf("core: no bidders")
	}
	for i, b := range bids {
		if len(b.Channels) != params.Channels {
			return nil, fmt.Errorf("core: bidder %d submitted %d channel bids, want %d",
				i, len(b.Channels), params.Channels)
		}
	}
	return &Auctioneer{params: params, locs: locs, bids: bids}, nil
}

// N reports the number of bidders.
func (a *Auctioneer) N() int { return len(a.bids) }

// Reset re-arms the auctioneer for a new population under the same
// params: the submissions are swapped and every lazily built,
// population-specific cache (conflict graph, interned views, candidate
// index, shard state, rank memos, comparison tallies) is dropped. The
// tuning knobs — workers, interning, indexed candidates, observer — also
// return to their post-NewAuctioneer defaults, so the next round
// re-applies exactly the options it was asked for instead of inheriting
// a previous epoch's. This is the epochal service's reuse path
// (internal/epoch): one auctioneer per service lifetime instead of one
// per round.
func (a *Auctioneer) Reset(locs []*LocationSubmission, bids []*BidSubmission) error {
	if len(locs) != len(bids) {
		return fmt.Errorf("core: %d location submissions vs %d bid submissions", len(locs), len(bids))
	}
	if len(locs) == 0 {
		return fmt.Errorf("core: no bidders")
	}
	for i, b := range bids {
		if len(b.Channels) != a.params.Channels {
			return fmt.Errorf("core: bidder %d submitted %d channel bids, want %d",
				i, len(b.Channels), a.params.Channels)
		}
	}
	a.locs, a.bids = locs, bids
	a.graph = nil
	a.workers = 0
	a.noIntern = false
	a.indexed = false
	a.iloc = nil
	a.locIndex = nil
	a.plan = nil
	a.shardIx = nil
	a.rank = nil
	a.rankOrder = nil
	a.colCalls = nil
	a.ob = nil
	return nil
}

// SetWorkers bounds the goroutines used for conflict-graph construction.
// w ≤ 1 keeps the build serial. The graph is bit-for-bit identical for
// every worker count, so this knob never changes auction results.
func (a *Auctioneer) SetWorkers(w int) { a.workers = w }

// DisableInterning switches the auctioneer back to map-based digest sets
// for every masked operation (ablation benchmarks and equivalence tests).
// Call it before the first ConflictGraph/GE/Allocate use; the lazily
// built caches are representation-independent, so flipping it later has
// no effect on answers already memoized.
func (a *Auctioneer) DisableInterning() { a.noIntern = true }

// ConflictGraph lazily builds and returns the masked-submission conflict
// graph through the shared builder (graphbuild.go).
func (a *Auctioneer) ConflictGraph() *conflict.Graph {
	if a.graph == nil {
		a.graph = a.buildGraph()
	}
	return a.graph
}

// rawGE evaluates the masked comparison directly: one Family ∩ Range set
// intersection.
func (a *Auctioneer) rawGE(r, i, j int) bool {
	return CompareGE(&a.bids[i].Channels[r], &a.bids[j].Channels[r])
}

// geFactory mints comparator instances for one column. Each call returns
// a comparator accumulating its masked-intersection tallies into the given
// stats (observed auctioneers only; unobserved instances ignore it), so
// parallel per-tile sorts get race-free private instances over the one
// shared interned column.
type geFactory = func(st *mask.IntersectStats) func(r, i, j int) bool

// columnGE interns column r (once, at factory creation — the fast path
// unless noIntern) and returns the comparator factory plus the interned
// column itself (nil when interning is off) for callers that can exploit
// digest-set equality directly, like the sharded sort's bid classes.
// Interned and map-based comparators agree on every pair: CompareGE
// outcomes depend only on digest equality, which interning preserves
// exactly.
func (a *Auctioneer) columnGE(r int) (geFactory, []internedChannelBid) {
	if a.noIntern {
		if a.ob == nil {
			return func(*mask.IntersectStats) func(r, i, j int) bool { return a.rawGE }, nil
		}
		return func(st *mask.IntersectStats) func(r, i, j int) bool {
			return func(r, i, j int) bool { st.Calls++; return a.rawGE(r, i, j) }
		}, nil
	}
	col, total, distinct := internColumn(a.bids, r)
	if a.ob != nil {
		a.ob.noteIntern(total, distinct)
		return func(st *mask.IntersectStats) func(r, i, j int) bool {
			return func(r, i, j int) bool { return col[i].geCounted(&col[j], st) }
		}, col
	}
	return func(*mask.IntersectStats) func(r, i, j int) bool {
		return func(r, i, j int) bool { return col[i].ge(&col[j]) }
	}, col
}

// columnRank builds (once) and returns the dense rank memo of column r.
// Masked comparison is order-preserving — CompareGE(i, j) ⟺ the hidden
// blinded value of i is ≥ j's — so each column admits a total preorder and
// a single stable sort captures every pairwise outcome; under a shard plan
// the sort runs per tile and merges (shard.go), leaving the bit-identical
// memo. Submissions are immutable after NewAuctioneer, hence the memo
// never needs invalidation.
func (a *Auctioneer) columnRank(r int) []int {
	if r < 0 || r >= a.params.Channels {
		panic(fmt.Sprintf("core: channel %d out of range [0,%d)", r, a.params.Channels))
	}
	if a.rank == nil {
		a.rank = make([][]int, a.params.Channels)
		a.rankOrder = make([][]int, a.params.Channels)
	}
	if a.rank[r] == nil {
		n := a.N()
		mk, col := a.columnGE(r)
		var st mask.IntersectStats
		var order []int
		if a.plan != nil {
			order = a.shardedOrder(r, mk, col, &st)
		} else {
			order = make([]int, n)
			for i := range order {
				order[i] = i
			}
			ge := mk(&st)
			sort.SliceStable(order, func(x, y int) bool {
				i, j := order[x], order[y]
				// Strictly greater: GE(i,j) && !GE(j,i). Ties keep index order.
				return ge(r, i, j) && !ge(r, j, i)
			})
		}
		ge := mk(&st)
		rank := make([]int, n)
		rk := 0
		for x, i := range order {
			if x > 0 {
				prev := order[x-1]
				if !(ge(r, i, prev) && ge(r, prev, i)) {
					rk = x // strictly below prev: new rank group
				}
			}
			rank[i] = rk
		}
		a.rank[r] = rank
		a.rankOrder[r] = order
		if a.ob != nil {
			if a.colCalls == nil {
				a.colCalls = make([]uint64, a.params.Channels)
			}
			a.colCalls[r] = st.Calls
			a.ob.rankBuilds.Inc()
			a.ob.flushStats(&st)
		}
	}
	return a.rank[r]
}

// GE reports whether bidder i's masked bid on channel r is at least
// bidder j's. Answers come from the per-column rank memo, so repeated
// column scans (the allocator revisits each column every epoch) cost one
// comparison instead of one masked set intersection.
func (a *Auctioneer) GE(r, i, j int) bool {
	rank := a.columnRank(r)
	return rank[i] <= rank[j]
}

// fullPresent builds the all-true presence matrix in two allocations (one
// flat backing array, one row index) instead of n+1.
func fullPresent(n, k int) [][]bool {
	flat := make([]bool, n*k)
	for i := range flat {
		flat[i] = true
	}
	present := make([][]bool, n)
	for i := range present {
		present[i] = flat[i*k : (i+1)*k : (i+1)*k]
	}
	return present
}

// allocateAwards is the one allocation entry point behind
// Allocate/AllocateWithValidity/AllocateAwards. Unsharded it runs the
// paper's Algorithm 3 against the memo-backed comparator; under a shard
// plan it runs the rank-cursor engine directly on the per-column memos
// (auction.AllocateAwardsOrdered), which is bit-identical by construction
// and skips the two O(n) comparator sweeps per award.
func (a *Auctioneer) allocateAwards(valid auction.Validity, rng *rand.Rand) ([]auction.Award, []auction.Assignment, error) {
	n, k := a.N(), a.params.Channels
	if a.plan != nil {
		column := func(r int) (order, rank []int) {
			a.columnRank(r)
			return a.rankOrder[r], a.rank[r]
		}
		return auction.AllocateAwardsOrdered(n, k, fullPresent(n, k), a.ConflictGraph(), column, valid, a.servedHook(), rng)
	}
	return auction.AllocateAwards(n, k, fullPresent(n, k), a.ConflictGraph(), a.geFunc(), valid, rng)
}

// Allocate runs the private spectrum allocation (Algorithm 3 over masked
// bids). Every bidder participates on every channel — the auctioneer
// cannot tell zeros apart, which is precisely why disguised zeros can win
// and later be voided by the TTP.
func (a *Auctioneer) Allocate(rng *rand.Rand) ([]auction.Assignment, error) {
	awards, _, err := a.allocateAwards(nil, rng)
	if err != nil {
		return nil, err
	}
	assignments := make([]auction.Assignment, len(awards))
	for i, aw := range awards {
		assignments[i] = aw.Assignment
	}
	return assignments, nil
}

// SealedBid returns the opaque TTP ciphertext of bidder i's bid on
// channel r, for relay to the TTP (validity checks and charging).
func (a *Auctioneer) SealedBid(i, r int) []byte {
	return a.bids[i].Channels[r].Sealed
}

// AllocateWithValidity runs the private allocation with an interactive
// TTP validity oracle: each prospective award is checked before it stands,
// and void awards (disguised or true zeros) waste the channel in the
// winner's neighborhood without expelling the bidder.
func (a *Auctioneer) AllocateWithValidity(valid auction.Validity, rng *rand.Rand) (awarded, voided []auction.Assignment, err error) {
	awards, voided, err := a.allocateAwards(valid, rng)
	if err != nil {
		return nil, nil, err
	}
	assignments := make([]auction.Assignment, len(awards))
	for i, aw := range awards {
		assignments[i] = aw.Assignment
	}
	return assignments, voided, nil
}

// RankChannel returns all bidders ordered by descending masked bid on
// channel r. This is transcript information a curious auctioneer can
// always compute (order-preserving masking), and it feeds the Fig. 5
// t-largest BCM attack. The ordering comes straight from the per-column
// memo (built on first use); callers get a private copy.
func (a *Auctioneer) RankChannel(r int) []int {
	a.columnRank(r)
	return append([]int(nil), a.rankOrder[r]...)
}

// Rankings returns RankChannel for every channel.
func (a *Auctioneer) Rankings() [][]int {
	out := make([][]int, a.params.Channels)
	for r := range out {
		out[r] = a.RankChannel(r)
	}
	return out
}

// DigestCounts returns, per bidder, how many masked digests that bidder
// exposed to the auctioneer: the location families and range covers plus
// every channel bid's family and cover. This is the auctioneer-observable
// surface the privacy audit (internal/obs/audit) tallies.
func (a *Auctioneer) DigestCounts() []int {
	out := make([]int, a.N())
	for i := range out {
		l := a.locs[i]
		total := l.XFamily.Len() + l.YFamily.Len() + l.XRange.Len() + l.YRange.Len()
		for r := range a.bids[i].Channels {
			cb := &a.bids[i].Channels[r]
			total += cb.Family.Len() + cb.Range.Len()
		}
		out[i] = total
	}
	return out
}

// ComparisonsPerChannel returns how many masked set intersections the
// rank-memo build spent per channel — the auctioneer's per-column work,
// and an upper bound on the ordering information each column leaked.
// Populated only on observed auctioneers (SetObserver) and only for
// columns actually built; unobserved runs return nil.
func (a *Auctioneer) ComparisonsPerChannel() []uint64 {
	if a.colCalls == nil {
		return nil
	}
	return append([]uint64(nil), a.colCalls...)
}

// ChargeRequest is what the auctioneer forwards to the TTP for one awarded
// channel: the opaque sealed value plus the winner's masked prefix family,
// which the TTP uses to verify the bidder did not present one price to the
// auction and another to the cashier.
type ChargeRequest struct {
	Bidder  int
	Channel int
	Sealed  []byte
	Family  []mask.Digest
	// RunnerUpSealed, when present, switches the charge to second-price:
	// the TTP unblinds it and charges the winner the runner-up's true bid
	// (zero when the runner-up was itself a zero). Nil means first-price.
	RunnerUpSealed []byte
}

// ChargeRequests assembles the TTP batch for a set of assignments
// (section V.C.2: batching reduces TTP online time). All sealed copies and
// family digests share two flat backing arrays — one allocation each for
// the whole batch instead of two per request; full-capacity subslices keep
// the requests append-isolated from one another.
func (a *Auctioneer) ChargeRequests(assignments []auction.Assignment) []ChargeRequest {
	sealedTotal, famTotal := 0, 0
	for _, as := range assignments {
		cb := &a.bids[as.Bidder].Channels[as.Channel]
		sealedTotal += len(cb.Sealed)
		famTotal += cb.Family.Len()
	}
	sealedBuf := make([]byte, 0, sealedTotal)
	famBuf := make([]mask.Digest, 0, famTotal)
	reqs := make([]ChargeRequest, len(assignments))
	for idx, as := range assignments {
		cb := &a.bids[as.Bidder].Channels[as.Channel]
		s0 := len(sealedBuf)
		sealedBuf = append(sealedBuf, cb.Sealed...)
		f0 := len(famBuf)
		famBuf = cb.Family.AppendDigests(famBuf)
		reqs[idx] = ChargeRequest{
			Bidder:  as.Bidder,
			Channel: as.Channel,
			Sealed:  sealedBuf[s0:len(sealedBuf):len(sealedBuf)],
			Family:  famBuf[f0:len(famBuf):len(famBuf)],
		}
	}
	return reqs
}

// AllocateAwards is Allocate with award-time runner-ups, for second-price
// charging.
func (a *Auctioneer) AllocateAwards(rng *rand.Rand) ([]auction.Award, error) {
	awards, _, err := a.allocateAwards(nil, rng)
	return awards, err
}

// ChargeRequestsSecondPrice assembles a second-price TTP batch: each
// request carries the winner's sealed bid (validity + price/prefix
// verification) and the runner-up's sealed bid (the clearing price). Like
// ChargeRequests, winner and runner-up sealed copies share one flat buffer
// and family digests another, so the batch costs two allocations instead
// of three per award.
func (a *Auctioneer) ChargeRequestsSecondPrice(awards []auction.Award) []ChargeRequest {
	sealedTotal, famTotal := 0, 0
	for _, aw := range awards {
		cb := &a.bids[aw.Bidder].Channels[aw.Channel]
		sealedTotal += len(cb.Sealed)
		famTotal += cb.Family.Len()
		if aw.RunnerUp >= 0 {
			sealedTotal += len(a.bids[aw.RunnerUp].Channels[aw.Channel].Sealed)
		}
	}
	sealedBuf := make([]byte, 0, sealedTotal)
	famBuf := make([]mask.Digest, 0, famTotal)
	reqs := make([]ChargeRequest, len(awards))
	for idx, aw := range awards {
		cb := &a.bids[aw.Bidder].Channels[aw.Channel]
		s0 := len(sealedBuf)
		sealedBuf = append(sealedBuf, cb.Sealed...)
		f0 := len(famBuf)
		famBuf = cb.Family.AppendDigests(famBuf)
		reqs[idx] = ChargeRequest{
			Bidder:  aw.Bidder,
			Channel: aw.Channel,
			Sealed:  sealedBuf[s0:len(sealedBuf):len(sealedBuf)],
			Family:  famBuf[f0:len(famBuf):len(famBuf)],
		}
		if aw.RunnerUp >= 0 {
			r0 := len(sealedBuf)
			sealedBuf = append(sealedBuf, a.bids[aw.RunnerUp].Channels[aw.Channel].Sealed...)
			reqs[idx].RunnerUpSealed = sealedBuf[r0:len(sealedBuf):len(sealedBuf)]
		}
	}
	return reqs
}
