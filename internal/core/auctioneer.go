package core

import (
	"fmt"
	"math/rand"
	"sort"

	"lppa/internal/auction"
	"lppa/internal/conflict"
	"lppa/internal/mask"
)

// Auctioneer is the untrusted party running PSD. It holds only masked
// submissions; every method corresponds to an operation the protocol
// legitimately grants it (and which a curious auctioneer may also abuse —
// the transcript methods are what the attack experiments consume).
type Auctioneer struct {
	params Params
	locs   []*LocationSubmission
	bids   []*BidSubmission
	graph  *conflict.Graph
}

// NewAuctioneer collects one location and one bid submission per bidder.
func NewAuctioneer(params Params, locs []*LocationSubmission, bids []*BidSubmission) (*Auctioneer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(locs) != len(bids) {
		return nil, fmt.Errorf("core: %d location submissions vs %d bid submissions", len(locs), len(bids))
	}
	if len(locs) == 0 {
		return nil, fmt.Errorf("core: no bidders")
	}
	for i, b := range bids {
		if len(b.Channels) != params.Channels {
			return nil, fmt.Errorf("core: bidder %d submitted %d channel bids, want %d",
				i, len(b.Channels), params.Channels)
		}
	}
	return &Auctioneer{params: params, locs: locs, bids: bids}, nil
}

// N reports the number of bidders.
func (a *Auctioneer) N() int { return len(a.bids) }

// ConflictGraph lazily builds and returns the masked-submission conflict
// graph.
func (a *Auctioneer) ConflictGraph() *conflict.Graph {
	if a.graph == nil {
		a.graph = BuildConflictGraph(a.locs)
	}
	return a.graph
}

// GE reports whether bidder i's masked bid on channel r is at least
// bidder j's.
func (a *Auctioneer) GE(r, i, j int) bool {
	return CompareGE(&a.bids[i].Channels[r], &a.bids[j].Channels[r])
}

// Allocate runs the private spectrum allocation (Algorithm 3 over masked
// bids). Every bidder participates on every channel — the auctioneer
// cannot tell zeros apart, which is precisely why disguised zeros can win
// and later be voided by the TTP.
func (a *Auctioneer) Allocate(rng *rand.Rand) ([]auction.Assignment, error) {
	n, k := a.N(), a.params.Channels
	present := make([][]bool, n)
	for i := range present {
		present[i] = make([]bool, k)
		for r := range present[i] {
			present[i][r] = true
		}
	}
	return auction.Allocate(n, k, present, a.ConflictGraph(), a.GE, rng)
}

// SealedBid returns the opaque TTP ciphertext of bidder i's bid on
// channel r, for relay to the TTP (validity checks and charging).
func (a *Auctioneer) SealedBid(i, r int) []byte {
	return a.bids[i].Channels[r].Sealed
}

// AllocateWithValidity runs the private allocation with an interactive
// TTP validity oracle: each prospective award is checked before it stands,
// and void awards (disguised or true zeros) waste the channel in the
// winner's neighborhood without expelling the bidder.
func (a *Auctioneer) AllocateWithValidity(valid auction.Validity, rng *rand.Rand) (awarded, voided []auction.Assignment, err error) {
	n, k := a.N(), a.params.Channels
	present := make([][]bool, n)
	for i := range present {
		present[i] = make([]bool, k)
		for r := range present[i] {
			present[i][r] = true
		}
	}
	return auction.AllocateWithValidity(n, k, present, a.ConflictGraph(), a.GE, valid, rng)
}

// RankChannel returns all bidders ordered by descending masked bid on
// channel r. This is transcript information a curious auctioneer can
// always compute (order-preserving masking), and it feeds the Fig. 5
// t-largest BCM attack.
func (a *Auctioneer) RankChannel(r int) []int {
	if r < 0 || r >= a.params.Channels {
		panic(fmt.Sprintf("core: channel %d out of range [0,%d)", r, a.params.Channels))
	}
	order := make([]int, a.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		i, j := order[x], order[y]
		// Strictly greater: GE(i,j) && !GE(j,i). Ties keep index order.
		return a.GE(r, i, j) && !a.GE(r, j, i)
	})
	return order
}

// Rankings returns RankChannel for every channel.
func (a *Auctioneer) Rankings() [][]int {
	out := make([][]int, a.params.Channels)
	for r := range out {
		out[r] = a.RankChannel(r)
	}
	return out
}

// ChargeRequest is what the auctioneer forwards to the TTP for one awarded
// channel: the opaque sealed value plus the winner's masked prefix family,
// which the TTP uses to verify the bidder did not present one price to the
// auction and another to the cashier.
type ChargeRequest struct {
	Bidder  int
	Channel int
	Sealed  []byte
	Family  []mask.Digest
	// RunnerUpSealed, when present, switches the charge to second-price:
	// the TTP unblinds it and charges the winner the runner-up's true bid
	// (zero when the runner-up was itself a zero). Nil means first-price.
	RunnerUpSealed []byte
}

// ChargeRequests assembles the TTP batch for a set of assignments
// (section V.C.2: batching reduces TTP online time).
func (a *Auctioneer) ChargeRequests(assignments []auction.Assignment) []ChargeRequest {
	reqs := make([]ChargeRequest, 0, len(assignments))
	for _, as := range assignments {
		cb := &a.bids[as.Bidder].Channels[as.Channel]
		fam := cb.Family.Digests()
		reqs = append(reqs, ChargeRequest{
			Bidder:  as.Bidder,
			Channel: as.Channel,
			Sealed:  append([]byte(nil), cb.Sealed...),
			Family:  fam,
		})
	}
	return reqs
}

// AllocateAwards is Allocate with award-time runner-ups, for second-price
// charging.
func (a *Auctioneer) AllocateAwards(rng *rand.Rand) ([]auction.Award, error) {
	n, k := a.N(), a.params.Channels
	present := make([][]bool, n)
	for i := range present {
		present[i] = make([]bool, k)
		for r := range present[i] {
			present[i][r] = true
		}
	}
	awards, _, err := auction.AllocateAwards(n, k, present, a.ConflictGraph(), a.GE, nil, rng)
	return awards, err
}

// ChargeRequestsSecondPrice assembles a second-price TTP batch: each
// request carries the winner's sealed bid (validity + price/prefix
// verification) and the runner-up's sealed bid (the clearing price).
func (a *Auctioneer) ChargeRequestsSecondPrice(awards []auction.Award) []ChargeRequest {
	reqs := make([]ChargeRequest, 0, len(awards))
	for _, aw := range awards {
		cb := &a.bids[aw.Bidder].Channels[aw.Channel]
		req := ChargeRequest{
			Bidder:  aw.Bidder,
			Channel: aw.Channel,
			Sealed:  append([]byte(nil), cb.Sealed...),
			Family:  cb.Family.Digests(),
		}
		if aw.RunnerUp >= 0 {
			req.RunnerUpSealed = append([]byte(nil), a.bids[aw.RunnerUp].Channels[aw.Channel].Sealed...)
		}
		reqs = append(reqs, req)
	}
	return reqs
}
