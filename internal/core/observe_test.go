package core

import (
	"math/rand"
	"reflect"
	"testing"

	"lppa/internal/obs"
)

// TestObservedAuctioneerIdenticalResults pins the observability contract:
// attaching a registry may never change a graph, a ranking, or an
// allocation — only count them. Checked across representations and worker
// counts.
func TestObservedAuctioneerIdenticalResults(t *testing.T) {
	p := testParams()
	for _, seed := range []int64{5, 17} {
		for _, noIntern := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				plain, _, _ := randomRound(t, p, 25, seed)
				watched, _, _ := randomRound(t, p, 25, seed)
				if noIntern {
					plain.DisableInterning()
					watched.DisableInterning()
				}
				plain.SetWorkers(workers)
				watched.SetWorkers(workers)
				watched.SetObserver(obs.NewRegistry())

				if !plain.ConflictGraph().Equal(watched.ConflictGraph()) {
					t.Errorf("seed=%d noIntern=%v workers=%d: observed graph differs", seed, noIntern, workers)
				}
				if !reflect.DeepEqual(plain.Rankings(), watched.Rankings()) {
					t.Errorf("seed=%d noIntern=%v workers=%d: observed rankings differ", seed, noIntern, workers)
				}
				a1, err := plain.Allocate(rand.New(rand.NewSource(seed * 3)))
				if err != nil {
					t.Fatal(err)
				}
				a2, err := watched.Allocate(rand.New(rand.NewSource(seed * 3)))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a1, a2) {
					t.Errorf("seed=%d noIntern=%v workers=%d: observed allocation differs", seed, noIntern, workers)
				}
			}
		}
	}
}

// TestObserverCountsFlow sanity-checks the tallies a full interned round
// leaves behind: comparisons, rank builds, memo hits, and intern traffic
// must all be non-zero, and derived identities must hold.
func TestObserverCountsFlow(t *testing.T) {
	p := testParams()
	reg := obs.NewRegistry()
	auc, _, _ := randomRound(t, p, 25, 9)
	auc.SetObserver(reg)
	auc.ConflictGraph()
	if _, err := auc.Allocate(rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}

	get := func(name string) uint64 { return reg.Counter(name).Value() }
	if get("lppa_auctioneer_comparisons_total") == 0 {
		t.Error("no comparisons counted")
	}
	if got := get("lppa_auctioneer_rank_builds_total"); got != uint64(p.Channels) {
		t.Errorf("rank builds = %d, want %d (one per channel)", got, p.Channels)
	}
	if get("lppa_auctioneer_rank_memo_hits_total") == 0 {
		t.Error("no rank-memo hits counted")
	}
	total, hits, misses := get("lppa_intern_digests_total"), get("lppa_intern_hits_total"), get("lppa_intern_misses_total")
	if total == 0 || hits+misses != total {
		t.Errorf("intern identity broken: total=%d hits=%d misses=%d", total, hits, misses)
	}
	if rej, cmp := get("lppa_auctioneer_bloom_rejects_total"), get("lppa_auctioneer_comparisons_total"); rej > cmp {
		t.Errorf("bloom rejects %d exceed comparisons %d", rej, cmp)
	}
}
