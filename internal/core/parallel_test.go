package core

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"lppa/internal/geo"
	"lppa/internal/mask"
)

func randomPoints(p Params, n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: uint64(rng.Intn(int(p.MaxX + 1))), Y: uint64(rng.Intn(int(p.MaxY + 1)))}
	}
	return pts
}

func sameSet(a, b mask.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, d := range a.Digests() {
		if !b.Contains(d) {
			return false
		}
	}
	return true
}

// TestNewLocationSubmissionsMatchesSerial asserts batch (and parallel)
// location encoding produces exactly the per-call submissions, for several
// populations, λ, and worker counts.
func TestNewLocationSubmissionsMatchesSerial(t *testing.T) {
	for _, lambda := range []uint64{1, 2, 5} {
		p := Params{Channels: 2, Lambda: lambda, MaxX: 99, MaxY: 99, BMax: 100}
		ring := testRing(t, p, 5, 8)
		for _, n := range []int{1, 7, 40} {
			pts := randomPoints(p, n, int64(lambda)*100+int64(n))
			want := make([]*LocationSubmission, n)
			for i, pt := range pts {
				var err error
				want[i], err = NewLocationSubmission(p, ring, pt)
				if err != nil {
					t.Fatal(err)
				}
			}
			for _, workers := range []int{1, 2, 3, 8} {
				got, err := NewLocationSubmissions(p, ring, pts, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if !sameSet(got[i].XFamily, want[i].XFamily) || !sameSet(got[i].YFamily, want[i].YFamily) ||
						!sameSet(got[i].XRange, want[i].XRange) || !sameSet(got[i].YRange, want[i].YRange) {
						t.Errorf("lambda=%d n=%d workers=%d: submission %d differs from serial", lambda, n, workers, i)
					}
				}
			}
		}
	}
}

// TestNewLocationSubmissionsRejectsOutOfDomain checks the parallel path
// reports per-bidder errors like the serial one.
func TestNewLocationSubmissionsRejectsOutOfDomain(t *testing.T) {
	p := Params{Channels: 1, Lambda: 1, MaxX: 9, MaxY: 9, BMax: 10}
	ring := testRing(t, p, 5, 8)
	pts := []geo.Point{{X: 1, Y: 1}, {X: 99, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	for _, workers := range []int{1, 4} {
		if _, err := NewLocationSubmissions(p, ring, pts, workers); err == nil {
			t.Errorf("workers=%d: out-of-domain point accepted", workers)
		}
	}
}

// TestBuildConflictGraphParallelMatchesSerial checks the masked parallel
// graph build against the serial one across populations, λ, and workers.
func TestBuildConflictGraphParallelMatchesSerial(t *testing.T) {
	for _, lambda := range []uint64{1, 2, 4} {
		p := Params{Channels: 1, Lambda: lambda, MaxX: 99, MaxY: 99, BMax: 100}
		ring := testRing(t, p, 5, 8)
		for _, n := range []int{2, 30, 90} {
			pts := randomPoints(p, n, int64(lambda)*31+int64(n))
			subs, err := NewLocationSubmissions(p, ring, pts, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := BuildConflictGraph(subs)
			for _, workers := range []int{0, 1, 2, 3, 8} {
				if got := BuildConflictGraphParallel(subs, workers); !got.Equal(want) {
					t.Errorf("lambda=%d n=%d workers=%d: parallel graph differs", lambda, n, workers)
				}
			}
		}
	}
}

// TestAuctioneerWorkersInvariant checks SetWorkers never changes the
// lazily built conflict graph.
func TestAuctioneerWorkersInvariant(t *testing.T) {
	p := testParams()
	serial, _, _ := randomRound(t, p, 40, 21)
	parallel, _, _ := randomRound(t, p, 40, 21)
	parallel.SetWorkers(4)
	if !parallel.ConflictGraph().Equal(serial.ConflictGraph()) {
		t.Error("SetWorkers(4) changed the conflict graph")
	}
}

// TestGEMemoMatchesRawComparisons is the memo-correctness anchor: for
// every channel and every ordered pair, the rank-memo answer must equal
// the direct masked set intersection.
func TestGEMemoMatchesRawComparisons(t *testing.T) {
	p := testParams()
	for _, seed := range []int64{1, 2, 3} {
		auc, _, _ := randomRound(t, p, 20, seed)
		for r := 0; r < p.Channels; r++ {
			for i := 0; i < auc.N(); i++ {
				for j := 0; j < auc.N(); j++ {
					if got, want := auc.GE(r, i, j), auc.rawGE(r, i, j); got != want {
						t.Fatalf("seed=%d r=%d: GE(%d,%d) memo=%v raw=%v", seed, r, i, j, got, want)
					}
				}
			}
		}
	}
}

// TestRankChannelMatchesLegacySort pins RankChannel to the pre-memo
// implementation: a stable sort under the strict raw comparator.
func TestRankChannelMatchesLegacySort(t *testing.T) {
	p := testParams()
	auc, _, _ := randomRound(t, p, 25, 17)
	for r := 0; r < p.Channels; r++ {
		want := make([]int, auc.N())
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(x, y int) bool {
			i, j := want[x], want[y]
			return auc.rawGE(r, i, j) && !auc.rawGE(r, j, i)
		})
		got := auc.RankChannel(r)
		for x := range want {
			if got[x] != want[x] {
				t.Fatalf("channel %d position %d: memo order %v, legacy order %v", r, x, got, want)
			}
		}
	}
}

// TestRankChannelReturnsPrivateCopy guards the memo against caller
// mutation.
func TestRankChannelReturnsPrivateCopy(t *testing.T) {
	p := testParams()
	auc, _, _ := randomRound(t, p, 10, 23)
	first := auc.RankChannel(0)
	first[0], first[1] = first[1], first[0]
	second := auc.RankChannel(0)
	if second[0] == first[0] && second[1] == first[1] {
		t.Error("mutating a returned ranking corrupted the memo")
	}
}

// TestChargeRequestsPinned pins the lean batch assembly to the reference
// per-request construction: same attribution, same sealed bytes, same
// family members, and mutation isolation between requests.
func TestChargeRequestsPinned(t *testing.T) {
	p := testParams()
	auc, _, _ := randomRound(t, p, 12, 31)
	as, err := auc.Allocate(rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 {
		t.Fatal("no assignments")
	}
	reqs := auc.ChargeRequests(as)
	if len(reqs) != len(as) {
		t.Fatalf("%d requests for %d assignments", len(reqs), len(as))
	}
	for i, req := range reqs {
		cb := &auc.bids[as[i].Bidder].Channels[as[i].Channel]
		if req.Bidder != as[i].Bidder || req.Channel != as[i].Channel {
			t.Errorf("request %d misattributed", i)
		}
		if !bytes.Equal(req.Sealed, cb.Sealed) {
			t.Errorf("request %d sealed bytes differ from submission", i)
		}
		if len(req.Family) != cb.Family.Len() {
			t.Errorf("request %d family has %d digests, want %d", i, len(req.Family), cb.Family.Len())
		}
		for _, d := range req.Family {
			if !cb.Family.Contains(d) {
				t.Errorf("request %d family contains foreign digest %s", i, d)
			}
		}
		if req.RunnerUpSealed != nil {
			t.Errorf("request %d: first-price batch must not carry a runner-up ciphertext", i)
		}
	}
	// Appending to one request's slices must not leak into its neighbors
	// (full-capacity subslices of the shared backing arrays).
	if len(reqs) >= 2 {
		grown := append(reqs[0].Sealed, 0xFF)
		_ = grown
		if !bytes.Equal(reqs[1].Sealed, auc.bids[as[1].Bidder].Channels[as[1].Channel].Sealed) {
			t.Error("appending to request 0 corrupted request 1's sealed bytes")
		}
	}
}

// TestChargeRequestsSecondPricePinned does the same for the second-price
// batch, including runner-up ciphertexts.
func TestChargeRequestsSecondPricePinned(t *testing.T) {
	p := testParams()
	auc, _, _ := randomRound(t, p, 12, 41)
	awards, err := auc.AllocateAwards(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if len(awards) == 0 {
		t.Fatal("no awards")
	}
	reqs := auc.ChargeRequestsSecondPrice(awards)
	if len(reqs) != len(awards) {
		t.Fatalf("%d requests for %d awards", len(reqs), len(awards))
	}
	sawRunnerUp := false
	for i, req := range reqs {
		aw := awards[i]
		cb := &auc.bids[aw.Bidder].Channels[aw.Channel]
		if req.Bidder != aw.Bidder || req.Channel != aw.Channel {
			t.Errorf("request %d misattributed", i)
		}
		if !bytes.Equal(req.Sealed, cb.Sealed) {
			t.Errorf("request %d sealed bytes differ from submission", i)
		}
		if aw.RunnerUp >= 0 {
			sawRunnerUp = true
			want := auc.bids[aw.RunnerUp].Channels[aw.Channel].Sealed
			if !bytes.Equal(req.RunnerUpSealed, want) {
				t.Errorf("request %d runner-up sealed bytes differ", i)
			}
		} else if req.RunnerUpSealed != nil {
			t.Errorf("request %d has runner-up ciphertext without a runner-up", i)
		}
	}
	if !sawRunnerUp {
		t.Log("no award had a runner-up; runner-up path not exercised by this seed")
	}
}
