package core

import (
	"lppa/internal/mask"
	"lppa/internal/obs"
)

// Observability wiring for the auctioneer (DESIGN.md §5c). The unobserved
// hot paths — the shared conflict-graph builder (graphbuild.go),
// columnRank's interned sort, GE's memo lookup — stay byte-identical to
// before: attaching a registry swaps in counted twins of the same
// operations, and every predicate outcome is unchanged because the counted
// mask operations delegate to the uncounted ones.

// aucObs holds the auctioneer's counter handles, resolved once in
// SetObserver so the observed paths never take the registry lock.
type aucObs struct {
	comparisons   *obs.Counter // masked set intersections evaluated
	bloomRejects  *obs.Counter // of those, decided by the Bloom pre-check
	rankMemoHits  *obs.Counter // GE answers served from a built column memo
	rankBuilds    *obs.Counter // column memos built
	internDigests *obs.Counter // digests pushed through intern dictionaries
	internHits    *obs.Counter // of those, already present (dedup wins)
	internMisses  *obs.Counter // of those, first sightings (distinct digests)

	// Indexed candidate generation (graphbuild.go, indexed builds only).
	indexPostings   *obs.Counter   // posting-list entries scanned for candidates
	indexCandidates *obs.Counter   // candidate pairs handed to the oracle confirm
	indexConfirms   *obs.Counter   // of those, confirmed as real conflicts
	indexBuild      *obs.Histogram // seconds interning + posting the index
}

// SetObserver attaches a metrics registry to the auctioneer. Call it
// before the first ConflictGraph/GE/Allocate use — the lazily built caches
// are counted only while being built. A nil registry detaches (the
// default), leaving every hot path exactly as fast as an unobserved run.
func (a *Auctioneer) SetObserver(reg *obs.Registry) {
	if reg == nil {
		a.ob = nil
		return
	}
	a.ob = &aucObs{
		comparisons:   reg.Counter("lppa_auctioneer_comparisons_total"),
		bloomRejects:  reg.Counter("lppa_auctioneer_bloom_rejects_total"),
		rankMemoHits:  reg.Counter("lppa_auctioneer_rank_memo_hits_total"),
		rankBuilds:    reg.Counter("lppa_auctioneer_rank_builds_total"),
		internDigests: reg.Counter("lppa_intern_digests_total"),
		internHits:    reg.Counter("lppa_intern_hits_total"),
		internMisses:  reg.Counter("lppa_intern_misses_total"),

		indexPostings:   reg.Counter("lppa_index_postings_scanned_total"),
		indexCandidates: reg.Counter("lppa_index_candidates_total"),
		indexConfirms:   reg.Counter("lppa_index_oracle_confirms_total"),
		indexBuild:      reg.Histogram("lppa_index_build_seconds", nil),
	}
}

// noteIntern folds one dictionary's ingest into the intern metrics: total
// digests passed through, of which distinct were first sightings (misses)
// and the rest were dedup hits.
func (o *aucObs) noteIntern(total, distinct int) {
	o.internDigests.Add(uint64(total))
	o.internHits.Add(uint64(total - distinct))
	o.internMisses.Add(uint64(distinct))
}

// flushStats folds a finished intersection tally into the registry.
func (o *aucObs) flushStats(st *mask.IntersectStats) {
	o.comparisons.Add(st.Calls)
	o.bloomRejects.Add(st.BloomRejects)
}

// geFunc returns the comparator handed to the allocator: GE itself when
// unobserved (no wrapper, no branch in the hot loop), or a thin wrapper
// that counts each rank-memo lookup.
func (a *Auctioneer) geFunc() func(r, i, j int) bool {
	if a.ob == nil {
		return a.GE
	}
	hits := a.ob.rankMemoHits
	return func(r, i, j int) bool {
		hits.Inc()
		return a.GE(r, i, j)
	}
}
