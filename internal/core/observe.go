package core

import (
	"strconv"

	"lppa/internal/mask"
	"lppa/internal/obs"
)

// Observability wiring for the auctioneer (DESIGN.md §5c). The unobserved
// hot paths — the shared conflict-graph builder (graphbuild.go),
// columnRank's interned sort, GE's memo lookup — stay byte-identical to
// before: attaching a registry swaps in counted twins of the same
// operations, and every predicate outcome is unchanged because the counted
// mask operations delegate to the uncounted ones.

// aucObs holds the auctioneer's counter handles, resolved once in
// SetObserver so the observed paths never take the registry lock.
type aucObs struct {
	comparisons   *obs.Counter // masked set intersections evaluated
	bloomRejects  *obs.Counter // of those, decided by the Bloom pre-check
	rankMemoHits  *obs.Counter // GE answers served from a built column memo
	rankBuilds    *obs.Counter // column memos built
	internDigests *obs.Counter // digests pushed through intern dictionaries
	internHits    *obs.Counter // of those, already present (dedup wins)
	internMisses  *obs.Counter // of those, first sightings (distinct digests)

	// Indexed candidate generation (graphbuild.go, indexed builds only).
	indexPostings   *obs.Counter   // posting-list entries scanned for candidates
	indexCandidates *obs.Counter   // candidate pairs handed to the oracle confirm
	indexConfirms   *obs.Counter   // of those, confirmed as real conflicts
	indexBuild      *obs.Histogram // seconds interning + posting the index

	// Per-shard rank-memo telemetry (sharded rounds only; shard.go). The
	// registry handle is kept so the counters can be minted lazily when a
	// shard plan arrives — the plan's tile count is unknown at SetObserver
	// time.
	reg             *obs.Registry
	shardRankBuilds []*obs.Counter // per-tile column sorts contributing to memos
	shardMemoHits   []*obs.Counter // memo entries served to the allocator, by home tile
}

// ensureShardCounters mints the per-shard counter handles for k tiles.
func (o *aucObs) ensureShardCounters(k int) {
	for s := len(o.shardRankBuilds); s < k; s++ {
		lbl := obs.L("shard", strconv.Itoa(s))
		o.shardRankBuilds = append(o.shardRankBuilds, o.reg.Counter("lppa_shard_rank_builds_total", lbl))
		o.shardMemoHits = append(o.shardMemoHits, o.reg.Counter("lppa_shard_rank_memo_hits_total", lbl))
	}
}

// SetObserver attaches a metrics registry to the auctioneer. Call it
// before the first ConflictGraph/GE/Allocate use — the lazily built caches
// are counted only while being built. A nil registry detaches (the
// default), leaving every hot path exactly as fast as an unobserved run.
func (a *Auctioneer) SetObserver(reg *obs.Registry) {
	if reg == nil {
		a.ob = nil
		return
	}
	a.ob = &aucObs{
		comparisons:   reg.Counter("lppa_auctioneer_comparisons_total"),
		bloomRejects:  reg.Counter("lppa_auctioneer_bloom_rejects_total"),
		rankMemoHits:  reg.Counter("lppa_auctioneer_rank_memo_hits_total"),
		rankBuilds:    reg.Counter("lppa_auctioneer_rank_builds_total"),
		internDigests: reg.Counter("lppa_intern_digests_total"),
		internHits:    reg.Counter("lppa_intern_hits_total"),
		internMisses:  reg.Counter("lppa_intern_misses_total"),

		indexPostings:   reg.Counter("lppa_index_postings_scanned_total"),
		indexCandidates: reg.Counter("lppa_index_candidates_total"),
		indexConfirms:   reg.Counter("lppa_index_oracle_confirms_total"),
		indexBuild:      reg.Histogram("lppa_index_build_seconds", nil),

		reg: reg,
	}
	if a.plan != nil {
		a.ob.ensureShardCounters(len(a.plan.Tiles))
	}
}

// noteIntern folds one dictionary's ingest into the intern metrics: total
// digests passed through, of which distinct were first sightings (misses)
// and the rest were dedup hits.
func (o *aucObs) noteIntern(total, distinct int) {
	o.internDigests.Add(uint64(total))
	o.internHits.Add(uint64(total - distinct))
	o.internMisses.Add(uint64(distinct))
}

// flushStats folds a finished intersection tally into the registry.
func (o *aucObs) flushStats(st *mask.IntersectStats) {
	o.comparisons.Add(st.Calls)
	o.bloomRejects.Add(st.BloomRejects)
}

// geFunc returns the comparator handed to the allocator: GE itself when
// unobserved (no wrapper, no branch in the hot loop), or a thin wrapper
// that counts each rank-memo lookup.
func (a *Auctioneer) geFunc() func(r, i, j int) bool {
	if a.ob == nil {
		return a.GE
	}
	hits := a.ob.rankMemoHits
	return func(r, i, j int) bool {
		hits.Inc()
		return a.GE(r, i, j)
	}
}

// servedHook returns the rank-cursor allocator's telemetry callback: each
// memo entry the allocator examines counts as one memo hit, attributed to
// the bidder's home tile. Nil — no callback, no per-entry branch — when
// unobserved.
func (a *Auctioneer) servedHook() func(bidder int) {
	if a.ob == nil {
		return nil
	}
	hits := a.ob.rankMemoHits
	home := a.plan.Home
	shard := a.ob.shardMemoHits
	return func(bidder int) {
		hits.Inc()
		shard[home[bidder]].Inc()
	}
}
