package core

import "lppa/internal/mask"

// Auctioneer-side interning (DESIGN.md §5b): on ingest the auctioneer maps
// every 16-byte digest it receives to a dense uint32 ID and evaluates all
// masked set operations on sorted-ID slices with a Bloom quick reject,
// instead of walking 16-byte-keyed maps. The map-based mask.Set stays the
// bidder-side encoding and wire type — interning is a private view of the
// same digests, so no protocol byte changes and every predicate outcome is
// identical by construction (pinned by the representation-equivalence
// tests). Dictionaries live for one auction: submissions are immutable
// after NewAuctioneer, so interned sets are never invalidated.

// internedLocation is the compact form of one LocationSubmission. All four
// sets of all bidders share one Dict, so cross-bidder intersections
// compare IDs meaningfully.
type internedLocation struct {
	xFamily, yFamily, xRange, yRange mask.IntSet
}

// internLocations interns a whole population under one fresh dictionary.
// It also reports how many digests passed through the dictionary and how
// many were distinct (dictionary misses) — the difference is the intern
// hit count the observability layer exports. Callers that do not observe
// ignore both. A non-nil ix is populated incrementally during the same
// ingest pass: each bidder's X family and X range cover are posted as they
// are interned (graphbuild.go; nil skips the index entirely).
func internLocations(subs []*LocationSubmission, ix *mask.Index) (out []internedLocation, total, distinct int) {
	var dict *mask.Dict
	if len(subs) > 0 {
		s := subs[0]
		dict = mask.NewDictCap(len(subs) * (s.XFamily.Len() + s.YFamily.Len() + s.XRange.Len() + s.YRange.Len()))
	} else {
		dict = mask.NewDict()
	}
	// Bidders sharing one submission pointer (the batch encoder hands
	// co-located bidders the same immutable submission) intern once and
	// share the result; the index is still posted per bidder so the
	// global candidate rows stay complete.
	out = make([]internedLocation, len(subs))
	memo := make(map[*LocationSubmission]int, len(subs))
	for i, s := range subs {
		if j, ok := memo[s]; ok {
			out[i] = out[j]
		} else {
			memo[s] = i
			total += s.XFamily.Len() + s.YFamily.Len() + s.XRange.Len() + s.YRange.Len()
			out[i] = internedLocation{
				xFamily: dict.InternSet(s.XFamily),
				yFamily: dict.InternSet(s.YFamily),
				xRange:  dict.InternSet(s.XRange),
				yRange:  dict.InternSet(s.YRange),
			}
		}
		if ix != nil {
			ix.Add(out[i].xFamily, out[i].xRange)
		}
	}
	return out, total, dict.Len()
}

// conflicts is Conflicts on the interned representation: i's coordinate
// families must intersect j's range covers on both axes.
func (a *internedLocation) conflicts(b *internedLocation) bool {
	return a.xFamily.Intersects(b.xRange) && a.yFamily.Intersects(b.yRange)
}

// conflictsCounted is conflicts with intersection tallies (observed
// conflict-graph builds only; the uncounted path stays untouched).
func (a *internedLocation) conflictsCounted(b *internedLocation, st *mask.IntersectStats) bool {
	return a.xFamily.IntersectsCounted(b.xRange, st) && a.yFamily.IntersectsCounted(b.yRange, st)
}

// internedChannelBid is the compact form of one ChannelBid. One Dict
// serves one bid column: digests under different per-channel keys never
// need to be compared, so per-column dictionaries keep IDs dense.
type internedChannelBid struct {
	family, rng mask.IntSet
}

// internColumn interns column r of a bid matrix under a fresh dictionary.
// Like internLocations it reports digest throughput and distinct count
// for the observability layer.
func internColumn(bids []*BidSubmission, r int) (out []internedChannelBid, total, distinct int) {
	var dict *mask.Dict
	if len(bids) > 0 {
		cb := &bids[0].Channels[r]
		dict = mask.NewDictCap(len(bids) * (cb.Family.Len() + cb.Range.Len()))
	} else {
		dict = mask.NewDict()
	}
	out = make([]internedChannelBid, len(bids))
	for i, b := range bids {
		cb := &b.Channels[r]
		total += cb.Family.Len() + cb.Range.Len()
		out[i] = internedChannelBid{
			family: dict.InternSet(cb.Family),
			rng:    dict.InternSet(cb.Range),
		}
	}
	return out, total, dict.Len()
}

// ge is CompareGE on the interned representation.
func (a *internedChannelBid) ge(b *internedChannelBid) bool {
	return a.family.Intersects(b.rng)
}

// geCounted is ge with intersection tallies (observed rank-memo builds
// only).
func (a *internedChannelBid) geCounted(b *internedChannelBid, st *mask.IntersectStats) bool {
	return a.family.IntersectsCounted(b.rng, st)
}
