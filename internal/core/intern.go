package core

import "lppa/internal/mask"

// Auctioneer-side interning (DESIGN.md §5b): on ingest the auctioneer maps
// every 16-byte digest it receives to a dense uint32 ID and evaluates all
// masked set operations on sorted-ID slices with a Bloom quick reject,
// instead of walking 16-byte-keyed maps. The map-based mask.Set stays the
// bidder-side encoding and wire type — interning is a private view of the
// same digests, so no protocol byte changes and every predicate outcome is
// identical by construction (pinned by the representation-equivalence
// tests). Dictionaries live for one auction: submissions are immutable
// after NewAuctioneer, so interned sets are never invalidated.

// internedLocation is the compact form of one LocationSubmission. All four
// sets of all bidders share one Dict, so cross-bidder intersections
// compare IDs meaningfully.
type internedLocation struct {
	xFamily, yFamily, xRange, yRange mask.IntSet
}

// internLocations interns a whole population under one fresh dictionary.
func internLocations(subs []*LocationSubmission) []internedLocation {
	var dict *mask.Dict
	if len(subs) > 0 {
		s := subs[0]
		dict = mask.NewDictCap(len(subs) * (s.XFamily.Len() + s.YFamily.Len() + s.XRange.Len() + s.YRange.Len()))
	} else {
		dict = mask.NewDict()
	}
	out := make([]internedLocation, len(subs))
	for i, s := range subs {
		out[i] = internedLocation{
			xFamily: dict.InternSet(s.XFamily),
			yFamily: dict.InternSet(s.YFamily),
			xRange:  dict.InternSet(s.XRange),
			yRange:  dict.InternSet(s.YRange),
		}
	}
	return out
}

// conflicts is Conflicts on the interned representation: i's coordinate
// families must intersect j's range covers on both axes.
func (a *internedLocation) conflicts(b *internedLocation) bool {
	return a.xFamily.Intersects(b.xRange) && a.yFamily.Intersects(b.yRange)
}

// internedChannelBid is the compact form of one ChannelBid. One Dict
// serves one bid column: digests under different per-channel keys never
// need to be compared, so per-column dictionaries keep IDs dense.
type internedChannelBid struct {
	family, rng mask.IntSet
}

// internColumn interns column r of a bid matrix under a fresh dictionary.
func internColumn(bids []*BidSubmission, r int) []internedChannelBid {
	var dict *mask.Dict
	if len(bids) > 0 {
		cb := &bids[0].Channels[r]
		dict = mask.NewDictCap(len(bids) * (cb.Family.Len() + cb.Range.Len()))
	} else {
		dict = mask.NewDict()
	}
	out := make([]internedChannelBid, len(bids))
	for i, b := range bids {
		cb := &b.Channels[r]
		out[i] = internedChannelBid{
			family: dict.InternSet(cb.Family),
			rng:    dict.InternSet(cb.Range),
		}
	}
	return out
}

// ge is CompareGE on the interned representation.
func (a *internedChannelBid) ge(b *internedChannelBid) bool {
	return a.family.Intersects(b.rng)
}
