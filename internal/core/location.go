package core

import (
	"fmt"
	"sync"

	"lppa/internal/conflict"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/prefix"
)

// LocationSubmission is what a bidder reveals about its position: masked
// prefix families of its coordinates and masked prefix covers of its
// interference ranges (section IV.A). The auctioneer can evaluate the
// pairwise conflict predicate and nothing else.
type LocationSubmission struct {
	XFamily, YFamily mask.Set // H_g0(G(loc_x)), H_g0(G(loc_y))
	XRange, YRange   mask.Set // H_g0(Q([loc_x ± (2λ−1)])), same for y
}

// NewLocationSubmission builds the masked location submission for a bidder
// at point pt. The interference predicate is strict (|Δ| < 2λ), so with
// integer coordinates the submitted range is [loc − (2λ−1), loc + (2λ−1)],
// clamped to the coordinate domain.
func NewLocationSubmission(params Params, ring *mask.KeyRing, pt geo.Point) (*LocationSubmission, error) {
	masker, err := mask.NewMasker(ring.G0)
	if err != nil {
		return nil, fmt.Errorf("core: location masker: %w", err)
	}
	return newLocationSubmission(params, masker, pt)
}

// newLocationSubmission is NewLocationSubmission against a caller-owned
// masker, so batch encoders can amortize the HMAC state across bidders.
func newLocationSubmission(params Params, masker *mask.Masker, pt geo.Point) (*LocationSubmission, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if pt.X > params.MaxX || pt.Y > params.MaxY {
		return nil, fmt.Errorf("core: point (%d,%d) outside domain (%d,%d)", pt.X, pt.Y, params.MaxX, params.MaxY)
	}
	delta := 2*params.Lambda - 1
	wx, wy := params.CoordWidthX(), params.CoordWidthY()

	xlo, xhi := geo.ClampRange(pt.X, delta, params.MaxX)
	ylo, yhi := geo.ClampRange(pt.Y, delta, params.MaxY)

	return &LocationSubmission{
		XFamily: masker.MaskSet(prefix.Numericalized(prefix.Family(pt.X, wx))),
		YFamily: masker.MaskSet(prefix.Numericalized(prefix.Family(pt.Y, wy))),
		XRange:  masker.MaskSet(prefix.Numericalized(prefix.Cover(xlo, xhi, wx))),
		YRange:  masker.MaskSet(prefix.Numericalized(prefix.Cover(ylo, yhi, wy))),
	}, nil
}

// NewLocationSubmissions builds the masked location submissions for a
// whole population, sharding bidders across at most workers goroutines
// (≤ 1 runs serially). Location masking draws no randomness, so the result
// is identical to calling NewLocationSubmission per point in order, for
// every worker count. Each worker reuses one masker across its bidders.
func NewLocationSubmissions(params Params, ring *mask.KeyRing, pts []geo.Point, workers int) ([]*LocationSubmission, error) {
	masker, err := mask.NewMasker(ring.G0)
	if err != nil {
		return nil, fmt.Errorf("core: location masker: %w", err)
	}
	// Duplicate points share one submission: masking is deterministic under
	// the shared key, so equal points produce byte-identical submissions,
	// and submissions are immutable once built. first[d] remembers the
	// earliest bidder at each distinct point — distinct points are visited
	// in first-appearance order, so the reported bidder on failure is the
	// same one the per-bidder sweep would have blamed.
	uniq := make(map[geo.Point]int, len(pts))
	upts := make([]geo.Point, 0, len(pts))
	first := make([]int, 0, len(pts))
	slot := make([]int, len(pts))
	for i, pt := range pts {
		d, ok := uniq[pt]
		if !ok {
			d = len(upts)
			uniq[pt] = d
			upts = append(upts, pt)
			first = append(first, i)
		}
		slot[i] = d
	}

	usubs := make([]*LocationSubmission, len(upts))
	workers = mask.Workers(workers, len(upts))
	if workers <= 1 {
		for d, pt := range upts {
			if usubs[d], err = newLocationSubmission(params, masker, pt); err != nil {
				return nil, fmt.Errorf("core: bidder %d location: %w", first[d], err)
			}
		}
	} else {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				local := masker.Clone()
				for d := w; d < len(upts); d += workers {
					sub, err := newLocationSubmission(params, local, upts[d])
					if err != nil {
						errs[w] = fmt.Errorf("core: bidder %d location: %w", first[d], err)
						return
					}
					usubs[d] = sub
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	out := make([]*LocationSubmission, len(pts))
	for i, d := range slot {
		out[i] = usubs[d]
	}
	return out, nil
}

// Conflicts evaluates the masked conflict predicate between two
// submissions: i's coordinate families must intersect j's range covers on
// both axes (section IV.A step iv). The predicate is symmetric because the
// underlying intervals share the same half-width.
func Conflicts(a, b *LocationSubmission) bool {
	return a.XFamily.Intersects(b.XRange) && a.YFamily.Intersects(b.YRange)
}

// BuildConflictGraph constructs the interference graph from masked
// submissions only — the auctioneer-side half of the Private Location
// Submission protocol. The O(n) interning pass up front turns each of the
// O(n²) predicate evaluations into sorted-ID merges behind a Bloom quick
// reject (intern.go); the graph is identical to evaluating Conflicts
// directly, pinned by the representation-equivalence tests.
func BuildConflictGraph(subs []*LocationSubmission) *conflict.Graph {
	iloc, _, _ := internLocations(subs, nil)
	return conflict.BuildFromPredicate(len(subs), func(i, j int) bool {
		return iloc[i].conflicts(&iloc[j])
	})
}

// BuildConflictGraphParallel is BuildConflictGraph with the O(n²) pairwise
// predicate sharded across at most workers goroutines. Interning happens
// once, serially, before the sweep; the interned sets are immutable and
// read concurrently without synchronization, so the resulting graph is
// bit-for-bit identical to the serial build for every worker count.
func BuildConflictGraphParallel(subs []*LocationSubmission, workers int) *conflict.Graph {
	iloc, _, _ := internLocations(subs, nil)
	return conflict.BuildFromPredicateParallel(len(subs), func(i, j int) bool {
		return iloc[i].conflicts(&iloc[j])
	}, mask.Workers(workers, len(subs)))
}
