package load

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validReport() *Report {
	return &Report{
		Schema: Schema,
		Seed:   42,
		Runs: []RunReport{{
			Name: "interned/mixed/n100", Variant: VariantInterned, Density: "mixed",
			Bidders: 100, Rounds: 5, Epochs: 0,
			Submitted: 500, Admitted: 500, Winners: 40, Revenue: 2000,
			AwardDigest:  "abc123",
			WallSeconds:  0.5, RoundsPerSec: 10,
			Phases: map[string]PhaseStats{
				"round":    {Count: 5, P50Ms: 10, P95Ms: 20, P99Ms: 25, MaxMs: 30, MeanMs: 12},
				"allocate": {Count: 5, P50Ms: 2, P95Ms: 4, P99Ms: 5, MaxMs: 6, MeanMs: 3},
			},
		}},
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	r := validReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs[0].Name != r.Runs[0].Name || got.Runs[0].RoundsPerSec != r.Runs[0].RoundsPerSec {
		t.Fatalf("round trip mangled the report: %+v", got.Runs[0])
	}
}

func TestDecodeRejects(t *testing.T) {
	mutate := func(f func(*Report)) []byte {
		r := validReport()
		f(r)
		data, _ := json.Marshal(r)
		return data
	}
	cases := map[string][]byte{
		"empty":           nil,
		"truncated":       []byte(`{"schema": "lppa-load/v1", "runs": [{"na`),
		"not-json":        []byte("rounds/sec: lots"),
		"wrong-schema":    mutate(func(r *Report) { r.Schema = "lppa-load/v0" }),
		"no-runs":         mutate(func(r *Report) { r.Runs = nil }),
		"unnamed-run":     mutate(func(r *Report) { r.Runs[0].Name = "" }),
		"duplicate-run":   mutate(func(r *Report) { r.Runs = append(r.Runs, r.Runs[0]) }),
		"zero-bidders":    mutate(func(r *Report) { r.Runs[0].Bidders = 0 }),
		"negative-count":  mutate(func(r *Report) { r.Runs[0].Shed = -1 }),
		"negative-timing": mutate(func(r *Report) { r.Runs[0].WallSeconds = -0.1 }),
		"non-monotone-percentiles": mutate(func(r *Report) {
			ps := r.Runs[0].Phases["round"]
			ps.P50Ms, ps.P99Ms = 30, 10
			r.Runs[0].Phases["round"] = ps
		}),
		"bad-slo": mutate(func(r *Report) {
			r.SLO = &SLO{MinRoundsPerSec: map[string]float64{"x": -5}}
		}),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestStripTiming(t *testing.T) {
	r := validReport()
	r.SLO = &SLO{MinRoundsPerSec: map[string]float64{"interned/mixed/n100": 5}}
	s := r.StripTiming()
	run := s.Runs[0]
	if run.WallSeconds != 0 || run.RoundsPerSec != 0 || run.AllocsPerRound != 0 {
		t.Errorf("timing fields survived strip: %+v", run)
	}
	if run.Phases["round"].Count != 5 || run.Phases["round"].P99Ms != 0 {
		t.Errorf("phase strip kept durations or lost counts: %+v", run.Phases["round"])
	}
	if s.SLO != nil {
		t.Error("SLO block survived strip")
	}
	if run.AwardDigest != "abc123" || run.Submitted != 500 {
		t.Errorf("accounting fields stripped: %+v", run)
	}
	// The original is untouched (StripTiming copies).
	if r.Runs[0].RoundsPerSec != 10 || r.SLO == nil {
		t.Error("StripTiming mutated its receiver")
	}
}

func TestDeriveSLO(t *testing.T) {
	r := validReport()
	slo, err := DeriveSLO(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := slo.MinRoundsPerSec["interned/mixed/n100"]; got != 2.5 {
		t.Errorf("min rounds/sec = %v, want 10/4", got)
	}
	if got := slo.MaxPhaseP99Ms["interned/mixed/n100"]["round"]; got != 100 {
		t.Errorf("max round p99 = %v, want 25*4", got)
	}
	if _, err := DeriveSLO(r, 1); err == nil {
		t.Error("headroom 1 accepted")
	}
	// A report carrying its own derived SLO must still validate.
	r.SLO = slo
	if err := r.Validate(); err != nil {
		t.Errorf("derived SLO fails validation: %v", err)
	}
}

func TestCompareGate(t *testing.T) {
	baseline := validReport()
	slo, err := DeriveSLO(baseline, 2)
	if err != nil {
		t.Fatal(err)
	}
	baseline.SLO = slo

	// Candidate holding every SLO passes clean.
	if v, err := Compare(baseline, validReport()); err != nil || len(v) != 0 {
		t.Fatalf("clean candidate: violations=%v err=%v", v, err)
	}

	// Throughput collapse and a p99 blowout each produce a violation.
	slow := validReport()
	slow.Runs[0].RoundsPerSec = 1
	ps := slow.Runs[0].Phases["round"]
	ps.P95Ms, ps.P99Ms, ps.MaxMs = 400, 500, 600
	slow.Runs[0].Phases["round"] = ps
	v, err := Compare(baseline, slow)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 2 {
		t.Fatalf("violations = %v, want throughput + p99", v)
	}
	if !strings.Contains(v[0], "below SLO floor") || !strings.Contains(v[1], "above SLO ceiling") {
		t.Errorf("violation wording: %v", v)
	}

	// A run the SLO names but the candidate lost is a violation, not a pass.
	empty := validReport()
	empty.Runs[0].Name = "renamed/mixed/n100"
	if v, err := Compare(baseline, empty); err != nil || len(v) == 0 {
		t.Fatalf("missing run: violations=%v err=%v", v, err)
	}

	// Fail closed: a baseline without an SLO block errors.
	if _, err := Compare(validReport(), validReport()); err == nil {
		t.Error("SLO-less baseline compared without error")
	}
	if _, err := Compare(nil, validReport()); err == nil {
		t.Error("nil baseline compared without error")
	}
}

func TestCompareFilesFailClosed(t *testing.T) {
	dir := t.TempDir()
	candidate := filepath.Join(dir, "candidate.json")
	var buf bytes.Buffer
	if err := validReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(candidate, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Missing baseline file: error, never a pass.
	if _, err := CompareFiles(filepath.Join(dir, "missing.json"), candidate); err == nil {
		t.Error("missing baseline compared without error")
	}
	// Corrupt baseline: same.
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"schema":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareFiles(corrupt, candidate); err == nil {
		t.Error("corrupt baseline compared without error")
	}
}

// FuzzLoadReportDecode pins the loader's contract: arbitrary input may
// error but must never panic, and anything that decodes must re-encode
// and decode again (validity is stable under round-trip).
func FuzzLoadReportDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := validReport().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"schema": "lppa-load/v1", "runs": []}`))
	f.Add([]byte(`{"schema": "lppa-load/v1", "seed": 1, "runs": [{"name": "x", "bidders": 1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`{"schema": "lppa-load/v1", "runs": [{"name": "x", "bidders": 1, "phases": {"round": {"p50_ms": 9, "p99_ms": 1}}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Decode(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("decoded report failed to encode: %v", err)
		}
		if _, err := Decode(buf.Bytes()); err != nil {
			t.Fatalf("round-tripped report failed to decode: %v", err)
		}
	})
}
