package load

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/epoch"
	"lppa/internal/faults"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
	"lppa/internal/round"
	"lppa/internal/sim"
)

// Variants the harness drives. The one-shot variants run round.Run
// closed-loop (every present bidder, one round per iteration); "service"
// replays a seeded arrival/churn schedule through the epochal pipeline on
// its logical clock.
const (
	VariantPlain    = "plain"    // no digest interning (PR1-era baseline)
	VariantInterned = "interned" // default path: interned masked digests
	VariantIndexed  = "indexed"  // inverted-index candidate generation
	VariantSharded  = "sharded"  // tile-sharded rounds (Shards tiles)
	VariantService  = "service"  // epochal service, open-loop arrivals
)

// Variants lists every variant name, in sweep order.
func Variants() []string {
	return []string{VariantPlain, VariantInterned, VariantIndexed, VariantSharded, VariantService}
}

// Seed-stream salts: each consumer of Config.Seed gets its own splitmix
// lane so adding draws to one never perturbs another.
const (
	saltPopulation = 0x706f70 // "pop": bidder placement
	saltBids       = 0x626964 // "bid": per-round / per-event valuations
	saltChaos      = 0x63686f // "cho": drop/dup decisions
	saltSchedule   = 0x736368 // "sch": arrival/churn event times
)

// Config describes one workload run. The zero value is not runnable;
// Bidders, Rounds, and Variant are required.
type Config struct {
	// Bidders is the population size N; Channels the spectrum width
	// (default 8). Density names the placement mix (default "mixed").
	Bidders  int
	Channels int
	Density  string
	// Variant selects the execution path; Shards the tile count for
	// "sharded" (default 8) and, when positive, also composes into
	// "service" epochs. Workers is the pipeline width (0 = one per CPU).
	Variant string
	Shards  int
	Workers int
	// Rounds is the closed-loop round count, or — for "service" — the
	// epoch budget: the arrival horizon spans Rounds seal intervals.
	Rounds int
	Seed   int64
	// Arrival shapes the service variant's open-loop schedule. The zero
	// value derives a default: Poisson arrivals across the horizon with
	// 20% resubmission and 5% departure churn. EpochSeconds is the seal
	// cadence on the logical clock (default 1s); RateLimit the admission
	// token rate in submissions per logical second (0 admits everything).
	Arrival      sim.ArrivalConfig
	EpochSeconds float64
	RateLimit    float64
	// Chaos drops or duplicates submissions at the configured per-frame
	// rates (DropFrame, DupFrame — the same knobs the fault-injecting
	// transport uses). Decisions are drawn from a dedicated seeded stream
	// in fixed order, so enabling one fault never re-times another.
	Chaos faults.Config
	// Registry, when non-nil, receives the round and admission counters.
	Registry *obs.Registry
}

// Name is the run's stable identity in reports and SLO blocks:
// variant[+shards]/density/nBidders.
func (c Config) Name() string {
	v := c.Variant
	if c.Shards > 0 && (c.Variant == VariantSharded || c.Variant == VariantService) {
		v = fmt.Sprintf("%s%d", c.Variant, c.Shards)
	}
	return fmt.Sprintf("%s/%s/n%d", v, c.density(), c.Bidders)
}

func (c Config) density() string {
	if c.Density == "" {
		return "mixed"
	}
	return c.Density
}

// normalize fills defaults and validates; it returns the resolved config.
func (c Config) normalize() (Config, error) {
	if c.Bidders <= 0 {
		return c, fmt.Errorf("load: %d bidders, need at least 1", c.Bidders)
	}
	if c.Rounds <= 0 {
		return c, fmt.Errorf("load: %d rounds, need at least 1", c.Rounds)
	}
	if c.Channels == 0 {
		c.Channels = 8
	}
	if c.Channels < 1 {
		return c, fmt.Errorf("load: %d channels, need at least 1", c.Channels)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("load: negative workers %d", c.Workers)
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("load: negative shards %d", c.Shards)
	}
	c.Density = c.density()
	switch c.Variant {
	case VariantPlain, VariantInterned, VariantIndexed, VariantService:
	case VariantSharded:
		if c.Shards == 0 {
			c.Shards = 8
		}
	default:
		return c, fmt.Errorf("load: unknown variant %q (want one of %v)", c.Variant, Variants())
	}
	if c.Variant != VariantSharded && c.Variant != VariantService {
		c.Shards = 0
	}
	if c.EpochSeconds == 0 {
		c.EpochSeconds = 1
	}
	if c.EpochSeconds < 0 {
		return c, fmt.Errorf("load: negative epoch seconds %v", c.EpochSeconds)
	}
	if c.RateLimit < 0 {
		return c, fmt.Errorf("load: negative rate limit %v", c.RateLimit)
	}
	for what, rate := range map[string]float64{"drop": c.Chaos.DropFrame, "dup": c.Chaos.DupFrame} {
		if rate < 0 || rate > 1 {
			return c, fmt.Errorf("load: chaos %s rate %v outside [0,1]", what, rate)
		}
	}
	if c.Variant == VariantService {
		a := &c.Arrival
		if a.Horizon == 0 {
			a.Horizon = float64(c.Rounds) * c.EpochSeconds
		}
		if a.Process == "" {
			a.Process = "poisson"
			if a.ResubmitFrac == 0 && a.DepartFrac == 0 {
				a.ResubmitFrac, a.DepartFrac = 0.2, 0.05
			}
		}
		if err := a.Validate(); err != nil {
			return c, err
		}
	}
	return c, nil
}

// fixture is the protocol agreement every run executes under, derived
// from the config alone.
type fixture struct {
	params core.Params
	ring   *mask.KeyRing
	policy core.DisguisePolicy
	points []geo.Point
	mix    dataset.DensityMix
}

func buildFixture(c Config) (*fixture, error) {
	mix, err := dataset.ParseDensity(c.Density)
	if err != nil {
		return nil, err
	}
	grid := geo.Grid{Rows: 100, Cols: 100, SideMeters: 75_000}
	params := core.Params{
		Channels: c.Channels, Lambda: mix.Lambda,
		MaxX: uint64(grid.Cols - 1), MaxY: uint64(grid.Rows - 1), BMax: 100,
	}
	ring, err := mask.DeriveKeyRing([]byte(fmt.Sprintf("lppa-load:%d", c.Seed)), c.Channels, 5, 8)
	if err != nil {
		return nil, err
	}
	popRng := rand.New(rand.NewSource(epoch.EpochSeed(c.Seed^saltPopulation, 0)))
	return &fixture{
		params: params,
		ring:   ring,
		policy: core.DisguisePolicy{P0: 0.6, Decay: 0.95},
		points: mix.Points(grid, c.Bidders, popRng),
		mix:    mix,
	}, nil
}

// bidsFor draws one bidder's per-channel valuations: a quarter of
// (bidder, channel) pairs sit out with a zero bid, the rest bid uniformly
// in [1, BMax].
func bidsFor(rng *rand.Rand, channels int, bmax uint64) []uint64 {
	bids := make([]uint64, channels)
	for ch := range bids {
		if rng.Intn(4) > 0 {
			bids[ch] = 1 + uint64(rng.Int63n(int64(bmax)))
		}
	}
	return bids
}

// chaosStream draws drop/dup decisions in a fixed two-draws-per-frame
// order (the faults package's schedule discipline): enabling one fault
// class never re-times the other's stream.
type chaosStream struct {
	rng  *rand.Rand
	drop float64
	dup  float64
}

func newChaosStream(seed int64, cfg faults.Config) *chaosStream {
	return &chaosStream{
		rng:  rand.New(rand.NewSource(epoch.EpochSeed(seed^saltChaos, 0))),
		drop: cfg.DropFrame,
		dup:  cfg.DupFrame,
	}
}

func (c *chaosStream) next() (drop, dup bool) {
	drop = c.rng.Float64() < c.drop
	dup = c.rng.Float64() < c.dup
	return drop, dup
}

// Run executes one workload run and reports it. The accounting fields of
// the result are a pure function of cfg (see RunReport.StripTiming); the
// timing fields are measured.
func Run(cfg Config) (*RunReport, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	fx, err := buildFixture(cfg)
	if err != nil {
		return nil, err
	}
	rep := &RunReport{
		Name: cfg.Name(), Variant: cfg.Variant, Density: cfg.Density,
		Bidders: cfg.Bidders, Workers: cfg.Workers, Shards: cfg.Shards,
		Rounds: cfg.Rounds,
	}
	tracer := obs.NewTracerBuffered("load", spanBudget(cfg))
	agg := obs.NewSpanAggregator()
	digest := sha256.New()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if cfg.Variant == VariantService {
		err = runService(cfg, fx, tracer, agg, digest, rep)
	} else {
		err = runRounds(cfg, fx, tracer, agg, digest, rep)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, err
	}

	rep.AwardDigest = hex.EncodeToString(digest.Sum(nil))
	rep.WallSeconds = wall.Seconds()
	if rep.WallSeconds > 0 {
		if rep.Epochs > 0 {
			rep.EpochsPerSec = float64(rep.Epochs) / rep.WallSeconds
			rep.RoundsPerSec = rep.EpochsPerSec
		} else {
			rep.RoundsPerSec = float64(rep.Rounds) / rep.WallSeconds
		}
	}
	executed := rep.Rounds
	if cfg.Variant == VariantService {
		executed = rep.Epochs
	}
	if executed > 0 {
		rep.AllocsPerRound = float64(after.Mallocs-before.Mallocs) / float64(executed)
	}
	rep.Phases = phaseStats(agg)
	return rep, nil
}

// spanBudget sizes the tracer ring so a full run's spans fit: one root
// plus ~6 phase spans per round, plus per-tile shard spans.
func spanBudget(cfg Config) int {
	perRound := 8 + cfg.Shards
	budget := cfg.Rounds * perRound
	if budget < 4096 {
		budget = 4096
	}
	if budget > 1<<20 {
		budget = 1 << 20
	}
	return budget
}

func phaseStats(agg *obs.SpanAggregator) map[string]PhaseStats {
	phases := make(map[string]PhaseStats)
	for _, name := range agg.Names() {
		s := agg.Summary(name)
		phases[name] = PhaseStats{
			Count:  s.Count(),
			P50Ms:  ms(s.Quantile(0.50)),
			P95Ms:  ms(s.Quantile(0.95)),
			P99Ms:  ms(s.Quantile(0.99)),
			MaxMs:  ms(s.Max()),
			MeanMs: ms(s.Mean()),
		}
	}
	return phases
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// roundOptions maps the variant onto round.Run options. Every variant
// runs the seeded pipeline (WithWorkers), so worker count changes cost,
// never outcomes.
func roundOptions(cfg Config, tracer *obs.Tracer) []round.Option {
	opts := []round.Option{round.WithWorkers(cfg.Workers), round.WithTrace(tracer)}
	switch cfg.Variant {
	case VariantPlain:
		opts = append(opts, round.WithoutInterning())
	case VariantIndexed:
		opts = append(opts, round.WithIndexedCandidates())
	case VariantSharded:
		opts = append(opts, round.WithShards(cfg.Shards))
	case VariantService:
		if cfg.Shards > 0 {
			opts = append(opts, round.WithShards(cfg.Shards))
		}
	}
	if cfg.Registry != nil {
		opts = append(opts, round.WithObserver(cfg.Registry))
	}
	return opts
}

// runRounds is the closed-loop driver: Rounds back-to-back one-shot
// rounds over the full population, minus any chaos-dropped submissions.
func runRounds(cfg Config, fx *fixture, tracer *obs.Tracer, agg *obs.SpanAggregator, digest io.Writer, rep *RunReport) error {
	opts := roundOptions(cfg, tracer)
	chaos := newChaosStream(cfg.Seed, cfg.Chaos)
	present := make([]int, 0, cfg.Bidders)
	pts := make([]geo.Point, 0, cfg.Bidders)
	bids := make([][]uint64, 0, cfg.Bidders)
	for r := 0; r < cfg.Rounds; r++ {
		bidRng := rand.New(rand.NewSource(epoch.EpochSeed(cfg.Seed^saltBids, r)))
		present, pts, bids = present[:0], pts[:0], bids[:0]
		for b := 0; b < cfg.Bidders; b++ {
			bb := bidsFor(bidRng, cfg.Channels, fx.params.BMax)
			drop, dup := chaos.next()
			rep.Submitted++
			if dup {
				// A duplicated frame arrives twice; submission handling is
				// idempotent, so it costs accounting, not outcomes.
				rep.Submitted++
				rep.Duplicated++
			}
			if drop {
				rep.Dropped++
				continue
			}
			rep.Admitted++
			present = append(present, b)
			pts = append(pts, fx.points[b])
			bids = append(bids, bb)
		}
		if len(present) < cfg.Bidders {
			rep.Degraded++
		}
		if len(present) == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(epoch.EpochSeed(cfg.Seed, r)))
		res, err := round.Run(fx.params, fx.ring, round.Input{
			Points: pts, Bids: bids, Policy: fx.policy, Rng: rng,
		}, opts...)
		if err != nil {
			return fmt.Errorf("load: round %d: %w", r, err)
		}
		writeAward(digest, r, present, res)
		rep.Winners += res.Outcome.SatisfiedBidders
		rep.Revenue += res.Outcome.Revenue
		agg.AddSpans(tracer.Take())
	}
	return nil
}

// runService is the open-loop driver: the seeded arrival/churn schedule
// replays through the epochal service on its logical clock, sealing every
// EpochSeconds. Chaos drops erase a submission before it arrives; dups
// double-submit (exercising latest-wins); rate-limit rejections count as
// shed load.
func runService(cfg Config, fx *fixture, tracer *obs.Tracer, agg *obs.SpanAggregator, digest io.Writer, rep *RunReport) error {
	schedRng := rand.New(rand.NewSource(epoch.EpochSeed(cfg.Seed^saltSchedule, 0)))
	schedule, err := sim.BuildSchedule(cfg.Arrival, cfg.Bidders, schedRng)
	if err != nil {
		return err
	}
	var adm epoch.AdmissionConfig
	if cfg.RateLimit > 0 {
		burst := cfg.RateLimit
		if burst < 1 {
			burst = 1
		}
		adm = epoch.AdmissionConfig{Rate: cfg.RateLimit, Burst: burst}
	}
	svc, err := epoch.New(epoch.Config{
		Params: fx.params, Ring: fx.ring, Seed: cfg.Seed, Policy: fx.policy,
		Admission:    adm,
		RoundOptions: roundOptions(cfg, tracer),
		Registry:     cfg.Registry,
	})
	if err != nil {
		return err
	}
	// Collect on a dedicated goroutine so the 1-deep seal queue plus the
	// results buffer can never wedge a long replay (Finish's drain starts
	// too late for schedules that seal more epochs than the buffer holds).
	var results []*epoch.EpochResult
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for r := range svc.Results() {
			results = append(results, r)
		}
	}()

	chaos := newChaosStream(cfg.Seed, cfg.Chaos)
	seq := make(map[int]int, cfg.Bidders)
	nextSeal := cfg.EpochSeconds
	submit := func(ev sim.ArrivalEvent, bids []uint64) {
		rep.Submitted++
		err := svc.SubmitAt(epoch.Submission{Bidder: ev.Bidder, Point: fx.points[ev.Bidder], Bids: bids}, ev.At)
		var rl *epoch.ErrRateLimited
		switch {
		case err == nil:
			rep.Admitted++
		case errors.As(err, &rl):
			rep.Shed++
		}
	}
	for _, ev := range schedule {
		for ev.At >= nextSeal {
			if err := svc.Seal(); err != nil {
				return err
			}
			nextSeal += cfg.EpochSeconds
		}
		if ev.Kind == sim.EventDepart {
			if ok, err := svc.Withdraw(ev.Bidder); err != nil {
				return err
			} else if ok {
				rep.Departed++
			}
			continue
		}
		bids := bidsFor(rand.New(rand.NewSource(
			epoch.EpochSeed(cfg.Seed^saltBids+int64(ev.Bidder), seq[ev.Bidder]))),
			cfg.Channels, fx.params.BMax)
		seq[ev.Bidder]++
		if ev.Kind == sim.EventResubmit {
			rep.Resubmitted++
		}
		drop, dup := chaos.next()
		if drop {
			// The bidder sent it; the wire ate it.
			rep.Submitted++
			rep.Dropped++
			continue
		}
		submit(ev, bids)
		if dup {
			rep.Duplicated++
			submit(ev, bids)
		}
	}
	// Close seals residual intake as the final epoch and drains the runner.
	if err := svc.Close(); err != nil {
		return err
	}
	<-collected

	rep.Epochs = len(results)
	for _, er := range results {
		if er.Err != nil {
			rep.Degraded++
			fmt.Fprintf(digest, "epoch %d error %v\n", er.Epoch, er.Err)
			continue
		}
		if len(er.Result.Excluded) > 0 {
			rep.Degraded++
		}
		writeAward(digest, er.Epoch, er.Bidders, er.Result)
		rep.Winners += er.Result.Outcome.SatisfiedBidders
		rep.Revenue += er.Result.Outcome.Revenue
	}
	agg.AddSpans(tracer.Take())
	return nil
}

// writeAward appends one round's award transcript to the digest: the
// participating external bidder ids, every (bidder, channel, charge)
// award, and the round totals. Byte-identical transcripts — and therefore
// equal digests — are the determinism contract two same-seed runs must
// meet.
func writeAward(w io.Writer, epochID int, bidders []int, res *round.Result) {
	fmt.Fprintf(w, "epoch %d bidders %d [", epochID, len(bidders))
	for _, id := range bidders {
		fmt.Fprintf(w, " %d", id)
	}
	fmt.Fprint(w, " ]\n")
	for i, as := range res.Outcome.Assignments {
		fmt.Fprintf(w, "award bidder %d channel %d charge %d\n",
			bidders[as.Bidder], as.Channel, res.Outcome.Charges[i])
	}
	fmt.Fprintf(w, "revenue %d satisfied %d voided %d excluded %v\n",
		res.Outcome.Revenue, res.Outcome.SatisfiedBidders, res.Voided, res.Excluded)
}
