package load

import (
	"encoding/json"
	"testing"

	"lppa/internal/faults"
	"lppa/internal/sim"
)

// smallConfig keeps harness tests fast: a population small enough that a
// round runs in milliseconds but large enough that awards, conflicts, and
// chaos all actually occur.
func smallConfig(variant string) Config {
	return Config{
		Bidders: 60, Rounds: 3, Seed: 42,
		Variant: variant, Density: "mixed", Workers: 2,
	}
}

// TestRunDeterminism is the harness's determinism regression: two
// same-seed runs must produce byte-identical award transcripts (equal
// digests) and identical reports modulo the timing fields.
func TestRunDeterminism(t *testing.T) {
	for _, variant := range []string{VariantSharded, VariantService} {
		t.Run(variant, func(t *testing.T) {
			cfg := smallConfig(variant)
			cfg.RateLimit = 40 // exercises shed accounting on the service path
			cfg.Chaos = faults.Config{DropFrame: 0.05, DupFrame: 0.05}
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.AwardDigest == "" || a.AwardDigest != b.AwardDigest {
				t.Fatalf("award digests differ across same-seed runs:\n  %s\n  %s", a.AwardDigest, b.AwardDigest)
			}
			aj, _ := json.Marshal(a.StripTiming())
			bj, _ := json.Marshal(b.StripTiming())
			if string(aj) != string(bj) {
				t.Fatalf("stripped reports differ:\n  %s\n  %s", aj, bj)
			}
			// A different seed must actually change the transcript, or the
			// digest is vacuous.
			cfg.Seed = 43
			c, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if c.AwardDigest == a.AwardDigest {
				t.Fatal("different seed produced an identical award digest")
			}
		})
	}
}

// TestRunVariantEquivalence pins the repo-wide bit-identical contract at
// the harness level: every one-shot variant is an execution strategy, not
// a different auction, so same-seed runs must agree on the transcript.
func TestRunVariantEquivalence(t *testing.T) {
	var want *RunReport
	for _, variant := range []string{VariantPlain, VariantInterned, VariantIndexed, VariantSharded} {
		rep, err := Run(smallConfig(variant))
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if rep.Winners == 0 || rep.Revenue == 0 {
			t.Fatalf("%s: degenerate run, no awards: %+v", variant, rep)
		}
		if want == nil {
			want = rep
			continue
		}
		if rep.AwardDigest != want.AwardDigest {
			t.Errorf("%s award digest %s != %s digest %s", variant, rep.AwardDigest, want.Variant, want.AwardDigest)
		}
		if rep.Winners != want.Winners || rep.Revenue != want.Revenue {
			t.Errorf("%s winners/revenue %d/%d != %s %d/%d",
				variant, rep.Winners, rep.Revenue, want.Variant, want.Winners, want.Revenue)
		}
	}
}

// TestRunRoundsAccounting checks the closed-loop bookkeeping under chaos:
// submissions partition into admitted and dropped, drops mark rounds
// degraded, and phases carry the round span names.
func TestRunRoundsAccounting(t *testing.T) {
	cfg := smallConfig(VariantInterned)
	cfg.Chaos = faults.Config{DropFrame: 0.2, DupFrame: 0.1}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 || rep.Duplicated == 0 {
		t.Fatalf("chaos at 20%%/10%% over %d submissions produced drops=%d dups=%d",
			rep.Submitted, rep.Dropped, rep.Duplicated)
	}
	if got := rep.Admitted + rep.Dropped + rep.Duplicated; got != rep.Submitted {
		t.Errorf("admitted %d + dropped %d + duplicated %d = %d, want submitted %d",
			rep.Admitted, rep.Dropped, rep.Duplicated, got, rep.Submitted)
	}
	if rep.Degraded == 0 {
		t.Error("rounds with dropped bidders not counted degraded")
	}
	for _, phase := range []string{"round", "encode", "allocate", "charge"} {
		ps, ok := rep.Phases[phase]
		if !ok || ps.Count == 0 {
			t.Errorf("phase %q missing from report: %+v", phase, rep.Phases)
		}
	}
	if ps := rep.Phases["round"]; ps.Count != cfg.Rounds {
		t.Errorf("round span count %d, want %d", ps.Count, cfg.Rounds)
	}
}

// TestRunServiceAccounting checks the open-loop bookkeeping: epochs were
// sealed, the rate limiter shed load, churn registered, and the digest
// covers every sealed epoch.
func TestRunServiceAccounting(t *testing.T) {
	cfg := smallConfig(VariantService)
	cfg.Rounds = 4
	cfg.RateLimit = 10
	cfg.Arrival = sim.ArrivalConfig{Process: "poisson", ResubmitFrac: 0.5, DepartFrac: 0.2}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs == 0 {
		t.Fatal("service run sealed no epochs")
	}
	if rep.Epochs > cfg.Rounds+1 {
		t.Errorf("sealed %d epochs from a %d-interval horizon", rep.Epochs, cfg.Rounds)
	}
	if rep.Shed == 0 {
		t.Error("rate limit 10/s over a dense schedule shed nothing")
	}
	if rep.Resubmitted == 0 || rep.Departed == 0 {
		t.Errorf("churn missing: resubmitted=%d departed=%d", rep.Resubmitted, rep.Departed)
	}
	if got := rep.Admitted + rep.Shed + rep.Dropped; got != rep.Submitted {
		t.Errorf("admitted %d + shed %d + dropped %d = %d, want submitted %d",
			rep.Admitted, rep.Shed, rep.Dropped, got, rep.Submitted)
	}
	if rep.Winners == 0 || rep.AwardDigest == "" {
		t.Errorf("degenerate service run: %+v", rep)
	}
}

// TestConfigValidation pins that a broken config errors before any work.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                                      // no bidders
		{Bidders: 10},                                           // no rounds
		{Bidders: 10, Rounds: 1, Variant: "warp"},               // unknown variant
		{Bidders: 10, Rounds: 1, Variant: "plain", Workers: -1}, // negative workers
		{Bidders: 10, Rounds: 1, Variant: "sharded", Shards: -2},
		{Bidders: 10, Rounds: 1, Variant: "plain", Density: "metropolis"},
		{Bidders: 10, Rounds: 1, Variant: "service", RateLimit: -1},
		{Bidders: 10, Rounds: 1, Variant: "plain", Chaos: faults.Config{DropFrame: 1.5}},
	}
	for _, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

// TestConfigName pins the run-name scheme SLO blocks key on.
func TestConfigName(t *testing.T) {
	cases := map[string]Config{
		"interned/mixed/n100": {Variant: VariantInterned, Bidders: 100},
		"sharded8/urban/n50":  {Variant: VariantSharded, Shards: 8, Density: "urban", Bidders: 50},
		"service4/rural/n10":  {Variant: VariantService, Shards: 4, Density: "rural", Bidders: 10},
	}
	for want, cfg := range cases {
		if got := cfg.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}
