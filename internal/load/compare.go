package load

import (
	"fmt"
	"sort"
)

// Compare gates a candidate report against the SLOs recorded in a
// baseline. It returns one violation line per missed target, sorted for
// stable output; an empty slice means the candidate holds every SLO.
//
// The gate fails closed: a baseline without an SLO block is an error, not
// a pass — a deleted or corrupted baseline must break CI loudly, never
// wave a regression through.
func Compare(baseline, candidate *Report) ([]string, error) {
	if baseline == nil || candidate == nil {
		return nil, fmt.Errorf("load: compare needs both reports")
	}
	slo := baseline.SLO
	if slo == nil || (len(slo.MinRoundsPerSec) == 0 && len(slo.MaxPhaseP99Ms) == 0) {
		return nil, fmt.Errorf("load: baseline has no SLO block; refusing to pass by default")
	}
	var violations []string
	for _, name := range sortedKeys(slo.MinRoundsPerSec) {
		min := slo.MinRoundsPerSec[name]
		run := candidate.Run(name)
		if run == nil {
			violations = append(violations, fmt.Sprintf(
				"%s: run missing from candidate report (SLO requires >= %.2f rounds/sec)", name, min))
			continue
		}
		if run.RoundsPerSec < min {
			violations = append(violations, fmt.Sprintf(
				"%s: %.2f rounds/sec below SLO floor %.2f", name, run.RoundsPerSec, min))
		}
	}
	for _, name := range sortedKeys(slo.MaxPhaseP99Ms) {
		phases := slo.MaxPhaseP99Ms[name]
		run := candidate.Run(name)
		if run == nil {
			violations = append(violations, fmt.Sprintf(
				"%s: run missing from candidate report (SLO bounds %d phase p99s)", name, len(phases)))
			continue
		}
		for _, phase := range sortedKeys(phases) {
			max := phases[phase]
			ps, ok := run.Phases[phase]
			if !ok {
				violations = append(violations, fmt.Sprintf(
					"%s: phase %q missing from candidate report (SLO requires p99 <= %.2fms)", name, phase, max))
				continue
			}
			if ps.P99Ms > max {
				violations = append(violations, fmt.Sprintf(
					"%s: phase %q p99 %.2fms above SLO ceiling %.2fms", name, phase, ps.P99Ms, max))
			}
		}
	}
	return violations, nil
}

// CompareFiles is Compare over two report paths. Either file missing or
// malformed is an error (the gate's fail-closed posture extends to I/O).
func CompareFiles(baselinePath, candidatePath string) ([]string, error) {
	baseline, err := ReadReport(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("load: baseline: %w", err)
	}
	candidate, err := ReadReport(candidatePath)
	if err != nil {
		return nil, fmt.Errorf("load: candidate: %w", err)
	}
	return Compare(baseline, candidate)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
