// Package load is the unified workload harness behind cmd/lppa-load: it
// composes the epochal service, the density mixes, the arrival/churn
// model, seeded chaos drops, and the round tracer into configurable
// closed- and open-loop runs, and reports the result as a versioned
// LOAD_*.json document with an SLO comparison gate. The BENCH_*.json
// snapshots answer "how fast is this function"; a load report answers
// "how many rounds per second does the composed system sustain at this
// population, and where does the latency go".
package load

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Schema is the report version tag. Decode refuses anything else, so an
// old gate never silently half-reads a future report.
const Schema = "lppa-load/v1"

// PhaseStats is one span name's latency profile over a run, in
// milliseconds. Percentiles are exact nearest-rank over every span the
// run produced (obs.LatencySummary).
type PhaseStats struct {
	Count  int     `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// RunReport is one workload run. The accounting block (submissions,
// admissions, awards, digest) is a pure function of the config and seed;
// the timing block (wall seconds, throughput, allocations, phase
// latencies) is what the machine did with it. StripTiming separates the
// two for the determinism contract.
type RunReport struct {
	Name    string `json:"name"`
	Variant string `json:"variant"`
	Density string `json:"density"`
	Bidders int    `json:"bidders"`
	Workers int    `json:"workers"`
	Shards  int    `json:"shards,omitempty"`

	// Deterministic workload accounting.
	Rounds      int    `json:"rounds"`
	Epochs      int    `json:"epochs"`
	Submitted   int    `json:"submitted"`
	Admitted    int    `json:"admitted"`
	Shed        int    `json:"shed"`
	Dropped     int    `json:"dropped"`
	Duplicated  int    `json:"duplicated,omitempty"`
	Resubmitted int    `json:"resubmitted,omitempty"`
	Departed    int    `json:"departed,omitempty"`
	Degraded    int    `json:"degraded_rounds"`
	Winners     int    `json:"winners"`
	Revenue     uint64 `json:"revenue"`
	AwardDigest string `json:"award_digest"`

	// Timing.
	WallSeconds    float64               `json:"wall_seconds"`
	RoundsPerSec   float64               `json:"rounds_per_sec"`
	EpochsPerSec   float64               `json:"epochs_per_sec,omitempty"`
	AllocsPerRound float64               `json:"allocs_per_round"`
	Phases         map[string]PhaseStats `json:"phases,omitempty"`
}

// StripTiming returns a copy with every machine-dependent field zeroed:
// what remains must be byte-identical between two runs of the same config
// and seed. Phase sample counts are deterministic (one span per phase per
// round), so they survive; their durations do not.
func (r RunReport) StripTiming() RunReport {
	r.WallSeconds, r.RoundsPerSec, r.EpochsPerSec, r.AllocsPerRound = 0, 0, 0, 0
	if r.Phases != nil {
		stripped := make(map[string]PhaseStats, len(r.Phases))
		for name, ps := range r.Phases {
			stripped[name] = PhaseStats{Count: ps.Count}
		}
		r.Phases = stripped
	}
	return r
}

// SLO is the gate recorded next to a snapshot: minimum sustained
// throughput per run name, and per-phase p99 ceilings. Compare fails a
// candidate report that misses any recorded target — or that no longer
// contains a run the SLO names.
type SLO struct {
	MinRoundsPerSec map[string]float64            `json:"min_rounds_per_sec,omitempty"`
	MaxPhaseP99Ms   map[string]map[string]float64 `json:"max_phase_p99_ms,omitempty"`
}

// Report is the LOAD_*.json root.
type Report struct {
	Schema string      `json:"schema"`
	GOOS   string      `json:"goos,omitempty"`
	GOARCH string      `json:"goarch,omitempty"`
	CPUs   int         `json:"cpus,omitempty"`
	Seed   int64       `json:"seed"`
	Runs   []RunReport `json:"runs"`
	SLO    *SLO        `json:"slo,omitempty"`
}

// Run returns the named run (nil when absent).
func (r *Report) Run(name string) *RunReport {
	for i := range r.Runs {
		if r.Runs[i].Name == name {
			return &r.Runs[i]
		}
	}
	return nil
}

// StripTiming is RunReport.StripTiming over the whole document (the SLO
// block is derived from timing and goes with it).
func (r *Report) StripTiming() *Report {
	out := *r
	out.GOOS, out.GOARCH, out.CPUs = "", "", 0
	out.SLO = nil
	out.Runs = make([]RunReport, len(r.Runs))
	for i, run := range r.Runs {
		out.Runs[i] = run.StripTiming()
	}
	return &out
}

// Validate rejects structurally broken reports: wrong schema, duplicate
// or empty run names, negative counts, or non-monotone percentiles. The
// fuzz target pins that no input reaches the comparator without passing
// through here.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("load: schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("load: report has no runs")
	}
	seen := make(map[string]bool, len(r.Runs))
	for i := range r.Runs {
		run := &r.Runs[i]
		if run.Name == "" {
			return fmt.Errorf("load: run %d has no name", i)
		}
		if seen[run.Name] {
			return fmt.Errorf("load: duplicate run name %q", run.Name)
		}
		seen[run.Name] = true
		if run.Bidders <= 0 {
			return fmt.Errorf("load: run %q: %d bidders", run.Name, run.Bidders)
		}
		for what, v := range map[string]int{
			"rounds": run.Rounds, "epochs": run.Epochs, "submitted": run.Submitted,
			"admitted": run.Admitted, "shed": run.Shed, "dropped": run.Dropped,
			"duplicated": run.Duplicated, "resubmitted": run.Resubmitted,
			"departed": run.Departed, "degraded_rounds": run.Degraded, "winners": run.Winners,
		} {
			if v < 0 {
				return fmt.Errorf("load: run %q: negative %s %d", run.Name, what, v)
			}
		}
		for what, v := range map[string]float64{
			"wall_seconds": run.WallSeconds, "rounds_per_sec": run.RoundsPerSec,
			"epochs_per_sec": run.EpochsPerSec, "allocs_per_round": run.AllocsPerRound,
		} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("load: run %q: bad %s %v", run.Name, what, v)
			}
		}
		for phase, ps := range run.Phases {
			if ps.Count < 0 || ps.P50Ms < 0 || ps.P50Ms > ps.P95Ms || ps.P95Ms > ps.P99Ms || ps.P99Ms > ps.MaxMs {
				return fmt.Errorf("load: run %q phase %q: non-monotone percentiles %+v", run.Name, phase, ps)
			}
		}
	}
	if r.SLO != nil {
		for name, v := range r.SLO.MinRoundsPerSec {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("load: slo min_rounds_per_sec[%q] = %v, need positive finite", name, v)
			}
		}
		for name, phases := range r.SLO.MaxPhaseP99Ms {
			for phase, v := range phases {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("load: slo max_phase_p99_ms[%q][%q] = %v, need positive finite", name, phase, v)
				}
			}
		}
	}
	return nil
}

// Decode parses and validates one report. Malformed, truncated, or
// wrong-schema input errors; it never panics (FuzzLoadReportDecode).
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("load: decode report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadReport is Decode over a file. A missing file is an error — the
// compare gate fails closed on an absent baseline.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load: read report: %w", err)
	}
	r, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	return r, nil
}

// WriteJSON emits the report with stable formatting (indented, sorted
// keys via encoding/json's map ordering).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DeriveSLO records targets from a snapshot with the given headroom
// factor: min throughput = measured/headroom, max phase p99 = measured ×
// headroom — loose enough to survive machine noise, tight enough that an
// order-of-magnitude regression fails CI. Phases with sub-millisecond
// p99s are skipped (pure noise at that scale).
func DeriveSLO(r *Report, headroom float64) (*SLO, error) {
	if headroom <= 1 {
		return nil, fmt.Errorf("load: slo headroom %v, need > 1", headroom)
	}
	slo := &SLO{
		MinRoundsPerSec: map[string]float64{},
		MaxPhaseP99Ms:   map[string]map[string]float64{},
	}
	for i := range r.Runs {
		run := &r.Runs[i]
		if run.RoundsPerSec > 0 {
			slo.MinRoundsPerSec[run.Name] = run.RoundsPerSec / headroom
		}
		phases := map[string]float64{}
		names := make([]string, 0, len(run.Phases))
		for name := range run.Phases {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if p99 := run.Phases[name].P99Ms; p99 >= 1 {
				phases[name] = p99 * headroom
			}
		}
		if len(phases) > 0 {
			slo.MaxPhaseP99Ms[run.Name] = phases
		}
	}
	return slo, nil
}
