package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Arrival/churn model for the load harness (cmd/lppa-load): a seeded,
// fully deterministic schedule of bidder events over logical time. The
// harness replays the schedule through the epochal service's explicit
// clock (SubmitAt/Withdraw), so the admit/shed sequence — and therefore
// every sealed epoch — is a pure function of (config, seed). Wall time
// never enters the schedule; it only enters the throughput measurement.

// EventKind classifies one arrival-schedule entry.
type EventKind int

const (
	// EventJoin is a bidder's first submission of the run.
	EventJoin EventKind = iota
	// EventResubmit replaces the bidder's pending entry with fresh bids
	// (latest-wins, the transport's idempotent-resubmission shape).
	EventResubmit
	// EventDepart withdraws the bidder's pending entry from the epoch
	// currently collecting — churn leaving mid-epoch.
	EventDepart
)

// String names the kind for reports and test failures.
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventResubmit:
		return "resubmit"
	case EventDepart:
		return "depart"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ArrivalEvent is one scheduled action: bidder Bidder does Kind at At
// logical seconds from the run start.
type ArrivalEvent struct {
	At     float64
	Bidder int
	Kind   EventKind
}

// ArrivalConfig shapes a schedule. The zero value is invalid; every
// harness path goes through Validate.
type ArrivalConfig struct {
	// Process selects the inter-arrival law: "poisson" (exponential gaps
	// at Rate arrivals/sec), "uniform" (each join time uniform over the
	// horizon), or "burst" (BurstSize joins land at the same instant every
	// BurstEvery seconds — the admission gate's worst case).
	Process string
	// Rate is the mean arrival rate in bidders/sec for poisson. Zero
	// derives the rate that lands the whole population inside Horizon.
	Rate float64
	// BurstSize and BurstEvery shape the burst process.
	BurstSize  int
	BurstEvery float64
	// ResubmitFrac is the fraction of bidders that resubmit fresh bids at
	// a later point of the horizon; DepartFrac the fraction that withdraw
	// after joining. Both in [0,1]; a bidder can draw both (it departs,
	// then its resubmission re-joins it, or vice versa — order follows the
	// drawn times, which is the point of churn).
	ResubmitFrac float64
	DepartFrac   float64
	// Horizon is the schedule length in logical seconds.
	Horizon float64
}

// Validate rejects unusable shapes with a caller-facing message.
func (c ArrivalConfig) Validate() error {
	switch c.Process {
	case "poisson", "uniform", "burst":
	default:
		return fmt.Errorf("sim: unknown arrival process %q (want poisson, uniform, or burst)", c.Process)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("sim: arrival horizon %v, need positive", c.Horizon)
	}
	if c.Rate < 0 {
		return fmt.Errorf("sim: arrival rate %v, need non-negative", c.Rate)
	}
	if c.Process == "burst" && (c.BurstSize <= 0 || c.BurstEvery <= 0) {
		return fmt.Errorf("sim: burst process needs positive BurstSize and BurstEvery, got %d/%v",
			c.BurstSize, c.BurstEvery)
	}
	if c.ResubmitFrac < 0 || c.ResubmitFrac > 1 {
		return fmt.Errorf("sim: resubmit fraction %v outside [0,1]", c.ResubmitFrac)
	}
	if c.DepartFrac < 0 || c.DepartFrac > 1 {
		return fmt.Errorf("sim: depart fraction %v outside [0,1]", c.DepartFrac)
	}
	return nil
}

// BuildSchedule lays out the deterministic event schedule for n bidders:
// one join per bidder placed by the configured process (join times past
// the horizon clamp to its final instant), plus churn events for the
// drawn fractions. Events are sorted by (time, bidder, kind), so equal
// timestamps — burst mode's whole point — replay in one fixed order.
// Same config, same n, same rng seed: byte-identical schedule.
func BuildSchedule(cfg ArrivalConfig, n int, rng *rand.Rand) ([]ArrivalEvent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: schedule for %d bidders, need positive", n)
	}
	events := make([]ArrivalEvent, 0, n)
	joins := make([]float64, n)
	switch cfg.Process {
	case "poisson":
		rate := cfg.Rate
		if rate == 0 {
			rate = float64(n) / cfg.Horizon
		}
		t := 0.0
		for i := 0; i < n; i++ {
			t += rng.ExpFloat64() / rate
			joins[i] = clampTime(t, cfg.Horizon)
		}
	case "uniform":
		for i := 0; i < n; i++ {
			joins[i] = rng.Float64() * cfg.Horizon
		}
	case "burst":
		for i := 0; i < n; i++ {
			joins[i] = clampTime(float64(i/cfg.BurstSize)*cfg.BurstEvery, cfg.Horizon)
		}
	}
	for i, at := range joins {
		events = append(events, ArrivalEvent{At: at, Bidder: i, Kind: EventJoin})
	}
	// Churn draws happen in bidder order with a fixed per-bidder draw
	// count, so the rng stream — and every later draw — is independent of
	// which fractions are enabled.
	for i := 0; i < n; i++ {
		resubP, resubFrac := rng.Float64(), rng.Float64()
		departP, departFrac := rng.Float64(), rng.Float64()
		if resubP < cfg.ResubmitFrac {
			events = append(events, ArrivalEvent{
				At:     churnTime(joins[i], cfg.Horizon, resubFrac),
				Bidder: i,
				Kind:   EventResubmit,
			})
		}
		if departP < cfg.DepartFrac {
			events = append(events, ArrivalEvent{
				At:     churnTime(joins[i], cfg.Horizon, departFrac),
				Bidder: i,
				Kind:   EventDepart,
			})
		}
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].At != events[b].At {
			return events[a].At < events[b].At
		}
		if events[a].Bidder != events[b].Bidder {
			return events[a].Bidder < events[b].Bidder
		}
		return events[a].Kind < events[b].Kind
	})
	return events, nil
}

// clampTime keeps an event inside the half-open horizon.
func clampTime(t, horizon float64) float64 {
	if t >= horizon {
		// Just inside the final instant, so the event still replays.
		return horizon * (1 - 1e-9)
	}
	return t
}

// churnTime places a churn event uniformly in (join, horizon).
func churnTime(join, horizon, frac float64) float64 {
	return clampTime(join+frac*(horizon-join), horizon)
}
