package sim

import (
	"bytes"
	"strings"
	"testing"

	"lppa/internal/dataset"
	"lppa/internal/geo"
)

// smallDataset keeps experiment tests fast: 20×20 grid, 12 channels.
func smallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Grid:     geo.Grid{Rows: 20, Cols: 20, SideMeters: 75_000},
		Channels: 12,
		Profiles: dataset.LAProfiles(),
	}, 21)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "demo", Columns: []string{"a", "long-column"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## demo", "a    long-column", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNewScenarioValidation(t *testing.T) {
	ds := smallDataset(t)
	if _, err := NewScenario(ds.Areas[0], 0, 2); err == nil {
		t.Error("channels=0 accepted")
	}
	if _, err := NewScenario(ds.Areas[0], 99, 2); err == nil {
		t.Error("too many channels accepted")
	}
	sc, err := NewScenario(ds.Areas[0], 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Params.MaxX != 19 || sc.Params.MaxY != 19 {
		t.Errorf("coordinate domain = (%d,%d)", sc.Params.MaxX, sc.Params.MaxY)
	}
}

func TestFig4ABSmall(t *testing.T) {
	ds := smallDataset(t)
	cfg := Fig4Config{
		Victims:       12,
		ChannelCounts: []int{4, 12},
		KeepFractions: []float64{1, 0.5},
		MaxCells:      50,
		Lambda:        2,
	}
	points, err := Fig4AB(ds.Areas[3], cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	// More channels must not enlarge the BCM possible set on average.
	var cellsAtK4, cellsAtK12 float64
	for _, p := range points {
		if p.KeepFraction == 1 {
			switch p.Channels {
			case 4:
				cellsAtK4 = p.BCM.PossibleCells
			case 12:
				cellsAtK12 = p.BCM.PossibleCells
			}
		}
		// BPM output can never exceed BCM output.
		if p.BPM.PossibleCells > p.BCM.PossibleCells+1e-9 {
			t.Errorf("k=%d keep=%.2f: BPM cells %.1f > BCM cells %.1f",
				p.Channels, p.KeepFraction, p.BPM.PossibleCells, p.BCM.PossibleCells)
		}
	}
	if cellsAtK12 > cellsAtK4 {
		t.Errorf("BCM cells grew with channels: k=4 %.1f → k=12 %.1f", cellsAtK4, cellsAtK12)
	}
	tbl := Fig4ABTable(points)
	if len(tbl.Rows) != 4 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestFig4CSmall(t *testing.T) {
	ds := smallDataset(t)
	points, err := Fig4C(ds, 10, 12, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want one per area", len(points))
	}
	for _, p := range points {
		if p.BCM.Victims != 10 {
			t.Errorf("%s: victims = %d", p.Area, p.BCM.Victims)
		}
	}
	tbl := Fig4CTable(points)
	if len(tbl.Rows) != 4 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestFig5ADSmall(t *testing.T) {
	ds := smallDataset(t)
	cfg := Fig5Config{
		Bidders:       15,
		Channels:      8,
		ZeroReplace:   []float64{0.2, 1.0},
		KeepFractions: []float64{0.5},
		Decay:         1,
		Lambda:        2,
		RD:            3,
		CR:            4,
	}
	points, baseline, err := Fig5AD(ds.Areas[2], cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	if baseline.BCM.Victims != 15 || baseline.BPM.Victims != 15 {
		t.Errorf("baseline victims = %d/%d", baseline.BCM.Victims, baseline.BPM.Victims)
	}
	// The BPM baseline must narrow at least as hard as BCM.
	if baseline.BPM.PossibleCells > baseline.BCM.PossibleCells+1e-9 {
		t.Errorf("baseline BPM cells %.1f > BCM cells %.1f",
			baseline.BPM.PossibleCells, baseline.BCM.PossibleCells)
	}
	tbl := Fig5ADTable(points, baseline)
	if len(tbl.Rows) != 4 { // 2 baseline rows + 2 sweep rows
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestFig5EFSmall(t *testing.T) {
	ds := smallDataset(t)
	cfg := Fig5Config{
		Bidders:     0, // populations given explicitly
		Channels:    8,
		ZeroReplace: []float64{0.1, 1.0},
		Decay:       1,
		Lambda:      2,
		RD:          3,
		CR:          4,
	}
	points, err := Fig5EF(ds.Areas[2], cfg, []int{12}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.RevenueRatio < 0 || p.RevenueRatio > 1.6 {
			t.Errorf("revenue ratio %.3f implausible", p.RevenueRatio)
		}
		if p.SatisfactionRatio < 0 || p.SatisfactionRatio > 1.6 {
			t.Errorf("satisfaction ratio %.3f implausible", p.SatisfactionRatio)
		}
	}
	tbl := Fig5EFTable(points)
	if len(tbl.Rows) != 2 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestTheoremsTableSmall(t *testing.T) {
	tbl, err := TheoremsTable(TheoremConfig{BMax: 100, Trials: 5000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Errorf("rows = %d, want 8", len(tbl.Rows))
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem4TableSmall(t *testing.T) {
	ds := smallDataset(t)
	tbl, err := Theorem4Table(ds.Areas[2], 6, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 6 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestCoverageSummary(t *testing.T) {
	ds := smallDataset(t)
	sum, err := Coverage(ds.Areas[0], 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sum.AvailableFrac < 0 || sum.AvailableFrac > 1 {
		t.Errorf("available frac = %f", sum.AvailableFrac)
	}
	if !strings.ContainsAny(sum.ASCIIMap, ".#") {
		t.Error("ASCII map empty")
	}
	if _, err := Coverage(ds.Areas[0], -1, 10); err == nil {
		t.Error("bad channel accepted")
	}
	if _, err := Coverage(ds.Areas[0], 0, 1); err == nil {
		t.Error("tiny map width accepted")
	}
}

func TestMultiRoundSmall(t *testing.T) {
	ds := smallDataset(t)
	cfg := MultiRoundConfig{
		Bidders:      10,
		Channels:     10,
		Rounds:       4,
		Keep:         0.5,
		ZeroReplace:  0.5,
		Decay:        0.95,
		Lambda:       2,
		RD:           3,
		CR:           4,
		ReliableFrac: 0.75,
	}
	points, err := MultiRound(ds.Areas[2], cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.Rounds != i+1 {
			t.Errorf("point %d rounds = %d", i, p.Rounds)
		}
		if p.Linked.Victims != 10 || p.Mixed.Victims != 10 {
			t.Errorf("point %d victims = %d/%d", i, p.Linked.Victims, p.Mixed.Victims)
		}
	}
	// Linkage must help the attacker: after several rounds the linked
	// attacker's failure rate should not exceed the mixed attacker's.
	last := points[len(points)-1]
	if last.Linked.FailureRate > last.Mixed.FailureRate+1e-9 {
		t.Errorf("linked failure %.2f should be at most mixed failure %.2f after %d rounds",
			last.Linked.FailureRate, last.Mixed.FailureRate, last.Rounds)
	}
	tbl := MultiRoundTable(points)
	if len(tbl.Rows) != 4 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestMultiRoundValidation(t *testing.T) {
	ds := smallDataset(t)
	cfg := DefaultMultiRoundConfig()
	cfg.Rounds = 0
	if _, err := MultiRound(ds.Areas[0], cfg, 1); err == nil {
		t.Error("rounds=0 accepted")
	}
	cfg = DefaultMultiRoundConfig()
	cfg.ReliableFrac = 0
	if _, err := MultiRound(ds.Areas[0], cfg, 1); err == nil {
		t.Error("reliable frac 0 accepted")
	}
}

func TestBasicLeakSmall(t *testing.T) {
	ds := smallDataset(t)
	cfg := BasicLeakConfig{Victims: 8, Channels: 12, Keep: 0.5, MaxCells: 50, Lambda: 2}
	res, err := BasicLeak(ds.Areas[3], cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdvancedDistinctSizes != 1 {
		t.Errorf("advanced distinct sizes = %.1f, want 1 (padding)", res.AdvancedDistinctSizes)
	}
	if res.BasicDistinctSizes < 2 {
		t.Errorf("basic distinct sizes = %.1f, expected a visible signal", res.BasicDistinctSizes)
	}
	if res.Basic.SuccessRate <= 0 {
		t.Error("cardinality attack never succeeded against the basic scheme")
	}
	tbl := BasicLeakTable(res)
	if len(tbl.Rows) != 3 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}

	cfg.Victims = 0
	if _, err := BasicLeak(ds.Areas[3], cfg, 7); err == nil {
		t.Error("victims=0 accepted")
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := &Table{Title: "csv demo", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "x,y") // comma must be quoted
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# csv demo", "a,b", "1,\"x,y\""} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestPricingSmall(t *testing.T) {
	ds := smallDataset(t)
	cfg := PricingConfig{
		Bidders: 10, Channels: 10, Lambda: 2, RD: 3, CR: 4,
		ZeroReplace: []float64{0, 1}, Decay: 0.95, Trials: 2,
	}
	points, err := Pricing(ds.Areas[2], cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		// Second price never exceeds first price on the same allocation.
		if p.SecondOfFirst.Mean > 1.001 {
			t.Errorf("1-p0=%.1f: second/first = %.3f > 1", p.ZeroReplace, p.SecondOfFirst.Mean)
		}
	}
	tbl := PricingTable(points)
	if len(tbl.Rows) != 2 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
	cfg.Trials = 0
	if _, err := Pricing(ds.Areas[2], cfg, 5); err == nil {
		t.Error("trials=0 accepted")
	}
}
