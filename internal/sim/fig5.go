package sim

import (
	"fmt"
	"math/rand"
	"time"

	"lppa/internal/attack"
	"lppa/internal/bidder"
	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/obs"
	"lppa/internal/privacy"
	"lppa/internal/round"
	"lppa/internal/stats"
)

// Fig5Config drives the LPPA-effectiveness experiments (Fig. 5).
type Fig5Config struct {
	// Bidders is the population size N per round.
	Bidders int
	// Channels is the auctioned channel count k.
	Channels int
	// ZeroReplace sweeps 1−p0 (the x axis of Fig. 5(a)–(f)).
	ZeroReplace []float64
	// KeepFractions are the attacker's t-largest selections (the paper
	// uses 25 %, 50 %, 66 %, 80 %).
	KeepFractions []float64
	// Decay shapes the disguise distribution (1 = uniform).
	Decay float64
	// Lambda is the interference half-range in cells.
	Lambda uint64
	// RD and CR are the TTP's blinding parameters.
	RD, CR uint64
	// Trials repeats each (N, 1−p0) cell with fresh populations and keys
	// and reports mean ± 95 % CI (1 when zero).
	Trials int
	// Workers > 1 runs the private rounds through the deterministic
	// parallel pipeline (round.Run with WithWorkers): concurrent submission
	// encoding and conflict-graph construction, identical results for any
	// worker count. 0 or 1 keeps the legacy serial driver, whose rng
	// consumption order (and hence exact tables) predates the parallel
	// path.
	Workers int
	// Density, when non-nil, overrides the uniform bidder placement with a
	// named density mix (dense-urban, sparse-rural, or mixed geometry from
	// internal/dataset). Only MetricsRound honors it today; the Fig. 5
	// sweeps keep the paper's uniform placement.
	Density *dataset.DensityMix
	// Indexed routes conflict-graph construction through the inverted-index
	// candidate generator (round.WithIndexedCandidates). Results are
	// bit-identical to the all-pairs path; only the cost profile changes.
	Indexed bool
	// Shards > 0 runs the private rounds through the tile-sharded planner
	// (round.WithShards): per-tile conflict graphs and rank memos merged by
	// border-band reconciliation. Bit-identical to the unsharded round.
	Shards int
	// Quorum and Straggler let each private round degrade gracefully
	// (round.WithQuorum / round.WithStragglerTimeout): a submission whose
	// encoding stalls past Straggler is excluded as long as Quorum usable
	// submissions remain. They bound who participates, never how the
	// admitted set allocates; on a healthy in-process run every bidder
	// makes the deadline and results are unchanged. Straggler requires the
	// parallel pipeline (Workers > 1), which round.Run enforces.
	Quorum    int
	Straggler time.Duration
	// Metrics, when non-nil, records every private round the experiment
	// runs (phase timings, comparison counters, round totals). Results are
	// bit-identical with or without it.
	Metrics *obs.Registry
	// Trace, when non-nil, records every private round as a span tree
	// (round root + phase children) into the tracer. Like Metrics, results
	// are bit-identical with or without it.
	Trace *obs.Tracer
	// Flight, when non-nil, ring-buffers each round's trace and auto-dumps
	// on failure or degradation. Requires Trace.
	Flight *obs.FlightRecorder
}

// runPrivate dispatches one private round through the serial or parallel
// pipeline of round.Run according to cfg.Workers.
func (cfg Fig5Config) runPrivate(params core.Params, ring *mask.KeyRing, pts []geo.Point, bids [][]uint64,
	policy core.DisguisePolicy, rng *rand.Rand) (*round.Result, error) {
	opts := []round.Option{round.WithObserver(cfg.Metrics)}
	if cfg.Workers > 1 {
		opts = append(opts, round.WithWorkers(cfg.Workers))
	}
	if cfg.Indexed {
		opts = append(opts, round.WithIndexedCandidates())
	}
	if cfg.Shards > 0 {
		opts = append(opts, round.WithShards(cfg.Shards))
	}
	if cfg.Quorum > 0 {
		opts = append(opts, round.WithQuorum(cfg.Quorum))
	}
	if cfg.Straggler > 0 {
		opts = append(opts, round.WithStragglerTimeout(cfg.Straggler))
	}
	if cfg.Trace != nil {
		opts = append(opts, round.WithTrace(cfg.Trace))
	}
	if cfg.Flight != nil {
		opts = append(opts, round.WithFlightRecorder(cfg.Flight))
	}
	return round.Run(params, ring, round.Input{Points: pts, Bids: bids, Policy: policy, Rng: rng}, opts...)
}

// DefaultFig5Config mirrors the paper's setup in Area 3.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Bidders:       100,
		Channels:      129,
		ZeroReplace:   []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		KeepFractions: []float64{0.25, 0.5, 0.66, 0.8},
		Decay:         0.95,
		Lambda:        2,
		RD:            5,
		CR:            8,
	}
}

// Fig5Point is one (1−p0, keep fraction) cell of the privacy matrix.
type Fig5Point struct {
	ZeroReplace  float64
	KeepFraction float64
	// UnderLPPA is the BCM attack evaluated on the LPPA transcript.
	UnderLPPA privacy.Aggregate
}

// Fig5Baseline is the no-LPPA reference the panels compare against.
type Fig5Baseline struct {
	BCM privacy.Aggregate
	BPM privacy.Aggregate
}

// Fig5AD runs the privacy side of the evaluation in one area (the paper
// uses Area 3): the baseline BCM/BPM attacks on plaintext submissions, and
// the t-largest BCM attack on LPPA transcripts for every (1−p0, fraction)
// pair. BPM under LPPA is impossible by construction (per-channel keys
// destroy cross-channel order), which is the paper's headline claim.
func Fig5AD(area *dataset.Area, cfg Fig5Config, seed int64) ([]Fig5Point, Fig5Baseline, error) {
	var baseline Fig5Baseline
	sc, err := NewScenario(area, min(cfg.Channels, area.NumChannels()), cfg.Lambda)
	if err != nil {
		return nil, baseline, err
	}
	rng := rand.New(rand.NewSource(seed))
	pop, err := bidder.NewPopulation(area, cfg.Bidders, sc.BidCfg, rng)
	if err != nil {
		return nil, baseline, err
	}
	bids := sc.TruncatedBids(pop)

	// Baseline (no LPPA): plaintext BCM and BPM.
	var bcmReps, bpmReps []privacy.Report
	for i, su := range pop.SUs {
		p, err := attack.BCMFromBids(area, bids[i])
		if err != nil {
			return nil, baseline, err
		}
		bcmReps = append(bcmReps, privacy.Evaluate(p, su.Cell))
		res, err := attack.BPM(area, p, bids[i], attack.BPMConfig{KeepFraction: 0.5, MaxCells: 250})
		if err != nil {
			bpmReps = append(bpmReps, privacy.Evaluate(p, su.Cell))
			continue
		}
		bpmReps = append(bpmReps, privacy.Evaluate(res.Selected, su.Cell))
	}
	baseline.BCM = privacy.Summarize(bcmReps)
	baseline.BPM = privacy.Summarize(bpmReps)

	// LPPA transcripts for each zero-replace probability.
	var points []Fig5Point
	for zi, zr := range cfg.ZeroReplace {
		ring, err := mask.DeriveKeyRing([]byte(fmt.Sprintf("fig5-%d-%d", seed, zi)), sc.Params.Channels, cfg.RD, cfg.CR)
		if err != nil {
			return nil, baseline, err
		}
		policy := core.DisguisePolicy{P0: 1 - zr, Decay: cfg.Decay}
		res, err := cfg.runPrivate(sc.Params, ring, Points(pop), bids, policy, rand.New(rand.NewSource(seed+int64(zi)*101)))
		if err != nil {
			return nil, baseline, err
		}
		rankings := res.Auctioneer.Rankings()
		for _, frac := range cfg.KeepFractions {
			observed, err := attack.TopFractionChannels(rankings, pop.N(), frac)
			if err != nil {
				return nil, baseline, err
			}
			var reps []privacy.Report
			for i, su := range pop.SUs {
				// The attacker uses the robust (argmax-consistency) BCM:
				// plain intersection goes empty as soon as a single
				// disguised zero poisons an observation.
				p, _, err := attack.BCMRobust(area, observed[i])
				if err != nil {
					return nil, baseline, err
				}
				reps = append(reps, privacy.Evaluate(p, su.Cell))
			}
			points = append(points, Fig5Point{
				ZeroReplace:  zr,
				KeepFraction: frac,
				UnderLPPA:    privacy.Summarize(reps),
			})
		}
	}
	return points, baseline, nil
}

// Fig5ADTable renders the privacy panels.
func Fig5ADTable(points []Fig5Point, baseline Fig5Baseline) *Table {
	t := &Table{
		Title:   "Fig.5(a)-(d): attack metrics under LPPA vs zero-replace probability (Area 3)",
		Columns: []string{"1-p0", "keep", "cells", "uncertainty(b)", "incorrectness(m)", "failure"},
	}
	t.AddRow("no-LPPA BCM", "-",
		fmt.Sprintf("%.1f", baseline.BCM.PossibleCells),
		fmt.Sprintf("%.2f", baseline.BCM.Uncertainty),
		fmt.Sprintf("%.0f", baseline.BCM.Incorrectness),
		fmt.Sprintf("%.1f%%", 100*baseline.BCM.FailureRate))
	t.AddRow("no-LPPA BPM", "0.5",
		fmt.Sprintf("%.1f", baseline.BPM.PossibleCells),
		fmt.Sprintf("%.2f", baseline.BPM.Uncertainty),
		fmt.Sprintf("%.0f", baseline.BPM.Incorrectness),
		fmt.Sprintf("%.1f%%", 100*baseline.BPM.FailureRate))
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%.1f", p.ZeroReplace),
			fmt.Sprintf("%.2f", p.KeepFraction),
			fmt.Sprintf("%.1f", p.UnderLPPA.PossibleCells),
			fmt.Sprintf("%.2f", p.UnderLPPA.Uncertainty),
			fmt.Sprintf("%.0f", p.UnderLPPA.Incorrectness),
			fmt.Sprintf("%.1f%%", 100*p.UnderLPPA.FailureRate),
		)
	}
	return t
}

// Fig5EFPoint is one (N, 1−p0) cell of the performance matrix. The
// primary fields use the paper's batch charging (a voided award consumed
// the winner's row and the channel slot); the Interactive fields measure
// the per-award TTP validity-check design, an ablation in which a void
// withdraws the channel for the round instead. Batch reproduces the
// paper's decreasing revenue curve; the interactive design turns out to
// *raise* revenue by pruning low-value fringe columns (see
// EXPERIMENTS.md).
type Fig5EFPoint struct {
	Bidders     int
	ZeroReplace float64
	// RevenueRatio is LPPA winning-bid sum over the plain baseline's
	// (batch charging, the paper's design).
	RevenueRatio float64
	// SatisfactionRatio is LPPA user satisfaction over the baseline's
	// (batch charging).
	SatisfactionRatio float64
	// Voided counts TTP-invalidated awards (batch charging).
	Voided int
	// InteractiveRevenueRatio and friends measure the ablation.
	InteractiveRevenueRatio      float64
	InteractiveSatisfactionRatio float64
	InteractiveVoided            int
	// RevenueCI and SatisfactionCI are 95 % confidence half-widths when
	// the experiment ran multiple trials (0 otherwise).
	RevenueCI      float64
	SatisfactionCI float64
}

// Fig5EF measures the auction-performance cost of LPPA (Fig. 5(e)(f)):
// for each population size and zero-replace probability, the ratio of
// private-auction revenue/satisfaction to the plaintext baseline on the
// same population. With cfg.Trials > 1 every cell averages that many
// independent populations and key rings, and the point carries 95 %
// confidence half-widths.
func Fig5EF(area *dataset.Area, cfg Fig5Config, populations []int, seed int64) ([]Fig5EFPoint, error) {
	trials := cfg.Trials
	if trials < 1 {
		trials = 1
	}
	var out []Fig5EFPoint
	for _, n := range populations {
		sc, err := NewScenario(area, min(cfg.Channels, area.NumChannels()), cfg.Lambda)
		if err != nil {
			return nil, err
		}
		for zi, zr := range cfg.ZeroReplace {
			col := stats.NewCollector()
			policy := core.DisguisePolicy{P0: 1 - zr, Decay: cfg.Decay}
			for trial := 0; trial < trials; trial++ {
				tSeed := seed + int64(n)*1009 + int64(zi)*97 + int64(trial)*31
				rng := rand.New(rand.NewSource(tSeed))
				pop, err := bidder.NewPopulation(area, n, sc.BidCfg, rng)
				if err != nil {
					return nil, err
				}
				bids := sc.TruncatedBids(pop)
				pts := Points(pop)
				base, err := round.RunPlainBaseline(pts, bids, sc.Params.Lambda, rand.New(rand.NewSource(tSeed+1)))
				if err != nil {
					return nil, err
				}
				ring, err := mask.DeriveKeyRing([]byte(fmt.Sprintf("fig5ef-%d-%d-%d-%d", seed, n, zi, trial)), sc.Params.Channels, cfg.RD, cfg.CR)
				if err != nil {
					return nil, err
				}
				inter, err := round.Run(sc.Params, ring, round.Input{Points: pts, Bids: bids, Policy: policy, Rng: rand.New(rand.NewSource(tSeed + 2))}, round.WithInteractiveCharging())
				if err != nil {
					return nil, err
				}
				batch, err := cfg.runPrivate(sc.Params, ring, pts, bids, policy, rand.New(rand.NewSource(tSeed+3)))
				if err != nil {
					return nil, err
				}
				if base.Revenue > 0 {
					col.Add("rev", float64(batch.Outcome.Revenue)/float64(base.Revenue))
					col.Add("irev", float64(inter.Outcome.Revenue)/float64(base.Revenue))
				}
				if base.Satisfaction() > 0 {
					col.Add("sat", batch.Outcome.Satisfaction()/base.Satisfaction())
					col.Add("isat", inter.Outcome.Satisfaction()/base.Satisfaction())
				}
				col.Add("voided", float64(batch.Voided))
				col.Add("ivoided", float64(inter.Voided))
			}
			pt := Fig5EFPoint{
				Bidders:                      n,
				ZeroReplace:                  zr,
				RevenueRatio:                 col.Summary("rev").Mean,
				SatisfactionRatio:            col.Summary("sat").Mean,
				Voided:                       int(col.Summary("voided").Mean + 0.5),
				InteractiveRevenueRatio:      col.Summary("irev").Mean,
				InteractiveSatisfactionRatio: col.Summary("isat").Mean,
				InteractiveVoided:            int(col.Summary("ivoided").Mean + 0.5),
				RevenueCI:                    col.Summary("rev").CI95(),
				SatisfactionCI:               col.Summary("sat").CI95(),
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// Fig5EFTable renders the performance panels.
func Fig5EFTable(points []Fig5EFPoint) *Table {
	t := &Table{
		Title:   "Fig.5(e)(f): LPPA auction performance relative to plain auction (Area 3)",
		Columns: []string{"N", "1-p0", "revenue", "satisfaction", "voided", "revenue(iTTP)", "satisfaction(iTTP)", "voided(iTTP)"},
	}
	for _, p := range points {
		rev := fmt.Sprintf("%.3f", p.RevenueRatio)
		sat := fmt.Sprintf("%.3f", p.SatisfactionRatio)
		if p.RevenueCI > 0 {
			rev = fmt.Sprintf("%.3f±%.3f", p.RevenueRatio, p.RevenueCI)
			sat = fmt.Sprintf("%.3f±%.3f", p.SatisfactionRatio, p.SatisfactionCI)
		}
		t.AddRow(
			fmt.Sprintf("%d", p.Bidders),
			fmt.Sprintf("%.1f", p.ZeroReplace),
			rev,
			sat,
			fmt.Sprintf("%d", p.Voided),
			fmt.Sprintf("%.3f", p.InteractiveRevenueRatio),
			fmt.Sprintf("%.3f", p.InteractiveSatisfactionRatio),
			fmt.Sprintf("%d", p.InteractiveVoided),
		)
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
