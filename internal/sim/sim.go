// Package sim is the experiment harness: one driver per figure/table of
// the paper's evaluation (section VI), each returning structured results
// that cmd/lppa-sim renders and bench_test.go regenerates. All drivers are
// deterministic given a seed.
package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"lppa/internal/bidder"
	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/geo"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintf(w, "## %s\n\n", t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (header row first). The title goes
// into a leading comment line.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Scenario bundles the shared experiment setup: an area, the auction
// parameters sized to it, and the bid model.
type Scenario struct {
	Area   *dataset.Area
	Params core.Params
	BidCfg bidder.Config
}

// NewScenario derives protocol parameters from an area. lambda is in grid
// cells; the paper's interference predicate uses 2λ as the conflict
// threshold on each axis.
func NewScenario(area *dataset.Area, channels int, lambda uint64) (*Scenario, error) {
	if channels < 1 || channels > area.NumChannels() {
		return nil, fmt.Errorf("sim: %d channels requested, area has %d", channels, area.NumChannels())
	}
	bidCfg := bidder.DefaultConfig()
	params := core.Params{
		Channels: channels,
		Lambda:   lambda,
		MaxX:     uint64(area.Grid.Cols - 1),
		MaxY:     uint64(area.Grid.Rows - 1),
		BMax:     bidCfg.BMax,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Scenario{Area: area, Params: params, BidCfg: bidCfg}, nil
}

// TruncatedBids clips a population's bid vectors to the scenario's channel
// count (experiments sweep k over a 129-channel dataset).
func (s *Scenario) TruncatedBids(pop *bidder.Population) [][]uint64 {
	out := make([][]uint64, pop.N())
	for i, b := range pop.Bids {
		out[i] = b[:s.Params.Channels]
	}
	return out
}

// Points extracts protocol coordinates for a population.
func Points(pop *bidder.Population) []geo.Point {
	pts := make([]geo.Point, pop.N())
	for i, su := range pop.SUs {
		pts[i] = su.Point()
	}
	return pts
}
