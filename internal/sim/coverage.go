package sim

import (
	"fmt"
	"strings"

	"lppa/internal/dataset"
	"lppa/internal/geo"
)

// CoverageSummary describes one channel's coverage in one area
// (Fig. 1(b)'s role: show what a coverage map looks like).
type CoverageSummary struct {
	Area          string
	Channel       int
	AvailableFrac float64
	Towers        int
	ASCIIMap      string
}

// Coverage summarizes channel ch of the given area, rendering a
// downsampled ASCII map ('#' = PU-covered/unavailable, '.' = available to
// SUs).
func Coverage(area *dataset.Area, ch int, mapWidth int) (*CoverageSummary, error) {
	if ch < 0 || ch >= area.NumChannels() {
		return nil, fmt.Errorf("sim: channel %d out of range [0,%d)", ch, area.NumChannels())
	}
	if mapWidth < 4 {
		return nil, fmt.Errorf("sim: map width %d too small", mapWidth)
	}
	cm := area.Coverage[ch]
	g := area.Grid
	stepC := (g.Cols + mapWidth - 1) / mapWidth
	stepR := stepC
	var b strings.Builder
	for r := 0; r < g.Rows; r += stepR {
		for c := 0; c < g.Cols; c += stepC {
			// Sample the block's majority availability.
			avail, total := 0, 0
			for dr := 0; dr < stepR && r+dr < g.Rows; dr++ {
				for dc := 0; dc < stepC && c+dc < g.Cols; dc++ {
					total++
					if cm.AvailableAt(geo.Cell{Row: r + dr, Col: c + dc}) {
						avail++
					}
				}
			}
			if avail*2 >= total {
				b.WriteByte('.')
			} else {
				b.WriteByte('#')
			}
		}
		b.WriteByte('\n')
	}
	return &CoverageSummary{
		Area:          area.Name,
		Channel:       ch,
		AvailableFrac: float64(cm.Available.Count()) / float64(g.NumCells()),
		Towers:        len(area.Channels[ch].Towers),
		ASCIIMap:      b.String(),
	}, nil
}
