package sim

import (
	"fmt"
	"math/rand"

	"lppa/internal/attack"
	"lppa/internal/bidder"
	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/mask"
	"lppa/internal/privacy"
)

// BasicLeakConfig drives the section IV.C.1 demonstration: the basic bid
// submission scheme leaks bid magnitudes through range-set cardinalities,
// enabling a full BCM+BPM pipeline with no keys; the advanced scheme's
// padding closes the channel.
type BasicLeakConfig struct {
	Victims  int
	Channels int
	Keep     float64
	MaxCells int
	Lambda   uint64
}

// DefaultBasicLeakConfig mirrors the attack-evaluation settings.
func DefaultBasicLeakConfig() BasicLeakConfig {
	return BasicLeakConfig{Victims: 40, Channels: 64, Keep: 0.25, MaxCells: 250, Lambda: 2}
}

// BasicLeakResult compares the cardinality attack against both encodings.
type BasicLeakResult struct {
	// Basic is the attack outcome against the basic scheme.
	Basic privacy.Aggregate
	// BasicDistinctSizes is the mean number of distinct range-set sizes
	// per basic submission (the attacker's signal).
	BasicDistinctSizes float64
	// AdvancedDistinctSizes must be 1 (full padding).
	AdvancedDistinctSizes float64
	// PlaintextBPM is the reference attack with true bids.
	PlaintextBPM privacy.Aggregate
}

// BasicLeak runs the comparison in one area.
func BasicLeak(area *dataset.Area, cfg BasicLeakConfig, seed int64) (*BasicLeakResult, error) {
	if cfg.Victims < 1 {
		return nil, fmt.Errorf("sim: basicleak needs victims ≥ 1")
	}
	sc, err := NewScenario(area, min(cfg.Channels, area.NumChannels()), cfg.Lambda)
	if err != nil {
		return nil, err
	}
	ring, err := mask.DeriveKeyRing([]byte(fmt.Sprintf("basicleak-%d", seed)), sc.Params.Channels, 5, 8)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	pop, err := bidder.NewPopulation(area, cfg.Victims, sc.BidCfg, rng)
	if err != nil {
		return nil, err
	}
	bids := sc.TruncatedBids(pop)
	table, err := attack.NewCardinalityTable(sc.Params.BMax)
	if err != nil {
		return nil, err
	}
	basicEnc, err := core.NewBasicBidEncoder(sc.Params, ring, rng)
	if err != nil {
		return nil, err
	}
	advEnc, err := core.NewBidEncoder(sc.Params, ring, nil, rng)
	if err != nil {
		return nil, err
	}

	res := &BasicLeakResult{}
	var basicReps, plainReps []privacy.Report
	bpmCfg := attack.BPMConfig{KeepFraction: cfg.Keep, MaxCells: cfg.MaxCells}
	for i, su := range pop.SUs {
		basicSub, err := basicEnc.Encode(bids[i], rng)
		if err != nil {
			return nil, err
		}
		advSub, err := advEnc.Encode(bids[i], rng)
		if err != nil {
			return nil, err
		}
		res.BasicDistinctSizes += float64(attack.SizesDistinct(basicSub))
		res.AdvancedDistinctSizes += float64(attack.SizesDistinct(advSub))

		if card, err := attack.CardinalityBPM(area, basicSub, table, bpmCfg); err == nil {
			basicReps = append(basicReps, privacy.Evaluate(card.Selected, su.Cell))
		}
		p, err := attack.BCMFromBids(area, bids[i])
		if err != nil {
			return nil, err
		}
		if ref, err := attack.BPM(area, p, bids[i], bpmCfg); err == nil {
			plainReps = append(plainReps, privacy.Evaluate(ref.Selected, su.Cell))
		}
	}
	n := float64(cfg.Victims)
	res.BasicDistinctSizes /= n
	res.AdvancedDistinctSizes /= n
	res.Basic = privacy.Summarize(basicReps)
	res.PlaintextBPM = privacy.Summarize(plainReps)
	return res, nil
}

// BasicLeakTable renders the comparison.
func BasicLeakTable(r *BasicLeakResult) *Table {
	t := &Table{
		Title:   "Section IV.C.1: the basic scheme's cardinality leak vs the advanced scheme",
		Columns: []string{"attack", "cells", "success", "incorrectness(km)", "signal (distinct sizes)"},
	}
	t.AddRow("plaintext BPM (reference)",
		fmt.Sprintf("%.1f", r.PlaintextBPM.PossibleCells),
		fmt.Sprintf("%.0f%%", 100*r.PlaintextBPM.SuccessRate),
		fmt.Sprintf("%.1f", r.PlaintextBPM.Incorrectness/1000),
		"n/a (plaintext)")
	t.AddRow("cardinality BPM vs basic scheme",
		fmt.Sprintf("%.1f", r.Basic.PossibleCells),
		fmt.Sprintf("%.0f%%", 100*r.Basic.SuccessRate),
		fmt.Sprintf("%.1f", r.Basic.Incorrectness/1000),
		fmt.Sprintf("%.1f", r.BasicDistinctSizes))
	t.AddRow("cardinality BPM vs advanced scheme",
		"n/a", "0% (no signal)", "n/a",
		fmt.Sprintf("%.1f (padded)", r.AdvancedDistinctSizes))
	return t
}
