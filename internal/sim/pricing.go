package sim

import (
	"fmt"
	"math/rand"

	"lppa/internal/bidder"
	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/mask"
	"lppa/internal/round"
	"lppa/internal/stats"
)

// PricingConfig drives the pricing-rule comparison: the paper's
// first-price charging against the future-work second-price (clearing
// price) variant, both through the full private pipeline.
type PricingConfig struct {
	Bidders  int
	Channels int
	Lambda   uint64
	RD, CR   uint64
	// ZeroReplace sweeps the disguise probability.
	ZeroReplace []float64
	Decay       float64
	Trials      int
}

// DefaultPricingConfig mirrors the fig5 setup at moderate scale.
func DefaultPricingConfig() PricingConfig {
	return PricingConfig{
		Bidders:     60,
		Channels:    64,
		Lambda:      2,
		RD:          5,
		CR:          8,
		ZeroReplace: []float64{0, 0.5, 1.0},
		Decay:       0.95,
		Trials:      3,
	}
}

// PricingPoint is one sweep cell.
type PricingPoint struct {
	ZeroReplace   float64
	FirstPrice    stats.Summary // revenue ratio vs plain baseline
	SecondPrice   stats.Summary
	SecondOfFirst stats.Summary // second-price revenue / first-price revenue
}

// Pricing runs the comparison.
func Pricing(area *dataset.Area, cfg PricingConfig, seed int64) ([]PricingPoint, error) {
	if cfg.Bidders < 1 || cfg.Trials < 1 {
		return nil, fmt.Errorf("sim: pricing needs bidders ≥ 1 and trials ≥ 1")
	}
	sc, err := NewScenario(area, min(cfg.Channels, area.NumChannels()), cfg.Lambda)
	if err != nil {
		return nil, err
	}
	var out []PricingPoint
	for zi, zr := range cfg.ZeroReplace {
		var firsts, seconds, ratios []float64
		policy := core.DisguisePolicy{P0: 1 - zr, Decay: cfg.Decay}
		for trial := 0; trial < cfg.Trials; trial++ {
			tSeed := seed + int64(zi)*101 + int64(trial)*17
			rng := rand.New(rand.NewSource(tSeed))
			pop, err := bidder.NewPopulation(area, cfg.Bidders, sc.BidCfg, rng)
			if err != nil {
				return nil, err
			}
			bids := sc.TruncatedBids(pop)
			pts := Points(pop)
			base, err := round.RunPlainBaseline(pts, bids, sc.Params.Lambda, rand.New(rand.NewSource(tSeed+1)))
			if err != nil {
				return nil, err
			}
			ring, err := mask.DeriveKeyRing([]byte(fmt.Sprintf("pricing-%d-%d-%d", seed, zi, trial)), sc.Params.Channels, cfg.RD, cfg.CR)
			if err != nil {
				return nil, err
			}
			fp, err := round.Run(sc.Params, ring, round.Input{Points: pts, Bids: bids, Policy: policy, Rng: rand.New(rand.NewSource(tSeed + 2))})
			if err != nil {
				return nil, err
			}
			sp, err := round.Run(sc.Params, ring, round.Input{Points: pts, Bids: bids, Policy: policy, Rng: rand.New(rand.NewSource(tSeed + 2))}, round.WithSecondPrice())
			if err != nil {
				return nil, err
			}
			if base.Revenue > 0 {
				firsts = append(firsts, float64(fp.Outcome.Revenue)/float64(base.Revenue))
				seconds = append(seconds, float64(sp.Outcome.Revenue)/float64(base.Revenue))
			}
			if fp.Outcome.Revenue > 0 {
				ratios = append(ratios, float64(sp.Outcome.Revenue)/float64(fp.Outcome.Revenue))
			}
		}
		out = append(out, PricingPoint{
			ZeroReplace:   zr,
			FirstPrice:    stats.Summarize(firsts),
			SecondPrice:   stats.Summarize(seconds),
			SecondOfFirst: stats.Summarize(ratios),
		})
	}
	return out, nil
}

// PricingTable renders the comparison.
func PricingTable(points []PricingPoint) *Table {
	t := &Table{
		Title:   "Pricing rules: first-price (paper) vs second-price (future work), revenue vs plain baseline",
		Columns: []string{"1-p0", "first-price", "second-price", "second/first"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%.1f", p.ZeroReplace),
			p.FirstPrice.String(),
			p.SecondPrice.String(),
			p.SecondOfFirst.String(),
		)
	}
	return t
}
