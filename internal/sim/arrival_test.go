package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBuildScheduleDeterministic(t *testing.T) {
	cfg := ArrivalConfig{Process: "poisson", Horizon: 10, ResubmitFrac: 0.3, DepartFrac: 0.2}
	a, err := BuildSchedule(cfg, 200, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(cfg, 200, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c, _ := BuildSchedule(cfg, 200, rand.New(rand.NewSource(8)))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestBuildScheduleShapes(t *testing.T) {
	const n = 120
	for _, proc := range []string{"poisson", "uniform", "burst"} {
		cfg := ArrivalConfig{Process: proc, Horizon: 12, BurstSize: 40, BurstEvery: 4,
			ResubmitFrac: 0.5, DepartFrac: 0.25}
		events, err := BuildSchedule(cfg, n, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		joins, resubmits, departs := 0, 0, 0
		joined := map[int]bool{}
		prev := -1.0
		for _, ev := range events {
			if ev.At < prev {
				t.Fatalf("%s: events out of order at %v after %v", proc, ev.At, prev)
			}
			prev = ev.At
			if ev.At < 0 || ev.At >= cfg.Horizon {
				t.Fatalf("%s: event time %v outside [0,%v)", proc, ev.At, cfg.Horizon)
			}
			switch ev.Kind {
			case EventJoin:
				joins++
				joined[ev.Bidder] = true
			case EventResubmit:
				resubmits++
			case EventDepart:
				departs++
			}
		}
		if joins != n || len(joined) != n {
			t.Fatalf("%s: %d joins over %d bidders, want %d each", proc, joins, len(joined), n)
		}
		// Churn fractions are probabilistic but far from degenerate at n=120.
		if resubmits == 0 || departs == 0 {
			t.Fatalf("%s: churn missing (resubmits=%d departs=%d)", proc, resubmits, departs)
		}
		if proc == "burst" {
			// The first burst lands at t=0, BurstSize joins strong.
			atZero := 0
			for _, ev := range events {
				if ev.At == 0 && ev.Kind == EventJoin {
					atZero++
				}
			}
			if atZero != cfg.BurstSize {
				t.Fatalf("burst: %d joins at t=0, want %d", atZero, cfg.BurstSize)
			}
		}
	}
}

func TestBuildScheduleValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []ArrivalConfig{
		{Process: "meteor", Horizon: 1},
		{Process: "poisson", Horizon: 0},
		{Process: "poisson", Horizon: 1, Rate: -2},
		{Process: "burst", Horizon: 1},
		{Process: "burst", Horizon: 1, BurstSize: 5},
		{Process: "poisson", Horizon: 1, ResubmitFrac: 1.5},
		{Process: "poisson", Horizon: 1, DepartFrac: -0.1},
	}
	for i, cfg := range bad {
		if _, err := BuildSchedule(cfg, 10, rng); err == nil {
			t.Errorf("config %d (%+v) accepted, want error", i, cfg)
		}
	}
	if _, err := BuildSchedule(ArrivalConfig{Process: "uniform", Horizon: 1}, 0, rng); err == nil {
		t.Error("zero population accepted")
	}
}
