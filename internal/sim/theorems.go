package sim

import (
	"fmt"
	"math/rand"

	"lppa/internal/bidder"
	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/mask"
	"lppa/internal/round"
	"lppa/internal/theory"
)

// TheoremConfig drives the analytical-validation experiments.
type TheoremConfig struct {
	BMax   int
	Trials int
}

// DefaultTheoremConfig uses the paper's bid scale.
func DefaultTheoremConfig() TheoremConfig {
	return TheoremConfig{BMax: 100, Trials: 200_000}
}

// TheoremsTable compares each closed form against its Monte-Carlo
// validator over a parameter grid.
func TheoremsTable(cfg TheoremConfig, seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		Title:   "Theorems 1-3: closed form vs Monte Carlo",
		Columns: []string{"theorem", "parameters", "closed form", "monte carlo", "|diff|"},
	}

	// Theorem 1: zero-doesn't-win probability.
	for _, c := range []struct {
		d     theory.Dist
		name  string
		bN, m int
	}{
		{theory.UniformDist(cfg.BMax), "uniform", 80, 10},
		{theory.UniformDist(cfg.BMax), "uniform", 95, 30},
		{theory.GeometricDist(cfg.BMax, 0.5, 0.95), "geometric p0=0.5", 60, 20},
	} {
		closed, err := theory.Theorem1(c.d, c.bN, c.m)
		if err != nil {
			return nil, err
		}
		mc, err := theory.MonteCarloTheorem1(c.d, c.bN, c.m, cfg.Trials, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow("1", fmt.Sprintf("%s bN=%d m=%d", c.name, c.bN, c.m),
			fmt.Sprintf("%.4f", closed), fmt.Sprintf("%.4f", mc), fmt.Sprintf("%.4f", abs(closed-mc)))
	}

	// Theorem 2: no-leak probability under t-largest selection.
	for _, c := range []struct {
		bN, m, tt int
	}{
		{80, 12, 2}, {90, 25, 3}, {70, 40, 5},
	} {
		d := theory.UniformDist(cfg.BMax)
		closed, err := theory.Theorem2(d, c.bN, c.m, c.tt)
		if err != nil {
			return nil, err
		}
		mc, err := theory.MonteCarloTheorem2(d, c.bN, c.m, c.tt, cfg.Trials, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow("2", fmt.Sprintf("uniform bN=%d m=%d t=%d", c.bN, c.m, c.tt),
			fmt.Sprintf("%.4f", closed), fmt.Sprintf("%.4f", mc), fmt.Sprintf("%.4f", abs(closed-mc)))
	}

	// Theorem 3: expected number of exposed true bids.
	for _, c := range []struct {
		bids  []int
		m, tt int
	}{
		{[]int{10, 25, 50, 75}, 15, 2},
		{[]int{30, 60, 90}, 25, 3},
	} {
		closed, err := theory.Theorem3(cfg.BMax, c.bids, c.m, c.tt)
		if err != nil {
			return nil, err
		}
		mc, err := theory.MonteCarloTheorem3(cfg.BMax, c.bids, c.m, c.tt, cfg.Trials/4, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow("3", fmt.Sprintf("bids=%v m=%d t=%d", c.bids, c.m, c.tt),
			fmt.Sprintf("%.4f", closed), fmt.Sprintf("%.4f", mc), fmt.Sprintf("%.4f", abs(closed-mc)))
	}
	return t, nil
}

// Theorem4Table compares the communication-cost formula against the
// transcript bytes actually measured on a private round.
func Theorem4Table(area *dataset.Area, channels, n int, seed int64) (*Table, error) {
	sc, err := NewScenario(area, channels, 2)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	pop, err := bidder.NewPopulation(area, n, sc.BidCfg, rng)
	if err != nil {
		return nil, err
	}
	const rd, cr = 5, 8
	ring, err := mask.DeriveKeyRing([]byte(fmt.Sprintf("thm4-%d", seed)), sc.Params.Channels, rd, cr)
	if err != nil {
		return nil, err
	}
	res, err := round.Run(sc.Params, ring, round.Input{Points: Points(pop), Bids: sc.TruncatedBids(pop),
		Policy: core.DisguisePolicy{P0: 0.7, Decay: 0.95}, Rng: rng})
	if err != nil {
		return nil, err
	}
	w := sc.Params.BidWidth(ring)
	predBits, err := theory.Theorem4Bits(mask.DigestSize*8, w, sc.Params.Channels, n)
	if err != nil {
		return nil, err
	}
	predBytes := predBits / 8

	t := &Table{
		Title:   "Theorem 4: predicted vs measured bid-submission transcript size",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("bidders N", fmt.Sprintf("%d", n))
	t.AddRow("channels k", fmt.Sprintf("%d", sc.Params.Channels))
	t.AddRow("bid width w (blinded)", fmt.Sprintf("%d", w))
	t.AddRow("predicted digest bytes (Thm 4)", fmt.Sprintf("%.0f", predBytes))
	t.AddRow("measured transcript bytes", fmt.Sprintf("%d", res.SubmissionBytes))
	t.AddRow("measured/predicted", fmt.Sprintf("%.3f", float64(res.SubmissionBytes)/predBytes))
	t.AddRow("note", "measured includes sealed ciphertexts and location sets; see EXPERIMENTS.md")
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
