package sim

import (
	"fmt"
	"math"
	"math/rand"

	"lppa/internal/attack"
	"lppa/internal/bidder"
	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/geo"
	"lppa/internal/mask"
	"lppa/internal/privacy"
	"lppa/internal/round"
)

// MultiRoundConfig drives the repeated-participation experiment
// (section V.C.3): the same users join several LPPA rounds, and the
// attacker either can link their pseudonyms across rounds (no ID mixing)
// or cannot (the paper's countermeasure).
type MultiRoundConfig struct {
	Bidders  int
	Channels int
	Rounds   int
	// Keep is the attacker's per-round t-largest fraction.
	Keep float64
	// ZeroReplace is 1−p0 for every bidder.
	ZeroReplace float64
	Decay       float64
	Lambda      uint64
	RD, CR      uint64
	// ReliableFrac is the majority threshold: a channel counts as
	// genuinely available when observed in at least ReliableFrac of the
	// rounds so far.
	ReliableFrac float64
}

// DefaultMultiRoundConfig gives a moderate defence setting where single
// rounds are safe but linkage across ~10 rounds is not.
func DefaultMultiRoundConfig() MultiRoundConfig {
	return MultiRoundConfig{
		Bidders:      50,
		Channels:     64,
		Rounds:       10,
		Keep:         0.5,
		ZeroReplace:  0.5,
		Decay:        0.95,
		Lambda:       2,
		RD:           5,
		CR:           8,
		ReliableFrac: 0.8,
	}
}

// MultiRoundPoint is the attack state after a number of rounds.
type MultiRoundPoint struct {
	Rounds int
	// Linked is the accumulated attack when pseudonyms are stable.
	Linked privacy.Aggregate
	// Mixed is the (necessarily single-round) attack when IDs are remixed
	// every round.
	Mixed privacy.Aggregate
}

// MultiRound runs the repeated-participation experiment. Users keep their
// positions (the paper assumes positions fixed during a lease term) and
// re-derive fresh noisy bids each round; every round uses a fresh key
// ring. The returned points trace both attackers round by round.
func MultiRound(area *dataset.Area, cfg MultiRoundConfig, seed int64) ([]MultiRoundPoint, error) {
	if cfg.Rounds < 1 || cfg.Bidders < 1 {
		return nil, fmt.Errorf("sim: multiround needs rounds ≥ 1 and bidders ≥ 1")
	}
	if cfg.ReliableFrac <= 0 || cfg.ReliableFrac > 1 {
		return nil, fmt.Errorf("sim: reliable fraction %f out of (0,1]", cfg.ReliableFrac)
	}
	sc, err := NewScenario(area, min(cfg.Channels, area.NumChannels()), cfg.Lambda)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	bidCfg := sc.BidCfg
	sus := bidder.Place(area.Grid, cfg.Bidders, bidCfg, rng)
	points := make([]MultiRoundPoint, 0, cfg.Rounds)

	// observed[u][t] = channels attributed to user u in round t.
	observed := make([][][]int, cfg.Bidders)
	for u := range observed {
		observed[u] = make([][]int, 0, cfg.Rounds)
	}
	policy := core.DisguisePolicy{P0: 1 - cfg.ZeroReplace, Decay: cfg.Decay}

	coords := make([]geo.Point, cfg.Bidders)
	for i, su := range sus {
		coords[i] = su.Point()
	}

	for t := 0; t < cfg.Rounds; t++ {
		// Fresh bids (same positions, new valuation noise) and fresh keys.
		bids := make([][]uint64, cfg.Bidders)
		for i, su := range sus {
			bids[i] = bidder.BidVector(su, area, bidCfg, rng)[:sc.Params.Channels]
		}
		ring, err := mask.DeriveKeyRing([]byte(fmt.Sprintf("multiround-%d-%d", seed, t)), sc.Params.Channels, cfg.RD, cfg.CR)
		if err != nil {
			return nil, err
		}
		res, err := round.Run(sc.Params, ring, round.Input{Points: coords, Bids: bids, Policy: policy, Rng: rand.New(rand.NewSource(seed + int64(t)*31))})
		if err != nil {
			return nil, err
		}
		obs, err := attack.TopFractionChannels(res.Auctioneer.Rankings(), cfg.Bidders, cfg.Keep)
		if err != nil {
			return nil, err
		}
		for u := range obs {
			observed[u] = append(observed[u], obs[u])
		}

		// Attack state after t+1 rounds.
		var linkedReps, mixedReps []privacy.Report
		minRounds := int(math.Ceil(cfg.ReliableFrac * float64(t+1)))
		for u, su := range sus {
			counts := attack.AccumulateObservations(observed[u], sc.Params.Channels)
			reliable := attack.ReliableChannels(counts, minRounds)
			p, _, err := attack.BCMRobust(area, reliable)
			if err != nil {
				return nil, err
			}
			linkedReps = append(linkedReps, privacy.Evaluate(p, su.Cell))

			// The mixing defence limits the attacker to this round alone.
			pm, _, err := attack.BCMRobust(area, obs[u])
			if err != nil {
				return nil, err
			}
			mixedReps = append(mixedReps, privacy.Evaluate(pm, su.Cell))
		}
		points = append(points, MultiRoundPoint{
			Rounds: t + 1,
			Linked: privacy.Summarize(linkedReps),
			Mixed:  privacy.Summarize(mixedReps),
		})
	}
	return points, nil
}

// MultiRoundTable renders the round-by-round comparison.
func MultiRoundTable(points []MultiRoundPoint) *Table {
	t := &Table{
		Title: "Section V.C.3: repeated participation — linked pseudonyms vs per-round ID mixing",
		Columns: []string{"rounds", "linked cells", "linked failure", "linked incorrect(km)",
			"mixed cells", "mixed failure"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Rounds),
			fmt.Sprintf("%.1f", p.Linked.PossibleCells),
			fmt.Sprintf("%.0f%%", 100*p.Linked.FailureRate),
			fmt.Sprintf("%.1f", p.Linked.Incorrectness/1000),
			fmt.Sprintf("%.1f", p.Mixed.PossibleCells),
			fmt.Sprintf("%.0f%%", 100*p.Mixed.FailureRate),
		)
	}
	return t
}
