package sim

import (
	"fmt"
	"math/rand"

	"lppa/internal/bidder"
	"lppa/internal/core"
	"lppa/internal/dataset"
	"lppa/internal/mask"
	"lppa/internal/round"
)

// MetricsRound runs one private round under cfg — honoring cfg.Workers and
// recording into cfg.Metrics when set — and returns the result. It backs
// `lppa-sim -experiment round` and `make metrics-snapshot`: a single
// instrumented round whose registry snapshot shows the per-phase and
// per-layer cost profile at population size cfg.Bidders.
func MetricsRound(area *dataset.Area, cfg Fig5Config, seed int64) (*round.Result, error) {
	sc, err := NewScenario(area, min(cfg.Channels, area.NumChannels()), cfg.Lambda)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var pop *bidder.Population
	if cfg.Density != nil {
		cells := cfg.Density.Cells(area.Grid, cfg.Bidders, rng)
		pop, err = bidder.NewPopulationAt(area, cells, sc.BidCfg, rng)
	} else {
		pop, err = bidder.NewPopulation(area, cfg.Bidders, sc.BidCfg, rng)
	}
	if err != nil {
		return nil, err
	}
	bids := sc.TruncatedBids(pop)
	ring, err := mask.DeriveKeyRing([]byte(fmt.Sprintf("metrics-round-%d", seed)), sc.Params.Channels, cfg.RD, cfg.CR)
	if err != nil {
		return nil, err
	}
	zr := 0.3
	if len(cfg.ZeroReplace) > 0 {
		zr = cfg.ZeroReplace[0]
	}
	policy := core.DisguisePolicy{P0: 1 - zr, Decay: cfg.Decay}
	return cfg.runPrivate(sc.Params, ring, Points(pop), bids, policy, rand.New(rand.NewSource(seed+1)))
}
