package sim

import (
	"fmt"
	"math/rand"

	"lppa/internal/attack"
	"lppa/internal/bidder"
	"lppa/internal/dataset"
	"lppa/internal/privacy"
)

// Fig4Config drives the attack-effectiveness experiments of Fig. 4.
type Fig4Config struct {
	// Victims is the number of SUs localized per configuration.
	Victims int
	// ChannelCounts is the sweep over k (Fig. 4(a)(b) x axis).
	ChannelCounts []int
	// KeepFractions is the BPM sweep (1 = pure BCM output).
	KeepFractions []float64
	// MaxCells is the paper's threshold cap on BPM output (0 = none).
	MaxCells int
	// Lambda only affects protocol parameters, not the attacks; kept for
	// scenario symmetry.
	Lambda uint64
}

// DefaultFig4Config mirrors the paper's sweep.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Victims:       60,
		ChannelCounts: []int{20, 40, 60, 80, 100, 129},
		KeepFractions: []float64{1, 0.5, 1.0 / 3, 0.25, 0.2, 0.125, 0.1},
		MaxCells:      250,
		Lambda:        2,
	}
}

// Fig4Point is one (k, fraction) cell of the Fig. 4(a)(b) matrix.
type Fig4Point struct {
	Channels     int
	KeepFraction float64
	BCM          privacy.Aggregate
	BPM          privacy.Aggregate
}

// Fig4AB runs the BCM/BPM sweep in one area (the paper uses Area 4).
func Fig4AB(area *dataset.Area, cfg Fig4Config, seed int64) ([]Fig4Point, error) {
	if cfg.Victims < 1 {
		return nil, fmt.Errorf("sim: fig4 needs at least one victim")
	}
	var points []Fig4Point
	for _, k := range cfg.ChannelCounts {
		if k > area.NumChannels() {
			k = area.NumChannels()
		}
		sc, err := NewScenario(area, k, cfg.Lambda)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(k)))
		pop, err := bidder.NewPopulation(area, cfg.Victims, sc.BidCfg, rng)
		if err != nil {
			return nil, err
		}
		bids := sc.TruncatedBids(pop)

		for _, frac := range cfg.KeepFractions {
			var bcmReps, bpmReps []privacy.Report
			for i, su := range pop.SUs {
				p, err := attack.BCMFromBids(area, bids[i])
				if err != nil {
					return nil, err
				}
				bcmReps = append(bcmReps, privacy.Evaluate(p, su.Cell))

				res, err := attack.BPM(area, p, bids[i], attack.BPMConfig{KeepFraction: frac, MaxCells: cfg.MaxCells})
				if err != nil {
					// Victims with no positive bid cannot be BPM'd; count
					// as a full-region (failed-to-narrow) outcome.
					bpmReps = append(bpmReps, privacy.Evaluate(p, su.Cell))
					continue
				}
				bpmReps = append(bpmReps, privacy.Evaluate(res.Selected, su.Cell))
			}
			points = append(points, Fig4Point{
				Channels:     k,
				KeepFraction: frac,
				BCM:          privacy.Summarize(bcmReps),
				BPM:          privacy.Summarize(bpmReps),
			})
		}
	}
	return points, nil
}

// Fig4ABTable renders the sweep as two logical columns (possible cells for
// Fig. 4(a), success rate for Fig. 4(b)).
func Fig4ABTable(points []Fig4Point) *Table {
	t := &Table{
		Title:   "Fig.4(a)(b): BCM/BPM possible cells and success rate (Area 4)",
		Columns: []string{"k", "keep", "BCM cells", "BPM cells", "BCM success", "BPM success"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Channels),
			fmt.Sprintf("%.3f", p.KeepFraction),
			fmt.Sprintf("%.1f", p.BCM.PossibleCells),
			fmt.Sprintf("%.1f", p.BPM.PossibleCells),
			fmt.Sprintf("%.1f%%", 100*p.BCM.SuccessRate),
			fmt.Sprintf("%.1f%%", 100*p.BPM.SuccessRate),
		)
	}
	return t
}

// Fig4CPoint is one area's result at full channel count.
type Fig4CPoint struct {
	Area string
	BCM  privacy.Aggregate
	BPM  privacy.Aggregate
}

// Fig4C compares attack effectiveness across all four areas at k channels
// (the paper uses 129) with a 1/2 BPM keep fraction.
func Fig4C(ds *dataset.Dataset, victims, k int, maxCells int, seed int64) ([]Fig4CPoint, error) {
	var out []Fig4CPoint
	for ai, area := range ds.Areas {
		kk := k
		if kk > area.NumChannels() {
			kk = area.NumChannels()
		}
		sc, err := NewScenario(area, kk, 2)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(ai)*37))
		pop, err := bidder.NewPopulation(area, victims, sc.BidCfg, rng)
		if err != nil {
			return nil, err
		}
		bids := sc.TruncatedBids(pop)
		var bcmReps, bpmReps []privacy.Report
		for i, su := range pop.SUs {
			p, err := attack.BCMFromBids(area, bids[i])
			if err != nil {
				return nil, err
			}
			bcmReps = append(bcmReps, privacy.Evaluate(p, su.Cell))
			res, err := attack.BPM(area, p, bids[i], attack.BPMConfig{KeepFraction: 0.5, MaxCells: maxCells})
			if err != nil {
				bpmReps = append(bpmReps, privacy.Evaluate(p, su.Cell))
				continue
			}
			bpmReps = append(bpmReps, privacy.Evaluate(res.Selected, su.Cell))
		}
		out = append(out, Fig4CPoint{
			Area: area.Name,
			BCM:  privacy.Summarize(bcmReps),
			BPM:  privacy.Summarize(bpmReps),
		})
	}
	return out, nil
}

// Fig4CTable renders the per-area comparison.
func Fig4CTable(points []Fig4CPoint) *Table {
	t := &Table{
		Title:   "Fig.4(c): BCM/BPM across the four areas (k=129, keep=1/2)",
		Columns: []string{"area", "BCM cells", "BPM cells", "BCM success", "BPM success"},
	}
	for _, p := range points {
		t.AddRow(
			p.Area,
			fmt.Sprintf("%.1f", p.BCM.PossibleCells),
			fmt.Sprintf("%.1f", p.BPM.PossibleCells),
			fmt.Sprintf("%.1f%%", 100*p.BCM.SuccessRate),
			fmt.Sprintf("%.1f%%", 100*p.BPM.SuccessRate),
		)
	}
	return t
}
