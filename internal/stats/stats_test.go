package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %f, want %f", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %f/%f", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95() != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.CI95() != 0 {
		t.Errorf("singleton summary = %+v", s)
	}
	if s.String() != "3.500" {
		t.Errorf("singleton string = %q", s.String())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Summarize([]float64{1, 2, 3, 4})
	var many []float64
	for i := 0; i < 16; i++ {
		many = append(many, float64(1+i%4))
	}
	big := Summarize(many)
	if big.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %f >= %f", big.CI95(), small.CI95())
	}
}

func TestSummaryStringWithCI(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "±") {
		t.Errorf("string = %q missing ±", s.String())
	}
}

func TestMeanWithinBounds(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Add("a", 1)
	c.Add("b", 10)
	c.Add("a", 3)
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if s := c.Summary("a"); s.N != 2 || s.Mean != 2 {
		t.Errorf("a summary = %+v", s)
	}
	if s := c.Summary("missing"); s.N != 0 {
		t.Errorf("missing summary = %+v", s)
	}
}
