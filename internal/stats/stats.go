// Package stats provides the small statistical toolkit the experiment
// harness uses to aggregate multi-trial runs: mean, standard deviation,
// and normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation (n−1)
	Min  float64
	Max  float64
}

// Summarize computes the summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// CI95 returns the half-width of the 95 % normal-approximation confidence
// interval of the mean (0 for samples smaller than 2).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci95".
func (s Summary) String() string {
	if s.N < 2 {
		return fmt.Sprintf("%.3f", s.Mean)
	}
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.CI95())
}

// Collector accumulates named series across trials.
type Collector struct {
	series map[string][]float64
	order  []string
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{series: make(map[string][]float64)}
}

// Add appends one observation to a named series.
func (c *Collector) Add(name string, v float64) {
	if _, ok := c.series[name]; !ok {
		c.order = append(c.order, name)
	}
	c.series[name] = append(c.series[name], v)
}

// Names returns the series names in insertion order.
func (c *Collector) Names() []string { return append([]string(nil), c.order...) }

// Summary summarizes one named series.
func (c *Collector) Summary(name string) Summary { return Summarize(c.series[name]) }
