package conflict

import (
	"math/rand"
	"testing"

	"lppa/internal/geo"
)

// TestBuildFromPredicateParallelMatchesSerial asserts the parallel build is
// bit-for-bit identical to the serial build across node counts (straddling
// the 64-bit word boundaries), edge densities, and worker counts.
func TestBuildFromPredicateParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 63, 64, 65, 130, 200} {
		for _, density := range []float64{0, 0.1, 0.5, 1} {
			rng := rand.New(rand.NewSource(int64(n)*1000 + int64(density*10)))
			// Precompute the predicate matrix so concurrent calls are safe
			// and every build sees the same relation.
			edge := make([][]bool, n)
			for i := range edge {
				edge[i] = make([]bool, n)
				for j := i + 1; j < n; j++ {
					edge[i][j] = rng.Float64() < density
				}
			}
			pred := func(i, j int) bool { return edge[i][j] }
			want := BuildFromPredicate(n, pred)
			for _, workers := range []int{0, 1, 2, 3, 7, 16} {
				got := BuildFromPredicateParallel(n, pred, workers)
				if !got.Equal(want) {
					t.Errorf("n=%d density=%.1f workers=%d: parallel graph differs from serial", n, density, workers)
				}
			}
		}
	}
}

// TestBuildFromPredicateParallelGeo repeats the equivalence check with the
// real interference predicate over random points, for several λ.
func TestBuildFromPredicateParallelGeo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 120
	points := make([]geo.Point, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(100)), Y: uint64(rng.Intn(100))}
	}
	for _, lambda := range []uint64{1, 2, 5} {
		pred := func(i, j int) bool { return geo.Conflict(points[i], points[j], lambda) }
		want := BuildPlain(points, lambda)
		for _, workers := range []int{2, 4, 8} {
			got := BuildFromPredicateParallel(n, pred, workers)
			if !got.Equal(want) {
				t.Errorf("lambda=%d workers=%d: parallel graph differs from BuildPlain", lambda, workers)
			}
		}
	}
}
