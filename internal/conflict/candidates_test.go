package conflict

import (
	"math/rand"
	"testing"
)

// sliceCursor replays precomputed candidate rows (tests only).
type sliceCursor struct {
	rows [][]uint32
}

func (c *sliceCursor) Row(i int) []uint32 { return c.rows[i] }

// candidateRows derives per-row candidates from a pair set, optionally
// inflating each row with spurious extras the predicate must discard.
func candidateRows(n int, truth map[[2]int]bool, noise int, rng *rand.Rand) [][]uint32 {
	rows := make([][]uint32, n)
	for i := 0; i < n; i++ {
		seen := map[uint32]bool{}
		for j := i + 1; j < n; j++ {
			if truth[[2]int{i, j}] {
				rows[i] = append(rows[i], uint32(j))
				seen[uint32(j)] = true
			}
		}
		for k := 0; k < noise && i < n-1; k++ {
			j := uint32(i + 1 + rng.Intn(n-i-1))
			if !seen[j] {
				seen[j] = true
				rows[i] = append(rows[i], j)
			}
		}
	}
	return rows
}

func randomTruth(n int, density float64, rng *rand.Rand) map[[2]int]bool {
	truth := map[[2]int]bool{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				truth[[2]int{i, j}] = true
			}
		}
	}
	return truth
}

// TestBuildFromCandidatesMatchesPredicate pins the oracle contract: with a
// sound candidate superset (exact rows, or rows inflated with spurious
// candidates) the graph is bit-identical to the all-pairs build.
func TestBuildFromCandidatesMatchesPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 17, 64, 130} {
		for _, density := range []float64{0, 0.05, 0.5, 1} {
			truth := randomTruth(n, density, rng)
			pred := func(i, j int) bool { return truth[[2]int{i, j}] }
			oracle := BuildFromPredicate(n, pred)
			for _, noise := range []int{0, 3} {
				cur := &sliceCursor{rows: candidateRows(n, truth, noise, rng)}
				got := BuildFromCandidates(n, cur, pred)
				if !got.Equal(oracle) {
					t.Fatalf("n=%d density=%g noise=%d: candidate graph differs from oracle", n, density, noise)
				}
			}
		}
	}
}

// TestBuildFromCandidatesParallelMatchesSerial sweeps worker counts: every
// count must produce the bit-identical graph, and the factory must be
// invoked once per worker, serially.
func TestBuildFromCandidatesParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 97
	truth := randomTruth(n, 0.1, rng)
	pred := func(i, j int) bool { return truth[[2]int{i, j}] }
	rows := candidateRows(n, truth, 2, rng)
	oracle := BuildFromPredicate(n, pred)

	for _, workers := range []int{1, 2, 3, 4, 8, 200} {
		made := 0
		got := BuildFromCandidatesParallel(n, func() CandidateCursor {
			made++
			return &sliceCursor{rows: rows}
		}, pred, workers)
		if !got.Equal(oracle) {
			t.Fatalf("workers=%d: parallel candidate graph differs from oracle", workers)
		}
		wantCursors := workers
		if wantCursors > n {
			wantCursors = n
		}
		if wantCursors < 1 {
			wantCursors = 1
		}
		if made != wantCursors {
			t.Fatalf("workers=%d: %d cursors created, want %d", workers, made, wantCursors)
		}
	}
}
