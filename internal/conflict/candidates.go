package conflict

import "sync"

// Candidate-driven graph construction (DESIGN.md §5f): instead of probing
// all n²/2 pairs, a candidate cursor proposes, per row, a superset of the
// row's true conflict partners (e.g. from mask.Index posting-list joins),
// and only those candidates are confirmed with the exact predicate. Because
// an adjacency bit's position depends only on (i, j) — never on evaluation
// order — the result is bit-identical to BuildFromPredicate whenever the
// cursor's supersets are sound, for every worker count.

// CandidateCursor yields candidate partners row by row. Row(i) must return
// a duplicate-free slice of indices j with i < j < n containing every j
// that truly conflicts with i (supersets are fine — false candidates are
// discarded by the predicate). The returned slice may be reused; it is only
// valid until the next Row call on the same cursor.
type CandidateCursor interface {
	Row(i int) []uint32
}

// BuildFromCandidates constructs the graph by confirming, for each row,
// only the cursor's candidates with pred. pred is called for i < j, at most
// once per pair, exactly as in BuildFromPredicate.
func BuildFromCandidates(n int, cur CandidateCursor, pred func(i, j int) bool) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for _, j := range cur.Row(i) {
			if pred(i, int(j)) {
				g.AddEdge(i, int(j))
			}
		}
	}
	return g
}

// BuildFromCandidatesParallel is BuildFromCandidates sharded across at most
// workers goroutines, mirroring BuildFromPredicateParallel's two-phase
// shape: worker w owns rows i ≡ w (mod workers) and sets upper-triangle
// bits from its own cursor's candidates, then after a barrier the lower
// triangle is mirrored from an immutable snapshot. Cursors carry per-row
// scratch state, so newCursor is invoked once per worker — serially, on the
// calling goroutine, letting callers keep every cursor for post-build
// statistics. pred must be safe for concurrent calls with distinct (i, j).
func BuildFromCandidatesParallel(n int, newCursor func() CandidateCursor, pred func(i, j int) bool, workers int) *Graph {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return BuildFromCandidates(n, newCursor(), pred)
	}
	g := NewGraph(n)
	cursors := make([]CandidateCursor, workers)
	for w := range cursors {
		cursors[w] = newCursor()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := cursors[w]
			for i := w; i < n; i += workers {
				row := g.adj[i*g.words : (i+1)*g.words]
				for _, j := range cur.Row(i) {
					if pred(i, int(j)) {
						row[j/64] |= 1 << (j % 64)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	upper := append([]uint64(nil), g.adj...)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < n; j += workers {
				row := g.adj[j*g.words : (j+1)*g.words]
				for i := 0; i < j; i++ {
					if upper[i*g.words+j/64]&(1<<(j%64)) != 0 {
						row[i/64] |= 1 << (i % 64)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return g
}
