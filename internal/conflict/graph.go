// Package conflict represents the bidder interference graph the auctioneer
// needs for spectrum reuse: two users conflict when their interference
// squares overlap (|Δx| < 2λ ∧ |Δy| < 2λ). The graph can be built from
// plaintext locations (baseline auction) or from any pairwise predicate —
// in particular LPPA's masked location submissions (package core), which
// reveal only the predicate's outcome.
package conflict

import (
	"fmt"
	"math/bits"
	"sync"

	"lppa/internal/geo"
)

// Graph is an undirected interference graph over n bidders, stored as a
// dense adjacency bitset (auction populations are hundreds of users, and
// the allocator scans neighborhoods constantly).
type Graph struct {
	n     int
	words int
	adj   []uint64 // row-major: node i occupies words [i*words, (i+1)*words)
}

// NewGraph returns an edgeless graph over n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("conflict: negative node count %d", n))
	}
	words := (n + 63) / 64
	return &Graph{n: n, words: words, adj: make([]uint64, n*words)}
}

// N reports the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge links i and j (no-op for self loops: a bidder never conflicts
// itself out of a channel).
func (g *Graph) AddEdge(i, j int) {
	g.check(i)
	g.check(j)
	if i == j {
		return
	}
	g.adj[i*g.words+j/64] |= 1 << (j % 64)
	g.adj[j*g.words+i/64] |= 1 << (i % 64)
}

// HasEdge reports whether i and j conflict.
func (g *Graph) HasEdge(i, j int) bool {
	g.check(i)
	g.check(j)
	return g.adj[i*g.words+j/64]&(1<<(j%64)) != 0
}

func (g *Graph) check(i int) {
	if i < 0 || i >= g.n {
		panic(fmt.Sprintf("conflict: node %d out of range [0,%d)", i, g.n))
	}
}

// Degree returns the number of neighbors of i.
func (g *Graph) Degree(i int) int {
	g.check(i)
	d := 0
	for _, w := range g.adj[i*g.words : (i+1)*g.words] {
		d += bits.OnesCount64(w)
	}
	return d
}

// Neighbors returns the sorted neighbor list of i (the paper's N(i)).
func (g *Graph) Neighbors(i int) []int {
	g.check(i)
	out := make([]int, 0, 8)
	row := g.adj[i*g.words : (i+1)*g.words]
	for wi, w := range row {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEachNeighbor calls fn for each neighbor of i in ascending order.
func (g *Graph) ForEachNeighbor(i int, fn func(j int)) {
	g.check(i)
	row := g.adj[i*g.words : (i+1)*g.words]
	for wi, w := range row {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Edges reports the total edge count.
func (g *Graph) Edges() int {
	total := 0
	for i := 0; i < g.n; i++ {
		total += g.Degree(i)
	}
	return total / 2
}

// Equal reports whether two graphs have identical node count and edges.
func (g *Graph) Equal(other *Graph) bool {
	if g.n != other.n {
		return false
	}
	for i := range g.adj {
		if g.adj[i] != other.adj[i] {
			return false
		}
	}
	return true
}

// BuildPlain constructs the graph from plaintext locations using the
// interference predicate directly. This is the baseline the private
// construction is tested for equivalence against.
func BuildPlain(points []geo.Point, lambda uint64) *Graph {
	g := NewGraph(len(points))
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			if geo.Conflict(points[i], points[j], lambda) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// BuildFromPredicate constructs the graph by evaluating an arbitrary
// symmetric pairwise predicate; LPPA's auctioneer passes the masked
// prefix-intersection test. pred is only called for i < j.
func BuildFromPredicate(n int, pred func(i, j int) bool) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pred(i, j) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// BuildFromPredicateParallel is BuildFromPredicate with the O(n²) predicate
// sweep sharded across at most workers goroutines. The result is bit-for-bit
// identical to the serial build for every worker count: each adjacency bit
// has a fixed position determined only by (i, j), so scheduling cannot
// reorder anything observable.
//
// Phase 1 evaluates the upper triangle: worker w owns rows i ≡ w (mod
// workers) — row striding balances load, since row i costs n−i−1 predicate
// calls — and sets bit j in row i for each conflicting j > i. Rows are
// disjoint, so phase 1 is race-free. After a barrier, phase 2 mirrors the
// lower triangle against an immutable snapshot of the phase-1 bits: the
// owner of row j reads bit j of snapshot row i for every i < j and sets
// bit i in row j. (Reading the live array instead would race at word
// granularity: bit j of row i can share a word with the lower-triangle
// bits row i's own phase-2 owner writes.) pred must be safe for concurrent
// calls with distinct (i, j); it is only called for i < j, once per pair,
// exactly as in the serial build.
func BuildFromPredicateParallel(n int, pred func(i, j int) bool, workers int) *Graph {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return BuildFromPredicate(n, pred)
	}
	g := NewGraph(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				row := g.adj[i*g.words : (i+1)*g.words]
				for j := i + 1; j < n; j++ {
					if pred(i, j) {
						row[j/64] |= 1 << (j % 64)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	upper := append([]uint64(nil), g.adj...)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < n; j += workers {
				row := g.adj[j*g.words : (j+1)*g.words]
				for i := 0; i < j; i++ {
					if upper[i*g.words+j/64]&(1<<(j%64)) != 0 {
						row[i/64] |= 1 << (i % 64)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return g
}
