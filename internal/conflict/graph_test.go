package conflict

import (
	"math/rand"
	"testing"

	"lppa/internal/geo"
)

func TestNewGraphEmpty(t *testing.T) {
	g := NewGraph(10)
	if g.N() != 10 || g.Edges() != 0 {
		t.Fatalf("n=%d edges=%d", g.N(), g.Edges())
	}
	for i := 0; i < 10; i++ {
		if g.Degree(i) != 0 {
			t.Errorf("degree(%d) = %d", i, g.Degree(i))
		}
	}
}

func TestAddEdgeSymmetric(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(1, 3)
	if !g.HasEdge(1, 3) || !g.HasEdge(3, 1) {
		t.Error("edge not symmetric")
	}
	if g.HasEdge(1, 2) {
		t.Error("phantom edge")
	}
	if g.Edges() != 1 {
		t.Errorf("edges = %d", g.Edges())
	}
	g.AddEdge(1, 3) // idempotent
	if g.Edges() != 1 {
		t.Error("duplicate AddEdge changed count")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(2, 2)
	if g.HasEdge(2, 2) || g.Edges() != 0 {
		t.Error("self loop recorded")
	}
}

func TestNeighborsSortedAndComplete(t *testing.T) {
	g := NewGraph(70) // spans multiple words
	for _, j := range []int{3, 64, 69, 1} {
		g.AddEdge(5, j)
	}
	got := g.Neighbors(5)
	want := []int{1, 3, 64, 69}
	if len(got) != len(want) {
		t.Fatalf("neighbors = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", got, want)
		}
	}
	if g.Degree(5) != 4 {
		t.Errorf("degree = %d", g.Degree(5))
	}
	var visited []int
	g.ForEachNeighbor(5, func(j int) { visited = append(visited, j) })
	if len(visited) != 4 || visited[0] != 1 || visited[3] != 69 {
		t.Errorf("ForEachNeighbor = %v", visited)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := NewGraph(3)
	for name, f := range map[string]func(){
		"AddEdge":  func() { g.AddEdge(0, 3) },
		"HasEdge":  func() { g.HasEdge(-1, 0) },
		"Degree":   func() { g.Degree(5) },
		"negative": func() { NewGraph(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBuildPlainMatchesPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 60
	const lambda = 3
	points := make([]geo.Point, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(50)), Y: uint64(rng.Intn(50))}
	}
	g := BuildPlain(points, lambda)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			want := geo.Conflict(points[i], points[j], lambda)
			if g.HasEdge(i, j) != want {
				t.Fatalf("edge(%d,%d) = %v, want %v (points %v %v)",
					i, j, g.HasEdge(i, j), want, points[i], points[j])
			}
		}
	}
}

func TestBuildFromPredicateEqualsBuildPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 40
	const lambda = 2
	points := make([]geo.Point, n)
	for i := range points {
		points[i] = geo.Point{X: uint64(rng.Intn(30)), Y: uint64(rng.Intn(30))}
	}
	a := BuildPlain(points, lambda)
	b := BuildFromPredicate(n, func(i, j int) bool {
		return geo.Conflict(points[i], points[j], lambda)
	})
	if !a.Equal(b) {
		t.Error("predicate-built graph differs from plain-built graph")
	}
}

func TestEqual(t *testing.T) {
	a := NewGraph(4)
	b := NewGraph(4)
	a.AddEdge(0, 1)
	if a.Equal(b) {
		t.Error("graphs with different edges equal")
	}
	b.AddEdge(0, 1)
	if !a.Equal(b) {
		t.Error("identical graphs unequal")
	}
	if a.Equal(NewGraph(5)) {
		t.Error("graphs with different sizes equal")
	}
}

func TestCliqueDegrees(t *testing.T) {
	// All users in one cell: complete graph.
	points := make([]geo.Point, 10)
	for i := range points {
		points[i] = geo.Point{X: 5, Y: 5}
	}
	g := BuildPlain(points, 1)
	if g.Edges() != 45 {
		t.Errorf("clique edges = %d, want 45", g.Edges())
	}
	for i := 0; i < 10; i++ {
		if g.Degree(i) != 9 {
			t.Errorf("degree(%d) = %d, want 9", i, g.Degree(i))
		}
	}
}

func TestFarApartNoEdges(t *testing.T) {
	points := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}}
	g := BuildPlain(points, 5)
	if g.Edges() != 0 {
		t.Errorf("edges = %d, want 0", g.Edges())
	}
}
