package radio

import (
	"math"
	"testing"

	"lppa/internal/geo"
)

func TestPathLossMonotoneInDistance(t *testing.T) {
	m := DefaultPathLoss()
	prev := m.LossDB(m.RefDistM)
	for d := m.RefDistM * 2; d < 100_000; d *= 2 {
		l := m.LossDB(d)
		if l <= prev {
			t.Fatalf("loss not increasing: L(%f)=%f <= %f", d, l, prev)
		}
		prev = l
	}
}

func TestPathLossClampsBelowReference(t *testing.T) {
	m := DefaultPathLoss()
	if m.LossDB(1) != m.LossDB(m.RefDistM) {
		t.Error("loss below reference distance should clamp")
	}
}

func TestPathLossSlope(t *testing.T) {
	m := PathLoss{Exponent: 3.0, RefLossDB: 88, RefDistM: 1000}
	// One decade of distance adds 10·n dB.
	got := m.LossDB(10_000) - m.LossDB(1000)
	if math.Abs(got-30) > 1e-9 {
		t.Errorf("per-decade loss = %f, want 30", got)
	}
}

func TestPathLossValidate(t *testing.T) {
	good := DefaultPathLoss()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PathLoss{
		{Exponent: 1.0, RefDistM: 1000},
		{Exponent: 3, RefDistM: 0},
		{Exponent: 3, RefDistM: 100, ShadowSigmaDB: -1},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d: bad model validated", i)
		}
	}
}

func TestShadowingDeterministicAndBounded(t *testing.T) {
	m := DefaultPathLoss()
	tower := Tower{X: 0, Y: 0, PowerDBm: 50}
	a := m.ReceivedDBm(tower, 5000, 5000, 42)
	b := m.ReceivedDBm(tower, 5000, 5000, 42)
	if a != b {
		t.Error("shadowing not deterministic for same key")
	}
	c := m.ReceivedDBm(tower, 5000, 5000, 43)
	if a == c {
		t.Error("distinct shadow keys gave identical rssi (suspicious)")
	}
}

func TestGaussianHashMoments(t *testing.T) {
	// Empirical mean ≈ 0, variance ≈ 1 over many keys.
	var sum, sumSq float64
	const n = 20000
	for k := uint64(0); k < n; k++ {
		g := gaussianHash(7, k)
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %f, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %f, want ≈1", variance)
	}
}

func TestComputeCoverageNearFarStructure(t *testing.T) {
	g := geo.Grid{Rows: 50, Cols: 50, SideMeters: 75_000}
	model := PathLoss{Exponent: 3.0, RefLossDB: 88, RefDistM: 1000} // no shadowing
	ch := Channel{ID: 1, Towers: []Tower{{X: 37_500, Y: 37_500, PowerDBm: 50}}}
	cm := ComputeCoverage(g, ch, model, FCCThresholdDBm)

	center := geo.Cell{Row: 25, Col: 25}
	corner := geo.Cell{Row: 0, Col: 0}
	if cm.AvailableAt(center) {
		t.Error("cell at the tower should be inside PU coverage (unavailable)")
	}
	if !cm.AvailableAt(corner) {
		t.Error("far corner should be available")
	}
	if cm.QualityAt(center) != 0 {
		t.Error("unavailable cell must have zero quality")
	}
	q := cm.QualityAt(corner)
	if q <= 0 || q > 1 {
		t.Errorf("corner quality = %f, want in (0,1]", q)
	}
	// Quality grows with distance from the tower (monotone margin).
	mid := geo.Cell{Row: 25, Col: 44}
	if cm.AvailableAt(mid) && cm.QualityAt(mid) >= q+1e-9 && cm.QualityAt(mid) != 1 {
		// mid is closer to the tower than corner; unless both clamp at 1,
		// mid must not exceed corner.
		t.Errorf("quality not monotone: mid %f > corner %f", cm.QualityAt(mid), q)
	}
}

func TestComputeCoverageNoTowers(t *testing.T) {
	g := geo.Grid{Rows: 10, Cols: 10, SideMeters: 1000}
	cm := ComputeCoverage(g, Channel{ID: 9}, DefaultPathLoss(), FCCThresholdDBm)
	if cm.Available.Count() != g.NumCells() {
		t.Errorf("towerless channel available in %d cells, want all %d",
			cm.Available.Count(), g.NumCells())
	}
	for _, q := range cm.Quality {
		if q != 1 {
			t.Fatalf("towerless quality = %f, want 1", q)
		}
	}
}

func TestComputeCoverageMultiTowerMax(t *testing.T) {
	g := geo.Grid{Rows: 20, Cols: 20, SideMeters: 75_000}
	model := PathLoss{Exponent: 3.0, RefLossDB: 88, RefDistM: 1000}
	one := ComputeCoverage(g, Channel{ID: 1, Towers: []Tower{{X: 10_000, Y: 10_000, PowerDBm: 50}}}, model, FCCThresholdDBm)
	two := ComputeCoverage(g, Channel{ID: 1, Towers: []Tower{
		{X: 10_000, Y: 10_000, PowerDBm: 50},
		{X: 65_000, Y: 65_000, PowerDBm: 50},
	}}, model, FCCThresholdDBm)
	// Adding a tower can only shrink availability.
	if two.Available.Count() > one.Available.Count() {
		t.Errorf("second tower grew availability: %d > %d",
			two.Available.Count(), one.Available.Count())
	}
	inter := two.Available.Clone()
	inter.SubtractWith(one.Available)
	if inter.Count() != 0 {
		t.Error("two-tower availability not a subset of one-tower availability")
	}
}

func TestQualityZeroIffUnavailable(t *testing.T) {
	g := geo.Grid{Rows: 30, Cols: 30, SideMeters: 75_000}
	model := PathLoss{Exponent: 3.2, RefLossDB: 88, RefDistM: 1000, ShadowSigmaDB: 5, Seed: 3}
	ch := Channel{ID: 4, Towers: []Tower{{X: 20_000, Y: 30_000, PowerDBm: 52}}}
	cm := ComputeCoverage(g, ch, model, FCCThresholdDBm)
	for idx := 0; idx < g.NumCells(); idx++ {
		avail := cm.Available.Contains(g.CellAt(idx))
		if avail != (cm.Quality[idx] > 0) {
			t.Fatalf("cell %v: available=%v quality=%f", g.CellAt(idx), avail, cm.Quality[idx])
		}
	}
}
