// Package radio models the RF substrate of the cognitive-radio simulation:
// primary-user transmitters, a log-distance path-loss model with
// deterministic log-normal shadowing, and the derivation of per-channel
// coverage and spectrum-quality maps.
//
// The paper's experiments consume coverage maps extracted from FCC/TVFool
// data for Los Angeles. Those maps reduce to two artefacts per channel:
// a boolean availability map (cells where the PU signal is at or below the
// −81 dBm threshold, i.e. the complement of the PU's protected contour) and
// a scalar quality figure per cell. This package regenerates both from
// first principles so experiments are self-contained and reproducible.
package radio

import (
	"fmt"
	"math"

	"lppa/internal/geo"
)

// Tower is a primary-user transmitter at metric coordinates (X, Y) with
// effective radiated power PowerDBm.
type Tower struct {
	X, Y     float64
	PowerDBm float64
}

// PathLoss is a log-distance path-loss model with deterministic log-normal
// shadowing:
//
//	PL(d) = RefLossDB + 10·Exponent·log10(d/RefDistM) + X_sigma
//
// where X_sigma is a zero-mean pseudo-Gaussian with standard deviation
// ShadowSigmaDB, derived deterministically from (Seed, shadow key) so that
// repeated evaluations and repeated runs agree.
type PathLoss struct {
	// Exponent is the path-loss exponent n: ~2 free space, 2.5–3 rural,
	// 3.5–4 urban.
	Exponent float64
	// RefLossDB is the loss at the reference distance. For UHF TV bands
	// (~600 MHz) free-space loss at 1 km is ≈ 88 dB.
	RefLossDB float64
	// RefDistM is the reference distance in meters.
	RefDistM float64
	// ShadowSigmaDB is the shadowing standard deviation (0 disables).
	ShadowSigmaDB float64
	// ShadowCorrM is the shadowing correlation length in meters: terrain
	// features (hills, built-up blocks) span kilometers, so nearby cells
	// see similar shadowing and coverage contours stay smooth. Zero
	// selects the 5 km default.
	ShadowCorrM float64
	// Seed decorrelates shadowing between areas/runs.
	Seed uint64
}

// DefaultShadowCorrM is the default shadowing correlation length.
const DefaultShadowCorrM = 5000

// DefaultPathLoss returns a suburban-profile model.
func DefaultPathLoss() PathLoss {
	return PathLoss{Exponent: 3.0, RefLossDB: 88, RefDistM: 1000, ShadowSigmaDB: 6, ShadowCorrM: DefaultShadowCorrM, Seed: 1}
}

// Validate checks model parameters.
func (m PathLoss) Validate() error {
	if m.Exponent < 1.5 || m.Exponent > 6 {
		return fmt.Errorf("radio: implausible path-loss exponent %.2f", m.Exponent)
	}
	if m.RefDistM <= 0 {
		return fmt.Errorf("radio: reference distance %.1f m must be positive", m.RefDistM)
	}
	if m.ShadowSigmaDB < 0 {
		return fmt.Errorf("radio: negative shadowing sigma %.1f", m.ShadowSigmaDB)
	}
	return nil
}

// LossDB returns the path loss in dB at distance d meters, excluding
// shadowing. Distances below the reference distance clamp to it (receivers
// essentially at the mast).
func (m PathLoss) LossDB(d float64) float64 {
	if d < m.RefDistM {
		d = m.RefDistM
	}
	return m.RefLossDB + 10*m.Exponent*math.Log10(d/m.RefDistM)
}

// ReceivedDBm returns the power received from t at metric point (x, y),
// including deterministic spatially-correlated shadowing keyed by
// shadowKey (callers pass a stable identifier for the (channel, tower)
// pair — NOT the receiver position, which enters through (x, y)).
func (m PathLoss) ReceivedDBm(t Tower, x, y float64, shadowKey uint64) float64 {
	d := math.Hypot(t.X-x, t.Y-y)
	rssi := t.PowerDBm - m.LossDB(d)
	if m.ShadowSigmaDB > 0 {
		rssi += m.ShadowSigmaDB * m.shadowField(shadowKey, x, y)
	}
	return rssi
}

// shadowField evaluates a deterministic, spatially-correlated, zero-mean,
// unit-variance noise field: independent pseudo-Gaussian values on a
// lattice with spacing ShadowCorrM, bilinearly interpolated between
// lattice points. Bilinear blending of unit-variance corners has variance
// in [4/9, 1]; the field is rescaled by the blend weights to stay close to
// unit variance everywhere.
func (m PathLoss) shadowField(key uint64, x, y float64) float64 {
	corr := m.ShadowCorrM
	if corr <= 0 {
		corr = DefaultShadowCorrM
	}
	// Offset far from the origin so negative coordinates stay monotone.
	fx := x/corr + 1e6
	fy := y/corr + 1e6
	ix, iy := uint64(fx), uint64(fy)
	tx, ty := fx-float64(ix), fy-float64(iy)

	g := func(dx, dy uint64) float64 {
		return gaussianHash(m.Seed, key^latticeKey(ix+dx, iy+dy))
	}
	v := (1-tx)*(1-ty)*g(0, 0) + tx*(1-ty)*g(1, 0) + (1-tx)*ty*g(0, 1) + tx*ty*g(1, 1)
	// Normalize variance: Var = Σ w_i² for independent corners.
	w2 := sq((1-tx)*(1-ty)) + sq(tx*(1-ty)) + sq((1-tx)*ty) + sq(tx*ty)
	return v / math.Sqrt(w2)
}

func sq(x float64) float64 { return x * x }

func latticeKey(i, j uint64) uint64 {
	return splitmix64(i*0x9E3779B97F4A7C15 ^ j*0xC2B2AE3D27D4EB4F)
}

// gaussianHash maps (seed, key) to an approximately standard-normal value,
// deterministically. It sums 4 uniform(−0.5, 0.5) draws from a splitmix64
// stream and rescales to unit variance (Irwin–Hall; adequate tail behaviour
// for shadowing within ±3σ).
func gaussianHash(seed, key uint64) float64 {
	x := seed ^ (key * 0x9E3779B97F4A7C15)
	var sum float64
	for i := 0; i < 4; i++ {
		x = splitmix64(x)
		u := float64(x>>11) / (1 << 53) // [0,1)
		sum += u - 0.5
	}
	// Var(sum of 4 U(-0.5,0.5)) = 4/12 = 1/3 → scale by sqrt(3).
	return sum * math.Sqrt(3)
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Channel is one auctionable spectrum band with its primary-user
// transmitters.
type Channel struct {
	ID     int
	Towers []Tower
}

// CoverageMap is the per-channel artefact the rest of the system consumes:
// for every grid cell, whether the channel is available to a secondary
// user there, and the channel's quality for an SU in that cell.
type CoverageMap struct {
	ChannelID int
	Grid      geo.Grid
	// Available holds cells where the PU signal is at or below the
	// threshold (the paper's C_r, the complement of the PU coverage).
	Available *geo.CellSet
	// Quality holds q*_r(cell) indexed by geo.Grid.Index: 0 for
	// unavailable cells, otherwise a positive figure growing with the
	// interference margin below the threshold.
	Quality []float64
}

// QualityAt returns the quality in cell c.
func (cm *CoverageMap) QualityAt(c geo.Cell) float64 {
	return cm.Quality[cm.Grid.Index(c)]
}

// AvailableAt reports channel availability in cell c.
func (cm *CoverageMap) AvailableAt(c geo.Cell) bool {
	return cm.Available.Contains(c)
}

// QualityScale caps the interference margin (dB below threshold) that maps
// to the maximum quality 1.0. Margins beyond 40 dB add no practical value
// to an SU link.
const QualityScale = 40.0

// QualityTextureFrac is the relative magnitude of fine-scale (per-cell)
// quality texture: multipath fading perturbs the link quality an SU
// actually experiences without moving the regulatory availability contour
// (which a geo-location database defines from smooth propagation
// predictions). The texture makes neighbouring cells' quality fingerprints
// distinguishable — which is what lets the BPM attack rank cells, and what
// makes it fallible under the bid-valuation noise.
const QualityTextureFrac = 0.15

// ComputeCoverage evaluates the channel over every cell of g: a cell is
// available iff the strongest PU signal there is at or below thresholdDBm
// (the paper uses −81 dBm), and quality is the clamped, normalized margin
// (threshold − rssi)/QualityScale ∈ (0, 1]. A channel with no towers is
// available everywhere at maximum quality.
func ComputeCoverage(g geo.Grid, ch Channel, model PathLoss, thresholdDBm float64) *CoverageMap {
	cm := &CoverageMap{
		ChannelID: ch.ID,
		Grid:      g,
		Available: geo.NewCellSet(g),
		Quality:   make([]float64, g.NumCells()),
	}
	for idx := 0; idx < g.NumCells(); idx++ {
		cell := g.CellAt(idx)
		x, y := g.Center(cell)
		rssi := math.Inf(-1)
		for _, t := range ch.Towers {
			// Shadowing is terrain-driven and therefore common to every
			// channel radiating from the same site: the key quantizes the
			// tower position (~4 km) so co-sited transmitters share one
			// shadow field and their contours nest by power. This is what
			// keeps the coverage complements of co-sited channels
			// correlated — the property BCM's output size depends on.
			key := latticeKey(uint64((t.X+1e7)/4000), uint64((t.Y+1e7)/4000))
			if p := model.ReceivedDBm(t, x, y, key); p > rssi {
				rssi = p
			}
		}
		if rssi > thresholdDBm {
			continue // PU protected: unavailable, quality 0
		}
		cm.Available.Add(cell)
		margin := thresholdDBm - rssi
		if math.IsInf(margin, 1) || margin > QualityScale {
			margin = QualityScale
		}
		q := margin / QualityScale
		// Fine-scale multipath texture: perturbs quality per cell without
		// touching availability. Towerless channels have no PU signal to
		// fade against and stay saturated at 1.
		if len(ch.Towers) > 0 {
			q *= 1 + QualityTextureFrac*gaussianHash(model.Seed^0xA5A5A5A5, uint64(ch.ID)<<32|uint64(idx))
		}
		if q < 0.01 {
			q = 0.01
		}
		if q > 1 {
			q = 1
		}
		cm.Quality[idx] = q
	}
	return cm
}

// FCCThresholdDBm is the paper's practical availability threshold.
const FCCThresholdDBm = -81.0
