package obs

import (
	"strings"
	"testing"
)

// TestPrometheusHelpLines extends the exporter golden: families with Help
// text get a # HELP line right above their # TYPE line (escaped per the
// 0.0.4 exposition format), and families without stay exactly as before —
// TestPrometheusGolden pins that no # HELP appears unasked.
func TestPrometheusHelpLines(t *testing.T) {
	r := NewRegistry()
	r.Counter("lppa_ops_slo_breaches_total").Add(3)
	r.Help("lppa_ops_slo_breaches_total", "SLO burn-rate breach transitions.")
	r.Gauge("lppa_ops_tile_anonymity_min_cells").Set(9)
	r.Help("lppa_ops_tile_anonymity_min_cells", `floor \ check`+"\nsecond line")
	r.Counter("lppa_unhelped_total").Inc()
	r.Help("lppa_dangling_total", "no such") // harmless: family never exported

	var nilReg *Registry
	nilReg.Help("x", "nil registry ignores help") // nil no-op contract

	want := "# HELP lppa_ops_slo_breaches_total SLO burn-rate breach transitions.\n" +
		"# TYPE lppa_ops_slo_breaches_total counter\n" +
		"lppa_ops_slo_breaches_total 3\n" +
		"# HELP lppa_ops_tile_anonymity_min_cells floor \\\\ check\\nsecond line\n" +
		"# TYPE lppa_ops_tile_anonymity_min_cells gauge\n" +
		"lppa_ops_tile_anonymity_min_cells 9\n" +
		"# TYPE lppa_unhelped_total counter\n" +
		"lppa_unhelped_total 1\n"
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("prometheus help output mismatch\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}
