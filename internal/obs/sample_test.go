package obs

import "testing"

// TestTraceSamplerDeterministic pins the replay contract: the sampled
// index set is a pure function of (seed, K), so two samplers built alike
// agree round for round.
func TestTraceSamplerDeterministic(t *testing.T) {
	const rounds = 200
	pick := func(seed int64, k int) []uint64 {
		s := NewTraceSampler("svc", seed, k)
		var out []uint64
		for i := 0; i < rounds; i++ {
			tr, idx, sampled := s.Next()
			if uint64(i) != idx {
				t.Fatalf("index %d on round %d", idx, i)
			}
			if sampled != s.WouldSample(idx) {
				t.Fatalf("Next and WouldSample disagree at %d", idx)
			}
			if sampled {
				if tr == nil {
					t.Fatalf("sampled round %d got no tracer", idx)
				}
				out = append(out, idx)
			} else if tr != nil {
				t.Fatalf("unsampled round %d got a tracer", idx)
			}
		}
		return out
	}
	a, b := pick(42, 7), pick(42, 7)
	if len(a) == 0 {
		t.Fatal("sampler with k=7 over 200 rounds picked nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("two runs picked %d vs %d rounds", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("picked sets diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Exactly one residue class mod k is sampled.
	for i := 1; i < len(a); i++ {
		if a[i]-a[i-1] != 7 {
			t.Fatalf("sampled indices not k apart: %v", a[:i+1])
		}
	}
	s := NewTraceSampler("svc", 42, 7)
	for i := 0; i < rounds; i++ {
		s.Next()
	}
	if got := s.Sampled(); got != uint64(len(a)) {
		t.Fatalf("Sampled() = %d, want %d", got, len(a))
	}
	if s.Every() != 7 {
		t.Fatalf("Every() = %d", s.Every())
	}
}

// TestTraceSamplerSeedRotatesOffset pins that the seed actually varies
// which residue class is traced — a fleet of services with distinct seeds
// must not all trace the same epochs.
func TestTraceSamplerSeedRotatesOffset(t *testing.T) {
	const k = 8
	offsets := map[uint64]bool{}
	for seed := int64(0); seed < 16; seed++ {
		s := NewTraceSampler("svc", seed, k)
		for idx := uint64(0); idx < k; idx++ {
			if s.WouldSample(idx) {
				offsets[idx] = true
			}
		}
	}
	if len(offsets) < 2 {
		t.Fatalf("16 seeds landed on %d distinct offsets, want spread", len(offsets))
	}
}

// TestTraceSamplerEveryRound: k <= 1 samples everything.
func TestTraceSamplerEveryRound(t *testing.T) {
	for _, k := range []int{1, 0, -3} {
		s := NewTraceSampler("svc", 9, k)
		if s.Every() != 1 {
			t.Fatalf("k=%d: Every() = %d, want 1", k, s.Every())
		}
		for i := 0; i < 5; i++ {
			if _, _, sampled := s.Next(); !sampled {
				t.Fatalf("k=%d: round %d not sampled", k, i)
			}
		}
		if s.Sampled() != 5 {
			t.Fatalf("k=%d: Sampled() = %d, want 5", k, s.Sampled())
		}
	}
}

// TestNilTraceSamplerIsInert: the disabled handle never samples and never
// panics, per the package's nil no-op contract.
func TestNilTraceSamplerIsInert(t *testing.T) {
	var s *TraceSampler
	tr, idx, sampled := s.Next()
	if tr != nil || idx != 0 || sampled {
		t.Fatalf("nil sampler sampled: %v %d %v", tr, idx, sampled)
	}
	if s.WouldSample(0) || s.Tracer() != nil || s.Every() != 0 || s.Sampled() != 0 {
		t.Fatal("nil sampler leaked state")
	}
}

// TestTraceSamplerUnsampledAllocationFree pins the disabled-path cost:
// an unsampled Next is one atomic add, no allocation.
func TestTraceSamplerUnsampledAllocationFree(t *testing.T) {
	s := NewTraceSampler("svc", 1, 1<<20) // offset is somewhere in a huge K
	if s.WouldSample(0) {
		s.Next() // burn the one sampled index if it is first
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, sampled := s.Next(); sampled {
			t.Fatal("sampled inside the unsampled-path measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("unsampled Next allocates %.0f, want 0", allocs)
	}
}
