package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs_total") != c {
		t.Fatalf("same name should return the same counter handle")
	}

	g := r.Gauge("workers")
	g.Set(8)
	g.Add(-3)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Fatalf("histogram sum = %v, want 555.5", h.Sum())
	}
}

func TestLabelsMakeDistinctSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("phase_total", L("phase", "encode"))
	b := r.Counter("phase_total", L("phase", "charge"))
	if a == b {
		t.Fatalf("different labels must be different series")
	}
	a.Add(2)
	b.Add(3)
	snap := r.Snapshot()
	if snap.Counters[`phase_total{phase="encode"}`] != 2 || snap.Counters[`phase_total{phase="charge"}`] != 3 {
		t.Fatalf("snapshot = %+v", snap.Counters)
	}
}

// TestNilRegistryIsInert pins the package contract: a nil registry and
// every handle derived from it are no-ops, never panic, and export empty.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h", nil).Observe(1)
	r.Histogram("h", nil).ObserveDuration(time.Second)
	pt := r.PhaseTimer("p", nil)
	pt.Phase("encode")
	pt.Phase("charge")
	pt.Stop()
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry prometheus output %q, err %v", sb.String(), err)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Histogram("h", []float64{0.5}).Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Sum(); got != 8000 {
		t.Fatalf("histogram sum = %v, want 8000", got)
	}
}

func TestPhaseTimerRecordsEachPhaseOnce(t *testing.T) {
	r := NewRegistry()
	pt := r.PhaseTimer("round_phase_seconds", nil)
	pt.Phase("encode")
	pt.Phase("allocate")
	pt.Stop()
	pt.Phase("charge")
	pt.Stop()
	for _, phase := range []string{"encode", "allocate", "charge"} {
		h := r.Histogram("round_phase_seconds", nil, L("phase", phase))
		if h.Count() != 1 {
			t.Fatalf("phase %s observed %d times, want 1", phase, h.Count())
		}
	}
}

// TestPrometheusGolden pins the exporter's exact text output for a
// deterministic metric state.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("lppa_rounds_total").Add(2)
	r.Counter("lppa_comparisons_total", L("layer", "graph")).Add(41)
	// Escaping: backslash, quote, and newline must be escaped; tab and
	// other bytes must pass through raw (0.0.4 text format).
	r.Counter("lppa_comparisons_total", L("layer", "a\\b\"c\nd\te")).Add(7)
	r.Gauge("lppa_round_workers").Set(4)
	h := r.Histogram("lppa_round_phase_seconds", []float64{0.01, 0.1, 1}, L("phase", "encode"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	want := "# TYPE lppa_comparisons_total counter\n" +
		"lppa_comparisons_total{layer=\"a\\\\b\\\"c\\nd\te\"} 7\n" +
		`lppa_comparisons_total{layer="graph"} 41
# TYPE lppa_round_phase_seconds histogram
lppa_round_phase_seconds_bucket{le="0.01",phase="encode"} 1
lppa_round_phase_seconds_bucket{le="0.1",phase="encode"} 3
lppa_round_phase_seconds_bucket{le="1",phase="encode"} 3
lppa_round_phase_seconds_bucket{le="+Inf",phase="encode"} 4
lppa_round_phase_seconds_sum{phase="encode"} 5.105
lppa_round_phase_seconds_count{phase="encode"} 4
# TYPE lppa_round_workers gauge
lppa_round_workers 4
# TYPE lppa_rounds_total counter
lppa_rounds_total 2
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("prometheus output mismatch\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestJSONSnapshotRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(7)
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["a_total"] != 7 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	hs := snap.Histograms["h_seconds"]
	if hs.Count != 1 || len(hs.Buckets) != 2 || hs.Buckets[1].LE != "+Inf" {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

func TestHandlerServesBothFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String(), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "x_total 1") || !strings.Contains(ct, "text/plain") {
		t.Fatalf("prometheus endpoint: ct=%q body=%q", ct, body)
	}
	body, ct = get("/vars")
	if !strings.Contains(body, `"x_total": 1`) || !strings.Contains(ct, "application/json") {
		t.Fatalf("json endpoint: ct=%q body=%q", ct, body)
	}
}

// TestHandlerContentNegotiation covers the Accept header paths: an
// explicit JSON or text preference overrides the path default, wildcards
// fall back to it, and an Accept naming neither representation gets 406.
func TestHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path, accept string) (int, string, string) {
		req, err := http.NewRequest("GET", srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
	}

	cases := []struct {
		path, accept string
		status       int
		wantCT       string // substring
	}{
		{"/metrics", "", 200, "text/plain"},
		{"/metrics", "application/json", 200, "application/json"},
		{"/metrics", "*/*", 200, "text/plain"},
		{"/metrics", "text/plain;q=0.9, application/json;q=0.1", 200, "text/plain"},
		{"/vars", "", 200, "application/json"},
		{"/vars", "text/plain", 200, "text/plain"},
		{"/vars", "text/*", 200, "text/plain"},
		{"/vars", "*/*", 200, "application/json"},
		{"/metrics", "application/xml", 406, ""},
		{"/vars", "image/png, text/html", 406, ""},
	}
	for _, c := range cases {
		status, ct, body := get(c.path, c.accept)
		if status != c.status {
			t.Fatalf("%s Accept=%q: status %d, want %d (body %q)", c.path, c.accept, status, c.status, body)
		}
		if c.wantCT != "" && !strings.Contains(ct, c.wantCT) {
			t.Fatalf("%s Accept=%q: Content-Type %q, want substring %q", c.path, c.accept, ct, c.wantCT)
		}
		if status == 200 {
			wantBody := "x_total 1"
			if strings.Contains(c.wantCT, "json") {
				wantBody = `"x_total": 1`
			}
			if !strings.Contains(body, wantBody) {
				t.Fatalf("%s Accept=%q: body %q missing %q", c.path, c.accept, body, wantBody)
			}
		}
	}
}
