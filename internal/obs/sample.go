package obs

import "sync/atomic"

// TraceSampler decides, deterministically, which rounds of a long-lived
// service carry full span tracing. Full tracing at every epoch is
// unaffordable at scale, so the sampler traces one round in K and leaves
// the rest on the allocation-free untraced path. The schedule is a pure
// function of (seed, K, round index): the same seed and K pick the same
// rounds on every run, so a sampled trace set is replayable bit for bit
// alongside the deterministic awards.
//
// The nil *TraceSampler never samples, like every other disabled handle
// in this package.
type TraceSampler struct {
	tracer *Tracer
	k      uint64
	offset uint64
	idx    atomic.Uint64
	taken  atomic.Uint64
}

// NewTraceSampler returns a sampler tracing one round in every k, into a
// tracer whose spans carry the given process name. The seed rotates which
// residue class is sampled (offset = splitmix64(seed) mod k), so two
// services with different seeds don't all trace the same epochs; k <= 1
// samples every round.
func NewTraceSampler(proc string, seed int64, k int) *TraceSampler {
	if k < 1 {
		k = 1
	}
	return &TraceSampler{
		tracer: NewTracer(proc),
		k:      uint64(k),
		offset: splitmix64(uint64(seed)) % uint64(k),
	}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// permutation (same construction the epoch scheduler uses for per-epoch
// seeds).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Next consumes the next round index and returns the tracer when that
// index is sampled, nil otherwise. The unsampled path is one atomic add —
// no allocation, no clock read. Nil-safe.
func (s *TraceSampler) Next() (tracer *Tracer, index uint64, sampled bool) {
	if s == nil {
		return nil, 0, false
	}
	idx := s.idx.Add(1) - 1
	if idx%s.k != s.offset {
		return nil, idx, false
	}
	s.taken.Add(1)
	return s.tracer, idx, true
}

// WouldSample reports whether a given round index is on the sampling
// schedule, without consuming an index. Nil-safe (never samples).
func (s *TraceSampler) WouldSample(idx uint64) bool {
	return s != nil && idx%s.k == s.offset
}

// Tracer returns the sampler's underlying tracer so callers can drain
// sampled spans (nil on the nil sampler).
func (s *TraceSampler) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Every returns the sampler's K (0 on the nil sampler).
func (s *TraceSampler) Every() int {
	if s == nil {
		return 0
	}
	return int(s.k)
}

// Sampled returns how many rounds have been sampled so far. Nil-safe.
func (s *TraceSampler) Sampled() uint64 {
	if s == nil {
		return 0
	}
	return s.taken.Load()
}
