package obs

import (
	"sort"
	"time"
)

// Span→percentile aggregation for the load harness: spans sharing a name
// (one per phase per round — encode, plan, conflict_graph, allocate,
// charge, plus the round root) fold into a LatencySummary, and the
// summary answers p50/p95/p99 by nearest-rank over the exact sample set.
// Workload runs are thousands of spans, not millions, so keeping every
// sample beats a sketch: the percentiles are exact and the memory is
// noise next to one round's submissions.

// LatencySummary accumulates duration samples for one span name.
// Not safe for concurrent use; aggregate on the drain goroutine.
type LatencySummary struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
	max     time.Duration
}

// Observe folds one duration into the summary.
func (s *LatencySummary) Observe(d time.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = len(s.samples) == 1
	s.sum += d
	if d > s.max {
		s.max = d
	}
}

// Count reports how many samples the summary holds.
func (s *LatencySummary) Count() int { return len(s.samples) }

// Max reports the largest sample (0 when empty).
func (s *LatencySummary) Max() time.Duration { return s.max }

// Mean reports the arithmetic mean (0 when empty).
func (s *LatencySummary) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / time.Duration(len(s.samples))
}

// Quantile reports the nearest-rank q-quantile (q in [0,1]) over the
// samples observed so far: the smallest sample such that at least q·n
// samples are ≤ it. Empty summaries report 0; q outside [0,1] clamps.
func (s *LatencySummary) Quantile(q float64) time.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
	if q <= 0 {
		return s.samples[0]
	}
	if q >= 1 {
		return s.samples[n-1]
	}
	// Nearest rank: ceil(q*n), 1-based.
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.samples[rank-1]
}

// SpanAggregator groups finished spans by name into LatencySummaries.
// Feed it Tracer.Take batches as rounds finish; summaries stay exact
// regardless of batching. Not safe for concurrent use.
type SpanAggregator struct {
	byName map[string]*LatencySummary
}

// NewSpanAggregator returns an empty aggregator.
func NewSpanAggregator() *SpanAggregator {
	return &SpanAggregator{byName: make(map[string]*LatencySummary)}
}

// AddSpans folds a batch of finished spans into the per-name summaries.
func (a *SpanAggregator) AddSpans(spans []*Span) {
	for _, sp := range spans {
		if sp == nil {
			continue
		}
		s := a.byName[sp.Name]
		if s == nil {
			s = &LatencySummary{}
			a.byName[sp.Name] = s
		}
		s.Observe(sp.Duration)
	}
}

// Summary returns the accumulator for one span name (nil when the name
// never appeared).
func (a *SpanAggregator) Summary(name string) *LatencySummary { return a.byName[name] }

// Names lists the span names seen so far, sorted.
func (a *SpanAggregator) Names() []string {
	out := make([]string, 0, len(a.byName))
	for n := range a.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
